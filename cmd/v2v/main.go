// Command v2v synthesizes a video from a declarative spec file.
//
// Usage:
//
//	v2v [flags] spec.v2v output.vmf
//
// The spec may be in the textual grammar or the JSON format (detected by a
// leading '{'). Flags toggle the pipeline stages so unoptimized and
// optimized runs can be compared, and -explain prints the plan without
// executing it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"v2v"
	"v2v/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "v2v:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("v2v", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		noOpt     = fs.Bool("no-opt", false, "disable the plan optimizer")
		noRewrite = fs.Bool("no-data-rewrite", false, "disable data-dependent spec rewriting")
		parallel  = fs.Int("parallel", 0, "shard parallelism (0 = GOMAXPROCS)")
		explain   = fs.Bool("explain", false, "print the plan instead of executing")
		dot       = fs.Bool("dot", false, "with -explain, print Graphviz DOT")
		stats     = fs.Bool("stats", false, "print execution metrics")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: v2v [flags] spec.v2v output.vmf\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	rest := fs.Args()
	if *explain {
		if len(rest) < 1 {
			fs.Usage()
			return fmt.Errorf("-explain needs a spec file")
		}
	} else if len(rest) != 2 {
		fs.Usage()
		return fmt.Errorf("want a spec file and an output path, got %d arguments", len(rest))
	}

	spec, err := v2v.LoadSpec(rest[0])
	if err != nil {
		return err
	}
	opts := core.Options{
		Optimize:    !*noOpt,
		DataRewrite: !*noRewrite,
		Parallelism: *parallel,
	}

	if *explain {
		var out string
		if *dot {
			out, err = v2v.ExplainDOT(spec, opts)
		} else {
			out, err = v2v.Explain(spec, opts)
		}
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out)
		return nil
	}

	res, err := v2v.Synthesize(spec, rest[1], opts)
	if err != nil {
		return err
	}
	if *stats {
		m := res.Metrics
		fmt.Fprintf(stdout, "wall            %v\n", m.Wall)
		fmt.Fprintf(stdout, "first output    %v\n", m.FirstOutput)
		fmt.Fprintf(stdout, "source decodes  %d\n", m.Source.FramesDecoded)
		fmt.Fprintf(stdout, "intermediate    %d enc / %d dec\n", m.Intermediate.FramesEncoded, m.Intermediate.FramesDecoded)
		fmt.Fprintf(stdout, "output encodes  %d\n", m.Output.FramesEncoded)
		fmt.Fprintf(stdout, "packets copied  %d (%d bytes)\n", m.Output.PacketsCopied, m.Output.BytesCopied)
		if !res.RewriteStats.Skipped {
			fmt.Fprintf(stdout, "data rewrites   %v (arms %d -> %d)\n",
				res.RewriteStats.Applied, res.RewriteStats.ArmsBefore, res.RewriteStats.ArmsAfter)
		}
	}
	fmt.Fprintf(stdout, "wrote %s\n", rest[1])
	return nil
}
