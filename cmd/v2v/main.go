// Command v2v synthesizes a video from a declarative spec file.
//
// Usage:
//
//	v2v [flags] spec.v2v output.vmf
//
// The spec may be in the textual grammar or the JSON format (detected by a
// leading '{'). Flags toggle the pipeline stages so unoptimized and
// optimized runs can be compared, -explain prints the plan without
// executing it, -explain-analyze executes and prints the plan annotated
// with measured per-segment costs, and -trace writes a Chrome trace_event
// file covering every pipeline stage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"v2v"
	"v2v/internal/cliutil"
	"v2v/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "v2v:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (retErr error) {
	fs := flag.NewFlagSet("v2v", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		noOpt     = fs.Bool("no-opt", false, "disable the plan optimizer")
		noRewrite = fs.Bool("no-data-rewrite", false, "disable data-dependent spec rewriting")
		parallel  = fs.Int("parallel", 0, "shard parallelism (0 = GOMAXPROCS)")
		explain   = fs.Bool("explain", false, "print the plan instead of executing")
		analyze   = fs.Bool("explain-analyze", false, "execute, then print the plan annotated with measured per-segment costs")
		dot       = fs.Bool("dot", false, "with -explain, print Graphviz DOT")
		stats     = fs.Bool("stats", false, "print execution metrics")
		traceOut  = fs.String("trace", "", "write a Chrome trace_event JSON file (chrome://tracing, Perfetto)")
		timeout   = fs.Duration("timeout", 0, "abort synthesis after this long (0 = no limit); a timed-out run leaves no partial output")
		strict    = fs.Bool("strict", false, "fail fast on corrupt or undecodable source packets instead of concealing them")
		cacheMB   = fs.Int("gop-cache-mb", 0, "decoded-GOP cache budget in MiB shared by all shards (0 = auto-size from the sources, -1 = disable)")
		resMB     = fs.Int("result-cache-mb", -1, "encoded-result cache budget in MiB (0 = 256 MiB default, -1 = disable; one-shot runs only benefit when segments repeat within the plan)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: v2v [flags] spec.v2v output.vmf\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := errors.Join(
		cliutil.ValidateParallel("-parallel", *parallel),
		cliutil.ValidateTimeout("-timeout", *timeout),
		cliutil.ValidateCacheMB("-gop-cache-mb", *cacheMB),
		cliutil.ValidateCacheMB("-result-cache-mb", *resMB),
	); err != nil {
		return err
	}

	rest := fs.Args()
	if *explain || *analyze {
		if len(rest) < 1 {
			fs.Usage()
			return fmt.Errorf("-explain/-explain-analyze need a spec file")
		}
	} else if len(rest) != 2 {
		fs.Usage()
		return fmt.Errorf("want a spec file and an output path, got %d arguments", len(rest))
	}

	var tr *v2v.Trace
	if *traceOut != "" {
		tr = v2v.NewTrace("v2v " + rest[0])
		// Stamp the trace with a run ID so its export joins the same
		// run's metrics and flight records when loaded alongside them.
		tr.SetID(v2v.NewTraceID())
	}

	sp := tr.StartSpan("parse")
	spec, err := v2v.LoadSpec(rest[0])
	sp.End()
	if err != nil {
		return err
	}
	// A per-run stage recorder backs the -stats per-stage breakdown and
	// the EXPLAIN ANALYZE stage annotations.
	rec := v2v.NewRecorder()
	opts := core.Options{
		Optimize:    !*noOpt,
		DataRewrite: !*noRewrite,
		Parallelism: *parallel,
		Conceal:     !*strict,
		Trace:       tr,
		Recorder:    rec,
	}
	if *cacheMB >= 0 {
		opts.GOPCache = v2v.NewGOPCache(int64(*cacheMB) << 20)
	}
	if *resMB >= 0 {
		opts.ResultCache = v2v.NewResultCache(int64(*resMB) << 20)
	}
	// Whatever path exits, flush the trace if one was requested; a failed
	// write fails the run (unless it is already failing for another reason).
	defer func() {
		if tr != nil {
			if werr := tr.WriteJSONFile(*traceOut); werr != nil && retErr == nil {
				retErr = fmt.Errorf("writing trace: %w", werr)
			}
		}
	}()

	if *explain {
		var out string
		if *dot {
			out, err = v2v.ExplainDOT(spec, opts)
		} else {
			out, err = v2v.Explain(spec, opts)
		}
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out)
		return nil
	}

	outPath := ""
	if len(rest) >= 2 {
		outPath = rest[1]
	} else {
		// -explain-analyze without an output path executes into a
		// throwaway file: the measurements are the product.
		tmp, err := os.MkdirTemp("", "v2v-analyze-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		outPath = filepath.Join(tmp, "out.vmf")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := v2v.SynthesizeContext(ctx, spec, outPath, opts)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("synthesis timed out after %v (no output written)", *timeout)
		}
		return err
	}
	if n := res.Metrics.TotalConcealed(); n > 0 {
		fmt.Fprintf(stderr, "v2v: concealed %d corrupt frame(s); rerun with -strict to fail on corruption\n", n)
	}
	if *analyze {
		fmt.Fprint(stdout, v2v.ExplainAnalyze(res))
	}
	if *stats {
		m := res.Metrics
		fmt.Fprintf(stdout, "wall            %v\n", m.Wall)
		fmt.Fprintf(stdout, "first output    %v\n", m.FirstOutput)
		fmt.Fprintf(stdout, "source decodes  %d\n", m.Source.FramesDecoded)
		fmt.Fprintf(stdout, "intermediate    %d enc / %d dec\n", m.Intermediate.FramesEncoded, m.Intermediate.FramesDecoded)
		fmt.Fprintf(stdout, "output encodes  %d\n", m.Output.FramesEncoded)
		fmt.Fprintf(stdout, "packets copied  %d (%d bytes)\n", m.Output.PacketsCopied, m.Output.BytesCopied)
		if n := m.TotalConcealed(); n > 0 {
			fmt.Fprintf(stdout, "frames concealed %d\n", n)
		}
		stages := rec.Stages()
		for _, name := range []string{"decode", "filter", "encode", "copy"} {
			st := stages[name]
			if st.Frames == 0 && st.Wall == 0 {
				continue
			}
			fmt.Fprintf(stdout, "stage %-9s %d frames, %d bytes, %v\n", name, st.Frames, st.Bytes, st.Wall)
		}
		if c := opts.GOPCache; c != nil {
			cs := c.Stats()
			if cs.Hits+cs.Misses > 0 {
				fmt.Fprintf(stdout, "gop cache       %d hits / %d misses, %d evictions, %d MiB resident (budget %d MiB)\n",
					cs.Hits, cs.Misses, cs.Evictions, cs.Bytes>>20, cs.Budget>>20)
			}
		}
		if c := opts.ResultCache; c != nil {
			cs := c.Stats()
			if cs.Hits+cs.Misses > 0 {
				fmt.Fprintf(stdout, "result cache    %d hits / %d misses, %d evictions, %d KiB resident (budget %d MiB)\n",
					cs.Hits, cs.Misses, cs.Evictions, cs.Bytes>>10, cs.Budget>>20)
			}
		}
		if !res.RewriteStats.Skipped {
			fmt.Fprintf(stdout, "data rewrites   %v (arms %d -> %d)\n",
				res.RewriteStats.Applied, res.RewriteStats.ArmsBefore, res.RewriteStats.ArmsAfter)
		}
	}
	if len(rest) >= 2 {
		fmt.Fprintf(stdout, "wrote %s\n", rest[1])
	}
	return nil
}
