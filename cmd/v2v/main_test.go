package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"v2v/internal/dataset"
	"v2v/internal/media"
	"v2v/internal/rational"
)

func writeSpec(t *testing.T, dir string) (specPath string) {
	t.Helper()
	vid := filepath.Join(dir, "cam.vmf")
	if _, err := dataset.Generate(vid, "", dataset.TinyProfile(), rational.FromInt(3)); err != nil {
		t.Fatal(err)
	}
	specPath = filepath.Join(dir, "demo.v2v")
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { cam: %q; }
		render(t) = cam[t + 1];`, vid)
	if err := os.WriteFile(specPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return specPath
}

func TestRunSynthesizeWithStats(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	out := filepath.Join(dir, "out.vmf")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-stats", spec, out}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\n%s", err, stderr.String())
	}
	for _, want := range []string{"packets copied  24", "wrote "} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
	r, err := media.OpenReader(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumFrames() != 24 {
		t.Errorf("frames = %d", r.NumFrames())
	}
}

func TestRunExplainModes(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-explain", spec}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "copy cam") {
		t.Errorf("explain missing copy:\n%s", stdout.String())
	}
	stdout.Reset()
	if err := run([]string{"-explain", "-no-opt", spec}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "unoptimized") {
		t.Errorf("unopt explain wrong:\n%s", stdout.String())
	}
	stdout.Reset()
	if err := run([]string{"-explain", "-dot", spec}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "digraph") {
		t.Errorf("dot explain wrong:\n%s", stdout.String())
	}
}

func TestRunTraceWritesChromeTraceEvents(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	out := filepath.Join(dir, "out.vmf")
	tracePath := filepath.Join(dir, "trace.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-trace", tracePath, spec, out}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\n%s", err, stderr.String())
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   int    `json:"pid"`
			TID   int64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		seen[e.Name] = true
	}
	for _, want := range []string{"parse", "check", "rewrite", "optimize", "execute"} {
		if !seen[want] {
			t.Errorf("trace missing %q span; have %v", want, seen)
		}
	}
}

func TestRunExplainAnalyze(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	var stdout, stderr bytes.Buffer
	// Without an output path: executes into a throwaway file.
	if err := run([]string{"-explain-analyze", spec}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\n%s", err, stderr.String())
	}
	got := stdout.String()
	for _, want := range []string{"copy cam", "actual:", "wall=", "copied=24"} {
		if !strings.Contains(got, want) {
			t.Errorf("explain-analyze missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "wrote ") {
		t.Errorf("throwaway output should not print wrote:\n%s", got)
	}
	// With an output path the file persists.
	stdout.Reset()
	out := filepath.Join(dir, "kept.vmf")
	if err := run([]string{"-explain-analyze", spec, out}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("output not kept: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	var stdout, stderr bytes.Buffer
	if err := run([]string{spec}, &stdout, &stderr); err == nil {
		t.Error("missing output arg should fail")
	}
	if err := run([]string{"-explain"}, &stdout, &stderr); err == nil {
		t.Error("explain without spec should fail")
	}
	if err := run([]string{filepath.Join(dir, "nope.v2v"), "o.vmf"}, &stdout, &stderr); err == nil {
		t.Error("missing spec file should fail")
	}
	if err := run([]string{"-badflag"}, &stdout, &stderr); err == nil {
		t.Error("bad flag should fail")
	}
	out := filepath.Join(dir, "o.vmf")
	if err := run([]string{"-trace", "/nonexistent-dir/t.json", spec, out}, &stdout, &stderr); err == nil {
		t.Error("unwritable trace path should fail the run")
	}
}

func TestRunFlagValidation(t *testing.T) {
	dir := t.TempDir()
	spec := writeSpec(t, dir)
	out := filepath.Join(dir, "o.vmf")
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-gop-cache-mb", "-2", spec, out}, "-gop-cache-mb"},
		{[]string{"-result-cache-mb", "-7", spec, out}, "-result-cache-mb"},
		{[]string{"-gop-cache-mb", "99999999", spec, out}, "MiB, not bytes"},
		{[]string{"-timeout", "-3s", spec, out}, "-timeout"},
		{[]string{"-timeout", "48h", spec, out}, "exceeds"},
		{[]string{"-parallel", "-4", spec, out}, "-parallel"},
	} {
		var stdout, stderr bytes.Buffer
		err := run(tc.args, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
	// -1 stays the documented disable value for both caches.
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-gop-cache-mb", "-1", "-result-cache-mb", "-1", spec, out}, &stdout, &stderr); err != nil {
		t.Errorf("caches disabled with -1 should still synthesize: %v", err)
	}
}
