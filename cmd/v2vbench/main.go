// Command v2vbench regenerates the paper's evaluation figures as text
// tables: Fig. 3 (ToS, unoptimized vs optimized), Fig. 4 (KABR), and
// Fig. 5 (data-joining queries vs the Python+OpenCV-equivalent baseline).
//
// Usage:
//
//	v2vbench -fig 3            # Fig. 3 table (ToS-sim)
//	v2vbench -fig 4            # Fig. 4 table (KABR-sim)
//	v2vbench -fig 5 [-stats]   # Fig. 5 table (both datasets)
//	v2vbench -fig ablate       # per-pass ablation table
//	v2vbench -fig cache        # cache sweep: off / GOP cold+warm / GOP+result cold+warm (ToS-sim)
//	v2vbench -fig overload     # overload sweep: goodput, p99, shed rate at 1x/4x/16x offered load (KABR-sim)
//	v2vbench -fig streaming    # streaming sweep: TTFF and inter-segment gap at 1/4/16 concurrent streams (KABR-sim Q7)
//	v2vbench -fig pixels       # per-stage pixel pipeline: MB/s per filter, fused vs unfused 3-op chain, codec frames, allocs/frame
//	v2vbench -fig all -scale full -repeats 5
//	v2vbench -fig 4 -json bench.json -trace bench-trace.json
//	v2vbench -fig all -json BENCH_PR4.json -delta BENCH_PR3.json
//
// -json writes the raw per-query measurements as a JSON report for
// trajectory tracking; -delta diffs it against a prior report and flags
// regressions (-delta-out also writes the diff as markdown for CI job
// summaries); -trace records a Chrome trace_event profile of every run
// (load it in chrome://tracing or Perfetto).
//
// Absolute times depend on the host; the shape — who wins, by what factor,
// and where smart cuts fail to apply — is the reproduction target.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"v2v/internal/benchkit"
	"v2v/internal/core"
	"v2v/internal/obs"
	"v2v/internal/vql"
)

// report is the -json output: metadata plus every per-query measurement,
// durations as seconds so downstream tooling needs no unit parsing.
type report struct {
	Scale       string         `json:"scale"`
	Repeats     int            `json:"repeats"`
	Parallelism int            `json:"parallelism"`
	Compare     []compareJSON  `json:"compare,omitempty"`
	DataJoin    []dataJoinJSON `json:"data_join,omitempty"`
	Ablation    []ablationJSON `json:"ablation,omitempty"`
	Cache       []cacheJSON     `json:"cache,omitempty"`
	Overload    []overloadJSON  `json:"overload,omitempty"`
	Streaming   []streamingJSON `json:"streaming,omitempty"`
	Pixels      []pixelsJSON    `json:"pixels,omitempty"`
}

type pixelsJSON struct {
	Stage  string `json:"stage"`
	Frames int    `json:"frames"`
	// MBPerSecond is plane throughput; SecondsPerMB and SecondsPerFrame
	// are the time-like forms the delta reporter compares.
	MBPerSecond     float64 `json:"mb_per_second"`
	SecondsPerMB    float64 `json:"seconds_per_mb"`
	SecondsPerFrame float64 `json:"seconds_per_frame"`
	AllocsPerFrame  float64 `json:"allocs_per_frame"`
	// Speedup and Identical are set on the fused chain row only: wall
	// ratio against the unfused chain and the SHA byte-identity check.
	Speedup   float64 `json:"speedup,omitempty"`
	Identical bool    `json:"identical,omitempty"`
}

type streamingJSON struct {
	Dataset  string `json:"dataset"`
	Query    string `json:"query"`
	Streams  int    `json:"streams"`
	Segments int    `json:"segments"`
	// WallSeconds is the mean end-to-end wall per stream; TTFFSeconds the
	// mean time until the first bytes were flushed (the honest
	// time-to-first-frame); MaxGapSeconds the worst inter-segment
	// delivery gap a playing client would observe.
	WallSeconds    float64 `json:"wall_seconds"`
	TTFFSeconds    float64 `json:"ttff_seconds"`
	TTFFMaxSeconds float64 `json:"ttff_max_seconds"`
	MaxGapSeconds  float64 `json:"max_gap_seconds"`
	// ByteIdentical confirms the streamed output matched the buffered
	// reference byte for byte.
	ByteIdentical bool `json:"byte_identical"`
}

type compareJSON struct {
	Dataset      string  `json:"dataset"`
	Query        string  `json:"query"`
	UnoptSeconds float64 `json:"unopt_seconds"`
	OptSeconds   float64 `json:"opt_seconds"`
	// OptFirstOutputSeconds is time-to-first-frame for the optimized run,
	// tracked (and delta-flagged) alongside total wall time.
	OptFirstOutputSeconds float64 `json:"opt_first_output_seconds"`
	Speedup               float64 `json:"speedup"`
}

type dataJoinJSON struct {
	Dataset         string  `json:"dataset"`
	Query           string  `json:"query"`
	BaselineSeconds float64 `json:"baseline_seconds"`
	V2VSeconds      float64 `json:"v2v_seconds"`
	Speedup         float64 `json:"speedup"`
}

type cacheJSON struct {
	Dataset         string  `json:"dataset"`
	Query           string  `json:"query"`
	OffSeconds      float64 `json:"off_seconds"`
	ColdSeconds     float64 `json:"cold_seconds"`
	WarmSeconds     float64 `json:"warm_seconds"`
	OffDecodes      int64   `json:"off_decodes"`
	ColdDecodes     int64   `json:"cold_decodes"`
	WarmDecodes     int64   `json:"warm_decodes"`
	DecodeReduction float64 `json:"decode_reduction"`
	ColdHits        int64   `json:"cold_hits"`
	ColdMisses      int64   `json:"cold_misses"`
	WarmHits        int64   `json:"warm_hits"`
	WarmMisses      int64   `json:"warm_misses"`
	// Result-cache stack (GOP + result caches under one arbitrated budget).
	ResultColdSeconds float64 `json:"result_cold_seconds"`
	ResultWarmSeconds float64 `json:"result_warm_seconds"`
	ResultColdDecodes int64   `json:"result_cold_decodes"`
	ResultColdEncodes int64   `json:"result_cold_encodes"`
	ResultWarmDecodes int64   `json:"result_warm_decodes"`
	ResultWarmEncodes int64   `json:"result_warm_encodes"`
	ResultColdHits    int64   `json:"result_cold_hits"`
	ResultColdMisses  int64   `json:"result_cold_misses"`
	ResultWarmHits    int64   `json:"result_warm_hits"`
	ResultWarmMisses  int64   `json:"result_warm_misses"`
	// ResultWarmFirstOutputSeconds is the warm repeat's time to first
	// output — the interactivity win the result cache buys.
	ResultWarmFirstOutputSeconds float64 `json:"result_warm_first_output_seconds"`
}

type overloadJSON struct {
	Dataset    string  `json:"dataset"`
	Load       float64 `json:"load"`
	Offered    int     `json:"offered"`
	Completed  int     `json:"completed"`
	Shed       int     `json:"shed"`
	Failed     int     `json:"failed"`
	ShedRate   float64 `json:"shed_rate"`
	GoodputQPS float64 `json:"goodput_qps"`
	P99Seconds float64 `json:"p99_seconds"`
}

type ablationJSON struct {
	Dataset     string  `json:"dataset"`
	Query       string  `json:"query"`
	Config      string  `json:"config"`
	WallSeconds float64 `json:"wall_seconds"`
	Encodes     int64   `json:"encodes"`
	Decodes     int64   `json:"decodes"`
	Copies      int64   `json:"copies"`
}

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 3, 4, 5, ablate, cache, overload, streaming, pixels, or all")
		scale     = flag.String("scale", "quick", "dataset scale: quick or full (paper-shaped durations)")
		repeats   = flag.Int("repeats", 3, "measured runs per configuration (after one warm-up)")
		parallel  = flag.Int("parallel", 0, "shard parallelism (0 = GOMAXPROCS)")
		dir       = flag.String("data", benchkit.DefaultDir(), "dataset cache directory")
		stats     = flag.Bool("stats", false, "with -fig 5, print data-rewrite statistics")
		cacheMB   = flag.Int("gop-cache-mb", -1, "decoded-GOP cache budget in MiB for the standard figures (negative = off, 0 = auto-size); -fig cache manages its own caches")
		resMB     = flag.Int("result-cache-mb", -1, "encoded-result cache budget in MiB for the standard figures (negative = off, 0 = 256 MiB default); -fig cache manages its own caches")
		jsonOut   = flag.String("json", "", "write per-query measurements as JSON to this file")
		deltaIn   = flag.String("delta", "", "prior -json report to diff the current measurements against (regression check)")
		deltaOut  = flag.String("delta-out", "", "with -delta, also write the diff as a markdown table to this file (for CI job summaries)")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event profile of all runs to this file")
		chaos     = flag.Bool("chaos", false, "run the fault-injection suite instead of the figures: every query under seeded read faults, strict and concealment modes")
		chaosSeed = flag.Int64("chaos-seed", 1, "seed for the -chaos fault streams and the -fig overload bursts (equal seeds replay equal arrivals)")
		flightOut = flag.String("flight-out", "", "with -chaos, write the errored attempts' flight records as JSON to this file (the /debug/requests?errored=1 shape)")
	)
	flag.Parse()

	sc := benchkit.QuickScale()
	if *scale == "full" {
		sc = benchkit.FullScale()
	}
	outDir, err := os.MkdirTemp("", "v2vbench-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(outDir)

	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace("v2vbench")
	}
	cfg := benchkit.Config{
		Scale:       sc,
		OutDir:      outDir,
		Parallelism: *parallel,
		Repeats:     *repeats,
		Trace:       tr,
	}
	if *cacheMB >= 0 {
		cfg.GOPCache = benchkit.NewGOPCache(int64(*cacheMB) << 20)
	}
	if *resMB >= 0 {
		cfg.ResultCache = benchkit.NewResultCache(int64(*resMB) << 20)
	}

	if *chaos {
		fmt.Fprintln(os.Stderr, "provisioning KABR-sim ...")
		kabr, err := benchkit.ProvisionKABR(*dir, sc)
		if err != nil {
			fatal(err)
		}
		if *flightOut != "" {
			cfg.Flight = obs.NewFlightRecorder(0)
		}
		overload, overloadErr := benchkit.ChaosOverloadRun(kabr, cfg, *chaosSeed)
		rows, runErr := benchkit.ChaosRun(kabr, cfg, *chaosSeed)
		// Dump the flight records before deciding the exit: a failing chaos
		// run is exactly when the dump matters (CI uploads it on failure).
		if *flightOut != "" {
			if werr := writeFlightDump(*flightOut, cfg.Flight); werr != nil {
				fatal(werr)
			}
			fmt.Fprintf(os.Stderr, "wrote errored flight records to %s\n", *flightOut)
		}
		if runErr != nil {
			fatal(runErr)
		}
		fmt.Println(benchkit.FormatChaos(
			fmt.Sprintf("Chaos — KABR-sim queries under seeded read faults (seed %d)", *chaosSeed), rows))
		if overloadErr != nil {
			fatal(overloadErr)
		}
		fmt.Println(benchkit.FormatChaosOverload(
			fmt.Sprintf("Chaos — KABR-sim under a 16x burst with an injected memory-pressure episode (seed %d)", *chaosSeed), overload))
		return
	}

	need3 := *fig == "3" || *fig == "all"
	need4 := *fig == "4" || *fig == "all"
	need5 := *fig == "5" || *fig == "all"
	needAblate := *fig == "ablate" || *fig == "all"
	needCache := *fig == "cache" || *fig == "all"
	needOverload := *fig == "overload" || *fig == "all"
	needStreaming := *fig == "streaming" || *fig == "all"
	needPixels := *fig == "pixels" || *fig == "all"
	if !need3 && !need4 && !need5 && !needAblate && !needCache && !needOverload && !needStreaming && !needPixels {
		fmt.Fprintf(os.Stderr, "v2vbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	var tos, kabr *benchkit.Dataset
	if need3 || need5 || needCache {
		fmt.Fprintln(os.Stderr, "provisioning ToS-sim ...")
		tos, err = benchkit.ProvisionToS(*dir, sc)
		if err != nil {
			fatal(err)
		}
	}
	if need4 || need5 || needAblate || needOverload || needStreaming {
		fmt.Fprintln(os.Stderr, "provisioning KABR-sim ...")
		kabr, err = benchkit.ProvisionKABR(*dir, sc)
		if err != nil {
			fatal(err)
		}
	}

	rep := report{Scale: *scale, Repeats: *repeats, Parallelism: *parallel}

	if need3 {
		rows, err := benchkit.CompareRun(tos, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(benchkit.FormatCompare("Fig. 3 — ToS-sim: V2V synthesis, unoptimized vs optimized", rows))
		rep.addCompare(tos.Name, rows)
	}
	if need4 {
		rows, err := benchkit.CompareRun(kabr, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(benchkit.FormatCompare("Fig. 4 — KABR-sim: V2V synthesis, unoptimized vs optimized", rows))
		rep.addCompare(kabr.Name, rows)
	}
	if need5 {
		var rows []benchkit.DataJoinRow
		for _, ds := range []*benchkit.Dataset{tos, kabr} {
			r, err := benchkit.DataJoinRun(ds, cfg)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, r...)
		}
		fmt.Println(benchkit.FormatDataJoin("Fig. 5 — data-joining queries: Python+OpenCV-equivalent vs V2V", rows))
		rep.addDataJoin(rows)
		if *stats {
			printRewriteStats(tos, sc)
			printRewriteStats(kabr, sc)
		}
	}
	if needCache {
		rows, err := benchkit.CacheRun(tos, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(benchkit.FormatCache("Caches — ToS-sim: off / GOP cache cold+warm / GOP+result stack cold+warm", rows))
		rep.addCache(tos.Name, rows)
	}
	if needOverload {
		rows, err := benchkit.OverloadRun(kabr, cfg, *chaosSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(benchkit.FormatOverload("Overload — KABR-sim Q4 bursts at 1x/4x/16x the measured service rate", rows))
		rep.addOverload(kabr.Name, rows)
	}
	if needStreaming {
		rows, err := benchkit.StreamingRun(kabr, "Q7", cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(benchkit.FormatStreaming("Streaming — KABR-sim Q7 (4-segment splice): presentation-order delivery at 1/4/16 concurrent streams", rows))
		rep.addStreaming(kabr.Name, rows)
	}
	if needPixels {
		rows, err := benchkit.PixelsRun(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(benchkit.FormatPixels("Pixels — per-stage pipeline throughput: point filters, fused vs unfused 3-op chain, codec encode/decode", rows))
		rep.addPixels(rows)
	}
	if needAblate {
		rows, err := benchkit.AblationRun(kabr, "Q7", cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(benchkit.FormatAblation("Ablation — optimizer passes on KABR-sim Q7 (4-segment splice)", rows))
		rep.addAblation(kabr.Name, "Q7", rows)
	}

	if *jsonOut != "" {
		if err := writeReport(*jsonOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote measurements to %s\n", *jsonOut)
	}
	if *deltaIn != "" {
		if *jsonOut == "" {
			fatal(fmt.Errorf("-delta requires -json (the current measurements to diff)"))
		}
		if err := reportDelta(*deltaIn, *jsonOut, *deltaOut); err != nil {
			fatal(err)
		}
	}
	if tr != nil {
		if err := tr.WriteJSONFile(*traceOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote trace (%d spans) to %s\n", tr.SpanCount(), *traceOut)
	}
}

func (r *report) addCompare(dataset string, rows []benchkit.Row) {
	for _, row := range rows {
		r.Compare = append(r.Compare, compareJSON{
			Dataset:               dataset,
			Query:                 row.Query,
			UnoptSeconds:          row.Unopt.Seconds(),
			OptSeconds:            row.Opt.Seconds(),
			OptFirstOutputSeconds: row.OptFirstOutput.Seconds(),
			Speedup:               row.Speedup,
		})
	}
}

func (r *report) addDataJoin(rows []benchkit.DataJoinRow) {
	for _, row := range rows {
		r.DataJoin = append(r.DataJoin, dataJoinJSON{
			Dataset:         row.Dataset,
			Query:           row.Query,
			BaselineSeconds: row.Baseline.Seconds(),
			V2VSeconds:      row.V2V.Seconds(),
			Speedup:         row.Speedup,
		})
	}
}

func (r *report) addCache(dataset string, rows []benchkit.CacheRow) {
	for _, row := range rows {
		r.Cache = append(r.Cache, cacheJSON{
			Dataset:         dataset,
			Query:           row.Query,
			OffSeconds:      row.Off.Seconds(),
			ColdSeconds:     row.Cold.Seconds(),
			WarmSeconds:     row.Warm.Seconds(),
			OffDecodes:      row.OffDecodes,
			ColdDecodes:     row.ColdDecodes,
			WarmDecodes:     row.WarmDecodes,
			DecodeReduction: row.DecodeReduction,
			ColdHits:        row.ColdHits,
			ColdMisses:      row.ColdMisses,
			WarmHits:        row.WarmHits,
			WarmMisses:      row.WarmMisses,

			ResultColdSeconds: row.ResultCold.Seconds(),
			ResultWarmSeconds: row.ResultWarm.Seconds(),
			ResultColdDecodes: row.ResultColdDecodes,
			ResultColdEncodes: row.ResultColdEncodes,
			ResultWarmDecodes: row.ResultWarmDecodes,
			ResultWarmEncodes: row.ResultWarmEncodes,
			ResultColdHits:    row.ResultColdHits,
			ResultColdMisses:  row.ResultColdMisses,
			ResultWarmHits:    row.ResultWarmHits,
			ResultWarmMisses:  row.ResultWarmMisses,

			ResultWarmFirstOutputSeconds: row.ResultWarmFirstOutput.Seconds(),
		})
	}
}

func (r *report) addOverload(dataset string, rows []benchkit.OverloadRow) {
	for _, row := range rows {
		r.Overload = append(r.Overload, overloadJSON{
			Dataset:    dataset,
			Load:       row.Load,
			Offered:    row.Offered,
			Completed:  row.Completed,
			Shed:       row.Shed,
			Failed:     row.Failed,
			ShedRate:   row.ShedRate,
			GoodputQPS: row.GoodputQPS,
			P99Seconds: row.P99.Seconds(),
		})
	}
}

func (r *report) addStreaming(dataset string, rows []benchkit.StreamingRow) {
	for _, row := range rows {
		r.Streaming = append(r.Streaming, streamingJSON{
			Dataset:        dataset,
			Query:          row.Query,
			Streams:        row.Streams,
			Segments:       row.Segments,
			WallSeconds:    row.Wall.Seconds(),
			TTFFSeconds:    row.TTFF.Seconds(),
			TTFFMaxSeconds: row.TTFFMax.Seconds(),
			MaxGapSeconds:  row.MaxSegGap.Seconds(),
			ByteIdentical:  row.ByteIdentical,
		})
	}
}

func (r *report) addPixels(rows []benchkit.PixelRow) {
	for _, row := range rows {
		r.Pixels = append(r.Pixels, pixelsJSON{
			Stage:           row.Stage,
			Frames:          row.Frames,
			MBPerSecond:     row.MBPerSecond,
			SecondsPerMB:    row.SecondsPerMB,
			SecondsPerFrame: row.SecondsPerFrame,
			AllocsPerFrame:  row.AllocsPerFrame,
			Speedup:         row.Speedup,
			Identical:       row.Identical,
		})
	}
}

func (r *report) addAblation(dataset, query string, rows []benchkit.AblationRow) {
	for _, row := range rows {
		r.Ablation = append(r.Ablation, ablationJSON{
			Dataset:     dataset,
			Query:       query,
			Config:      row.Config,
			WallSeconds: row.Wall.Seconds(),
			Encodes:     row.Encodes,
			Decodes:     row.Decodes,
			Copies:      row.Copies,
		})
	}
}

// reportDelta diffs the just-written report against a prior one, printing
// a text table and optionally writing a markdown table for CI summaries.
// A missing prior report is not an error (first run of a new generation).
func reportDelta(priorPath, curPath, mdPath string) error {
	prior, err := benchkit.LoadReport(priorPath)
	if err != nil {
		if os.IsNotExist(err) || errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "v2vbench: no prior report at %s, skipping delta\n", priorPath)
			return nil
		}
		return err
	}
	cur, err := benchkit.LoadReport(curPath)
	if err != nil {
		return err
	}
	rows := benchkit.Delta(prior, cur)
	title := fmt.Sprintf("Benchmark delta — %s vs %s", priorPath, curPath)
	fmt.Println(benchkit.FormatDelta(title, rows))
	if mdPath != "" {
		if err := os.WriteFile(mdPath, []byte(benchkit.FormatDeltaMarkdown(title, rows)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote delta markdown to %s\n", mdPath)
	}
	return nil
}

// writeFlightDump writes the errored chaos attempts in the same JSON shape
// v2vserve serves at /debug/requests?errored=1, so one set of tooling reads
// both.
func writeFlightDump(path string, fr *obs.FlightRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	recs := fr.Snapshot(obs.Filter{Errored: true})
	if recs == nil {
		recs = []obs.RequestRecord{}
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	err = enc.Encode(struct {
		SlowThresholdNS int64               `json:"slow_threshold_ns"`
		Requests        []obs.RequestRecord `json:"requests"`
	}{int64(fr.SlowThreshold()), recs})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeReport(path string, rep report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printRewriteStats reports what the data-dependent rewriter did on the
// Q10 spec of the dataset (the §V-A discussion of removed BoundingBox
// filters).
func printRewriteStats(ds *benchkit.Dataset, sc benchkit.Scale) {
	q, _ := benchkit.QueryByID("Q10")
	spec, err := vql.Parse(q.BuildSpecSource(ds, sc))
	if err != nil {
		fatal(err)
	}
	_, rs, os_, err := core.Plan(spec, core.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s Q10 data-rewrite: boxes f_dde fired %d times, arms %d -> %d; optimizer made %d copies + %d smart cuts\n",
		ds.Name, rs.Applied["boxes"], rs.ArmsBefore, rs.ArmsAfter, os_.Copies, os_.SmartCuts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "v2vbench:", err)
	os.Exit(1)
}
