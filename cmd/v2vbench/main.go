// Command v2vbench regenerates the paper's evaluation figures as text
// tables: Fig. 3 (ToS, unoptimized vs optimized), Fig. 4 (KABR), and
// Fig. 5 (data-joining queries vs the Python+OpenCV-equivalent baseline).
//
// Usage:
//
//	v2vbench -fig 3            # Fig. 3 table (ToS-sim)
//	v2vbench -fig 4            # Fig. 4 table (KABR-sim)
//	v2vbench -fig 5 [-stats]   # Fig. 5 table (both datasets)
//	v2vbench -fig ablate       # per-pass ablation table
//	v2vbench -fig all -scale full -repeats 5
//
// Absolute times depend on the host; the shape — who wins, by what factor,
// and where smart cuts fail to apply — is the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"

	"v2v/internal/benchkit"
	"v2v/internal/core"
	"v2v/internal/vql"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 3, 4, 5, or all")
		scale    = flag.String("scale", "quick", "dataset scale: quick or full (paper-shaped durations)")
		repeats  = flag.Int("repeats", 3, "measured runs per configuration (after one warm-up)")
		parallel = flag.Int("parallel", 0, "shard parallelism (0 = GOMAXPROCS)")
		dir      = flag.String("data", benchkit.DefaultDir(), "dataset cache directory")
		stats    = flag.Bool("stats", false, "with -fig 5, print data-rewrite statistics")
	)
	flag.Parse()

	sc := benchkit.QuickScale()
	if *scale == "full" {
		sc = benchkit.FullScale()
	}
	outDir, err := os.MkdirTemp("", "v2vbench-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(outDir)

	need3 := *fig == "3" || *fig == "all"
	need4 := *fig == "4" || *fig == "all"
	need5 := *fig == "5" || *fig == "all"
	needAblate := *fig == "ablate" || *fig == "all"
	if !need3 && !need4 && !need5 && !needAblate {
		fmt.Fprintf(os.Stderr, "v2vbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	var tos, kabr *benchkit.Dataset
	if need3 || need5 {
		fmt.Fprintln(os.Stderr, "provisioning ToS-sim ...")
		tos, err = benchkit.ProvisionToS(*dir, sc)
		if err != nil {
			fatal(err)
		}
	}
	if need4 || need5 || needAblate {
		fmt.Fprintln(os.Stderr, "provisioning KABR-sim ...")
		kabr, err = benchkit.ProvisionKABR(*dir, sc)
		if err != nil {
			fatal(err)
		}
	}

	if need3 {
		rows, err := benchkit.CompareRun(tos, sc, outDir, *parallel, *repeats)
		if err != nil {
			fatal(err)
		}
		fmt.Println(benchkit.FormatCompare("Fig. 3 — ToS-sim: V2V synthesis, unoptimized vs optimized", rows))
	}
	if need4 {
		rows, err := benchkit.CompareRun(kabr, sc, outDir, *parallel, *repeats)
		if err != nil {
			fatal(err)
		}
		fmt.Println(benchkit.FormatCompare("Fig. 4 — KABR-sim: V2V synthesis, unoptimized vs optimized", rows))
	}
	if need5 {
		var rows []benchkit.DataJoinRow
		for _, ds := range []*benchkit.Dataset{tos, kabr} {
			r, err := benchkit.DataJoinRun(ds, sc, outDir, *parallel, *repeats)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, r...)
		}
		fmt.Println(benchkit.FormatDataJoin("Fig. 5 — data-joining queries: Python+OpenCV-equivalent vs V2V", rows))
		if *stats {
			printRewriteStats(tos, sc)
			printRewriteStats(kabr, sc)
		}
	}
	if needAblate {
		rows, err := benchkit.AblationRun(kabr, "Q7", sc, outDir, *parallel, *repeats)
		if err != nil {
			fatal(err)
		}
		fmt.Println(benchkit.FormatAblation("Ablation — optimizer passes on KABR-sim Q7 (4-segment splice)", rows))
	}
}

// printRewriteStats reports what the data-dependent rewriter did on the
// Q10 spec of the dataset (the §V-A discussion of removed BoundingBox
// filters).
func printRewriteStats(ds *benchkit.Dataset, sc benchkit.Scale) {
	q, _ := benchkit.QueryByID("Q10")
	spec, err := vql.Parse(q.BuildSpecSource(ds, sc))
	if err != nil {
		fatal(err)
	}
	_, rs, os_, err := core.Plan(spec, core.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s Q10 data-rewrite: boxes f_dde fired %d times, arms %d -> %d; optimizer made %d copies + %d smart cuts\n",
		ds.Name, rs.Applied["boxes"], rs.ArmsBefore, rs.ArmsAfter, os_.Copies, os_.SmartCuts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "v2vbench:", err)
	os.Exit(1)
}
