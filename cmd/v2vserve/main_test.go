package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"v2v/internal/dataset"
	"v2v/internal/faults"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/obs"
	"v2v/internal/rational"
)

func testServer(t *testing.T) (*httptest.Server, string, string) {
	t.Helper()
	dir := t.TempDir()
	vid := filepath.Join(dir, "cam.vmf")
	if _, err := dataset.Generate(vid, "", dataset.TinyProfile(), rational.FromInt(3)); err != nil {
		t.Fatal(err)
	}
	specText := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { cam: %q; }
		render(t) = cam[t + 1];`, vid)
	specPath := filepath.Join(dir, "demo.v2v")
	if err := os.WriteFile(specPath, []byte(specText), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := newServer(dir, true, obs.NewRegistry())
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts, specText, "demo.v2v"
}

func readStream(t *testing.T, body io.Reader) []uint32 {
	t.Helper()
	sr, err := media.NewStreamReader(body)
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint32
	for {
		fr, err := sr.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if id, ok := frame.ReadStamp(fr); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

func TestPostSpecStreams(t *testing.T) {
	ts, specText, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	ids := readStream(t, resp.Body)
	if len(ids) != 24 {
		t.Fatalf("frames = %d", len(ids))
	}
	for i, id := range ids {
		if id != uint32(24+i) {
			t.Fatalf("frame %d stamp = %d", i, id)
		}
	}
}

func TestGetSpecByName(t *testing.T) {
	ts, _, name := testServer(t)
	resp, err := http.Get(ts.URL + "/synthesize?spec=" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if got := len(readStream(t, resp.Body)); got != 24 {
		t.Fatalf("frames = %d", got)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _, _ := testServer(t)
	cases := []struct {
		method, url, body string
	}{
		{"GET", "/synthesize", ""},                    // missing spec
		{"GET", "/synthesize?spec=../etc/passwd", ""}, // traversal
		{"GET", "/synthesize?spec=nope.v2v", ""},      // missing file
		{"POST", "/synthesize", "not a spec"},         // parse error
		{"POST", "/synthesize", ""},                   // empty
		{"PUT", "/synthesize", ""},                    // bad method
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.url, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s %s: expected failure", c.method, c.url)
		}
	}
}

func TestValidSpecName(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"demo.v2v", true},
		{"sub/dir/demo.v2v", true},
		{"a..b.v2v", true}, // dots inside a component are fine
		{"", false},
		{"..", false},
		{"../etc/passwd", false},
		{"sub/../../etc/passwd", false},
		{"/etc/passwd", false},
		{`..\etc\passwd`, false},
		{"./", false},
	}
	for _, c := range cases {
		if got := validSpecName(c.name); got != c.want {
			t.Errorf("validSpecName(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	ts, specText, _ := testServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %s %q", resp.Status, body)
	}

	// One successful synthesis and one 4xx, then scrape.
	resp, err = http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/synthesize?spec=../escape")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal spec status = %s", resp.Status)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	exposition, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"v2v_http_requests_total ",
		`v2v_http_errors_total{class="4xx"} 1`,
		"v2v_synthesis_total 1",
		"v2v_synthesis_wall_seconds_bucket{le=",
		"v2v_synthesis_wall_seconds_count 1",
		"v2v_synthesis_first_output_seconds_count 1",
	} {
		if !strings.Contains(string(exposition), want) {
			t.Errorf("metrics missing %q:\n%s", want, exposition)
		}
	}
}

func TestPprofMounted(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %s", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index looks wrong:\n%.200s", body)
	}
}

func TestFetchRemuxesToVMF(t *testing.T) {
	ts, _, name := testServer(t)
	out := filepath.Join(t.TempDir(), "fetched.vmf")
	if err := fetch(ts.URL+"/synthesize?spec="+name, out); err != nil {
		t.Fatal(err)
	}
	r, err := media.OpenReader(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumFrames() != 24 {
		t.Fatalf("frames = %d", r.NumFrames())
	}
	fr, err := r.FrameAtIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := frame.ReadStamp(fr); !ok || id != 24 {
		t.Errorf("first frame stamp = %d,%v", id, ok)
	}
	// Fetch error paths.
	if err := fetch(ts.URL+"/synthesize?spec=missing.v2v", out); err == nil {
		t.Error("missing spec fetch should fail")
	}
	if err := fetch("http://127.0.0.1:1/nope", out); err == nil {
		t.Error("unreachable server should fail")
	}
}

// TestClientDisconnectCancelsSynthesis drops the client mid-stream and
// asserts the server stops the synthesis cooperatively, counting it in
// v2v_synthesis_canceled_total rather than as a failure.
func TestClientDisconnectCancelsSynthesis(t *testing.T) {
	dir := t.TempDir()
	vid := filepath.Join(dir, "cam.vmf")
	if _, err := dataset.Generate(vid, "", dataset.TinyProfile(), rational.FromInt(3)); err != nil {
		t.Fatal(err)
	}
	// A long render over a slowed source: every read sleeps, so the
	// synthesis is still mid-flight when the client walks away.
	specText := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { cam: %q; }
		render(t) = grade(cam[t], 5, 1.0, 1.0);`, vid)
	inj := faults.New(faults.Config{Latency: 2 * time.Millisecond, LatencyProb: 1})
	inj.Activate()
	defer faults.Deactivate()

	srv := newServer(dir, true, obs.NewRegistry())
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/synthesize", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little of the stream to prove synthesis started, then hang up.
	io.CopyN(io.Discard, resp.Body, 64)
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.synthCanceled.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("synthCanceled = %d, synthFail = %d; server never counted the disconnect",
				srv.synthCanceled.Value(), srv.synthFail.Value())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.synthFail.Value(); n != 0 {
		t.Errorf("client disconnect counted as failure (synthFail = %d)", n)
	}
}

func TestValidateServeFlags(t *testing.T) {
	if err := validateServeFlags(30*time.Second, 0, 0, 0, 0); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	if err := validateServeFlags(time.Minute, time.Minute, -1, -1, 0); err != nil {
		t.Errorf("-1 cache disables should validate: %v", err)
	}
	for _, tc := range []struct {
		name                     string
		drain, synthTO           time.Duration
		cacheMB, resMB, budgetMB int
		want                     string
	}{
		{"negative drain", -time.Second, 0, 0, 0, 0, "-drain"},
		{"negative synth timeout", 0, -time.Second, 0, 0, 0, "-synth-timeout"},
		{"absurd synth timeout", 0, 48 * time.Hour, 0, 0, 0, "exceeds"},
		{"bad gop cache", 0, 0, -2, 0, 0, "-gop-cache-mb"},
		{"bad result cache", 0, 0, 0, -9, 0, "-result-cache-mb"},
		{"bytes-not-MiB cache", 0, 0, 1 << 30, 0, 0, "MiB, not bytes"},
		{"negative budget", 0, 0, 0, 0, -1, "-cache-budget-mb"},
	} {
		err := validateServeFlags(tc.drain, tc.synthTO, tc.cacheMB, tc.resMB, tc.budgetMB)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}
