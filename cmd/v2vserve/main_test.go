package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"v2v"
	"v2v/internal/admit"
	"v2v/internal/dataset"
	"v2v/internal/faults"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/obs"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

func testServer(t *testing.T) (*httptest.Server, string, string) {
	t.Helper()
	dir := t.TempDir()
	vid := filepath.Join(dir, "cam.vmf")
	if _, err := dataset.Generate(vid, "", dataset.TinyProfile(), rational.FromInt(3)); err != nil {
		t.Fatal(err)
	}
	specText := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { cam: %q; }
		render(t) = cam[t + 1];`, vid)
	specPath := filepath.Join(dir, "demo.v2v")
	if err := os.WriteFile(specPath, []byte(specText), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := newServer(dir, true, obs.NewRegistry())
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts, specText, "demo.v2v"
}

func readStream(t *testing.T, body io.Reader) []uint32 {
	t.Helper()
	sr, err := media.NewStreamReader(body)
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint32
	for {
		fr, err := sr.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if id, ok := frame.ReadStamp(fr); ok {
			ids = append(ids, id)
		}
	}
	return ids
}

func TestPostSpecStreams(t *testing.T) {
	ts, specText, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	ids := readStream(t, resp.Body)
	if len(ids) != 24 {
		t.Fatalf("frames = %d", len(ids))
	}
	for i, id := range ids {
		if id != uint32(24+i) {
			t.Fatalf("frame %d stamp = %d", i, id)
		}
	}
}

func TestGetSpecByName(t *testing.T) {
	ts, _, name := testServer(t)
	resp, err := http.Get(ts.URL + "/synthesize?spec=" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if got := len(readStream(t, resp.Body)); got != 24 {
		t.Fatalf("frames = %d", got)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _, _ := testServer(t)
	cases := []struct {
		method, url, body string
	}{
		{"GET", "/synthesize", ""},                    // missing spec
		{"GET", "/synthesize?spec=../etc/passwd", ""}, // traversal
		{"GET", "/synthesize?spec=nope.v2v", ""},      // missing file
		{"POST", "/synthesize", "not a spec"},         // parse error
		{"POST", "/synthesize", ""},                   // empty
		{"PUT", "/synthesize", ""},                    // bad method
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.url, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s %s: expected failure", c.method, c.url)
		}
	}
}

func TestValidSpecName(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"demo.v2v", true},
		{"sub/dir/demo.v2v", true},
		{"a..b.v2v", true}, // dots inside a component are fine
		{"", false},
		{"..", false},
		{"../etc/passwd", false},
		{"sub/../../etc/passwd", false},
		{"/etc/passwd", false},
		{`..\etc\passwd`, false},
		{"./", false},
	}
	for _, c := range cases {
		if got := validSpecName(c.name); got != c.want {
			t.Errorf("validSpecName(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	ts, specText, _ := testServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %s %q", resp.Status, body)
	}

	// One successful synthesis and one 4xx, then scrape.
	resp, err = http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/synthesize?spec=../escape")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("traversal spec status = %s", resp.Status)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	exposition, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"v2v_http_requests_total ",
		`v2v_http_errors_total{class="4xx"} 1`,
		"v2v_synthesis_total 1",
		"v2v_synthesis_wall_seconds_bucket{le=",
		"v2v_synthesis_wall_seconds_count 1",
		"v2v_synthesis_first_output_seconds_count 1",
	} {
		if !strings.Contains(string(exposition), want) {
			t.Errorf("metrics missing %q:\n%s", want, exposition)
		}
	}
}

func TestPprofMounted(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %s", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index looks wrong:\n%.200s", body)
	}
}

func TestFetchRemuxesToVMF(t *testing.T) {
	ts, _, name := testServer(t)
	out := filepath.Join(t.TempDir(), "fetched.vmf")
	if err := fetch(ts.URL+"/synthesize?spec="+name, out); err != nil {
		t.Fatal(err)
	}
	r, err := media.OpenReader(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumFrames() != 24 {
		t.Fatalf("frames = %d", r.NumFrames())
	}
	fr, err := r.FrameAtIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := frame.ReadStamp(fr); !ok || id != 24 {
		t.Errorf("first frame stamp = %d,%v", id, ok)
	}
	// Fetch error paths.
	if err := fetch(ts.URL+"/synthesize?spec=missing.v2v", out); err == nil {
		t.Error("missing spec fetch should fail")
	}
	if err := fetch("http://127.0.0.1:1/nope", out); err == nil {
		t.Error("unreachable server should fail")
	}
}

// TestClientDisconnectCancelsSynthesis drops the client mid-stream and
// asserts the server stops the synthesis cooperatively, counting it in
// v2v_synthesis_canceled_total rather than as a failure.
func TestClientDisconnectCancelsSynthesis(t *testing.T) {
	dir := t.TempDir()
	vid := filepath.Join(dir, "cam.vmf")
	if _, err := dataset.Generate(vid, "", dataset.TinyProfile(), rational.FromInt(3)); err != nil {
		t.Fatal(err)
	}
	// A long render over a slowed source: every read sleeps, so the
	// synthesis is still mid-flight when the client walks away.
	specText := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { cam: %q; }
		render(t) = grade(cam[t], 5, 1.0, 1.0);`, vid)
	inj := faults.New(faults.Config{Latency: 2 * time.Millisecond, LatencyProb: 1})
	inj.Activate()
	defer faults.Deactivate()

	srv := newServer(dir, true, obs.NewRegistry())
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/synthesize", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little of the stream to prove synthesis started, then hang up.
	io.CopyN(io.Discard, resp.Body, 64)
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.synthCanceled.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("synthCanceled = %d, synthFail = %d; server never counted the disconnect",
				srv.synthCanceled.Value(), srv.synthFail.Value())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.synthFail.Value(); n != 0 {
		t.Errorf("client disconnect counted as failure (synthFail = %d)", n)
	}
}

func TestValidateServeFlags(t *testing.T) {
	if err := validateServeFlags(30*time.Second, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, "", "text"); err != nil {
		t.Errorf("defaults should validate: %v", err)
	}
	if err := validateServeFlags(time.Minute, time.Minute, 5*time.Second, 100*time.Millisecond, -1, -1, 0, 500, 1024, 8, 128, 512, "gold=3,free=1", "json"); err != nil {
		t.Errorf("full flag set should validate: %v", err)
	}
	for _, tc := range []struct {
		name                              string
		drain, synthTO, admitTO, flushIvl time.Duration
		cacheMB, resMB, budgetMB          int
		slowMS, flightSize                int
		parallel, maxQueue, streamKB      int
		tenantW                           string
		logFormat                         string
		want                              string
	}{
		{"negative drain", -time.Second, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, "", "", "-drain"},
		{"negative synth timeout", 0, -time.Second, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, "", "", "-synth-timeout"},
		{"absurd synth timeout", 0, 48 * time.Hour, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, "", "", "exceeds"},
		{"negative admit timeout", 0, 0, -time.Second, 0, 0, 0, 0, 0, 0, 0, 0, 0, "", "", "-admit-timeout"},
		{"negative flush interval", 0, 0, 0, -time.Second, 0, 0, 0, 0, 0, 0, 0, 0, "", "", "-flush-interval"},
		{"absurd flush interval", 0, 0, 0, 48 * time.Hour, 0, 0, 0, 0, 0, 0, 0, 0, "", "", "-flush-interval"},
		{"bad gop cache", 0, 0, 0, 0, -2, 0, 0, 0, 0, 0, 0, 0, "", "", "-gop-cache-mb"},
		{"bad result cache", 0, 0, 0, 0, 0, -9, 0, 0, 0, 0, 0, 0, "", "", "-result-cache-mb"},
		{"bytes-not-MiB cache", 0, 0, 0, 0, 1 << 30, 0, 0, 0, 0, 0, 0, 0, "", "", "MiB, not bytes"},
		{"negative budget", 0, 0, 0, 0, 0, 0, -1, 0, 0, 0, 0, 0, "", "", "-cache-budget-mb"},
		{"negative slow threshold", 0, 0, 0, 0, 0, 0, 0, -5, 0, 0, 0, 0, "", "", "-slow-query-ms"},
		{"negative flight ring", 0, 0, 0, 0, 0, 0, 0, 0, -1, 0, 0, 0, "", "", "-flight-recorder-size"},
		{"absurd flight ring", 0, 0, 0, 0, 0, 0, 0, 0, 1 << 20, 0, 0, 0, "", "", "-flight-recorder-size"},
		{"negative parallel", 0, 0, 0, 0, 0, 0, 0, 0, 0, -1, 0, 0, "", "", "-parallel"},
		{"negative max queue", 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, -1, 0, "", "", "-max-queue"},
		{"absurd max queue", 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1 << 20, 0, "", "", "-max-queue"},
		{"negative stream buffer", 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, -1, "", "", "-stream-buffer-kb"},
		{"bytes-not-KiB stream buffer", 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1 << 28, "", "", "KiB, not bytes"},
		{"bad tenant weight", 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, "gold=0", "", "-tenant-weight"},
		{"bad log format", 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, "", "xml", "-log-format"},
	} {
		err := validateServeFlags(tc.drain, tc.synthTO, tc.admitTO, tc.flushIvl, tc.cacheMB, tc.resMB, tc.budgetMB,
			tc.slowMS, tc.flightSize, tc.parallel, tc.maxQueue, tc.streamKB, tc.tenantW, tc.logFormat)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// renderServer is testServer with a spec whose expression cannot be
// stream-copied, so the request actually decodes, filters, and encodes —
// the stage accounting the debug tests assert on.
func renderServer(t *testing.T) (*server, *httptest.Server, string, string) {
	t.Helper()
	dir := t.TempDir()
	vid := filepath.Join(dir, "cam.vmf")
	if _, err := dataset.Generate(vid, "", dataset.TinyProfile(), rational.FromInt(3)); err != nil {
		t.Fatal(err)
	}
	specText := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { cam: %q; }
		render(t) = grade(cam[t], 5, 1.0, 1.0);`, vid)
	srv := newServer(dir, true, obs.NewRegistry())
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts, specText, vid
}

// flightResponse mirrors the /debug/requests JSON shape the tests assert.
type flightResponse struct {
	SlowThresholdNS int64 `json:"slow_threshold_ns"`
	Requests        []struct {
		ID       uint64 `json:"id"`
		TraceID  string `json:"trace_id"`
		Query    string `json:"query"`
		Plan     string `json:"plan"`
		Active   bool   `json:"active"`
		Outcome  string `json:"outcome"`
		Error    string `json:"error"`
		Segments []struct {
			Kind          string `json:"kind"`
			WallNS        int64  `json:"wall_ns"`
			FramesEncoded int64  `json:"frames_encoded"`
			EncodeWallNS  int64  `json:"encode_wall_ns"`
			EncodeBytes   int64  `json:"encode_bytes"`
			DecodeWallNS  int64  `json:"decode_wall_ns"`
			DecodeBytes   int64  `json:"decode_bytes"`
		} `json:"segments"`
		Stages map[string]struct {
			Frames int64 `json:"frames"`
			Bytes  int64 `json:"bytes"`
			WallNS int64 `json:"wall_ns"`
		} `json:"stages"`
		GOPCacheHits   int64 `json:"gop_cache_hits"`
		GOPCacheMisses int64 `json:"gop_cache_misses"`
	} `json:"requests"`
}

func getFlight(t *testing.T, url string) flightResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s status = %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("%s content type = %q", url, ct)
	}
	var fr flightResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	return fr
}

// TestDebugRequestsRecordsSynthesis drives one request end to end and
// asserts the flight record carries the per-segment decisions, per-stage
// accounting, and the same trace ID the response header advertised.
func TestDebugRequestsRecordsSynthesis(t *testing.T) {
	_, ts, specText, _ := renderServer(t)
	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if traceID == "" {
		t.Fatal("no X-Trace-Id header on the synthesis response")
	}

	fr := getFlight(t, ts.URL+"/debug/requests")
	if len(fr.Requests) != 1 {
		t.Fatalf("requests = %d, want 1", len(fr.Requests))
	}
	rec := fr.Requests[0]
	if rec.TraceID != traceID {
		t.Errorf("record trace_id = %q, header = %q", rec.TraceID, traceID)
	}
	if rec.Outcome != "ok" || rec.Active {
		t.Errorf("outcome = %q active = %v", rec.Outcome, rec.Active)
	}
	if !strings.Contains(rec.Query, "render(t)") {
		t.Errorf("query text not recorded: %q", rec.Query)
	}
	if !strings.Contains(rec.Plan, "concat") {
		t.Errorf("plan summary not recorded: %q", rec.Plan)
	}
	if len(rec.Segments) == 0 {
		t.Fatal("no segment records")
	}
	seg := rec.Segments[0]
	if seg.Kind != "render" {
		t.Errorf("segment kind = %q", seg.Kind)
	}
	if seg.FramesEncoded == 0 || seg.EncodeWallNS == 0 || seg.EncodeBytes == 0 {
		t.Errorf("segment stage accounting empty: %+v", seg)
	}
	if st, ok := rec.Stages["encode"]; !ok || st.Frames == 0 || st.Bytes == 0 {
		t.Errorf("encode stage totals missing: %+v", rec.Stages)
	}
	if st, ok := rec.Stages["decode"]; !ok || st.Frames == 0 {
		t.Errorf("decode stage totals missing: %+v", rec.Stages)
	}

	// The span trace is exported under the same ID.
	resp, err = http.Get(ts.URL + "/debug/requests?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	traceJSON, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace export status = %s", resp.Status)
	}
	for _, want := range []string{"traceEvents", traceID, "synthesize"} {
		if !strings.Contains(string(traceJSON), want) {
			t.Errorf("trace export missing %q", want)
		}
	}

	// HTML rendering works and mentions the trace ID.
	resp, err = http.Get(ts.URL + "/debug/requests?format=html")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "<table") || !strings.Contains(string(page), traceID) {
		t.Errorf("html view missing table or trace id:\n%.300s", page)
	}
}

// TestDebugRequestsFilters exercises the errored= and slow= filters.
func TestDebugRequestsFilters(t *testing.T) {
	ts, specText, _ := testServer(t)

	// One parse failure, one success.
	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader("not a spec"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if all := getFlight(t, ts.URL+"/debug/requests"); len(all.Requests) != 2 {
		t.Fatalf("unfiltered requests = %d, want 2", len(all.Requests))
	}
	errored := getFlight(t, ts.URL+"/debug/requests?errored=1")
	if len(errored.Requests) != 1 || errored.Requests[0].Outcome != "error" {
		t.Fatalf("errored filter = %+v", errored.Requests)
	}
	if errored.Requests[0].Error == "" {
		t.Error("errored record has no error text")
	}

	// With no slow threshold configured the slow filter matches nothing;
	// with a tiny one it matches every completed request.
	if slow := getFlight(t, ts.URL+"/debug/requests?slow=1"); len(slow.Requests) != 0 {
		t.Errorf("slow filter without threshold = %d records", len(slow.Requests))
	}
}

// TestDebugRequestsSlowThreshold runs a server whose flight recorder has a
// 1ns slow threshold, so every request qualifies as slow.
func TestDebugRequestsSlowThreshold(t *testing.T) {
	srv, ts, specText, _ := renderServer(t)
	srv.flight.SetSlowThreshold(time.Nanosecond)

	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	fr := getFlight(t, ts.URL+"/debug/requests?slow=1")
	if len(fr.Requests) != 1 {
		t.Fatalf("slow requests = %d, want 1", len(fr.Requests))
	}
	if fr.SlowThresholdNS != 1 {
		t.Errorf("slow_threshold_ns = %d", fr.SlowThresholdNS)
	}
}

// TestDebugCaches builds a server with both caches and the arbiter, runs a
// synthesis, and asserts the cache dump reports stats, resident entries,
// and the budget split.
func TestDebugCaches(t *testing.T) {
	srv, ts, specText, vid := renderServer(t)
	srv.gopCache = v2v.NewGOPCache(64 << 20)
	srv.resultCache = v2v.NewResultCache(64 << 20)
	srv.arbiter = v2v.NewCacheArbiter(0)
	srv.gopCache.AttachArbiter(srv.arbiter)
	srv.resultCache.AttachArbiter(srv.arbiter)

	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/debug/caches")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var dump struct {
		GOP *struct {
			Stats struct {
				Misses int64 `json:"misses"`
				Bytes  int64 `json:"bytes"`
			} `json:"stats"`
			Entries []struct {
				Path   string `json:"path"`
				Frames int    `json:"frames"`
				Bytes  int64  `json:"bytes"`
			} `json:"entries"`
		} `json:"gop"`
		Result *struct {
			Stats   map[string]any `json:"stats"`
			Entries []any          `json:"entries"`
		} `json:"result"`
		Arbiter *struct {
			Total  int64            `json:"total"`
			Used   int64            `json:"used"`
			Client map[string]int64 `json:"client"`
		} `json:"arbiter"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.GOP == nil || dump.Result == nil || dump.Arbiter == nil {
		t.Fatalf("missing sections: gop=%v result=%v arbiter=%v",
			dump.GOP != nil, dump.Result != nil, dump.Arbiter != nil)
	}
	if dump.GOP.Stats.Misses == 0 || len(dump.GOP.Entries) == 0 {
		t.Errorf("gop cache saw no fills: stats=%+v entries=%d", dump.GOP.Stats, len(dump.GOP.Entries))
	}
	if dump.GOP.Entries[0].Path != vid || dump.GOP.Entries[0].Frames == 0 {
		t.Errorf("gop entry = %+v", dump.GOP.Entries[0])
	}
	if dump.Arbiter.Used == 0 || dump.Arbiter.Client["gop"] == 0 {
		t.Errorf("arbiter split = %+v", dump.Arbiter)
	}

	// A cache-less server omits the sections instead of panicking.
	bare := newServer(t.TempDir(), true, obs.NewRegistry())
	bts := httptest.NewServer(bare.routes())
	defer bts.Close()
	resp, err = http.Get(bts.URL + "/debug/caches")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "gop") || strings.Contains(string(body), "arbiter") {
		t.Errorf("bare server dump should omit cache sections: %s", body)
	}
}

// admissionServer is testServer, additionally returning the server struct
// so tests can reach the admission controller directly.
func admissionServer(t *testing.T) (*server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	vid := filepath.Join(dir, "cam.vmf")
	if _, err := dataset.Generate(vid, "", dataset.TinyProfile(), rational.FromInt(3)); err != nil {
		t.Fatal(err)
	}
	specText := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { cam: %q; }
		render(t) = cam[t + 1];`, vid)
	srv := newServer(dir, true, obs.NewRegistry())
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts, specText
}

// flightDump decodes a /debug/requests JSON response.
type flightDump struct {
	Requests []struct {
		Outcome    string  `json:"outcome"`
		ShedReason string  `json:"shed_reason"`
		Tenant     string  `json:"tenant"`
		CostUnits  float64 `json:"cost_units"`
	} `json:"requests"`
}

func TestPressureShedReturns503WithRetryAfter(t *testing.T) {
	srv, ts, specText := admissionServer(t)
	// Critical memory pressure with factor 0 closes admission entirely.
	srv.admit.SetPressureFactor(0)
	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %s, want 503; body %q", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}

	// The shed request is queryable at /debug/requests?shed=1, with its
	// tenant, cost estimate, and shed reason recorded.
	dresp, err := http.Get(ts.URL + "/debug/requests?shed=1")
	if err != nil {
		t.Fatal(err)
	}
	var dump flightDump
	err = json.NewDecoder(dresp.Body).Decode(&dump)
	dresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Requests) != 1 {
		t.Fatalf("shed filter returned %d records, want 1", len(dump.Requests))
	}
	rec := dump.Requests[0]
	if rec.Outcome != "shed" || rec.ShedReason != "pressure" {
		t.Errorf("shed record outcome=%q reason=%q", rec.Outcome, rec.ShedReason)
	}
	if rec.Tenant != "default" || rec.CostUnits <= 0 {
		t.Errorf("shed record tenant=%q cost=%v; want default tenant with a positive cost estimate", rec.Tenant, rec.CostUnits)
	}

	// Pressure clears: the same request is admitted and completes.
	srv.admit.SetPressureFactor(1)
	resp2, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status after recovery = %s, want 200", resp2.Status)
	}
	if got := len(readStream(t, resp2.Body)); got != 24 {
		t.Fatalf("frames after recovery = %d", got)
	}
}

func TestQueueFullShedsWith429(t *testing.T) {
	srv, ts, specText := admissionServer(t)
	// One slot, one queue seat: a held slot plus one queued request makes
	// the next arrival overflow.
	srv.admit = admit.NewController(admit.Config{SlotCap: 1, MaxQueue: 1, MaxWait: 30 * time.Second})
	holder, err := srv.admit.Acquire(context.Background(), admit.Request{Cost: 1})
	if err != nil {
		t.Fatal(err)
	}

	queued := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
		if err != nil {
			queued <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			queued <- fmt.Errorf("queued request status = %s, want 200", resp.Status)
			return
		}
		queued <- nil
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.admit.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %s, want 429; body %q", resp.Status, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}

	// Releasing the held slot lets the queued request run to completion.
	holder.Release(nil)
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
}

func TestDebugAdmitEndpoint(t *testing.T) {
	srv, ts, specText := admissionServer(t)
	req, _ := http.NewRequest("POST", ts.URL+"/synthesize", strings.NewReader(specText))
	req.Header.Set("X-Tenant", "gold")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesis status = %s", resp.Status)
	}

	dresp, err := http.Get(ts.URL + "/debug/admit")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var dump struct {
		Admission admit.Stats `json:"admission"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Admission.MaxQueue <= 0 || dump.Admission.SlotCap <= 0 {
		t.Errorf("admission config not populated: %+v", dump.Admission)
	}
	gold, ok := dump.Admission.Tenants["gold"]
	if !ok || gold.Admitted < 1 {
		t.Errorf("tenant gold not accounted: %+v", dump.Admission.Tenants)
	}
	if srv.admit.Stats().Inflight != 0 {
		t.Errorf("inflight = %d after request completed", srv.admit.Stats().Inflight)
	}
}

func TestInvalidDeadlineHeaderRejected(t *testing.T) {
	_, ts, specText := admissionServer(t)
	for _, bad := range []string{"abc", "-5", "0"} {
		req, _ := http.NewRequest("POST", ts.URL+"/synthesize", strings.NewReader(specText))
		req.Header.Set("X-Deadline-Ms", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("X-Deadline-Ms %q: status = %s, want 400", bad, resp.Status)
		}
	}

	// A generous deadline streams normally.
	req, _ := http.NewRequest("POST", ts.URL+"/synthesize", strings.NewReader(specText))
	req.Header.Set("X-Deadline-Ms", "60000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s, want 200", resp.Status)
	}
	if got := len(readStream(t, resp.Body)); got != 24 {
		t.Fatalf("frames = %d", got)
	}
}

func TestRequestTenant(t *testing.T) {
	for _, tc := range []struct {
		tenant, apiKey, want string
	}{
		{"", "", "default"},
		{"gold", "", "gold"},
		{"", "key123", "key123"},
		{"gold", "key123", "gold"},
		{"  ", "", "default"},
	} {
		r := httptest.NewRequest("POST", "/synthesize", nil)
		if tc.tenant != "" {
			r.Header.Set("X-Tenant", tc.tenant)
		}
		if tc.apiKey != "" {
			r.Header.Set("X-API-Key", tc.apiKey)
		}
		if got := requestTenant(r); got != tc.want {
			t.Errorf("requestTenant(X-Tenant=%q, X-API-Key=%q) = %q, want %q",
				tc.tenant, tc.apiKey, got, tc.want)
		}
	}
}

// streamingServer builds a server over a 3s source with a multi-segment
// splice spec (one copyable arm, one rendered arm) and returns the server
// struct so tests can read its counters directly.
func streamingServer(t *testing.T, bufBytes int) (*server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	vid := filepath.Join(dir, "cam.vmf")
	if _, err := dataset.Generate(vid, "", dataset.TinyProfile(), rational.FromInt(3)); err != nil {
		t.Fatal(err)
	}
	specText := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { cam: %q; }
		render(t) = match t {
			t in range(0, 1, 1/24) => cam[t],
			t in range(1, 2, 1/24) => grade(cam[t], 5, 1.0, 1.0),
		};`, vid)
	srv := newServer(dir, true, obs.NewRegistry())
	srv.streamBufBytes = bufBytes
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts, specText
}

// metricValue scrapes /metrics and returns the value of the named sample.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parse %s sample %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestStreamOptInDeliversIdenticalBytes asserts the ?stream=1 opt-in
// changes delivery timing only: the response bytes are identical to the
// buffered response, the stream ends with a clean typed trailer, and the
// TTFF histogram records the request.
func TestStreamOptInDeliversIdenticalBytes(t *testing.T) {
	srv, ts, specText := streamingServer(t, 0)

	post := func(url string) []byte {
		resp, err := http.Post(url, "text/plain", strings.NewReader(specText))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %s", resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	plain := post(ts.URL + "/synthesize")
	streamed := post(ts.URL + "/synthesize?stream=1")
	if !strings.EqualFold(fmt.Sprintf("%x", plain), fmt.Sprintf("%x", streamed)) {
		t.Fatalf("streamed bytes differ from buffered bytes: %d vs %d", len(streamed), len(plain))
	}

	sr, err := media.NewStreamReader(strings.NewReader(string(streamed)))
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for {
		if _, err := sr.NextFrame(); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		frames++
	}
	if frames != 48 {
		t.Fatalf("streamed frames = %d, want 48", frames)
	}
	if tr, ok := sr.Trailer(); !ok || tr.Status != "ok" {
		t.Errorf("trailer = %+v,%v; want clean ok trailer", tr, ok)
	}

	if got := metricValue(t, ts, "v2v_stream_ttff_seconds_count"); got != 1 {
		t.Errorf("ttff histogram count = %g, want 1 (only the ?stream=1 request)", got)
	}
	if n := srv.truncated.Value(); n != 0 {
		t.Errorf("truncated streams = %d, want 0", n)
	}
}

// TestStreamAcceptHeaderOptsIn asserts the Accept-based opt-in works like
// ?stream=1.
func TestStreamAcceptHeaderOptsIn(t *testing.T) {
	_, ts, specText := streamingServer(t, 0)
	req, _ := http.NewRequest("POST", ts.URL+"/synthesize", strings.NewReader(specText))
	req.Header.Set("Accept", "application/x-v2v-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := len(readStream(t, resp.Body)); got != 48 {
		t.Fatalf("frames = %d, want 48", got)
	}
	if got := metricValue(t, ts, "v2v_stream_ttff_seconds_count"); got != 1 {
		t.Errorf("ttff histogram count = %g, want 1", got)
	}
}

// TestStreamFailureWritesTypedTrailer injects a panicking transform into
// the second segment: the response starts (header out), then fails. The
// client must see the typed error trailer — not a silently cut stream —
// and the server counts the truncation.
func TestStreamFailureWritesTypedTrailer(t *testing.T) {
	registerServePanicUDF()
	srv, ts, _ := streamingServer(t, 0)
	dir := t.TempDir()
	vid := filepath.Join(dir, "cam.vmf")
	if _, err := dataset.Generate(vid, "", dataset.TinyProfile(), rational.FromInt(3)); err != nil {
		t.Fatal(err)
	}
	specText := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { cam: %q; }
		render(t) = match t {
			t in range(0, 1, 1/24) => grade(cam[t], 5, 1.0, 1.0),
			t in range(1, 2, 1/24) => servetest_panic(cam[t]),
		};`, vid)

	for i, url := range []string{ts.URL + "/synthesize?stream=1", ts.URL + "/synthesize"} {
		resp, err := http.Post(url, "text/plain", strings.NewReader(specText))
		if err != nil {
			t.Fatal(err)
		}
		sr, err := media.NewStreamReader(resp.Body)
		if err != nil {
			resp.Body.Close()
			t.Fatal(err)
		}
		var last error
		for {
			if _, _, last = sr.NextPacket(); last != nil {
				break
			}
		}
		resp.Body.Close()
		if !errors.Is(last, media.ErrStreamFailed) {
			t.Fatalf("request %d: stream ended with %v, want ErrStreamFailed", i, last)
		}
		if tr, ok := sr.Trailer(); !ok || tr.Status != "error" || tr.Error == "" {
			t.Errorf("request %d: trailer = %+v,%v; want typed error trailer", i, tr, ok)
		}
	}
	if n := srv.truncated.Value(); n != 2 {
		t.Errorf("truncated streams = %d, want 2", n)
	}
	if n := srv.synthFail.Value(); n != 2 {
		t.Errorf("synthesis failures = %d, want 2", n)
	}
}

// TestStreamSlowClientDoesNotBlockOthers drains a streaming response a
// few hundred bytes at a time with a pause between reads, while a second
// buffered request runs concurrently. The slow client's backpressure must
// stall only its own request: the concurrent request finishes first, and
// the slow stream still arrives complete. The streaming request's TTFF is
// also far below its wall time — the client got first bytes while the
// rest was still being squeezed through the tiny queue.
func TestStreamSlowClientDoesNotBlockOthers(t *testing.T) {
	srv, ts, specText := streamingServer(t, 4<<10)

	type done struct {
		frames int
		at     time.Time
		err    error
	}
	slowCh := make(chan done, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/synthesize?stream=1", "text/plain", strings.NewReader(specText))
		if err != nil {
			slowCh <- done{err: err}
			return
		}
		defer resp.Body.Close()
		var whole []byte
		buf := make([]byte, 512)
		for {
			n, rerr := resp.Body.Read(buf)
			whole = append(whole, buf[:n]...)
			if rerr != nil {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		sr, err := media.NewStreamReader(strings.NewReader(string(whole)))
		if err != nil {
			slowCh <- done{err: err}
			return
		}
		frames := 0
		for {
			if _, err := sr.NextFrame(); err != nil {
				if err != io.EOF {
					slowCh <- done{err: err}
					return
				}
				break
			}
			frames++
		}
		slowCh <- done{frames: frames, at: time.Now()}
	}()

	// Give the slow stream a head start, then run a buffered request.
	time.Sleep(20 * time.Millisecond)
	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(specText))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(readStream(t, resp.Body)); got != 48 {
		t.Fatalf("concurrent request frames = %d, want 48", got)
	}
	resp.Body.Close()
	fastDone := time.Now()

	slow := <-slowCh
	if slow.err != nil {
		t.Fatal(slow.err)
	}
	if slow.frames != 48 {
		t.Fatalf("slow client frames = %d, want 48", slow.frames)
	}
	if !fastDone.Before(slow.at) {
		t.Errorf("concurrent request finished after the slow client; slow client pinned the server")
	}
	if n := srv.truncated.Value(); n != 0 {
		t.Errorf("truncated streams = %d, want 0", n)
	}

	// Honest TTFF: the streaming request's first flush happened long
	// before its wall clock ran out draining through the tiny queue.
	ttff := metricValue(t, ts, "v2v_stream_ttff_seconds_sum")
	wall := metricValue(t, ts, "v2v_synthesis_wall_seconds_sum")
	if ttff <= 0 || ttff > wall/2 {
		t.Errorf("ttff sum = %gs vs wall sum = %gs; TTFF should be well below wall", ttff, wall)
	}
}

// registerServePanicUDF registers a panicking transform for the
// mid-stream failure tests, skipping re-registration across -count runs.
func registerServePanicUDF() {
	if _, ok := vql.Lookup("servetest_panic"); ok {
		return
	}
	vql.Register(&vql.Transform{
		Name:   "servetest_panic",
		Params: []vql.Type{vql.TypeFrame},
		Result: vql.TypeFrame,
		Eval: func([]vql.Val) (vql.Val, error) {
			panic("boom")
		},
	})
}
