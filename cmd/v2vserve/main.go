// Command v2vserve is the on-demand synthesis server the paper envisions
// a VDBMS embedding: clients POST a spec and receive the result video as a
// progressive VMS stream — playback-ready packets start flowing while
// later segments are still rendering.
//
// Serve:
//
//	v2vserve -listen :8370 -specs ./specs
//
// Endpoints:
//
//	POST /synthesize          spec text in the body -> VMS stream
//	GET  /synthesize?spec=X   loads <specs>/X -> VMS stream
//	GET  /healthz             liveness probe
//	GET  /metrics             Prometheus text exposition
//	GET  /debug/pprof/        net/http/pprof profiles
//
// SIGINT/SIGTERM drain in-flight streams (up to -drain) before exiting.
//
// Fetch (client mode): retrieve a stream and save it as a seekable VMF
// file:
//
//	v2vserve -fetch http://host:8370/synthesize?spec=demo.v2v -out result.vmf
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"v2v"
	"v2v/internal/cliutil"
	"v2v/internal/media"
	"v2v/internal/obs"
)

// validateServeFlags rejects nonsensical flag values before any server
// state is built, so a typo'd unit (bytes instead of MiB, negative
// durations) fails fast with a clear message.
func validateServeFlags(drain, synthTO time.Duration, cacheMB, resMB, budgetMB int) error {
	return errors.Join(
		cliutil.ValidateTimeout("-drain", drain),
		cliutil.ValidateTimeout("-synth-timeout", synthTO),
		cliutil.ValidateCacheMB("-gop-cache-mb", cacheMB),
		cliutil.ValidateCacheMB("-result-cache-mb", resMB),
		cliutil.ValidateBudgetMB("-cache-budget-mb", budgetMB),
	)
}

func main() {
	var (
		listen   = flag.String("listen", ":8370", "serve address")
		specs    = flag.String("specs", ".", "directory for GET ?spec= lookups")
		noOpt    = flag.Bool("no-opt", false, "disable the optimizer (for demos)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout for in-flight streams")
		synthTO  = flag.Duration("synth-timeout", 0, "per-request synthesis timeout (0 = no limit)")
		strict   = flag.Bool("strict", false, "fail requests on corrupt or undecodable source packets instead of concealing them")
		cacheMB  = flag.Int("gop-cache-mb", 0, "decoded-GOP cache budget in MiB shared across all requests (0 = auto-size from the sources, -1 = disable)")
		resMB    = flag.Int("result-cache-mb", 0, "encoded-result cache budget in MiB shared across all requests (0 = 256 MiB default, -1 = disable)")
		budgetMB = flag.Int("cache-budget-mb", 0, "unified byte budget in MiB shared by the GOP and result caches via an arbiter (0 = sum of the per-cache budgets; ignored unless both caches are enabled)")
		fetchURL = flag.String("fetch", "", "client mode: fetch this URL instead of serving")
		out      = flag.String("out", "", "client mode: output VMF path")
	)
	flag.Parse()

	if err := validateServeFlags(*drain, *synthTO, *cacheMB, *resMB, *budgetMB); err != nil {
		log.Fatal("v2vserve: ", err)
	}

	if *fetchURL != "" {
		if *out == "" {
			log.Fatal("v2vserve: -fetch requires -out")
		}
		if err := fetch(*fetchURL, *out); err != nil {
			log.Fatal("v2vserve: ", err)
		}
		return
	}

	srv := newServer(*specs, !*noOpt, obs.Default())
	srv.synthTimeout = *synthTO
	srv.strict = *strict
	if *cacheMB >= 0 {
		// One process-wide cache: concurrent requests touching the same
		// sources share decodes, and a hot GOP survives across requests.
		srv.gopCache = v2v.NewGOPCache(int64(*cacheMB) << 20)
	}
	if *resMB >= 0 {
		// One process-wide result cache: a repeated or overlapping query
		// splices previously encoded segments instead of re-rendering.
		srv.resultCache = v2v.NewResultCache(int64(*resMB) << 20)
	}
	if srv.gopCache != nil && srv.resultCache != nil {
		// Both caches enabled: arbitrate one shared byte budget between
		// them instead of enforcing two independent hard caps.
		arb := v2v.NewCacheArbiter(int64(*budgetMB) << 20)
		srv.gopCache.AttachArbiter(arb)
		srv.resultCache.AttachArbiter(arb)
	}
	hs := &http.Server{Addr: *listen, Handler: srv.routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("v2vserve: listening on %s (specs from %s)", *listen, *specs)

	select {
	case err := <-errc:
		log.Fatal("v2vserve: ", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		log.Printf("v2vserve: shutdown signal, draining in-flight streams (up to %v)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("v2vserve: drain incomplete: %v", err)
		}
		log.Printf("v2vserve: stopped")
	}
}

// server holds the request handlers and their metric instruments (looked
// up once; updates on the hot path are lock-free).
type server struct {
	specDir  string
	optimize bool
	// synthTimeout bounds each request's synthesis (0 = unlimited); the
	// request context is honored either way, so a disconnected client
	// cancels its own synthesis.
	synthTimeout time.Duration
	// strict fails requests on corrupt source packets instead of concealing.
	strict bool
	// gopCache, when non-nil, is the process-wide decoded-GOP cache shared
	// by every request's shard workers (nil = caching disabled).
	gopCache *v2v.GOPCache
	// resultCache, when non-nil, memoizes rendered segments' encoded
	// output across requests (nil = result caching disabled).
	resultCache *v2v.ResultCache
	reg         *obs.Registry

	requests      *obs.Counter
	errs4xx       *obs.Counter
	errs5xx       *obs.Counter
	synthOK       *obs.Counter
	synthFail     *obs.Counter
	synthCanceled *obs.Counter
	inflight      *obs.Gauge
	wallHist      *obs.Histogram
	firstHist     *obs.Histogram
}

func newServer(specDir string, optimize bool, reg *obs.Registry) *server {
	return &server{
		specDir:  specDir,
		optimize: optimize,
		reg:      reg,
		requests: reg.Counter("v2v_http_requests_total", "HTTP requests served."),
		errs4xx: reg.Counter(`v2v_http_errors_total{class="4xx"}`,
			"HTTP error responses by status class."),
		errs5xx: reg.Counter(`v2v_http_errors_total{class="5xx"}`,
			"HTTP error responses by status class."),
		synthOK: reg.Counter("v2v_synthesis_total", "Completed syntheses."),
		synthFail: reg.Counter("v2v_synthesis_failures_total",
			"Syntheses that failed mid-stream, after headers were sent."),
		synthCanceled: reg.Counter("v2v_synthesis_canceled_total",
			"Syntheses stopped by client disconnect or the per-request timeout."),
		inflight: reg.Gauge("v2v_inflight_requests", "Requests currently being served."),
		wallHist: reg.Histogram("v2v_synthesis_wall_seconds",
			"End-to-end synthesis wall time.", obs.LatencyBuckets()),
		firstHist: reg.Histogram("v2v_synthesis_first_output_seconds",
			"Latency until the first output packet (the paper's interactivity measure).",
			obs.LatencyBuckets()),
	}
}

// routes assembles the mux behind the logging/metrics middleware.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", s.synthesize)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.observed(mux)
}

// statusWriter captures the response status for logging and error
// counting, passing flushes through so streaming stays progressive.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// observed is the request middleware: it logs method, spec name, status,
// and wall time, and feeds the request/error counters.
func (s *server) observed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.requests.Inc()
		switch {
		case sw.status >= 500:
			s.errs5xx.Inc()
		case sw.status >= 400:
			s.errs4xx.Inc()
		}
		target := r.URL.Path
		if name := r.URL.Query().Get("spec"); name != "" {
			target += "?spec=" + name
		}
		log.Printf("v2vserve: %s %s -> %d in %v", r.Method, target, sw.status,
			time.Since(start).Round(time.Millisecond))
	})
}

// validSpecName reports whether a GET ?spec= name may be joined under the
// spec directory: relative, no traversal out of it, no absolute or rooted
// forms. Forward-slash subdirectory names are allowed.
func validSpecName(name string) bool {
	if name == "" || filepath.IsAbs(name) || strings.ContainsRune(name, '\\') {
		return false
	}
	clean := path.Clean(name)
	if clean == "." || clean == ".." ||
		strings.HasPrefix(clean, "/") || strings.HasPrefix(clean, "../") {
		return false
	}
	return true
}

func (s *server) synthesize(w http.ResponseWriter, r *http.Request) {
	var spec *v2v.Spec
	var err error
	switch r.Method {
	case http.MethodPost:
		body, rerr := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if rerr != nil {
			http.Error(w, rerr.Error(), http.StatusBadRequest)
			return
		}
		spec, err = parseAny(body)
	case http.MethodGet:
		name := r.URL.Query().Get("spec")
		if !validSpecName(name) {
			http.Error(w, "missing or invalid ?spec=", http.StatusBadRequest)
			return
		}
		spec, err = v2v.LoadSpec(filepath.Join(s.specDir, name))
	default:
		http.Error(w, "POST a spec or GET ?spec=", http.StatusMethodNotAllowed)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	opts := v2v.Options{}
	if s.optimize {
		opts = v2v.DefaultOptions()
	}
	opts.Conceal = !s.strict
	opts.GOPCache = s.gopCache
	opts.ResultCache = s.resultCache
	// The request context cancels the synthesis when the client goes away;
	// shard workers stop within one GOP of work instead of rendering a
	// stream nobody is reading.
	ctx := r.Context()
	if s.synthTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.synthTimeout)
		defer cancel()
	}
	w.Header().Set("Content-Type", "application/x-v2v-stream")
	start := time.Now()
	res, err := v2v.SynthesizeStreamContext(ctx, spec, w, opts)
	if err != nil {
		if ctx.Err() != nil {
			s.synthCanceled.Inc()
			log.Printf("v2vserve: synthesis canceled after %v: %v", time.Since(start), err)
			return
		}
		// Headers may already be out; count the failure, log, and drop
		// the connection so the client sees a truncated stream.
		s.synthFail.Inc()
		log.Printf("v2vserve: synthesis failed after %v: %v", time.Since(start), err)
		return
	}
	s.synthOK.Inc()
	s.wallHist.Observe(res.Metrics.Wall.Seconds())
	s.firstHist.Observe(res.Metrics.FirstOutput.Seconds())
	log.Printf("v2vserve: streamed %d packets in %v (first packet after %v, %d copied)",
		res.Metrics.Output.PacketsCopied+res.Metrics.Output.FramesEncoded,
		res.Metrics.Wall, res.Metrics.FirstOutput, res.Metrics.Output.PacketsCopied)
}

func parseAny(raw []byte) (*v2v.Spec, error) {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return v2v.ParseSpecJSON(raw)
		default:
			return v2v.ParseSpec(string(raw))
		}
	}
	return nil, fmt.Errorf("empty spec")
}

// fetch retrieves a VMS stream and re-muxes it into a seekable VMF file,
// decoding nothing (pure packet copy).
func fetch(url, outPath string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sr, err := media.NewStreamReader(resp.Body)
	if err != nil {
		return err
	}
	w, err := media.CreateWriter(outPath, sr.Info())
	if err != nil {
		return err
	}
	n := 0
	for {
		key, data, err := sr.NextPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			w.Abort()
			return err
		}
		if err := w.WriteRawPacket(key, data); err != nil {
			w.Abort()
			return err
		}
		n++
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("fetched %d packets into %s\n", n, outPath)
	return nil
}
