// Command v2vserve is the on-demand synthesis server the paper envisions
// a VDBMS embedding: clients POST a spec and receive the result video as a
// progressive VMS stream — playback-ready packets start flowing while
// later segments are still rendering.
//
// Serve:
//
//	v2vserve -listen :8370 -specs ./specs
//
// Endpoints:
//
//	POST /synthesize          spec text in the body -> VMS stream
//	GET  /synthesize?spec=X   loads <specs>/X -> VMS stream
//	GET  /healthz             liveness probe
//
// Fetch (client mode): retrieve a stream and save it as a seekable VMF
// file:
//
//	v2vserve -fetch http://host:8370/synthesize?spec=demo.v2v -out result.vmf
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"v2v"
	"v2v/internal/media"
)

func main() {
	var (
		listen   = flag.String("listen", ":8370", "serve address")
		specs    = flag.String("specs", ".", "directory for GET ?spec= lookups")
		noOpt    = flag.Bool("no-opt", false, "disable the optimizer (for demos)")
		fetchURL = flag.String("fetch", "", "client mode: fetch this URL instead of serving")
		out      = flag.String("out", "", "client mode: output VMF path")
	)
	flag.Parse()

	if *fetchURL != "" {
		if *out == "" {
			log.Fatal("v2vserve: -fetch requires -out")
		}
		if err := fetch(*fetchURL, *out); err != nil {
			log.Fatal("v2vserve: ", err)
		}
		return
	}

	srv := &server{specDir: *specs, optimize: !*noOpt}
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", srv.synthesize)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("v2vserve: listening on %s (specs from %s)", *listen, *specs)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

type server struct {
	specDir  string
	optimize bool
}

func (s *server) synthesize(w http.ResponseWriter, r *http.Request) {
	var spec *v2v.Spec
	var err error
	switch r.Method {
	case http.MethodPost:
		body, rerr := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if rerr != nil {
			http.Error(w, rerr.Error(), http.StatusBadRequest)
			return
		}
		spec, err = parseAny(body)
	case http.MethodGet:
		name := r.URL.Query().Get("spec")
		if name == "" || strings.Contains(name, "..") || strings.ContainsRune(name, os.PathSeparator) && filepath.IsAbs(name) {
			http.Error(w, "missing or invalid ?spec=", http.StatusBadRequest)
			return
		}
		spec, err = v2v.LoadSpec(filepath.Join(s.specDir, name))
	default:
		http.Error(w, "POST a spec or GET ?spec=", http.StatusMethodNotAllowed)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	opts := v2v.Options{}
	if s.optimize {
		opts = v2v.DefaultOptions()
	}
	w.Header().Set("Content-Type", "application/x-v2v-stream")
	start := time.Now()
	res, err := v2v.SynthesizeStream(spec, w, opts)
	if err != nil {
		// Headers may already be out; log and drop the connection.
		log.Printf("v2vserve: synthesis failed after %v: %v", time.Since(start), err)
		return
	}
	log.Printf("v2vserve: streamed %d packets in %v (first packet after %v, %d copied)",
		res.Metrics.Output.PacketsCopied+res.Metrics.Output.FramesEncoded,
		res.Metrics.Wall, res.Metrics.FirstOutput, res.Metrics.Output.PacketsCopied)
}

func parseAny(raw []byte) (*v2v.Spec, error) {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return v2v.ParseSpecJSON(raw)
		default:
			return v2v.ParseSpec(string(raw))
		}
	}
	return nil, fmt.Errorf("empty spec")
}

// fetch retrieves a VMS stream and re-muxes it into a seekable VMF file,
// decoding nothing (pure packet copy).
func fetch(url, outPath string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sr, err := media.NewStreamReader(resp.Body)
	if err != nil {
		return err
	}
	w, err := media.CreateWriter(outPath, sr.Info())
	if err != nil {
		return err
	}
	n := 0
	for {
		key, data, err := sr.NextPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Close()
			return err
		}
		if err := w.WriteRawPacket(key, data); err != nil {
			w.Close()
			return err
		}
		n++
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("fetched %d packets into %s\n", n, outPath)
	return nil
}
