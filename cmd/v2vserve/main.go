// Command v2vserve is the on-demand synthesis server the paper envisions
// a VDBMS embedding: clients POST a spec and receive the result video as a
// progressive VMS stream — playback-ready packets start flowing while
// later segments are still rendering.
//
// Serve:
//
//	v2vserve -listen :8370 -specs ./specs
//
// Endpoints:
//
//	POST /synthesize          spec text in the body -> VMS stream
//	GET  /synthesize?spec=X   loads <specs>/X -> VMS stream
//	GET  /healthz             liveness probe
//	GET  /metrics             Prometheus text exposition
//	GET  /debug/requests      flight recorder: recent + in-flight requests
//	GET  /debug/caches        GOP/result cache contents and budget split
//	GET  /debug/admit         admission controller + memory-pressure state
//	GET  /debug/pprof/        net/http/pprof profiles
//
// Every response carries an X-Trace-Id header; the same ID appears in the
// request's structured log lines, its /debug/requests record, and its
// span trace (/debug/requests?trace=<id> exports Chrome trace JSON).
//
// Every synthesis passes cost-based admission control before executing
// (docs/ADMISSION.md): X-Tenant (or X-API-Key) selects the fairness
// bucket, X-Deadline-Ms sets a deadline the scheduler honors, and a
// request the server cannot serve in time is refused with 429/503 plus
// Retry-After instead of failing mid-stream.
//
// SIGINT/SIGTERM drain in-flight streams (up to -drain) before exiting.
//
// Fetch (client mode): retrieve a stream and save it as a seekable VMF
// file:
//
//	v2vserve -fetch http://host:8370/synthesize?spec=demo.v2v -out result.vmf
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"v2v"
	"v2v/internal/admit"
	"v2v/internal/cliutil"
	"v2v/internal/media"
	"v2v/internal/obs"
)

// validateServeFlags rejects nonsensical flag values before any server
// state is built, so a typo'd unit (bytes instead of MiB, negative
// durations) fails fast with a clear message.
func validateServeFlags(drain, synthTO, admitTO, flushInterval time.Duration, cacheMB, resMB, budgetMB, slowMS, flightSize, parallel, maxQueue, streamBufKB int, tenantWeight, logFormat string) error {
	_, werr := cliutil.ParseTenantWeights("-tenant-weight", tenantWeight)
	return errors.Join(
		cliutil.ValidateTimeout("-drain", drain),
		cliutil.ValidateTimeout("-synth-timeout", synthTO),
		cliutil.ValidateTimeout("-admit-timeout", admitTO),
		cliutil.ValidateTimeout("-flush-interval", flushInterval),
		cliutil.ValidateCacheMB("-gop-cache-mb", cacheMB),
		cliutil.ValidateCacheMB("-result-cache-mb", resMB),
		cliutil.ValidateBudgetMB("-cache-budget-mb", budgetMB),
		cliutil.ValidateMillis("-slow-query-ms", slowMS),
		cliutil.ValidateRingSize("-flight-recorder-size", flightSize),
		cliutil.ValidateParallel("-parallel", parallel),
		cliutil.ValidateQueueDepth("-max-queue", maxQueue),
		cliutil.ValidateBufferKB("-stream-buffer-kb", streamBufKB),
		werr,
		cliutil.ValidateLogFormat("-log-format", logFormat),
	)
}

// newLogger builds the process logger; "json" selects JSON lines for log
// shippers, anything else the human-readable text handler.
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func main() {
	var (
		listen     = flag.String("listen", ":8370", "serve address")
		specs      = flag.String("specs", ".", "directory for GET ?spec= lookups")
		noOpt      = flag.Bool("no-opt", false, "disable the optimizer (for demos)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown drain timeout for in-flight streams")
		synthTO    = flag.Duration("synth-timeout", 0, "per-request synthesis timeout (0 = no limit)")
		strict     = flag.Bool("strict", false, "fail requests on corrupt or undecodable source packets instead of concealing them")
		cacheMB    = flag.Int("gop-cache-mb", 0, "decoded-GOP cache budget in MiB shared across all requests (0 = auto-size from the sources, -1 = disable)")
		resMB      = flag.Int("result-cache-mb", 0, "encoded-result cache budget in MiB shared across all requests (0 = 256 MiB default, -1 = disable)")
		budgetMB   = flag.Int("cache-budget-mb", 0, "unified byte budget in MiB shared by the GOP and result caches via an arbiter (0 = sum of the per-cache budgets; ignored unless both caches are enabled)")
		slowMS     = flag.Int("slow-query-ms", 0, "log a warning for requests slower than this many milliseconds, and let /debug/requests?slow=1 filter on it (0 = disabled)")
		flightSize = flag.Int("flight-recorder-size", 0, "completed requests kept in the /debug/requests ring (0 = default)")
		parallel   = flag.Int("parallel", 0, "shard parallelism per synthesis (0 = GOMAXPROCS)")
		maxQueue   = flag.Int("max-queue", 0, "admission queue depth across all tenants (0 = default 64)")
		admitTO    = flag.Duration("admit-timeout", 0, "max time a request may wait in the admission queue before being shed (0 = default 10s)")
		tenantW    = flag.String("tenant-weight", "", `per-tenant admission fairness weights as "name=w,name=w" (e.g. "gold=3,free=1"); unlisted tenants get weight 1`)
		flushIvl   = flag.Duration("flush-interval", 0, "minimum spacing between segment-boundary flushes on streaming (?stream=1) responses; the header and final flush are never delayed (0 = flush at every segment boundary)")
		streamKB   = flag.Int("stream-buffer-kb", 0, "per-stream delivery queue cap in KiB for ?stream=1 responses; a client draining slower than synthesis blocks only its own request once the queue is full (0 = 256 KiB default)")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		fetchURL   = flag.String("fetch", "", "client mode: fetch this URL instead of serving")
		out        = flag.String("out", "", "client mode: output VMF path")
	)
	flag.Parse()

	logger := newLogger(*logFormat)
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	if err := validateServeFlags(*drain, *synthTO, *admitTO, *flushIvl, *cacheMB, *resMB, *budgetMB, *slowMS, *flightSize, *parallel, *maxQueue, *streamKB, *tenantW, *logFormat); err != nil {
		fatal("invalid flags", err)
	}

	if *fetchURL != "" {
		if *out == "" {
			fatal("client mode", errors.New("-fetch requires -out"))
		}
		if err := fetch(*fetchURL, *out); err != nil {
			fatal("fetch failed", err)
		}
		return
	}

	srv := newServer(*specs, !*noOpt, obs.Default())
	srv.logger = logger
	srv.synthTimeout = *synthTO
	srv.strict = *strict
	if *flightSize > 0 {
		srv.flight = v2v.NewFlightRecorder(*flightSize)
	}
	srv.flight.SetSlowThreshold(time.Duration(*slowMS) * time.Millisecond)
	srv.flight.SetLogger(logger)
	if *cacheMB >= 0 {
		// One process-wide cache: concurrent requests touching the same
		// sources share decodes, and a hot GOP survives across requests.
		srv.gopCache = v2v.NewGOPCache(int64(*cacheMB) << 20)
	}
	if *resMB >= 0 {
		// One process-wide result cache: a repeated or overlapping query
		// splices previously encoded segments instead of re-rendering.
		srv.resultCache = v2v.NewResultCache(int64(*resMB) << 20)
	}
	if srv.gopCache != nil && srv.resultCache != nil {
		// Both caches enabled: arbitrate one shared byte budget between
		// them instead of enforcing two independent hard caps.
		srv.arbiter = v2v.NewCacheArbiter(int64(*budgetMB) << 20)
		srv.gopCache.AttachArbiter(srv.arbiter)
		srv.resultCache.AttachArbiter(srv.arbiter)
	}
	srv.parallelism = *parallel
	srv.flushInterval = *flushIvl
	srv.streamBufBytes = *streamKB << 10
	weights, _ := cliutil.ParseTenantWeights("-tenant-weight", *tenantW)
	srv.admit = admit.NewController(admit.Config{
		MaxQueue: *maxQueue,
		MaxWait:  *admitTO,
		Weights:  weights,
	})
	hs := &http.Server{Addr: *listen, Handler: srv.routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The memory-pressure monitor drives both back-pressure paths: the
	// cache arbiter sheds resident bytes, the admission controller
	// tightens its concurrency and cost capacity.
	srv.monitor = admit.NewMonitor(0)
	srv.monitor.OnChange(func(l admit.PressureLevel) {
		f := l.Factor()
		srv.admit.SetPressureFactor(f)
		if srv.arbiter != nil {
			srv.arbiter.SetPressureFactor(f)
		}
		logger.Info("memory pressure level", "level", l.String(), "factor", f)
	})
	srv.monitor.Run(ctx)

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", *listen, "specs", *specs)

	select {
	case err := <-errc:
		fatal("server failed", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		logger.Info("shutdown signal, draining in-flight streams", "drain", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			logger.Warn("drain incomplete", "error", err)
		}
		srv.admit.Close()
		srv.monitor.Wait()
		logger.Info("stopped")
	}
}

// server holds the request handlers and their metric instruments (looked
// up once; updates on the hot path are lock-free).
type server struct {
	specDir  string
	optimize bool
	// synthTimeout bounds each request's synthesis (0 = unlimited); the
	// request context is honored either way, so a disconnected client
	// cancels its own synthesis.
	synthTimeout time.Duration
	// strict fails requests on corrupt source packets instead of concealing.
	strict bool
	// gopCache, when non-nil, is the process-wide decoded-GOP cache shared
	// by every request's shard workers (nil = caching disabled).
	gopCache *v2v.GOPCache
	// resultCache, when non-nil, memoizes rendered segments' encoded
	// output across requests (nil = result caching disabled).
	resultCache *v2v.ResultCache
	// arbiter, when non-nil, coordinates one byte budget across both
	// caches; retained for /debug/caches introspection.
	arbiter *v2v.CacheArbiter
	// flight records recent and in-flight synthesis requests, served at
	// /debug/requests.
	flight *v2v.FlightRecorder
	// admit is the overload front door: every synthesis passes Acquire
	// before executing, weighted by its plan's estimated cost.
	admit *admit.Controller
	// monitor drives the pressure factor into admit and arbiter (nil in
	// tests that construct the server directly).
	monitor *admit.Monitor
	// parallelism caps each synthesis's shard fan-out (0 = GOMAXPROCS).
	parallelism int
	// flushInterval bounds how often a streaming response flushes at
	// segment boundaries (0 = every boundary); see -flush-interval.
	flushInterval time.Duration
	// streamBufBytes caps each streaming response's delivery queue — the
	// per-request backpressure point (0 = media default); -stream-buffer-kb.
	streamBufBytes int
	logger         *slog.Logger
	reg            *obs.Registry

	requests      *obs.Counter
	errs4xx       *obs.Counter
	errs5xx       *obs.Counter
	synthOK       *obs.Counter
	synthFail     *obs.Counter
	synthCanceled *obs.Counter
	truncated     *obs.Counter
	inflight      *obs.Gauge
	wallHist      *obs.Histogram
	firstHist     *obs.Histogram
	ttffHist      *obs.Histogram
}

func newServer(specDir string, optimize bool, reg *obs.Registry) *server {
	return &server{
		specDir:  specDir,
		optimize: optimize,
		flight:   v2v.NewFlightRecorder(0),
		// A default-config controller: effectively permissive (capacity is
		// unbounded until throughput is measured) yet still protective
		// under real overload. main replaces it with the flag-configured
		// one.
		admit:    admit.NewController(admit.Config{}),
		logger:   slog.Default(),
		reg:      reg,
		requests: reg.Counter("v2v_http_requests_total", "HTTP requests served."),
		errs4xx: reg.Counter(`v2v_http_errors_total{class="4xx"}`,
			"HTTP error responses by status class."),
		errs5xx: reg.Counter(`v2v_http_errors_total{class="5xx"}`,
			"HTTP error responses by status class."),
		synthOK: reg.Counter("v2v_synthesis_total", "Completed syntheses."),
		synthFail: reg.Counter("v2v_synthesis_failures_total",
			"Syntheses that failed mid-stream, after headers were sent."),
		synthCanceled: reg.Counter("v2v_synthesis_canceled_total",
			"Syntheses stopped by client disconnect or the per-request timeout."),
		truncated: reg.Counter("v2v_streams_truncated_total",
			"Response streams that ended after the header without a clean end-of-stream trailer (failed or canceled mid-stream)."),
		inflight: reg.Gauge("v2v_inflight_requests", "Requests currently being served."),
		wallHist: reg.Histogram("v2v_synthesis_wall_seconds",
			"End-to-end synthesis wall time.", obs.LatencyBuckets()),
		firstHist: reg.Histogram("v2v_synthesis_first_output_seconds",
			"Latency until the first output packet (the paper's interactivity measure).",
			obs.LatencyBuckets()),
		ttffHist: reg.Histogram("v2v_stream_ttff_seconds",
			"Time until the first bytes were flushed to a streaming (?stream=1) client — the honest time-to-first-frame.",
			obs.LatencyBuckets()),
	}
}

// routes assembles the mux behind the logging/metrics middleware.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", s.synthesize)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", s.reg.Handler())
	mux.Handle("/debug/requests", s.flight.Handler())
	mux.HandleFunc("/debug/caches", s.caches)
	mux.HandleFunc("/debug/admit", s.admitDebug)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.observed(mux)
}

// statusWriter captures the response status and bytes written for logging
// and error counting, passing flushes through so streaming stays
// progressive.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traceIDKey carries the request's trace ID through the context from the
// middleware to the synthesize handler, so the flight record, the span
// trace, and every log line share one ID.
type traceIDKeyType struct{}

var traceIDKey traceIDKeyType

// requestTraceID returns the trace ID the middleware assigned, minting
// one for handlers invoked outside the middleware (direct tests).
func requestTraceID(r *http.Request) string {
	if id, ok := r.Context().Value(traceIDKey).(string); ok && id != "" {
		return id
	}
	return obs.NewTraceID()
}

// observed is the request middleware: it assigns the trace ID (echoed in
// the X-Trace-Id response header), logs a structured request line, and
// feeds the request/error counters.
func (s *server) observed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		traceID := obs.NewTraceID()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		w.Header().Set("X-Trace-Id", traceID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		r = r.WithContext(context.WithValue(r.Context(), traceIDKey, traceID))
		next.ServeHTTP(sw, r)
		s.requests.Inc()
		switch {
		case sw.status >= 500:
			s.errs5xx.Inc()
		case sw.status >= 400:
			s.errs4xx.Inc()
		}
		target := r.URL.Path
		if name := r.URL.Query().Get("spec"); name != "" {
			target += "?spec=" + name
		}
		s.logger.Info("request",
			"method", r.Method,
			"target", target,
			"status", sw.status,
			"bytes", sw.bytes,
			"wall", time.Since(start).Round(time.Millisecond),
			"trace_id", traceID)
	})
}

// validSpecName reports whether a GET ?spec= name may be joined under the
// spec directory: relative, no traversal out of it, no absolute or rooted
// forms. Forward-slash subdirectory names are allowed.
func validSpecName(name string) bool {
	if name == "" || filepath.IsAbs(name) || strings.ContainsRune(name, '\\') {
		return false
	}
	clean := path.Clean(name)
	if clean == "." || clean == ".." ||
		strings.HasPrefix(clean, "/") || strings.HasPrefix(clean, "../") {
		return false
	}
	return true
}

// segmentRecords converts an executed run's per-segment actuals (plus the
// plan's copy/smartcut/render decisions) into flight-recorder segment
// records.
func segmentRecords(res *v2v.Result) []obs.SegmentRecord {
	acts := res.Metrics.Segments
	out := make([]obs.SegmentRecord, 0, len(acts))
	for i, a := range acts {
		kind := "render"
		if res.Plan != nil && i < len(res.Plan.Segments) {
			kind = res.Plan.Segments[i].Kind.String()
		}
		out = append(out, obs.SegmentRecord{
			Kind:           kind,
			Wall:           a.Wall,
			FramesRendered: a.FramesRendered,
			FramesDecoded:  a.FramesDecoded,
			FramesEncoded:  a.FramesEncoded,
			PacketsCopied:  a.PacketsCopied,
			BytesCopied:    a.BytesCopied,
			Concealed:      a.Concealed,
			GOPCacheHits:   a.GOPCacheHits,
			GOPCacheMisses: a.GOPCacheMisses,
			ResCacheHits:   a.ResultCacheHits,
			ResCacheMisses: a.ResultCacheMisses,
			Shards:         a.Shards,
			DecodeWall:     a.DecodeWall,
			FilterWall:     a.FilterWall,
			EncodeWall:     a.EncodeWall,
			DecodeBytes:    a.DecodeBytes,
			FilterFrames:   a.FilterFrames,
			FilterBytes:    a.FilterBytes,
			EncodeBytes:    a.EncodeBytes,
		})
	}
	return out
}

func (s *server) synthesize(w http.ResponseWriter, r *http.Request) {
	var spec *v2v.Spec
	var query string
	var err error
	switch r.Method {
	case http.MethodPost:
		body, rerr := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if rerr != nil {
			http.Error(w, rerr.Error(), http.StatusBadRequest)
			return
		}
		query = string(body)
		spec, err = parseAny(body)
	case http.MethodGet:
		name := r.URL.Query().Get("spec")
		if !validSpecName(name) {
			http.Error(w, "missing or invalid ?spec=", http.StatusBadRequest)
			return
		}
		query = "spec=" + name
		spec, err = v2v.LoadSpec(filepath.Join(s.specDir, name))
	default:
		http.Error(w, "POST a spec or GET ?spec=", http.StatusMethodNotAllowed)
		return
	}

	// The flight record starts as soon as there is query text, so parse
	// failures show up at /debug/requests?errored=1 too.
	traceID := requestTraceID(r)
	req := s.flight.Start(traceID, query)
	if err != nil {
		req.Finish("error", err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	opts := v2v.Options{}
	if s.optimize {
		opts = v2v.DefaultOptions()
	}
	opts.Conceal = !s.strict
	opts.GOPCache = s.gopCache
	opts.ResultCache = s.resultCache
	opts.Parallelism = s.parallelism
	// Every request gets its own span trace and stage recorder, joined to
	// the flight record and the log lines by the shared trace ID.
	tr := v2v.NewTrace("synthesize")
	tr.SetID(traceID)
	opts.Trace = tr
	opts.Recorder = req.Recorder()

	// Plan before admission: the plan's static cost estimate is the
	// admission weight, and shed requests still leave their plan in the
	// flight record for postmortems.
	pr, err := v2v.Prepare(spec, opts)
	if err != nil {
		req.Finish("error", err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req.SetPlan(pr.Plan.Explain())
	cost := pr.EstimatedCost().Units()
	tenant := requestTenant(r)

	// The request context cancels the synthesis when the client goes away;
	// shard workers stop within one GOP of work instead of rendering a
	// stream nobody is reading.
	ctx := r.Context()
	if s.synthTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.synthTimeout)
		defer cancel()
	}
	// An X-Deadline-Ms header is the client's latency budget: admission
	// sheds early when it cannot plausibly be met, and the synthesis
	// itself is bounded by it.
	var deadline time.Time
	if ms := r.Header.Get("X-Deadline-Ms"); ms != "" {
		n, perr := strconv.Atoi(strings.TrimSpace(ms))
		if perr != nil || n <= 0 {
			err := fmt.Errorf("invalid X-Deadline-Ms %q", ms)
			req.Finish("error", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		deadline = time.Now().Add(time.Duration(n) * time.Millisecond)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	admitStart := time.Now()
	ticket, aerr := s.admit.Acquire(ctx, admit.Request{Tenant: tenant, Cost: cost, Deadline: deadline})
	queuedWall := time.Since(admitStart)
	if aerr != nil {
		if shed := (*admit.ShedError)(nil); errors.As(aerr, &shed) {
			// Typed load shed: tell the client it is retryable and when.
			// (Shed counts and queue-wait histograms live in the admit
			// package's v2v_admit_* instruments.)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(shed.RetryAfter)))
			req.SetAdmission(tenant, cost, queuedWall, shed.Reason)
			req.Finish("shed", aerr)
			http.Error(w, aerr.Error(), admit.HTTPStatus(aerr))
			s.logger.Warn("request shed",
				"tenant", tenant, "reason", shed.Reason, "cost_units", cost,
				"queued", queuedWall.Round(time.Millisecond), "trace_id", traceID)
			return
		}
		// The client went away (or its deadline passed) while queued.
		s.synthCanceled.Inc()
		req.SetAdmission(tenant, cost, queuedWall, "")
		req.Finish("canceled", aerr)
		http.Error(w, aerr.Error(), http.StatusServiceUnavailable)
		return
	}
	req.SetAdmission(tenant, cost, queuedWall, "")
	// Release feeds the measured work back into the controller's
	// throughput estimate, whether the synthesis succeeds or not.
	defer ticket.Release(opts.Recorder)

	// Streaming delivery is opt-in per request: ?stream=1 or an Accept
	// header naming the stream media type. Opted-in responses go through a
	// FlushingSink — segments are scheduled in presentation order, bytes
	// are flushed to the client at the container header and every segment
	// boundary (coalesced by -flush-interval), and a client draining
	// slower than synthesis blocks only this request's delivery goroutine
	// once the -stream-buffer-kb queue fills.
	streaming := r.URL.Query().Get("stream") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "application/x-v2v-stream")

	w.Header().Set("Content-Type", "application/x-v2v-stream")
	start := time.Now()
	var dst io.Writer = w
	var fs *media.FlushingSink
	if streaming {
		fs = media.NewFlushingSink(w, media.FlushConfig{
			BufferBytes:   s.streamBufBytes,
			FlushInterval: s.flushInterval,
		})
		dst = fs
		opts.Streaming = true
		opts.OnSegmentDone = func(int) { fs.Barrier() }
	}
	res, err := pr.SynthesizeStreamContext(ctx, dst, opts)
	if fs != nil {
		// Drain the queue before the handler returns: the typed trailer a
		// failed synthesis wrote via the sink must reach the client before
		// the connection closes. A downstream (client) write error
		// surfaces here if the synthesis itself didn't observe it.
		if cerr := fs.CloseFlush(); cerr != nil && err == nil {
			err = cerr
		}
	}
	req.SetTrace(tr)
	if err != nil {
		// Post-header failures no longer just drop the connection: the
		// executor wrote a typed error trailer through the sink (satellite
		// of the streaming contract), so clients distinguish a reported
		// failure from raw truncation. Either way the stream did not end
		// with a clean EOS trailer — count it.
		s.truncated.Inc()
		if ctx.Err() != nil {
			s.synthCanceled.Inc()
			req.Finish("canceled", err)
			s.logger.Warn("synthesis canceled",
				"wall", time.Since(start), "error", err, "trace_id", traceID)
			return
		}
		s.synthFail.Inc()
		req.Finish("error", err)
		s.logger.Error("synthesis failed",
			"wall", time.Since(start), "error", err, "trace_id", traceID)
		return
	}
	s.synthOK.Inc()
	if fs != nil {
		// Honest TTFF: for streaming consumers, first output means "first
		// bytes flushed to the client", not "first packet handed to Go's
		// response buffers" (the executor's stamp). Override the metric
		// with the flushing sink's measurement; file and non-streaming
		// consumers keep the executor semantics.
		if first, ok := fs.FirstFlush(); ok {
			ttff := first.Sub(start)
			res.Metrics.FirstOutput = ttff
			s.ttffHist.Observe(ttff.Seconds())
			req.SetStreaming(ttff)
		}
	}
	s.wallHist.Observe(res.Metrics.Wall.Seconds())
	s.firstHist.Observe(res.Metrics.FirstOutput.Seconds())
	req.SetPlan(res.Plan.Explain())
	req.SetSegments(segmentRecords(res))
	req.SetCaches(res.Metrics.Source.GOPCacheHits, res.Metrics.Source.GOPCacheMisses,
		res.Metrics.ResultCacheHits, res.Metrics.ResultCacheMisses)
	req.Finish("ok", nil)
	s.logger.Info("synthesis complete",
		"packets", res.Metrics.Output.PacketsCopied+res.Metrics.Output.FramesEncoded,
		"copied", res.Metrics.Output.PacketsCopied,
		"wall", res.Metrics.Wall,
		"first_output", res.Metrics.FirstOutput,
		"trace_id", traceID)
}

// requestTenant maps a request to its admission fairness bucket: the
// X-Tenant header, else the X-API-Key header, else the shared default
// bucket.
func requestTenant(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Tenant")); t != "" {
		return t
	}
	if k := strings.TrimSpace(r.Header.Get("X-API-Key")); k != "" {
		return k
	}
	return admit.DefaultTenant
}

// retryAfterSeconds renders a shed's retry hint as the whole seconds the
// Retry-After header requires, rounding up so clients never retry early.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// admitDebug serves GET /debug/admit: the admission controller's queue
// depths and per-tenant shares, the memory-pressure state, and the cache
// arbiter's budget split.
func (s *server) admitDebug(w http.ResponseWriter, _ *http.Request) {
	resp := struct {
		Admission admit.Stats            `json:"admission"`
		Pressure  *pressureDump          `json:"pressure,omitempty"`
		Arbiter   *v2v.CacheArbiterStats `json:"arbiter,omitempty"`
	}{Admission: s.admit.Stats()}
	if s.monitor != nil {
		samp := s.monitor.LastSample()
		resp.Pressure = &pressureDump{
			Level:       s.monitor.Level().String(),
			UsedBytes:   samp.Used,
			LimitBytes:  samp.Limit,
			Utilization: samp.Utilization(),
		}
	}
	if s.arbiter != nil {
		st := s.arbiter.Stats()
		resp.Arbiter = &st
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		s.logger.Warn("admit dump failed", "error", err)
	}
}

// pressureDump is /debug/admit's memory-pressure section.
type pressureDump struct {
	Level       string  `json:"level"`
	UsedBytes   uint64  `json:"used_bytes"`
	LimitBytes  uint64  `json:"limit_bytes"`
	Utilization float64 `json:"utilization"`
}

// cacheDump is one cache's /debug/caches section: its counters plus the
// resident entries, most recently used first.
type cacheDump struct {
	Stats   any `json:"stats"`
	Entries any `json:"entries"`
}

// caches serves /debug/caches: resident GOP/result cache entries, the
// arbiter's budget split, and doorkeeper denials. Sections for disabled
// caches are omitted.
func (s *server) caches(w http.ResponseWriter, _ *http.Request) {
	resp := struct {
		GOP     *cacheDump             `json:"gop,omitempty"`
		Result  *cacheDump             `json:"result,omitempty"`
		Arbiter *v2v.CacheArbiterStats `json:"arbiter,omitempty"`
	}{}
	if s.gopCache != nil {
		resp.GOP = &cacheDump{Stats: s.gopCache.Stats(), Entries: s.gopCache.Entries()}
	}
	if s.resultCache != nil {
		resp.Result = &cacheDump{Stats: s.resultCache.Stats(), Entries: s.resultCache.Entries()}
	}
	if s.arbiter != nil {
		st := s.arbiter.Stats()
		resp.Arbiter = &st
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		s.logger.Warn("cache dump failed", "error", err)
	}
}

func parseAny(raw []byte) (*v2v.Spec, error) {
	for _, b := range raw {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return v2v.ParseSpecJSON(raw)
		default:
			return v2v.ParseSpec(string(raw))
		}
	}
	return nil, fmt.Errorf("empty spec")
}

// fetch retrieves a VMS stream and re-muxes it into a seekable VMF file,
// decoding nothing (pure packet copy).
func fetch(url, outPath string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sr, err := media.NewStreamReader(resp.Body)
	if err != nil {
		return err
	}
	w, err := media.CreateWriter(outPath, sr.Info())
	if err != nil {
		return err
	}
	n := 0
	for {
		key, data, err := sr.NextPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			w.Abort()
			// The typed trailer distinguishes a failure the server reported
			// from a connection that was simply cut mid-stream.
			switch {
			case errors.Is(err, media.ErrStreamFailed):
				return fmt.Errorf("fetch: server reported failure mid-stream: %w", err)
			case errors.Is(err, media.ErrTruncatedStream):
				return fmt.Errorf("fetch: connection cut before end-of-stream trailer: %w", err)
			}
			return err
		}
		if err := w.WriteRawPacket(key, data); err != nil {
			w.Abort()
			return err
		}
		n++
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("fetched %d packets into %s\n", n, outPath)
	return nil
}
