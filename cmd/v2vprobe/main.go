// Command v2vprobe inspects VMF media files, the V2V analogue of ffprobe:
// it prints the stream header, duration, keyframe cadence, and (with
// -packets) the packet index.
//
// Usage:
//
//	v2vprobe [-packets] [-stamps] file.vmf...
package main

import (
	"flag"
	"fmt"
	"os"

	"v2v/internal/container"
	"v2v/internal/frame"
	"v2v/internal/media"
)

func main() {
	var (
		packets = flag.Bool("packets", false, "dump the packet index")
		stamps  = flag.Bool("stamps", false, "decode every frame and print its embedded frame-ID stamp")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: v2vprobe [-packets] [-stamps] file.vmf...")
		os.Exit(2)
	}
	status := 0
	for _, path := range flag.Args() {
		if err := probe(path, *packets, *stamps); err != nil {
			fmt.Fprintf(os.Stderr, "v2vprobe: %s: %v\n", path, err)
			status = 1
		}
	}
	os.Exit(status)
}

func probe(path string, packets, stamps bool) error {
	r, err := container.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	info := r.Info()
	fmt.Printf("%s:\n", path)
	fmt.Printf("  codec    %s\n", info.Codec)
	fmt.Printf("  video    %dx%d @ %s fps, quality %d, flate level %d\n",
		info.Width, info.Height, info.FPS, info.Quality, info.Level)
	fmt.Printf("  frames   %d (%s seconds)\n", r.NumPackets(), r.Duration())
	fmt.Printf("  start    %s\n", info.Start)

	keys := 0
	var bytes int64
	for i := 0; i < r.NumPackets(); i++ {
		rec := r.Record(i)
		bytes += int64(rec.Size)
		if rec.Key {
			keys++
		}
	}
	fmt.Printf("  size     %d bytes payload\n", bytes)
	if keys > 0 {
		fmt.Printf("  keyframes %d (every ~%.1f frames; header GOP hint %d)\n",
			keys, float64(r.NumPackets())/float64(keys), info.GOP)
	}
	if packets {
		fmt.Println("  packets:")
		for i := 0; i < r.NumPackets(); i++ {
			rec := r.Record(i)
			marker := " "
			if rec.Key {
				marker = "K"
			}
			fmt.Printf("    %6d %s pts=%-8d t=%-10s size=%d\n", i, marker, rec.PTS, info.TimeOf(rec.PTS), rec.Size)
		}
	}
	if stamps {
		mr, err := media.OpenReader(path)
		if err != nil {
			return err
		}
		defer mr.Close()
		fmt.Println("  stamps:")
		for i := 0; i < mr.NumFrames(); i++ {
			fr, err := mr.FrameAtIndex(i)
			if err != nil {
				return err
			}
			if id, ok := frame.ReadStamp(fr); ok {
				fmt.Printf("    %6d -> source frame %d\n", i, id)
			} else {
				fmt.Printf("    %6d -> (no stamp)\n", i)
			}
		}
	}
	return nil
}
