package main

import (
	"os"
	"path/filepath"
	"testing"

	"v2v/internal/dataset"
	"v2v/internal/rational"
)

func TestProbe(t *testing.T) {
	dir := t.TempDir()
	vid := filepath.Join(dir, "a.vmf")
	if _, err := dataset.Generate(vid, "", dataset.TinyProfile(), rational.FromInt(1)); err != nil {
		t.Fatal(err)
	}
	// probe prints to stdout; we only assert it succeeds in every mode.
	old := os.Stdout
	devnull, _ := os.Open(os.DevNull)
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
		devnull.Close()
	}()
	if err := probe(vid, false, false); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if err := probe(vid, true, true); err != nil {
		t.Fatalf("probe -packets -stamps: %v", err)
	}
	if err := probe(filepath.Join(dir, "missing.vmf"), false, false); err == nil {
		t.Error("missing file should fail")
	}
}
