// Package fixture is driver testdata for cmd/v2vlint: one live
// finding, one justified suppression, one bare directive.
package fixture

import "io"

// Bad compares a sentinel with ==: a live errwrap finding.
func Bad(err error) bool {
	return err == io.EOF
}

// Suppressed carries a justified nolint and stays quiet.
func Suppressed(err error) bool {
	return err == io.EOF //v2v:nolint(errwrap) fixture: demonstrating a justified suppression
}

// Bare has a reason-less directive: it must not suppress, and is a
// finding itself.
func Bare(err error) bool {
	return err == io.EOF //v2v:nolint(errwrap)
}
