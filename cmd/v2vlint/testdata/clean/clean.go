// Package clean is driver testdata with nothing to report.
package clean

import "errors"

var ErrNope = errors.New("nope")

// Check compares the idiomatic way.
func Check(err error) bool {
	return errors.Is(err, ErrNope)
}
