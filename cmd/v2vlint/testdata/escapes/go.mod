module escapes

go 1.22
