// Package escapes is the -escapes mode fixture: one clean hotpath
// function, one with a seeded heap escape (the test asserts the driver
// fails on it), and one whose escape carries a reasoned suppression.
package escapes

// sum stays entirely on the stack.
//
//v2v:hotpath
func sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// leaky returns the address of a local: the compiler moves v to the
// heap, which the escape checker must catch.
//
//v2v:hotpath
func leaky(n int) *int {
	v := n + 1
	return &v
}

// suppressed allocates on a line that documents why that is acceptable.
//
//v2v:hotpath
func suppressed() *byte {
	buf := make([]byte, 64) //v2v:nolint(hotpath) fixture: documented cold path
	return &buf[0]
}

// unannotated escapes freely; the checker must not attribute it.
func unannotated(n int) *int {
	return &n
}
