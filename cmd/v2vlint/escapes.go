package main

// The -escapes mode: compiler-enforced allocation budgets for the warm
// loop. Functions annotated //v2v:hotpath (see internal/lint hotpath)
// promise zero heap allocations; this driver runs the real escape
// analysis — `go build -gcflags=-m=2` — over the module, parses the
// `escapes to heap` / `moved to heap` diagnostics, attributes each to
// the annotated function whose body contains it, and fails on any hit
// not suppressed by a reasoned //v2v:nolint(hotpath) on the offending
// line. `make alloccheck` wires this into the check gate.
//
// Go's build cache replays compiler diagnostics on cached builds, so
// repeat runs are cheap and still see the full output.

import (
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"v2v/internal/lint"
)

// escapeFinding is one heap allocation attributed to a hotpath
// function.
type escapeFinding struct {
	File    string
	Line    int
	Col     int
	Func    string
	Message string
}

// escapeDiagRe matches one compiler diagnostic line. -m=2 also emits
// indented `flow:`/`from` explanation lines under the same position
// prefix; the message-shape check below keeps only the headlines.
var escapeDiagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

func runEscapes(dir string, patterns []string, jsonOut bool, stdout, stderr io.Writer) int {
	hot, suppressed, err := collectHotpath(dir)
	if err != nil {
		fmt.Fprintf(stderr, "v2vlint: -escapes: %v\n", err)
		return 2
	}
	if len(hot) == 0 {
		fmt.Fprintf(stderr, "v2vlint: -escapes: no //v2v:hotpath annotations under %s\n", dir)
		return 2
	}
	args := append([]string{"build", "-gcflags=-m=2"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, runErr := cmd.CombinedOutput()
	if runErr != nil {
		fmt.Fprintf(stderr, "v2vlint: -escapes: go %s failed:\n%s", strings.Join(args, " "), out)
		return 2
	}
	var findings []escapeFinding
	seen := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeDiagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			continue // -m=2 flow explanation line
		}
		isEscape := strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
		if !isEscape {
			continue
		}
		file := filepath.Clean(m[1])
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		fn := owningHotpath(hot, file, ln)
		if fn == "" {
			continue // escape outside any annotated function: out of budget scope
		}
		if suppressed[file][ln] {
			continue // reasoned //v2v:nolint(hotpath) on the offending line
		}
		msg = strings.TrimSuffix(msg, ":")
		key := fmt.Sprintf("%s:%d:%d:%s", file, ln, col, msg)
		if seen[key] {
			continue // -m=2 repeats the headline with and without flow detail
		}
		seen[key] = true
		findings = append(findings, escapeFinding{File: file, Line: ln, Col: col, Func: fn, Message: msg})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	if jsonOut {
		var diags []lint.Diagnostic
		for _, f := range findings {
			diags = append(diags, lint.Diagnostic{
				Pos:      token.Position{Filename: f.File, Line: f.Line, Column: f.Col},
				Analyzer: "hotpath",
				Message:  fmt.Sprintf("%s in hotpath function %s", f.Message, f.Func),
			})
		}
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "v2vlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: [hotpath] %s in hotpath function %s\n", f.File, f.Line, f.Col, f.Message, f.Func)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "v2vlint: %d heap escape(s) in %d annotated hotpath function(s)\n", len(findings), len(hot))
		return 1
	}
	fmt.Fprintf(stderr, "v2vlint: 0 heap escapes in %d annotated hotpath function(s)\n", len(hot))
	return 0
}

// collectHotpath walks the module tree under dir for //v2v:hotpath
// annotations and //v2v:nolint(hotpath) suppressions. File paths are
// dir-relative, matching the compiler's diagnostic positions when the
// build runs in dir.
func collectHotpath(dir string) ([]lint.HotpathFunc, map[string]map[int]bool, error) {
	var hot []lint.HotpathFunc
	suppressed := map[string]map[int]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Parse with the dir-relative name so the recorded positions match
		// the compiler's diagnostic paths when the build runs in dir.
		f, perr := parser.ParseFile(fset, filepath.Clean(rel), src, parser.ParseComments)
		if perr != nil {
			return nil // unbuildable file; the go build step complains if it matters
		}
		hot = append(hot, lint.HotpathFuncs(fset, f)...)
		if lines := lint.NolintLines(src, "hotpath"); len(lines) > 0 {
			suppressed[filepath.Clean(rel)] = lines
		}
		return nil
	})
	return hot, suppressed, err
}

// owningHotpath returns the name of the annotated function whose body
// spans (file, line), or "".
func owningHotpath(hot []lint.HotpathFunc, file string, line int) string {
	for _, h := range hot {
		if h.File == file && line >= h.StartLine && line <= h.EndLine {
			return h.Name
		}
	}
	return ""
}
