// Command v2vlint runs the repo's static analyzers (internal/lint)
// over the module and exits non-zero on findings, so `make lint` and CI
// fail on any invariant violation. See docs/STATIC_ANALYSIS.md.
//
// Usage:
//
//	v2vlint [-dir module] [-analyzers a,b] [packages...]
//
// Packages default to ./... (every package in the module, skipping
// testdata). Findings print one per line as
// file:line:col: [analyzer] message.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"v2v/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("v2vlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory inside the module to lint")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "v2vlint: unknown analyzer %q\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "v2vlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "v2vlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "v2vlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "v2vlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
