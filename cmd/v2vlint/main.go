// Command v2vlint runs the repo's static analyzers (internal/lint)
// over the module and exits non-zero on findings, so `make lint` and CI
// fail on any invariant violation. See docs/STATIC_ANALYSIS.md.
//
// Usage:
//
//	v2vlint [-dir module] [-analyzers a,b] [-json] [packages...]
//	v2vlint -escapes [-dir module] [-json] [packages...]
//
// Packages default to ./... (every package in the module, skipping
// testdata). Findings print one per line as
// file:line:col: [analyzer] message; -json emits them as a JSON array
// instead (machine-readable, for CI problem matchers and tooling).
//
// -escapes switches to the compiler-driven hot-path allocation check:
// it builds the packages with -gcflags=-m=2, attributes escape
// diagnostics to //v2v:hotpath-annotated functions, and fails on any
// unsuppressed heap escape inside one (see escapes.go and
// docs/STATIC_ANALYSIS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"v2v/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("v2vlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory inside the module to lint")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
	escapes := fs.Bool("escapes", false, "run the compiler-driven //v2v:hotpath escape check instead of the AST analyzers")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *escapes {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		return runEscapes(*dir, patterns, *jsonOut, stdout, stderr)
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "v2vlint: unknown analyzer %q\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "v2vlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "v2vlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "v2vlint: %v\n", err)
		return 2
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "v2vlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "v2vlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// writeJSON emits findings as a stable JSON array (empty runs print
// `[]`, not `null`, so consumers can always range over the result).
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	type finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, finding{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
