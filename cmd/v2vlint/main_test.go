package main

import (
	"bytes"
	"strings"
	"testing"
)

func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFindingsExitNonzero(t *testing.T) {
	code, out, errb := runLint(t, "-dir", "testdata/fixture")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("findings = %d, want 3 (live, bare-unsuppressed, bare-directive):\n%s", len(lines), out)
	}
	for _, wantSub := range []string{
		"[errwrap] error compared with ==",
		"[nolint] v2v:nolint requires a written reason",
	} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("output missing %q:\n%s", wantSub, out)
		}
	}
	// The justified suppression (fixture.go line 15) must be silent.
	if strings.Contains(out, "fixture.go:15") {
		t.Errorf("suppressed finding leaked through:\n%s", out)
	}
}

func TestCleanExitsZero(t *testing.T) {
	code, out, errb := runLint(t, "-dir", "testdata/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, out, errb)
	}
	if out != "" {
		t.Errorf("unexpected output: %s", out)
	}
}

func TestAnalyzerSubset(t *testing.T) {
	// Only ledger runs; the errwrap finding disappears but the errwrap
	// nolint directives must not be misreported as unknown.
	code, out, _ := runLint(t, "-dir", "testdata/fixture", "-analyzers", "ledger")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (bare directive is still a finding):\n%s", code, out)
	}
	if strings.Contains(out, "errwrap] error compared") {
		t.Errorf("errwrap ran despite subset:\n%s", out)
	}
	if strings.Contains(out, "unknown analyzer") {
		t.Errorf("directives for non-running analyzers misreported:\n%s", out)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errb := runLint(t, "-analyzers", "nosuch")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errb)
	}
}

func TestList(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"ctxcheck", "ledger", "lockcheck", "metricsname", "errwrap"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}
