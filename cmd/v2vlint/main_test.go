package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runLint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFindingsExitNonzero(t *testing.T) {
	code, out, errb := runLint(t, "-dir", "testdata/fixture")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("findings = %d, want 3 (live, bare-unsuppressed, bare-directive):\n%s", len(lines), out)
	}
	for _, wantSub := range []string{
		"[errwrap] error compared with ==",
		"[nolint] v2v:nolint requires a written reason",
	} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("output missing %q:\n%s", wantSub, out)
		}
	}
	// The justified suppression (fixture.go line 15) must be silent.
	if strings.Contains(out, "fixture.go:15") {
		t.Errorf("suppressed finding leaked through:\n%s", out)
	}
}

func TestCleanExitsZero(t *testing.T) {
	code, out, errb := runLint(t, "-dir", "testdata/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout: %s stderr: %s", code, out, errb)
	}
	if out != "" {
		t.Errorf("unexpected output: %s", out)
	}
}

func TestAnalyzerSubset(t *testing.T) {
	// Only ledger runs; the errwrap finding disappears but the errwrap
	// nolint directives must not be misreported as unknown.
	code, out, _ := runLint(t, "-dir", "testdata/fixture", "-analyzers", "ledger")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (bare directive is still a finding):\n%s", code, out)
	}
	if strings.Contains(out, "errwrap] error compared") {
		t.Errorf("errwrap ran despite subset:\n%s", out)
	}
	if strings.Contains(out, "unknown analyzer") {
		t.Errorf("directives for non-running analyzers misreported:\n%s", out)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errb := runLint(t, "-analyzers", "nosuch")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errb)
	}
}

// jsonFinding mirrors the writeJSON schema for round-trip assertions.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runLint(t, "-dir", "testdata/fixture", "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(findings) != 3 {
		t.Fatalf("findings = %d, want 3:\n%s", len(findings), out)
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestJSONCleanEmitsEmptyArray(t *testing.T) {
	code, out, _ := runLint(t, "-dir", "testdata/clean", "-json")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output = %q, want []", out)
	}
}

func TestEscapesSeededFixtureFails(t *testing.T) {
	code, out, errb := runLint(t, "-escapes", "-dir", "testdata/escapes")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (seeded escape must fail); stdout: %s stderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "[hotpath]") || !strings.Contains(out, "in hotpath function leaky") {
		t.Errorf("seeded escape not attributed to leaky:\n%s", out)
	}
	// The clean function, the suppressed line, and the unannotated
	// function must all stay silent.
	for _, silent := range []string{"function sum", "function suppressed", "function unannotated"} {
		if strings.Contains(out, silent) {
			t.Errorf("unexpected finding mentioning %q:\n%s", silent, out)
		}
	}
	if !strings.Contains(errb, "3 annotated hotpath function(s)") {
		t.Errorf("stderr missing annotation count: %s", errb)
	}
}

func TestEscapesJSON(t *testing.T) {
	code, out, _ := runLint(t, "-escapes", "-dir", "testdata/escapes", "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("-escapes -json output is not valid JSON: %v\n%s", err, out)
	}
	if len(findings) == 0 {
		t.Fatal("no findings in -escapes -json output")
	}
	for _, f := range findings {
		if f.Analyzer != "hotpath" {
			t.Errorf("analyzer = %q, want hotpath", f.Analyzer)
		}
		if !strings.Contains(f.Message, "leaky") {
			t.Errorf("finding not attributed to leaky: %+v", f)
		}
	}
}

func TestEscapesRequiresAnnotations(t *testing.T) {
	code, _, errb := runLint(t, "-escapes", "-dir", "testdata/clean")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "no //v2v:hotpath annotations") {
		t.Errorf("stderr missing no-annotations message: %s", errb)
	}
}

func TestList(t *testing.T) {
	code, out, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"ctxcheck", "ledger", "lockcheck", "metricsname", "errwrap"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}
