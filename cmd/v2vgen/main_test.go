package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"v2v/internal/data"
	"v2v/internal/media"
)

func TestRunGeneratesVideoAndAnnotations(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "v.vmf")
	ann := filepath.Join(dir, "v.boxes.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-profile", "tiny", "-seconds", "2", "-out", out, "-ann", ann,
		"-gop", "1", "-quality", "2", "-seed", "42", "-width", "192", "-height", "96"},
		&stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "48 frames") || !strings.Contains(stdout.String(), "192x96") {
		t.Errorf("stdout:\n%s", stdout.String())
	}
	r, err := media.OpenReader(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumFrames() != 48 || r.Info().Quality != 2 || r.Info().Width != 192 {
		t.Errorf("info = %+v frames = %d", r.Info(), r.NumFrames())
	}
	arr, err := data.LoadJSON(ann)
	if err != nil || arr.Len() != 48 {
		t.Errorf("annotations: %v len=%d", err, arr.Len())
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	for _, prof := range []string{"tos", "kabr"} {
		out := filepath.Join(dir, prof+".vmf")
		if err := run([]string{"-profile", prof, "-seconds", "1", "-out", out}, &stdout, &stderr); err != nil {
			t.Errorf("%s: %v", prof, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-seconds", "2"}, &stdout, &stderr); err == nil {
		t.Error("missing -out should fail")
	}
	if err := run([]string{"-profile", "bogus", "-out", "x.vmf"}, &stdout, &stderr); err == nil {
		t.Error("bad profile should fail")
	}
	if err := run([]string{"-out", "/nonexistent-dir/x.vmf"}, &stdout, &stderr); err == nil {
		t.Error("bad path should fail")
	}
	if err := run([]string{"-nosuchflag"}, &stdout, &stderr); err == nil {
		t.Error("bad flag should fail")
	}
}
