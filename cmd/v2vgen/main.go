// Command v2vgen generates the synthetic evaluation datasets (ToS-sim and
// KABR-sim) or custom synthetic videos.
//
// Usage:
//
//	v2vgen -profile tos  -seconds 290 -out film.vmf -ann film.boxes.json
//	v2vgen -profile kabr -seconds 75  -out drone.vmf
//	v2vgen -profile tiny -seconds 4   -out test.vmf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"v2v/internal/dataset"
	"v2v/internal/rational"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "v2vgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("v2vgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profile = fs.String("profile", "tiny", "dataset profile: tos, kabr, or tiny")
		seconds = fs.Int64("seconds", 10, "duration in seconds")
		out     = fs.String("out", "", "output VMF path (required)")
		ann     = fs.String("ann", "", "optional annotation JSON path")
		width   = fs.Int("width", 0, "override frame width")
		height  = fs.Int("height", 0, "override frame height")
		gop     = fs.Int64("gop", 0, "override keyframe interval in seconds")
		quality = fs.Int("quality", 0, "override codec quantizer (1 = lossless)")
		seed    = fs.Int64("seed", 0, "override content seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("-out is required")
	}

	var p dataset.Profile
	switch *profile {
	case "tos":
		p = dataset.ToSProfile()
	case "kabr":
		p = dataset.KABRProfile()
	case "tiny":
		p = dataset.TinyProfile()
	default:
		return fmt.Errorf("unknown profile %q (want tos, kabr, or tiny)", *profile)
	}
	if *width > 0 {
		p.Width = *width
	}
	if *height > 0 {
		p.Height = *height
	}
	if *gop > 0 {
		p.GOPSeconds = rational.FromInt(*gop)
	}
	if *quality > 0 {
		p.Quality = *quality
	}
	if *seed != 0 {
		p.Seed = *seed
	}

	n, err := dataset.Generate(*out, *ann, p, rational.FromInt(*seconds))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: %d frames, %dx%d @ %s fps, GOP %d frames, Q%d\n",
		*out, n, p.Width, p.Height, p.FPS, p.GOPFrames(), p.Quality)
	if *ann != "" {
		fmt.Fprintf(stdout, "wrote %s\n", *ann)
	}
	return nil
}
