package v2v

import (
	"fmt"

	"v2v/internal/rational"
	"v2v/internal/vql"
)

// Rat is an exact rational number, the unit of all V2V timestamps.
type Rat = rational.Rat

// R builds the rational num/den.
func R(num, den int64) Rat { return rational.New(num, den) }

// Sec builds the rational n/1 (whole seconds).
func Sec(n int64) Rat { return rational.FromInt(n) }

// SpecBuilder assembles specs programmatically — the API a host VDBMS uses
// to turn relational query results into a synthesis spec, as opposed to
// the textual grammar end users write.
type SpecBuilder struct {
	spec *vql.Spec
	arms []vql.MatchArm
	err  error
}

// NewSpec starts a spec whose output timeline is Range(start, end, step).
func NewSpec(start, end, step Rat) *SpecBuilder {
	b := &SpecBuilder{spec: &vql.Spec{
		Videos:    map[string]string{},
		DataFiles: map[string]string{},
		DataSQL:   map[string]string{},
	}}
	if step.Sign() <= 0 {
		b.err = fmt.Errorf("v2v: time domain step must be positive")
		return b
	}
	b.spec.TimeDomain = rational.NewRange(start, end, step)
	return b
}

// Video binds a logical video name to a VMF file path.
func (b *SpecBuilder) Video(name, path string) *SpecBuilder {
	if b.err == nil {
		if _, dup := b.spec.Videos[name]; dup {
			b.err = fmt.Errorf("v2v: duplicate video %q", name)
		} else {
			b.spec.Videos[name] = path
		}
	}
	return b
}

// Data binds a logical data-array name to an annotation JSON file.
func (b *SpecBuilder) Data(name, path string) *SpecBuilder {
	if b.err == nil {
		if b.spec.IsDataName(name) {
			b.err = fmt.Errorf("v2v: duplicate data array %q", name)
		} else {
			b.spec.DataFiles[name] = path
		}
	}
	return b
}

// SQL binds a logical data-array name to a SELECT statement over the DB
// passed at synthesis time. The query must yield (RAT timestamp, value)
// rows.
func (b *SpecBuilder) SQL(name, query string) *SpecBuilder {
	if b.err == nil {
		if b.spec.IsDataName(name) {
			b.err = fmt.Errorf("v2v: duplicate data array %q", name)
		} else {
			b.spec.DataSQL[name] = query
		}
	}
	return b
}

// Output forces an explicit output format (disabling stream copies); by
// default the output inherits the sources' format.
func (b *SpecBuilder) Output(width, height int, fps Rat) *SpecBuilder {
	if b.err == nil {
		b.spec.Output = &vql.OutputFormat{Width: width, Height: height, FPS: fps}
	}
	return b
}

// Render sets the whole-domain render expression (textual grammar). Use
// Arm/ArmSet instead to build a match.
func (b *SpecBuilder) Render(exprSrc string) *SpecBuilder {
	if b.err != nil {
		return b
	}
	if b.spec.Render != nil || len(b.arms) > 0 {
		b.err = fmt.Errorf("v2v: render already set")
		return b
	}
	e, err := vql.ParseExpr(exprSrc)
	if err != nil {
		b.err = err
		return b
	}
	b.spec.Render = e
	return b
}

// Arm appends a match arm rendering exprSrc for output times in
// Range(start, end, step).
func (b *SpecBuilder) Arm(start, end, step Rat, exprSrc string) *SpecBuilder {
	if b.err != nil {
		return b
	}
	if b.spec.Render != nil {
		b.err = fmt.Errorf("v2v: render already set")
		return b
	}
	if step.Sign() <= 0 {
		b.err = fmt.Errorf("v2v: arm step must be positive")
		return b
	}
	e, err := vql.ParseExpr(exprSrc)
	if err != nil {
		b.err = err
		return b
	}
	b.arms = append(b.arms, vql.MatchArm{
		Guard: vql.RangeGuard(rational.NewRange(start, end, step)),
		Body:  e,
	})
	return b
}

// ArmSet appends a match arm for an explicit set of times.
func (b *SpecBuilder) ArmSet(times []Rat, exprSrc string) *SpecBuilder {
	if b.err != nil {
		return b
	}
	if b.spec.Render != nil {
		b.err = fmt.Errorf("v2v: render already set")
		return b
	}
	e, err := vql.ParseExpr(exprSrc)
	if err != nil {
		b.err = err
		return b
	}
	b.arms = append(b.arms, vql.MatchArm{Guard: vql.SetGuard(times), Body: e})
	return b
}

// Build finalizes the spec, resolving video/data references.
func (b *SpecBuilder) Build() (*Spec, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.spec.Render == nil {
		if len(b.arms) == 0 {
			return nil, fmt.Errorf("v2v: spec has no render expression")
		}
		b.spec.Render = vql.Match{Arms: b.arms}
	}
	if err := b.spec.ResolveRefs(); err != nil {
		return nil, err
	}
	return b.spec, nil
}
