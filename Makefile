# Tier-1 gate (ROADMAP.md): build + test.
# `make check` adds vet, the race detector (required for internal/obs), and
# the project linters (`make lint`, cmd/v2vlint — see
# docs/STATIC_ANALYSIS.md).
# `make alloccheck` runs the compiler-driven hot-path escape check
# (`v2vlint -escapes`): every //v2v:hotpath function must be free of
# unsuppressed heap escapes (docs/STATIC_ANALYSIS.md).
# `make fuzz` runs the native fuzz targets for FUZZTIME each (the checked-in
# corpora under testdata/fuzz always run as part of plain `go test`).
# `make bench` regenerates every paper figure plus the cache, overload,
# streaming, and pixel-pipeline sweeps, writes the per-query measurements
# to BENCH_PR9.json, and diffs them against the prior committed generation
# (BENCH_PR7.json — PR 8's baseline was never committed) with regressions
# flagged — CI uploads both reports and appends the markdown diff to the
# job summary; `make microbench` keeps the old go-test microbenchmarks.
# `make chaos` runs the fault-injection suite (docs/ROBUSTNESS.md) — read
# faults plus the overload/memory-pressure scenario — three times with
# distinct seeds; set V2V_CHAOS_SEED to pin the base seed.

GO ?= go
V2V_CHAOS_SEED ?= 1
BENCH_JSON ?= BENCH_PR9.json
BENCH_PRIOR_JSON ?= BENCH_PR7.json
BENCH_DELTA_MD ?= bench-delta.md
BENCH_PARALLEL ?= 4
FUZZTIME ?= 10s

.PHONY: all build test tier1 vet race lint alloccheck fuzz check bench microbench chaos

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/v2vlint ./...

alloccheck:
	$(GO) run ./cmd/v2vlint -escapes ./...

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/vql/
	$(GO) test -run='^$$' -fuzz=FuzzNewReader -fuzztime=$(FUZZTIME) ./internal/container/

check: tier1 vet race lint alloccheck

bench:
	@test -f $(BENCH_PRIOR_JSON) || { \
		echo "make bench: baseline $(BENCH_PRIOR_JSON) is missing —" \
		     "commit the prior generation's report or point" \
		     "BENCH_PRIOR_JSON at one; refusing to run without a delta" >&2; \
		exit 1; }
	$(GO) run ./cmd/v2vbench -fig all -parallel $(BENCH_PARALLEL) -json $(BENCH_JSON) \
		-delta $(BENCH_PRIOR_JSON) -delta-out $(BENCH_DELTA_MD)

microbench:
	$(GO) test -bench=. -benchmem

chaos:
	$(GO) test -count=3 -run 'Corrupt|Cancel|Transient|Panic|Conceal|Abort|Atomic|Flaky|Injector|Pressure|Burst' ./internal/container/ ./internal/exec/ ./internal/faults/
	@for off in 0 100 200; do \
		seed=$$(( $(V2V_CHAOS_SEED) + $$off )); \
		echo "== v2vbench -chaos -chaos-seed $$seed =="; \
		$(GO) run ./cmd/v2vbench -chaos -chaos-seed $$seed -flight-out chaos-flight-$$seed.json || exit 1; \
	done
