# Tier-1 gate (ROADMAP.md): build + test.
# `make check` adds vet and the race detector (required for internal/obs).

GO ?= go

.PHONY: all build test tier1 vet race check bench

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: tier1 vet race

bench:
	$(GO) test -bench=. -benchmem
