package v2v

// Benchmark harness regenerating every figure of the paper's evaluation
// (§V). Run with:
//
//	go test -bench=. -benchmem            # quick scale (reduced durations)
//	V2V_BENCH_SCALE=full go test -bench=Fig -timeout 60m
//
// The numbers to read are ns/op per query and mode; the cmd/v2vbench tool
// renders the same measurements as the paper's tables with speedup columns.
//
//   - BenchmarkFig3ToS:      Q1–Q10, unoptimized vs optimized, ToS-sim.
//   - BenchmarkFig4KABR:     Q1–Q10, unoptimized vs optimized, KABR-sim.
//   - BenchmarkFig5DataJoin: Q5/Q10, Python+OpenCV-equivalent baseline vs
//     V2V, both datasets.
//   - BenchmarkAblation*:    per-pass and parallelism ablations of the
//     design choices called out in DESIGN.md.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"v2v/internal/benchkit"
	"v2v/internal/core"
	"v2v/internal/dataset"
	"v2v/internal/opt"
	"v2v/internal/rational"
)

func benchScale() benchkit.Scale {
	if os.Getenv("V2V_BENCH_SCALE") == "full" {
		return benchkit.FullScale()
	}
	return benchkit.QuickScale()
}

var (
	benchOnce sync.Once
	benchToS  *benchkit.Dataset
	benchKABR *benchkit.Dataset
	benchErr  error
	benchOut  string
)

func benchSetup(b *testing.B) (*benchkit.Dataset, *benchkit.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		dir := benchkit.DefaultDir()
		sc := benchScale()
		benchToS, benchErr = benchkit.ProvisionToS(dir, sc)
		if benchErr != nil {
			return
		}
		benchKABR, benchErr = benchkit.ProvisionKABR(dir, sc)
		if benchErr != nil {
			return
		}
		benchOut, benchErr = os.MkdirTemp("", "v2v-bench-out-")
	})
	if benchErr != nil {
		b.Fatalf("bench setup: %v", benchErr)
	}
	return benchToS, benchKABR
}

func benchQueries(b *testing.B, ds *benchkit.Dataset) {
	b.Helper()
	sc := benchScale()
	for _, q := range benchkit.Queries() {
		for _, mode := range []benchkit.Mode{benchkit.ModeUnopt, benchkit.ModeOpt} {
			b.Run(fmt.Sprintf("%s/%s", q.ID, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := benchkit.RunOnce(ds, q, mode, benchkit.Config{Scale: sc, OutDir: benchOut}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig3ToS regenerates Fig. 3: benchmark queries on the ToS-sim
// dataset, unoptimized vs optimized plans (paper: 3.44x average speedup;
// Q1's plans identical for lack of keyframes).
func BenchmarkFig3ToS(b *testing.B) {
	tos, _ := benchSetup(b)
	benchQueries(b, tos)
}

// BenchmarkFig4KABR regenerates Fig. 4: the same queries on KABR-sim
// (paper: 5.07x average; Q6 ~16x thanks to dense keyframes).
func BenchmarkFig4KABR(b *testing.B) {
	_, kabr := benchSetup(b)
	benchQueries(b, kabr)
}

// BenchmarkFig5DataJoin regenerates Fig. 5: the data-joining queries
// (Q5/Q10) on both datasets, V2V vs the Python+OpenCV-equivalent baseline
// (paper: 4.4x average, dominated by KABR's data-aware rewrites).
func BenchmarkFig5DataJoin(b *testing.B) {
	tos, kabr := benchSetup(b)
	sc := benchScale()
	for _, ds := range []*benchkit.Dataset{tos, kabr} {
		for _, qid := range []string{"Q5", "Q10"} {
			q, _ := benchkit.QueryByID(qid)
			for _, mode := range []benchkit.Mode{benchkit.ModeBaseline, benchkit.ModeOpt} {
				b.Run(fmt.Sprintf("%s/%s/%s", ds.Name, q.ID, mode), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := benchkit.RunOnce(ds, q, mode, benchkit.Config{Scale: sc, OutDir: benchOut}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkAblationPasses isolates each optimizer pass on the KABR splice
// query (Q7), the query where every pass has an opportunity.
func BenchmarkAblationPasses(b *testing.B) {
	_, kabr := benchSetup(b)
	sc := benchScale()
	q, _ := benchkit.QueryByID("Q7")
	src := q.BuildSpecSource(kabr, sc)
	spec, err := ParseSpec(src)
	if err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name   string
		passes *opt.Options
		on     bool
	}{
		{"none", nil, false},
		{"copy-only", &opt.Options{StreamCopy: true}, true},
		{"smartcut-only", &opt.Options{SmartCut: true}, true},
		{"merge-only", &opt.Options{MergeFilters: true, MergeSegments: true}, true},
		{"shard-only", &opt.Options{Shard: true}, true},
		{"all", nil, true},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := filepath.Join(benchOut, "ablate.vmf")
				o := core.Options{Optimize: cfg.on, OptPasses: cfg.passes}
				if _, err := core.Synthesize(spec, out, o); err != nil {
					b.Fatal(err)
				}
				os.Remove(out)
			}
		})
	}
}

// BenchmarkAblationParallelism sweeps shard parallelism on the KABR blur
// query (Q9), the CPU-bound per-pixel workload.
func BenchmarkAblationParallelism(b *testing.B) {
	_, kabr := benchSetup(b)
	sc := benchScale()
	q, _ := benchkit.QueryByID("Q9")
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := benchkit.RunOnce(kabr, q, benchkit.ModeOpt, benchkit.Config{Scale: sc, OutDir: benchOut, Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGOP sweeps the source keyframe interval for a mid-GOP
// clip query, exposing the smart-cut crossover the paper observed between
// ToS (10 s GOPs: no cut) and KABR (1 s GOPs: big win).
func BenchmarkAblationGOP(b *testing.B) {
	dir, err := os.MkdirTemp("", "v2v-gopsweep-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	outDir := b.TempDir()
	for _, gopSec := range []int64{1, 2, 5, 10} {
		p := dataset.KABRProfile()
		p.GOPSeconds = rational.FromInt(gopSec)
		vid := filepath.Join(dir, fmt.Sprintf("gop%d.vmf", gopSec))
		if _, err := dataset.Generate(vid, "", p, rational.FromInt(14)); err != nil {
			b.Fatal(err)
		}
		src := fmt.Sprintf(`
			timedomain range(0, 10, 1/30);
			videos { v: %q; }
			render(t) = v[t + 67/30];`, vid)
		spec, err := ParseSpec(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("gop%ds", gopSec), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := filepath.Join(outDir, "gop.vmf")
				if _, err := Synthesize(spec, out, DefaultOptions()); err != nil {
					b.Fatal(err)
				}
				os.Remove(out)
			}
		})
	}
}

// BenchmarkAblationQuality sweeps the codec quantizer: coarser quantizers
// shrink streams (cheaper copies) but re-encode costs stay flat, so the
// optimizer's advantage is robust to quality settings.
func BenchmarkAblationQuality(b *testing.B) {
	dir, err := os.MkdirTemp("", "v2v-qsweep-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	outDir := b.TempDir()
	for _, quality := range []int{1, 4, 16} {
		p := dataset.KABRProfile()
		p.Quality = quality
		vid := filepath.Join(dir, fmt.Sprintf("q%d.vmf", quality))
		if _, err := dataset.Generate(vid, "", p, rational.FromInt(14)); err != nil {
			b.Fatal(err)
		}
		src := fmt.Sprintf(`
			timedomain range(0, 10, 1/30);
			videos { v: %q; }
			render(t) = v[t + 67/30];`, vid)
		spec, err := ParseSpec(src)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []string{"unopt", "opt"} {
			o := Options{}
			if mode == "opt" {
				o = DefaultOptions()
			}
			b.Run(fmt.Sprintf("q%d/%s", quality, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out := filepath.Join(outDir, "q.vmf")
					if _, err := Synthesize(spec, out, o); err != nil {
						b.Fatal(err)
					}
					os.Remove(out)
				}
			})
		}
	}
}
