package baseline

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"v2v/internal/core"
	"v2v/internal/dataset"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/rational"
)

var (
	fxVid string
	fxAnn string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "v2v-baseline-")
	if err != nil {
		panic(err)
	}
	p := dataset.TinyProfile()
	fxVid = filepath.Join(dir, "a.vmf")
	fxAnn = filepath.Join(dir, "a.boxes.json")
	if _, err := dataset.Generate(fxVid, fxAnn, p, rational.FromInt(4)); err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func specSrc(body string) string {
	return fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; }
		data { bb: %q; }
		%s`, fxVid, fxAnn, body)
}

func readAll(t *testing.T, path string) []*frame.Frame {
	t.Helper()
	r, err := media.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out := make([]*frame.Frame, r.NumFrames())
	for i := range out {
		fr, err := r.FrameAtIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = fr.Clone()
	}
	return out
}

func TestBaselineMatchesV2VOutput(t *testing.T) {
	// The baseline is the reference semantics: V2V optimized output must
	// match it pixel-for-pixel on every benchmark shape.
	for name, body := range map[string]string{
		"clip":  `render(t) = v[t + 1];`,
		"blur":  `render(t) = blur(v[t], 1.2);`,
		"boxes": `render(t) = boxes(v[t], bb[t]);`,
		"zoom":  `render(t) = zoom(v[t + 1/2], 2);`,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			src := specSrc(body)
			bOut := filepath.Join(dir, "baseline.vmf")
			if _, err := RunSource(src, bOut, nil); err != nil {
				t.Fatal(err)
			}
			vOut := filepath.Join(dir, "v2v.vmf")
			if _, err := core.SynthesizeSource(src, vOut, core.DefaultOptions()); err != nil {
				t.Fatal(err)
			}
			fb, fv := readAll(t, bOut), readAll(t, vOut)
			if len(fb) != len(fv) {
				t.Fatalf("counts: baseline %d vs v2v %d", len(fb), len(fv))
			}
			for i := range fb {
				if !fb[i].Equal(fv[i]) {
					t.Fatalf("frame %d differs between baseline and V2V", i)
				}
			}
		})
	}
}

func TestBaselineDoesAllTheWork(t *testing.T) {
	// Even a pure clip decodes and encodes everything in the baseline.
	dir := t.TempDir()
	m, err := RunSource(specSrc(`render(t) = v[t + 1];`), filepath.Join(dir, "o.vmf"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Source.FramesDecoded != 48 {
		t.Errorf("decoded = %d, want 48", m.Source.FramesDecoded)
	}
	if m.Output.FramesEncoded != 48 {
		t.Errorf("encoded = %d, want 48", m.Output.FramesEncoded)
	}
	if m.Output.PacketsCopied != 0 {
		t.Errorf("baseline must not copy packets")
	}
	if m.FramesRendered != 48 || m.Wall <= 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestBaselineErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := RunSource("garbage", filepath.Join(dir, "x.vmf"), nil); err == nil {
		t.Error("bad spec should fail")
	}
	if _, err := RunSource(specSrc(`render(t) = v[t + 100];`), filepath.Join(dir, "x.vmf"), nil); err == nil {
		t.Error("out-of-range should fail via check")
	}
}
