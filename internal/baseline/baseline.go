// Package baseline implements the Python+OpenCV-equivalent engine the
// paper compares against in Fig. 5: a straightforward script that decodes
// every needed frame, applies the transforms frame-by-frame in memory, and
// encodes every output frame. No data-dependent rewrites, no stream
// copies, no operator merging decisions (a script is already "merged"),
// and no parallelism.
//
// The codec layer is shared with V2V — as in the paper, where both used
// FFmpeg for coding — so measured differences isolate engine behaviour:
// the work V2V's rewriter and optimizer skip.
package baseline

import (
	"fmt"
	"time"

	"v2v/internal/check"
	"v2v/internal/data"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/raster"
	"v2v/internal/rational"
	"v2v/internal/sqlmini"
	"v2v/internal/vql"
)

// Metrics reports the work the baseline run performed.
type Metrics struct {
	Wall           time.Duration
	Source         media.Stats
	Output         media.Stats
	FramesRendered int64
}

// Run synthesizes the spec naively and writes the output to outPath.
func Run(spec *vql.Spec, outPath string, db *sqlmini.DB) (*Metrics, error) {
	start := time.Now()
	// A script author still validates inputs; reuse the checker purely to
	// load sources/arrays and resolve the output format.
	c, err := check.Check(spec, check.Options{DB: db})
	if err != nil {
		return nil, err
	}
	info := c.Output
	info.Start = rational.Zero
	w, err := media.CreateWriter(outPath, info)
	if err != nil {
		return nil, err
	}
	m := &Metrics{}
	paths := make(map[string]string, len(c.Sources))
	for name, src := range c.Sources {
		paths[name] = src.Path
	}
	env := &scriptEnv{checked: c, cursors: media.NewCursors(paths, 0)}
	defer func() { m.Source.Add(env.cursors.Close()) }()

	domain := spec.TimeDomain
	for i, n := 0, domain.Count(); i < n; i++ {
		at := domain.At(i)
		body := spec.RenderFor(at)
		if body == nil {
			w.Close()
			return nil, fmt.Errorf("baseline: no render arm covers t=%s", at)
		}
		v, err := vql.Eval(body, &vql.Env{T: at, Frames: env, Data: env})
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("baseline: render t=%s: %w", at, err)
		}
		if v.Type != vql.TypeFrame || v.Frame == nil {
			w.Close()
			return nil, fmt.Errorf("baseline: render t=%s produced %v", at, v.Type)
		}
		fr := v.Frame
		if fr.W != info.Width || fr.H != info.Height {
			fr = raster.Scale(fr, info.Width, info.Height)
		}
		if err := w.WriteFrame(fr); err != nil {
			w.Close()
			return nil, err
		}
		m.FramesRendered++
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	m.Output.Add(w.Stats())
	m.Wall = time.Since(start)
	return m, nil
}

// RunSource parses and runs a textual spec.
func RunSource(src, outPath string, db *sqlmini.DB) (*Metrics, error) {
	spec, err := vql.Parse(src)
	if err != nil {
		return nil, err
	}
	return Run(spec, outPath, db)
}

// scriptEnv provides frames and data to the evaluator the way a script
// would: one cv2.VideoCapture-style cursor per access pattern, in-memory
// arrays.
type scriptEnv struct {
	checked *check.Checked
	cursors *media.Cursors
}

func (e *scriptEnv) SourceFrame(video string, t rational.Rat) (*frame.Frame, error) {
	return e.cursors.FrameAt(video, t)
}

func (e *scriptEnv) DataAt(name string, t rational.Rat) (data.Value, bool, error) {
	arr, ok := e.checked.Arrays[name]
	if !ok {
		return data.Value{}, false, fmt.Errorf("baseline: unknown data array %q", name)
	}
	v, ok := arr.At(t)
	return v, ok, nil
}
