package dataset

import (
	"path/filepath"
	"testing"

	"v2v/internal/data"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/rational"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range []Profile{ToSProfile(), KABRProfile(), TinyProfile()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := TinyProfile()
	bad.Width = 16
	if err := bad.Validate(); err == nil {
		t.Error("tiny width should fail stamp requirement")
	}
	bad2 := TinyProfile()
	bad2.VisibleEvery = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero visibility window should fail")
	}
}

func TestGOPFrames(t *testing.T) {
	if got := ToSProfile().GOPFrames(); got != 240 {
		t.Errorf("ToS GOP = %d, want 240", got)
	}
	if got := KABRProfile().GOPFrames(); got != 30 {
		t.Errorf("KABR GOP = %d, want 30", got)
	}
}

func TestGenerateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := TinyProfile()
	path := filepath.Join(dir, "v.vmf")
	ann := filepath.Join(dir, "v.boxes.json")
	n, err := Generate(path, ann, p, rational.FromInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if n != 48 {
		t.Fatalf("frames = %d, want 48", n)
	}
	r, err := media.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumFrames() != 48 {
		t.Fatalf("NumFrames = %d", r.NumFrames())
	}
	info := r.Info()
	if info.GOP != p.GOPFrames() || !info.FPS.Equal(p.FPS) {
		t.Errorf("info = %+v", info)
	}
	// Every frame carries its index stamp (codec is lossless at Q=1).
	for _, i := range []int{0, 1, 24, 47} {
		fr, err := r.FrameAtIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		id, ok := frame.ReadStamp(fr)
		if !ok || id != uint32(i) {
			t.Fatalf("frame %d stamp = %d,%v", i, id, ok)
		}
	}
	// Keyframe cadence: every second at 24 fps.
	c := r.Container()
	for i := 0; i < r.NumFrames(); i++ {
		wantKey := i%24 == 0
		if c.Record(i).Key != wantKey {
			t.Fatalf("packet %d key = %v", i, c.Record(i).Key)
		}
	}
	// Annotations parse and align with objectsAt.
	arr, err := data.LoadJSON(ann)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Len() != 48 {
		t.Fatalf("annotations = %d", arr.Len())
	}
	for i := 0; i < 48; i++ {
		at := rational.New(int64(i), 24)
		v, ok := arr.At(at)
		if !ok {
			t.Fatalf("no annotation at %s", at)
		}
		want := p.objectsAt(i)
		if len(v.Boxes) != len(want) {
			t.Fatalf("frame %d boxes = %d, want %d", i, len(v.Boxes), len(want))
		}
	}
}

func TestVisibilityDensityDiffers(t *testing.T) {
	// ToS-sim has objects on every frame; KABR-sim only occasionally.
	tos, kabr := ToSProfile(), KABRProfile()
	n := 300 // 10-12.5 seconds worth
	tosWith, kabrWith := 0, 0
	for i := 0; i < n; i++ {
		if len(tos.objectsAt(i)) > 0 {
			tosWith++
		}
		if len(kabr.objectsAt(i)) > 0 {
			kabrWith++
		}
	}
	if tosWith != n {
		t.Errorf("ToS objects on %d/%d frames, want all", tosWith, n)
	}
	if kabrWith == 0 || kabrWith > n/2 {
		t.Errorf("KABR objects on %d/%d frames, want sparse but non-zero", kabrWith, n)
	}
}

func TestAnnotationsMatchGenerate(t *testing.T) {
	p := TinyProfile()
	arr, err := Annotations(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Len() != 10 {
		t.Fatalf("len = %d", arr.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := arr.At(rational.New(int64(i), 24))
		if !ok {
			t.Fatal("missing entry")
		}
		want := p.objectsAt(i)
		if len(v.Boxes) != len(want) {
			t.Errorf("frame %d: %d vs %d boxes", i, len(v.Boxes), len(want))
		}
		for j := range want {
			if v.Boxes[j] != want[j] {
				t.Errorf("frame %d box %d differs", i, j)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	dir := t.TempDir()
	p := TinyProfile()
	if _, err := Generate(filepath.Join(dir, "x.vmf"), "", p, rational.Zero); err == nil {
		t.Error("zero duration should fail")
	}
	bad := p
	bad.Width = 8
	if _, err := Generate(filepath.Join(dir, "x.vmf"), "", bad, rational.One); err == nil {
		t.Error("invalid profile should fail")
	}
	if _, err := Generate("/nonexistent-dir/x.vmf", "", p, rational.One); err == nil {
		t.Error("bad path should fail")
	}
}

func TestRenderFrameDeterministic(t *testing.T) {
	p := TinyProfile()
	a, b := p.RenderFrame(7), p.RenderFrame(7)
	if !a.Equal(b) {
		t.Error("RenderFrame must be deterministic")
	}
	c := p.RenderFrame(8)
	if a.Equal(c) {
		t.Error("different frames should differ")
	}
}

func TestObjectsStayMostlyInFrame(t *testing.T) {
	p := KABRProfile()
	for i := 0; i < 600; i += 7 {
		for _, b := range p.objectsAt(i) {
			if b.X < -b.W || b.Y < -b.H || b.X > p.Width || b.Y > p.Height {
				t.Fatalf("frame %d: box %+v far outside %dx%d", i, b, p.Width, p.Height)
			}
		}
	}
}
