// Package dataset generates the synthetic evaluation datasets standing in
// for the paper's Tears of Steel (ToS) and KABR drone footage.
//
// Full 4K source material is pointless for reproducing the optimizer's
// behaviour; what matters is the structure the optimizer exploits, which
// the generators preserve:
//
//   - ToS-sim: film-like content at 24 fps with a sparse keyframe interval
//     (10 s GOP, as the paper observed: "insufficient keyframes over the
//     clipped region to apply a smart cut") and synthetic objects on nearly
//     every frame (which neutralizes the data-aware BoundingBox rewrite).
//   - KABR-sim: drone-like content at 30 fps with keyframes every second
//     (enabling smart cuts) and objects visible only occasionally (which
//     lets the rewriter stream-copy long object-free stretches).
//
// Every generated frame carries a frame.Stamp of its index, and object
// annotations are emitted in the data-array JSON format, so tests can
// verify edits frame-exactly against ground truth.
package dataset

import (
	"fmt"
	"math"

	"v2v/internal/container"
	"v2v/internal/data"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/raster"
	"v2v/internal/rational"
)

// Profile parameterizes a synthetic dataset.
type Profile struct {
	Name   string
	Width  int
	Height int
	FPS    rational.Rat
	// GOPSeconds is the keyframe interval in seconds.
	GOPSeconds rational.Rat
	Quality    int
	Level      int
	// Objects is the number of wandering objects in the scene.
	Objects int
	// ObjectClass labels emitted annotations.
	ObjectClass string
	// VisibleEvery and VisibleFor shape object visibility: objects appear
	// for VisibleFor seconds out of every VisibleEvery seconds. With
	// VisibleEvery == VisibleFor objects are always visible.
	VisibleEvery float64
	VisibleFor   float64
	Seed         int64
}

// ToSProfile mimics Tears of Steel structure at a reduced resolution:
// 24 fps, 10-second GOPs, objects on (nearly) every frame.
func ToSProfile() Profile {
	return Profile{
		Name: "tos-sim", Width: 384, Height: 172, FPS: rational.FromInt(24),
		GOPSeconds: rational.FromInt(10), Quality: 1, Level: 2,
		Objects: 3, ObjectClass: "ACTOR",
		VisibleEvery: 1, VisibleFor: 1, Seed: 101,
	}
}

// KABRProfile mimics the KABR drone videos: 30 fps, 1-second GOPs, objects
// visible only in short bursts.
func KABRProfile() Profile {
	return Profile{
		Name: "kabr-sim", Width: 384, Height: 216, FPS: rational.FromInt(30),
		GOPSeconds: rational.One, Quality: 1, Level: 2,
		Objects: 2, ObjectClass: "ZEBRA",
		VisibleEvery: 10, VisibleFor: 1.5, Seed: 202,
	}
}

// TinyProfile is a fast profile for unit tests: 24 fps, 1-second GOPs,
// small frames, objects visible half the time.
func TinyProfile() Profile {
	return Profile{
		Name: "tiny", Width: 160, Height: 96, FPS: rational.FromInt(24),
		GOPSeconds: rational.One, Quality: 1, Level: 1,
		Objects: 1, ObjectClass: "OBJ",
		VisibleEvery: 2, VisibleFor: 1, Seed: 7,
	}
}

// StreamInfo returns the container stream info the profile encodes to.
func (p Profile) StreamInfo() container.StreamInfo {
	return container.StreamInfo{
		Codec: "GV10", Width: p.Width, Height: p.Height, FPS: p.FPS,
		Quality: p.Quality, GOP: p.GOPFrames(), Level: p.Level,
	}
}

// GOPFrames returns the keyframe interval in frames.
func (p Profile) GOPFrames() int {
	g := int(p.GOPSeconds.Mul(p.FPS).Floor())
	if g < 1 {
		g = 1
	}
	return g
}

// Validate reports whether the profile is generatable.
func (p Profile) Validate() error {
	if p.Width < frame.StampWidth() || p.Height < frame.StampHeight() {
		return fmt.Errorf("dataset: %dx%d too small for frame stamps (need >= %dx%d)",
			p.Width, p.Height, frame.StampWidth(), frame.StampHeight())
	}
	if p.FPS.Sign() <= 0 || p.GOPSeconds.Sign() <= 0 {
		return fmt.Errorf("dataset: fps and GOP must be positive")
	}
	if p.VisibleEvery <= 0 || p.VisibleFor <= 0 {
		return fmt.Errorf("dataset: visibility windows must be positive")
	}
	return nil
}

// object is one wandering scene object.
type object struct {
	track int
	w, h  int
	phase float64
	speed float64
}

// objectsAt returns the boxes visible at frame index i.
func (p Profile) objectsAt(i int) []raster.Box {
	tSec := float64(i) / p.FPS.Float()
	// Visibility window: objects appear in the first VisibleFor seconds of
	// every VisibleEvery-second window (offset per profile seed).
	inWindow := math.Mod(tSec+float64(p.Seed%5), p.VisibleEvery) < p.VisibleFor
	if !inWindow {
		return nil
	}
	boxes := make([]raster.Box, 0, p.Objects)
	for k := 0; k < p.Objects; k++ {
		ob := object{
			track: k + 1,
			w:     p.Width / 8,
			h:     p.Height / 8,
			phase: float64(p.Seed+int64(k)*37) * 0.61,
			speed: 0.35 + 0.13*float64(k),
		}
		cx := 0.5 + 0.35*math.Sin(ob.speed*tSec+ob.phase)
		cy := 0.5 + 0.3*math.Cos(ob.speed*1.3*tSec+ob.phase*1.7)
		x := int(cx*float64(p.Width)) - ob.w/2
		y := int(cy*float64(p.Height)) - ob.h/2
		boxes = append(boxes, raster.Box{
			X: x, Y: y, W: ob.w, H: ob.h,
			Class: p.ObjectClass, Track: ob.track,
		})
	}
	return boxes
}

// RenderFrame procedurally renders frame index i (before stamping).
func (p Profile) RenderFrame(i int) *frame.Frame {
	fr := frame.New(p.Width, p.Height, frame.FormatYUV420)
	pl := fr.Planes()
	// Slowly drifting diagonal gradient background with a per-profile
	// texture; temporally coherent so P-frames stay small.
	drift := i / 2
	seedByte := int(p.Seed % 64)
	for y := 0; y < p.Height; y++ {
		row := pl[0][y*p.Width:]
		for x := 0; x < p.Width; x++ {
			row[x] = byte(seedByte + ((x + drift) / 3 & 0x1F) + ((y + drift/2) / 3 & 0x1F) + ((x^y)&7)*2)
		}
	}
	cw := p.Width / 2
	for y := 0; y < p.Height/2; y++ {
		for x := 0; x < cw; x++ {
			pl[1][y*cw+x] = byte(110 + ((x + drift/4) & 15))
			pl[2][y*cw+x] = byte(130 + ((y + drift/4) & 15))
		}
	}
	// Objects: bright textured rectangles.
	for _, b := range p.objectsAt(i) {
		raster.FillRect(fr, raster.Rect{X: b.X, Y: b.Y, W: b.W, H: b.H}, raster.Color{Y: 220, Cb: 90, Cr: 150})
		raster.DrawRect(fr, raster.Rect{X: b.X, Y: b.Y, W: b.W, H: b.H}, 2, raster.Color{Y: 30, Cb: 128, Cr: 128})
	}
	frame.Stamp(fr, uint32(i))
	return fr
}

// Generate writes duration seconds of synthetic video to path and the
// matching object annotations (data-array JSON) to annPath (skipped when
// annPath is empty). It returns the number of frames written.
func Generate(path, annPath string, p Profile, duration rational.Rat) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n := int(duration.Mul(p.FPS).Floor())
	if n <= 0 {
		return 0, fmt.Errorf("dataset: duration %s yields no frames", duration)
	}
	w, err := media.CreateWriter(path, p.StreamInfo())
	if err != nil {
		return 0, err
	}
	var entries []data.Entry
	frameDur := rational.One.Div(p.FPS)
	for i := 0; i < n; i++ {
		if err := w.WriteFrame(p.RenderFrame(i)); err != nil {
			w.Close()
			return 0, err
		}
		if annPath != "" {
			entries = append(entries, data.Entry{
				T: frameDur.Mul(rational.FromInt(int64(i))),
				V: data.BoxesVal(p.objectsAt(i)),
			})
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	if annPath != "" {
		arr, err := data.NewArray(entries)
		if err != nil {
			return 0, err
		}
		if err := arr.SaveJSON(annPath); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// Annotations computes the ground-truth annotation array for n frames
// without touching disk (used by tests and the SQL loader).
func Annotations(p Profile, n int) (*data.Array, error) {
	frameDur := rational.One.Div(p.FPS)
	entries := make([]data.Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = data.Entry{
			T: frameDur.Mul(rational.FromInt(int64(i))),
			V: data.BoxesVal(p.objectsAt(i)),
		}
	}
	return data.NewArray(entries)
}
