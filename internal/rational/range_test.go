package rational

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func ratRange(start, end, stepNum, stepDen int64) Range {
	return NewRange(FromInt(start), FromInt(end), New(stepNum, stepDen))
}

func TestRangeCountAndAt(t *testing.T) {
	r := NewRange(Zero, FromInt(10), New(1, 30)) // 10 s at 30 fps
	if got := r.Count(); got != 300 {
		t.Fatalf("Count = %d, want 300", got)
	}
	if !r.At(0).Equal(Zero) {
		t.Errorf("At(0) = %v", r.At(0))
	}
	if !r.At(299).Equal(New(299, 30)) {
		t.Errorf("At(299) = %v", r.At(299))
	}
	if !r.Last().Equal(New(299, 30)) {
		t.Errorf("Last = %v", r.Last())
	}
}

func TestRangeCountNonIntegerSpan(t *testing.T) {
	// End not on a sample boundary: Range(0, 1/2, 1/3) = {0, 1/3}.
	r := NewRange(Zero, New(1, 2), New(1, 3))
	if got := r.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestRangeEmpty(t *testing.T) {
	if !NewRange(FromInt(5), FromInt(5), One).Empty() {
		t.Error("equal bounds should be empty")
	}
	if !NewRange(FromInt(6), FromInt(5), One).Empty() {
		t.Error("inverted bounds should be empty")
	}
	if NewRange(Zero, One, One).Empty() {
		t.Error("Range(0,1,1) should have one sample")
	}
}

func TestRangeStepMustBePositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero step did not panic")
		}
	}()
	NewRange(Zero, One, Zero)
}

func TestRangeContainsAndIndexOf(t *testing.T) {
	r := NewRange(FromInt(2), FromInt(4), New(1, 4))
	for i, want := range []string{"2", "9/4", "5/2", "11/4", "3", "13/4", "7/2", "15/4"} {
		w, _ := Parse(want)
		if !r.Contains(w) {
			t.Errorf("Contains(%s) = false", want)
		}
		if idx, ok := r.IndexOf(w); !ok || idx != i {
			t.Errorf("IndexOf(%s) = %d,%v, want %d,true", want, idx, ok, i)
		}
	}
	for _, miss := range []Rat{New(17, 8), FromInt(4), New(7, 4), FromInt(5)} {
		if r.Contains(miss) {
			t.Errorf("Contains(%v) = true", miss)
		}
	}
}

func TestRangeShiftAndInterval(t *testing.T) {
	r := NewRange(Zero, FromInt(2), New(1, 2))
	s := r.Shift(FromInt(10))
	if !s.Start.Equal(FromInt(10)) || !s.End.Equal(FromInt(12)) {
		t.Errorf("Shift = %v", s)
	}
	iv := r.Interval()
	if !iv.Lo.Equal(Zero) || !iv.Hi.Equal(FromInt(2)) {
		t.Errorf("Interval = %v", iv)
	}
	if !NewRange(One, One, One).Interval().Empty() {
		t.Error("empty range interval should be empty")
	}
}

func TestRangeTimes(t *testing.T) {
	r := NewRange(Zero, One, New(1, 3))
	ts := r.Times()
	if len(ts) != 3 {
		t.Fatalf("Times len = %d", len(ts))
	}
	want := []Rat{Zero, New(1, 3), New(2, 3)}
	for i := range want {
		if !ts[i].Equal(want[i]) {
			t.Errorf("Times[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{Lo: Zero, Hi: FromInt(10)}
	b := Interval{Lo: FromInt(5), Hi: FromInt(15)}
	got := a.Intersect(b)
	if !got.Lo.Equal(FromInt(5)) || !got.Hi.Equal(FromInt(10)) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("Overlaps should be true")
	}
	c := Interval{Lo: FromInt(10), Hi: FromInt(20)}
	if a.Overlaps(c) {
		t.Error("half-open touch should not overlap")
	}
	if !a.Contains(Zero) || a.Contains(FromInt(10)) {
		t.Error("half-open containment wrong")
	}
	if !a.Len().Equal(FromInt(10)) {
		t.Errorf("Len = %v", a.Len())
	}
	if !(Interval{}).Empty() {
		t.Error("zero interval should be empty")
	}
}

func iv(lo, hi int64) Interval { return Interval{Lo: FromInt(lo), Hi: FromInt(hi)} }

func TestRangeSetNormalization(t *testing.T) {
	s := NewRangeSet(iv(5, 10), iv(0, 3), iv(3, 5), iv(20, 20), iv(12, 15))
	got := s.Intervals()
	want := []Interval{iv(0, 10), iv(12, 15)}
	if len(got) != len(want) {
		t.Fatalf("intervals = %v", got)
	}
	for i := range want {
		if !got[i].Lo.Equal(want[i].Lo) || !got[i].Hi.Equal(want[i].Hi) {
			t.Errorf("interval %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRangeSetOps(t *testing.T) {
	a := NewRangeSet(iv(0, 10), iv(20, 30))
	b := NewRangeSet(iv(5, 25))

	union := a.Union(b)
	if !union.Equal(NewRangeSet(iv(0, 30))) {
		t.Errorf("union = %v", union)
	}
	inter := a.Intersect(b)
	if !inter.Equal(NewRangeSet(iv(5, 10), iv(20, 25))) {
		t.Errorf("intersect = %v", inter)
	}
	diff := a.Subtract(b)
	if !diff.Equal(NewRangeSet(iv(0, 5), iv(25, 30))) {
		t.Errorf("subtract = %v", diff)
	}
	if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
		t.Error("intersection should be subset of both")
	}
	if a.SubsetOf(b) {
		t.Error("a should not be subset of b")
	}
	if !a.Contains(FromInt(29)) || a.Contains(FromInt(15)) {
		t.Error("Contains wrong")
	}
	if !a.TotalLen().Equal(FromInt(20)) {
		t.Errorf("TotalLen = %v", a.TotalLen())
	}
	span := a.Span()
	if !span.Lo.Equal(Zero) || !span.Hi.Equal(FromInt(30)) {
		t.Errorf("Span = %v", span)
	}
}

func TestRangeSetShift(t *testing.T) {
	a := NewRangeSet(iv(0, 5)).Shift(FromInt(100))
	if !a.Equal(NewRangeSet(iv(100, 105))) {
		t.Errorf("shift = %v", a)
	}
}

func TestRangeSetEmpty(t *testing.T) {
	var s RangeSet
	if !s.Empty() {
		t.Error("zero RangeSet should be empty")
	}
	if !s.SubsetOf(NewRangeSet(iv(0, 1))) {
		t.Error("empty is subset of everything")
	}
	if s.Contains(Zero) {
		t.Error("empty contains nothing")
	}
	if s.String() != "{}" {
		t.Errorf("String = %q", s.String())
	}
}

// quickSet draws a random small RangeSet for property tests.
type quickSet struct{ S RangeSet }

func (quickSet) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(4)
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := r.Int63n(40)
		ivs[i] = Interval{Lo: New(lo, 1+r.Int63n(3)), Hi: New(lo+r.Int63n(20), 1+r.Int63n(3))}
	}
	return reflect.ValueOf(quickSet{NewRangeSet(ivs...)})
}

func TestPropertyRangeSetAlgebra(t *testing.T) {
	if err := quick.Check(func(qa, qb, qc quickSet) bool {
		a, b, c := qa.S, qb.S, qc.S
		// Commutativity and associativity of union/intersection.
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		// De Morgan-ish: a \ (b ∪ c) == (a \ b) \ c.
		if !a.Subtract(b.Union(c)).Equal(a.Subtract(b).Subtract(c)) {
			return false
		}
		// a = (a ∩ b) ∪ (a \ b).
		if !a.Intersect(b).Union(a.Subtract(b)).Equal(a) {
			return false
		}
		// Subset relations.
		if !a.Intersect(b).SubsetOf(a) || !a.SubsetOf(a.Union(b)) {
			return false
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRangeSetContainsMatchesOps(t *testing.T) {
	if err := quick.Check(func(qa, qb quickSet, pt uint8) bool {
		a, b := qa.S, qb.S
		t0 := New(int64(pt)%60, 2)
		inU := a.Union(b).Contains(t0)
		inI := a.Intersect(b).Contains(t0)
		inD := a.Subtract(b).Contains(t0)
		ca, cb := a.Contains(t0), b.Contains(t0)
		return inU == (ca || cb) && inI == (ca && cb) && inD == (ca && !cb)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRangeIntervalCoversSamples(t *testing.T) {
	if err := quick.Check(func(s, n, num, den uint8) bool {
		r := NewRange(FromInt(int64(s%20)), FromInt(int64(s%20)+int64(n%10)), New(1+int64(num%5), 1+int64(den%5)))
		ivl := r.Interval()
		for i := 0; i < r.Count(); i++ {
			if !ivl.Contains(r.At(i)) {
				return false
			}
			if !r.Contains(r.At(i)) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeString(t *testing.T) {
	got := NewRange(Zero, FromInt(600), New(1, 30)).String()
	if got != "Range(0, 600, 1/30)" {
		t.Errorf("String = %q", got)
	}
}

var _ = ratRange // silence helper if unused in some builds
