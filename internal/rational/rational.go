// Package rational implements exact rational arithmetic for media
// timestamps, evenly spaced rational ranges (time domains), and sets of
// rational intervals (RangeSet) used by the V2V dependency analyzer and
// optimizer.
//
// Video timestamps are rationals because common frame rates (24000/1001,
// 30000/1001, ...) are not representable as finite decimals. All arithmetic
// here is exact; overflow is avoided by reducing through the GCD at every
// operation. Values are int64-backed, which covers > 9e18 ticks — far more
// than any realistic media timeline at any timebase this system produces.
package rational

import (
	"fmt"
	"strconv"
	"strings"
)

// Rat is an exact rational number. The zero value is 0/1.
//
// Invariants maintained by all constructors and operations:
// den > 0, and gcd(|num|, den) == 1.
type Rat struct {
	num int64
	den int64
}

// Zero is the rational 0/1.
var Zero = Rat{0, 1}

// One is the rational 1/1.
var One = Rat{1, 1}

// New returns the reduced rational num/den. It panics if den == 0; a zero
// denominator is always a programming error in this codebase.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rational: zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd(abs(num), den)
	return Rat{num / g, den / g}
}

// FromInt returns n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// Num returns the reduced numerator (may be negative).
func (r Rat) Num() int64 { return r.num }

// Den returns the reduced denominator (always positive; 1 for the zero value).
func (r Rat) Den() int64 {
	if r.den == 0 {
		return 1
	}
	return r.den
}

// norm returns r with a canonical non-zero denominator so that zero-valued
// Rat structs behave as 0/1.
func (r Rat) norm() Rat {
	if r.den == 0 {
		return Rat{0, 1}
	}
	return r
}

func abs(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// Add returns r + o.
func (r Rat) Add(o Rat) Rat {
	r, o = r.norm(), o.norm()
	g := gcd(r.den, o.den)
	// r.num*(o.den/g) + o.num*(r.den/g) over lcm.
	return New(r.num*(o.den/g)+o.num*(r.den/g), r.den/g*o.den)
}

// Sub returns r - o.
func (r Rat) Sub(o Rat) Rat { return r.Add(o.Neg()) }

// Neg returns -r.
func (r Rat) Neg() Rat { r = r.norm(); return Rat{-r.num, r.den} }

// Mul returns r * o.
func (r Rat) Mul(o Rat) Rat {
	r, o = r.norm(), o.norm()
	g1 := gcd(abs(r.num), o.den)
	g2 := gcd(abs(o.num), r.den)
	return New((r.num/g1)*(o.num/g2), (r.den/g2)*(o.den/g1))
}

// Div returns r / o. It panics if o is zero.
func (r Rat) Div(o Rat) Rat {
	o = o.norm()
	if o.num == 0 {
		panic("rational: division by zero")
	}
	return r.Mul(Rat{o.den, o.num}.canon())
}

// canon fixes sign placement after constructing a raw inverse.
func (r Rat) canon() Rat {
	if r.den < 0 {
		return Rat{-r.num, -r.den}
	}
	return r
}

// Cmp compares r and o, returning -1, 0, or +1.
func (r Rat) Cmp(o Rat) int {
	d := r.Sub(o).norm()
	switch {
	case d.num < 0:
		return -1
	case d.num > 0:
		return 1
	default:
		return 0
	}
}

// Less reports whether r < o.
func (r Rat) Less(o Rat) bool { return r.Cmp(o) < 0 }

// LessEq reports whether r <= o.
func (r Rat) LessEq(o Rat) bool { return r.Cmp(o) <= 0 }

// Equal reports whether r == o as rationals.
func (r Rat) Equal(o Rat) bool { return r.Cmp(o) == 0 }

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	r = r.norm()
	switch {
	case r.num < 0:
		return -1
	case r.num > 0:
		return 1
	default:
		return 0
	}
}

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.norm().den == 1 }

// Floor returns the greatest integer <= r.
func (r Rat) Floor() int64 {
	r = r.norm()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num < 0 {
		q--
	}
	return q
}

// Ceil returns the least integer >= r.
func (r Rat) Ceil() int64 {
	r = r.norm()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num > 0 {
		q++
	}
	return q
}

// Float returns a float64 approximation of r, for display and heuristics
// only — never for timeline arithmetic.
func (r Rat) Float() float64 {
	r = r.norm()
	return float64(r.num) / float64(r.den)
}

// Min returns the smaller of r and o.
func (r Rat) Min(o Rat) Rat {
	if r.Less(o) {
		return r
	}
	return o
}

// Max returns the larger of r and o.
func (r Rat) Max(o Rat) Rat {
	if r.Less(o) {
		return o
	}
	return r
}

// String formats r as "num/den", or "num" when r is an integer.
func (r Rat) String() string {
	r = r.norm()
	if r.den == 1 {
		return strconv.FormatInt(r.num, 10)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}

// Parse parses "num", "num/den", or a decimal like "29.97" into a Rat.
func Parse(s string) (Rat, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Rat{}, fmt.Errorf("rational: empty string")
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, err := strconv.ParseInt(strings.TrimSpace(s[:i]), 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("rational: bad numerator in %q: %w", s, err)
		}
		den, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("rational: bad denominator in %q: %w", s, err)
		}
		if den == 0 {
			return Rat{}, fmt.Errorf("rational: zero denominator in %q", s)
		}
		return New(num, den), nil
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart := s[:i]
		fracPart := s[i+1:]
		if fracPart == "" {
			fracPart = "0"
		}
		neg := strings.HasPrefix(intPart, "-")
		intPart = strings.TrimPrefix(intPart, "-")
		if intPart == "" {
			intPart = "0"
		}
		ip, err := strconv.ParseInt(intPart, 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("rational: bad number %q: %w", s, err)
		}
		fp, err := strconv.ParseInt(fracPart, 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("rational: bad number %q: %w", s, err)
		}
		den := int64(1)
		for range fracPart {
			den *= 10
		}
		v := FromInt(ip).Mul(FromInt(den)).Add(FromInt(fp)).Div(FromInt(den))
		if neg {
			v = v.Neg()
		}
		return v, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Rat{}, fmt.Errorf("rational: bad number %q: %w", s, err)
	}
	return FromInt(n), nil
}

// MarshalJSON encodes r as the two-element array [num, den].
func (r Rat) MarshalJSON() ([]byte, error) {
	r = r.norm()
	return []byte(fmt.Sprintf("[%d,%d]", r.num, r.den)), nil
}

// UnmarshalJSON accepts [num, den], a bare integer, or a "num/den" string.
func (r *Rat) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	switch {
	case strings.HasPrefix(s, "["):
		s = strings.TrimSuffix(strings.TrimPrefix(s, "["), "]")
		parts := strings.Split(s, ",")
		if len(parts) != 2 {
			return fmt.Errorf("rational: want [num,den], got %q", string(b))
		}
		num, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return err
		}
		den, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return err
		}
		if den == 0 {
			return fmt.Errorf("rational: zero denominator in %q", string(b))
		}
		*r = New(num, den)
		return nil
	case strings.HasPrefix(s, `"`):
		v, err := Parse(strings.Trim(s, `"`))
		if err != nil {
			return err
		}
		*r = v
		return nil
	default:
		v, err := Parse(s)
		if err != nil {
			return err
		}
		*r = v
		return nil
	}
}
