package rational

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genRat draws a small random rational so products stay far from overflow.
func genRat(r *rand.Rand) Rat {
	return New(r.Int63n(2001)-1000, r.Int63n(1000)+1)
}

// quickRat adapts genRat for testing/quick value generation.
type quickRat struct{ R Rat }

func (quickRat) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickRat{genRat(r)})
}

func TestNewReduces(t *testing.T) {
	cases := []struct {
		num, den int64
		wantN    int64
		wantD    int64
	}{
		{6, 4, 3, 2},
		{-6, 4, -3, 2},
		{6, -4, -3, 2},
		{-6, -4, 3, 2},
		{0, 5, 0, 1},
		{7, 7, 1, 1},
		{30000, 1001, 30000, 1001},
	}
	for _, c := range cases {
		got := New(c.num, c.den)
		if got.Num() != c.wantN || got.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.num, c.den, got.Num(), got.Den(), c.wantN, c.wantD)
		}
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueBehavesAsZero(t *testing.T) {
	var z Rat
	if !z.Equal(Zero) {
		t.Errorf("zero value != Zero")
	}
	if got := z.Add(One); !got.Equal(One) {
		t.Errorf("0+1 = %v", got)
	}
	if z.String() != "0" {
		t.Errorf("zero String = %q", z.String())
	}
	if z.Den() != 1 {
		t.Errorf("zero Den = %d", z.Den())
	}
}

func TestArithmetic(t *testing.T) {
	a := New(1, 3)
	b := New(1, 6)
	if got := a.Add(b); !got.Equal(New(1, 2)) {
		t.Errorf("1/3+1/6 = %v", got)
	}
	if got := a.Sub(b); !got.Equal(New(1, 6)) {
		t.Errorf("1/3-1/6 = %v", got)
	}
	if got := a.Mul(b); !got.Equal(New(1, 18)) {
		t.Errorf("1/3*1/6 = %v", got)
	}
	if got := a.Div(b); !got.Equal(FromInt(2)) {
		t.Errorf("(1/3)/(1/6) = %v", got)
	}
	if got := New(-3, 4).Div(New(-1, 2)); !got.Equal(New(3, 2)) {
		t.Errorf("(-3/4)/(-1/2) = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	One.Div(Zero)
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r     Rat
		floor int64
		ceil  int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{FromInt(5), 5, 5},
		{FromInt(-5), -5, -5},
		{Zero, 0, 0},
		{New(1, 3), 0, 1},
		{New(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%v) = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%v) = %d, want %d", c.r, got, c.ceil)
		}
	}
}

func TestCmpAndOrderingHelpers(t *testing.T) {
	a, b := New(29970, 1000), New(2997, 100)
	if a.Cmp(b) != 0 {
		t.Errorf("29.970 != 29.97")
	}
	if !New(1, 3).Less(New(1, 2)) {
		t.Errorf("1/3 !< 1/2")
	}
	if got := New(1, 3).Max(New(1, 2)); !got.Equal(New(1, 2)) {
		t.Errorf("Max = %v", got)
	}
	if got := New(1, 3).Min(New(1, 2)); !got.Equal(New(1, 3)) {
		t.Errorf("Min = %v", got)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Rat
	}{
		{"3", FromInt(3)},
		{"-3", FromInt(-3)},
		{"3/4", New(3, 4)},
		{" 3 / 4 ", New(3, 4)},
		{"29.97", New(2997, 100)},
		{"-0.5", New(-1, 2)},
		{"0.125", New(1, 8)},
		{"10.", FromInt(10)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "1/0", "1/x", "1.x", "--2"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, r := range []Rat{Zero, One, New(-7, 3), New(30000, 1001)} {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal %v: %v", r, err)
		}
		var got Rat
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !got.Equal(r) {
			t.Errorf("roundtrip %v -> %s -> %v", r, b, got)
		}
	}
	// Alternate accepted encodings.
	var r Rat
	if err := json.Unmarshal([]byte(`"3/4"`), &r); err != nil || !r.Equal(New(3, 4)) {
		t.Errorf(`unmarshal "3/4" = %v, %v`, r, err)
	}
	if err := json.Unmarshal([]byte(`5`), &r); err != nil || !r.Equal(FromInt(5)) {
		t.Errorf(`unmarshal 5 = %v, %v`, r, err)
	}
	if err := json.Unmarshal([]byte(`[1,0]`), &r); err == nil {
		t.Error("unmarshal [1,0] succeeded, want error")
	}
}

func TestPropertyFieldLaws(t *testing.T) {
	// Commutativity, associativity, distributivity, inverses.
	if err := quick.Check(func(qa, qb, qc quickRat) bool {
		a, b, c := qa.R, qb.R, qc.R
		if !a.Add(b).Equal(b.Add(a)) {
			return false
		}
		if !a.Mul(b).Equal(b.Mul(a)) {
			return false
		}
		if !a.Add(b).Add(c).Equal(a.Add(b.Add(c))) {
			return false
		}
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			return false
		}
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			return false
		}
		if !a.Sub(a).Equal(Zero) {
			return false
		}
		if a.Sign() != 0 && !a.Div(a).Equal(One) {
			return false
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyReducedInvariant(t *testing.T) {
	if err := quick.Check(func(qa, qb quickRat) bool {
		for _, r := range []Rat{qa.R.Add(qb.R), qa.R.Mul(qb.R), qa.R.Sub(qb.R)} {
			if r.Den() <= 0 {
				return false
			}
			if gcd(abs(r.Num()), r.Den()) != 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyFloorCeilBounds(t *testing.T) {
	if err := quick.Check(func(qa quickRat) bool {
		r := qa.R
		f, c := FromInt(r.Floor()), FromInt(r.Ceil())
		return f.LessEq(r) && r.LessEq(c) && c.Sub(f).LessEq(One)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyParseStringRoundTrip(t *testing.T) {
	if err := quick.Check(func(qa quickRat) bool {
		got, err := Parse(qa.R.String())
		return err == nil && got.Equal(qa.R)
	}, nil); err != nil {
		t.Error(err)
	}
}
