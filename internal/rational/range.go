package rational

import (
	"fmt"
	"sort"
)

// Range is a set of evenly spaced rationals over a half-open interval:
// {Start + k*Step : k ∈ ℕ, Start + k*Step < End}. This is the paper's
// Range(start, end, step) shorthand used for time domains. A Range with
// Start >= End is empty.
type Range struct {
	Start Rat `json:"start"`
	End   Rat `json:"end"`
	Step  Rat `json:"step"`
}

// NewRange builds Range(start, end, step). It panics if step is not
// strictly positive, which is always a programming error.
func NewRange(start, end, step Rat) Range {
	if step.Sign() <= 0 {
		panic("rational: Range step must be positive")
	}
	return Range{Start: start, End: end, Step: step}
}

// Count returns the number of samples in the range.
func (r Range) Count() int {
	if !r.Start.Less(r.End) {
		return 0
	}
	// ceil((End-Start)/Step)
	return int(r.End.Sub(r.Start).Div(r.Step).Ceil())
}

// Empty reports whether the range contains no samples.
func (r Range) Empty() bool { return r.Count() == 0 }

// At returns the i-th sample, Start + i*Step. It does not bounds-check.
func (r Range) At(i int) Rat {
	return r.Start.Add(r.Step.Mul(FromInt(int64(i))))
}

// Last returns the final sample of a non-empty range.
func (r Range) Last() Rat { return r.At(r.Count() - 1) }

// Contains reports whether t is exactly one of the range's samples.
func (r Range) Contains(t Rat) bool {
	if t.Less(r.Start) || !t.Less(r.End) {
		return false
	}
	k := t.Sub(r.Start).Div(r.Step)
	return k.IsInt()
}

// IndexOf returns the sample index of t and whether t is in the range.
func (r Range) IndexOf(t Rat) (int, bool) {
	if !r.Contains(t) {
		return 0, false
	}
	return int(t.Sub(r.Start).Div(r.Step).Num()), true
}

// Times materializes all samples. Intended for small/test ranges and the
// data-only rewrite pass; callers over large domains should iterate with
// Count/At instead.
func (r Range) Times() []Rat {
	n := r.Count()
	out := make([]Rat, n)
	for i := 0; i < n; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Shift returns the range translated by d (affine time shift t+d).
func (r Range) Shift(d Rat) Range {
	return Range{Start: r.Start.Add(d), End: r.End.Add(d), Step: r.Step}
}

// Interval returns the closed-open real interval [Start, End) spanned by
// the range as an Interval, or an empty interval if the range is empty.
func (r Range) Interval() Interval {
	if r.Empty() {
		return Interval{}
	}
	return Interval{Lo: r.Start, Hi: r.Last().Add(r.Step)}
}

func (r Range) String() string {
	return fmt.Sprintf("Range(%s, %s, %s)", r.Start, r.End, r.Step)
}

// Interval is a half-open rational interval [Lo, Hi). An interval with
// Hi <= Lo is empty.
type Interval struct {
	Lo Rat `json:"lo"`
	Hi Rat `json:"hi"`
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return !iv.Lo.Less(iv.Hi) }

// Contains reports whether t ∈ [Lo, Hi).
func (iv Interval) Contains(t Rat) bool {
	return !t.Less(iv.Lo) && t.Less(iv.Hi)
}

// Len returns Hi - Lo (zero for empty intervals).
func (iv Interval) Len() Rat {
	if iv.Empty() {
		return Zero
	}
	return iv.Hi.Sub(iv.Lo)
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo := iv.Lo.Max(o.Lo)
	hi := iv.Hi.Min(o.Hi)
	if !lo.Less(hi) {
		return Interval{}
	}
	return Interval{Lo: lo, Hi: hi}
}

// Overlaps reports whether the two intervals share any point.
func (iv Interval) Overlaps(o Interval) bool { return !iv.Intersect(o).Empty() }

func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s)", iv.Lo, iv.Hi)
}

// RangeSet is a normalized union of disjoint, sorted, non-adjacent
// half-open intervals. It is the workhorse of dependency analysis: the
// checker computes, per source video, the RangeSet of times a spec needs,
// and validates it is a subset of what the source provides.
//
// The zero value is the empty set.
type RangeSet struct {
	ivs []Interval
}

// NewRangeSet builds a set from arbitrary intervals, normalizing them.
func NewRangeSet(ivs ...Interval) RangeSet {
	var s RangeSet
	for _, iv := range ivs {
		s = s.Union(RangeSet{ivs: []Interval{iv}}.normalize())
	}
	return s
}

func (s RangeSet) normalize() RangeSet {
	kept := s.ivs[:0:0]
	for _, iv := range s.ivs {
		if !iv.Empty() {
			kept = append(kept, iv)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Lo.Less(kept[j].Lo) })
	var out []Interval
	for _, iv := range kept {
		if n := len(out); n > 0 && !out[n-1].Hi.Less(iv.Lo) {
			if out[n-1].Hi.Less(iv.Hi) {
				out[n-1].Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return RangeSet{ivs: out}
}

// Intervals returns the normalized intervals (do not mutate).
func (s RangeSet) Intervals() []Interval { return s.ivs }

// Empty reports whether the set contains no points.
func (s RangeSet) Empty() bool { return len(s.ivs) == 0 }

// Contains reports whether t is in the set.
func (s RangeSet) Contains(t Rat) bool {
	// Binary search the first interval with Hi > t.
	i := sort.Search(len(s.ivs), func(i int) bool { return t.Less(s.ivs[i].Hi) })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// Union returns s ∪ o.
func (s RangeSet) Union(o RangeSet) RangeSet {
	merged := make([]Interval, 0, len(s.ivs)+len(o.ivs))
	merged = append(merged, s.ivs...)
	merged = append(merged, o.ivs...)
	return RangeSet{ivs: merged}.normalize()
}

// Intersect returns s ∩ o.
func (s RangeSet) Intersect(o RangeSet) RangeSet {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		iv := s.ivs[i].Intersect(o.ivs[j])
		if !iv.Empty() {
			out = append(out, iv)
		}
		if s.ivs[i].Hi.Less(o.ivs[j].Hi) {
			i++
		} else {
			j++
		}
	}
	return RangeSet{ivs: out}
}

// Subtract returns s \ o.
func (s RangeSet) Subtract(o RangeSet) RangeSet {
	var out []Interval
	for _, iv := range s.ivs {
		pieces := []Interval{iv}
		for _, cut := range o.ivs {
			var next []Interval
			for _, p := range pieces {
				if !p.Overlaps(cut) {
					next = append(next, p)
					continue
				}
				if p.Lo.Less(cut.Lo) {
					next = append(next, Interval{Lo: p.Lo, Hi: cut.Lo})
				}
				if cut.Hi.Less(p.Hi) {
					next = append(next, Interval{Lo: cut.Hi, Hi: p.Hi})
				}
			}
			pieces = next
		}
		out = append(out, pieces...)
	}
	return RangeSet{ivs: out}.normalize()
}

// SubsetOf reports whether every point of s is in o.
func (s RangeSet) SubsetOf(o RangeSet) bool {
	return s.Subtract(o).Empty()
}

// Equal reports whether s and o contain exactly the same points.
func (s RangeSet) Equal(o RangeSet) bool {
	return s.SubsetOf(o) && o.SubsetOf(s)
}

// Shift returns the set translated by d.
func (s RangeSet) Shift(d Rat) RangeSet {
	out := make([]Interval, len(s.ivs))
	for i, iv := range s.ivs {
		out[i] = Interval{Lo: iv.Lo.Add(d), Hi: iv.Hi.Add(d)}
	}
	return RangeSet{ivs: out}
}

// Span returns the smallest single interval covering the set.
func (s RangeSet) Span() Interval {
	if s.Empty() {
		return Interval{}
	}
	return Interval{Lo: s.ivs[0].Lo, Hi: s.ivs[len(s.ivs)-1].Hi}
}

// TotalLen returns the sum of interval lengths.
func (s RangeSet) TotalLen() Rat {
	sum := Zero
	for _, iv := range s.ivs {
		sum = sum.Add(iv.Len())
	}
	return sum
}

func (s RangeSet) String() string {
	if s.Empty() {
		return "{}"
	}
	out := "{"
	for i, iv := range s.ivs {
		if i > 0 {
			out += " ∪ "
		}
		out += iv.String()
	}
	return out + "}"
}
