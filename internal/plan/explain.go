package plan

import (
	"fmt"
	"strings"
	"time"
)

// SegmentActuals records what executing one segment actually cost — the
// measured counterpart to the plan's static shape, filled in by the
// executor for EXPLAIN ANALYZE output.
type SegmentActuals struct {
	// Wall is the segment's measured wall time.
	Wall time.Duration
	// FramesRendered counts output frames produced by the operator tree.
	FramesRendered int64
	// FramesDecoded counts source + intermediate decodes attributable to
	// the segment (smart-cut head decodes included).
	FramesDecoded int64
	// FramesEncoded counts frames encoded into the output.
	FramesEncoded int64
	// PacketsCopied and BytesCopied count stream-copied output packets.
	PacketsCopied int64
	BytesCopied   int64
	// Concealed counts corrupt or undecodable source packets replaced by
	// holding the last good frame (non-zero only in concealment mode).
	Concealed int64
	// GOPCacheHits and GOPCacheMisses count shared decoded-GOP cache
	// lookups attributable to the segment: a hit served a source GOP with
	// no decode, a miss paid one whole-GOP fill. Zero when no cache is
	// configured or the segment never decodes (copies, smart-cut tails).
	GOPCacheHits   int64
	GOPCacheMisses int64
	// ResultCacheHits and ResultCacheMisses count encoded-result cache
	// lookups for the segment: a hit spliced previously synthesized
	// packets without rendering, a miss rendered the segment and filled
	// the cache. Zero when no result cache is configured or the segment
	// is not cacheable.
	ResultCacheHits   int64
	ResultCacheMisses int64
	// Shards is the parallelism the executor actually used.
	Shards int
	// Per-stage pipeline accounting, measured by the request-scoped
	// obs.Recorder: summed operation wall time (shard-parallel work sums,
	// so a stage wall can exceed Wall) and bytes produced per stage.
	// Decode and filter bytes are pixel bytes; encode bytes are encoded
	// packet bytes (copied bytes are already in BytesCopied).
	DecodeWall   time.Duration
	FilterWall   time.Duration
	EncodeWall   time.Duration
	DecodeBytes  int64
	FilterFrames int64
	FilterBytes  int64
	EncodeBytes  int64
}

// String renders the actuals as the annotation appended to explain lines.
func (a SegmentActuals) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("wall=%s", a.Wall.Round(time.Microsecond)))
	if a.FramesRendered > 0 {
		parts = append(parts, fmt.Sprintf("rendered=%d", a.FramesRendered))
	}
	if a.FramesDecoded > 0 {
		parts = append(parts, fmt.Sprintf("decoded=%d", a.FramesDecoded))
	}
	if a.FramesEncoded > 0 {
		parts = append(parts, fmt.Sprintf("encoded=%d", a.FramesEncoded))
	}
	if a.PacketsCopied > 0 {
		parts = append(parts, fmt.Sprintf("copied=%d (%dB)", a.PacketsCopied, a.BytesCopied))
	}
	if a.Concealed > 0 {
		parts = append(parts, fmt.Sprintf("concealed=%d", a.Concealed))
	}
	if a.GOPCacheHits > 0 || a.GOPCacheMisses > 0 {
		parts = append(parts, fmt.Sprintf("gopcache=%dhit/%dmiss", a.GOPCacheHits, a.GOPCacheMisses))
	}
	if a.ResultCacheHits > 0 || a.ResultCacheMisses > 0 {
		parts = append(parts, fmt.Sprintf("rescache=%dhit/%dmiss", a.ResultCacheHits, a.ResultCacheMisses))
	}
	if a.Shards > 1 {
		parts = append(parts, fmt.Sprintf("shards=%d", a.Shards))
	}
	if a.DecodeWall > 0 || a.FilterWall > 0 || a.EncodeWall > 0 {
		parts = append(parts, fmt.Sprintf("stages=dec:%s/%dB flt:%s/%dB enc:%s/%dB",
			a.DecodeWall.Round(time.Microsecond), a.DecodeBytes,
			a.FilterWall.Round(time.Microsecond), a.FilterBytes,
			a.EncodeWall.Round(time.Microsecond), a.EncodeBytes))
	}
	return "actual: " + strings.Join(parts, " ")
}

// Explain renders the plan as an indented text tree, the V2V analogue of
// EXPLAIN for relational plans (and of the paper's Fig. 2 diagrams).
func (p *Plan) Explain() string {
	return p.explain(nil)
}

// ExplainAnalyze renders the plan tree annotated with each segment's
// measured costs (exec.Metrics.Segments) — the analogue of relational
// EXPLAIN ANALYZE, making plan-vs-reality discrepancies visible (e.g. a
// smart cut whose re-encoded head dominates its copied tail). Segments
// beyond len(actuals) render without annotation.
func (p *Plan) ExplainAnalyze(actuals []SegmentActuals) string {
	return p.explain(func(i int) string {
		if i >= len(actuals) {
			return ""
		}
		return "  [" + actuals[i].String() + "]"
	})
}

// explain writes the tree; annotate (optional) returns a suffix for the
// i-th segment's line.
func (p *Plan) explain(annotate func(i int) string) string {
	var sb strings.Builder
	mode := "unoptimized"
	if p.Optimized {
		mode = "optimized"
	}
	out := p.Checked.Output
	fmt.Fprintf(&sb, "plan (%s): output %dx%d@%s gop=%d passthrough=%t\n",
		mode, out.Width, out.Height, out.FPS, out.GOP, p.Checked.Passthrough)
	if total := p.EstimatedCost(); !total.IsZero() {
		fmt.Fprintf(&sb, "estimated cost: %s\n", total)
	}
	fmt.Fprintf(&sb, "concat (%d segments)\n", len(p.Segments))
	for i, s := range p.Segments {
		last := i == len(p.Segments)-1
		branch := "├─ "
		cont := "│  "
		if last {
			branch = "└─ "
			cont = "   "
		}
		suffix := ""
		if !s.EstCost.IsZero() {
			suffix = "  [est: " + s.EstCost.String() + "]"
		}
		if annotate != nil {
			suffix += annotate(i)
		}
		switch s.Kind {
		case SegCopy:
			fmt.Fprintf(&sb, "%scopy %s packets [%d,%d) t in [%s,%s)%s\n",
				branch, s.Video, s.From, s.To, s.Times.Start, s.Times.End, suffix)
		case SegSmartCut:
			fmt.Fprintf(&sb, "%ssmartcut %s packets [%d,%d) t in [%s,%s) (re-encode %d-frame head)%s\n",
				branch, s.Video, s.From, s.To, s.Times.Start, s.Times.End, s.ReencodeHead, suffix)
		default:
			shard := ""
			if s.Shards > 1 {
				shard = fmt.Sprintf(" ×%d shards", s.Shards)
			}
			fmt.Fprintf(&sb, "%ssegment t in [%s,%s) (%d frames)%s%s\n",
				branch, s.Times.Start, s.Times.End, s.FrameCount(), shard, suffix)
			writeNode(&sb, s.Root, cont, true)
		}
	}
	for _, note := range p.Notes {
		fmt.Fprintf(&sb, "-- %s\n", note)
	}
	return sb.String()
}

func writeNode(sb *strings.Builder, n *Node, prefix string, last bool) {
	branch := "├─ "
	cont := "│  "
	if last {
		branch = "└─ "
		cont = "   "
	}
	mat := ""
	if n.Materialize {
		mat = " [materialize]"
	}
	if n.IsLeaf() {
		fmt.Fprintf(sb, "%s%sclip %s[%s]%s\n", prefix, branch, n.Clip.Video, n.Clip.Index, mat)
		return
	}
	if n.Fused != nil {
		fmt.Fprintf(sb, "%s%sfused %s%s\n", prefix, branch, fusedLabel(n.Fused), mat)
	} else {
		fmt.Fprintf(sb, "%s%sfilter %s%s\n", prefix, branch, n.Expr, mat)
	}
	for i, in := range n.Inputs {
		writeNode(sb, in, prefix+cont, i == len(n.Inputs)-1)
	}
}

// fusedLabel renders a fused kernel node's stages in application order,
// e.g. "crossfade($-1, $1, 0.5) -> grade($-1, 10, 1.2, 1)". $-1 marks the
// chain input (the previous stage's output).
func fusedLabel(stages []FusedStage) string {
	var sb strings.Builder
	for i, st := range stages {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		sb.WriteString(st.Op)
		sb.WriteString("(")
		for j, a := range st.Args {
			if j > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s", a)
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// DOT renders the plan as a Graphviz digraph, mirroring the paper's plan
// diagrams (grey diamonds for stream-copy operators).
func (p *Plan) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph v2vplan {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n")
	sb.WriteString("  out [label=\"output\", shape=doubleoctagon];\n")
	sb.WriteString("  concat [label=\"concat\"];\n  concat -> out;\n")
	id := 0
	newID := func() string {
		id++
		return fmt.Sprintf("n%d", id)
	}
	var emit func(n *Node) string
	emit = func(n *Node) string {
		me := newID()
		switch {
		case n.IsLeaf():
			fmt.Fprintf(&sb, "  %s [label=\"clip %s[%s]\"];\n", me, n.Clip.Video, escape(n.Clip.Index.String()))
		case n.Fused != nil:
			fmt.Fprintf(&sb, "  %s [label=\"fused %s\"];\n", me, escape(fusedLabel(n.Fused)))
		default:
			fmt.Fprintf(&sb, "  %s [label=\"filter %s\"];\n", me, escape(n.Expr.String()))
		}
		if n.Materialize {
			matID := newID()
			fmt.Fprintf(&sb, "  %s [label=\"enc/dec\", shape=ellipse, style=dashed];\n", matID)
			fmt.Fprintf(&sb, "  %s -> %s;\n", me, matID)
			for _, in := range n.Inputs {
				child := emit(in)
				fmt.Fprintf(&sb, "  %s -> %s;\n", child, me)
			}
			return matID
		}
		for _, in := range n.Inputs {
			child := emit(in)
			fmt.Fprintf(&sb, "  %s -> %s;\n", child, me)
		}
		return me
	}
	for _, s := range p.Segments {
		switch s.Kind {
		case SegCopy:
			me := newID()
			fmt.Fprintf(&sb, "  %s [label=\"copy %s [%d,%d)\", shape=diamond, style=filled, fillcolor=lightgrey];\n",
				me, s.Video, s.From, s.To)
			fmt.Fprintf(&sb, "  %s -> concat;\n", me)
		case SegSmartCut:
			me := newID()
			fmt.Fprintf(&sb, "  %s [label=\"smartcut %s [%d,%d)\", shape=diamond, style=filled, fillcolor=lightgrey];\n",
				me, s.Video, s.From, s.To)
			fmt.Fprintf(&sb, "  %s -> concat;\n", me)
		default:
			root := emit(s.Root)
			if s.Shards > 1 {
				sh := newID()
				fmt.Fprintf(&sb, "  %s [label=\"shard ×%d\", shape=parallelogram];\n", sh, s.Shards)
				fmt.Fprintf(&sb, "  %s -> %s;\n  %s -> concat;\n", root, sh, sh)
			} else {
				fmt.Fprintf(&sb, "  %s -> concat;\n", root)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func escape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
