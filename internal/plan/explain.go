package plan

import (
	"fmt"
	"strings"
)

// Explain renders the plan as an indented text tree, the V2V analogue of
// EXPLAIN for relational plans (and of the paper's Fig. 2 diagrams).
func (p *Plan) Explain() string {
	var sb strings.Builder
	mode := "unoptimized"
	if p.Optimized {
		mode = "optimized"
	}
	out := p.Checked.Output
	fmt.Fprintf(&sb, "plan (%s): output %dx%d@%s gop=%d passthrough=%t\n",
		mode, out.Width, out.Height, out.FPS, out.GOP, p.Checked.Passthrough)
	fmt.Fprintf(&sb, "concat (%d segments)\n", len(p.Segments))
	for i, s := range p.Segments {
		last := i == len(p.Segments)-1
		branch := "├─ "
		cont := "│  "
		if last {
			branch = "└─ "
			cont = "   "
		}
		switch s.Kind {
		case SegCopy:
			fmt.Fprintf(&sb, "%scopy %s packets [%d,%d) t in [%s,%s)\n",
				branch, s.Video, s.From, s.To, s.Times.Start, s.Times.End)
		case SegSmartCut:
			fmt.Fprintf(&sb, "%ssmartcut %s packets [%d,%d) t in [%s,%s) (re-encode %d-frame head)\n",
				branch, s.Video, s.From, s.To, s.Times.Start, s.Times.End, s.ReencodeHead)
		default:
			shard := ""
			if s.Shards > 1 {
				shard = fmt.Sprintf(" ×%d shards", s.Shards)
			}
			fmt.Fprintf(&sb, "%ssegment t in [%s,%s) (%d frames)%s\n",
				branch, s.Times.Start, s.Times.End, s.FrameCount(), shard)
			writeNode(&sb, s.Root, cont, true)
		}
	}
	for _, note := range p.Notes {
		fmt.Fprintf(&sb, "-- %s\n", note)
	}
	return sb.String()
}

func writeNode(sb *strings.Builder, n *Node, prefix string, last bool) {
	branch := "├─ "
	cont := "│  "
	if last {
		branch = "└─ "
		cont = "   "
	}
	mat := ""
	if n.Materialize {
		mat = " [materialize]"
	}
	if n.IsLeaf() {
		fmt.Fprintf(sb, "%s%sclip %s[%s]%s\n", prefix, branch, n.Clip.Video, n.Clip.Index, mat)
		return
	}
	fmt.Fprintf(sb, "%s%sfilter %s%s\n", prefix, branch, n.Expr, mat)
	for i, in := range n.Inputs {
		writeNode(sb, in, prefix+cont, i == len(n.Inputs)-1)
	}
}

// DOT renders the plan as a Graphviz digraph, mirroring the paper's plan
// diagrams (grey diamonds for stream-copy operators).
func (p *Plan) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph v2vplan {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n")
	sb.WriteString("  out [label=\"output\", shape=doubleoctagon];\n")
	sb.WriteString("  concat [label=\"concat\"];\n  concat -> out;\n")
	id := 0
	newID := func() string {
		id++
		return fmt.Sprintf("n%d", id)
	}
	var emit func(n *Node) string
	emit = func(n *Node) string {
		me := newID()
		if n.IsLeaf() {
			fmt.Fprintf(&sb, "  %s [label=\"clip %s[%s]\"];\n", me, n.Clip.Video, escape(n.Clip.Index.String()))
		} else {
			fmt.Fprintf(&sb, "  %s [label=\"filter %s\"];\n", me, escape(n.Expr.String()))
		}
		if n.Materialize {
			matID := newID()
			fmt.Fprintf(&sb, "  %s [label=\"enc/dec\", shape=ellipse, style=dashed];\n", matID)
			fmt.Fprintf(&sb, "  %s -> %s;\n", me, matID)
			for _, in := range n.Inputs {
				child := emit(in)
				fmt.Fprintf(&sb, "  %s -> %s;\n", child, me)
			}
			return matID
		}
		for _, in := range n.Inputs {
			child := emit(in)
			fmt.Fprintf(&sb, "  %s -> %s;\n", child, me)
		}
		return me
	}
	for _, s := range p.Segments {
		switch s.Kind {
		case SegCopy:
			me := newID()
			fmt.Fprintf(&sb, "  %s [label=\"copy %s [%d,%d)\", shape=diamond, style=filled, fillcolor=lightgrey];\n",
				me, s.Video, s.From, s.To)
			fmt.Fprintf(&sb, "  %s -> concat;\n", me)
		case SegSmartCut:
			me := newID()
			fmt.Fprintf(&sb, "  %s [label=\"smartcut %s [%d,%d)\", shape=diamond, style=filled, fillcolor=lightgrey];\n",
				me, s.Video, s.From, s.To)
			fmt.Fprintf(&sb, "  %s -> concat;\n", me)
		default:
			root := emit(s.Root)
			if s.Shards > 1 {
				sh := newID()
				fmt.Fprintf(&sb, "  %s [label=\"shard ×%d\", shape=parallelogram];\n", sh, s.Shards)
				fmt.Fprintf(&sb, "  %s -> %s;\n  %s -> concat;\n", root, sh, sh)
			} else {
				fmt.Fprintf(&sb, "  %s -> concat;\n", root)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func escape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
