package plan

import (
	"fmt"
	"path/filepath"
	"testing"

	"v2v/internal/check"
	"v2v/internal/dataset"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

// checkedWith builds a Checked over an explicit video binding set.
func checkedWith(t *testing.T, videos, body string) *check.Checked {
	t.Helper()
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { %s }
		data { bb: %q; }
		%s`, videos, fxAnn, body)
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := check.Check(s, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// segmentKey plans body over c and fingerprints its first segment.
func segmentKey(t *testing.T, c *check.Checked, conceal bool, shards int) (string, bool) {
	t.Helper()
	p, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) == 0 {
		t.Fatal("no segments")
	}
	return NewFingerprinter(c, conceal).Segment(p.Segments[0], shards)
}

// The key must witness content, not names: the same file bound under two
// different video names fingerprints identically, and two different files
// under the same name fingerprint differently.
func TestFingerprintContentNotNames(t *testing.T) {
	body := `render(t) = grade(v[t], 5, 1.0, 1.0);`
	a := checkedWith(t, fmt.Sprintf("v: %q;", fxVid), body)
	b := checkedWith(t, fmt.Sprintf("v: %q;", fxVid),
		`render(t) = grade(v[t], 5, 1.0, 1.0);`)
	renamed := checkedWith(t, fmt.Sprintf("cam: %q;", fxVid),
		`render(t) = grade(cam[t], 5, 1.0, 1.0);`)
	other := checkedWith(t, fmt.Sprintf("v: %q;", fxVid2), body)

	ka, ok := segmentKey(t, a, false, 1)
	if !ok {
		t.Fatal("segment not cacheable")
	}
	if kb, ok := segmentKey(t, b, false, 1); !ok || kb != ka {
		t.Errorf("identical spec keys differ: %s vs %s", ka, kb)
	}
	if kr, ok := segmentKey(t, renamed, false, 1); !ok || kr != ka {
		t.Errorf("renamed binding of the same file changed the key: %s vs %s", ka, kr)
	}
	if ko, ok := segmentKey(t, other, false, 1); !ok || ko == ka {
		t.Error("different source content produced the same key")
	}
}

// Everything that changes the output bytes must change the key: times,
// shard count, concealment mode, and the operator tree.
func TestFingerprintSensitivity(t *testing.T) {
	base := checked(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`)
	k0, ok := segmentKey(t, base, false, 1)
	if !ok {
		t.Fatal("segment not cacheable")
	}
	keys := map[string]string{"base": k0}
	put := func(name, k string) {
		t.Helper()
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("%s collides with %s", name, prev)
			}
		}
		keys[name] = k
	}

	if k, ok := segmentKey(t, base, false, 2); !ok {
		t.Error("sharded segment not cacheable")
	} else {
		put("shards=2", k)
	}
	if k, ok := segmentKey(t, base, true, 1); !ok {
		t.Error("conceal segment not cacheable")
	} else {
		put("conceal", k)
	}
	if k, ok := segmentKey(t, checked(t, `render(t) = grade(v[t], 6, 1.0, 1.0);`), false, 1); !ok {
		t.Error("param variant not cacheable")
	} else {
		put("param", k)
	}
	if k, ok := segmentKey(t, checked(t, `render(t) = grade(v[t + 1], 5, 1.0, 1.0);`), false, 1); !ok {
		t.Error("offset variant not cacheable")
	} else {
		put("offset", k)
	}
}

// A plan reading a data array must key on the array's materialized
// entries: regenerating the annotation file changes the key.
func TestFingerprintDataArrayContent(t *testing.T) {
	body := `render(t) = boxes(v[t], bb[t]);`
	c1 := checked(t, body)
	k1, ok := segmentKey(t, c1, false, 1)
	if !ok {
		t.Fatal("segment not cacheable")
	}

	// Regenerate the annotations with a different seed into a fresh file
	// and bind it under the same array name.
	dir := t.TempDir()
	vid := filepath.Join(dir, "c.vmf")
	ann := filepath.Join(dir, "c.boxes.json")
	p := dataset.TinyProfile()
	p.Seed = 77
	if _, err := dataset.Generate(vid, ann, p, rational.FromInt(4)); err != nil {
		t.Fatal(err)
	}
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; w: %q; }
		data { bb: %q; }
		%s`, fxVid, fxVid2, ann, body)
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := check.Check(s, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k2, ok := segmentKey(t, c2, false, 1)
	if !ok {
		t.Fatal("variant segment not cacheable")
	}
	if k1 == k2 {
		t.Error("different data array contents produced the same key")
	}
}

// Rewriting a source file in place must change its content identity and
// therefore every key over it — the stale-source guard at the plan layer.
func TestFingerprintRewrittenSourceChangesKey(t *testing.T) {
	dir := t.TempDir()
	vid := filepath.Join(dir, "mut.vmf")
	p := dataset.TinyProfile()
	if _, err := dataset.Generate(vid, "", p, rational.FromInt(4)); err != nil {
		t.Fatal(err)
	}
	body := `render(t) = grade(v[t], 5, 1.0, 1.0);`
	c1 := checkedWith(t, fmt.Sprintf("v: %q;", vid), body)
	k1, ok := segmentKey(t, c1, false, 1)
	if !ok {
		t.Fatal("segment not cacheable")
	}

	p.Seed = 99
	if _, err := dataset.Generate(vid, "", p, rational.FromInt(4)); err != nil {
		t.Fatal(err)
	}
	c2 := checkedWith(t, fmt.Sprintf("v: %q;", vid), body)
	k2, ok := segmentKey(t, c2, false, 1)
	if !ok {
		t.Fatal("rewritten segment not cacheable")
	}
	if k1 == k2 {
		t.Error("in-place rewrite kept the same key: stale results would be served")
	}
	if c1.Sources["v"].ContentID == c2.Sources["v"].ContentID {
		t.Error("content ID unchanged by in-place rewrite")
	}
}

// Copy and smart-cut segments are not memoizable (their output depends on
// writer state); a source with no content identity is conservatively
// uncacheable.
func TestFingerprintUncacheableForms(t *testing.T) {
	c := checked(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`)
	p, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFingerprinter(c, false)
	s := *p.Segments[0]
	s.Kind = SegCopy
	if _, ok := f.Segment(&s, 1); ok {
		t.Error("copy segment reported cacheable")
	}
	s.Kind = SegSmartCut
	if _, ok := f.Segment(&s, 1); ok {
		t.Error("smart-cut segment reported cacheable")
	}

	// Strip the source's content identity: the render segment must become
	// uncacheable rather than key on nothing.
	c2 := *c
	c2.Sources = map[string]check.Source{}
	for name, src := range c.Sources {
		src.ContentID = ""
		c2.Sources[name] = src
	}
	f2 := NewFingerprinter(&c2, false)
	if _, ok := f2.Segment(p.Segments[0], 1); ok {
		t.Error("segment without source content identity reported cacheable")
	}
}
