package plan

import (
	"fmt"

	"v2v/internal/vql"
)

// Cost is a static estimate of the physical work a segment (or whole plan)
// performs, in the units the optimizer reasons about: frames pushed through
// the decoder, frames pushed through the encoder, and packets/bytes moved
// by stream copies. It is computed from plan shape and source metadata
// alone — no data values — so it is available before execution and cheap
// enough to compute per request. The admission controller uses Units() as
// the request's weight; EXPLAIN prints it next to each segment so estimate
// vs. actual discrepancies are visible.
type Cost struct {
	// DecodeFrames counts frames decoded from sources or intermediate
	// materializations (smart-cut heads included).
	DecodeFrames int64 `json:"decode_frames"`
	// EncodeFrames counts frames pushed through an encoder, including
	// intermediate materialization encodes in unoptimized plans.
	EncodeFrames int64 `json:"encode_frames"`
	// CopyPackets and CopyBytes count stream-copied packets and their
	// estimated encoded size.
	CopyPackets int64 `json:"copy_packets"`
	CopyBytes   int64 `json:"copy_bytes"`
}

// Cost-unit weights. One unit is "one frame decoded". Encoding dominates
// decoding in the GV1 codec (quantize + entropy-code vs. dequantize), and
// stream copies move bytes without touching pixel data at all, so a copied
// megabyte is far cheaper than either.
const (
	unitsPerDecode  = 1.0
	unitsPerEncode  = 4.0
	unitsPerCopyMiB = 0.25
)

// Add returns the element-wise sum.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		DecodeFrames: c.DecodeFrames + o.DecodeFrames,
		EncodeFrames: c.EncodeFrames + o.EncodeFrames,
		CopyPackets:  c.CopyPackets + o.CopyPackets,
		CopyBytes:    c.CopyBytes + o.CopyBytes,
	}
}

// IsZero reports whether no cost has been estimated.
func (c Cost) IsZero() bool { return c == Cost{} }

// Units collapses the estimate to a single comparable scalar used as the
// admission weight. Always >= 0; a non-empty estimate yields > 0.
func (c Cost) Units() float64 {
	u := float64(c.DecodeFrames)*unitsPerDecode +
		float64(c.EncodeFrames)*unitsPerEncode +
		float64(c.CopyBytes)/(1<<20)*unitsPerCopyMiB
	if u == 0 && c.CopyPackets > 0 {
		// Degenerate source metadata (zero-sized frames) — copying still
		// isn't free.
		u = float64(c.CopyPackets) * 0.001
	}
	return u
}

// String renders the estimate as the annotation EXPLAIN appends.
func (c Cost) String() string {
	return fmt.Sprintf("dec=%d enc=%d copy=%d/%dB units=%.1f",
		c.DecodeFrames, c.EncodeFrames, c.CopyPackets, c.CopyBytes, c.Units())
}

// estCopiedBytesPerPacket estimates the encoded size of one copied packet
// of the named source. The container does not store per-file byte totals
// in check.Source, so this is a shape-based heuristic: pixel bytes (3 B/px)
// over a nominal 8:1 compression ratio. It only needs to be proportional —
// admission compares costs against each other and against a measured
// throughput expressed in the same units.
func estCopiedBytesPerPacket(p *Plan, video string) int64 {
	info := p.Checked.Output
	if src, ok := p.Checked.Sources[video]; ok {
		info = src.Info
	}
	px := int64(info.Width) * int64(info.Height)
	return px * 3 / 8
}

// countTaps returns the number of source taps per output frame of a frame
// segment's operator tree: clip leaves plus video references embedded in
// merged filter expressions.
func countTaps(root *Node) int64 {
	var taps int64
	var walkExpr func(e vql.Expr)
	walkExpr = func(e vql.Expr) {
		switch x := e.(type) {
		case vql.VideoRef:
			taps++
		case vql.Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case vql.BinOp:
			walkExpr(x.L)
			walkExpr(x.R)
		case vql.Not:
			walkExpr(x.E)
		case vql.Neg:
			walkExpr(x.E)
		}
	}
	root.Walk(func(n *Node) {
		if n.IsLeaf() {
			taps++
		} else if n.Expr != nil {
			walkExpr(n.Expr)
		}
	})
	return taps
}

// EstimateCost computes the segment's static cost estimate against the
// plan's source metadata. Kind-specific:
//
//   - copy: every packet in [From,To) moves without re-encoding.
//   - smartcut: the head re-decodes and re-encodes, the tail copies.
//   - render: each output frame decodes one source frame per tap and
//     encodes once into the output; every materialized operator boundary
//     adds one intermediate encode/decode pair per frame (the cost the
//     merge pass removes — estimating it here makes the pass's effect
//     visible in EXPLAIN cost deltas).
func (s *Segment) EstimateCost(p *Plan) Cost {
	var c Cost
	switch s.Kind {
	case SegCopy:
		c.CopyPackets = int64(s.To - s.From)
		c.CopyBytes = c.CopyPackets * estCopiedBytesPerPacket(p, s.Video)
	case SegSmartCut:
		head := int64(s.ReencodeHead)
		c.DecodeFrames = head
		c.EncodeFrames = head
		c.CopyPackets = int64(s.To-s.From) - head
		if c.CopyPackets < 0 {
			c.CopyPackets = 0
		}
		c.CopyBytes = c.CopyPackets * estCopiedBytesPerPacket(p, s.Video)
	default: // SegFrames
		frames := int64(s.FrameCount())
		if s.Root == nil {
			break
		}
		taps := countTaps(s.Root)
		boundaries := int64(0)
		s.Root.Walk(func(n *Node) {
			if n.Materialize {
				boundaries++
			}
		})
		c.DecodeFrames = frames * (taps + boundaries)
		c.EncodeFrames = frames * (1 + boundaries)
	}
	return c
}

// EstimateCosts (re)computes every segment's EstCost in place. Called by
// plan.Build and again by opt.Optimize — segment kinds change between the
// two, and the estimate must reflect the plan that will actually execute.
func EstimateCosts(p *Plan) {
	for _, s := range p.Segments {
		s.EstCost = s.EstimateCost(p)
	}
}

// EstimatedCost returns the plan-wide cost: the sum over segments.
func (p *Plan) EstimatedCost() Cost {
	var total Cost
	for _, s := range p.Segments {
		total = total.Add(s.EstCost)
	}
	return total
}
