// Package plan defines V2V's execution plans and builds the unoptimized
// logical plan from a checked spec.
//
// A plan is an ordered list of segments, one per contiguous stretch of
// output times rendered by the same expression; the implicit root operator
// concatenates the segments' packets into the output stream (Fig. 2 of the
// paper). Segments come in three kinds:
//
//   - frame segments execute an operator tree (Clip leaves feeding Filter
//     nodes). In the unoptimized plan every operator boundary materializes
//     its frames through an encode/decode pair — the cost the paper's
//     operator-merging optimization removes.
//   - copy segments stream-copy packets from a source without re-encoding.
//   - smart-cut segments re-encode only the frames before the first
//     keyframe of the cut range and copy the rest.
//
// The optimizer (package opt) rewrites plans between these forms; the
// executor (package exec) runs them.
package plan

import (
	"fmt"

	"v2v/internal/check"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

// SegKind discriminates segment execution strategies.
type SegKind uint8

const (
	// SegFrames renders each output time through an operator tree.
	SegFrames SegKind = iota
	// SegCopy stream-copies a keyframe-aligned packet range.
	SegCopy
	// SegSmartCut re-encodes up to the first keyframe, then copies.
	SegSmartCut
)

func (k SegKind) String() string {
	switch k {
	case SegFrames:
		return "render"
	case SegCopy:
		return "copy"
	case SegSmartCut:
		return "smartcut"
	default:
		return "?"
	}
}

// PortRef is a plan-local expression leaf referring to the frame produced
// by the node's i-th input. It implements vql.Expr so merged and layered
// filter expressions share the evaluator.
type PortRef struct{ Port int }

func (p PortRef) String() string { return fmt.Sprintf("$%d", p.Port) }

// EqualExpr reports structural equality with another expression.
func (p PortRef) EqualExpr(o vql.Expr) bool {
	q, ok := o.(PortRef)
	return ok && q.Port == p.Port
}

// Clip identifies a source read: frames of Video at time Index(t).
type Clip struct {
	Video string
	Index vql.Expr
}

// FusedStage is one point operation inside a fused kernel node, in
// application order. Op names the VQL transform (grade, crossfade, wipe,
// overlay); Args is the transform's full argument list with frame
// arguments replaced by PortRefs: the chain input (the result of the
// previous stage, or the node's Inputs[0] for the first stage) is
// PortRef{Port: ChainPort}, and secondary frames (a crossfade's second
// clip, an overlay image) are PortRefs into the node's Inputs.
type FusedStage struct {
	Op   string
	Args []vql.Expr
}

// ChainPort is the PortRef port number that marks a fused stage's chain
// input — the previous stage's output (or the node's Inputs[0] for the
// first stage). Real input ports are always >= 0.
const ChainPort = -1

// Node is one operator in a frame segment's tree. Exactly one of Clip,
// Expr, or Fused is set: leaves clip a source video; interior nodes
// evaluate Expr, whose PortRef leaves draw frames from Inputs; fused
// nodes apply the Fused point-op stages in one pass over Inputs[0]
// (secondary frames at ports >= 1).
type Node struct {
	Clip   *Clip
	Expr   vql.Expr
	Fused  []FusedStage
	Inputs []*Node
	// Materialize marks an unoptimized operator boundary: this node's
	// output frames pass through an intermediate encode/decode pair, as
	// when each operator is a separate FFmpeg invocation. The optimizer's
	// merge pass eliminates these.
	Materialize bool
}

// IsLeaf reports whether the node is a source clip.
func (n *Node) IsLeaf() bool { return n.Clip != nil }

// Segment is one contiguous output stretch.
type Segment struct {
	// Times are the output presentation times this segment renders.
	Times rational.Range
	Kind  SegKind
	// Root is the operator tree (SegFrames only).
	Root *Node
	// Video/From/To identify the copied packet range (SegCopy/SegSmartCut).
	Video    string
	From, To int
	// ReencodeHead is the number of leading frames a smart cut re-encodes
	// before reaching the first keyframe (0 for pure copies); set by the
	// optimizer for explain output and cost estimates.
	ReencodeHead int
	// Shards is the number of parallel shards executing this frame
	// segment (>= 1). The unoptimized plan always uses 1.
	Shards int
	// AlignVideo/AlignOff, when AlignVideo is non-empty, record that every
	// source tap of this frame segment reads AlignVideo at the affine
	// offset AlignOff (source time = t + AlignOff). The executor uses the
	// hint to snap shard chunk boundaries to source keyframes, so no shard
	// starts decoding mid-GOP. Set by the optimizer's shard pass.
	AlignVideo string
	AlignOff   rational.Rat
	// EstCost is the segment's static cost estimate, set by
	// plan.EstimateCosts (from Build and again after optimizer passes
	// change segment kinds). The admission controller weighs requests by
	// the plan-wide sum; EXPLAIN prints it per segment.
	EstCost Cost
}

// Plan is an executable synthesis plan.
type Plan struct {
	Checked  *check.Checked
	Segments []*Segment
	// Optimized records whether the optimizer processed this plan (for
	// explain output only; execution reads the segments).
	Optimized bool
	// Notes accumulates optimizer pass annotations for explain output.
	Notes []string
}

// Build constructs the unoptimized logical plan: match arms become frame
// segments in output order, each Call becomes its own materialized filter
// operator, and every video reference becomes a clip operator (§III-C's
// mapping from declarative definition to Concat/Clip/Filter).
func Build(c *check.Checked) (*Plan, error) {
	segs, err := splitSegments(c.Spec)
	if err != nil {
		return nil, err
	}
	p := &Plan{Checked: c}
	for _, s := range segs {
		root, err := buildTree(s.body)
		if err != nil {
			return nil, err
		}
		// The root operator's encode is the output encode performed by
		// the writer; only interior operator boundaries materialize.
		root.Materialize = false
		p.Segments = append(p.Segments, &Segment{
			Times: s.times, Kind: SegFrames, Root: root, Shards: 1,
		})
	}
	EstimateCosts(p)
	return p, nil
}

type rawSegment struct {
	times rational.Range
	body  vql.Expr
}

// splitSegments orders the spec's match arms along the output timeline,
// splitting at arm switches. Non-match renders yield a single segment.
func splitSegments(spec *vql.Spec) ([]rawSegment, error) {
	domain := spec.TimeDomain
	m, ok := spec.Render.(vql.Match)
	if !ok {
		return []rawSegment{{times: domain, body: spec.Render}}, nil
	}
	var out []rawSegment
	n := domain.Count()
	cur := -1
	start := 0
	flush := func(end int) {
		if cur < 0 || end <= start {
			return
		}
		sub := rational.NewRange(domain.At(start), domain.At(end-1).Add(domain.Step), domain.Step)
		out = append(out, rawSegment{times: sub, body: m.Arms[cur].Body})
	}
	for i := 0; i < n; i++ {
		at := domain.At(i)
		matched := -1
		for ai, arm := range m.Arms {
			if arm.Guard.Contains(at) {
				matched = ai
				break
			}
		}
		if matched == -1 {
			return nil, fmt.Errorf("plan: match does not cover t=%s", at)
		}
		if matched != cur {
			flush(i)
			cur, start = matched, i
		}
	}
	flush(n)
	return out, nil
}

// buildTree decomposes a frame expression into the layered operator tree.
func buildTree(e vql.Expr) (*Node, error) {
	switch n := e.(type) {
	case vql.VideoRef:
		return &Node{Clip: &Clip{Video: n.Name, Index: n.Index}, Materialize: true}, nil
	case vql.Call:
		tr, ok := vql.Lookup(n.Name)
		if !ok {
			return nil, fmt.Errorf("plan: unknown transform %q", n.Name)
		}
		if tr.Result != vql.TypeFrame {
			return nil, fmt.Errorf("plan: %s does not produce a frame", n.Name)
		}
		var inputs []*Node
		args := make([]vql.Expr, len(n.Args))
		for i, a := range n.Args {
			if isFrameExpr(a) {
				child, err := buildTree(a)
				if err != nil {
					return nil, err
				}
				args[i] = PortRef{Port: len(inputs)}
				inputs = append(inputs, child)
				continue
			}
			args[i] = a
		}
		return &Node{
			Expr:        vql.Call{Name: n.Name, Args: args},
			Inputs:      inputs,
			Materialize: true,
		}, nil
	default:
		return nil, fmt.Errorf("plan: expression %s does not produce a frame", e)
	}
}

// isFrameExpr reports whether e statically produces a frame.
func isFrameExpr(e vql.Expr) bool {
	switch n := e.(type) {
	case vql.VideoRef:
		return true
	case vql.Call:
		tr, ok := vql.Lookup(n.Name)
		return ok && tr.Result == vql.TypeFrame
	default:
		return false
	}
}

// Walk visits every node of a segment tree in preorder.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, in := range n.Inputs {
		in.Walk(visit)
	}
}

// CountOps returns the number of operator nodes in the tree.
func (n *Node) CountOps() int {
	count := 0
	n.Walk(func(*Node) { count++ })
	return count
}

// MergedExpr returns the single expression equivalent to the subtree, with
// PortRef leaves substituted by their input subexpressions. Clip leaves
// become plain video references — the "pull the clip into the filter"
// rewrite.
func (n *Node) MergedExpr() vql.Expr {
	if n.IsLeaf() {
		return vql.VideoRef{Name: n.Clip.Video, Index: n.Clip.Index}
	}
	if n.Fused != nil {
		// Rebuild the original nested calls: fold each stage over the
		// chain, substituting ChainPort with the accumulated expression
		// and real ports with their input subtrees.
		cur := n.Inputs[0].MergedExpr()
		for _, st := range n.Fused {
			args := make([]vql.Expr, len(st.Args))
			for i, a := range st.Args {
				if p, ok := a.(PortRef); ok {
					if p.Port == ChainPort {
						args[i] = cur
					} else {
						args[i] = n.Inputs[p.Port].MergedExpr()
					}
					continue
				}
				args[i] = substitutePorts(a, n.Inputs)
			}
			cur = vql.Call{Name: st.Op, Args: args}
		}
		return cur
	}
	return substitutePorts(n.Expr, n.Inputs)
}

func substitutePorts(e vql.Expr, inputs []*Node) vql.Expr {
	switch x := e.(type) {
	case PortRef:
		return inputs[x.Port].MergedExpr()
	case vql.Call:
		args := make([]vql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substitutePorts(a, inputs)
		}
		return vql.Call{Name: x.Name, Args: args}
	case vql.BinOp:
		return vql.BinOp{Op: x.Op, L: substitutePorts(x.L, inputs), R: substitutePorts(x.R, inputs)}
	case vql.Not:
		return vql.Not{E: substitutePorts(x.E, inputs)}
	case vql.Neg:
		return vql.Neg{E: substitutePorts(x.E, inputs)}
	default:
		return e
	}
}

// PlainClip reports whether the segment's tree is exactly one clip leaf
// whose index is affine (t + c) — the shape eligible for stream copying.
func (s *Segment) PlainClip() (video string, offset rational.Rat, ok bool) {
	if s.Kind != SegFrames || s.Root == nil || !s.Root.IsLeaf() {
		return "", rational.Rat{}, false
	}
	off, affine := check.AffineOffset(s.Root.Clip.Index)
	if !affine {
		return "", rational.Rat{}, false
	}
	return s.Root.Clip.Video, off, true
}

// FrameCount returns the number of output frames the segment renders.
func (s *Segment) FrameCount() int { return s.Times.Count() }

// SoleSource reports whether every source tap in the segment's operator
// tree reads the same video at the same affine offset (index = t + c) —
// the "filtered single-source render" shape whose shard boundaries can be
// aligned to source keyframes. At least one tap must exist.
func (s *Segment) SoleSource() (video string, off rational.Rat, ok bool) {
	if s.Kind != SegFrames || s.Root == nil {
		return "", rational.Rat{}, false
	}
	taps := 0
	consistent := true
	add := func(v string, idx vql.Expr) {
		o, affine := check.AffineOffset(idx)
		if !affine {
			consistent = false
			return
		}
		if taps == 0 {
			video, off = v, o
		} else if v != video || !o.Equal(off) {
			consistent = false
		}
		taps++
	}
	var walkExpr func(e vql.Expr)
	walkExpr = func(e vql.Expr) {
		switch x := e.(type) {
		case vql.VideoRef:
			add(x.Name, x.Index)
		case vql.Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case vql.BinOp:
			walkExpr(x.L)
			walkExpr(x.R)
		case vql.Not:
			walkExpr(x.E)
		case vql.Neg:
			walkExpr(x.E)
		}
	}
	s.Root.Walk(func(n *Node) {
		switch {
		case n.IsLeaf():
			add(n.Clip.Video, n.Clip.Index)
		case n.Fused != nil:
			for _, st := range n.Fused {
				for _, a := range st.Args {
					walkExpr(a)
				}
			}
		case n.Expr != nil:
			walkExpr(n.Expr)
		}
	})
	if !consistent || taps == 0 {
		return "", rational.Rat{}, false
	}
	return video, off, true
}
