package plan

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"v2v/internal/check"
	"v2v/internal/dataset"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

var (
	fxVid  string
	fxVid2 string
	fxAnn  string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "v2v-plan-")
	if err != nil {
		panic(err)
	}
	p := dataset.TinyProfile()
	fxVid = filepath.Join(dir, "a.vmf")
	fxVid2 = filepath.Join(dir, "b.vmf")
	fxAnn = filepath.Join(dir, "a.boxes.json")
	if _, err := dataset.Generate(fxVid, fxAnn, p, rational.FromInt(4)); err != nil {
		panic(err)
	}
	p.Seed = 31
	if _, err := dataset.Generate(fxVid2, "", p, rational.FromInt(4)); err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func checked(t *testing.T, body string) *check.Checked {
	t.Helper()
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; w: %q; }
		data { bb: %q; }
		%s`, fxVid, fxVid2, fxAnn, body)
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := check.Check(s, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildSimpleClip(t *testing.T) {
	p, err := Build(checked(t, `render(t) = v[t + 1];`))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 1 {
		t.Fatalf("segments = %d", len(p.Segments))
	}
	s := p.Segments[0]
	if s.Kind != SegFrames || !s.Root.IsLeaf() {
		t.Fatalf("segment = %+v", s)
	}
	if s.FrameCount() != 48 {
		t.Errorf("frames = %d", s.FrameCount())
	}
	video, off, ok := s.PlainClip()
	if !ok || video != "v" || !off.Equal(rational.One) {
		t.Errorf("PlainClip = %s %s %v", video, off, ok)
	}
}

func TestBuildLayeredFilters(t *testing.T) {
	// blur(zoom(v[t], 2), 1.5): two filter layers over one clip, every
	// boundary materialized in the unoptimized plan.
	p, err := Build(checked(t, `render(t) = blur(zoom(v[t], 2), 1.5);`))
	if err != nil {
		t.Fatal(err)
	}
	root := p.Segments[0].Root
	if root.IsLeaf() {
		t.Fatal("root should be a filter")
	}
	if got := root.CountOps(); got != 3 {
		t.Errorf("ops = %d, want 3 (blur, zoom, clip)", got)
	}
	mats := 0
	root.Walk(func(n *Node) {
		if n.Materialize {
			mats++
		}
	})
	if mats != 2 {
		t.Errorf("materialized boundaries = %d, want 2 (zoom, clip; the root's encode is the output encode)", mats)
	}
	if root.Materialize {
		t.Error("root must not materialize")
	}
	// The blur node's frame arg is a port onto the zoom node.
	call := root.Expr.(vql.Call)
	if call.Name != "blur" {
		t.Errorf("root = %s", root.Expr)
	}
	if _, ok := call.Args[0].(PortRef); !ok {
		t.Errorf("blur arg 0 = %T", call.Args[0])
	}
	if len(root.Inputs) != 1 || root.Inputs[0].Expr.(vql.Call).Name != "zoom" {
		t.Fatalf("inputs wrong")
	}
	if !root.Inputs[0].Inputs[0].IsLeaf() {
		t.Error("zoom input should be a clip leaf")
	}
}

func TestBuildGridFanIn(t *testing.T) {
	p, err := Build(checked(t, `render(t) = grid(v[t], w[t], v[t + 1], w[t + 1]);`))
	if err != nil {
		t.Fatal(err)
	}
	root := p.Segments[0].Root
	if len(root.Inputs) != 4 {
		t.Fatalf("grid inputs = %d", len(root.Inputs))
	}
	for i, in := range root.Inputs {
		if !in.IsLeaf() {
			t.Errorf("input %d not a clip", i)
		}
	}
	// Merged expression reconstructs the original.
	want, _ := vql.ParseExpr("grid(v[t], w[t], v[t + 1], w[t + 1])")
	if !root.MergedExpr().EqualExpr(want) {
		t.Errorf("merged = %s", root.MergedExpr())
	}
}

func TestBuildMatchSegments(t *testing.T) {
	p, err := Build(checked(t, `render(t) = match t {
		t in range(0, 1, 1/24) => v[t],
		t in range(1, 2, 1/24) => w[t - 1],
	};`))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 2 {
		t.Fatalf("segments = %d", len(p.Segments))
	}
	if !p.Segments[0].Times.Start.Equal(rational.Zero) || !p.Segments[1].Times.Start.Equal(rational.One) {
		t.Error("segment times wrong")
	}
	if v, _, _ := p.Segments[0].PlainClip(); v != "v" {
		t.Error("first segment should clip v")
	}
	if v, _, _ := p.Segments[1].PlainClip(); v != "w" {
		t.Error("second segment should clip w")
	}
}

func TestBuildInterleavedArms(t *testing.T) {
	// Arms alternate: A B A — three segments even though two arms.
	p, err := Build(checked(t, `render(t) = match t {
		t in range(0, 1/2, 1/24) => v[t],
		t in range(1/2, 1, 1/24) => w[t],
		t in range(1, 2, 1/24) => v[t],
	};`))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 3 {
		t.Fatalf("segments = %d", len(p.Segments))
	}
}

func TestBuildDataArgsStayInline(t *testing.T) {
	p, err := Build(checked(t, `render(t) = boxes(v[t], bb[t]);`))
	if err != nil {
		t.Fatal(err)
	}
	root := p.Segments[0].Root
	call := root.Expr.(vql.Call)
	if _, ok := call.Args[1].(vql.DataRef); !ok {
		t.Errorf("data arg should stay inline, got %T", call.Args[1])
	}
	if len(root.Inputs) != 1 {
		t.Errorf("inputs = %d", len(root.Inputs))
	}
}

func TestExplainOutput(t *testing.T) {
	p, err := Build(checked(t, `render(t) = match t {
		t in range(0, 1, 1/24) => v[t],
		t in range(1, 2, 1/24) => blur(w[t - 1], 1.5),
	};`))
	if err != nil {
		t.Fatal(err)
	}
	text := p.Explain()
	for _, want := range []string{"unoptimized", "concat (2 segments)", "clip v[t]", "filter blur", "[materialize]"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q:\n%s", want, text)
		}
	}
	dot := p.DOT()
	for _, want := range []string{"digraph", "concat", "clip v[t]", "enc/dec"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
}

func TestPortRefEquality(t *testing.T) {
	if !(PortRef{1}).EqualExpr(PortRef{1}) || (PortRef{1}).EqualExpr(PortRef{2}) {
		t.Error("PortRef equality wrong")
	}
	if (PortRef{0}).String() != "$0" {
		t.Error("PortRef string wrong")
	}
}

func TestPlainClipNegativeCases(t *testing.T) {
	// Non-affine index: not a plain clip.
	p, err := Build(checked(t, `render(t) = v[2 - 1/24 - t];`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := p.Segments[0].PlainClip(); ok {
		t.Error("reverse index should not be a plain clip")
	}
	// Filter: not a plain clip.
	p2, _ := Build(checked(t, `render(t) = blur(v[t], 1);`))
	if _, _, ok := p2.Segments[0].PlainClip(); ok {
		t.Error("filter should not be a plain clip")
	}
}
