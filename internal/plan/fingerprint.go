package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"

	"v2v/internal/check"
	"v2v/internal/data"
	"v2v/internal/vql"
)

// Fingerprinter derives canonical, collision-resistant cache keys for the
// synthesized output of render segments — the identity the cross-request
// result cache stores encoded packets under.
//
// A key covers everything that determines the segment's output bytes:
//
//   - the output stream format (codec, dimensions, fps, quality, GOP,
//     level — different formats encode different bytes);
//   - the segment's output times (start, end, step);
//   - the effective shard count and the keyframe-alignment hint, both of
//     which move forced keyframes and therefore change packet bytes;
//   - the concealment mode (it changes output on damaged sources);
//   - the operator tree, canonically serialized with every video name
//     replaced by the source file's *content identity* and every data
//     array replaced by a hash of its materialized entries.
//
// Substituting content for names is what makes the key correct and
// reusable: two specs binding different names to the same file produce
// the same key, while rewriting a file in place (same path, new content)
// produces a different one — stale entries are keyed out, never served.
//
// Fingerprinting is conservative: a segment whose identity cannot be
// pinned down (non-render kinds, unknown expression forms, missing
// content IDs) is reported not cacheable rather than risking a collision.
type Fingerprinter struct {
	sources map[string]string // video name -> container content ID
	arrays  map[string]string // data array name -> entries hash
	output  []byte            // canonical output format serialization
	conceal bool
}

// NewFingerprinter builds a fingerprinter for segments of plans over c.
// conceal must match the executor's concealment mode.
func NewFingerprinter(c *check.Checked, conceal bool) *Fingerprinter {
	f := &Fingerprinter{
		sources: make(map[string]string, len(c.Sources)),
		arrays:  make(map[string]string, len(c.Arrays)),
		conceal: conceal,
	}
	for name, src := range c.Sources {
		if src.ContentID != "" {
			f.sources[name] = src.ContentID
		}
	}
	for name, arr := range c.Arrays {
		f.arrays[name] = hashArray(arr)
	}
	// StreamInfo marshals with a fixed field order, so the JSON form is a
	// stable canonical serialization of the output format.
	f.output, _ = json.Marshal(c.Output)
	return f
}

// hashArray hashes a data array's materialized entries, so a key over a
// sql- or file-declared array reflects the data actually read.
func hashArray(arr *data.Array) string {
	h := sha256.New()
	for _, e := range arr.Entries() {
		fmt.Fprintf(h, "%s=", e.T)
		v := e.V
		switch v.Kind {
		case data.KindBool:
			fmt.Fprintf(h, "b%t;", v.Bool)
		case data.KindNum:
			fmt.Fprintf(h, "n%b;", v.Num) // %b on float64 is exact (mantissa p exponent)
		case data.KindStr:
			fmt.Fprintf(h, "s%q;", v.Str)
		case data.KindBoxes:
			io.WriteString(h, "x[")
			for _, b := range v.Boxes {
				fmt.Fprintf(h, "%d,%d,%d,%d,%q,%d;", b.X, b.Y, b.W, b.H, b.Class, b.Track)
			}
			io.WriteString(h, "];")
		default:
			io.WriteString(h, "_;")
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Segment returns the result-cache key for s when executed with the given
// effective shard count, or ok=false when the segment is not cacheable
// (only rendered segments are — copies and smart cuts never re-encode
// enough to be worth memoizing, and their output depends on writer state).
func (f *Fingerprinter) Segment(s *Segment, shards int) (key string, ok bool) {
	if s.Kind != SegFrames || s.Root == nil {
		return "", false
	}
	h := sha256.New()
	io.WriteString(h, "v2v-result-v1\n")
	h.Write(f.output)
	fmt.Fprintf(h, "\nconceal=%t shards=%d times=%s,%s,%s\n",
		f.conceal, shards, s.Times.Start, s.Times.End, s.Times.Step)
	if s.AlignVideo != "" {
		id, found := f.sources[s.AlignVideo]
		if !found {
			return "", false
		}
		fmt.Fprintf(h, "align=%s+%s\n", id, s.AlignOff)
	}
	if !f.writeNode(h, s.Root) {
		return "", false
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

func (f *Fingerprinter) writeNode(h hash.Hash, n *Node) bool {
	if n.IsLeaf() {
		id, found := f.sources[n.Clip.Video]
		if !found {
			return false
		}
		fmt.Fprintf(h, "clip(%s,", id)
		if !f.writeExpr(h, n.Clip.Index) {
			return false
		}
		io.WriteString(h, ")")
		return true
	}
	if n.Fused != nil {
		// Fused kernel nodes serialize each stage as a call; the chain
		// marker PortRef{ChainPort} prints as "$-1", which cannot collide
		// with a real port. Inputs follow as usual, so a fused chain and
		// the equivalent merged expression hash differently — they are
		// different physical plans with identical pixels.
		fmt.Fprintf(h, "fused(mat=%t", n.Materialize)
		for _, st := range n.Fused {
			fmt.Fprintf(h, ",%s(", st.Op)
			for i, a := range st.Args {
				if i > 0 {
					io.WriteString(h, ",")
				}
				if !f.writeExpr(h, a) {
					return false
				}
			}
			io.WriteString(h, ")")
		}
		for _, in := range n.Inputs {
			io.WriteString(h, ";")
			if !f.writeNode(h, in) {
				return false
			}
		}
		io.WriteString(h, ")")
		return true
	}
	if n.Expr == nil {
		return false
	}
	fmt.Fprintf(h, "op(mat=%t,", n.Materialize)
	if !f.writeExpr(h, n.Expr) {
		return false
	}
	for _, in := range n.Inputs {
		io.WriteString(h, ";")
		if !f.writeNode(h, in) {
			return false
		}
	}
	io.WriteString(h, ")")
	return true
}

// writeExpr serializes an expression canonically. Every production emits
// an unambiguous framed form, and unknown expression types make the whole
// segment uncacheable — forward compatibility errs toward re-rendering.
func (f *Fingerprinter) writeExpr(h hash.Hash, e vql.Expr) bool {
	switch x := e.(type) {
	case vql.TimeVar:
		io.WriteString(h, "t")
	case vql.NumLit:
		fmt.Fprintf(h, "#%s", x.V)
	case vql.StrLit:
		fmt.Fprintf(h, "%q", x.V)
	case vql.BoolLit:
		fmt.Fprintf(h, "%t", x.V)
	case vql.NullLit:
		io.WriteString(h, "null")
	case vql.Neg:
		io.WriteString(h, "neg(")
		if !f.writeExpr(h, x.E) {
			return false
		}
		io.WriteString(h, ")")
	case vql.Not:
		io.WriteString(h, "not(")
		if !f.writeExpr(h, x.E) {
			return false
		}
		io.WriteString(h, ")")
	case vql.BinOp:
		fmt.Fprintf(h, "bin%d(", x.Op)
		if !f.writeExpr(h, x.L) {
			return false
		}
		io.WriteString(h, ",")
		if !f.writeExpr(h, x.R) {
			return false
		}
		io.WriteString(h, ")")
	case vql.VideoRef:
		id, found := f.sources[x.Name]
		if !found {
			return false
		}
		fmt.Fprintf(h, "vid(%s)[", id)
		if !f.writeExpr(h, x.Index) {
			return false
		}
		io.WriteString(h, "]")
	case vql.DataRef:
		id, found := f.arrays[x.Name]
		if !found {
			return false
		}
		fmt.Fprintf(h, "data(%s)[", id)
		if !f.writeExpr(h, x.Index) {
			return false
		}
		io.WriteString(h, "]")
	case vql.Call:
		fmt.Fprintf(h, "call:%s(", x.Name)
		for i, a := range x.Args {
			if i > 0 {
				io.WriteString(h, ",")
			}
			if !f.writeExpr(h, a) {
				return false
			}
		}
		io.WriteString(h, ")")
	case PortRef:
		fmt.Fprintf(h, "$%d", x.Port)
	default:
		return false
	}
	return true
}
