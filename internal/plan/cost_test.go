package plan

import (
	"strings"
	"testing"
)

func TestEstimateCostBareClip(t *testing.T) {
	p, err := Build(checked(t, `render(t) = v[t];`))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Segments[0]
	if s.EstCost.IsZero() {
		t.Fatal("Build did not estimate costs")
	}
	frames := int64(s.FrameCount())
	// One clip leaf, no interior operators: one decode per frame plus the
	// output encode, nothing copied.
	if s.EstCost.DecodeFrames != frames {
		t.Errorf("DecodeFrames = %d, want %d", s.EstCost.DecodeFrames, frames)
	}
	if s.EstCost.EncodeFrames != frames {
		t.Errorf("EncodeFrames = %d, want %d", s.EstCost.EncodeFrames, frames)
	}
	if s.EstCost.CopyPackets != 0 || s.EstCost.CopyBytes != 0 {
		t.Errorf("copy cost = %d/%dB, want zero", s.EstCost.CopyPackets, s.EstCost.CopyBytes)
	}
	if s.EstCost.Units() <= 0 {
		t.Errorf("Units = %v, want > 0", s.EstCost.Units())
	}
}

func TestEstimateCostMaterializedBoundaries(t *testing.T) {
	// sharpen(overlay(v, w)) builds a 3-level tree with materialized
	// interior boundaries; each boundary adds an encode/decode pair per
	// frame.
	p, err := Build(checked(t, `render(t) = sharpen(overlay(v[t], w[t], 0, 0, 1));`))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Segments[0]
	frames := int64(s.FrameCount())
	boundaries := int64(0)
	s.Root.Walk(func(n *Node) {
		if n.Materialize {
			boundaries++
		}
	})
	if boundaries == 0 {
		t.Fatal("expected materialized interior boundaries in the unoptimized tree")
	}
	taps := countTaps(s.Root)
	if taps != 2 {
		t.Fatalf("taps = %d, want 2", taps)
	}
	wantDec := frames * (taps + boundaries)
	wantEnc := frames * (1 + boundaries)
	if s.EstCost.DecodeFrames != wantDec || s.EstCost.EncodeFrames != wantEnc {
		t.Errorf("cost = dec %d enc %d, want dec %d enc %d",
			s.EstCost.DecodeFrames, s.EstCost.EncodeFrames, wantDec, wantEnc)
	}
}

func TestEstimateCostCopyAndSmartCut(t *testing.T) {
	p, err := Build(checked(t, `render(t) = v[t];`))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Segments[0]

	s.Kind = SegCopy
	s.Video, s.From, s.To = "v", 0, 48
	s.Root = nil
	EstimateCosts(p)
	if s.EstCost.CopyPackets != 48 {
		t.Errorf("copy CopyPackets = %d, want 48", s.EstCost.CopyPackets)
	}
	if s.EstCost.CopyBytes <= 0 {
		t.Errorf("copy CopyBytes = %d, want > 0", s.EstCost.CopyBytes)
	}
	if s.EstCost.DecodeFrames != 0 || s.EstCost.EncodeFrames != 0 {
		t.Errorf("copy decode/encode = %d/%d, want 0/0", s.EstCost.DecodeFrames, s.EstCost.EncodeFrames)
	}
	copyUnits := s.EstCost.Units()

	s.Kind = SegSmartCut
	s.ReencodeHead = 5
	EstimateCosts(p)
	if s.EstCost.DecodeFrames != 5 || s.EstCost.EncodeFrames != 5 {
		t.Errorf("smartcut head = dec %d enc %d, want 5/5", s.EstCost.DecodeFrames, s.EstCost.EncodeFrames)
	}
	if s.EstCost.CopyPackets != 43 {
		t.Errorf("smartcut CopyPackets = %d, want 43", s.EstCost.CopyPackets)
	}
	if s.EstCost.Units() <= copyUnits {
		t.Errorf("smartcut units %v should exceed pure-copy units %v", s.EstCost.Units(), copyUnits)
	}
}

func TestCostUnitsOrdering(t *testing.T) {
	// Encoding a frame must cost more than decoding one, and copying a
	// packet must be cheapest — the ordering the admission weight relies on.
	dec := Cost{DecodeFrames: 100}
	enc := Cost{EncodeFrames: 100}
	cp := Cost{CopyPackets: 100, CopyBytes: 100 * 1 << 10}
	if !(enc.Units() > dec.Units() && dec.Units() > cp.Units()) {
		t.Errorf("ordering violated: enc=%v dec=%v copy=%v", enc.Units(), dec.Units(), cp.Units())
	}
	if cp.Units() <= 0 {
		t.Errorf("copy units = %v, want > 0", cp.Units())
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{DecodeFrames: 1, EncodeFrames: 2, CopyPackets: 3, CopyBytes: 4}
	b := Cost{DecodeFrames: 10, EncodeFrames: 20, CopyPackets: 30, CopyBytes: 40}
	got := a.Add(b)
	want := Cost{DecodeFrames: 11, EncodeFrames: 22, CopyPackets: 33, CopyBytes: 44}
	if got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
}

func TestExplainShowsEstimate(t *testing.T) {
	p, err := Build(checked(t, `render(t) = v[t];`))
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	if !strings.Contains(out, "estimated cost:") {
		t.Errorf("Explain missing plan-level estimate:\n%s", out)
	}
	if !strings.Contains(out, "[est: dec=") {
		t.Errorf("Explain missing per-segment estimate:\n%s", out)
	}
}
