package data

import (
	"path/filepath"
	"testing"

	"v2v/internal/raster"
	"v2v/internal/rational"
)

func rat(n, d int64) rational.Rat { return rational.New(n, d) }

func TestValueTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null(), false},
		{BoolVal(true), true},
		{BoolVal(false), false},
		{NumVal(0), false},
		{NumVal(-1), true},
		{StrVal(""), false},
		{StrVal("x"), true},
		{BoxesVal(nil), false},
		{BoxesVal([]raster.Box{{W: 1, H: 1}}), true},
	}
	for _, c := range cases {
		if got := c.v.Truthy(); got != c.want {
			t.Errorf("Truthy(%v) = %v", c.v, got)
		}
	}
}

func TestValueEqual(t *testing.T) {
	b1 := BoxesVal([]raster.Box{{X: 1, Y: 2, W: 3, H: 4, Class: "Z", Track: 1}})
	b2 := BoxesVal([]raster.Box{{X: 1, Y: 2, W: 3, H: 4, Class: "Z", Track: 1}})
	b3 := BoxesVal([]raster.Box{{X: 9, Y: 2, W: 3, H: 4, Class: "Z", Track: 1}})
	if !b1.Equal(b2) || b1.Equal(b3) {
		t.Error("box equality wrong")
	}
	if NumVal(1).Equal(BoolVal(true)) {
		t.Error("cross-kind equality should be false")
	}
	if !Null().Equal(Null()) {
		t.Error("null equals null")
	}
	if !NumVal(2.5).Equal(NumVal(2.5)) || NumVal(1).Equal(NumVal(2)) {
		t.Error("num equality wrong")
	}
	if !StrVal("a").Equal(StrVal("a")) || StrVal("a").Equal(StrVal("b")) {
		t.Error("str equality wrong")
	}
	if b1.Equal(BoxesVal(nil)) {
		t.Error("different lengths should differ")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindNull: "null", KindBool: "bool", KindNum: "num", KindStr: "str", KindBoxes: "boxes"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestNewArraySortsAndRejectsDuplicates(t *testing.T) {
	a, err := NewArray([]Entry{
		{T: rat(2, 1), V: NumVal(2)},
		{T: rat(0, 1), V: NumVal(0)},
		{T: rat(1, 1), V: NumVal(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	es := a.Entries()
	for i := 0; i < 3; i++ {
		if !es[i].T.Equal(rational.FromInt(int64(i))) {
			t.Errorf("entry %d time = %v", i, es[i].T)
		}
	}
	if _, err := NewArray([]Entry{{T: rat(1, 2)}, {T: rat(2, 4)}}); err == nil {
		t.Error("duplicate rational timestamps should be rejected")
	}
}

func TestArrayAt(t *testing.T) {
	a, _ := NewArray([]Entry{
		{T: rat(0, 1), V: NumVal(10)},
		{T: rat(1, 30), V: NumVal(11)},
		{T: rat(2, 30), V: NumVal(12)},
	})
	if v, ok := a.At(rat(1, 30)); !ok || v.Num != 11 {
		t.Errorf("At(1/30) = %v,%v", v, ok)
	}
	if _, ok := a.At(rat(1, 60)); ok {
		t.Error("missing time should not be found")
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestCoversRange(t *testing.T) {
	var entries []Entry
	r := rational.NewRange(rational.Zero, rational.One, rat(1, 10))
	for i := 0; i < r.Count(); i++ {
		entries = append(entries, Entry{T: r.At(i), V: NumVal(float64(i))})
	}
	a, _ := NewArray(entries)
	if !a.CoversRange(r) {
		t.Error("should cover its own range")
	}
	wider := rational.NewRange(rational.Zero, rational.FromInt(2), rat(1, 10))
	if a.CoversRange(wider) {
		t.Error("should not cover a wider range")
	}
	finer := rational.NewRange(rational.Zero, rational.One, rat(1, 20))
	if a.CoversRange(finer) {
		t.Error("should not cover a finer range")
	}
}

func TestAllInAndAllFalsyIn(t *testing.T) {
	a, _ := NewArray([]Entry{
		{T: rat(0, 1), V: BoxesVal(nil)},
		{T: rat(1, 1), V: BoxesVal(nil)},
		{T: rat(2, 1), V: BoxesVal([]raster.Box{{W: 5, H: 5}})},
		{T: rat(3, 1), V: BoxesVal(nil)},
	})
	got := a.AllIn(rational.Interval{Lo: rat(1, 1), Hi: rat(3, 1)})
	if len(got) != 2 || !got[0].T.Equal(rational.One) {
		t.Errorf("AllIn = %v", got)
	}
	if !a.AllFalsyIn(rational.Interval{Lo: rat(0, 1), Hi: rat(2, 1)}) {
		t.Error("[0,2) should be all falsy")
	}
	if a.AllFalsyIn(rational.Interval{Lo: rat(0, 1), Hi: rat(3, 1)}) {
		t.Error("[0,3) contains boxes")
	}
	if !a.AllFalsyIn(rational.Interval{Lo: rat(10, 1), Hi: rat(20, 1)}) {
		t.Error("empty window is vacuously falsy")
	}
}

func TestSpan(t *testing.T) {
	a, _ := NewArray([]Entry{{T: rat(1, 1)}, {T: rat(5, 1)}})
	sp := a.Span()
	if !sp.Lo.Equal(rational.One) || !sp.Hi.Equal(rational.FromInt(5)) {
		t.Errorf("Span = %v", sp)
	}
	empty, _ := NewArray(nil)
	if !empty.Span().Empty() {
		t.Error("empty array span should be empty")
	}
}

func TestParseJSONAllKinds(t *testing.T) {
	raw := []byte(`[
		{"t": [0,1], "value": null},
		{"t": [1,30], "value": true},
		{"t": [2,30], "value": 3.5},
		{"t": [3,30], "value": "zebra"},
		{"t": [4,30], "value": [{"x":10,"y":20,"w":30,"h":40,"class":"ZEBRA","track":7}]}
	]`)
	a, err := ParseJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 5 {
		t.Fatalf("Len = %d", a.Len())
	}
	if v, _ := a.At(rat(0, 1)); v.Kind != KindNull {
		t.Errorf("null entry = %v", v)
	}
	if v, _ := a.At(rat(1, 30)); v.Kind != KindBool || !v.Bool {
		t.Errorf("bool entry = %v", v)
	}
	if v, _ := a.At(rat(2, 30)); v.Kind != KindNum || v.Num != 3.5 {
		t.Errorf("num entry = %v", v)
	}
	if v, _ := a.At(rat(3, 30)); v.Kind != KindStr || v.Str != "zebra" {
		t.Errorf("str entry = %v", v)
	}
	v, _ := a.At(rat(4, 30))
	if v.Kind != KindBoxes || len(v.Boxes) != 1 {
		t.Fatalf("boxes entry = %v", v)
	}
	b := v.Boxes[0]
	if b.X != 10 || b.Y != 20 || b.W != 30 || b.H != 40 || b.Class != "ZEBRA" || b.Track != 7 {
		t.Errorf("box = %+v", b)
	}
}

func TestParseJSONErrors(t *testing.T) {
	for name, raw := range map[string]string{
		"not json":  "nope",
		"bad value": `[{"t":[0,1],"value":{"x":1}}]`,
		"bad boxes": `[{"t":[0,1],"value":[{"x":"no"}]}]`,
		"dup times": `[{"t":[0,1],"value":1},{"t":[0,1],"value":2}]`,
	} {
		if _, err := ParseJSON([]byte(raw)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a, _ := NewArray([]Entry{
		{T: rat(0, 1), V: Null()},
		{T: rat(1, 3), V: BoolVal(false)},
		{T: rat(2, 3), V: NumVal(-2.25)},
		{T: rat(1, 1), V: StrVal("hi")},
		{T: rat(4, 3), V: BoxesVal([]raster.Box{{X: 1, Y: 2, W: 3, H: 4, Class: "C", Track: 9}, {X: 5, Y: 6, W: 7, H: 8}})},
	})
	path := filepath.Join(t.TempDir(), "ann.json")
	if err := a.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != a.Len() {
		t.Fatalf("Len = %d", got.Len())
	}
	for i, e := range a.Entries() {
		ge := got.Entries()[i]
		if !ge.T.Equal(e.T) || !ge.V.Equal(e.V) {
			t.Errorf("entry %d: %v %v vs %v %v", i, ge.T, ge.V, e.T, e.V)
		}
	}
}

func TestLoadJSONMissingFile(t *testing.T) {
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestValueString(t *testing.T) {
	if Null().String() != "null" || BoolVal(true).String() != "true" ||
		NumVal(2).String() != "2" || StrVal("a").String() != `"a"` ||
		BoxesVal([]raster.Box{{}}).String() != "boxes(1)" {
		t.Error("value strings wrong")
	}
}
