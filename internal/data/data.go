// Package data implements V2V data arrays: time-indexed relational values
// that specs join with video frames ("data_arrays" in the paper's §IV-B).
//
// A data array maps rational timestamps to scalar values — booleans,
// numbers, strings, or object-box lists. Arrays are loaded from JSON
// annotation files or materialized from SQL queries (package sqlmini), and
// the data-dependent rewriter queries them during its data-only pass.
package data

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"v2v/internal/raster"
	"v2v/internal/rational"
)

// Kind enumerates the value types a data array can hold.
type Kind uint8

const (
	// KindNull is the absent value.
	KindNull Kind = iota
	// KindBool is a boolean.
	KindBool
	// KindNum is a double-precision number.
	KindNum
	// KindStr is a string.
	KindStr
	// KindBoxes is a list of object bounding boxes.
	KindBoxes
)

// String returns the kind's name as used in error messages and the DSL.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindNum:
		return "num"
	case KindStr:
		return "str"
	case KindBoxes:
		return "boxes"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is one dynamically typed datum.
type Value struct {
	Kind  Kind
	Bool  bool
	Num   float64
	Str   string
	Boxes []raster.Box
}

// Convenience constructors.
func Null() Value            { return Value{} }
func BoolVal(b bool) Value   { return Value{Kind: KindBool, Bool: b} }
func NumVal(n float64) Value { return Value{Kind: KindNum, Num: n} }
func StrVal(s string) Value  { return Value{Kind: KindStr, Str: s} }
func BoxesVal(b []raster.Box) Value {
	return Value{Kind: KindBoxes, Boxes: b}
}

// Truthy reports the boolean interpretation of the value: false/0/""/empty
// boxes/null are false.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindBool:
		return v.Bool
	case KindNum:
		return v.Num != 0
	case KindStr:
		return v.Str != ""
	case KindBoxes:
		return len(v.Boxes) > 0
	default:
		return false
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindBool:
		return v.Bool == o.Bool
	case KindNum:
		return v.Num == o.Num
	case KindStr:
		return v.Str == o.Str
	case KindBoxes:
		if len(v.Boxes) != len(o.Boxes) {
			return false
		}
		for i := range v.Boxes {
			if v.Boxes[i] != o.Boxes[i] {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindBool:
		return fmt.Sprintf("%t", v.Bool)
	case KindNum:
		return fmt.Sprintf("%g", v.Num)
	case KindStr:
		return fmt.Sprintf("%q", v.Str)
	case KindBoxes:
		return fmt.Sprintf("boxes(%d)", len(v.Boxes))
	default:
		return "null"
	}
}

// Entry is one (time, value) sample.
type Entry struct {
	T rational.Rat
	V Value
}

// Array is an immutable time-indexed array of values, sorted by time.
type Array struct {
	entries []Entry
}

// NewArray builds an array from entries, sorting them by time. Duplicate
// timestamps are rejected.
func NewArray(entries []Entry) (*Array, error) {
	es := make([]Entry, len(entries))
	copy(es, entries)
	sort.Slice(es, func(i, j int) bool { return es[i].T.Less(es[j].T) })
	for i := 1; i < len(es); i++ {
		if es[i].T.Equal(es[i-1].T) {
			return nil, fmt.Errorf("data: duplicate timestamp %v", es[i].T)
		}
	}
	return &Array{entries: es}, nil
}

// Len returns the number of samples.
func (a *Array) Len() int { return len(a.entries) }

// Entries returns the sorted samples (do not mutate).
func (a *Array) Entries() []Entry { return a.entries }

// At returns the value at exactly time t.
func (a *Array) At(t rational.Rat) (Value, bool) {
	i := sort.Search(len(a.entries), func(i int) bool { return !a.entries[i].T.Less(t) })
	if i < len(a.entries) && a.entries[i].T.Equal(t) {
		return a.entries[i].V, true
	}
	return Value{}, false
}

// Span returns the half-open interval covering all samples (each sample is
// treated as an instant, so Hi is the last timestamp plus nothing — use
// Domain for subset checks against video ranges).
func (a *Array) Span() rational.Interval {
	if len(a.entries) == 0 {
		return rational.Interval{}
	}
	return rational.Interval{Lo: a.entries[0].T, Hi: a.entries[len(a.entries)-1].T}
}

// CoversRange reports whether the array has a sample at every time of r.
// The checker uses this to validate data dependencies.
func (a *Array) CoversRange(r rational.Range) bool {
	for i, n := 0, r.Count(); i < n; i++ {
		if _, ok := a.At(r.At(i)); !ok {
			return false
		}
	}
	return true
}

// AllIn returns the entries with Lo <= t < Hi.
func (a *Array) AllIn(iv rational.Interval) []Entry {
	lo := sort.Search(len(a.entries), func(i int) bool { return !a.entries[i].T.Less(iv.Lo) })
	hi := sort.Search(len(a.entries), func(i int) bool { return !a.entries[i].T.Less(iv.Hi) })
	return a.entries[lo:hi]
}

// AllFalsyIn reports whether every sample in [Lo, Hi) is falsy (empty box
// lists, null, zero). The rewriter asks this per GOP to decide whether a
// data-driven filter is the identity across the whole group of pictures.
func (a *Array) AllFalsyIn(iv rational.Interval) bool {
	for _, e := range a.AllIn(iv) {
		if e.V.Truthy() {
			return false
		}
	}
	return true
}

// jsonEntry is the on-disk annotation format: {"t": [num,den], "value": X}
// where X is null, a bool, a number, a string, or a list of box objects.
type jsonEntry struct {
	T     rational.Rat    `json:"t"`
	Value json.RawMessage `json:"value"`
}

type jsonBox struct {
	X     int    `json:"x"`
	Y     int    `json:"y"`
	W     int    `json:"w"`
	H     int    `json:"h"`
	Class string `json:"class,omitempty"`
	Track int    `json:"track,omitempty"`
}

// LoadJSON reads a data array from an annotation file.
func LoadJSON(path string) (*Array, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	return ParseJSON(raw)
}

// ParseJSON parses the annotation JSON format.
func ParseJSON(raw []byte) (*Array, error) {
	var rows []jsonEntry
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("data: parse annotations: %w", err)
	}
	entries := make([]Entry, 0, len(rows))
	for i, row := range rows {
		v, err := parseValue(row.Value)
		if err != nil {
			return nil, fmt.Errorf("data: entry %d: %w", i, err)
		}
		entries = append(entries, Entry{T: row.T, V: v})
	}
	return NewArray(entries)
}

func parseValue(raw json.RawMessage) (Value, error) {
	s := strings.TrimSpace(string(raw))
	switch {
	case s == "" || s == "null":
		return Null(), nil
	case s == "true":
		return BoolVal(true), nil
	case s == "false":
		return BoolVal(false), nil
	case strings.HasPrefix(s, `"`):
		var str string
		if err := json.Unmarshal(raw, &str); err != nil {
			return Value{}, err
		}
		return StrVal(str), nil
	case strings.HasPrefix(s, "["):
		var boxes []jsonBox
		if err := json.Unmarshal(raw, &boxes); err != nil {
			return Value{}, fmt.Errorf("box list: %w", err)
		}
		out := make([]raster.Box, len(boxes))
		for i, b := range boxes {
			out[i] = raster.Box{X: b.X, Y: b.Y, W: b.W, H: b.H, Class: b.Class, Track: b.Track}
		}
		return BoxesVal(out), nil
	default:
		var n float64
		if err := json.Unmarshal(raw, &n); err != nil {
			return Value{}, fmt.Errorf("unsupported value %s", s)
		}
		return NumVal(n), nil
	}
}

// MarshalJSON writes the array in the annotation file format, so arrays can
// be generated programmatically (dataset generators) and saved.
func (a *Array) MarshalJSON() ([]byte, error) {
	rows := make([]jsonEntry, len(a.entries))
	for i, e := range a.entries {
		var raw []byte
		var err error
		switch e.V.Kind {
		case KindNull:
			raw = []byte("null")
		case KindBool:
			raw, err = json.Marshal(e.V.Bool)
		case KindNum:
			raw, err = json.Marshal(e.V.Num)
		case KindStr:
			raw, err = json.Marshal(e.V.Str)
		case KindBoxes:
			boxes := make([]jsonBox, len(e.V.Boxes))
			for j, b := range e.V.Boxes {
				boxes[j] = jsonBox{X: b.X, Y: b.Y, W: b.W, H: b.H, Class: b.Class, Track: b.Track}
			}
			raw, err = json.Marshal(boxes)
		}
		if err != nil {
			return nil, err
		}
		rows[i] = jsonEntry{T: e.T, Value: raw}
	}
	return json.Marshal(rows)
}

// SaveJSON writes the array to an annotation file.
func (a *Array) SaveJSON(path string) error {
	raw, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("data: %w", err)
	}
	return nil
}
