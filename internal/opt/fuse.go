package opt

import (
	"v2v/internal/plan"
	"v2v/internal/vql"
)

// Kernel fusion (the raw-speed item in ROADMAP.md): chains of per-pixel
// point operations — grade, crossfade, wipe, overlay — normally cost one
// full pass over the YUV planes (and one frame allocation) per op. This
// pass, running after filter merging, rewrites each maximal chain of >= 2
// fusable ops into a single fused kernel node, which the executor applies
// in one row-wise pass (raster.ApplyFused) into a pooled destination.
// Single fusable ops stay as ordinary filter nodes: there is nothing to
// fuse and the plain path keeps plans and EXPLAIN output unchanged.
//
// The rewrite is purely physical: plan.Node.MergedExpr reconstructs the
// original expression from a fused node, and the executor's kernels are
// byte-identical to the standalone ops, so optimized output is unchanged.

// fusable names the VQL transforms with a per-pixel kernel form. Each
// takes its chain input (the frame being transformed) as argument 0;
// crossfade/wipe/overlay carry a secondary frame at argument 1.
var fusable = map[string]bool{
	"grade":     true,
	"crossfade": true,
	"wipe":      true,
	"overlay":   true,
}

// fusePass rewrites every frame segment's tree, fusing point-op chains.
// It returns the number of point ops folded into fused kernel nodes.
func fusePass(p *plan.Plan) int {
	fused := 0
	for _, s := range p.Segments {
		if s.Kind != plan.SegFrames || s.Root == nil || s.Root.IsLeaf() || s.Root.Expr == nil {
			continue
		}
		if !containsChain(s.Root.Expr) {
			continue
		}
		root, n := fuseNode(s.Root.Expr)
		root.Materialize = s.Root.Materialize
		s.Root = root
		fused += n
	}
	return fused
}

// fuseNode builds the plan node for a frame expression, fusing the
// maximal chain of fusable calls along its Args[0] spine when the chain
// has >= 2 ops. Returns the node and the number of ops fused in the whole
// subtree.
func fuseNode(e vql.Expr) (*plan.Node, int) {
	var chain []vql.Call // outermost first
	cur := e
	for {
		c, ok := cur.(vql.Call)
		if !ok || !fusable[c.Name] || len(c.Args) == 0 {
			break
		}
		chain = append(chain, c)
		cur = c.Args[0]
	}
	if len(chain) >= 2 {
		n := &plan.Node{}
		base, sub := fuseNode(cur)
		n.Inputs = []*plan.Node{base}
		count := len(chain) + sub
		// Stages apply innermost-first, so walk the spine bottom-up.
		for i := len(chain) - 1; i >= 0; i-- {
			c := chain[i]
			args := make([]vql.Expr, len(c.Args))
			args[0] = plan.PortRef{Port: plan.ChainPort}
			for j := 1; j < len(c.Args); j++ {
				a := c.Args[j]
				if isFrameExpr(a) {
					child, subn := fuseNode(a)
					count += subn
					args[j] = plan.PortRef{Port: len(n.Inputs)}
					n.Inputs = append(n.Inputs, child)
					continue
				}
				args[j] = a
			}
			n.Fused = append(n.Fused, plan.FusedStage{Op: c.Name, Args: args})
		}
		return n, count
	}
	if v, ok := e.(vql.VideoRef); ok {
		return &plan.Node{Clip: &plan.Clip{Video: v.Name, Index: v.Index}}, 0
	}
	// Not a chain head: keep the expression inline, but hoist any frame
	// argument whose subtree contains a fusable chain into its own input
	// node so the chain still fuses.
	node := &plan.Node{}
	count := 0
	if c, ok := e.(vql.Call); ok {
		args := make([]vql.Expr, len(c.Args))
		for i, a := range c.Args {
			if isFrameExpr(a) && containsChain(a) {
				child, subn := fuseNode(a)
				count += subn
				args[i] = plan.PortRef{Port: len(node.Inputs)}
				node.Inputs = append(node.Inputs, child)
				continue
			}
			args[i] = a
		}
		node.Expr = vql.Call{Name: c.Name, Args: args}
		return node, count
	}
	node.Expr = e
	return node, 0
}

// containsChain reports whether e contains a fusable chain of >= 2 ops
// anywhere in its subtree.
func containsChain(e vql.Expr) bool {
	c, ok := e.(vql.Call)
	if !ok {
		return false
	}
	if fusable[c.Name] && len(c.Args) > 0 {
		if inner, ok := c.Args[0].(vql.Call); ok && fusable[inner.Name] {
			return true
		}
	}
	for _, a := range c.Args {
		if containsChain(a) {
			return true
		}
	}
	return false
}

// isFrameExpr reports whether e statically produces a frame (mirrors
// plan.isFrameExpr).
func isFrameExpr(e vql.Expr) bool {
	switch n := e.(type) {
	case vql.VideoRef:
		return true
	case vql.Call:
		tr, ok := vql.Lookup(n.Name)
		return ok && tr.Result == vql.TypeFrame
	default:
		return false
	}
}
