// Package opt implements V2V's heuristic plan optimizer (§III-D): operator
// merging (clip pushdown into filters), stream copying, smart cuts, and
// temporal sharding for parallel execution. Like a relational optimizer it
// rewrites plans without consulting data values — data-aware improvements
// happen earlier, in the spec-level data-dependent rewriter.
package opt

import (
	"fmt"
	"runtime"

	"v2v/internal/container"
	"v2v/internal/obs"
	"v2v/internal/plan"
	"v2v/internal/rational"
)

// Options selects optimizer passes. The zero value disables everything;
// use Default() for the full optimizer.
type Options struct {
	// MergeSegments joins adjacent segments with identical render
	// expressions.
	MergeSegments bool
	// MergeFilters collapses each segment's layered operator tree into a
	// single filter, removing intermediate encode/decode pairs.
	MergeFilters bool
	// FuseKernels collapses chains of fusable per-pixel point ops (grade,
	// crossfade, wipe, overlay) into single fused kernel nodes executed in
	// one pass over the planes. Requires MergeFilters (fusion operates on
	// the merged expressions).
	FuseKernels bool
	// StreamCopy converts keyframe-aligned plain clips into packet copies
	// (passthrough plans only).
	StreamCopy bool
	// SmartCut converts unaligned plain clips into smart cuts
	// (passthrough plans only).
	SmartCut bool
	// Shard splits long render segments into parallel shards.
	Shard bool
	// Parallelism bounds shard fan-out; 0 means GOMAXPROCS.
	Parallelism int
	// Trace, when set, records one span per optimizer pass.
	Trace *obs.Trace
}

// Default returns the full optimizer configuration.
func Default() Options {
	return Options{
		MergeSegments: true,
		MergeFilters:  true,
		FuseKernels:   true,
		StreamCopy:    true,
		SmartCut:      true,
		Shard:         true,
	}
}

// Stats reports what each pass did.
type Stats struct {
	SegmentsMerged int
	FiltersMerged  int // operator boundaries (materializations) removed
	KernelsFused   int // point ops folded into fused kernel nodes
	Copies         int
	SmartCuts      int
	ShardedSegs    int
}

// Optimize rewrites p in place and returns pass statistics.
func Optimize(p *plan.Plan, o Options) (Stats, error) {
	var st Stats
	if o.MergeSegments {
		sp := o.Trace.StartSpan("opt.merge_segments")
		st.SegmentsMerged = mergeSegments(p)
		sp.SetAttr("merged", st.SegmentsMerged)
		sp.End()
	}
	if o.MergeFilters {
		sp := o.Trace.StartSpan("opt.merge_filters")
		st.FiltersMerged = mergeFilters(p)
		sp.SetAttr("boundaries_removed", st.FiltersMerged)
		sp.End()
	}
	if o.FuseKernels && o.MergeFilters {
		sp := o.Trace.StartSpan("opt.fuse_kernels")
		st.KernelsFused = fusePass(p)
		sp.SetAttr("ops_fused", st.KernelsFused)
		sp.End()
	}
	if (o.StreamCopy || o.SmartCut) && p.Checked.Passthrough {
		sp := o.Trace.StartSpan("opt.copy")
		n, err := copyPass(p, o)
		if err != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
			return st, err
		}
		st.Copies, st.SmartCuts = n.copies, n.smartcuts
		sp.SetAttr("copies", n.copies)
		sp.SetAttr("smart_cuts", n.smartcuts)
		sp.End()
	}
	if o.Shard {
		sp := o.Trace.StartSpan("opt.shard")
		st.ShardedSegs = shardPass(p, o.Parallelism)
		sp.SetAttr("sharded", st.ShardedSegs)
		sp.End()
	}
	p.Optimized = true
	// Segment kinds and operator boundaries changed above — re-estimate so
	// admission weights and EXPLAIN reflect the plan that executes.
	plan.EstimateCosts(p)
	p.Notes = append(p.Notes, fmt.Sprintf(
		"opt: merged %d segments, removed %d op boundaries, fused %d point ops, %d copies, %d smart cuts, %d sharded",
		st.SegmentsMerged, st.FiltersMerged, st.KernelsFused, st.Copies, st.SmartCuts, st.ShardedSegs))
	return st, nil
}

// mergeSegments joins adjacent frame segments whose render expressions are
// structurally identical (the arms the data-dependent rewriter could not
// merge because a different arm sat between them at spec level cannot
// merge here either; only truly adjacent equal segments join).
func mergeSegments(p *plan.Plan) int {
	if len(p.Segments) < 2 {
		return 0
	}
	merged := 0
	out := p.Segments[:1]
	for _, s := range p.Segments[1:] {
		last := out[len(out)-1]
		if last.Kind == plan.SegFrames && s.Kind == plan.SegFrames &&
			last.Times.Step.Equal(s.Times.Step) &&
			last.Times.End.Equal(s.Times.Start) &&
			last.Root.MergedExpr().EqualExpr(s.Root.MergedExpr()) {
			last.Times = rational.NewRange(last.Times.Start, s.Times.End, last.Times.Step)
			merged++
			continue
		}
		out = append(out, s)
	}
	p.Segments = out
	return merged
}

// mergeFilters collapses each segment's operator tree to a single node,
// eliminating intermediate materializations ("avoiding an unnecessary
// encode/decode pair" and pulling clips into filters).
func mergeFilters(p *plan.Plan) int {
	removed := 0
	for _, s := range p.Segments {
		if s.Kind != plan.SegFrames || s.Root == nil {
			continue
		}
		boundaries := 0
		s.Root.Walk(func(n *plan.Node) {
			if n.Materialize {
				boundaries++
			}
		})
		if s.Root.IsLeaf() {
			// A bare clip keeps its leaf; only the boundary flag drops.
			s.Root = &plan.Node{Clip: s.Root.Clip}
			removed += boundaries
			continue
		}
		merged := s.Root.MergedExpr()
		s.Root = &plan.Node{Expr: merged}
		removed += boundaries
	}
	return removed
}

type copyCounts struct{ copies, smartcuts int }

// copyPass converts plain-clip segments into packet copies or smart cuts.
// It opens each referenced container once to consult its keyframe index.
func copyPass(p *plan.Plan, o Options) (copyCounts, error) {
	var n copyCounts
	readers := map[string]*container.Reader{}
	defer func() {
		for _, r := range readers {
			r.Close()
		}
	}()
	reader := func(video string) (*container.Reader, error) {
		if r, ok := readers[video]; ok {
			return r, nil
		}
		src, ok := p.Checked.Sources[video]
		if !ok {
			return nil, fmt.Errorf("opt: unknown video %q", video)
		}
		r, err := container.Open(src.Path)
		if err != nil {
			return nil, err
		}
		readers[video] = r
		return r, nil
	}

	for _, s := range p.Segments {
		video, off, ok := s.PlainClip()
		if !ok || s.Times.Count() == 0 {
			continue
		}
		r, err := reader(video)
		if err != nil {
			return n, err
		}
		info := r.Info()
		srcStart := s.Times.Start.Add(off)
		pts, exact := info.PTSOf(srcStart)
		if !exact {
			continue // should not happen post-check; stay safe
		}
		i0, found := r.IndexOfPTS(pts)
		if !found {
			continue
		}
		i1 := i0 + s.Times.Count()
		if i1 > r.NumPackets() {
			continue
		}
		if r.Record(i0).Key {
			if !o.StreamCopy {
				continue
			}
			s.Kind = plan.SegCopy
			s.ReencodeHead = 0
			n.copies++
		} else {
			if !o.SmartCut {
				continue
			}
			// A smart cut only pays off if some keyframe lies inside the
			// range; otherwise the whole range re-encodes anyway (the
			// paper's Q1-on-ToS case, where plans were identical).
			k, ok := r.NextKeyframeAfter(i0)
			if !ok || k >= i1 {
				continue
			}
			s.Kind = plan.SegSmartCut
			s.ReencodeHead = k - i0
			n.smartcuts++
		}
		s.Video = video
		s.From, s.To = i0, i1
		s.Root = nil
		s.Shards = 1
	}
	return n, nil
}

// shardPass splits render segments into parallel shards at output-GOP
// granularity.
func shardPass(p *plan.Plan, parallelism int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism == 1 {
		return 0
	}
	gop := p.Checked.Output.GOP
	if gop <= 0 {
		gop = 48
	}
	sharded := 0
	for _, s := range p.Segments {
		if s.Kind != plan.SegFrames {
			continue
		}
		frames := s.FrameCount()
		if frames < 2*gop {
			continue
		}
		shards := frames / gop
		if shards > parallelism {
			shards = parallelism
		}
		if shards > 1 {
			s.Shards = shards
			// A filtered single-source render can additionally align its
			// shard boundaries to the source's keyframe grid, so no shard
			// starts decoding mid-GOP (the executor consumes the hint).
			if video, off, ok := s.SoleSource(); ok {
				s.AlignVideo, s.AlignOff = video, off
			}
			sharded++
		}
	}
	return sharded
}
