package opt

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"v2v/internal/check"
	"v2v/internal/dataset"
	"v2v/internal/plan"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

var (
	fxVid    string // tiny profile: 24 fps, GOP 24 (1 s)
	fxSparse string // sparse keyframes: GOP 10 s (ToS-like)
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "v2v-opt-")
	if err != nil {
		panic(err)
	}
	p := dataset.TinyProfile()
	fxVid = filepath.Join(dir, "a.vmf")
	if _, err := dataset.Generate(fxVid, "", p, rational.FromInt(8)); err != nil {
		panic(err)
	}
	sparse := p
	sparse.GOPSeconds = rational.FromInt(10)
	fxSparse = filepath.Join(dir, "sparse.vmf")
	if _, err := dataset.Generate(fxSparse, "", sparse, rational.FromInt(8)); err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func buildPlan(t *testing.T, src string) *plan.Plan {
	t.Helper()
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := check.Check(s, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func specSrc(body string) string {
	return fmt.Sprintf(`
		timedomain range(0, 4, 1/24);
		videos { v: %q; s: %q; }
		%s`, fxVid, fxSparse, body)
}

func TestStreamCopyKeyAligned(t *testing.T) {
	// Clip starting at t=1 in v: source time 1 s = frame 24, a keyframe
	// (GOP 24). The whole segment becomes a pure copy.
	p := buildPlan(t, specSrc(`render(t) = v[t + 1];`))
	st, err := Optimize(p, Default())
	if err != nil {
		t.Fatal(err)
	}
	if st.Copies != 1 || st.SmartCuts != 0 {
		t.Fatalf("stats = %+v", st)
	}
	s := p.Segments[0]
	if s.Kind != plan.SegCopy || s.Video != "v" || s.From != 24 || s.To != 24+96 {
		t.Errorf("segment = %+v", s)
	}
	if !p.Optimized {
		t.Error("plan should be marked optimized")
	}
}

func TestSmartCutMidGOP(t *testing.T) {
	// Clip starting at t=1/24+1: source frame 25, mid-GOP. Keyframes every
	// 24 frames exist inside the range, so a smart cut applies.
	p := buildPlan(t, specSrc(`render(t) = v[t + 25/24];`))
	st, err := Optimize(p, Default())
	if err != nil {
		t.Fatal(err)
	}
	if st.SmartCuts != 1 || st.Copies != 0 {
		t.Fatalf("stats = %+v", st)
	}
	s := p.Segments[0]
	if s.Kind != plan.SegSmartCut || s.From != 25 {
		t.Errorf("segment = %+v", s)
	}
}

func TestNoKeyframesNoSmartCut(t *testing.T) {
	// The sparse video has keyframes every 10 s; an 4 s clip starting
	// mid-GOP contains none, so the plan stays a render segment — the
	// paper's Q1-on-ToS observation (plans identical).
	p := buildPlan(t, specSrc(`render(t) = s[t + 1/24];`))
	st, err := Optimize(p, Default())
	if err != nil {
		t.Fatal(err)
	}
	if st.Copies != 0 || st.SmartCuts != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if p.Segments[0].Kind != plan.SegFrames {
		t.Error("segment should remain a render")
	}
}

func TestMergeFiltersCollapsesTree(t *testing.T) {
	p := buildPlan(t, specSrc(`render(t) = blur(zoom(v[t], 2), 1.5);`))
	before := p.Segments[0].Root.CountOps()
	if before != 3 {
		t.Fatalf("ops before = %d", before)
	}
	st, err := Optimize(p, Options{MergeFilters: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.FiltersMerged != 2 {
		t.Errorf("boundaries removed = %d, want 2", st.FiltersMerged)
	}
	root := p.Segments[0].Root
	if root.CountOps() != 1 || root.Materialize {
		t.Errorf("root after merge: ops=%d mat=%v", root.CountOps(), root.Materialize)
	}
	want, _ := vql.ParseExpr("blur(zoom(v[t], 2), 1.5)")
	if !root.Expr.EqualExpr(want) {
		t.Errorf("merged expr = %s", root.Expr)
	}
}

func TestMergeSegments(t *testing.T) {
	// Two adjacent arms with the same body merge into one segment.
	p := buildPlan(t, specSrc(`render(t) = match t {
		t in range(0, 2, 1/24) => v[t],
		t in range(2, 4, 1/24) => v[t],
	};`))
	if len(p.Segments) != 2 {
		t.Fatalf("segments before = %d", len(p.Segments))
	}
	st, err := Optimize(p, Options{MergeSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsMerged != 1 || len(p.Segments) != 1 {
		t.Fatalf("merged = %d, segments = %d", st.SegmentsMerged, len(p.Segments))
	}
	s := p.Segments[0]
	if !s.Times.Start.Equal(rational.Zero) || !s.Times.End.Equal(rational.FromInt(4)) {
		t.Errorf("merged times = %v", s.Times)
	}
}

func TestMergeSegmentsRespectsDifferentBodies(t *testing.T) {
	p := buildPlan(t, specSrc(`render(t) = match t {
		t in range(0, 2, 1/24) => v[t],
		t in range(2, 4, 1/24) => s[t],
	};`))
	st, err := Optimize(p, Options{MergeSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsMerged != 0 || len(p.Segments) != 2 {
		t.Error("different bodies must not merge")
	}
}

func TestShardPass(t *testing.T) {
	// 4 s at 24 fps = 96 frames, GOP 24: up to 4 shards.
	p := buildPlan(t, specSrc(`render(t) = blur(v[t], 1);`))
	st, err := Optimize(p, Options{Shard: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardedSegs != 1 {
		t.Fatalf("sharded = %d", st.ShardedSegs)
	}
	if got := p.Segments[0].Shards; got != 4 {
		t.Errorf("shards = %d", got)
	}
	// Parallelism 1 disables sharding.
	p2 := buildPlan(t, specSrc(`render(t) = blur(v[t], 1);`))
	st2, _ := Optimize(p2, Options{Shard: true, Parallelism: 1})
	if st2.ShardedSegs != 0 || p2.Segments[0].Shards != 1 {
		t.Error("parallelism 1 should not shard")
	}
}

func TestShardSkipsShortSegments(t *testing.T) {
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; }
		render(t) = blur(v[t], 1);`, fxVid)
	p := buildPlan(t, src)
	st, _ := Optimize(p, Options{Shard: true, Parallelism: 8})
	if st.ShardedSegs != 0 {
		t.Error("1-GOP segment should not shard")
	}
}

func TestCopyRequiresPassthrough(t *testing.T) {
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; }
		output { width: 64; height: 36; fps: 24; }
		render(t) = v[t + 1];`, fxVid)
	p := buildPlan(t, src)
	st, err := Optimize(p, Default())
	if err != nil {
		t.Fatal(err)
	}
	if st.Copies != 0 || st.SmartCuts != 0 {
		t.Error("explicit output must disable copies")
	}
	if p.Segments[0].Kind != plan.SegFrames {
		t.Error("segment should render")
	}
}

func TestPassToggles(t *testing.T) {
	// StreamCopy off, SmartCut on: key-aligned clip stays a render.
	p := buildPlan(t, specSrc(`render(t) = v[t + 1];`))
	st, _ := Optimize(p, Options{SmartCut: true})
	if st.Copies != 0 || p.Segments[0].Kind != plan.SegFrames {
		t.Error("copy disabled should keep render")
	}
	// SmartCut off: mid-GOP clip stays a render.
	p2 := buildPlan(t, specSrc(`render(t) = v[t + 25/24];`))
	st2, _ := Optimize(p2, Options{StreamCopy: true})
	if st2.SmartCuts != 0 || p2.Segments[0].Kind != plan.SegFrames {
		t.Error("smartcut disabled should keep render")
	}
}

func TestOptimizeAnnotatesExplain(t *testing.T) {
	p := buildPlan(t, specSrc(`render(t) = v[t + 1];`))
	if _, err := Optimize(p, Default()); err != nil {
		t.Fatal(err)
	}
	if len(p.Notes) == 0 {
		t.Error("optimizer should annotate the plan")
	}
}

func TestSmartCutHeadAnnotation(t *testing.T) {
	// Clip starts 1 frame past keyframe 24: the head to re-encode is 23
	// frames (up to keyframe 48), and explain reports it.
	p := buildPlan(t, specSrc(`render(t) = v[t + 25/24];`))
	if _, err := Optimize(p, Default()); err != nil {
		t.Fatal(err)
	}
	s := p.Segments[0]
	if s.ReencodeHead != 23 {
		t.Errorf("ReencodeHead = %d, want 23", s.ReencodeHead)
	}
	text := p.Explain()
	if !strings.Contains(text, "re-encode 23-frame head") {
		t.Errorf("explain missing head annotation:\n%s", text)
	}
	// Copy segments carry zero head and render as grey diamonds in DOT.
	p2 := buildPlan(t, specSrc(`render(t) = v[t + 1];`))
	Optimize(p2, Default())
	if p2.Segments[0].ReencodeHead != 0 {
		t.Error("copy should have zero head")
	}
	dot := p2.DOT()
	if !strings.Contains(dot, "diamond") || !strings.Contains(dot, "lightgrey") {
		t.Errorf("DOT missing grey diamond for copy:\n%s", dot)
	}
}
