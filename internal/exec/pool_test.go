package exec

// Tests for the zero-allocation render loop: fused kernel execution must be
// pixel-identical to plain per-op evaluation, and the warm steady-state
// render path must not allocate per frame (the frame pool recycles every
// intermediate).

import (
	"testing"

	"v2v/internal/media"
	"v2v/internal/opt"
	"v2v/internal/plan"
)

// fusedChainBody is a 3-op fusable point-op chain over one source.
const fusedChainBody = `render(t) = grade(grade(grade(v[t], 10, 11/10, 1), -5, 9/10, 12/10), 3, 1, 13/10);`

func hasFusedNode(p *plan.Plan) bool {
	for _, s := range p.Segments {
		if s.Kind != plan.SegFrames || s.Root == nil {
			continue
		}
		found := false
		s.Root.Walk(func(n *plan.Node) {
			if n.Fused != nil {
				found = true
			}
		})
		if found {
			return true
		}
	}
	return false
}

// TestFusedSegmentRunnerMatchesPlain renders the same chain through a fused
// plan and a merged-but-unfused plan and requires byte-identical frames.
func TestFusedSegmentRunnerMatchesPlain(t *testing.T) {
	fusedPlan := buildPlan(t, fusedChainBody, true)
	if !hasFusedNode(fusedPlan) {
		t.Fatal("optimizer did not fuse the point-op chain")
	}
	plainOpts := opt.Default()
	plainOpts.FuseKernels = false
	plainPlan := buildPlan(t, fusedChainBody, false)
	if _, err := opt.Optimize(plainPlan, plainOpts); err != nil {
		t.Fatal(err)
	}
	if hasFusedNode(plainPlan) {
		t.Fatal("FuseKernels=false plan contains a fused node")
	}

	fs, ps := fusedPlan.Segments[0], plainPlan.Segments[0]
	fr := newSegmentRunner(fusedPlan, fs, false, nil, nil)
	pr := newSegmentRunner(plainPlan, ps, false, nil, nil)
	defer fr.close(&Metrics{})
	defer pr.close(&Metrics{})
	for i := 0; i < fs.FrameCount(); i++ {
		tm := fs.Times.At(i)
		ff, err := fr.renderAt(tm)
		if err != nil {
			t.Fatalf("fused render t=%s: %v", tm, err)
		}
		pf, err := pr.renderAt(tm)
		if err != nil {
			t.Fatalf("plain render t=%s: %v", tm, err)
		}
		if !ff.Equal(pf) {
			t.Fatalf("frame %d: fused output differs from plain output", i)
		}
		ff.Release()
		pf.Release()
	}
}

// TestFusedRenderWarmLoopAllocs drives the fused render loop with a warm
// GOP cache and requires a (near-)allocation-free steady state: source
// frames come from the cache, the fused destination from the frame pool,
// and the grade LUTs from the per-stage cache.
func TestFusedRenderWarmLoopAllocs(t *testing.T) {
	p := buildPlan(t, fusedChainBody, true)
	if !hasFusedNode(p) {
		t.Fatal("optimizer did not fuse the point-op chain")
	}
	s := p.Segments[0]
	cache := media.NewGOPCache(256 << 20)
	run := newSegmentRunner(p, s, false, cache, nil)
	defer run.close(&Metrics{})

	frames := s.FrameCount()
	renderOne := func(i int) {
		fr, err := run.renderAt(s.Times.At(i))
		if err != nil {
			t.Fatalf("render %d: %v", i, err)
		}
		fr.Release()
	}
	// Warm pass: fills the GOP cache, the frame pool buckets, and the
	// grade LUT caches.
	for i := 0; i < frames; i++ {
		renderOne(i)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		renderOne(i % frames)
		i++
	})
	// Measured 0 allocs/frame; < 1 tolerates sync.Pool entries dropped by
	// a mid-run GC. Anything higher means a pooled path regressed to
	// per-frame allocation.
	if allocs >= 1 {
		t.Errorf("warm fused render loop allocates %.2f allocs/frame, want < 1", allocs)
	}
}
