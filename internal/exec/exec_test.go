package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"v2v/internal/check"
	"v2v/internal/dataset"
	"v2v/internal/media"
	"v2v/internal/obs"
	"v2v/internal/opt"
	"v2v/internal/plan"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

var fxVid string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "v2v-exec-")
	if err != nil {
		panic(err)
	}
	fxVid = filepath.Join(dir, "a.vmf")
	if _, err := dataset.Generate(fxVid, "", dataset.TinyProfile(), rational.FromInt(4)); err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func buildPlan(t *testing.T, body string, optimize bool) *plan.Plan {
	t.Helper()
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; }
		%s`, fxVid, body)
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := check.Check(s, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if optimize {
		if _, err := opt.Optimize(p, opt.Default()); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestExecuteMetricsUnoptimizedFilterChain(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(zoom(v[t], 2), 10, 1.1, 1.0);`, false)
	out := filepath.Join(t.TempDir(), "o.vmf")
	m, err := Execute(context.Background(), p, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 48 output frames: 48 source decodes, 2 materialized boundaries
	// (clip, zoom) = 96 intermediate enc+dec, 48 output encodes.
	if m.Source.FramesDecoded != 48 {
		t.Errorf("source decodes = %d", m.Source.FramesDecoded)
	}
	if m.Intermediate.FramesEncoded != 96 || m.Intermediate.FramesDecoded != 96 {
		t.Errorf("intermediate = %+v", m.Intermediate)
	}
	if m.Output.FramesEncoded != 48 || m.Output.PacketsCopied != 0 {
		t.Errorf("output = %+v", m.Output)
	}
	if m.FramesRendered != 48 || m.Wall <= 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.TotalEncodes() != 96+48 || m.TotalDecodes() != 96+48 {
		t.Errorf("totals = %d enc %d dec", m.TotalEncodes(), m.TotalDecodes())
	}
}

func TestExecuteOptimizedSkipsIntermediates(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(zoom(v[t], 2), 10, 1.1, 1.0);`, true)
	out := filepath.Join(t.TempDir(), "o.vmf")
	m, err := Execute(context.Background(), p, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Intermediate.FramesEncoded != 0 || m.Intermediate.FramesDecoded != 0 {
		t.Errorf("optimized plan materialized: %+v", m.Intermediate)
	}
}

func TestExecuteEmptySegmentTolerated(t *testing.T) {
	p := buildPlan(t, `render(t) = v[t];`, false)
	// Inject an empty frame segment; execution should skip it.
	empty := &plan.Segment{
		Times: rational.NewRange(rational.FromInt(9), rational.FromInt(9), rational.New(1, 24)),
		Kind:  plan.SegFrames,
		Root:  p.Segments[0].Root,
	}
	p.Segments = append(p.Segments, empty)
	out := filepath.Join(t.TempDir(), "o.vmf")
	m, err := Execute(context.Background(), p, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.FramesRendered != 48 {
		t.Errorf("rendered = %d", m.FramesRendered)
	}
}

func TestExecuteUnknownVideoInPlan(t *testing.T) {
	p := buildPlan(t, `render(t) = v[t];`, false)
	p.Segments[0].Root = &plan.Node{Clip: &plan.Clip{Video: "ghost", Index: vql.TimeVar{}}}
	if _, err := Execute(context.Background(), p, filepath.Join(t.TempDir(), "o.vmf"), Options{}); err == nil {
		t.Error("unknown video should fail")
	}
	// Copy segment with unknown video.
	p2 := buildPlan(t, `render(t) = v[t];`, false)
	p2.Segments[0].Kind = plan.SegCopy
	p2.Segments[0].Video = "ghost"
	if _, err := Execute(context.Background(), p2, filepath.Join(t.TempDir(), "o2.vmf"), Options{}); err == nil {
		t.Error("unknown copy video should fail")
	}
}

func TestExecuteBadOutputPath(t *testing.T) {
	p := buildPlan(t, `render(t) = v[t];`, false)
	if _, err := Execute(context.Background(), p, "/nonexistent-dir/x.vmf", Options{}); err == nil {
		t.Error("bad output path should fail")
	}
}

func TestExecuteParallelismCap(t *testing.T) {
	p := buildPlan(t, `render(t) = blur(v[t], 1.0);`, true)
	p.Segments[0].Shards = 8
	out := filepath.Join(t.TempDir(), "o.vmf")
	m, err := Execute(context.Background(), p, out, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.FramesRendered != 48 {
		t.Errorf("rendered = %d", m.FramesRendered)
	}
	r, err := media.OpenReader(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumFrames() != 48 {
		t.Errorf("frames = %d", r.NumFrames())
	}
}

func TestExecuteShardKeyframeCadence(t *testing.T) {
	// Sharded output must still start every shard chunk at a keyframe so
	// the result is decodable; chunks are GOP-aligned.
	p := buildPlan(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`, true)
	p.Segments[0].Shards = 2
	out := filepath.Join(t.TempDir(), "o.vmf")
	if _, err := Execute(context.Background(), p, out, Options{}); err != nil {
		t.Fatal(err)
	}
	r, err := media.OpenReader(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Keyframes every 24 frames (tiny profile GOP).
	for i := 0; i < r.NumFrames(); i++ {
		wantKey := i%24 == 0
		if got := r.Container().Record(i).Key; got != wantKey {
			t.Fatalf("packet %d key = %v, want %v", i, got, wantKey)
		}
	}
	// Fully decodable.
	for i := 0; i < r.NumFrames(); i++ {
		if _, err := r.FrameAtIndex(i); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
	}
}

func TestCursorsReuseUnderInterleavedTaps(t *testing.T) {
	// grid over 4 offsets of the same video: with cursor pooling the
	// decode volume stays ~4 taps x 48 frames, not 4 x GOP re-decodes per
	// output frame.
	p := buildPlan(t, `render(t) = grid(v[t], v[t + 1/2], v[t + 1], v[t + 3/2]);`, true)
	out := filepath.Join(t.TempDir(), "o.vmf")
	m, err := Execute(context.Background(), p, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 taps each covering 48 frames; allow slack for initial keyframe
	// roll-forward on the 3 unaligned taps.
	if m.Source.FramesDecoded > 4*48+3*24 {
		t.Errorf("interleaved taps decoded %d frames; cursor pooling broken", m.Source.FramesDecoded)
	}
}

// registerPanicUDF registers a frame->frame transform that panics,
// skipping the registration if an earlier run of the same process (e.g.
// go test -count=N) already did it.
func registerPanicUDF(name string) {
	if _, ok := vql.Lookup(name); ok {
		return
	}
	vql.Register(&vql.Transform{
		Name:   name,
		Params: []vql.Type{vql.TypeFrame},
		Result: vql.TypeFrame,
		Eval: func([]vql.Val) (vql.Val, error) {
			panic("boom")
		},
	})
}

func TestRenderPanicBecomesError(t *testing.T) {
	// A panicking transform (registered here as a UDF) must fail the run
	// with an error, not crash the process.
	registerPanicUDF("testexec_panic")
	p := buildPlan(t, `render(t) = testexec_panic(v[t]);`, true)
	if _, err := Execute(context.Background(), p, filepath.Join(t.TempDir(), "o.vmf"), Options{}); err == nil {
		t.Fatal("panicking transform should surface as an error")
	}
	// Parallel shards too.
	p2 := buildPlan(t, `render(t) = testexec_panic(v[t]);`, true)
	p2.Segments[0].Shards = 2
	if _, err := Execute(context.Background(), p2, filepath.Join(t.TempDir(), "o2.vmf"), Options{}); err == nil {
		t.Fatal("panicking shard should surface as an error")
	}
}

func TestExecuteRecordsSegmentActualsAndShardSpans(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`, true)
	p.Segments[0].Shards = 2
	tr := obs.NewTrace("test")
	out := filepath.Join(t.TempDir(), "o.vmf")
	m, err := Execute(context.Background(), p, out, Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}

	// Per-segment actuals, index-aligned with the plan.
	if len(m.Segments) != len(p.Segments) {
		t.Fatalf("actuals = %d segments, plan has %d", len(m.Segments), len(p.Segments))
	}
	act := m.Segments[0]
	if act.Wall <= 0 {
		t.Errorf("actual wall = %v", act.Wall)
	}
	if act.FramesRendered != 48 || act.FramesEncoded != 48 {
		t.Errorf("actuals = %+v", act)
	}
	if act.Shards != 2 {
		t.Errorf("actual shards = %d", act.Shards)
	}
	if s := p.ExplainAnalyze(m.Segments); !strings.Contains(s, "actual:") ||
		!strings.Contains(s, "shards=2") {
		t.Errorf("ExplainAnalyze:\n%s", s)
	}

	// The trace holds the execute span, one segment span, and one span per
	// shard worker on its own thread row.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			TID  int64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	shardTIDs := map[int64]bool{}
	var haveExec, haveSeg bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Name == "execute":
			haveExec = true
		case strings.HasPrefix(e.Name, "segment[0]"):
			haveSeg = true
		case strings.HasPrefix(e.Name, "shard["):
			shardTIDs[e.TID] = true
		}
	}
	if !haveExec || !haveSeg {
		t.Errorf("missing execute/segment spans (exec=%v seg=%v)", haveExec, haveSeg)
	}
	if len(shardTIDs) != 2 {
		t.Errorf("shard spans on %d distinct tids, want 2", len(shardTIDs))
	}
}
