package exec

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"v2v/internal/check"
	"v2v/internal/media"
	"v2v/internal/opt"
	"v2v/internal/plan"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

// failAfterWriter accepts n Writes, then fails every subsequent one.
type failAfterWriter struct {
	mu sync.Mutex
	n  int
}

var errSinkFull = errors.New("sink full (injected)")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n <= 0 {
		return 0, errSinkFull
	}
	w.n--
	return len(p), nil
}

// A sink write error must not end the delivery loop while shard workers
// are still running: the workers fold their reader stats into the shared
// *Metrics on exit, and returning early races that fold against the
// caller's deferred cleanup. Run under -race; the drain makes it silent.
func TestFailingSinkDrainsShards(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`, false)
	p.Segments[0].Shards = 2
	// Enough budget for the stream header plus a couple of packets, so the
	// failure lands mid-delivery of the first chunk while the second shard
	// can still be in flight.
	sink, err := media.NewStreamWriter(&failAfterWriter{n: 8}, p.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ExecuteTo(context.Background(), p, sink, Options{Parallelism: 2})
	if !errors.Is(err, errSinkFull) {
		t.Fatalf("err = %v, want wrapped %v", err, errSinkFull)
	}
	if !strings.Contains(err.Error(), "deliver") {
		t.Errorf("err = %v, want a shard-delivery error", err)
	}
}

// Concurrent syntheses sharing one GOP cache must (a) be race-free,
// (b) collapse duplicate decode work via singleflight, and (c) produce
// byte-identical output to a cache-less run.
func TestConcurrentSynthesesShareGOPCache(t *testing.T) {
	const workers = 4
	body := `render(t) = grade(v[t], 5, 1.0, 1.0);`

	// Reference: one run with the cache off.
	ref := buildPlan(t, body, false)
	var refBuf strings.Builder
	refSink, err := media.NewStreamWriter(&nopWriter{&refBuf}, ref.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	refM, err := ExecuteTo(context.Background(), ref, refSink, Options{})
	if err != nil {
		t.Fatal(err)
	}

	cache := media.NewGOPCache(0)
	plans := make([]*plan.Plan, workers)
	sinks := make([]*media.StreamWriter, workers)
	bufs := make([]*strings.Builder, workers)
	for i := range plans {
		plans[i] = buildPlan(t, body, false)
		bufs[i] = &strings.Builder{}
		if sinks[i], err = media.NewStreamWriter(&nopWriter{bufs[i]}, plans[i].Checked.Output); err != nil {
			t.Fatal(err)
		}
	}
	decodes := make([]int64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := ExecuteTo(context.Background(), plans[i], sinks[i], Options{GOPCache: cache})
			if err != nil {
				errs[i] = err
				return
			}
			decodes[i] = m.Source.FramesDecoded
		}(i)
	}
	wg.Wait()

	var total int64
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if bufs[i].String() != refBuf.String() {
			t.Errorf("worker %d output differs from cache-off run", i)
		}
		total += decodes[i]
	}
	// Cache off, every worker decodes all 48 frames itself. Shared cache:
	// the two source GOPs are filled once each (48 decodes), everyone else
	// hits. Allow slack for scheduling, but demand at least a halving.
	off := refM.Source.FramesDecoded * workers
	if total*2 > off {
		t.Errorf("shared-cache decodes = %d, want < half of cache-off %d", total, off)
	}
	st := cache.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("cache saw no lookups")
	}
}

// alignChunkBounds must move interior shard boundaries to output indices
// whose source sample is a keyframe: with a +7/24s offset against a
// 24-frame source GOP, output index 17 maps to source keyframe 24.
func TestAlignChunkBoundsToSourceKeyframes(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(v[t + 7/24], 5, 1.0, 1.0);`, false)
	s := p.Segments[0]
	s.AlignVideo, s.AlignOff = "v", rational.New(7, 24)
	readers := newReaderCache(p, false, nil)
	defer readers.closeAll(&Metrics{})

	bounds := chunkBounds(48, 2, 24)
	if len(bounds) != 3 || bounds[0] != 0 || bounds[1] != 24 || bounds[2] != 48 {
		t.Fatalf("chunkBounds = %v", bounds)
	}
	aligned := alignChunkBounds(bounds, s, readers)
	if len(aligned) != 3 || aligned[1] != 17 {
		t.Errorf("aligned bounds = %v, want interior boundary 17", aligned)
	}

	// Without an alignment hint the bounds pass through untouched.
	s.AlignVideo = ""
	same := alignChunkBounds(bounds, s, readers)
	if same[1] != 24 {
		t.Errorf("unaligned bounds = %v, want untouched", same)
	}
}

// The optimizer's shard pass must attach the alignment hint for filtered
// single-source renders, and aligned shards must decode less: a boundary
// mid-source-GOP forces the second shard to decode from the previous
// keyframe up to its first frame.
func TestShardPassAlignmentReducesDecodes(t *testing.T) {
	build := func() *plan.Plan {
		t.Helper()
		src := `
			timedomain range(0, 2, 1/24);
			videos { v: ` + `"` + fxVid + `"` + `; }
			render(t) = grade(v[t + 7/24], 5, 1.0, 1.0);`
		spec, err := vql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		c, err := check.Check(spec, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := plan.Build(c)
		if err != nil {
			t.Fatal(err)
		}
		o := opt.Default()
		o.Parallelism = 2
		if _, err := opt.Optimize(p, o); err != nil {
			t.Fatal(err)
		}
		return p
	}

	p := build()
	s := p.Segments[0]
	if s.Shards != 2 {
		t.Fatalf("shards = %d, want 2", s.Shards)
	}
	if s.AlignVideo != "v" || !s.AlignOff.Equal(rational.New(7, 24)) {
		t.Fatalf("alignment hint = %q %v, want v +7/24", s.AlignVideo, s.AlignOff)
	}
	run := func(p *plan.Plan) int64 {
		t.Helper()
		var buf strings.Builder
		sink, err := media.NewStreamWriter(&nopWriter{&buf}, p.Checked.Output)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ExecuteTo(context.Background(), p, sink, Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		return m.Source.FramesDecoded
	}
	alignedDecodes := run(p)

	p2 := build()
	p2.Segments[0].AlignVideo = "" // strip the hint: boundary stays mid-GOP
	unalignedDecodes := run(p2)
	if alignedDecodes >= unalignedDecodes {
		t.Errorf("aligned decodes = %d, want fewer than unaligned %d",
			alignedDecodes, unalignedDecodes)
	}
}

// stampWriter records when each Write happened, padded so write spacing
// dwarfs clock noise.
type stampWriter struct {
	t0     time.Time
	d      time.Duration
	mu     sync.Mutex
	stamps []time.Duration
}

func (w *stampWriter) Write(p []byte) (int, error) {
	time.Sleep(w.d)
	w.mu.Lock()
	w.stamps = append(w.stamps, time.Since(w.t0))
	w.mu.Unlock()
	return len(p), nil
}

// FirstOutput must be stamped on the first delivered packet, not after a
// whole shard chunk: counting sink writes that completed before the stamp
// separates the two regardless of render speed. The first packet lands
// within a handful of writes (3 header writes + 2 per packet); a whole
// 24-frame chunk takes ~50.
func TestFirstOutputStampedPerPacketNotPerChunk(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`, false)
	p.Segments[0].Shards = 2
	w := &stampWriter{t0: time.Now(), d: 2 * time.Millisecond}
	sink, err := media.NewStreamWriter(w, p.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ExecuteTo(context.Background(), p, sink, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.FirstOutput <= 0 {
		t.Fatal("FirstOutput not stamped")
	}
	// FirstOutput is measured from ExecuteTo entry, our stamps from before
	// it — the skew only shrinks the count, never inflates it.
	writesBefore := 0
	for _, s := range w.stamps {
		if s <= m.FirstOutput {
			writesBefore++
		}
	}
	if total := len(w.stamps); writesBefore > 10 {
		t.Errorf("FirstOutput %v stamped after %d of %d sink writes, want within the first packet (<= 10)",
			m.FirstOutput, writesBefore, total)
	}
}
