package exec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"v2v/internal/check"
	"v2v/internal/media"
	"v2v/internal/opt"
	"v2v/internal/plan"
	"v2v/internal/vql"
)

// buildPlanSrc is buildPlan with a caller-supplied full spec body (the
// streaming tests need multi-segment match plans over longer timedomains).
func buildPlanSrc(t *testing.T, src string, optimize bool) *plan.Plan {
	t.Helper()
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := check.Check(s, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if optimize {
		if _, err := opt.Optimize(p, opt.Default()); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// spliceSpec is a 4-arm splice over the fixture video: a copyable head,
// two distinct render arms, and a copyable tail — the shape that
// exercises mixed unit kinds in one streaming plan.
func spliceSpec() string {
	return fmt.Sprintf(`
		timedomain range(0, 4, 1/24);
		videos { v: %q; }
		render(t) = match t {
			t in range(0, 1, 1/24) => v[t],
			t in range(1, 2, 1/24) => grade(v[t], 5, 1.0, 1.0),
			t in range(2, 3, 1/24) => blur(v[t - 2], 1.0),
			t in range(3, 4, 1/24) => v[t - 3],
		};`, fxVid)
}

func streamBytes(t *testing.T, p *plan.Plan, o Options) ([]byte, *Metrics) {
	t.Helper()
	var buf bytes.Buffer
	info := p.Checked.Output
	w, err := media.NewStreamWriter(&buf, info)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ExecuteTo(context.Background(), p, w, o)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), m
}

// TestStreamingByteIdentity asserts the tentpole's core invariant: a
// streaming run produces byte-identical output to a non-streaming run,
// across copy/render mixes, sharded segments, and warm result-cache
// splices.
func TestStreamingByteIdentity(t *testing.T) {
	cases := []struct {
		name     string
		optimize bool
		shards   int // applied to every SegFrames segment when > 1
	}{
		{"unoptimized", false, 0},
		{"optimized", true, 0},
		{"sharded", true, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := buildPlanSrc(t, spliceSpec(), tc.optimize)
			stream := buildPlanSrc(t, spliceSpec(), tc.optimize)
			if tc.shards > 1 {
				for _, s := range ref.Segments {
					if s.Kind == plan.SegFrames {
						s.Shards = tc.shards
					}
				}
				for _, s := range stream.Segments {
					if s.Kind == plan.SegFrames {
						s.Shards = tc.shards
					}
				}
			}
			want, _ := streamBytes(t, ref, Options{})
			got, m := streamBytes(t, stream, Options{Streaming: true})
			if !bytes.Equal(want, got) {
				t.Fatalf("streaming output differs: %d bytes vs %d", len(got), len(want))
			}
			if len(m.Segments) != len(stream.Segments) {
				t.Errorf("streaming actuals = %d segments, plan has %d", len(m.Segments), len(stream.Segments))
			}
		})
	}
}

// TestStreamingByteIdentityWarmCache splices warm result-cache hits in
// streaming mode and asserts the bytes match a non-streaming warm run.
func TestStreamingByteIdentityWarmCache(t *testing.T) {
	rc := media.NewResultCache(64 << 20)
	warm := func(streaming bool) []byte {
		p := buildPlanSrc(t, spliceSpec(), true)
		b, _ := streamBytes(t, p, Options{ResultCache: rc, Streaming: streaming})
		return b
	}
	warm(false) // cold fill
	want := warm(false)
	got := warm(true)
	if !bytes.Equal(want, got) {
		t.Fatalf("warm streaming output differs: %d bytes vs %d", len(got), len(want))
	}
	// The warm streaming run actually hit the cache.
	p := buildPlanSrc(t, spliceSpec(), true)
	_, m := streamBytes(t, p, Options{ResultCache: rc, Streaming: true})
	if m.ResultCacheHits == 0 {
		t.Error("warm streaming run recorded no result-cache hits")
	}
}

// TestStreamingPresentationOrder runs a multi-segment streaming plan and
// asserts OnSegmentDone fires in strict presentation order (header first)
// and that the decoded output frames are in order — under -race this also
// exercises the scheduler/delivery handoff for data races.
func TestStreamingPresentationOrder(t *testing.T) {
	p := buildPlanSrc(t, spliceSpec(), true)
	var buf bytes.Buffer
	w, err := media.NewStreamWriter(&buf, p.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	var doneOrder []int
	_, err = ExecuteTo(context.Background(), p, w, Options{
		Streaming:     true,
		OnSegmentDone: func(i int) { doneOrder = append(doneOrder, i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{-1}
	for i := range p.Segments {
		want = append(want, i)
	}
	if len(doneOrder) != len(want) {
		t.Fatalf("OnSegmentDone calls = %v, want %v", doneOrder, want)
	}
	for i := range want {
		if doneOrder[i] != want[i] {
			t.Fatalf("OnSegmentDone order = %v, want %v", doneOrder, want)
		}
	}
	// The stream decodes cleanly to the full frame count, in order.
	r, err := media.NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for {
		_, err := r.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
	}
	if frames != 96 {
		t.Fatalf("streamed frames = %d, want 96", frames)
	}
	if tr, ok := r.Trailer(); !ok || tr.Status != "ok" {
		t.Errorf("streaming run trailer = %+v,%v", tr, ok)
	}
}

// TestStreamingSlowConsumerDoesNotPinWorkers runs one streaming execution
// against a sink that takes ~10ms per packet and, concurrently, a fast
// run of the same plan. The fast run must finish long before the slow one
// — the slow consumer stalls only its own delivery goroutine, not the
// shared CPU pool.
func TestStreamingSlowConsumerDoesNotPinWorkers(t *testing.T) {
	slowPlan := buildPlanSrc(t, spliceSpec(), true)
	fastPlan := buildPlanSrc(t, spliceSpec(), true)

	type result struct {
		wall time.Duration
		err  error
	}
	slowCh := make(chan result, 1)
	go func() {
		var buf bytes.Buffer
		w, err := media.NewStreamWriter(&slowWriter{w: &buf, perWrite: 5 * time.Millisecond}, slowPlan.Checked.Output)
		if err != nil {
			slowCh <- result{0, err}
			return
		}
		start := time.Now()
		_, err = ExecuteTo(context.Background(), slowPlan, w, Options{Streaming: true, Parallelism: 2})
		slowCh <- result{time.Since(start), err}
	}()

	// Give the slow run a head start so its workers are live.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	var buf bytes.Buffer
	w, err := media.NewStreamWriter(&buf, fastPlan.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteTo(context.Background(), fastPlan, w, Options{Streaming: true, Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	fastWall := time.Since(start)

	slow := <-slowCh
	if slow.err != nil {
		t.Fatal(slow.err)
	}
	// 96 packets (plus header/trailer writes) at 5ms each ≥ ~480ms of
	// pure sink stall; the fast run shares the machine but not the stall.
	if fastWall > slow.wall/2 {
		t.Errorf("fast run took %v vs slow run %v; slow consumer appears to pin shared workers", fastWall, slow.wall)
	}
}

// slowWriter sleeps on every Write — a transport-level slow client.
type slowWriter struct {
	w        io.Writer
	perWrite time.Duration
}

func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.perWrite)
	return s.w.Write(p)
}

// TestStreamingErrorWritesTrailerAndDrains injects a panicking transform
// into a late segment: the streaming run must fail with that error (not
// the internal abort sentinel), drain every worker, and leave a typed
// error trailer a consumer can distinguish from truncation.
func TestStreamingErrorWritesTrailerAndDrains(t *testing.T) {
	registerPanicUDF("teststream_panic")
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; }
		render(t) = match t {
			t in range(0, 1, 1/24) => grade(v[t], 5, 1.0, 1.0),
			t in range(1, 2, 1/24) => teststream_panic(v[t]),
		};`, fxVid)
	p := buildPlanSrc(t, src, true)
	var buf bytes.Buffer
	w, err := media.NewStreamWriter(&buf, p.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ExecuteTo(context.Background(), p, w, Options{Streaming: true})
	if err == nil {
		t.Fatal("panicking segment should fail the streaming run")
	}
	if strings.Contains(err.Error(), "aborted after prior failure") {
		t.Fatalf("surfaced the internal abort sentinel: %v", err)
	}
	// The consumer sees a typed failure, not silent truncation.
	r, rerr := media.NewStreamReader(&buf)
	if rerr != nil {
		t.Fatal(rerr)
	}
	var last error
	for {
		if _, _, last = r.NextPacket(); last != nil {
			break
		}
	}
	if !errors.Is(last, media.ErrStreamFailed) {
		t.Fatalf("stream end = %v, want ErrStreamFailed", last)
	}
}

// TestWarmCacheFirstOutputFast is the regression test for the FirstOutput
// audit: a warm result-cache run against a slow sink must stamp
// FirstOutput on the first spliced packet, far below the full wall clock
// — not at segment end.
func TestWarmCacheFirstOutputFast(t *testing.T) {
	rc := media.NewResultCache(64 << 20)
	run := func(perWrite time.Duration) *Metrics {
		p := buildPlan(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`, true)
		var buf bytes.Buffer
		w, err := media.NewStreamWriter(&slowWriter{w: &buf, perWrite: perWrite}, p.Checked.Output)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ExecuteTo(context.Background(), p, w, Options{ResultCache: rc})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	run(0) // cold fill
	m := run(2 * time.Millisecond)
	if m.ResultCacheHits != 1 {
		t.Fatalf("warm run hits = %d", m.ResultCacheHits)
	}
	// 48 spliced packets at 2ms each ≈ 96ms wall; the first packet lands
	// within the first couple of writes.
	if m.FirstOutput > m.Wall/4 {
		t.Errorf("warm-path FirstOutput = %v vs wall %v; stamped too late", m.FirstOutput, m.Wall)
	}
}

// TestCopyFirstOutputFast is the copy-path analogue: a stream-copied
// segment against a slow sink stamps FirstOutput on its first packet.
func TestCopyFirstOutputFast(t *testing.T) {
	p := buildPlan(t, `render(t) = v[t];`, true)
	var buf bytes.Buffer
	w, err := media.NewStreamWriter(&slowWriter{w: &buf, perWrite: 2 * time.Millisecond}, p.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ExecuteTo(context.Background(), p, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Output.PacketsCopied == 0 {
		t.Fatalf("plan did not stream-copy: %+v", m.Output)
	}
	if m.FirstOutput > m.Wall/4 {
		t.Errorf("copy-path FirstOutput = %v vs wall %v; stamped too late", m.FirstOutput, m.Wall)
	}
}

// TestStreamingSingleSegmentStillFlushes asserts the OnSegmentDone hook
// fires for single-segment plans too (header then segment), which take
// the sequential path even with Streaming set.
func TestStreamingSingleSegmentStillFlushes(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`, true)
	var buf bytes.Buffer
	w, err := media.NewStreamWriter(&buf, p.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	var calls []int
	_, err = ExecuteTo(context.Background(), p, w, Options{
		Streaming:     true,
		OnSegmentDone: func(i int) { calls = append(calls, i) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != -1 || calls[1] != 0 {
		t.Fatalf("OnSegmentDone calls = %v, want [-1 0]", calls)
	}
}

// TestStreamingCancellation cancels mid-run and asserts the context error
// surfaces and all workers drain (no hang, no race).
func TestStreamingCancellation(t *testing.T) {
	p := buildPlanSrc(t, spliceSpec(), true)
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	w, err := media.NewStreamWriter(&buf, p.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	_, err = ExecuteTo(ctx, p, w, Options{
		Streaming: true,
		OnSegmentDone: func(int) {
			n++
			if n == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled streaming run = %v, want context.Canceled", err)
	}
}
