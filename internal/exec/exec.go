// Package exec is V2V's execution engine: it runs a plan against the
// sources and writes the output stream, parallelizing sharded segments
// with a worker pool and collecting work metrics.
//
// The engine is deliberately plan-driven and policy-free: whether an
// operator boundary materializes, whether a segment copies packets or
// renders frames, and how many shards run in parallel are all decisions
// already baked into the plan by the optimizer. Executing an unoptimized
// plan therefore faithfully pays the costs the optimizer would have
// removed.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"v2v/internal/codec"
	"v2v/internal/container"
	"v2v/internal/data"
	"v2v/internal/frame"
	"v2v/internal/media"
	"v2v/internal/obs"
	"v2v/internal/plan"
	"v2v/internal/raster"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

// Process-wide robustness metrics, exported via the default obs registry
// (scraped at v2vserve's /metrics; see docs/OBSERVABILITY.md).
var (
	panicsRecovered = obs.Default().Counter("v2v_panics_recovered_total",
		"Shard worker panics recovered and converted into per-segment errors.")
	framesConcealed = obs.Default().Counter("v2v_frames_concealed_total",
		"Corrupt or undecodable packets concealed by holding the last good frame.")
	transientRetries = obs.Default().Counter("v2v_transient_retries_total",
		"Transient container read errors retried with bounded backoff.")
)

func init() {
	container.OnTransientRetry = transientRetries.Inc
}

// errShardAborted marks a shard stopped by the delivery loop's internal
// abort (a sibling shard already failed, or the sink rejected a write); it
// is never the first error, so callers never see it.
var errShardAborted = fmt.Errorf("exec: shard aborted after prior failure")

// firstStampSink wraps the output sink to stamp Metrics.FirstOutput the
// moment the first packet is handed over, on every write path (sequential
// encode, raw splice, shard delivery). Centralizing the stamp here means
// no delivery path can forget it: copy/smart-cut segments and warm
// result-cache splices stamp on their first packet, not at segment end.
// For a file sink "handed over" is honest enough; a server wraps the
// stream in a flushing sink and overrides FirstOutput with the first
// actual network flush (see media.FlushingSink).
//
// All writes happen on the delivery goroutine, so m needs no locking
// here.
type firstStampSink struct {
	media.Sink
	start time.Time
	m     *Metrics
}

func (f *firstStampSink) stamp() {
	if f.m.FirstOutput == 0 {
		f.m.FirstOutput = time.Since(f.start)
	}
}

func (f *firstStampSink) WriteFrame(fr *frame.Frame) error {
	if err := f.Sink.WriteFrame(fr); err != nil {
		return err
	}
	f.stamp()
	return nil
}

func (f *firstStampSink) WriteRawPacket(key bool, data []byte) error {
	if err := f.Sink.WriteRawPacket(key, data); err != nil {
		return err
	}
	f.stamp()
	return nil
}

func (f *firstStampSink) WriteEncodedFrame(key bool, data []byte) error {
	if err := f.Sink.WriteEncodedFrame(key, data); err != nil {
		return err
	}
	f.stamp()
	return nil
}

// Options configures execution.
type Options struct {
	// Parallelism caps concurrently running shards; 0 means unlimited
	// (the plan's shard counts already reflect the optimizer's cap).
	Parallelism int
	// Conceal switches the engine from fail-fast to error-concealment
	// mode: a corrupt or undecodable source packet is replaced by holding
	// the last good frame (counted in Metrics and SegmentActuals) instead
	// of failing the synthesis. Structural damage (unreadable header or
	// index) and I/O failures remain fatal in both modes.
	Conceal bool
	// GOPCache, when non-nil, is a shared decoded-GOP cache every shard
	// worker and segment runner reads through: concurrent taps of the same
	// source GOP decode it once and share the frames. The same cache may be
	// (and in v2vserve is) shared across concurrent ExecuteTo calls. If the
	// cache's byte budget is unset, ExecuteTo sizes it from the plan's
	// source formats. Nil disables caching.
	GOPCache *media.GOPCache
	// ResultCache, when non-nil, memoizes the encoded packets of rendered
	// segments, keyed by canonical plan fingerprint + source content
	// identity (plan.Fingerprinter): a repeated or overlapping query
	// splices the cached packets as a stream copy — zero source decodes,
	// zero frame encodes. Share one cache across runs (v2vserve shares a
	// process-wide one). Nil disables result caching.
	ResultCache *media.ResultCache
	// Trace, when set, records one span per segment and per shard worker.
	Trace *obs.Trace
	// Recorder attributes per-stage (decode/filter/encode/copy) frames,
	// bytes, and wall time to this execution; v2vserve threads each
	// request's flight-recorder entry here. When nil, ExecuteTo creates a
	// private recorder so SegmentActuals stage fields are always
	// populated. The process-wide v2v_stage_* metrics are updated in
	// either case.
	Recorder *obs.Recorder
	// Streaming schedules multi-segment plans strictly in presentation
	// order: later segments render concurrently (bounded by Parallelism
	// and a fixed delivery window), but packets are delivered to the sink
	// segment by segment, front to back, so a consumer can play the
	// output while the tail is still rendering. The written bytes are
	// identical to a non-streaming run. Single-segment plans already
	// deliver pipelined chunks in order, so the flag is a no-op for them.
	Streaming bool
	// OnSegmentDone, when set, is called on the delivery goroutine with
	// -1 once the container header is out (the sink wrote it before
	// ExecuteTo ran) and then with each segment's index after that
	// segment's packets have all been handed to the sink — the flush
	// hook a streaming server uses to push buffered bytes to the client
	// at segment boundaries.
	OnSegmentDone func(segment int)
}

// Metrics reports the work a plan execution performed.
type Metrics struct {
	Wall time.Duration
	// FirstOutput is the latency until the first output packet was
	// delivered — the paper's interactivity measure ("begin playback
	// within seconds"). Stream copies make this near-instant.
	FirstOutput time.Duration
	// Source counts frames decoded from input files.
	Source media.Stats
	// Intermediate counts the encode/decode pairs spent materializing
	// operator boundaries (unoptimized plans only).
	Intermediate media.Stats
	// Output counts frames encoded into / packets copied into the output.
	Output media.Stats
	// FramesRendered is the number of output frames produced by render
	// segments (copied packets excluded).
	FramesRendered int64
	// ResultCacheHits and ResultCacheMisses count rendered segments served
	// from / filled into the shared result cache by this execution. A hit
	// spliced previously synthesized packets without decoding or encoding
	// anything.
	ResultCacheHits   int64
	ResultCacheMisses int64
	// Segments holds per-segment measured costs, index-aligned with the
	// executed plan's segments — the data behind EXPLAIN ANALYZE.
	Segments []plan.SegmentActuals
	// GOPCache and ResultCache snapshot the shared caches' cumulative
	// stats (occupancy, budget, totals) at the end of the run; nil when
	// the corresponding cache is disabled.
	GOPCache    *media.GOPCacheStats
	ResultCache *media.ResultCacheStats
}

// TotalEncodes sums every frame encode performed anywhere in the plan.
func (m *Metrics) TotalEncodes() int64 {
	return m.Source.FramesEncoded + m.Intermediate.FramesEncoded + m.Output.FramesEncoded
}

// TotalDecodes sums every frame decode performed anywhere in the plan.
func (m *Metrics) TotalDecodes() int64 {
	return m.Source.FramesDecoded + m.Intermediate.FramesDecoded + m.Output.FramesDecoded
}

// TotalConcealed sums every concealed frame anywhere in the plan —
// non-zero only in concealment mode on damaged inputs.
func (m *Metrics) TotalConcealed() int64 {
	return m.Source.FramesConcealed + m.Intermediate.FramesConcealed + m.Output.FramesConcealed
}

// Execute runs the plan and writes the synthesized video to outPath. On
// error (including cancellation) the partial output is discarded: nothing
// is ever left at outPath.
func Execute(ctx context.Context, p *plan.Plan, outPath string, o Options) (*Metrics, error) {
	info := p.Checked.Output
	info.Start = rational.Zero
	w, err := media.CreateWriter(outPath, info)
	if err != nil {
		return nil, err
	}
	return ExecuteTo(ctx, p, w, o)
}

// ExecuteTo runs the plan against an arbitrary packet sink (a VMF file
// writer or a progressive stream) and closes the sink. Pipelined shard
// output means a streaming consumer starts receiving packets while later
// segments are still rendering.
//
// Cancellation is cooperative: ctx is checked before every segment and at
// every GOP boundary inside render loops (sequential and per shard
// worker), so a cancelled synthesis stops within one GOP of work per
// goroutine. On any failure the sink is aborted, not closed — a file sink
// leaves nothing at its target path.
func ExecuteTo(ctx context.Context, p *plan.Plan, w media.Sink, o Options) (*Metrics, error) {
	start := time.Now()
	m := &Metrics{}
	if o.Recorder == nil {
		o.Recorder = obs.NewRecorder()
	}
	// Attach the recorder to the raw sink before wrapping it: the stamp
	// wrapper embeds only the Sink interface, so SetRecorder would not
	// promote through it.
	if sr, ok := w.(interface{ SetRecorder(*obs.Recorder) }); ok {
		sr.SetRecorder(o.Recorder)
	}
	raw := w
	w = &firstStampSink{Sink: raw, start: start, m: m}
	// Registered before the reader cache's defer so it runs after closeAll
	// has folded still-open readers' stats into m — the counter then sees
	// copy-path concealments too, on success and failure alike.
	defer func() { framesConcealed.Add(m.TotalConcealed()) }()
	readers := newReaderCache(p, o.Conceal, o.Recorder)
	defer readers.closeAll(m)
	if o.GOPCache != nil {
		o.GOPCache.SetBudgetIfUnset(defaultGOPCacheBudget(p, o.Parallelism))
	}
	// One fingerprinter per run: it hashes the data arrays once and every
	// cacheable segment derives its key from it.
	var fp *plan.Fingerprinter
	if o.ResultCache != nil {
		fp = plan.NewFingerprinter(p.Checked, o.Conceal)
	}

	execSpan := o.Trace.StartSpan("execute")
	fail := func(err error) (*Metrics, error) {
		// Prefer the context's error when cancellation is what stopped us,
		// so callers can match context.Canceled / DeadlineExceeded.
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
		execSpan.SetAttr("error", err.Error())
		execSpan.End()
		// A stream sink whose header is already on the wire writes a typed
		// error trailer (best-effort) so the consumer can tell a producer
		// failure from a cut connection; a file sink discards its temp
		// file as before.
		if aw, ok := raw.(interface{ AbortWithError(error) error }); ok {
			aw.AbortWithError(err)
		} else {
			w.Abort()
		}
		return nil, err
	}
	if o.OnSegmentDone != nil {
		// The container header went out when the sink was constructed;
		// give streaming consumers their first flush point now.
		o.OnSegmentDone(-1)
	}
	if o.Streaming && len(p.Segments) > 1 {
		if err := runStreamingPlan(ctx, p, w, m, o, fp, readers); err != nil {
			return fail(err)
		}
	} else {
		for i, s := range p.Segments {
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			if err := runSegment(ctx, p, i, s, w, m, o, fp, readers); err != nil {
				return fail(err)
			}
			if o.OnSegmentDone != nil {
				o.OnSegmentDone(i)
			}
		}
	}
	if err := w.Close(); err != nil {
		execSpan.End()
		w.Abort()
		return nil, err
	}
	m.Output.Add(w.Stats())
	if o.GOPCache != nil {
		s := o.GOPCache.Stats()
		m.GOPCache = &s
	}
	if o.ResultCache != nil {
		s := o.ResultCache.Stats()
		m.ResultCache = &s
	}
	m.Wall = time.Since(start)
	execSpan.SetAttr("segments", len(p.Segments))
	execSpan.SetAttr("frames_encoded", m.Output.FramesEncoded)
	execSpan.SetAttr("packets_copied", m.Output.PacketsCopied)
	execSpan.SetAttr("frames_concealed", m.TotalConcealed())
	execSpan.SetAttr("first_output_us", m.FirstOutput.Microseconds())
	execSpan.End()
	return m, nil
}

// runSegment executes one segment, measuring its actual costs into
// m.Segments and recording a span with the decoded/encoded/copied counts.
func runSegment(ctx context.Context, p *plan.Plan, i int, s *plan.Segment, w media.Sink, m *Metrics, o Options, fp *plan.Fingerprinter, readers *readerCache) error {
	segStart := time.Now()
	sinkBefore := w.Stats()
	renderedBefore := m.FramesRendered
	decodedBefore := m.Source.FramesDecoded + m.Intermediate.FramesDecoded + readers.liveDecodes()
	concealedBefore := m.Source.FramesConcealed + m.Intermediate.FramesConcealed + readers.liveConcealed()
	cacheHitsBefore := m.Source.GOPCacheHits
	cacheMissesBefore := m.Source.GOPCacheMisses
	resHitsBefore := m.ResultCacheHits
	resMissesBefore := m.ResultCacheMisses
	// Stage deltas are race-free snapshots: segments run sequentially and
	// renderChunks joins every shard goroutine before runSegment returns.
	decBefore := o.Recorder.Stage(obs.StageDecode)
	fltBefore := o.Recorder.Stage(obs.StageFilter)
	encBefore := o.Recorder.Stage(obs.StageEncode)
	sp := o.Trace.StartSpan(fmt.Sprintf("segment[%d] %s", i, s.Kind))
	sp.SetAttr("kind", s.Kind.String())
	sp.SetAttr("t_start", s.Times.Start.String())
	sp.SetAttr("t_end", s.Times.End.String())

	var segErr error
	switch s.Kind {
	case plan.SegCopy:
		r, err := readers.get(s.Video)
		if err != nil {
			segErr = err
			break
		}
		if err := media.CopyRange(w, r, s.From, s.To); err != nil {
			segErr = fmt.Errorf("exec: copy segment: %w", err)
		}
	case plan.SegSmartCut:
		r, err := readers.get(s.Video)
		if err != nil {
			segErr = err
			break
		}
		if _, _, err := media.SmartCut(w, r, s.From, s.To); err != nil {
			segErr = fmt.Errorf("exec: smart cut segment: %w", err)
		}
	case plan.SegFrames:
		segErr = runFrameSegment(ctx, p, s, w, m, o, fp, readers, sp)
	default:
		segErr = fmt.Errorf("exec: unknown segment kind %v", s.Kind)
	}
	if segErr != nil {
		sp.SetAttr("error", segErr.Error())
		sp.End()
		return segErr
	}

	sinkAfter := w.Stats()
	decAfter := o.Recorder.Stage(obs.StageDecode)
	fltAfter := o.Recorder.Stage(obs.StageFilter)
	encAfter := o.Recorder.Stage(obs.StageEncode)
	act := plan.SegmentActuals{
		Wall:              time.Since(segStart),
		FramesRendered:    m.FramesRendered - renderedBefore,
		FramesDecoded:     m.Source.FramesDecoded + m.Intermediate.FramesDecoded + readers.liveDecodes() - decodedBefore,
		FramesEncoded:     sinkAfter.FramesEncoded - sinkBefore.FramesEncoded,
		PacketsCopied:     sinkAfter.PacketsCopied - sinkBefore.PacketsCopied,
		BytesCopied:       sinkAfter.BytesCopied - sinkBefore.BytesCopied,
		Concealed:         m.Source.FramesConcealed + m.Intermediate.FramesConcealed + readers.liveConcealed() - concealedBefore,
		GOPCacheHits:      m.Source.GOPCacheHits - cacheHitsBefore,
		GOPCacheMisses:    m.Source.GOPCacheMisses - cacheMissesBefore,
		ResultCacheHits:   m.ResultCacheHits - resHitsBefore,
		ResultCacheMisses: m.ResultCacheMisses - resMissesBefore,
		Shards:            effectiveShards(s, o),
		DecodeWall:        decAfter.Wall - decBefore.Wall,
		FilterWall:        fltAfter.Wall - fltBefore.Wall,
		EncodeWall:        encAfter.Wall - encBefore.Wall,
		DecodeBytes:       decAfter.Bytes - decBefore.Bytes,
		FilterFrames:      fltAfter.Frames - fltBefore.Frames,
		FilterBytes:       fltAfter.Bytes - fltBefore.Bytes,
		EncodeBytes:       encAfter.Bytes - encBefore.Bytes,
	}
	m.Segments = append(m.Segments, act)
	sp.SetAttr("frames_decoded", act.FramesDecoded)
	if act.GOPCacheHits > 0 || act.GOPCacheMisses > 0 {
		sp.SetAttr("gopcache_hits", act.GOPCacheHits)
		sp.SetAttr("gopcache_misses", act.GOPCacheMisses)
	}
	if act.ResultCacheHits > 0 || act.ResultCacheMisses > 0 {
		sp.SetAttr("rescache_hits", act.ResultCacheHits)
		sp.SetAttr("rescache_misses", act.ResultCacheMisses)
	}
	sp.SetAttr("frames_concealed", act.Concealed)
	sp.SetAttr("frames_encoded", act.FramesEncoded)
	sp.SetAttr("packets_copied", act.PacketsCopied)
	sp.SetAttr("frames_rendered", act.FramesRendered)
	sp.SetAttr("shards", act.Shards)
	sp.End()
	return nil
}

// effectiveShards reports the parallelism runFrameSegment will actually
// use for s under o.
func effectiveShards(s *plan.Segment, o Options) int {
	if s.Kind != plan.SegFrames {
		return 1
	}
	shards := s.Shards
	if shards < 1 {
		shards = 1
	}
	if o.Parallelism > 0 && shards > o.Parallelism {
		shards = o.Parallelism
	}
	return shards
}

// readerCache shares sequential readers across same-goroutine segments.
type readerCache struct {
	p       *plan.Plan
	conceal bool
	rec     *obs.Recorder
	mu      sync.Mutex
	rs      map[string]*media.Reader
}

func newReaderCache(p *plan.Plan, conceal bool, rec *obs.Recorder) *readerCache {
	return &readerCache{p: p, conceal: conceal, rec: rec, rs: map[string]*media.Reader{}}
}

func (c *readerCache) get(video string) (*media.Reader, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.rs[video]; ok {
		return r, nil
	}
	src, ok := c.p.Checked.Sources[video]
	if !ok {
		return nil, fmt.Errorf("exec: unknown video %q", video)
	}
	r, err := media.OpenReader(src.Path)
	if err != nil {
		return nil, err
	}
	r.SetConceal(c.conceal)
	r.SetRecorder(c.rec)
	c.rs[video] = r
	return r, nil
}

// liveDecodes sums decode counts across the still-open readers (their
// stats fold into m.Source only at closeAll; per-segment accounting needs
// the live view).
func (c *readerCache) liveDecodes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, r := range c.rs {
		n += r.Stats().FramesDecoded
	}
	return n
}

// liveConcealed is liveDecodes' counterpart for concealed frames.
func (c *readerCache) liveConcealed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, r := range c.rs {
		n += r.Stats().FramesConcealed
	}
	return n
}

func (c *readerCache) closeAll(m *Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.rs {
		m.Source.Add(r.Stats())
		r.Close()
	}
	c.rs = map[string]*media.Reader{}
}

// arraySource adapts the checked data arrays to the evaluator.
type arraySource map[string]*data.Array

func (s arraySource) DataAt(name string, t rational.Rat) (data.Value, bool, error) {
	arr, ok := s[name]
	if !ok {
		return data.Value{}, false, fmt.Errorf("exec: unknown data array %q", name)
	}
	v, ok := arr.At(t)
	return v, ok, nil
}

// runFrameSegment renders one segment, splitting it into shards when the
// plan asks for parallelism. segSpan (nil when tracing is off) parents the
// per-shard-worker spans.
func runFrameSegment(ctx context.Context, p *plan.Plan, s *plan.Segment, w media.Sink, m *Metrics, o Options, fp *plan.Fingerprinter, readers *readerCache, segSpan *obs.Span) error {
	frames := s.FrameCount()
	if frames == 0 {
		return nil
	}
	gop := p.Checked.Output.GOP
	if gop <= 0 {
		gop = 48
	}
	shards := effectiveShards(s, o)
	// Shard bounds (also the fill bounds a result-cache miss renders
	// with) are computed here, on the caller goroutine: alignChunkBounds
	// walks shared readers that are not safe to touch from workers.
	bounds := []int{0, frames}
	if shards > 1 {
		bounds = alignChunkBounds(chunkBounds(frames, shards, gop), s, readers)
	}
	if o.ResultCache != nil && fp != nil {
		if key, ok := fp.Segment(s, shards); ok {
			return runFrameSegmentCached(ctx, p, s, key, bounds, gop, w, m, o, segSpan)
		}
	}
	if shards == 1 {
		// Sequential: encode through the output writer directly.
		run := newSegmentRunner(p, s, o.Conceal, o.GOPCache, o.Recorder)
		defer run.close(m)
		for i := 0; i < frames; i++ {
			if i%gop == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fr, err := run.renderAt(s.Times.At(i))
			if err != nil {
				return err
			}
			err = w.WriteFrame(fr)
			fr.Release() // the sink copied or encoded the pixels
			if err != nil {
				return err
			}
			m.FramesRendered++
		}
		return nil
	}

	// Parallel shards: each renders and encodes its chunk into memory;
	// packets splice in order afterwards. An internal abort signal lets
	// the delivery loop stop still-running shards early once the output
	// can no longer use their work (sink failure or an earlier shard
	// error). A channel rather than a derived context: cancellation must
	// also honor test/caller contexts that implement Err() directly.
	abort := make(chan struct{})
	var abortOnce sync.Once
	cancelShards := func() { abortOnce.Do(func() { close(abort) }) }
	var mu sync.Mutex // guards metrics accumulation across shard workers
	chunks := renderChunks(ctx, p, s, bounds, gop, m, &mu, o, segSpan, abort)
	// Deliver chunks in output order as each completes (pipelined with the
	// still-running later shards), so streaming consumers see packets as
	// soon as the first shard lands. On any failure — a shard error or a
	// sink write error — delivery stops but the loop still waits for every
	// chunk: shard goroutines mutate *Metrics and close their runners on
	// exit, so returning while they run would race with the caller reading
	// m. cancelShards bounds the wasted work to one GOP per live shard.
	var firstErr error
	for _, ch := range chunks {
		<-ch.done //v2v:nolint(sendblock) must-drain join: workers exit promptly on abort/ctx and returning early would race on m
		if ch.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("exec: shard [%d,%d): %w", ch.lo, ch.hi, ch.err)
				cancelShards()
			}
			continue
		}
		if firstErr != nil {
			continue // drain remaining shards, deliver nothing further
		}
		for _, pkt := range ch.pkts {
			if err := w.WriteEncodedFrame(pkt.Key, pkt.Data); err != nil {
				firstErr = fmt.Errorf("exec: shard [%d,%d) deliver: %w", ch.lo, ch.hi, err)
				cancelShards()
				break
			}
			m.FramesRendered++
		}
	}
	return firstErr
}

// chunk is one shard's work item: the half-open output frame range
// [lo, hi) and, once done closes, the results or the error. An encoding
// worker fills pkts; a raw-rendering worker (streaming single-shard
// segments, whose frames the sink's continuous encoder must compress)
// fills frames instead. windowHeld records whether the streaming
// scheduler charged this chunk against the delivery window; it is
// written before the worker starts and read only after done closes.
type chunk struct {
	lo, hi     int
	pkts       []codec.Packet
	frames     []*frame.Frame
	err        error
	done       chan struct{}
	windowHeld bool
}

// renderChunks spawns one shard worker per bounds interval; each renders
// its frames through a fresh segment runner and encodes them with its own
// encoder (so every chunk starts on a keyframe). Workers honor ctx at GOP
// boundaries and stop early when abort closes (nil means no abort
// signal). mu guards every mutation of m; callers running segments
// concurrently must pass the same mutex for all of them. The caller must
// receive on every chunk's done channel before reading m: workers fold
// their reader stats into m on exit.
func renderChunks(ctx context.Context, p *plan.Plan, s *plan.Segment, bounds []int, gop int, m *Metrics, mu *sync.Mutex, o Options, segSpan *obs.Span, abort <-chan struct{}) []*chunk {
	var chunks []*chunk
	for bi := 0; bi+1 < len(bounds); bi++ {
		chunks = append(chunks, &chunk{lo: bounds[bi], hi: bounds[bi+1], done: make(chan struct{})})
	}
	for _, ch := range chunks {
		go runChunkWorker(ctx, p, s, ch, gop, m, mu, o, segSpan, abort, true)
	}
	return chunks
}

// runChunkWorker renders one chunk's frames through a fresh segment
// runner. With encode set it compresses them with its own encoder (so the
// chunk starts on a keyframe and splices anywhere); without it the raw
// frames are kept for the delivery goroutine to feed the sink's
// continuous encoder, preserving byte-identity with sequential output.
// Runs to completion or error, then closes ch.done; never touches the
// sink.
func runChunkWorker(ctx context.Context, p *plan.Plan, s *plan.Segment, ch *chunk, gop int, m *Metrics, mu *sync.Mutex, o Options, segSpan *obs.Span, abort <-chan struct{}, encode bool) {
	defer close(ch.done)
	sp := segSpan.ChildThread(fmt.Sprintf("shard[%d,%d)", ch.lo, ch.hi))
	sp.SetAttr("frames", ch.hi-ch.lo)
	defer func() {
		if ch.err != nil {
			sp.SetAttr("error", ch.err.Error())
		}
		sp.SetAttr("frames_encoded", len(ch.pkts))
		sp.End()
	}()
	// Isolate the worker: a panic anywhere in this goroutine (runner
	// construction, encoder setup, splice bookkeeping) would crash
	// the whole process since no caller frame can recover across a
	// `go`. Convert it to a per-segment error instead. renderAt has
	// its own recover for transform panics; this is the backstop for
	// everything else.
	defer func() {
		if r := recover(); r != nil {
			panicsRecovered.Inc()
			ch.err = fmt.Errorf("exec: shard [%d,%d) panicked: %v", ch.lo, ch.hi, r)
		}
	}()
	run := newSegmentRunner(p, s, o.Conceal, o.GOPCache, o.Recorder)
	defer func() {
		mu.Lock()
		run.close(m)
		mu.Unlock()
	}()
	var enc *codec.Encoder
	if encode {
		var err error
		enc, err = codec.NewEncoder(codec.Config{
			Width: p.Checked.Output.Width, Height: p.Checked.Output.Height,
			Quality: p.Checked.Output.Quality, GOP: p.Checked.Output.GOP,
			Level: p.Checked.Output.Level,
		})
		if err != nil {
			ch.err = err
			return
		}
		enc.SetRecorder(o.Recorder)
	}
	for i := ch.lo; i < ch.hi; i++ {
		if (i-ch.lo)%gop == 0 {
			if err := ctx.Err(); err != nil {
				ch.err = err
				return
			}
			select {
			case <-abort:
				ch.err = errShardAborted
				return
			default:
			}
		}
		fr, err := run.renderAt(s.Times.At(i))
		if err != nil {
			ch.err = err
			return
		}
		if !encode {
			// Raw-rendering workers hand frame ownership to the delivery
			// goroutine, which releases each frame after the sink's
			// continuous encoder consumes it. Rendered frames are either
			// pooled (refcounted, never recycled while held) or fresh
			// allocations, so holding them until delivery is safe.
			ch.frames = append(ch.frames, fr)
			continue
		}
		pkt, err := enc.Encode(fr)
		fr.Release() // the packet holds its own copy of the pixels
		if err != nil {
			ch.err = err
			return
		}
		// Retained until delivery (and possibly aliased into the result
		// cache), so this packet is never Recycled.
		ch.pkts = append(ch.pkts, pkt)
	}
}

// runFrameSegmentCached serves a cacheable rendered segment through the
// result cache: a hit splices the memoized packets as a stream copy (zero
// decodes, zero encodes); a miss renders the whole segment to packets,
// fills the cache, and delivers them. Concurrent executions of the same
// key collapse singleflight-style — the waiter splices the filler's
// packets.
func runFrameSegmentCached(ctx context.Context, p *plan.Plan, s *plan.Segment, key string, bounds []int, gop int, w media.Sink, m *Metrics, o Options, segSpan *obs.Span) error {
	var mu sync.Mutex
	seg, hit, err := resolveCachedSegment(ctx, p, s, key, bounds, gop, m, &mu, o, segSpan)
	if err != nil {
		return err
	}
	if hit {
		m.ResultCacheHits++
		segSpan.SetAttr("rescache", "hit")
	} else {
		m.ResultCacheMisses++
		segSpan.SetAttr("rescache", "miss")
	}
	return deliverResult(seg, w, m, hit)
}

// resolveCachedSegment fetches a cacheable rendered segment's packets,
// rendering and filling the cache on a miss. It never touches the sink,
// so the streaming scheduler can run it on a worker goroutine; bounds are
// the precomputed fill shard bounds. hit reports whether the packets came
// from the cache (including another request's concurrent fill).
func resolveCachedSegment(ctx context.Context, p *plan.Plan, s *plan.Segment, key string, bounds []int, gop int, m *Metrics, mu *sync.Mutex, o Options, segSpan *obs.Span) (*media.ResultSegment, bool, error) {
	seg, hit, filled, err := o.ResultCache.GetOrFill(ctx, key, func() (*media.ResultSegment, error) {
		pkts, err := renderSegmentPackets(ctx, p, s, bounds, gop, m, mu, o, segSpan)
		if err != nil {
			return nil, err
		}
		return media.NewResultSegment(pkts), nil
	})
	if err != nil {
		if filled || ctx.Err() != nil {
			return nil, false, err
		}
		// A concurrent request's fill failed; its error (possibly its own
		// cancellation) is not ours. Render directly, uncached.
		pkts, rerr := renderSegmentPackets(ctx, p, s, bounds, gop, m, mu, o, segSpan)
		if rerr != nil {
			return nil, false, rerr
		}
		return media.NewResultSegment(pkts), false, nil
	}
	return seg, hit, nil
}

// deliverResult writes a segment's packets to the sink. Cache hits splice
// as raw packets (stream copies — nothing was rendered this run); fills
// deliver as shard-encoded frames, exactly as the parallel path counts
// its own work.
func deliverResult(seg *media.ResultSegment, w media.Sink, m *Metrics, hit bool) error {
	for _, pkt := range seg.Packets {
		var err error
		if hit {
			err = w.WriteRawPacket(pkt.Key, pkt.Data)
		} else {
			err = w.WriteEncodedFrame(pkt.Key, pkt.Data)
			m.FramesRendered++
		}
		if err != nil {
			return fmt.Errorf("exec: deliver cached segment: %w", err)
		}
	}
	return nil
}

// renderSegmentPackets renders every frame of the segment into encoded
// packets without touching the sink — the fill path of the result cache.
// Each shard (and the single-shard case) uses a fresh encoder, so the
// packet bytes are self-contained: they start on a keyframe and depend
// only on the segment's content, never on writer state. bounds are the
// shard bounds, precomputed on the plan's delivery goroutine (boundary
// alignment reads shared readers that workers must not touch).
func renderSegmentPackets(ctx context.Context, p *plan.Plan, s *plan.Segment, bounds []int, gop int, m *Metrics, mu *sync.Mutex, o Options, segSpan *obs.Span) ([]media.EncodedPacket, error) {
	abort := make(chan struct{})
	var abortOnce sync.Once
	chunks := renderChunks(ctx, p, s, bounds, gop, m, mu, o, segSpan, abort)
	var pkts []media.EncodedPacket
	var firstErr error
	for _, ch := range chunks {
		<-ch.done //v2v:nolint(sendblock) must-drain join: workers exit promptly on abort/ctx and returning early would race on m
		if ch.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("exec: shard [%d,%d): %w", ch.lo, ch.hi, ch.err)
				abortOnce.Do(func() { close(abort) })
			}
			continue
		}
		if firstErr != nil {
			continue // drain remaining shards
		}
		for _, pkt := range ch.pkts {
			pkts = append(pkts, media.EncodedPacket{Key: pkt.Key, Data: pkt.Data})
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return pkts, nil
}

// chunkBounds splits [0, frames) into up to `shards` chunks whose lengths
// are multiples of the output GOP (so forced shard keyframes match
// cadence), returning the boundary indices including 0 and frames.
func chunkBounds(frames, shards, gop int) []int {
	per := (frames + shards - 1) / shards
	if rem := per % gop; rem != 0 {
		per += gop - rem
	}
	bounds := []int{0}
	for lo := per; lo < frames; lo += per {
		bounds = append(bounds, lo)
	}
	return append(bounds, frames)
}

// alignChunkBounds snaps interior shard boundaries down to the nearest
// output frame whose source packet is a keyframe, using the optimizer's
// sole-source hint (s.AlignVideo/AlignOff). A shard starting on a source
// keyframe decodes zero throwaway frames rolling forward; unaligned shards
// each pay up to a full source GOP of discarded decodes. Alignment is an
// optimization only: any lookup failure keeps the original boundary, and a
// boundary never crosses below its predecessor (no chunk vanishes).
func alignChunkBounds(bounds []int, s *plan.Segment, readers *readerCache) []int {
	if s.AlignVideo == "" || len(bounds) < 3 {
		return bounds
	}
	r, err := readers.get(s.AlignVideo)
	if err != nil {
		return bounds
	}
	cr := r.Container()
	srcIdx := func(i int) (int, bool) {
		idx, err := r.IndexOfTime(s.Times.At(i).Add(s.AlignOff))
		if err != nil || idx < 0 || idx >= cr.NumPackets() {
			return 0, false
		}
		return idx, true
	}
	out := make([]int, len(bounds))
	copy(out, bounds)
	for bi := 1; bi < len(out)-1; bi++ {
		for b := out[bi]; b > out[bi-1]; b-- {
			idx, ok := srcIdx(b)
			if !ok {
				break // unmappable boundary: keep as-is
			}
			if cr.Record(idx).Key {
				out[bi] = b
				break
			}
		}
	}
	return out
}

// defaultGOPCacheBudget sizes an unset cache budget from the plan's source
// formats: enough for every live shard worker to hold its current source
// GOPs plus headroom for reuse across shards, clamped to [64MiB, 1GiB].
// par is the effective shard parallelism (Options.Parallelism, or
// GOMAXPROCS when unlimited).
func defaultGOPCacheBudget(p *plan.Plan, par int) int64 {
	var maxGOP int64
	for _, src := range p.Checked.Sources {
		info := src.Info
		gop := info.GOP
		if gop <= 0 {
			gop = 48
		}
		b := int64(gop) * int64(frame.FormatYUV420.Size(info.Width, info.Height))
		if b > maxGOP {
			maxGOP = b
		}
	}
	if maxGOP == 0 {
		return media.FallbackGOPCacheBytes
	}
	// Worst-case live set: each of par shard workers keeps up to
	// media.DefaultCursorsPerVideo interleaved streams (a 4-tap grid uses
	// four, plus one for a GOP-boundary straddle), and each stream pins
	// one GOP. An LRU sized below the live set thrashes — every fill
	// evicts a GOP another stream is about to read — so size for the
	// full set with 1.5x headroom, and never below 8 GOPs.
	if par < 1 {
		par = runtime.GOMAXPROCS(0)
	}
	mult := int64(par) * int64(media.DefaultCursorsPerVideo) * 3 / 2
	if mult < 8 {
		mult = 8
	}
	budget := maxGOP * mult
	const lo, hi = 64 << 20, 1 << 30
	if budget < lo {
		return lo
	}
	if budget > hi {
		return hi
	}
	return budget
}

// segmentRunner executes one segment's operator tree for one goroutine.
//
// Frame ownership: every frame a nodeRunner returns is owned by its caller,
// which must Release it when done (Release is a no-op on unpooled frames,
// so the discipline is universal). Pooled frames originate only in audited
// paths — fused kernel outputs, the output-scaling destination, and the
// materialize decoder — while cursor/source frames stay unpooled (the GOP
// cache may hold them indefinitely).
type segmentRunner struct {
	p       *plan.Plan
	seg     *plan.Segment
	cursors *media.Cursors
	data    arraySource
	rec     *obs.Recorder
	pool    *frame.Pool
	root    *nodeRunner
}

func newSegmentRunner(p *plan.Plan, s *plan.Segment, conceal bool, cache *media.GOPCache, rec *obs.Recorder) *segmentRunner {
	paths := make(map[string]string, len(p.Checked.Sources))
	for name, src := range p.Checked.Sources {
		paths[name] = src.Path
	}
	run := &segmentRunner{
		p: p, seg: s,
		cursors: media.NewCursors(paths, 0),
		data:    arraySource(p.Checked.Arrays),
		rec:     rec,
		pool:    frame.DefaultPool(),
	}
	run.cursors.SetConceal(conceal)
	run.cursors.SetRecorder(rec)
	if cache != nil {
		run.cursors.SetGOPCache(cache)
	}
	run.root = run.buildRunner(s.Root)
	return run
}

func (r *segmentRunner) close(m *Metrics) {
	m.Source.Add(r.cursors.Close())
	r.root.walk(func(nr *nodeRunner) {
		m.Intermediate.FramesEncoded += nr.matEncodes
		m.Intermediate.FramesDecoded += nr.matDecodes
		if nr.dec != nil {
			nr.dec.Reset() // release the pooled prediction frame
		}
	})
}

// SourceFrame implements vql.FrameSource over the segment's cursor pool.
func (r *segmentRunner) SourceFrame(video string, t rational.Rat) (*frame.Frame, error) {
	return r.cursors.FrameAt(video, t)
}

// renderAt produces the output frame for time t, scaling to the output
// format when the rendered frame differs. Panics from transform internals
// (UDFs, raster precondition violations on data-driven arguments) are
// converted to errors so one bad frame fails the run instead of crashing
// the process.
func (r *segmentRunner) renderAt(t rational.Rat) (fr *frame.Frame, err error) {
	defer func() {
		if p := recover(); p != nil {
			fr, err = nil, fmt.Errorf("exec: render t=%s panicked: %v", t, p)
		}
	}()
	fr, err = r.root.renderAt(t)
	if err != nil {
		return nil, err
	}
	out := r.p.Checked.Output
	if fr.W != out.Width || fr.H != out.Height {
		scaleStart := time.Now()
		scaled := r.pool.Get(out.Width, out.Height, frame.FormatYUV420)
		raster.ScaleInto(scaled, fr)
		fr.Release()
		fr = scaled
		r.rec.StageObserve(obs.StageFilter, 1, int64(len(fr.Pix)), time.Since(scaleStart))
	}
	return fr, nil
}

// nodeRunner carries per-node execution state: the intermediate codec pair
// for materialized boundaries, the rendered child frames, the reusable
// evaluation environment, and the fused-kernel scratch state.
type nodeRunner struct {
	run      *segmentRunner
	node     *plan.Node
	children []*nodeRunner
	frames   []*frame.Frame // children's frames for the current time
	env      vql.Env        // reused across frames; only T changes per frame

	// Fused-kernel state: ops is the per-frame kernel scratch (rebuilt
	// allocation-free each frame) and stages caches per-stage prepared
	// state (grade LUTs) across frames, keyed by the stage's arguments.
	ops    []raster.PointOp
	stages []fusedStageState

	enc        *codec.Encoder
	dec        *codec.Decoder
	matW, matH int
	matEncodes int64
	matDecodes int64
}

// fusedStageState caches one fused stage's prepared kernel between frames.
// Grade is the only op whose construction allocates (two 256-byte LUTs);
// its kernel is rebuilt only when the evaluated arguments change.
type fusedStageState struct {
	gradeOp raster.PointOp
	gradeB  int
	gradeC  float64
	gradeS  float64
	gradeOK bool
}

func (r *segmentRunner) buildRunner(n *plan.Node) *nodeRunner {
	nr := &nodeRunner{run: r, node: n}
	for _, in := range n.Inputs {
		nr.children = append(nr.children, r.buildRunner(in))
	}
	nr.frames = make([]*frame.Frame, len(nr.children))
	// One environment per node, reused for every frame: the Ext closure
	// resolving ports is allocated once here instead of per render call.
	nr.env = vql.Env{
		Frames: r,
		Data:   r.data,
		Ext: func(e vql.Expr, _ *vql.Env) (vql.Val, bool, error) {
			if p, ok := e.(plan.PortRef); ok {
				if p.Port < 0 || p.Port >= len(nr.frames) {
					return vql.Val{}, true, fmt.Errorf("exec: port %d out of range", p.Port)
				}
				return vql.FrameVal(nr.frames[p.Port]), true, nil
			}
			return vql.Val{}, false, nil
		},
	}
	if n.Fused != nil {
		nr.ops = make([]raster.PointOp, len(n.Fused))
		nr.stages = make([]fusedStageState, len(n.Fused))
	}
	return nr
}

func (nr *nodeRunner) walk(visit func(*nodeRunner)) {
	visit(nr)
	for _, c := range nr.children {
		c.walk(visit)
	}
}

// releaseFrames releases every owned frame in frames except result (the
// frame being passed up, which may alias a child on passthrough transforms
// and zero-copy Scale) and duplicate pointers (the same child frame bound
// to two ports). Entries are cleared so stale pointers never outlive the
// call. Release is a no-op on unpooled frames.
func releaseFrames(frames []*frame.Frame, result *frame.Frame) {
	for i, fr := range frames {
		if fr == nil || fr == result {
			continue
		}
		dup := false
		for j := 0; j < i; j++ {
			if frames[j] == fr {
				dup = true
				break
			}
		}
		if !dup {
			fr.Release()
		}
	}
	for i := range frames {
		frames[i] = nil
	}
}

// renderChildren renders every child for time t into nr.frames. On error
// the already-rendered prefix is released.
func (nr *nodeRunner) renderChildren(t rational.Rat) error {
	for i, c := range nr.children {
		cf, err := c.renderAt(t)
		if err != nil {
			releaseFrames(nr.frames[:i], nil)
			return err
		}
		nr.frames[i] = cf
	}
	return nil
}

func (nr *nodeRunner) renderAt(t rational.Rat) (*frame.Frame, error) {
	var fr *frame.Frame
	switch {
	case nr.node.IsLeaf():
		nr.env.T = t
		idx, err := vql.Eval(nr.node.Clip.Index, &nr.env)
		if err != nil {
			return nil, fmt.Errorf("exec: clip index: %w", err)
		}
		fr, err = nr.run.SourceFrame(nr.node.Clip.Video, idx.Num)
		if err != nil {
			return nil, err
		}
	case nr.node.Fused != nil:
		var err error
		fr, err = nr.renderFused(t)
		if err != nil {
			return nil, err
		}
	default:
		if err := nr.renderChildren(t); err != nil {
			return nil, err
		}
		nr.env.T = t
		// Filter-stage wall covers the expression evaluation (raster
		// transforms, composition); any source taps the expression reads
		// directly are separately counted under the decode stage.
		fltStart := time.Now()
		v, err := vql.Eval(nr.node.Expr, &nr.env)
		if err != nil {
			releaseFrames(nr.frames, nil)
			return nil, fmt.Errorf("exec: filter %s at t=%s: %w", nr.node.Expr, t, err)
		}
		if v.Type != vql.TypeFrame || v.Frame == nil {
			releaseFrames(nr.frames, nil)
			return nil, fmt.Errorf("exec: filter %s produced %v, want a frame", nr.node.Expr, v.Type)
		}
		fr = v.Frame
		// Passthrough transforms (identity-parameter ops, zero-copy
		// scale) may return a child frame itself; releaseFrames keeps it.
		releaseFrames(nr.frames, fr)
		nr.run.rec.StageObserve(obs.StageFilter, 1, int64(len(fr.Pix)), time.Since(fltStart))
	}
	if !nr.node.Materialize {
		return fr, nil
	}
	return nr.materialize(fr)
}

// renderFused executes a fused kernel node: children render once, the
// stage kernels are prepared (scalar arguments re-evaluate each frame, the
// expensive grade LUTs cache across frames), and raster.ApplyFused makes a
// single pass over the planes into a pooled destination — one frame
// allocation (amortized to zero by the pool) and one traversal for the
// whole chain, byte-identical to evaluating the ops one by one.
//
//v2v:hotpath
func (nr *nodeRunner) renderFused(t rational.Rat) (*frame.Frame, error) {
	if err := nr.renderChildren(t); err != nil {
		return nil, err
	}
	base := nr.frames[0]
	fltStart := time.Now()
	nr.env.T = t
	for i, st := range nr.node.Fused {
		op, err := nr.stageOp(i, st, base)
		if err != nil {
			releaseFrames(nr.frames, nil)
			return nil, fmt.Errorf("exec: fused %s at t=%s: %w", st.Op, t, err) //v2v:nolint(hotpath) cold error path; allocates only when a stage rejects its arguments
		}
		nr.ops[i] = op
	}
	dst := nr.run.pool.Get(base.W, base.H, base.Format)
	raster.ApplyFused(dst, base, nr.ops)
	// dst comes from the pool, so it never aliases a child frame.
	releaseFrames(nr.frames, nil)
	nr.run.rec.StageObserve(obs.StageFilter, 1, int64(len(dst.Pix)), time.Since(fltStart))
	return dst, nil
}

// stageOp prepares the kernel for one fused stage at the current time.
// Shape validation replicates the standalone vql transforms' errors so a
// fused plan fails exactly where the unfused plan would.
func (nr *nodeRunner) stageOp(i int, st plan.FusedStage, base *frame.Frame) (raster.PointOp, error) {
	switch st.Op {
	case "grade":
		b, err := nr.evalInt(st.Args[1])
		if err != nil {
			return raster.PointOp{}, err
		}
		c, err := nr.evalFloat(st.Args[2])
		if err != nil {
			return raster.PointOp{}, err
		}
		s, err := nr.evalFloat(st.Args[3])
		if err != nil {
			return raster.PointOp{}, err
		}
		sc := &nr.stages[i]
		if !sc.gradeOK || sc.gradeB != b || sc.gradeC != c || sc.gradeS != s {
			sc.gradeOp = raster.GradeOp(b, c, s)
			sc.gradeB, sc.gradeC, sc.gradeS, sc.gradeOK = b, c, s, true
		}
		return sc.gradeOp, nil
	case "crossfade":
		other, err := nr.evalFrame(st.Args[1])
		if err != nil {
			return raster.PointOp{}, err
		}
		tt, err := nr.evalFloat(st.Args[2])
		if err != nil {
			return raster.PointOp{}, err
		}
		if !base.SameShape(other) {
			return raster.PointOp{}, fmt.Errorf("vql: crossfade frames must share a shape (%dx%d vs %dx%d)",
				base.W, base.H, other.W, other.H)
		}
		return raster.CrossfadeOp(other, tt), nil
	case "wipe":
		other, err := nr.evalFrame(st.Args[1])
		if err != nil {
			return raster.PointOp{}, err
		}
		tt, err := nr.evalFloat(st.Args[2])
		if err != nil {
			return raster.PointOp{}, err
		}
		if !base.SameShape(other) {
			return raster.PointOp{}, fmt.Errorf("vql: wipe frames must share a shape (%dx%d vs %dx%d)",
				base.W, base.H, other.W, other.H)
		}
		return raster.WipeOp(other, tt), nil
	case "overlay":
		img, err := nr.evalFrame(st.Args[1])
		if err != nil {
			return raster.PointOp{}, err
		}
		x, err := nr.evalInt(st.Args[2])
		if err != nil {
			return raster.PointOp{}, err
		}
		y, err := nr.evalInt(st.Args[3])
		if err != nil {
			return raster.PointOp{}, err
		}
		a, err := nr.evalInt(st.Args[4])
		if err != nil {
			return raster.PointOp{}, err
		}
		return raster.OverlayOp(img, x, y, a), nil
	}
	return raster.PointOp{}, fmt.Errorf("exec: no fused kernel for %q", st.Op)
}

func (nr *nodeRunner) evalInt(e vql.Expr) (int, error) {
	v, err := vql.Eval(e, &nr.env)
	if err != nil {
		return 0, err
	}
	return v.Int(), nil
}

func (nr *nodeRunner) evalFloat(e vql.Expr) (float64, error) {
	v, err := vql.Eval(e, &nr.env)
	if err != nil {
		return 0, err
	}
	return v.Float(), nil
}

func (nr *nodeRunner) evalFrame(e vql.Expr) (*frame.Frame, error) {
	v, err := vql.Eval(e, &nr.env)
	if err != nil {
		return nil, err
	}
	if v.Type != vql.TypeFrame || v.Frame == nil {
		return nil, fmt.Errorf("exec: fused stage argument produced %v, want a frame", v.Type)
	}
	return v.Frame, nil
}

// materialize round-trips the frame through the node's intermediate codec
// pair, paying the cost of an operator boundary that writes its result as
// an encoded stream for the next operator to decode.
func (nr *nodeRunner) materialize(fr *frame.Frame) (*frame.Frame, error) {
	out := nr.run.p.Checked.Output
	if nr.enc == nil || nr.matW != fr.W || nr.matH != fr.H {
		cfg := codec.Config{
			Width: fr.W, Height: fr.H,
			Quality: out.Quality, GOP: out.GOP, Level: out.Level,
		}
		enc, err := codec.NewEncoder(cfg)
		if err != nil {
			fr.Release()
			return nil, err
		}
		dec, err := codec.NewDecoder(cfg)
		if err != nil {
			fr.Release()
			return nil, err
		}
		enc.SetRecorder(nr.run.rec)
		dec.SetRecorder(nr.run.rec)
		dec.SetFramePool(nr.run.pool)
		nr.enc, nr.dec, nr.matW, nr.matH = enc, dec, fr.W, fr.H
	}
	pkt, err := nr.enc.Encode(fr)
	// The input frame is consumed by the boundary either way: its pixels
	// now live in the encoded packet (or the error abandons them).
	fr.Release()
	if err != nil {
		return nil, fmt.Errorf("exec: materialize encode: %w", err)
	}
	nr.matEncodes++
	got, err := nr.dec.Decode(pkt.Data)
	nr.enc.Recycle(pkt) // Decode fully consumed the bytes; reuse the buffer
	if err != nil {
		return nil, fmt.Errorf("exec: materialize decode: %w", err)
	}
	nr.matDecodes++
	return got, nil
}
