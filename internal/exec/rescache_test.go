package exec

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"v2v/internal/check"
	"v2v/internal/dataset"
	"v2v/internal/media"
	"v2v/internal/plan"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

// runStream executes p into an in-memory VMS stream and returns the bytes
// and metrics.
func runStream(t *testing.T, p *plan.Plan, o Options) (string, *Metrics) {
	t.Helper()
	var buf strings.Builder
	sink, err := media.NewStreamWriter(&nopWriter{&buf}, p.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ExecuteTo(context.Background(), p, sink, o)
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), m
}

// A repeated query against a warm result cache must do zero work: no
// source decodes, no frame encodes, byte-identical output — the paper's
// repeated-request scenario (the same spec POSTed to v2vserve twice).
func TestResultCacheWarmRepeatZeroWork(t *testing.T) {
	body := `render(t) = grade(v[t], 5, 1.0, 1.0);`
	rc := media.NewResultCache(0)
	opts := Options{ResultCache: rc}

	cold, mCold := runStream(t, buildPlan(t, body, false), opts)
	if mCold.ResultCacheMisses == 0 || mCold.ResultCacheHits != 0 {
		t.Fatalf("cold run: hits=%d misses=%d, want misses only",
			mCold.ResultCacheHits, mCold.ResultCacheMisses)
	}
	if mCold.Source.FramesDecoded == 0 {
		t.Fatal("cold run decoded nothing — fixture broken")
	}

	// Fresh plan (as a new request would build), same cache.
	warm, mWarm := runStream(t, buildPlan(t, body, false), opts)
	if warm != cold {
		t.Error("warm output differs from cold output")
	}
	if mWarm.ResultCacheHits == 0 || mWarm.ResultCacheMisses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want hits only",
			mWarm.ResultCacheHits, mWarm.ResultCacheMisses)
	}
	if mWarm.Source.FramesDecoded != 0 {
		t.Errorf("warm run decoded %d source frames, want 0", mWarm.Source.FramesDecoded)
	}
	if enc := mWarm.TotalEncodes(); enc != 0 {
		t.Errorf("warm run encoded %d frames, want 0", enc)
	}
	if mWarm.Output.PacketsCopied == 0 {
		t.Error("warm run copied no packets — cache was not the delivery path")
	}
	if mWarm.ResultCache == nil || mWarm.ResultCache.Hits == 0 {
		t.Error("metrics snapshot missing result-cache stats")
	}

	// Per-segment actuals carry the hit for EXPLAIN ANALYZE.
	var hits int64
	for _, a := range mWarm.Segments {
		hits += a.ResultCacheHits
	}
	if hits == 0 {
		t.Error("segment actuals recorded no result-cache hits")
	}
}

// Sharded segments are cacheable too: the warm repeat of a multi-shard
// render must also hit and do zero decode/encode work.
func TestResultCacheWarmRepeatShardedSegment(t *testing.T) {
	body := `render(t) = grade(v[t], 5, 1.0, 1.0);`
	rc := media.NewResultCache(0)
	opts := Options{ResultCache: rc, Parallelism: 2}

	build := func() *plan.Plan {
		p := buildPlan(t, body, false)
		p.Segments[0].Shards = 2
		return p
	}
	cold, _ := runStream(t, build(), opts)
	warm, mWarm := runStream(t, build(), opts)
	if warm != cold {
		t.Error("warm sharded output differs from cold")
	}
	if mWarm.Source.FramesDecoded != 0 || mWarm.TotalEncodes() != 0 {
		t.Errorf("warm sharded run did work: %d decodes, %d encodes",
			mWarm.Source.FramesDecoded, mWarm.TotalEncodes())
	}
}

// Overlapping concurrent queries with matching fingerprints share one
// render singleflight-style: the segment is rendered once, every other
// request splices it.
func TestResultCacheConcurrentRequestsShareRender(t *testing.T) {
	const workers = 4
	body := `render(t) = grade(v[t], 5, 1.0, 1.0);`
	rc := media.NewResultCache(0)

	outs := make([]string, workers)
	metrics := make([]*Metrics, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		p := buildPlan(t, body, false)
		wg.Add(1)
		go func(i int, p *plan.Plan) {
			defer wg.Done()
			var buf strings.Builder
			sink, err := media.NewStreamWriter(&nopWriter{&buf}, p.Checked.Output)
			if err != nil {
				t.Error(err)
				return
			}
			m, err := ExecuteTo(context.Background(), p, sink, Options{ResultCache: rc})
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = buf.String()
			metrics[i] = m
		}(i, p)
	}
	wg.Wait()

	var decodes int64
	for i := 0; i < workers; i++ {
		if outs[i] == "" || metrics[i] == nil {
			t.Fatalf("worker %d did not finish", i)
		}
		if outs[i] != outs[0] {
			t.Errorf("worker %d output differs", i)
		}
		decodes += metrics[i].Source.FramesDecoded
	}
	solo, _ := runStream(t, buildPlan(t, body, false), Options{})
	if solo != outs[0] {
		t.Error("shared-render output differs from an uncached run")
	}
	// One worker rendered (paying the decodes), the rest spliced. Allow
	// scheduling slack, but demand real sharing.
	st := rc.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 render across %d requests", st.Misses, workers)
	}
	if st.Hits != int64(workers-1) {
		t.Errorf("hits = %d, want %d", st.Hits, workers-1)
	}
	_ = decodes
}

// The stale-source guard: rewriting a source file in place must not serve
// the old cached result — the content identity changes the key, so the
// new run re-renders from the new bytes.
func TestResultCacheStaleSourceNotServed(t *testing.T) {
	dir := t.TempDir()
	vid := filepath.Join(dir, "mut.vmf")
	prof := dataset.TinyProfile()
	if _, err := dataset.Generate(vid, "", prof, rational.FromInt(4)); err != nil {
		t.Fatal(err)
	}
	body := `render(t) = grade(v[t], 5, 1.0, 1.0);`
	build := func() *plan.Plan {
		t.Helper()
		src := fmt.Sprintf(`
			timedomain range(0, 2, 1/24);
			videos { v: %q; }
			%s`, vid, body)
		s, err := vql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		c, err := check.Check(s, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := plan.Build(c)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	rc := media.NewResultCache(0)
	opts := Options{ResultCache: rc}
	before, _ := runStream(t, build(), opts)

	// Rewrite the source in place: same path, different content.
	prof.Seed = 1234
	if _, err := dataset.Generate(vid, "", prof, rational.FromInt(4)); err != nil {
		t.Fatal(err)
	}

	after, mAfter := runStream(t, build(), opts)
	if after == before {
		t.Error("rewritten source served the stale cached result")
	}
	if mAfter.ResultCacheHits != 0 {
		t.Errorf("run over the rewritten source hit the cache %d times", mAfter.ResultCacheHits)
	}
	if mAfter.Source.FramesDecoded == 0 {
		t.Error("run over the rewritten source decoded nothing")
	}
	// Ground truth: an uncached run over the new file matches.
	clean, _ := runStream(t, build(), Options{})
	if after != clean {
		t.Error("cached-path output over the rewritten source differs from an uncached run")
	}
}

// Two concurrent heavy queries sharing one constrained arbitrated budget:
// both must complete correctly, the combined resident bytes must respect
// the budget, and neither cache ends empty (the fairness floors hold).
func TestConcurrentQueriesConstrainedSharedBudget(t *testing.T) {
	bodies := []string{
		`render(t) = grade(v[t], 5, 1.0, 1.0);`,
		`render(t) = grade(zoom(v[t], 2), 10, 1.1, 1.0);`,
	}
	// Budgets far below what the working sets would like: the tiny fixture
	// decodes ~1 MiB of frames per GOP and the two queries touch two GOPs
	// each; give the pair 1.5 MiB total so eviction pressure is real.
	gc := media.NewGOPCache(1 << 20)
	rc := media.NewResultCache(1 << 20)
	arb := media.NewArbiter(3 << 19)
	gc.AttachArbiter(arb)
	rc.AttachArbiter(arb)
	opts := Options{GOPCache: gc, ResultCache: rc}

	refs := make([]string, len(bodies))
	for i, b := range bodies {
		refs[i], _ = runStream(t, buildPlan(t, b, false), Options{})
	}

	var wg sync.WaitGroup
	outs := make([][]string, len(bodies))
	for i := range bodies {
		outs[i] = make([]string, 2)
		for round := 0; round < 2; round++ {
			p := buildPlan(t, bodies[i], false)
			wg.Add(1)
			go func(i, round int, p *plan.Plan) {
				defer wg.Done()
				var buf strings.Builder
				sink, err := media.NewStreamWriter(&nopWriter{&buf}, p.Checked.Output)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := ExecuteTo(context.Background(), p, sink, opts); err != nil {
					t.Error(err)
					return
				}
				outs[i][round] = buf.String()
			}(i, round, p)
		}
	}
	wg.Wait()

	for i := range bodies {
		for round := 0; round < 2; round++ {
			if outs[i][round] != refs[i] {
				t.Errorf("query %d round %d output differs from uncached reference", i, round)
			}
		}
	}
	if u, tot := arb.Used(), arb.Total(); u > tot {
		t.Errorf("arbiter used %d exceeds total %d", u, tot)
	}
	gs, rs := gc.Stats(), rc.Stats()
	if gs.Bytes+rs.Bytes != arb.Used() {
		t.Errorf("cache bytes %d+%d disagree with arbiter ledger %d", gs.Bytes, rs.Bytes, arb.Used())
	}
	if gs.Bytes < 0 || rs.Bytes < 0 {
		t.Errorf("negative resident bytes: gop=%d result=%d", gs.Bytes, rs.Bytes)
	}
	if arb.Used() == 0 {
		t.Error("nothing was cached at all under the shared budget")
	}
}
