package exec

// This file implements streaming execution: presentation-order
// scheduling with bounded lookahead.
//
// The non-streaming engine runs segments one after another; within a
// sharded segment, chunks render in parallel and deliver pipelined, but a
// later segment never starts until the previous one is fully delivered.
// That leaves parallelism on the table exactly when a streaming consumer
// cares most: the head of the output is rendering alone while the tail's
// shards sit idle.
//
// runStreamingPlan extends the intra-segment pipelined-chunk discipline
// across the whole plan. Every segment is decomposed into chunks up
// front; a scheduler goroutine starts chunk workers strictly in
// presentation order, bounded by two token pools — a parallelism
// semaphore (CPU) and a delivery window (memory: how many rendered, not
// yet delivered chunks may exist). The delivery loop, on the caller's
// goroutine, consumes chunks in the same order and writes packets to the
// sink the moment each chunk lands, so the first seconds of output reach
// the consumer while later segments are still rendering.
//
// Output bytes are identical to a non-streaming run: the sequence of sink
// write calls (WriteFrame / WriteRawPacket / WriteEncodedFrame, same data,
// same order) is preserved exactly — single-shard render segments ship
// raw frames to the delivery goroutine and feed the sink's continuous
// encoder there, sharded segments deliver their self-contained
// fresh-encoder packets, and copy/smart-cut segments run inline at
// delivery (they read the source on the delivery goroutine and may use
// the sink's encoder).

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"v2v/internal/media"
	"v2v/internal/obs"
	"v2v/internal/plan"
)

// unitKind classifies how a plan segment is produced and delivered when
// streaming.
type unitKind int

const (
	// unitCopy runs inline on the delivery goroutine: packet copies and
	// smart cuts are I/O-bound splices that may also use the sink's
	// encoder (smart-cut boundary re-encodes), so they cannot run ahead.
	unitCopy unitKind = iota
	// unitFrames renders raw frames on workers (GOP-sized chunks) and
	// encodes them through the sink's continuous encoder at delivery —
	// the streaming form of the sequential single-shard path.
	unitFrames
	// unitPackets renders and encodes on workers with fresh per-chunk
	// encoders — the streaming form of the sharded path.
	unitPackets
	// unitCached resolves through the result cache on a worker (splice on
	// hit, full render + fill on miss) and delivers at its turn.
	unitCached
)

// streamUnit is one plan segment prepared for streaming execution. All
// bounds and cache keys are computed on the caller goroutine before any
// worker starts: chunk-boundary alignment and fingerprinting walk shared
// readers that are not goroutine-safe.
type streamUnit struct {
	idx    int // segment index in the plan
	s      *plan.Segment
	kind   unitKind
	shards int
	chunks []*chunk // unitFrames / unitPackets

	// unitCached resolution, filled by its worker before done closes.
	key        string
	bounds     []int
	done       chan struct{}
	seg        *media.ResultSegment
	hit        bool
	err        error
	windowHeld bool

	span *obs.Span
}

// runStreamingPlan executes a multi-segment plan with presentation-order
// scheduling. It returns the first error; like the non-streaming shard
// loop it drains every started worker before returning, since workers
// fold stats into m on exit.
func runStreamingPlan(ctx context.Context, p *plan.Plan, w media.Sink, m *Metrics, o Options, fp *plan.Fingerprinter, readers *readerCache) error {
	gop := p.Checked.Output.GOP
	if gop <= 0 {
		gop = 48
	}
	units, err := buildStreamUnits(p, gop, o, fp, readers)
	if err != nil {
		return err
	}

	par := o.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	// sem caps concurrently rendering workers; window caps rendered but
	// undelivered chunks (each can hold up to a GOP of frames or packets
	// in memory). 2x parallelism keeps workers busy while delivery
	// catches up without letting a slow consumer buffer the whole tail.
	sem := make(chan struct{}, par)
	window := make(chan struct{}, 2*par)

	abort := make(chan struct{})
	var abortOnce sync.Once
	cancelStream := func() { abortOnce.Do(func() { close(abort) }) }
	var mu sync.Mutex // guards m across all units' workers
	schedDone := make(chan struct{})

	go func() {
		defer close(schedDone)
		for ui, u := range units {
			switch u.kind {
			case unitCopy:
				// Runs inline at delivery; nothing to schedule.
			case unitCached:
				if !streamAcquire(window, sem, abort) {
					abortStreamUnits(units, ui, 0)
					return
				}
				u.windowHeld = true
				go func(u *streamUnit) {
					defer func() { <-sem }() //v2v:nolint(sendblock) frees this worker's own buffered semaphore slot; never blocks
					defer close(u.done)
					u.seg, u.hit, u.err = resolveCachedSegment(ctx, p, u.s, u.key, u.bounds, gop, m, &mu, o, u.span)
				}(u)
			default:
				for ci, ch := range u.chunks {
					if !streamAcquire(window, sem, abort) {
						abortStreamUnits(units, ui, ci)
						return
					}
					ch.windowHeld = true
					go func(u *streamUnit, ch *chunk) {
						defer func() { <-sem }() //v2v:nolint(sendblock) frees this worker's own buffered semaphore slot; never blocks
						runChunkWorker(ctx, p, u.s, ch, gop, m, &mu, o, u.span, abort, u.kind == unitPackets)
					}(u, ch)
				}
			}
		}
	}()

	var firstErr error
	setErr := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
			cancelStream()
		}
	}
	for _, u := range units {
		if err := ctx.Err(); err != nil {
			setErr(err)
		}
		segStart := time.Now()
		sinkBefore := w.Stats()
		renderedBefore := m.FramesRendered
		resHitsBefore, resMissesBefore := m.ResultCacheHits, m.ResultCacheMisses

		switch u.kind {
		case unitCopy:
			if firstErr == nil {
				setErr(runCopyUnit(u, w, readers))
			}
		case unitFrames, unitPackets:
			for _, ch := range u.chunks {
				<-ch.done //v2v:nolint(sendblock) must-drain join: workers exit promptly on abort/ctx; skipping would race on m
				if ch.windowHeld {
					<-window //v2v:nolint(sendblock) frees the held window slot from a buffered channel; never blocks
				}
				if ch.err != nil {
					// errShardAborted only appears after cancelStream, so it
					// can never become firstErr (setErr is a no-op by then).
					setErr(fmt.Errorf("exec: shard [%d,%d): %w", ch.lo, ch.hi, ch.err))
					continue
				}
				if firstErr != nil {
					continue // drain remaining chunks, deliver nothing further
				}
				if u.kind == unitFrames {
					for _, fr := range ch.frames {
						err := w.WriteFrame(fr)
						fr.Release() // the sink's encoder consumed the pixels
						if err != nil {
							setErr(fmt.Errorf("exec: shard [%d,%d) deliver: %w", ch.lo, ch.hi, err))
							break
						}
						m.FramesRendered++
					}
				} else {
					for _, pkt := range ch.pkts {
						if err := w.WriteEncodedFrame(pkt.Key, pkt.Data); err != nil {
							setErr(fmt.Errorf("exec: shard [%d,%d) deliver: %w", ch.lo, ch.hi, err))
							break
						}
						m.FramesRendered++
					}
				}
			}
		case unitCached:
			<-u.done //v2v:nolint(sendblock) must-drain join: workers exit promptly on abort/ctx; skipping would race on m
			if u.windowHeld {
				<-window //v2v:nolint(sendblock) frees the held window slot from a buffered channel; never blocks
			}
			if u.err != nil {
				setErr(u.err)
			} else if firstErr == nil {
				if u.hit {
					m.ResultCacheHits++
					u.span.SetAttr("rescache", "hit")
				} else {
					m.ResultCacheMisses++
					u.span.SetAttr("rescache", "miss")
				}
				setErr(deliverResult(u.seg, w, m, u.hit))
			}
		}

		if firstErr == nil {
			// Per-unit actuals from sink deltas: the sink is written only
			// by this goroutine. Decode/filter stage walls and concealment
			// are deliberately left zero — segments render concurrently
			// here, so per-segment attribution of shared-recorder deltas
			// would be fiction (run totals are still exact; see
			// docs/STREAMING.md).
			sinkAfter := w.Stats()
			act := plan.SegmentActuals{
				Wall:              time.Since(segStart),
				FramesRendered:    m.FramesRendered - renderedBefore,
				FramesEncoded:     sinkAfter.FramesEncoded - sinkBefore.FramesEncoded,
				PacketsCopied:     sinkAfter.PacketsCopied - sinkBefore.PacketsCopied,
				BytesCopied:       sinkAfter.BytesCopied - sinkBefore.BytesCopied,
				ResultCacheHits:   m.ResultCacheHits - resHitsBefore,
				ResultCacheMisses: m.ResultCacheMisses - resMissesBefore,
				Shards:            u.shards,
			}
			m.Segments = append(m.Segments, act)
			u.span.SetAttr("frames_encoded", act.FramesEncoded)
			u.span.SetAttr("packets_copied", act.PacketsCopied)
			u.span.SetAttr("frames_rendered", act.FramesRendered)
			u.span.SetAttr("shards", act.Shards)
			if o.OnSegmentDone != nil {
				o.OnSegmentDone(u.idx)
			}
		} else {
			u.span.SetAttr("error", firstErr.Error())
		}
		u.span.End()
	}
	<-schedDone //v2v:nolint(sendblock) joins the scheduler, which exits promptly once abort is closed or units are exhausted
	return firstErr
}

// buildStreamUnits classifies every segment and precomputes chunk bounds
// and cache keys on the caller goroutine (shared readers and the
// fingerprinter are not safe to use from workers).
func buildStreamUnits(p *plan.Plan, gop int, o Options, fp *plan.Fingerprinter, readers *readerCache) ([]*streamUnit, error) {
	units := make([]*streamUnit, 0, len(p.Segments))
	for i, s := range p.Segments {
		u := &streamUnit{idx: i, s: s, shards: 1, span: o.Trace.StartSpan(fmt.Sprintf("segment[%d] %s", i, s.Kind))}
		u.span.SetAttr("kind", s.Kind.String())
		u.span.SetAttr("t_start", s.Times.Start.String())
		u.span.SetAttr("t_end", s.Times.End.String())
		u.span.SetAttr("streaming", true)
		switch s.Kind {
		case plan.SegCopy, plan.SegSmartCut:
			u.kind = unitCopy
		case plan.SegFrames:
			frames := s.FrameCount()
			shards := effectiveShards(s, o)
			u.shards = shards
			fillBounds := []int{0, frames}
			if shards > 1 {
				fillBounds = alignChunkBounds(chunkBounds(frames, shards, gop), s, readers)
			}
			if key, ok := cacheKey(fp, o, s, shards); ok {
				u.kind = unitCached
				u.key = key
				u.bounds = fillBounds
				u.done = make(chan struct{})
				break
			}
			var bounds []int
			if shards > 1 {
				u.kind = unitPackets
				bounds = fillBounds
			} else {
				u.kind = unitFrames
				if frames > 0 {
					// GOP-sized chunks: the finest granularity whose raw
					// frames still encode identically through the sink's
					// continuous encoder (cancellation checks, keyframe
					// cadence, and chunk memory all align to the GOP).
					bounds = chunkBounds(frames, (frames+gop-1)/gop, gop)
				}
			}
			for bi := 0; bi+1 < len(bounds); bi++ {
				u.chunks = append(u.chunks, &chunk{lo: bounds[bi], hi: bounds[bi+1], done: make(chan struct{})})
			}
		default:
			u.span.End()
			return nil, fmt.Errorf("exec: unknown segment kind %v", s.Kind)
		}
		units = append(units, u)
	}
	return units, nil
}

func cacheKey(fp *plan.Fingerprinter, o Options, s *plan.Segment, shards int) (string, bool) {
	if o.ResultCache == nil || fp == nil || s.FrameCount() == 0 {
		return "", false
	}
	return fp.Segment(s, shards)
}

// runCopyUnit executes a copy or smart-cut segment inline on the delivery
// goroutine, exactly as the non-streaming path does.
func runCopyUnit(u *streamUnit, w media.Sink, readers *readerCache) error {
	r, err := readers.get(u.s.Video)
	if err != nil {
		return err
	}
	switch u.s.Kind {
	case plan.SegCopy:
		if err := media.CopyRange(w, r, u.s.From, u.s.To); err != nil {
			return fmt.Errorf("exec: copy segment: %w", err)
		}
	default: // plan.SegSmartCut
		if _, _, err := media.SmartCut(w, r, u.s.From, u.s.To); err != nil {
			return fmt.Errorf("exec: smart cut segment: %w", err)
		}
	}
	return nil
}

// streamAcquire takes one delivery-window token then one parallelism
// token, bailing out (and restoring the window token) if the stream
// aborts while waiting. Returns false on abort.
func streamAcquire(window, sem chan struct{}, abort <-chan struct{}) bool {
	select {
	case window <- struct{}{}:
	case <-abort:
		return false
	}
	select {
	case sem <- struct{}{}:
		return true
	case <-abort:
		<-window
		return false
	}
}

// abortStreamUnits marks every not-yet-started chunk and cached unit from
// (ui, ci) onward as aborted so the delivery loop's drain completes
// immediately. Their windowHeld stays false: no token to return.
func abortStreamUnits(units []*streamUnit, ui, ci int) {
	for i := ui; i < len(units); i++ {
		u := units[i]
		if u.kind == unitCached && !u.windowHeld {
			u.err = errShardAborted
			close(u.done)
			continue
		}
		start := 0
		if i == ui {
			start = ci
		}
		for j := start; j < len(u.chunks); j++ {
			u.chunks[j].err = errShardAborted
			close(u.chunks[j].done)
		}
	}
}
