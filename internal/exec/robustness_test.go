package exec

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"v2v/internal/check"
	"v2v/internal/container"
	"v2v/internal/faults"
	"v2v/internal/media"
	"v2v/internal/plan"
	"v2v/internal/vql"
)

// copyFixture clones the shared test video so corruption tests can damage
// their own copy.
func copyFixture(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(fxVid)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "damaged.vmf")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// buildPlanFor is buildPlan over an arbitrary video path.
func buildPlanFor(t *testing.T, vid, body string, optimize bool) (*plan.Plan, error) {
	t.Helper()
	src := fmt.Sprintf(`
		timedomain range(0, 2, 1/24);
		videos { v: %q; }
		%s`, vid, body)
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := check.Check(s, check.Options{})
	if err != nil {
		return nil, err
	}
	p, err := plan.Build(c)
	if err != nil {
		return nil, err
	}
	if optimize {
		// Minimal hand-optimization for the copy path: the relevant plan
		// shapes are produced in the table test directly.
		_ = optimize
	}
	return p, nil
}

// packetRegion locates packet i's byte range in a pristine VMF file.
func packetRegion(t *testing.T, path string, i int) (off, size int64) {
	t.Helper()
	r, err := container.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec := r.Record(i)
	return rec.Offset, int64(rec.Size)
}

// indexOffset reads the footer's index offset.
func indexOffset(t *testing.T, path string) int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	var foot [16]byte
	if _, err := f.ReadAt(foot[:], st.Size()-16); err != nil {
		t.Fatal(err)
	}
	return int64(binary.LittleEndian.Uint64(foot[:8]))
}

// TestCorruptRegions flips bytes in every structural region of a VMF file
// and checks the promised behavior: header and index damage fail cleanly
// in both modes (structural corruption is never concealed); packet payload
// damage fails fast in strict mode but synthesizes a full-length result in
// concealment mode, with the concealed frames counted and visible in
// EXPLAIN ANALYZE.
func TestCorruptRegions(t *testing.T) {
	const seed = 42
	bodies := map[string]string{
		"render": `render(t) = grade(v[t], 5, 1.0, 1.0);`,
		"copy":   `render(t) = v[t];`,
	}
	for _, region := range []string{"header", "index", "payload"} {
		for shape, body := range bodies {
			t.Run(region+"/"+shape, func(t *testing.T) {
				vid := copyFixture(t)
				switch region {
				case "header":
					// Inside the JSON stream header, after magic + length.
					if err := faults.CorruptRange(vid, 9, 4, seed); err != nil {
						t.Fatal(err)
					}
				case "index":
					// The offset field of the first index record.
					if err := faults.CorruptRange(vid, indexOffset(t, vid)+8, 8, seed); err != nil {
						t.Fatal(err)
					}
				case "payload":
					off, size := packetRegion(t, vid, 10)
					if size < 4 {
						t.Fatalf("packet 10 only %d bytes", size)
					}
					if err := faults.CorruptRange(vid, off+2, 2, seed); err != nil {
						t.Fatal(err)
					}
				}

				if region != "payload" {
					// Structural damage: the container must refuse to open, so
					// plan construction already fails — identically with and
					// without concealment, which never masks structural errors.
					if _, err := buildPlanFor(t, vid, body, false); err == nil {
						t.Fatalf("corrupt %s region: plan over damaged file should fail", region)
					}
					return
				}

				p, err := buildPlanFor(t, vid, body, false)
				if err != nil {
					t.Fatalf("payload damage must not break open/plan: %v", err)
				}
				if shape == "copy" {
					// Force the stream-copy path over the damaged packet.
					p.Segments[0].Kind = plan.SegCopy
					p.Segments[0].Video = "v"
					p.Segments[0].From = 0
					p.Segments[0].To = 48
				}

				// Strict: fail fast with the typed corruption error.
				out := filepath.Join(t.TempDir(), "strict.vmf")
				_, err = Execute(context.Background(), p, out, Options{})
				if err == nil {
					t.Fatal("strict mode should fail on a corrupt packet")
				}
				if !errors.Is(err, container.ErrCorruptPacket) && !media.Concealable(err) {
					t.Fatalf("strict error not in the corruption class: %v", err)
				}
				if _, serr := os.Stat(out); !errors.Is(serr, os.ErrNotExist) {
					t.Fatalf("failed run left output at %s", out)
				}
				if _, serr := os.Stat(out + ".tmp"); !errors.Is(serr, os.ErrNotExist) {
					t.Fatalf("failed run left temp file at %s.tmp", out)
				}

				// Concealment: full-length output, concealed frames counted.
				out2 := filepath.Join(t.TempDir(), "conceal.vmf")
				m, err := Execute(context.Background(), p, out2, Options{Conceal: true})
				if err != nil {
					t.Fatalf("concealment mode failed: %v", err)
				}
				if m.TotalConcealed() == 0 {
					t.Error("concealment reported zero concealed frames")
				}
				r, err := media.OpenReader(out2)
				if err != nil {
					t.Fatalf("concealed output unreadable: %v", err)
				}
				defer r.Close()
				if r.NumFrames() != 48 {
					t.Errorf("concealed output has %d frames, want 48", r.NumFrames())
				}
				for i := 0; i < r.NumFrames(); i++ {
					if _, err := r.FrameAtIndex(i); err != nil {
						t.Fatalf("concealed output frame %d undecodable: %v", i, err)
					}
				}
				if len(m.Segments) == 0 || m.Segments[0].Concealed == 0 {
					t.Errorf("segment actuals missing concealed count: %+v", m.Segments)
				}
				if s := p.ExplainAnalyze(m.Segments); !strings.Contains(s, "concealed=") {
					t.Errorf("EXPLAIN ANALYZE missing concealed annotation:\n%s", s)
				}
			})
		}
	}
}

// cancelAfter is a context whose Err() flips to Canceled after n checks —
// deterministic mid-synthesis cancellation without racing a timer.
type cancelAfter struct {
	context.Context
	mu sync.Mutex
	n  int
}

func (c *cancelAfter) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	if c.n < 0 {
		return context.Canceled
	}
	return nil
}

func TestCancelMidSynthesisLeavesNoOutput(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`, false)
	dir := t.TempDir()
	out := filepath.Join(dir, "o.vmf")
	// Survive the pre-segment check and the first GOP-boundary check, then
	// cancel at the second GOP boundary — mid-segment by construction.
	ctx := &cancelAfter{Context: context.Background(), n: 2}
	m, err := Execute(ctx, p, out, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Errorf("canceled run returned metrics %+v", m)
	}
	ents, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("canceled run left files behind: %v", names)
	}
}

func TestCancelAlreadyExpiredFailsBeforeWork(t *testing.T) {
	p := buildPlan(t, `render(t) = v[t];`, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	out := filepath.Join(dir, "o.vmf")
	m, err := Execute(ctx, p, out, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Errorf("metrics = %+v, want nil", m)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Errorf("expired-context run created files: %v", ents)
	}
}

func TestCancelShardedSynthesis(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`, false)
	p.Segments[0].Kind = plan.SegFrames
	p.Segments[0].Shards = 2
	dir := t.TempDir()
	out := filepath.Join(dir, "o.vmf")
	ctx := &cancelAfter{Context: context.Background(), n: 2}
	_, err := Execute(ctx, p, out, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Errorf("canceled sharded run left files: %v", ents)
	}
}

func TestShardPanicRecoveredCountsMetric(t *testing.T) {
	registerPanicUDF("testexec_panic2")
	p := buildPlan(t, `render(t) = testexec_panic2(v[t]);`, false)
	p.Segments[0].Shards = 2
	before := panicsRecovered.Value()
	_, err := Execute(context.Background(), p, filepath.Join(t.TempDir(), "o.vmf"), Options{})
	if err == nil {
		t.Fatal("panicking shard should fail the run")
	}
	// renderAt's own recover converts transform panics, so the error
	// mentions the panic either way; the worker backstop metric only fires
	// for panics outside renderAt. Assert the error, and that the metric
	// never went backwards.
	if !strings.Contains(err.Error(), "panic") {
		t.Errorf("error does not mention panic: %v", err)
	}
	if panicsRecovered.Value() < before {
		t.Error("panicsRecovered went backwards")
	}
}

// TestShardWorkerPanicBackstop panics outside renderAt (in the encoder
// config path) by corrupting the plan's output dimensions, proving the
// worker-level recover converts it into an error instead of crashing the
// process.
func TestShardWorkerPanicBackstop(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`, false)
	p.Segments[0].Shards = 2
	// A nil root makes newSegmentRunner panic inside the worker goroutine,
	// before renderAt's recover is in scope.
	p.Segments[0].Root = nil
	before := panicsRecovered.Value()
	_, err := Execute(context.Background(), p, filepath.Join(t.TempDir(), "o.vmf"), Options{})
	if err == nil {
		t.Fatal("worker panic should surface as an error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error = %v, want shard panic message", err)
	}
	if got := panicsRecovered.Value(); got <= before {
		t.Errorf("panicsRecovered = %d, want > %d", got, before)
	}
}

// transientOnceFile fails the third ReadAt (the first packet read — open
// itself uses ReadAt twice, for footer and index) with a retryable error,
// exactly once per file.
type transientOnceFile struct {
	container.File
	mu      sync.Mutex
	readAts int
	fired   bool
}

type errTransientTest struct{}

func (errTransientTest) Error() string   { return "test: transient read (injected)" }
func (errTransientTest) Transient() bool { return true }

func (f *transientOnceFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	f.readAts++
	fire := !f.fired && f.readAts >= 3
	if fire {
		f.fired = true
	}
	f.mu.Unlock()
	if fire {
		return 0, errTransientTest{}
	}
	return f.File.ReadAt(p, off)
}

// TestTransientReadsRetried proves the container's bounded retry absorbs a
// single EAGAIN-class fault: the synthesis succeeds and the retry counter
// moves.
func TestTransientReadsRetried(t *testing.T) {
	container.SetFileWrapper(func(_ string, f container.File) container.File {
		return &transientOnceFile{File: f}
	})
	defer container.SetFileWrapper(nil)
	p := buildPlan(t, `render(t) = v[t];`, false)
	before := transientRetries.Value()
	out := filepath.Join(t.TempDir(), "o.vmf")
	if _, err := Execute(context.Background(), p, out, Options{}); err != nil {
		t.Fatalf("one transient fault should be retried away, got: %v", err)
	}
	if got := transientRetries.Value(); got <= before {
		t.Errorf("transientRetries = %d, want > %d", got, before)
	}
}

// TestStreamSinkCancelOmitsEOS checks the streaming contract: a canceled
// stream ends without the end-of-stream marker so the consumer sees
// truncation, not a clean end.
func TestStreamSinkCancelOmitsEOS(t *testing.T) {
	p := buildPlan(t, `render(t) = grade(v[t], 5, 1.0, 1.0);`, false)
	var buf strings.Builder
	sink, err := media.NewStreamWriter(&nopWriter{&buf}, p.Checked.Output)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &cancelAfter{Context: context.Background(), n: 2}
	if _, err := ExecuteTo(ctx, p, sink, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	sr, err := media.NewStreamReader(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, err := sr.NextPacket()
		if err == io.EOF {
			t.Fatal("canceled stream ended with a clean EOS marker")
		}
		if err != nil {
			break // truncation error: the correct signal
		}
	}
}

type nopWriter struct{ b *strings.Builder }

func (w *nopWriter) Write(p []byte) (int, error) { return w.b.Write(p) }
