package cliutil

import (
	"strings"
	"testing"
	"time"
)

func TestValidateCacheMB(t *testing.T) {
	for _, tc := range []struct {
		mb      int
		wantErr string
	}{
		{0, ""},
		{-1, ""},
		{512, ""},
		{MaxCacheMB, ""},
		{-2, "use -1 to disable"},
		{MaxCacheMB + 1, "exceeds"},
	} {
		err := ValidateCacheMB("-gop-cache-mb", tc.mb)
		checkErr(t, "ValidateCacheMB", tc.mb, err, tc.wantErr)
	}
}

func TestValidateBudgetMB(t *testing.T) {
	for _, tc := range []struct {
		mb      int
		wantErr string
	}{
		{0, ""},
		{1024, ""},
		{-1, "negative budget"},
		{MaxCacheMB + 1, "exceeds"},
	} {
		err := ValidateBudgetMB("-cache-budget-mb", tc.mb)
		checkErr(t, "ValidateBudgetMB", tc.mb, err, tc.wantErr)
	}
}

func TestValidateTimeout(t *testing.T) {
	for _, tc := range []struct {
		d       time.Duration
		wantErr string
	}{
		{0, ""},
		{time.Minute, ""},
		{MaxTimeout, ""},
		{-time.Second, "negative duration"},
		{MaxTimeout + time.Second, "exceeds"},
	} {
		err := ValidateTimeout("-timeout", tc.d)
		checkErr(t, "ValidateTimeout", tc.d, err, tc.wantErr)
	}
}

func TestValidateParallel(t *testing.T) {
	for _, tc := range []struct {
		n       int
		wantErr string
	}{
		{0, ""},
		{16, ""},
		{MaxParallel, ""},
		{-1, "negative parallelism"},
		{MaxParallel + 1, "exceeds"},
	} {
		err := ValidateParallel("-parallel", tc.n)
		checkErr(t, "ValidateParallel", tc.n, err, tc.wantErr)
	}
}

func checkErr(t *testing.T, fn string, arg any, err error, want string) {
	t.Helper()
	if want == "" {
		if err != nil {
			t.Errorf("%s(%v) = %v, want nil", fn, arg, err)
		}
		return
	}
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("%s(%v) = %v, want error containing %q", fn, arg, err, want)
	}
}

func TestValidateMillis(t *testing.T) {
	for _, tc := range []struct {
		ms      int
		wantErr string
	}{
		{0, ""},
		{250, ""},
		{-1, "negative threshold"},
		{int(MaxTimeout/time.Millisecond) + 1, "exceeds"},
	} {
		err := ValidateMillis("-slow-query-ms", tc.ms)
		checkErr(t, "ValidateMillis", tc.ms, err, tc.wantErr)
	}
}

func TestValidateRingSize(t *testing.T) {
	for _, tc := range []struct {
		n       int
		wantErr string
	}{
		{0, ""},
		{256, ""},
		{MaxRingSize, ""},
		{-1, "negative size"},
		{MaxRingSize + 1, "exceeds"},
	} {
		err := ValidateRingSize("-flight-recorder-size", tc.n)
		checkErr(t, "ValidateRingSize", tc.n, err, tc.wantErr)
	}
}

func TestValidateQueueDepth(t *testing.T) {
	for _, tc := range []struct {
		n       int
		wantErr string
	}{
		{0, ""},
		{64, ""},
		{MaxQueueDepth, ""},
		{-1, "negative queue depth"},
		{MaxQueueDepth + 1, "exceeds"},
	} {
		err := ValidateQueueDepth("-max-queue", tc.n)
		checkErr(t, "ValidateQueueDepth", tc.n, err, tc.wantErr)
	}
}

func TestValidateBufferKB(t *testing.T) {
	for _, tc := range []struct {
		kb      int
		wantErr string
	}{
		{0, ""},
		{256, ""},
		{MaxBufferKB, ""},
		{-1, "negative buffer size"},
		{MaxBufferKB + 1, "KiB, not bytes"},
	} {
		err := ValidateBufferKB("-stream-buffer-kb", tc.kb)
		checkErr(t, "ValidateBufferKB", tc.kb, err, tc.wantErr)
	}
}

func TestParseTenantWeights(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		want    map[string]float64
		wantErr string
	}{
		{"", nil, ""},
		{"gold=3,free=1", map[string]float64{"gold": 3, "free": 1}, ""},
		{" gold = 3 , free = 0.5 ", map[string]float64{"gold": 3, "free": 0.5}, ""},
		{"gold=3,", map[string]float64{"gold": 3}, ""},
		{"gold", nil, "not tenant=weight"},
		{"=3", nil, "not tenant=weight"},
		{"gold=abc", nil, "non-numeric"},
		{"gold=0", nil, "out of range"},
		{"gold=-1", nil, "out of range"},
		{"gold=NaN", nil, "out of range"},
		{"gold=1e30", nil, "out of range"},
		{"gold=3,gold=1", nil, "listed twice"},
		{",", nil, "no tenant=weight pairs"},
	} {
		got, err := ParseTenantWeights("-tenant-weight", tc.spec)
		checkErr(t, "ParseTenantWeights", tc.spec, err, tc.wantErr)
		if tc.wantErr != "" {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseTenantWeights(%q) = %v, want %v", tc.spec, got, tc.want)
			continue
		}
		for k, v := range tc.want {
			if got[k] != v {
				t.Errorf("ParseTenantWeights(%q)[%q] = %v, want %v", tc.spec, k, got[k], v)
			}
		}
	}
}

func TestValidateLogFormat(t *testing.T) {
	for _, tc := range []struct {
		format  string
		wantErr string
	}{
		{"", ""},
		{"text", ""},
		{"json", ""},
		{"xml", "unknown format"},
	} {
		err := ValidateLogFormat("-log-format", tc.format)
		checkErr(t, "ValidateLogFormat", tc.format, err, tc.wantErr)
	}
}
