// Package cliutil holds flag validation shared by the v2v command-line
// binaries. The cache-size and timeout flags all follow one convention
// — 0 means "auto/default", -1 means "disabled" where disabling is
// meaningful — and anything outside that convention (other negatives,
// absurd magnitudes) is rejected up front with a clear error instead of
// silently misbehaving deep inside the engine.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

const (
	// MaxCacheMB caps cache-size flags at 1 TiB expressed in MiB; a
	// larger value is almost certainly a unit mistake (bytes passed
	// where MiB were expected).
	MaxCacheMB = 1 << 20
	// MaxTimeout caps duration flags; a synthesis or drain window
	// beyond a day is a unit mistake.
	MaxTimeout = 24 * time.Hour
	// MaxParallel caps shard parallelism.
	MaxParallel = 4096
	// MaxRingSize caps ring-buffer size flags (the flight recorder);
	// anything larger is a unit mistake.
	MaxRingSize = 1 << 16
	// MaxQueueDepth caps the admission queue depth flag; queueing more
	// requests than this only adds latency, never goodput.
	MaxQueueDepth = 1 << 16
	// MaxTenantWeight caps individual tenant fairness weights.
	MaxTenantWeight = 1 << 20
	// MaxBufferKB caps per-stream buffer flags at 1 GiB expressed in KiB;
	// a larger value is almost certainly a unit mistake (bytes passed
	// where KiB were expected).
	MaxBufferKB = 1 << 20
)

// ValidateCacheMB checks a cache-size flag where -1 disables the cache
// and 0 selects the default/auto size.
func ValidateCacheMB(name string, mb int) error {
	switch {
	case mb < -1:
		return fmt.Errorf("%s: %d is not a size; use -1 to disable, 0 for the default", name, mb)
	case mb > MaxCacheMB:
		return fmt.Errorf("%s: %d MiB exceeds the %d MiB (1 TiB) cap; the value is in MiB, not bytes", name, mb, MaxCacheMB)
	}
	return nil
}

// ValidateBudgetMB checks a shared-budget flag where 0 means "derive
// from the per-cache budgets" and negatives have no meaning.
func ValidateBudgetMB(name string, mb int) error {
	switch {
	case mb < 0:
		return fmt.Errorf("%s: negative budget %d; use 0 to derive it from the per-cache budgets", name, mb)
	case mb > MaxCacheMB:
		return fmt.Errorf("%s: %d MiB exceeds the %d MiB (1 TiB) cap; the value is in MiB, not bytes", name, mb, MaxCacheMB)
	}
	return nil
}

// ValidateTimeout checks a duration flag where 0 means "no limit".
func ValidateTimeout(name string, d time.Duration) error {
	switch {
	case d < 0:
		return fmt.Errorf("%s: negative duration %s; use 0 for no limit", name, d)
	case d > MaxTimeout:
		return fmt.Errorf("%s: %s exceeds the %s cap", name, d, MaxTimeout)
	}
	return nil
}

// ValidateParallel checks a worker-count flag where 0 means
// "GOMAXPROCS".
func ValidateParallel(name string, n int) error {
	switch {
	case n < 0:
		return fmt.Errorf("%s: negative parallelism %d; use 0 for GOMAXPROCS", name, n)
	case n > MaxParallel:
		return fmt.Errorf("%s: parallelism %d exceeds the %d cap", name, n, MaxParallel)
	}
	return nil
}

// ValidateMillis checks a millisecond-threshold flag where 0 disables the
// threshold. The cap matches MaxTimeout.
func ValidateMillis(name string, ms int) error {
	switch {
	case ms < 0:
		return fmt.Errorf("%s: negative threshold %d; use 0 to disable", name, ms)
	case time.Duration(ms)*time.Millisecond > MaxTimeout:
		return fmt.Errorf("%s: %dms exceeds the %s cap", name, ms, MaxTimeout)
	}
	return nil
}

// ValidateRingSize checks a ring-buffer size flag where 0 selects the
// default capacity.
func ValidateRingSize(name string, n int) error {
	switch {
	case n < 0:
		return fmt.Errorf("%s: negative size %d; use 0 for the default", name, n)
	case n > MaxRingSize:
		return fmt.Errorf("%s: size %d exceeds the %d cap", name, n, MaxRingSize)
	}
	return nil
}

// ValidateBufferKB checks a per-stream buffer-size flag where 0 selects
// the default size.
func ValidateBufferKB(name string, kb int) error {
	switch {
	case kb < 0:
		return fmt.Errorf("%s: negative buffer size %d; use 0 for the default", name, kb)
	case kb > MaxBufferKB:
		return fmt.Errorf("%s: %d KiB exceeds the %d KiB (1 GiB) cap; the value is in KiB, not bytes", name, kb, MaxBufferKB)
	}
	return nil
}

// ValidateQueueDepth checks an admission queue-depth flag where 0 selects
// the default depth.
func ValidateQueueDepth(name string, n int) error {
	switch {
	case n < 0:
		return fmt.Errorf("%s: negative queue depth %d; use 0 for the default", name, n)
	case n > MaxQueueDepth:
		return fmt.Errorf("%s: queue depth %d exceeds the %d cap", name, n, MaxQueueDepth)
	}
	return nil
}

// ParseTenantWeights parses a -tenant-weight flag of the form
// "name=weight,name=weight" (e.g. "gold=3,free=1") into a weight map.
// Weights must be positive numbers; tenant names must be non-empty and
// unique. An empty flag value returns an empty (nil) map: every tenant
// then gets weight 1.
func ParseTenantWeights(name, spec string) (map[string]float64, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tenant, weight, ok := strings.Cut(part, "=")
		tenant = strings.TrimSpace(tenant)
		if !ok || tenant == "" {
			return nil, fmt.Errorf("%s: %q is not tenant=weight", name, part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(weight), 64)
		if err != nil {
			return nil, fmt.Errorf("%s: %q has a non-numeric weight", name, part)
		}
		if w <= 0 || w != w || w > MaxTenantWeight {
			return nil, fmt.Errorf("%s: weight %v for tenant %q out of range (0, %d]", name, w, tenant, MaxTenantWeight)
		}
		if _, dup := out[tenant]; dup {
			return nil, fmt.Errorf("%s: tenant %q listed twice", name, tenant)
		}
		out[tenant] = w
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: %q contains no tenant=weight pairs", name, spec)
	}
	return out, nil
}

// ValidateLogFormat checks a -log-format flag; "" and "text" select the
// human-readable handler, "json" selects JSON lines.
func ValidateLogFormat(name, format string) error {
	switch format {
	case "", "text", "json":
		return nil
	}
	return fmt.Errorf("%s: unknown format %q; use text or json", name, format)
}
