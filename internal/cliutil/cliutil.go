// Package cliutil holds flag validation shared by the v2v command-line
// binaries. The cache-size and timeout flags all follow one convention
// — 0 means "auto/default", -1 means "disabled" where disabling is
// meaningful — and anything outside that convention (other negatives,
// absurd magnitudes) is rejected up front with a clear error instead of
// silently misbehaving deep inside the engine.
package cliutil

import (
	"fmt"
	"time"
)

const (
	// MaxCacheMB caps cache-size flags at 1 TiB expressed in MiB; a
	// larger value is almost certainly a unit mistake (bytes passed
	// where MiB were expected).
	MaxCacheMB = 1 << 20
	// MaxTimeout caps duration flags; a synthesis or drain window
	// beyond a day is a unit mistake.
	MaxTimeout = 24 * time.Hour
	// MaxParallel caps shard parallelism.
	MaxParallel = 4096
	// MaxRingSize caps ring-buffer size flags (the flight recorder);
	// anything larger is a unit mistake.
	MaxRingSize = 1 << 16
)

// ValidateCacheMB checks a cache-size flag where -1 disables the cache
// and 0 selects the default/auto size.
func ValidateCacheMB(name string, mb int) error {
	switch {
	case mb < -1:
		return fmt.Errorf("%s: %d is not a size; use -1 to disable, 0 for the default", name, mb)
	case mb > MaxCacheMB:
		return fmt.Errorf("%s: %d MiB exceeds the %d MiB (1 TiB) cap; the value is in MiB, not bytes", name, mb, MaxCacheMB)
	}
	return nil
}

// ValidateBudgetMB checks a shared-budget flag where 0 means "derive
// from the per-cache budgets" and negatives have no meaning.
func ValidateBudgetMB(name string, mb int) error {
	switch {
	case mb < 0:
		return fmt.Errorf("%s: negative budget %d; use 0 to derive it from the per-cache budgets", name, mb)
	case mb > MaxCacheMB:
		return fmt.Errorf("%s: %d MiB exceeds the %d MiB (1 TiB) cap; the value is in MiB, not bytes", name, mb, MaxCacheMB)
	}
	return nil
}

// ValidateTimeout checks a duration flag where 0 means "no limit".
func ValidateTimeout(name string, d time.Duration) error {
	switch {
	case d < 0:
		return fmt.Errorf("%s: negative duration %s; use 0 for no limit", name, d)
	case d > MaxTimeout:
		return fmt.Errorf("%s: %s exceeds the %s cap", name, d, MaxTimeout)
	}
	return nil
}

// ValidateParallel checks a worker-count flag where 0 means
// "GOMAXPROCS".
func ValidateParallel(name string, n int) error {
	switch {
	case n < 0:
		return fmt.Errorf("%s: negative parallelism %d; use 0 for GOMAXPROCS", name, n)
	case n > MaxParallel:
		return fmt.Errorf("%s: parallelism %d exceeds the %d cap", name, n, MaxParallel)
	}
	return nil
}

// ValidateMillis checks a millisecond-threshold flag where 0 disables the
// threshold. The cap matches MaxTimeout.
func ValidateMillis(name string, ms int) error {
	switch {
	case ms < 0:
		return fmt.Errorf("%s: negative threshold %d; use 0 to disable", name, ms)
	case time.Duration(ms)*time.Millisecond > MaxTimeout:
		return fmt.Errorf("%s: %dms exceeds the %s cap", name, ms, MaxTimeout)
	}
	return nil
}

// ValidateRingSize checks a ring-buffer size flag where 0 selects the
// default capacity.
func ValidateRingSize(name string, n int) error {
	switch {
	case n < 0:
		return fmt.Errorf("%s: negative size %d; use 0 for the default", name, n)
	case n > MaxRingSize:
		return fmt.Errorf("%s: size %d exceeds the %d cap", name, n, MaxRingSize)
	}
	return nil
}

// ValidateLogFormat checks a -log-format flag; "" and "text" select the
// human-readable handler, "json" selects JSON lines.
func ValidateLogFormat(name, format string) error {
	switch format {
	case "", "text", "json":
		return nil
	}
	return fmt.Errorf("%s: unknown format %q; use text or json", name, format)
}
