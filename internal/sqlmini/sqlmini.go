// Package sqlmini is a tiny in-memory relational engine: typed tables and
// a SELECT subset sufficient for the V2V data-join path the paper sketches
// ("SELECT timestamp, frame_objects FROM video_objects WHERE ...").
//
// It exists so the repository exercises the same code path the paper's
// system does when a VDBMS feeds relational query results into a synthesis
// spec: rows become time-indexed data arrays (package data), optionally
// materialized in time-bounded portions.
//
// Supported SQL:
//
//	SELECT col [, col ...] FROM table
//	  [WHERE expr]         -- comparisons, AND/OR/NOT, parentheses
//	  [ORDER BY col [ASC|DESC]]
//	  [LIMIT n]
//
// Literals: integers, decimals, exact rationals written num/den (e.g.
// 301/30), single-quoted strings, TRUE/FALSE, NULL.
package sqlmini

import (
	"fmt"
	"sort"
	"strings"

	"v2v/internal/data"
	"v2v/internal/raster"
	"v2v/internal/rational"
)

// ColType enumerates column types.
type ColType uint8

const (
	// TypeRat is an exact rational, used for timestamps.
	TypeRat ColType = iota
	// TypeBool is a boolean.
	TypeBool
	// TypeNum is a float64.
	TypeNum
	// TypeStr is a string.
	TypeStr
	// TypeBoxes is a list of object bounding boxes.
	TypeBoxes
)

// String returns the SQL-ish type name.
func (t ColType) String() string {
	switch t {
	case TypeRat:
		return "RAT"
	case TypeBool:
		return "BOOL"
	case TypeNum:
		return "NUM"
	case TypeStr:
		return "TEXT"
	case TypeBoxes:
		return "BOXES"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Cell is one typed value. Null is represented by IsNull regardless of the
// declared column type.
type Cell struct {
	Type   ColType
	IsNull bool
	Rat    rational.Rat
	Bool   bool
	Num    float64
	Str    string
	Boxes  []raster.Box
}

// Cell constructors.
func RatCell(r rational.Rat) Cell   { return Cell{Type: TypeRat, Rat: r} }
func BoolCell(b bool) Cell          { return Cell{Type: TypeBool, Bool: b} }
func NumCell(n float64) Cell        { return Cell{Type: TypeNum, Num: n} }
func StrCell(s string) Cell         { return Cell{Type: TypeStr, Str: s} }
func BoxesCell(b []raster.Box) Cell { return Cell{Type: TypeBoxes, Boxes: b} }
func NullCell(t ColType) Cell       { return Cell{Type: t, IsNull: true} }

// Value converts the cell into a data.Value for array materialization.
// Rational cells convert to numbers (callers needing exactness keep the
// Rat, which materialization does for the timestamp column).
func (c Cell) Value() data.Value {
	if c.IsNull {
		return data.Null()
	}
	switch c.Type {
	case TypeRat:
		return data.NumVal(c.Rat.Float())
	case TypeBool:
		return data.BoolVal(c.Bool)
	case TypeNum:
		return data.NumVal(c.Num)
	case TypeStr:
		return data.StrVal(c.Str)
	case TypeBoxes:
		return data.BoxesVal(c.Boxes)
	default:
		return data.Null()
	}
}

// String renders the cell for result tables.
func (c Cell) String() string {
	if c.IsNull {
		return "NULL"
	}
	switch c.Type {
	case TypeRat:
		return c.Rat.String()
	case TypeBool:
		return fmt.Sprintf("%t", c.Bool)
	case TypeNum:
		return fmt.Sprintf("%g", c.Num)
	case TypeStr:
		return c.Str
	case TypeBoxes:
		return fmt.Sprintf("boxes(%d)", len(c.Boxes))
	default:
		return "?"
	}
}

// Column declares one table column.
type Column struct {
	Name string
	Type ColType
}

// Table is an ordered collection of typed rows.
type Table struct {
	Name string
	Cols []Column
	Rows [][]Cell
}

func (t *Table) colIndex(name string) (int, bool) {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i, true
		}
	}
	return -1, false
}

// DB is an in-memory database. Not safe for concurrent mutation.
type DB struct {
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// CreateTable registers an empty table.
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	key := strings.ToLower(name)
	if _, dup := db.tables[key]; dup {
		return nil, fmt.Errorf("sqlmini: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqlmini: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		if lc == "" || seen[lc] {
			return nil, fmt.Errorf("sqlmini: bad or duplicate column %q", c.Name)
		}
		seen[lc] = true
	}
	t := &Table{Name: name, Cols: cols}
	db.tables[key] = t
	return t, nil
}

// Table returns a registered table.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Insert appends a row, checking arity and types (null cells are accepted
// for any declared type).
func (db *DB) Insert(table string, row []Cell) error {
	t, ok := db.Table(table)
	if !ok {
		return fmt.Errorf("sqlmini: no table %q", table)
	}
	if len(row) != len(t.Cols) {
		return fmt.Errorf("sqlmini: %q wants %d columns, got %d", table, len(t.Cols), len(row))
	}
	for i, c := range row {
		if !c.IsNull && c.Type != t.Cols[i].Type {
			return fmt.Errorf("sqlmini: column %q wants %v, got %v", t.Cols[i].Name, t.Cols[i].Type, c.Type)
		}
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// Result is a query result: named columns and rows.
type Result struct {
	Cols []Column
	Rows [][]Cell
}

// Query parses and executes a SELECT statement.
func (db *DB) Query(sql string) (*Result, error) {
	stmt, err := parseSelect(sql)
	if err != nil {
		return nil, err
	}
	return db.exec(stmt)
}

func (db *DB) exec(s *selectStmt) (*Result, error) {
	t, ok := db.Table(s.table)
	if !ok {
		return nil, fmt.Errorf("sqlmini: no table %q", s.table)
	}
	// Resolve projection.
	var outCols []Column
	var colIdx []int
	if s.star {
		outCols = t.Cols
		colIdx = make([]int, len(t.Cols))
		for i := range colIdx {
			colIdx[i] = i
		}
	} else {
		for _, name := range s.cols {
			i, ok := t.colIndex(name)
			if !ok {
				return nil, fmt.Errorf("sqlmini: no column %q in %q", name, s.table)
			}
			outCols = append(outCols, t.Cols[i])
			colIdx = append(colIdx, i)
		}
	}
	// Filter.
	var kept [][]Cell
	for _, row := range t.Rows {
		if s.where != nil {
			v, err := s.where.eval(t, row)
			if err != nil {
				return nil, err
			}
			if !v.truthy() {
				continue
			}
		}
		kept = append(kept, row)
	}
	// Order.
	if s.orderBy != "" {
		oi, ok := t.colIndex(s.orderBy)
		if !ok {
			return nil, fmt.Errorf("sqlmini: no column %q in %q", s.orderBy, s.table)
		}
		sort.SliceStable(kept, func(i, j int) bool {
			c := compareCells(kept[i][oi], kept[j][oi])
			if s.desc {
				return c > 0
			}
			return c < 0
		})
	}
	// Limit.
	if s.limit >= 0 && len(kept) > s.limit {
		kept = kept[:s.limit]
	}
	// Project.
	out := make([][]Cell, len(kept))
	for i, row := range kept {
		pr := make([]Cell, len(colIdx))
		for j, ci := range colIdx {
			pr[j] = row[ci]
		}
		out[i] = pr
	}
	return &Result{Cols: outCols, Rows: out}, nil
}

// compareCells orders two cells of the same type; nulls sort first.
func compareCells(a, b Cell) int {
	switch {
	case a.IsNull && b.IsNull:
		return 0
	case a.IsNull:
		return -1
	case b.IsNull:
		return 1
	}
	switch a.Type {
	case TypeRat:
		return a.Rat.Cmp(b.Rat)
	case TypeNum:
		switch {
		case a.Num < b.Num:
			return -1
		case a.Num > b.Num:
			return 1
		}
		return 0
	case TypeStr:
		return strings.Compare(a.Str, b.Str)
	case TypeBool:
		switch {
		case !a.Bool && b.Bool:
			return -1
		case a.Bool && !b.Bool:
			return 1
		}
		return 0
	case TypeBoxes:
		return len(a.Boxes) - len(b.Boxes)
	}
	return 0
}

// MaterializeArray runs a SELECT whose first column is a RAT timestamp and
// whose second column is the value, and builds a data array from the rows —
// the paper's SQL-defined data array.
func MaterializeArray(db *DB, sql string) (*data.Array, error) {
	res, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	if len(res.Cols) < 2 {
		return nil, fmt.Errorf("sqlmini: materialize needs (timestamp, value) columns, got %d", len(res.Cols))
	}
	if res.Cols[0].Type != TypeRat {
		return nil, fmt.Errorf("sqlmini: first column %q must be RAT, got %v", res.Cols[0].Name, res.Cols[0].Type)
	}
	entries := make([]data.Entry, 0, len(res.Rows))
	for _, row := range res.Rows {
		if row[0].IsNull {
			return nil, fmt.Errorf("sqlmini: null timestamp in materialized array")
		}
		entries = append(entries, data.Entry{T: row[0].Rat, V: row[1].Value()})
	}
	return data.NewArray(entries)
}

// MaterializeArrayBounded materializes only rows whose timestamp lies in
// iv — the "materialized in portions by bounding the time" optimization
// that trades storage for compute. Out-of-window rows are dropped during
// the scan, before any array entry is built.
func MaterializeArrayBounded(db *DB, sql string, iv rational.Interval) (*data.Array, error) {
	res, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	if len(res.Cols) < 2 {
		return nil, fmt.Errorf("sqlmini: materialize needs (timestamp, value) columns, got %d", len(res.Cols))
	}
	if res.Cols[0].Type != TypeRat {
		return nil, fmt.Errorf("sqlmini: first column %q must be RAT, got %v", res.Cols[0].Name, res.Cols[0].Type)
	}
	var entries []data.Entry
	for _, row := range res.Rows {
		if row[0].IsNull {
			return nil, fmt.Errorf("sqlmini: null timestamp in materialized array")
		}
		if !iv.Contains(row[0].Rat) {
			continue
		}
		entries = append(entries, data.Entry{T: row[0].Rat, V: row[1].Value()})
	}
	return data.NewArray(entries)
}
