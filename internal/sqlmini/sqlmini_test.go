package sqlmini

import (
	"testing"

	"v2v/internal/data"
	"v2v/internal/raster"
	"v2v/internal/rational"
)

// zooDB builds the canonical test database: detections of animals per frame
// time, mirroring the paper's video_objects table.
func zooDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	_, err := db.CreateTable("video_objects", []Column{
		{Name: "ts", Type: TypeRat},
		{Name: "video", Type: TypeStr},
		{Name: "model", Type: TypeStr},
		{Name: "count", Type: TypeNum},
		{Name: "objects", Type: TypeBoxes},
	})
	if err != nil {
		t.Fatal(err)
	}
	boxes := func(n int) []raster.Box {
		out := make([]raster.Box, n)
		for i := range out {
			out[i] = raster.Box{X: i * 10, Y: i * 5, W: 20, H: 10, Class: "ZEBRA", Track: i + 1}
		}
		return out
	}
	for i := 0; i < 10; i++ {
		n := 0
		if i >= 5 {
			n = i - 4
		}
		video := "kabr1"
		if i%2 == 1 {
			video = "kabr2"
		}
		err := db.Insert("video_objects", []Cell{
			RatCell(rational.New(int64(i), 30)),
			StrCell(video),
			StrCell("yolov5m"),
			NumCell(float64(n)),
			BoxesCell(boxes(n)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("t", nil); err == nil {
		t.Error("empty columns should fail")
	}
	if _, err := db.CreateTable("t", []Column{{Name: "a", Type: TypeNum}, {Name: "A", Type: TypeStr}}); err == nil {
		t.Error("duplicate columns should fail")
	}
	if _, err := db.CreateTable("t", []Column{{Name: "a", Type: TypeNum}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("T", []Column{{Name: "a", Type: TypeNum}}); err == nil {
		t.Error("case-insensitive duplicate table should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	db := NewDB()
	db.CreateTable("t", []Column{{Name: "a", Type: TypeNum}, {Name: "b", Type: TypeStr}})
	if err := db.Insert("missing", nil); err == nil {
		t.Error("missing table should fail")
	}
	if err := db.Insert("t", []Cell{NumCell(1)}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := db.Insert("t", []Cell{StrCell("x"), StrCell("y")}); err == nil {
		t.Error("wrong type should fail")
	}
	if err := db.Insert("t", []Cell{NumCell(1), NullCell(TypeStr)}); err != nil {
		t.Errorf("null insert should be fine: %v", err)
	}
}

func TestSelectStar(t *testing.T) {
	db := zooDB(t)
	res, err := db.Query("SELECT * FROM video_objects")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 5 || len(res.Rows) != 10 {
		t.Fatalf("cols=%d rows=%d", len(res.Cols), len(res.Rows))
	}
}

func TestSelectProjectionAndWhere(t *testing.T) {
	db := zooDB(t)
	res, err := db.Query("SELECT ts, objects FROM video_objects WHERE video = 'kabr1' AND count > 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 {
		t.Fatalf("cols = %d", len(res.Cols))
	}
	// kabr1 rows are even i; count>0 means i>=5 -> i in {6, 8}.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.Rows[0][0].Rat.Equal(rational.New(6, 30)) {
		t.Errorf("first ts = %v", res.Rows[0][0].Rat)
	}
}

func TestWhereOperatorsAndLogic(t *testing.T) {
	db := zooDB(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT ts FROM video_objects WHERE count >= 3", 3},
		{"SELECT ts FROM video_objects WHERE count != 0", 5},
		{"SELECT ts FROM video_objects WHERE NOT count = 0", 5},
		{"SELECT ts FROM video_objects WHERE count = 0 OR count = 5", 6},
		{"SELECT ts FROM video_objects WHERE (count > 1 AND count < 4) OR video = 'nope'", 2},
		{"SELECT ts FROM video_objects WHERE ts < 1/10", 3},
		{"SELECT ts FROM video_objects WHERE ts <= 3/30 AND model = 'yolov5m'", 4},
		{"SELECT ts FROM video_objects WHERE objects", 5}, // truthy boxes
		{"SELECT ts FROM video_objects WHERE model IS NULL", 0},
		{"SELECT ts FROM video_objects WHERE model IS NOT NULL", 10},
	}
	for _, c := range cases {
		res, err := db.Query(c.sql)
		if err != nil {
			t.Errorf("%s: %v", c.sql, err)
			continue
		}
		if len(res.Rows) != c.want {
			t.Errorf("%s: rows = %d, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestRatNumCoercion(t *testing.T) {
	db := zooDB(t)
	// 0.1 = 3/30: decimal literal compares exactly against rational column.
	res, err := db.Query("SELECT ts FROM video_objects WHERE ts = 0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := zooDB(t)
	res, err := db.Query("SELECT ts, count FROM video_objects ORDER BY count DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].Num != 5 || res.Rows[1][1].Num != 4 || res.Rows[2][1].Num != 3 {
		t.Errorf("counts = %v %v %v", res.Rows[0][1], res.Rows[1][1], res.Rows[2][1])
	}
	asc, _ := db.Query("SELECT ts FROM video_objects ORDER BY ts ASC LIMIT 1")
	if !asc.Rows[0][0].Rat.Equal(rational.Zero) {
		t.Errorf("first asc ts = %v", asc.Rows[0][0].Rat)
	}
}

func TestQueryErrors(t *testing.T) {
	db := zooDB(t)
	bad := []string{
		"",
		"UPDATE video_objects",
		"SELECT FROM video_objects",
		"SELECT ts FROM",
		"SELECT ts FROM nope",
		"SELECT nope FROM video_objects",
		"SELECT ts FROM video_objects WHERE",
		"SELECT ts FROM video_objects WHERE count <",
		"SELECT ts FROM video_objects WHERE (count > 1",
		"SELECT ts FROM video_objects ORDER BY nope",
		"SELECT ts FROM video_objects LIMIT x",
		"SELECT ts FROM video_objects trailing",
		"SELECT ts FROM video_objects WHERE count > 'str'",
		"SELECT ts FROM video_objects WHERE video ! model",
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("%q: expected error", sql)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	db := NewDB()
	db.CreateTable("t", []Column{{Name: "s", Type: TypeStr}})
	db.Insert("t", []Cell{StrCell("it's")})
	res, err := db.Query("SELECT s FROM t WHERE s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestMaterializeArray(t *testing.T) {
	db := zooDB(t)
	arr, err := MaterializeArray(db, "SELECT ts, objects FROM video_objects WHERE model = 'yolov5m' ORDER BY ts")
	if err != nil {
		t.Fatal(err)
	}
	if arr.Len() != 10 {
		t.Fatalf("Len = %d", arr.Len())
	}
	v, ok := arr.At(rational.New(7, 30))
	if !ok || v.Kind != data.KindBoxes || len(v.Boxes) != 3 {
		t.Errorf("At(7/30) = %v,%v", v, ok)
	}
	// Empty-box frames are falsy — the property the rewriter uses.
	if !arr.AllFalsyIn(rational.Interval{Lo: rational.Zero, Hi: rational.New(5, 30)}) {
		t.Error("first five frames should be falsy")
	}
}

func TestMaterializeArrayErrors(t *testing.T) {
	db := zooDB(t)
	if _, err := MaterializeArray(db, "SELECT ts FROM video_objects"); err == nil {
		t.Error("single column should fail")
	}
	if _, err := MaterializeArray(db, "SELECT video, objects FROM video_objects"); err == nil {
		t.Error("non-rat timestamp should fail")
	}
	if _, err := MaterializeArray(db, "bogus"); err == nil {
		t.Error("bad sql should fail")
	}
	// Null timestamp.
	db2 := NewDB()
	db2.CreateTable("t", []Column{{Name: "ts", Type: TypeRat}, {Name: "v", Type: TypeNum}})
	db2.Insert("t", []Cell{NullCell(TypeRat), NumCell(1)})
	if _, err := MaterializeArray(db2, "SELECT ts, v FROM t"); err == nil {
		t.Error("null timestamp should fail")
	}
}

func TestMaterializeArrayBounded(t *testing.T) {
	db := zooDB(t)
	arr, err := MaterializeArrayBounded(db, "SELECT ts, count FROM video_objects",
		rational.Interval{Lo: rational.New(2, 30), Hi: rational.New(5, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if arr.Len() != 3 {
		t.Errorf("bounded Len = %d, want 3", arr.Len())
	}
	if _, ok := arr.At(rational.New(5, 30)); ok {
		t.Error("upper bound should be exclusive")
	}
}

func TestCellValueConversion(t *testing.T) {
	if RatCell(rational.New(1, 2)).Value().Num != 0.5 {
		t.Error("rat conversion")
	}
	if !BoolCell(true).Value().Bool {
		t.Error("bool conversion")
	}
	if StrCell("x").Value().Str != "x" {
		t.Error("str conversion")
	}
	if NullCell(TypeNum).Value().Kind != data.KindNull {
		t.Error("null conversion")
	}
	if len(BoxesCell([]raster.Box{{}}).Value().Boxes) != 1 {
		t.Error("boxes conversion")
	}
}

func TestCellString(t *testing.T) {
	if NullCell(TypeNum).String() != "NULL" || RatCell(rational.New(1, 3)).String() != "1/3" ||
		BoolCell(true).String() != "true" || NumCell(2).String() != "2" ||
		StrCell("hi").String() != "hi" || BoxesCell(nil).String() != "boxes(0)" {
		t.Error("cell strings wrong")
	}
	if TypeRat.String() != "RAT" || TypeBoxes.String() != "BOXES" {
		t.Error("type strings wrong")
	}
}

func TestMaterializeArrayBoundedErrors(t *testing.T) {
	db := zooDB(t)
	iv := rational.Interval{Lo: rational.Zero, Hi: rational.One}
	if _, err := MaterializeArrayBounded(db, "SELECT ts FROM video_objects", iv); err == nil {
		t.Error("single column should fail")
	}
	if _, err := MaterializeArrayBounded(db, "SELECT video, objects FROM video_objects", iv); err == nil {
		t.Error("non-rat timestamp should fail")
	}
	if _, err := MaterializeArrayBounded(db, "nope", iv); err == nil {
		t.Error("bad sql should fail")
	}
	db2 := NewDB()
	db2.CreateTable("t", []Column{{Name: "ts", Type: TypeRat}, {Name: "v", Type: TypeNum}})
	db2.Insert("t", []Cell{NullCell(TypeRat), NumCell(1)})
	if _, err := MaterializeArrayBounded(db2, "SELECT ts, v FROM t", iv); err == nil {
		t.Error("null timestamp should fail")
	}
}
