package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"v2v/internal/rational"
)

// selectStmt is the parsed form of a SELECT statement.
type selectStmt struct {
	star    bool
	cols    []string
	table   string
	where   expr
	orderBy string
	desc    bool
	limit   int // -1 = no limit
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // integer, decimal, or num/den rational
	tokString
	tokOp // = != < <= > >= ( ) , *
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "AND": true, "OR": true,
	"NOT": true, "TRUE": true, "FALSE": true, "NULL": true, "IS": true,
}

func lex(sql string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(sql) {
					return nil, fmt.Errorf("sqlmini: unterminated string at %d", i)
				}
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(sql[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(sql) && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.') {
				j++
			}
			// num/den rational literal: digits '/' digits.
			if j < len(sql) && sql[j] == '/' && j+1 < len(sql) && sql[j+1] >= '0' && sql[j+1] <= '9' {
				j++
				for j < len(sql) && sql[j] >= '0' && sql[j] <= '9' {
					j++
				}
			}
			toks = append(toks, token{tokNumber, sql[i:j], i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(sql) && isIdentPart(sql[j]) {
				j++
			}
			word := sql[i:j]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{tokKeyword, strings.ToUpper(word), i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		case c == '!' || c == '<' || c == '>':
			if i+1 < len(sql) && sql[i+1] == '=' {
				toks = append(toks, token{tokOp, sql[i : i+2], i})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("sqlmini: stray '!' at %d", i)
			} else {
				toks = append(toks, token{tokOp, string(c), i})
				i++
			}
		case c == '=' || c == '(' || c == ')' || c == ',' || c == '*':
			toks = append(toks, token{tokOp, string(c), i})
			i++
		case c == '-':
			// negative number literal
			if i+1 < len(sql) && sql[i+1] >= '0' && sql[i+1] <= '9' {
				j := i + 1
				for j < len(sql) && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.') {
					j++
				}
				toks = append(toks, token{tokNumber, sql[i:j], i})
				i = j
			} else {
				return nil, fmt.Errorf("sqlmini: stray '-' at %d", i)
			}
		default:
			return nil, fmt.Errorf("sqlmini: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(sql)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sqlmini: expected %s at %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func parseSelect(sql string) (*selectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &selectStmt{limit: -1}
	if p.acceptOp("*") {
		s.star = true
	} else {
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("sqlmini: expected column name at %d, got %q", t.pos, t.text)
			}
			s.cols = append(s.cols, t.text)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sqlmini: expected table name at %d, got %q", t.pos, t.text)
	}
	s.table = t.text

	if p.acceptKeyword("WHERE") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.where = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("sqlmini: expected column after ORDER BY at %d", t.pos)
		}
		s.orderBy = t.text
		if p.acceptKeyword("DESC") {
			s.desc = true
		} else {
			p.acceptKeyword("ASC")
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlmini: expected number after LIMIT at %d", t.pos)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlmini: bad LIMIT %q", t.text)
		}
		s.limit = n
	}
	if t := p.next(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlmini: trailing input at %d: %q", t.pos, t.text)
	}
	return s, nil
}

// --- expression AST and evaluation ---

// expr evaluates to a Cell against a row of a table.
type expr interface {
	eval(t *Table, row []Cell) (Cell, error)
}

func (c Cell) truthy() bool {
	if c.IsNull {
		return false
	}
	switch c.Type {
	case TypeBool:
		return c.Bool
	case TypeNum:
		return c.Num != 0
	case TypeRat:
		return c.Rat.Sign() != 0
	case TypeStr:
		return c.Str != ""
	case TypeBoxes:
		return len(c.Boxes) > 0
	}
	return false
}

type binExpr struct {
	op   string // AND OR = != < <= > >=
	l, r expr
}

type notExpr struct{ e expr }

type isNullExpr struct {
	e   expr
	neg bool
}

type colExpr struct{ name string }

type litExpr struct{ c Cell }

func (e *colExpr) eval(t *Table, row []Cell) (Cell, error) {
	i, ok := t.colIndex(e.name)
	if !ok {
		return Cell{}, fmt.Errorf("sqlmini: no column %q in %q", e.name, t.Name)
	}
	return row[i], nil
}

func (e *litExpr) eval(*Table, []Cell) (Cell, error) { return e.c, nil }

func (e *notExpr) eval(t *Table, row []Cell) (Cell, error) {
	v, err := e.e.eval(t, row)
	if err != nil {
		return Cell{}, err
	}
	return BoolCell(!v.truthy()), nil
}

func (e *isNullExpr) eval(t *Table, row []Cell) (Cell, error) {
	v, err := e.e.eval(t, row)
	if err != nil {
		return Cell{}, err
	}
	return BoolCell(v.IsNull != e.neg), nil
}

func (e *binExpr) eval(t *Table, row []Cell) (Cell, error) {
	l, err := e.l.eval(t, row)
	if err != nil {
		return Cell{}, err
	}
	switch e.op {
	case "AND":
		if !l.truthy() {
			return BoolCell(false), nil
		}
		r, err := e.r.eval(t, row)
		if err != nil {
			return Cell{}, err
		}
		return BoolCell(r.truthy()), nil
	case "OR":
		if l.truthy() {
			return BoolCell(true), nil
		}
		r, err := e.r.eval(t, row)
		if err != nil {
			return Cell{}, err
		}
		return BoolCell(r.truthy()), nil
	}
	r, err := e.r.eval(t, row)
	if err != nil {
		return Cell{}, err
	}
	cmp, err := compareForOp(l, r)
	if err != nil {
		return Cell{}, err
	}
	switch e.op {
	case "=":
		return BoolCell(cmp == 0), nil
	case "!=":
		return BoolCell(cmp != 0), nil
	case "<":
		return BoolCell(cmp < 0), nil
	case "<=":
		return BoolCell(cmp <= 0), nil
	case ">":
		return BoolCell(cmp > 0), nil
	case ">=":
		return BoolCell(cmp >= 0), nil
	}
	return Cell{}, fmt.Errorf("sqlmini: unknown operator %q", e.op)
}

// compareForOp compares two cells, coercing numbers and rationals.
func compareForOp(a, b Cell) (int, error) {
	if a.IsNull || b.IsNull {
		// SQL three-valued logic collapsed: null compares unequal/after.
		switch {
		case a.IsNull && b.IsNull:
			return 0, nil
		case a.IsNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	// Coerce num<->rat exactly when one side is a rational.
	if a.Type == TypeRat && b.Type == TypeNum {
		br, err := rational.Parse(strconv.FormatFloat(b.Num, 'f', -1, 64))
		if err != nil {
			return 0, err
		}
		return a.Rat.Cmp(br), nil
	}
	if a.Type == TypeNum && b.Type == TypeRat {
		ar, err := rational.Parse(strconv.FormatFloat(a.Num, 'f', -1, 64))
		if err != nil {
			return 0, err
		}
		return ar.Cmp(b.Rat), nil
	}
	if a.Type != b.Type {
		return 0, fmt.Errorf("sqlmini: cannot compare %v with %v", a.Type, b.Type)
	}
	return compareCells(a, b), nil
}

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &binExpr{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notExpr{e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &isNullExpr{e: l, neg: neg}, nil
	}
	for _, op := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.acceptOp(op) {
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &binExpr{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch {
	case t.kind == tokOp && t.text == "(":
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.acceptOp(")") {
			return nil, fmt.Errorf("sqlmini: missing ')' at %d", p.peek().pos)
		}
		return e, nil
	case t.kind == tokIdent:
		return &colExpr{name: t.text}, nil
	case t.kind == tokString:
		return &litExpr{StrCell(t.text)}, nil
	case t.kind == tokNumber:
		if strings.ContainsAny(t.text, "/") {
			r, err := rational.Parse(t.text)
			if err != nil {
				return nil, fmt.Errorf("sqlmini: bad rational %q: %w", t.text, err)
			}
			return &litExpr{RatCell(r)}, nil
		}
		n, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: bad number %q", t.text)
		}
		return &litExpr{NumCell(n)}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		return &litExpr{BoolCell(true)}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		return &litExpr{BoolCell(false)}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		return &litExpr{NullCell(TypeStr)}, nil
	default:
		return nil, fmt.Errorf("sqlmini: unexpected token %q at %d", t.text, t.pos)
	}
}
