// Package check implements V2V's static analysis: type checking of render
// expressions, match-coverage validation, and dependency analysis — the
// paper's "spec is correct if each dependency is a subset of the ranges
// available in the source videos" property (§III-B).
//
// Check also resolves the execution format: with no explicit output format
// the output adopts the (common) source format, which is what makes stream
// copies legal; an explicit output format forces every frame through the
// render path.
package check

import (
	"fmt"

	"v2v/internal/container"
	"v2v/internal/data"
	"v2v/internal/rational"
	"v2v/internal/sqlmini"
	"v2v/internal/vql"
)

// maxEnumeratedSamples bounds the per-sample validation loop; specs larger
// than this fail fast rather than stalling the planner.
const maxEnumeratedSamples = 2_000_000

// Options configures checking.
type Options struct {
	// DB provides tables for sql-declared data arrays. Required only when
	// the spec has a sql section.
	DB *sqlmini.DB
}

// Source describes one input video as seen by the planner.
type Source struct {
	Path string
	Info container.StreamInfo
	// Times is the half-open interval of presentation times the file holds.
	Times rational.Interval
	// NumFrames is the packet count.
	NumFrames int
	// ContentID identifies the file's content (container header + packet
	// index hash), independent of path or mtime — the identity result
	// caches key on so a rewritten file never serves stale entries.
	ContentID string
}

// Checked is a validated spec plus everything the planner needs: loaded
// stream metadata, materialized data arrays, per-video dependency sets, and
// the resolved output format.
type Checked struct {
	Spec    *vql.Spec
	Sources map[string]Source
	Arrays  map[string]*data.Array
	// Deps maps each video name to the set of times the spec reads,
	// expressed as intervals of frame extents.
	Deps map[string]rational.RangeSet
	// Output is the resolved output stream format.
	Output container.StreamInfo
	// Passthrough is true when the output format is inherited from the
	// sources, enabling stream-copy and smart-cut plans.
	Passthrough bool
}

// Check validates the spec and returns the planner inputs.
func Check(spec *vql.Spec, opts Options) (*Checked, error) {
	if spec.Render == nil {
		return nil, fmt.Errorf("check: spec has no render expression")
	}
	if spec.TimeDomain.Count() == 0 {
		return nil, fmt.Errorf("check: time domain %v is empty", spec.TimeDomain)
	}
	if spec.TimeDomain.Count() > maxEnumeratedSamples {
		return nil, fmt.Errorf("check: time domain has %d samples, exceeding the %d limit",
			spec.TimeDomain.Count(), maxEnumeratedSamples)
	}

	c := &Checked{
		Spec:    spec,
		Sources: make(map[string]Source),
		Arrays:  make(map[string]*data.Array),
		Deps:    make(map[string]rational.RangeSet),
	}

	// Load video stream metadata (headers and indexes only; no decoding).
	for name, path := range spec.Videos {
		r, err := container.Open(path)
		if err != nil {
			return nil, fmt.Errorf("check: video %q: %w", name, err)
		}
		c.Sources[name] = Source{
			Path: path, Info: r.Info(), Times: r.TimeRange(),
			NumFrames: r.NumPackets(), ContentID: r.ContentID(),
		}
		r.Close()
	}

	// Load data arrays: files first, then SQL materializations.
	for name, path := range spec.DataFiles {
		arr, err := data.LoadJSON(path)
		if err != nil {
			return nil, fmt.Errorf("check: data array %q: %w", name, err)
		}
		c.Arrays[name] = arr
	}
	for name, query := range spec.DataSQL {
		if opts.DB == nil {
			return nil, fmt.Errorf("check: data array %q needs a SQL database, none provided", name)
		}
		// Bound the materialization by the time window the spec can
		// actually read (§IV-B: "materialized in portions by bounding the
		// time") when every index of this array is affine in t.
		var arr *data.Array
		var err error
		if iv, ok := sqlWindow(spec, name); ok {
			arr, err = sqlmini.MaterializeArrayBounded(opts.DB, query, iv)
		} else {
			arr, err = sqlmini.MaterializeArray(opts.DB, query)
		}
		if err != nil {
			return nil, fmt.Errorf("check: data array %q: %w", name, err)
		}
		c.Arrays[name] = arr
	}

	// Type-check the render expression.
	tc := &typeChecker{checked: c}
	rt, err := tc.typeOf(spec.Render, true)
	if err != nil {
		return nil, err
	}
	if rt != vql.TypeFrame {
		return nil, fmt.Errorf("check: render must produce a Frame, got %v", rt)
	}

	// Coverage + dependency analysis by enumeration of the time domain.
	if err := c.analyzeDependencies(); err != nil {
		return nil, err
	}

	// Resolve the output format.
	if err := c.resolveOutput(); err != nil {
		return nil, err
	}
	return c, nil
}

// arrayElemType returns the element type of a data array: the kind of its
// non-null entries (mixed kinds are rejected; an all-null or empty array
// types as Null).
func arrayElemType(arr *data.Array) (vql.Type, error) {
	elem := vql.TypeNull
	for _, e := range arr.Entries() {
		if e.V.Kind == data.KindNull {
			continue
		}
		t := vql.DataKindType(e.V.Kind)
		if elem == vql.TypeNull {
			elem = t
			continue
		}
		if t != elem {
			return vql.TypeInvalid, fmt.Errorf("mixed element types %v and %v", elem, t)
		}
	}
	return elem, nil
}

type typeChecker struct {
	checked *Checked
}

// typeOf computes the static type of e. topLevel permits match expressions
// (matches may only appear as the outermost render node, mirroring the
// paper's Render(t) = match t {...} form; the rewriter relies on this).
func (tc *typeChecker) typeOf(e vql.Expr, topLevel bool) (vql.Type, error) {
	switch n := e.(type) {
	case vql.TimeVar:
		return vql.TypeNum, nil
	case vql.NumLit:
		return vql.TypeNum, nil
	case vql.StrLit:
		return vql.TypeStr, nil
	case vql.BoolLit:
		return vql.TypeBool, nil
	case vql.NullLit:
		return vql.TypeNull, nil
	case vql.Neg:
		it, err := tc.typeOf(n.E, false)
		if err != nil {
			return vql.TypeInvalid, err
		}
		if it != vql.TypeNum {
			return vql.TypeInvalid, fmt.Errorf("check: cannot negate %v", it)
		}
		return vql.TypeNum, nil
	case vql.Not:
		if _, err := tc.typeOf(n.E, false); err != nil {
			return vql.TypeInvalid, err
		}
		return vql.TypeBool, nil
	case vql.BinOp:
		return tc.typeOfBinOp(n)
	case vql.VideoRef:
		if _, ok := tc.checked.Sources[n.Name]; !ok {
			return vql.TypeInvalid, fmt.Errorf("check: unknown video %q", n.Name)
		}
		if err := tc.checkIndexExpr(n.Index, n.Name); err != nil {
			return vql.TypeInvalid, err
		}
		return vql.TypeFrame, nil
	case vql.DataRef:
		arr, ok := tc.checked.Arrays[n.Name]
		if !ok {
			return vql.TypeInvalid, fmt.Errorf("check: unknown data array %q", n.Name)
		}
		if err := tc.checkIndexExpr(n.Index, n.Name); err != nil {
			return vql.TypeInvalid, err
		}
		elem, err := arrayElemType(arr)
		if err != nil {
			return vql.TypeInvalid, fmt.Errorf("check: data array %q: %w", n.Name, err)
		}
		return elem, nil
	case vql.Call:
		tr, ok := vql.Lookup(n.Name)
		if !ok {
			return vql.TypeInvalid, fmt.Errorf("check: unknown transform %q", n.Name)
		}
		if err := tr.CheckArity(len(n.Args)); err != nil {
			return vql.TypeInvalid, err
		}
		for i, a := range n.Args {
			at, err := tc.typeOf(a, false)
			if err != nil {
				return vql.TypeInvalid, err
			}
			want := tr.ParamType(i)
			if !typeAssignable(at, want) {
				return vql.TypeInvalid, fmt.Errorf("check: %s argument %d wants %v, got %v", n.Name, i+1, want, at)
			}
		}
		return tr.Result, nil
	case vql.Match:
		if !topLevel {
			return vql.TypeInvalid, fmt.Errorf("check: match is only allowed at the top of render")
		}
		if len(n.Arms) == 0 {
			return vql.TypeInvalid, fmt.Errorf("check: match has no arms")
		}
		for i, arm := range n.Arms {
			bt, err := tc.typeOf(arm.Body, false)
			if err != nil {
				return vql.TypeInvalid, err
			}
			if bt != vql.TypeFrame {
				return vql.TypeInvalid, fmt.Errorf("check: match arm %d must produce a Frame, got %v", i+1, bt)
			}
		}
		return vql.TypeFrame, nil
	default:
		return vql.TypeInvalid, fmt.Errorf("check: cannot type %T", e)
	}
}

// typeAssignable reports whether a value of type got satisfies a parameter
// of type want. Null is accepted where Bool, Boxes, or Str flow (missing
// data samples degrade gracefully, matching evaluation semantics).
func typeAssignable(got, want vql.Type) bool {
	if got == want {
		return true
	}
	if got == vql.TypeNull && (want == vql.TypeBool || want == vql.TypeBoxes || want == vql.TypeStr) {
		return true
	}
	return false
}

func (tc *typeChecker) typeOfBinOp(n vql.BinOp) (vql.Type, error) {
	lt, err := tc.typeOf(n.L, false)
	if err != nil {
		return vql.TypeInvalid, err
	}
	rt, err := tc.typeOf(n.R, false)
	if err != nil {
		return vql.TypeInvalid, err
	}
	switch n.Op {
	case vql.OpAdd, vql.OpSub, vql.OpMul, vql.OpDiv:
		if lt != vql.TypeNum || rt != vql.TypeNum {
			return vql.TypeInvalid, fmt.Errorf("check: arithmetic needs numbers, got %v and %v", lt, rt)
		}
		return vql.TypeNum, nil
	case vql.OpLT, vql.OpLE, vql.OpGT, vql.OpGE:
		okL := lt == vql.TypeNum || lt == vql.TypeNull
		okR := rt == vql.TypeNum || rt == vql.TypeNull
		if !okL || !okR {
			return vql.TypeInvalid, fmt.Errorf("check: ordering needs numbers, got %v and %v", lt, rt)
		}
		return vql.TypeBool, nil
	case vql.OpEQ, vql.OpNE:
		if lt == vql.TypeFrame || rt == vql.TypeFrame {
			return vql.TypeInvalid, fmt.Errorf("check: frames are not comparable")
		}
		return vql.TypeBool, nil
	default: // and / or
		return vql.TypeBool, nil
	}
}

// checkIndexExpr validates that an indexing expression depends only on t
// and constants: index expressions must be statically analyzable for
// dependency computation.
func (tc *typeChecker) checkIndexExpr(e vql.Expr, name string) error {
	var bad error
	vql.Walk(e, func(n vql.Expr) {
		switch n.(type) {
		case vql.VideoRef, vql.DataRef, vql.Call, vql.Match, vql.StrLit, vql.BoolLit, vql.NullLit:
			if bad == nil {
				bad = fmt.Errorf("check: index of %q must be built from t and numeric constants, found %s", name, n)
			}
		}
	})
	if bad != nil {
		return bad
	}
	t, err := tc.typeOf(e, false)
	if err != nil {
		return err
	}
	if t != vql.TypeNum {
		return fmt.Errorf("check: index of %q must be a time, got %v", name, t)
	}
	return nil
}
