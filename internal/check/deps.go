package check

import (
	"fmt"

	"v2v/internal/container"
	"v2v/internal/rational"
	"v2v/internal/vql"
)

// AffineOffset recognizes index expressions of the form t + c (including
// t, c + t, t - c) and returns c. Affine indexes admit interval-level
// dependency analysis; anything else falls back to per-sample evaluation.
func AffineOffset(e vql.Expr) (rational.Rat, bool) {
	switch n := e.(type) {
	case vql.TimeVar:
		return rational.Zero, true
	case vql.BinOp:
		switch n.Op {
		case vql.OpAdd:
			if _, isT := n.L.(vql.TimeVar); isT {
				if c, ok := n.R.(vql.NumLit); ok {
					return c.V, true
				}
			}
			if _, isT := n.R.(vql.TimeVar); isT {
				if c, ok := n.L.(vql.NumLit); ok {
					return c.V, true
				}
			}
		case vql.OpSub:
			if _, isT := n.L.(vql.TimeVar); isT {
				if c, ok := n.R.(vql.NumLit); ok {
					return c.V.Neg(), true
				}
			}
		}
	}
	return rational.Rat{}, false
}

// sqlWindow computes the half-open interval of times the spec can read
// from the named data array, when every reference's index is affine in t.
// Non-affine indexes (or none at all) return ok=false, falling back to
// full materialization.
func sqlWindow(spec *vql.Spec, name string) (rational.Interval, bool) {
	domain := spec.TimeDomain
	if domain.Count() == 0 {
		return rational.Interval{}, false
	}
	found := false
	allAffine := true
	var lo, hi rational.Rat
	vql.Walk(spec.Render, func(e vql.Expr) {
		dr, ok := e.(vql.DataRef)
		if !ok || dr.Name != name {
			return
		}
		off, affine := AffineOffset(dr.Index)
		if !affine {
			allAffine = false
			return
		}
		a := domain.Start.Add(off)
		b := domain.Last().Add(off)
		if !found {
			lo, hi = a, b
			found = true
			return
		}
		lo = lo.Min(a)
		hi = hi.Max(b)
	})
	if !found || !allAffine {
		return rational.Interval{}, false
	}
	return rational.Interval{Lo: lo, Hi: hi.Add(domain.Step)}, true
}

// analyzeDependencies walks the time domain, verifies match coverage and
// frame-grid alignment of every video read, and accumulates per-video
// dependency sets.
func (c *Checked) analyzeDependencies() error {
	spec := c.Spec
	domain := spec.TimeDomain
	n := domain.Count()

	// Per-video accumulated times, as half-open frame intervals.
	acc := make(map[string][]rational.Interval)
	// Track which (video, guard-arm) pairs took the affine fast path so we
	// do not enumerate them.
	type refKey struct {
		video  string
		offset string
	}
	fastDone := make(map[refKey]bool)

	process := func(body vql.Expr, times rational.Range) error {
		if times.Count() == 0 {
			return nil
		}
		// Collect video references in this body.
		var refs []vql.VideoRef
		vql.Walk(body, func(e vql.Expr) {
			if vr, ok := e.(vql.VideoRef); ok {
				refs = append(refs, vr)
			}
		})
		var dataRefs []vql.DataRef
		vql.Walk(body, func(e vql.Expr) {
			if dr, ok := e.(vql.DataRef); ok {
				dataRefs = append(dataRefs, dr)
			}
		})
		for _, vr := range refs {
			src := c.Sources[vr.Name]
			if off, ok := AffineOffset(vr.Index); ok {
				key := refKey{vr.Name, off.String() + "@" + times.String()}
				if fastDone[key] {
					continue
				}
				fastDone[key] = true
				// The read times are times shifted by off. Validate grid
				// alignment once (all samples share the same phase iff the
				// domain step is a multiple of the frame duration).
				if err := validateGrid(src, vr.Name, times, off); err != nil {
					return err
				}
				shifted := times.Shift(off)
				iv := shifted.Interval()
				iv.Hi = shifted.Last().Add(src.Info.FrameDur()) // extent of last frame read
				acc[vr.Name] = append(acc[vr.Name], iv)
				continue
			}
			// General path: evaluate the index at every covered time.
			for i := 0; i < times.Count(); i++ {
				at := times.At(i)
				v, err := vql.Eval(vr.Index, &vql.Env{T: at})
				if err != nil {
					return fmt.Errorf("check: index of %q at t=%s: %w", vr.Name, at, err)
				}
				rt := v.Num
				if _, exact := src.Info.PTSOf(rt); !exact {
					return fmt.Errorf("check: %s[%s] at t=%s is not on the video's frame grid (fps %s)",
						vr.Name, rt, at, src.Info.FPS)
				}
				acc[vr.Name] = append(acc[vr.Name], rational.Interval{Lo: rt, Hi: rt.Add(src.Info.FrameDur())})
			}
		}
		// Data dependencies: every sample read must exist.
		for _, dr := range dataRefs {
			arr := c.Arrays[dr.Name]
			for i := 0; i < times.Count(); i++ {
				at := times.At(i)
				v, err := vql.Eval(dr.Index, &vql.Env{T: at})
				if err != nil {
					return fmt.Errorf("check: index of %q at t=%s: %w", dr.Name, at, err)
				}
				if _, ok := arr.At(v.Num); !ok {
					return fmt.Errorf("check: data array %q has no sample at %s (needed for t=%s)", dr.Name, v.Num, at)
				}
			}
		}
		return nil
	}

	if m, ok := spec.Render.(vql.Match); ok {
		// Coverage: every domain time matches some arm; collect the
		// contiguous sub-ranges each arm wins to keep the fast path usable.
		armStart := -1
		armIdx := -1
		flush := func(endExclusive int) error {
			if armIdx < 0 || armStart < 0 {
				return nil
			}
			sub := rational.NewRange(domain.At(armStart), domain.At(endExclusive-1).Add(domain.Step), domain.Step)
			return process(m.Arms[armIdx].Body, sub)
		}
		for i := 0; i < n; i++ {
			at := domain.At(i)
			matched := -1
			for ai, arm := range m.Arms {
				if arm.Guard.Contains(at) {
					matched = ai
					break
				}
			}
			if matched == -1 {
				return fmt.Errorf("check: match does not cover t=%s", at)
			}
			if matched != armIdx {
				if err := flush(i); err != nil {
					return err
				}
				armIdx, armStart = matched, i
			}
		}
		if err := flush(n); err != nil {
			return err
		}
	} else {
		if err := process(spec.Render, domain); err != nil {
			return err
		}
	}

	// Normalize and subset-check against the sources.
	for name, ivs := range acc {
		set := rational.NewRangeSet(ivs...)
		c.Deps[name] = set
		src := c.Sources[name]
		avail := rational.NewRangeSet(src.Times)
		if !set.SubsetOf(avail) {
			missing := set.Subtract(avail)
			return fmt.Errorf("check: spec needs %s of video %q but the file only covers %s",
				missing, name, src.Times)
		}
	}
	return nil
}

// validateGrid confirms that every read time of an affine reference lands
// exactly on a source frame. With an affine offset it suffices to check the
// first sample's phase and that the domain step is an integer number of
// source frames; otherwise fall back to checking each sample.
func validateGrid(src Source, name string, times rational.Range, off rational.Rat) error {
	stepFrames := times.Step.Mul(src.Info.FPS)
	first := times.Start.Add(off)
	if _, exact := src.Info.PTSOf(first); exact && stepFrames.IsInt() {
		return nil
	}
	for i := 0; i < times.Count(); i++ {
		rt := times.At(i).Add(off)
		if _, exact := src.Info.PTSOf(rt); !exact {
			return fmt.Errorf("check: %s[t%+s] at t=%s reads %s, which is not on the video's frame grid (fps %s)",
				name, off, times.At(i), rt, src.Info.FPS)
		}
	}
	return nil
}

// resolveOutput determines the output stream format.
func (c *Checked) resolveOutput() error {
	if c.Spec.Output != nil {
		o := c.Spec.Output
		if o.Width <= 0 || o.Height <= 0 || o.Width%2 != 0 || o.Height%2 != 0 {
			return fmt.Errorf("check: output dimensions %dx%d must be positive and even", o.Width, o.Height)
		}
		if o.FPS.Sign() <= 0 {
			return fmt.Errorf("check: output fps must be positive")
		}
		c.Output = container.StreamInfo{
			Codec: "GV10", Width: o.Width, Height: o.Height, FPS: o.FPS,
			Quality: o.Quality, GOP: o.GOP, Level: o.Level,
		}
		c.Passthrough = false
		return nil
	}
	// Inherit the common source format.
	var base *container.StreamInfo
	for name := range c.Deps {
		info := c.Sources[name].Info
		if base == nil {
			b := info
			b.Start = rational.Zero
			base = &b
			continue
		}
		if !base.Compatible(info) {
			return fmt.Errorf("check: videos have incompatible formats (%dx%d@%s vs %dx%d@%s); declare an explicit output format",
				base.Width, base.Height, base.FPS, info.Width, info.Height, info.FPS)
		}
	}
	if base == nil {
		return fmt.Errorf("check: render references no videos; declare an explicit output format")
	}
	// The output frame cadence must match the time domain step.
	if !c.Spec.TimeDomain.Step.Mul(base.FPS).Equal(rational.One) {
		return fmt.Errorf("check: time domain step %s does not match the source frame rate %s; declare an explicit output format",
			c.Spec.TimeDomain.Step, base.FPS)
	}
	c.Output = *base
	c.Passthrough = true
	return nil
}
