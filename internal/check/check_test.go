package check

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"v2v/internal/dataset"
	"v2v/internal/rational"
	"v2v/internal/sqlmini"
	"v2v/internal/vql"
)

// fixture generates a 2-second tiny video (24 fps, GOP 24) plus its
// annotations once per test binary.
type fixture struct {
	dir     string
	vid     string
	vid2    string
	ann     string
	profile dataset.Profile
}

var fx *fixture

func TestMain(m *testing.M) {
	code := m.Run()
	if fx != nil {
		os.RemoveAll(fx.dir)
	}
	os.Exit(code)
}

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if fx != nil {
		return fx
	}
	dir, err := os.MkdirTemp("", "v2v-check-")
	if err != nil {
		t.Fatal(err)
	}
	p := dataset.TinyProfile()
	f := &fixture{dir: dir, profile: p}
	f.vid = filepath.Join(dir, "tiny.vmf")
	f.ann = filepath.Join(dir, "tiny.boxes.json")
	if _, err := dataset.Generate(f.vid, f.ann, p, rational.FromInt(2)); err != nil {
		t.Fatal(err)
	}
	f.vid2 = filepath.Join(dir, "tiny2.vmf")
	p2 := p
	p2.Seed = 99
	if _, err := dataset.Generate(f.vid2, "", p2, rational.FromInt(2)); err != nil {
		t.Fatal(err)
	}
	fx = f
	return f
}

func parseSpec(t *testing.T, f *fixture, body string) *vql.Spec {
	t.Helper()
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; w: %q; }
		data { bb: %q; }
		%s`, f.vid, f.vid2, f.ann, body)
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

func TestCheckSimpleClip(t *testing.T) {
	f := getFixture(t)
	s := parseSpec(t, f, `render(t) = v[t];`)
	c, err := Check(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Passthrough {
		t.Error("no explicit output should be passthrough")
	}
	if c.Output.Width != f.profile.Width || !c.Output.FPS.Equal(f.profile.FPS) {
		t.Errorf("output = %+v", c.Output)
	}
	dep := c.Deps["v"]
	// Needs [0, 1) of v (frame extents end exactly at 1s).
	want := rational.NewRangeSet(rational.Interval{Lo: rational.Zero, Hi: rational.One})
	if !dep.Equal(want) {
		t.Errorf("deps = %v, want %v", dep, want)
	}
}

func TestCheckShiftedClip(t *testing.T) {
	f := getFixture(t)
	s := parseSpec(t, f, `render(t) = v[t + 1/2];`)
	c, err := Check(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := rational.NewRangeSet(rational.Interval{Lo: rational.New(1, 2), Hi: rational.New(3, 2)})
	if !c.Deps["v"].Equal(want) {
		t.Errorf("deps = %v, want %v", c.Deps["v"], want)
	}
}

func TestCheckOutOfRangeFails(t *testing.T) {
	f := getFixture(t)
	// Source is 2 s long; reading v[t + 3/2] over a 1 s domain needs up to 2.5 s.
	s := parseSpec(t, f, `render(t) = v[t + 3/2];`)
	if _, err := Check(s, Options{}); err == nil {
		t.Fatal("expected dependency error")
	}
}

func TestCheckOffGridFails(t *testing.T) {
	f := getFixture(t)
	s := parseSpec(t, f, `render(t) = v[t + 1/100];`)
	if _, err := Check(s, Options{}); err == nil {
		t.Fatal("expected off-grid error")
	}
}

func TestCheckMatchCoverage(t *testing.T) {
	f := getFixture(t)
	s := parseSpec(t, f, `render(t) = match t {
		t in range(0, 1/2, 1/24) => v[t],
		t in range(1/2, 1, 1/24) => w[t - 1/2],
	};`)
	c, err := Check(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantV := rational.NewRangeSet(rational.Interval{Lo: rational.Zero, Hi: rational.New(1, 2)})
	wantW := rational.NewRangeSet(rational.Interval{Lo: rational.Zero, Hi: rational.New(1, 2)})
	if !c.Deps["v"].Equal(wantV) || !c.Deps["w"].Equal(wantW) {
		t.Errorf("deps v=%v w=%v", c.Deps["v"], c.Deps["w"])
	}
	// A gap in coverage fails.
	s2 := parseSpec(t, f, `render(t) = match t {
		t in range(0, 1/2, 1/24) => v[t],
	};`)
	if _, err := Check(s2, Options{}); err == nil {
		t.Fatal("uncovered domain should fail")
	}
}

func TestCheckDataDependency(t *testing.T) {
	f := getFixture(t)
	s := parseSpec(t, f, `render(t) = boxes(v[t], bb[t]);`)
	c, err := Check(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Arrays["bb"] == nil || c.Arrays["bb"].Len() == 0 {
		t.Error("annotations not loaded")
	}
	// Reading annotations beyond what exists fails.
	s2 := parseSpec(t, f, `render(t) = boxes(v[t], bb[t + 100]);`)
	if _, err := Check(s2, Options{}); err == nil {
		t.Fatal("missing data samples should fail")
	}
}

func TestCheckSQLArray(t *testing.T) {
	f := getFixture(t)
	db := sqlmini.NewDB()
	db.CreateTable("det", []sqlmini.Column{
		{Name: "ts", Type: sqlmini.TypeRat},
		{Name: "n", Type: sqlmini.TypeNum},
	})
	for i := 0; i < 24; i++ {
		db.Insert("det", []sqlmini.Cell{
			sqlmini.RatCell(rational.New(int64(i), 24)),
			sqlmini.NumCell(float64(i % 3)),
		})
	}
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; w: %q; }
		sql { n: "SELECT ts, n FROM det"; }
		render(t) = if n[t] > 0 then v[t] else w[t];`, f.vid, f.vid2)
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(s, Options{}); err == nil {
		t.Fatal("sql array without DB should fail")
	}
	c, err := Check(s, Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if c.Arrays["n"].Len() != 24 {
		t.Errorf("sql array len = %d", c.Arrays["n"].Len())
	}
}

func TestCheckTypeErrors(t *testing.T) {
	f := getFixture(t)
	bad := []string{
		`render(t) = t;`,                                       // render must be a Frame
		`render(t) = zoom(t, 2);`,                              // frame arg wanted
		`render(t) = zoom(v[t], v[t]);`,                        // num arg wanted
		`render(t) = boxes(v[t], v[t]);`,                       // boxes arg wanted
		`render(t) = v[v[t]];`,                                 // index must be data-free
		`render(t) = v[t] + 1;`,                                // arithmetic over frames
		`render(t) = ifthenelse(v[t] == v[t], v[t], v[t]);`,    // frame comparison
		`render(t) = grade(v[t], 0, 1, t < 1);`,                // bool where num wanted
		`render(t) = match t { t in range(0, 1, 1/24) => t };`, // arm not Frame
		`render(t) = grid(v[t], v[t], v[t], match t { t in range(0,1,1/24) => v[t] });`, // nested match
	}
	for _, body := range bad {
		s := parseSpec(t, f, body)
		if _, err := Check(s, Options{}); err == nil {
			t.Errorf("%s: expected check error", body)
		}
	}
}

func TestCheckUnknownNames(t *testing.T) {
	f := getFixture(t)
	// Manually build a spec referencing unknown names (the parser would
	// catch these via ResolveRefs, so construct the AST directly).
	s := parseSpec(t, f, `render(t) = v[t];`)
	s.Render = vql.VideoRef{Name: "ghost", Index: vql.TimeVar{}}
	if _, err := Check(s, Options{}); err == nil {
		t.Error("unknown video should fail")
	}
	s.Render = vql.Call{Name: "boxes", Args: []vql.Expr{
		vql.VideoRef{Name: "v", Index: vql.TimeVar{}},
		vql.DataRef{Name: "ghost", Index: vql.TimeVar{}},
	}}
	if _, err := Check(s, Options{}); err == nil {
		t.Error("unknown data array should fail")
	}
	s.Render = vql.Call{Name: "nosuch", Args: nil}
	if _, err := Check(s, Options{}); err == nil {
		t.Error("unknown transform should fail")
	}
}

func TestCheckMissingFiles(t *testing.T) {
	f := getFixture(t)
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: "%s/nope.vmf"; }
		render(t) = v[t];`, f.dir)
	s, _ := vql.Parse(src)
	if _, err := Check(s, Options{}); err == nil {
		t.Error("missing video file should fail")
	}
	src2 := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; }
		data { bb: "%s/nope.json"; }
		render(t) = boxes(v[t], bb[t]);`, f.vid, f.dir)
	s2, _ := vql.Parse(src2)
	if _, err := Check(s2, Options{}); err == nil {
		t.Error("missing annotation file should fail")
	}
}

func TestCheckExplicitOutput(t *testing.T) {
	f := getFixture(t)
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; }
		output { width: 64; height: 36; fps: 24; }
		render(t) = v[t];`, f.vid)
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Check(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Passthrough {
		t.Error("explicit output should disable passthrough")
	}
	if c.Output.Width != 64 || c.Output.Height != 36 {
		t.Errorf("output = %+v", c.Output)
	}
	// Odd output dims fail.
	src2 := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; }
		output { width: 63; height: 36; fps: 24; }
		render(t) = v[t];`, f.vid)
	s2, _ := vql.Parse(src2)
	if _, err := Check(s2, Options{}); err == nil {
		t.Error("odd output width should fail")
	}
}

func TestCheckDomainStepMismatch(t *testing.T) {
	f := getFixture(t)
	// Domain at 12 fps over a 24 fps source without explicit output: the
	// output cadence is ambiguous.
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/12);
		videos { v: %q; }
		render(t) = v[t];`, f.vid)
	s, _ := vql.Parse(src)
	if _, err := Check(s, Options{}); err == nil {
		t.Error("step/fps mismatch should fail without explicit output")
	}
}

func TestCheckEmptyDomain(t *testing.T) {
	f := getFixture(t)
	src := fmt.Sprintf(`
		timedomain range(1, 1, 1/24);
		videos { v: %q; }
		render(t) = v[t];`, f.vid)
	s, _ := vql.Parse(src)
	if _, err := Check(s, Options{}); err == nil {
		t.Error("empty domain should fail")
	}
}

func TestAffineOffset(t *testing.T) {
	cases := []struct {
		src  string
		want string
		ok   bool
	}{
		{"t", "0", true},
		{"t + 5", "5", true},
		{"5 + t", "5", true},
		{"t - 1/2", "-1/2", true},
		{"t * 2", "", false},
		{"2 - t", "", false},
		{"t + t", "", false},
	}
	for _, c := range cases {
		e, err := vql.ParseExpr(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		off, ok := AffineOffset(e)
		if ok != c.ok {
			t.Errorf("AffineOffset(%s) ok = %v", c.src, ok)
			continue
		}
		if ok && off.String() != c.want {
			t.Errorf("AffineOffset(%s) = %s, want %s", c.src, off, c.want)
		}
	}
}

func TestCheckNonAffineIndex(t *testing.T) {
	f := getFixture(t)
	// Reverse playback: v[1 - 1/24 - t] is not affine in our narrow sense
	// but is still analyzable by enumeration.
	s := parseSpec(t, f, `render(t) = v[1 - 1/24 - t];`)
	c, err := Check(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := rational.NewRangeSet(rational.Interval{Lo: rational.Zero, Hi: rational.One})
	if !c.Deps["v"].Equal(want) {
		t.Errorf("deps = %v", c.Deps["v"])
	}
}

func TestCheckIncompatibleSourcesNeedOutput(t *testing.T) {
	f := getFixture(t)
	other := filepath.Join(f.dir, "other.vmf")
	p := f.profile
	p.Width, p.Height = 192, 96
	if _, err := dataset.Generate(other, "", p, rational.FromInt(2)); err != nil {
		t.Fatal(err)
	}
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; u: %q; }
		render(t) = match t {
			t in range(0, 1/2, 1/24) => v[t],
			t in range(1/2, 1, 1/24) => u[t],
		};`, f.vid, other)
	s, _ := vql.Parse(src)
	if _, err := Check(s, Options{}); err == nil {
		t.Error("incompatible sources without explicit output should fail")
	}
}

func TestSQLMaterializationIsTimeBounded(t *testing.T) {
	f := getFixture(t)
	db := sqlmini.NewDB()
	db.CreateTable("det", []sqlmini.Column{
		{Name: "ts", Type: sqlmini.TypeRat},
		{Name: "n", Type: sqlmini.TypeNum},
	})
	// Rows cover 0..100 s; the spec reads only [1/2, 3/2).
	for i := 0; i < 100*24; i++ {
		db.Insert("det", []sqlmini.Cell{
			sqlmini.RatCell(rational.New(int64(i), 24)),
			sqlmini.NumCell(1),
		})
	}
	src := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; w: %q; }
		sql { n: "SELECT ts, n FROM det"; }
		render(t) = if n[t + 1/2] > 0 then v[t] else w[t];`, f.vid, f.vid2)
	s, err := vql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Check(s, Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	// Bounded: exactly the 24 samples of [1/2, 3/2), not 2400.
	if got := c.Arrays["n"].Len(); got != 24 {
		t.Errorf("materialized %d rows, want 24 (time-bounded)", got)
	}
	// Non-affine index falls back to full materialization.
	src2 := fmt.Sprintf(`
		timedomain range(0, 1, 1/24);
		videos { v: %q; w: %q; }
		sql { n: "SELECT ts, n FROM det"; }
		render(t) = if n[1 - 1/24 - t] > 0 then v[t] else w[t];`, f.vid, f.vid2)
	s2, _ := vql.Parse(src2)
	c2, err := Check(s2, Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Arrays["n"].Len(); got != 100*24 {
		t.Errorf("non-affine materialized %d rows, want full 2400", got)
	}
}

func TestCheckDomainTooLarge(t *testing.T) {
	f := getFixture(t)
	src := fmt.Sprintf(`
		timedomain range(0, 3000000, 1);
		videos { v: %q; }
		render(t) = v[t];`, f.vid)
	s, _ := vql.Parse(src)
	if _, err := Check(s, Options{}); err == nil {
		t.Error("oversized domain should fail fast")
	}
}

func TestCheckGridAcrossTwoVideos(t *testing.T) {
	f := getFixture(t)
	s := parseSpec(t, f, `render(t) = grid(v[t], w[t], v[t + 1], w[t + 1]);`)
	c, err := Check(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantV := rational.NewRangeSet(rational.Interval{Lo: rational.Zero, Hi: rational.FromInt(2)})
	if !c.Deps["v"].Equal(wantV) || !c.Deps["w"].Equal(wantV) {
		t.Errorf("deps v=%v w=%v", c.Deps["v"], c.Deps["w"])
	}
}
