package benchkit

import (
	"os"
	"strings"
	"testing"
	"time"

	"v2v/internal/core"
	"v2v/internal/vql"
)

// Tiny scale keeps unit tests fast; real figures run through cmd/v2vbench
// and the root bench suite.
func testScale() Scale {
	return Scale{ToSSeconds: 30, KABRSeconds: 8, Short: 1, Long: 4}
}

var (
	tosDS  *Dataset
	kabrDS *Dataset
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "v2v-benchkit-")
	if err != nil {
		panic(err)
	}
	sc := testScale()
	tosDS, err = ProvisionToS(dir, sc)
	if err != nil {
		panic(err)
	}
	kabrDS, err = ProvisionKABR(dir, sc)
	if err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestProvisionShapes(t *testing.T) {
	if len(tosDS.Videos) != 1 || len(kabrDS.Videos) != 4 {
		t.Fatalf("videos: tos=%d kabr=%d", len(tosDS.Videos), len(kabrDS.Videos))
	}
	for _, p := range append(append([]string{}, tosDS.Videos...), kabrDS.Videos...) {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing %s", p)
		}
	}
	// Re-provisioning hits the cache (no error, same paths).
	again, err := ProvisionToS(DefaultDirOf(tosDS), testScale())
	_ = again
	_ = err
}

// DefaultDirOf recovers the cache dir used in TestMain for re-provision
// testing (the parent of the dataset subdirectory).
func DefaultDirOf(ds *Dataset) string {
	p := ds.Videos[0]
	// .../<cache>/<subdir>/<file>
	i := strings.LastIndexByte(p, '/')
	j := strings.LastIndexByte(p[:i], '/')
	return p[:j]
}

func TestQueriesEnumeration(t *testing.T) {
	qs := Queries()
	if len(qs) != 10 {
		t.Fatalf("queries = %d", len(qs))
	}
	if qs[0].ID != "Q1" || qs[9].ID != "Q10" {
		t.Error("IDs wrong")
	}
	if qs[4].Long || !qs[5].Long {
		t.Error("long flags wrong")
	}
	if !qs[4].JoinsData || !qs[9].JoinsData || qs[0].JoinsData {
		t.Error("data flags wrong")
	}
	if q, ok := QueryByID("q7"); !ok || q.ID != "Q7" {
		t.Error("QueryByID case-insensitive lookup failed")
	}
	if _, ok := QueryByID("Q11"); ok {
		t.Error("Q11 should not exist")
	}
}

func TestAllQuerySpecsParseAndCheck(t *testing.T) {
	sc := testScale()
	for _, ds := range []*Dataset{tosDS, kabrDS} {
		for _, q := range Queries() {
			src := q.BuildSpecSource(ds, sc)
			spec, err := vql.Parse(src)
			if err != nil {
				t.Fatalf("%s/%s parse: %v\n%s", ds.Name, q.ID, err, src)
			}
			// Plan both ways to validate check+optimize paths.
			if _, _, _, err := core.Plan(spec, core.Options{}); err != nil {
				t.Fatalf("%s/%s check: %v\n%s", ds.Name, q.ID, err, src)
			}
			if _, _, _, err := core.Plan(spec, core.DefaultOptions()); err != nil {
				t.Fatalf("%s/%s optimize: %v", ds.Name, q.ID, err)
			}
		}
	}
}

func TestRunOnceAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := testScale()
	outDir := t.TempDir()
	q, _ := QueryByID("Q5") // boxes: exercises data join in all engines
	for _, mode := range []Mode{ModeUnopt, ModeOpt, ModeBaseline} {
		m, err := RunOnce(kabrDS, q, mode, Config{Scale: sc, OutDir: outDir, Parallelism: 2})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if m.Wall <= 0 || m.OutFrames == 0 {
			t.Errorf("%s: measurement = %+v", mode, m)
		}
	}
}

func TestCompareRunShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := testScale()
	rows, err := CompareRun(kabrDS, Config{Scale: sc, OutDir: t.TempDir(), Parallelism: 2, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Unopt <= 0 || r.Opt <= 0 || r.Speedup <= 0 {
			t.Errorf("row %s = %+v", r.Query, r)
		}
	}
	table := FormatCompare("Fig 4 (KABR-sim)", rows)
	if !strings.Contains(table, "Q10") || !strings.Contains(table, "average") {
		t.Errorf("table:\n%s", table)
	}
	if AverageSpeedup(rows) <= 0 {
		t.Error("average speedup")
	}
}

func TestDataJoinRunShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := testScale()
	rows, err := DataJoinRun(kabrDS, Config{Scale: sc, OutDir: t.TempDir(), Parallelism: 2, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	table := FormatDataJoin("Fig 5 (KABR-sim)", rows)
	if !strings.Contains(table, "Py+OpenCV") {
		t.Errorf("table:\n%s", table)
	}
}

func TestFmtDur(t *testing.T) {
	if fmtDur(1500*time.Millisecond) != "1.50s" {
		t.Error(fmtDur(1500 * time.Millisecond))
	}
	if fmtDur(2500*time.Microsecond) != "2.5ms" {
		t.Error(fmtDur(2500 * time.Microsecond))
	}
	if fmtDur(900*time.Nanosecond) != "0µs" {
		t.Error(fmtDur(900 * time.Nanosecond))
	}
}

func TestAblationRunShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := testScale()
	rows, err := AblationRun(kabrDS, "Q2", Config{Scale: sc, OutDir: t.TempDir(), Parallelism: 2, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationConfigs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		if r.Wall <= 0 {
			t.Errorf("%s: wall = %v", r.Config, r.Wall)
		}
		byName[r.Config] = r
	}
	// The none config copies nothing; the all config copies something
	// (Q2 splices keyframe-dense KABR clips).
	if byName["none"].Copies != 0 {
		t.Error("none config should not copy")
	}
	if byName["all"].Copies == 0 {
		t.Error("all config should copy")
	}
	if byName["all"].Encodes >= byName["none"].Encodes {
		t.Error("all config should encode less than none")
	}
	table := FormatAblation("ablation", rows)
	if !strings.Contains(table, "smartcut-only") || !strings.Contains(table, "Speedup") {
		t.Errorf("table:\n%s", table)
	}
	if _, err := AblationRun(kabrDS, "Q99", Config{Scale: sc, OutDir: t.TempDir(), Repeats: 1}); err == nil {
		t.Error("unknown query should fail")
	}
}

func TestStreamingRunShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := testScale()
	rows, err := StreamingRun(kabrDS, "Q2", Config{Scale: sc, OutDir: t.TempDir(), Parallelism: 2, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(streamingConcurrency) {
		t.Fatalf("rows = %d, want %d", len(rows), len(streamingConcurrency))
	}
	for i, r := range rows {
		if r.Streams != streamingConcurrency[i] {
			t.Errorf("row %d streams = %d, want %d", i, r.Streams, streamingConcurrency[i])
		}
		if r.Segments < 2 {
			t.Errorf("row %d segments = %d; the splice query should keep multiple segments", i, r.Segments)
		}
		if r.Wall <= 0 || r.TTFF <= 0 || r.TTFFMax < r.TTFF {
			t.Errorf("row %d timings: wall=%v ttff=%v ttffmax=%v", i, r.Wall, r.TTFF, r.TTFFMax)
		}
		// The tentpole's headline: playback can start well before the
		// whole splice is synthesized.
		if r.TTFF >= r.Wall {
			t.Errorf("row %d TTFF %v >= wall %v; streaming delivered nothing early", i, r.TTFF, r.Wall)
		}
		if !r.ByteIdentical {
			t.Errorf("row %d: streamed bytes differ from the buffered reference", i)
		}
	}
	table := FormatStreaming("streaming", rows)
	if !strings.Contains(table, "TTFF") || !strings.Contains(table, "MaxGap") {
		t.Errorf("table:\n%s", table)
	}
	if _, err := StreamingRun(kabrDS, "Q99", Config{Scale: sc, OutDir: t.TempDir(), Repeats: 1}); err == nil {
		t.Error("unknown query should fail")
	}
}

func TestDeltaStreamingSection(t *testing.T) {
	old := &ReportFile{}
	old.Streaming = append(old.Streaming, struct {
		Dataset       string  `json:"dataset"`
		Query         string  `json:"query"`
		Streams       int     `json:"streams"`
		WallSeconds   float64 `json:"wall_seconds"`
		TTFFSeconds   float64 `json:"ttff_seconds"`
		MaxGapSeconds float64 `json:"max_gap_seconds"`
	}{"kabr-sim", "Q7", 4, 2.0, 0.1, 0.5})
	cur := &ReportFile{}
	cur.Streaming = append(cur.Streaming, struct {
		Dataset       string  `json:"dataset"`
		Query         string  `json:"query"`
		Streams       int     `json:"streams"`
		WallSeconds   float64 `json:"wall_seconds"`
		TTFFSeconds   float64 `json:"ttff_seconds"`
		MaxGapSeconds float64 `json:"max_gap_seconds"`
	}{"kabr-sim", "Q7", 4, 2.1, 0.3, 0.6})
	rows := Delta(old, cur)
	var ttff *DeltaRow
	for i := range rows {
		if rows[i].Metric == "ttff_seconds" {
			ttff = &rows[i]
		}
	}
	if ttff == nil {
		t.Fatal("no ttff_seconds delta row")
	}
	if ttff.Query != "Q7@4" {
		t.Errorf("ttff row query = %q, want Q7@4", ttff.Query)
	}
	if !ttff.Regressed() {
		t.Errorf("3x TTFF slowdown not flagged (ratio %.2f)", ttff.Ratio)
	}
	if got := len(rows); got != 3 {
		t.Errorf("delta rows = %d, want 3 (ttff, wall, max_gap)", got)
	}
}
