package benchkit

// Overload sweep and chaos-overload scenario: an in-process replica of
// v2vserve's admission front door (plan → cost → Acquire → execute →
// Release) is driven with seeded request bursts at multiples of the
// measured service rate, measuring goodput, tail latency, and shed rate —
// and, under an injected memory-pressure episode, verifying that the
// server sheds with typed retryable errors and shrinks its cache budget
// instead of erroring mid-stream or growing without bound.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"v2v/internal/admit"
	"v2v/internal/core"
	"v2v/internal/faults"
	"v2v/internal/media"
	"v2v/internal/obs"
	"v2v/internal/vql"
)

// frontDoor serves synthesis requests through an admission controller the
// way cmd/v2vserve does, without importing the command: POST body is a
// spec, X-Tenant selects the fairness bucket, X-Deadline-Ms the latency
// budget; sheds answer 429/503 with Retry-After.
type frontDoor struct {
	ctrl        *admit.Controller
	gop         *media.GOPCache
	res         *media.ResultCache
	arb         *media.Arbiter
	parallelism int
}

// newFrontDoor builds a front door with a GOP+result cache stack under one
// arbitrated budget and the given admission config.
func newFrontDoor(cfg admit.Config, parallelism int, cacheBudget int64) *frontDoor {
	fd := &frontDoor{
		ctrl:        admit.NewController(cfg),
		gop:         media.NewGOPCache(cacheBudget / 2),
		res:         media.NewResultCache(cacheBudget / 2),
		arb:         media.NewArbiter(cacheBudget),
		parallelism: parallelism,
	}
	fd.gop.AttachArbiter(fd.arb)
	fd.res.AttachArbiter(fd.arb)
	return fd
}

func (fd *frontDoor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := vql.Parse(string(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	o := core.Options{
		Optimize: true, DataRewrite: true,
		Parallelism: fd.parallelism, Conceal: true,
		GOPCache: fd.gop, ResultCache: fd.res,
	}
	pr, err := core.Prepare(spec, o)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tenant := strings.TrimSpace(r.Header.Get("X-Tenant"))
	if tenant == "" {
		tenant = admit.DefaultTenant
	}
	ctx := r.Context()
	var deadline time.Time
	if ms := r.Header.Get("X-Deadline-Ms"); ms != "" {
		n, perr := strconv.Atoi(ms)
		if perr != nil || n <= 0 {
			http.Error(w, "invalid X-Deadline-Ms", http.StatusBadRequest)
			return
		}
		deadline = time.Now().Add(time.Duration(n) * time.Millisecond)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	tk, aerr := fd.ctrl.Acquire(ctx, admit.Request{
		Tenant: tenant, Cost: pr.EstimatedCost().Units(), Deadline: deadline,
	})
	if aerr != nil {
		if shed := (*admit.ShedError)(nil); errors.As(aerr, &shed) {
			secs := int((shed.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, aerr.Error(), admit.HTTPStatus(aerr))
			return
		}
		http.Error(w, aerr.Error(), http.StatusServiceUnavailable)
		return
	}
	rec := obs.NewRecorder()
	o.Recorder = rec
	defer tk.Release(rec)
	w.Header().Set("Content-Type", "application/x-v2v-stream")
	// A mid-stream failure truncates the response (headers are out); the
	// rows classify that as a failed request — the invariant the chaos
	// scenario checks is that overload surfaces as typed sheds instead.
	_, _ = pr.SynthesizeStreamContext(ctx, w, o)
}

// OverloadRow reports one offered-load point of the sweep.
type OverloadRow struct {
	// Load is the offered-load multiple of the measured service rate.
	Load float64
	// Offered/Completed/Shed/Failed partition the requests: sheds are
	// typed 429/503 responses carrying Retry-After; failures are anything
	// else that did not complete (the overload invariant violations).
	Offered   int
	Completed int
	Shed      int
	Failed    int
	// ShedRate is Shed/Offered.
	ShedRate float64
	// GoodputQPS is completed requests per second of burst wall time.
	GoodputQPS float64
	// P99 is the 99th-percentile end-to-end latency of completed requests.
	P99 time.Duration
	// TenantCompleted counts completions per tenant (the weighted-fairness
	// signal: with weights 3:1 under saturation, completions should split
	// roughly 3:1).
	TenantCompleted map[string]int
}

// overloadLoads are the offered-load multiples the sweep measures.
var overloadLoads = []float64{1, 4, 16}

// overloadRequests is the number of requests per load point.
const overloadRequests = 24

// overloadAdmitConfig is deliberately tight — two slots, a four-deep
// queue — so the sweep exercises shedding at small request counts instead
// of needing thousands of requests to saturate a real host.
func overloadAdmitConfig() admit.Config {
	return admit.Config{
		SlotCap:  2,
		MaxQueue: 4,
		MaxWait:  30 * time.Second,
		Weights:  map[string]float64{"gold": 3, "free": 1},
	}
}

// overloadResult is one request's classified outcome.
type overloadResult struct {
	tenant    string
	status    int
	wall      time.Duration
	retryable bool // Retry-After present on a shed response
	err       error
	truncated bool // 200 whose stream ended without the end marker
}

// runBurst fires len(offsets) requests at the front door on the given
// arrival schedule, alternating tenants gold,gold,gold,free (matching the
// 3:1 weights), and classifies every outcome.
func runBurst(url, src string, offsets []time.Duration) []overloadResult {
	results := make([]overloadResult, len(offsets))
	var wg sync.WaitGroup
	start := time.Now()
	for i, off := range offsets {
		wg.Add(1)
		go func(i int, off time.Duration) {
			defer wg.Done()
			tenant := "gold"
			if i%4 == 3 {
				tenant = "free"
			}
			time.Sleep(off - time.Since(start))
			t0 := time.Now()
			req, _ := http.NewRequest("POST", url, strings.NewReader(src))
			req.Header.Set("X-Tenant", tenant)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				results[i] = overloadResult{tenant: tenant, err: err}
				return
			}
			truncated := false
			if resp.StatusCode == http.StatusOK {
				// Read the VMS stream to its end marker; any parse or read
				// error means the server errored mid-stream.
				truncated = readStreamToEnd(resp.Body) != nil
			} else {
				_, _ = io.Copy(io.Discard, resp.Body)
			}
			resp.Body.Close()
			results[i] = overloadResult{
				tenant:    tenant,
				status:    resp.StatusCode,
				wall:      time.Since(t0),
				retryable: resp.Header.Get("Retry-After") != "",
				truncated: truncated,
			}
		}(i, off)
	}
	wg.Wait()
	return results
}

// readStreamToEnd consumes a VMS stream until its clean end-of-stream
// marker, returning an error on truncation or corruption.
func readStreamToEnd(r io.Reader) error {
	sr, err := media.NewStreamReader(r)
	if err != nil {
		return err
	}
	for {
		_, _, err := sr.NextPacket()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// classify folds raw results into a row; burstWall is the wall time the
// whole burst took (for goodput).
func classify(load float64, results []overloadResult, burstWall time.Duration) OverloadRow {
	row := OverloadRow{Load: load, Offered: len(results), TenantCompleted: map[string]int{}}
	var lat []time.Duration
	for _, res := range results {
		switch {
		case res.err != nil || res.truncated:
			row.Failed++
		case res.status == http.StatusOK:
			row.Completed++
			row.TenantCompleted[res.tenant]++
			lat = append(lat, res.wall)
		case (res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable) && res.retryable:
			row.Shed++
		default:
			// Wrong status or a shed without Retry-After: a contract break.
			row.Failed++
		}
	}
	if row.Offered > 0 {
		row.ShedRate = float64(row.Shed) / float64(row.Offered)
	}
	if s := burstWall.Seconds(); s > 0 {
		row.GoodputQPS = float64(row.Completed) / s
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		row.P99 = lat[(len(lat)*99)/100]
	}
	return row
}

// OverloadRun measures the admission front door at 1x/4x/16x offered
// load: goodput, p99 latency of completed requests, and shed rate, with
// two tenants weighted 3:1. Every shed must be a typed 429/503 with
// Retry-After; anything else counts in the row's Failed column.
func OverloadRun(ds *Dataset, cfg Config, seed int64) ([]OverloadRow, error) {
	q, ok := QueryByID("Q4")
	if !ok {
		return nil, fmt.Errorf("benchkit: overload query missing")
	}
	src := q.BuildSpecSource(ds, cfg.Scale)
	fd := newFrontDoor(overloadAdmitConfig(), cfg.Parallelism, 32<<20)
	ts := httptest.NewServer(fd)
	defer ts.Close()

	base, err := calibrate(ts.URL, src)
	if err != nil {
		return nil, fmt.Errorf("benchkit: overload calibration: %w", err)
	}

	var rows []OverloadRow
	for li, load := range overloadLoads {
		offsets := faults.OverloadBurst(seed+int64(li), overloadRequests, base, load)
		t0 := time.Now()
		results := runBurst(ts.URL+"/", src, offsets)
		rows = append(rows, classify(load, results, time.Since(t0)))
	}
	return rows, nil
}

// calibrate measures the service time of one warm request (after one
// discarded cold request that also fills the caches).
func calibrate(url, src string) (time.Duration, error) {
	var base time.Duration
	for i := 0; i < 2; i++ {
		t0 := time.Now()
		resp, err := http.Post(url, "text/plain", strings.NewReader(src))
		if err != nil {
			return 0, err
		}
		_, rerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return 0, fmt.Errorf("calibration read (status %d): %w", resp.StatusCode, rerr)
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("calibration status %d", resp.StatusCode)
		}
		base = time.Since(t0)
	}
	if base <= 0 {
		base = time.Millisecond
	}
	return base, nil
}

// FormatOverload renders the sweep as a text table.
func FormatOverload(title string, rows []OverloadRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-6s %8s %10s %6s %7s %9s %12s %10s  %s\n",
		"load", "offered", "completed", "shed", "failed", "shedrate", "goodput", "p99", "per-tenant")
	for _, r := range rows {
		var tenants []string
		for t, n := range r.TenantCompleted {
			tenants = append(tenants, fmt.Sprintf("%s=%d", t, n))
		}
		sort.Strings(tenants)
		fmt.Fprintf(&sb, "%-6s %8d %10d %6d %7d %8.0f%% %9.2f/s %10s  %s\n",
			fmt.Sprintf("%gx", r.Load), r.Offered, r.Completed, r.Shed, r.Failed,
			r.ShedRate*100, r.GoodputQPS, r.P99.Round(time.Millisecond),
			strings.Join(tenants, " "))
	}
	return sb.String()
}

// ChaosOverloadResult reports the chaos-overload scenario: a 16x
// two-tenant burst while an injected memory-pressure episode ramps to
// critical and recedes. The invariants (checked by ChaosOverloadRun,
// reported here for the table) are: overload surfaces only as typed
// 429/503 sheds with Retry-After — never mid-stream errors; the
// arbitrated cache budget shrinks under pressure and recovers after.
type ChaosOverloadResult struct {
	Row OverloadRow
	// PreCacheBytes/MinCacheBytes/PostCacheBytes track arbiter-charged
	// cache bytes before, during, and after the pressure episode.
	PreCacheBytes  int64
	MinCacheBytes  int64
	PostCacheBytes int64
	// CriticalFactor is the pressure factor observed while the monitor
	// reported critical (0.25 when the episode engaged correctly);
	// FinalFactor after the episode receded (1 on full recovery).
	CriticalFactor float64
	FinalFactor    float64
}

// ChaosOverloadRun drives the front door with a seeded 16x burst while a
// seeded memory-pressure episode runs through the same monitor v2vserve
// uses, and verifies the overload invariants. Fault-induced sheds are
// expected; invariant violations return an error.
func ChaosOverloadRun(ds *Dataset, cfg Config, seed int64) (*ChaosOverloadResult, error) {
	q, ok := QueryByID("Q4")
	if !ok {
		return nil, fmt.Errorf("benchkit: chaos overload query missing")
	}
	src := q.BuildSpecSource(ds, cfg.Scale)
	fd := newFrontDoor(overloadAdmitConfig(), cfg.Parallelism, 16<<20)
	ts := httptest.NewServer(fd)
	defer ts.Close()

	// Calibration warms the GOP/result caches, so the episode has
	// resident bytes to squeeze.
	base, err := calibrate(ts.URL, src)
	if err != nil {
		return nil, fmt.Errorf("benchkit: chaos overload calibration: %w", err)
	}
	pre := fd.arb.Stats()
	res := &ChaosOverloadResult{PreCacheBytes: pre.Used, MinCacheBytes: pre.Used}

	// The synthetic episode feeds the same Monitor/OnChange plumbing the
	// server runs, stepped manually so the walk is deterministic.
	ep := faults.NewPressureEpisode(seed, 0.3, 0.95, 5, 4)
	const limit = 1 << 30
	sampler := ep.Sampler(limit)
	mon := admit.NewMonitor(time.Hour)
	mon.SetSampler(func() admit.MemSample {
		used, lim := sampler()
		return admit.MemSample{Used: used, Limit: lim}
	})
	mon.OnChange(func(l admit.PressureLevel) {
		f := l.Factor()
		fd.ctrl.SetPressureFactor(f)
		fd.arb.SetPressureFactor(f)
	})

	offsets := faults.OverloadBurst(seed, overloadRequests, base, 16)
	done := make(chan []overloadResult, 1)
	t0 := time.Now()
	go func() { done <- runBurst(ts.URL+"/", src, offsets) }()

	for !ep.Done() {
		mon.Poll()
		st := fd.arb.Stats()
		if st.Used < res.MinCacheBytes {
			res.MinCacheBytes = st.Used
		}
		if mon.Level() == admit.PressureCritical {
			res.CriticalFactor = st.PressureFactor
			// Slack of one GOP-sized entry: an insert may be in flight
			// between the eviction and this snapshot.
			if st.Used > st.Total+(1<<20) {
				return res, fmt.Errorf("benchkit: chaos overload: %d cache bytes resident over the pressure-scaled %d budget", st.Used, st.Total)
			}
		}
		time.Sleep(base / 4)
	}
	mon.Poll() // the final baseline sample clears the pressure level

	res.Row = classify(16, <-done, time.Since(t0))

	// Recovery: with the budget restored, a repeat request re-fills the
	// caches past the squeezed floor.
	if _, err := calibrate(ts.URL, src); err != nil {
		return res, fmt.Errorf("benchkit: chaos overload recovery request: %w", err)
	}
	post := fd.arb.Stats()
	res.PostCacheBytes = post.Used
	res.FinalFactor = post.PressureFactor

	switch {
	case res.Row.Failed > 0:
		return res, fmt.Errorf("benchkit: chaos overload: %d request(s) failed outside the shed contract (want typed 429/503 with Retry-After)", res.Row.Failed)
	case res.CriticalFactor != 0.25:
		return res, fmt.Errorf("benchkit: chaos overload: critical pressure factor %v, want 0.25", res.CriticalFactor)
	case res.FinalFactor != 1:
		return res, fmt.Errorf("benchkit: chaos overload: pressure factor %v after the episode, want full recovery to 1", res.FinalFactor)
	case res.PreCacheBytes > 4<<20 && res.MinCacheBytes >= res.PreCacheBytes:
		// With >25% of the 16 MiB budget resident, the critical quarter
		// budget must have evicted something.
		return res, fmt.Errorf("benchkit: chaos overload: cache bytes never shrank under pressure (pre %d, min %d)", res.PreCacheBytes, res.MinCacheBytes)
	}
	return res, nil
}

// FormatChaosOverload renders the scenario outcome as text.
func FormatChaosOverload(title string, r *ChaosOverloadResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	sb.WriteString(FormatOverload("16x burst under memory pressure:", []OverloadRow{r.Row}))
	fmt.Fprintf(&sb, "cache bytes: pre %d -> min %d under pressure -> post %d after recovery (factors: critical %.2f, final %.2f)\n",
		r.PreCacheBytes, r.MinCacheBytes, r.PostCacheBytes, r.CriticalFactor, r.FinalFactor)
	return sb.String()
}
