package benchkit

import (
	"fmt"
	"strings"

	"v2v/internal/rational"
)

// Query is one benchmark task from the paper's §V: Q1–Q5 use short
// (5-second) input segments, Q6–Q10 long (1-minute) ones.
type Query struct {
	ID   string
	Desc string
	// Long selects the 1-minute variant.
	Long bool
	// JoinsData marks the queries compared against the baseline in Fig. 5.
	JoinsData bool
	kind      queryKind
}

type queryKind uint8

const (
	qClip queryKind = iota
	qSplice
	qGrid
	qBlur
	qBoxes
)

// Queries returns the paper's ten benchmark queries in order.
func Queries() []Query {
	base := []struct {
		kind queryKind
		desc string
		data bool
	}{
		{qClip, "clip a segment of video", false},
		{qSplice, "clip 4 segments and splice them together", false},
		{qGrid, "clip 4 segments into a 2x2 grid", false},
		{qBlur, "clip a segment and apply a Gaussian blur", false},
		{qBoxes, "clip a segment and draw object bounding boxes", true},
	}
	var out []Query
	for i, b := range base {
		out = append(out, Query{
			ID: fmt.Sprintf("Q%d", i+1), Desc: b.desc + " (5 s input)",
			kind: b.kind, JoinsData: b.data,
		})
	}
	for i, b := range base {
		out = append(out, Query{
			ID: fmt.Sprintf("Q%d", i+6), Desc: b.desc + " (1 min input)",
			Long: true, kind: b.kind, JoinsData: b.data,
		})
	}
	return out
}

// QueryByID finds a query by its identifier ("Q1".."Q10").
func QueryByID(id string) (Query, bool) {
	for _, q := range Queries() {
		if strings.EqualFold(q.ID, id) {
			return q, true
		}
	}
	return Query{}, false
}

// segmentSeconds returns the query's input segment length under sc.
func (q Query) segmentSeconds(sc Scale) int64 {
	if q.Long {
		return sc.Long
	}
	return sc.Short
}

// clipStart returns the first clip's source start time: 2 seconds plus 7
// frames, deliberately off the keyframe grid so smart cuts (not plain
// copies) are exercised, matching arbitrary user-selected clip positions.
func clipStart(ds *Dataset) rational.Rat {
	return rational.FromInt(2).Add(rational.New(7, 1).Div(ds.Profile.FPS))
}

// sourceFor returns the video/annotation used for segment k: ToS draws
// every segment from the single film at staggered offsets; KABR draws
// segment k from video k.
func (ds *Dataset) sourceFor(k int, segSeconds int64) (video, ann string, offset rational.Rat) {
	start := clipStart(ds)
	if len(ds.Videos) > 1 {
		return fmt.Sprintf("vid%d", k), fmt.Sprintf("bb%d", k), start
	}
	// Single-film dataset: stagger segments by L + gap seconds.
	gap := (ds.Seconds - 3 - 4*segSeconds) / 3
	if gap > 5 {
		gap = 5
	}
	if gap < 0 {
		gap = 0
	}
	off := start.Add(rational.FromInt(int64(k) * (segSeconds + gap)))
	return "vid0", "bb0", off
}

// BuildSpecSource renders the query as a textual V2V spec over ds.
func (q Query) BuildSpecSource(ds *Dataset, sc Scale) string {
	L := q.segmentSeconds(sc)
	step := rational.One.Div(ds.Profile.FPS)
	var sb strings.Builder

	declare := func(needAnn bool, segs int) {
		sb.WriteString("videos {\n")
		if len(ds.Videos) > 1 {
			for i := 0; i < segs; i++ {
				fmt.Fprintf(&sb, "  vid%d: %q;\n", i, ds.Videos[i])
			}
		} else {
			fmt.Fprintf(&sb, "  vid0: %q;\n", ds.Videos[0])
		}
		sb.WriteString("}\n")
		if needAnn {
			sb.WriteString("data {\n")
			if len(ds.Videos) > 1 {
				fmt.Fprintf(&sb, "  bb0: %q;\n", ds.Anns[0])
			} else {
				fmt.Fprintf(&sb, "  bb0: %q;\n", ds.Anns[0])
			}
			sb.WriteString("}\n")
		}
	}

	switch q.kind {
	case qClip:
		fmt.Fprintf(&sb, "timedomain range(0, %d, %s);\n", L, step)
		declare(false, 1)
		v, _, off := ds.sourceFor(0, L)
		fmt.Fprintf(&sb, "render(t) = %s[t + %s];\n", v, off)
	case qSplice:
		fmt.Fprintf(&sb, "timedomain range(0, %d, %s);\n", 4*L, step)
		declare(false, 4)
		sb.WriteString("render(t) = match t {\n")
		for k := 0; k < 4; k++ {
			v, _, off := ds.sourceFor(k, L)
			lo, hi := int64(k)*L, int64(k+1)*L
			// Source time = (t - lo) + off.
			shift := off.Sub(rational.FromInt(lo))
			fmt.Fprintf(&sb, "  t in range(%d, %d, %s) => %s[t + %s],\n", lo, hi, step, v, shift)
		}
		sb.WriteString("};\n")
	case qGrid:
		fmt.Fprintf(&sb, "timedomain range(0, %d, %s);\n", L, step)
		declare(false, 4)
		var args []string
		for k := 0; k < 4; k++ {
			v, _, off := ds.sourceFor(k, L)
			args = append(args, fmt.Sprintf("%s[t + %s]", v, off))
		}
		fmt.Fprintf(&sb, "render(t) = grid(%s);\n", strings.Join(args, ", "))
	case qBlur:
		fmt.Fprintf(&sb, "timedomain range(0, %d, %s);\n", L, step)
		declare(false, 1)
		v, _, off := ds.sourceFor(0, L)
		fmt.Fprintf(&sb, "render(t) = blur(%s[t + %s], 1.5);\n", v, off)
	case qBoxes:
		fmt.Fprintf(&sb, "timedomain range(0, %d, %s);\n", L, step)
		declare(true, 1)
		v, ann, off := ds.sourceFor(0, L)
		_ = ann
		fmt.Fprintf(&sb, "render(t) = boxes(%s[t + %s], bb0[t + %s]);\n", v, off, off)
	}
	return sb.String()
}
