package benchkit

import (
	"fmt"
	"strings"
	"time"
)

// FormatCompare renders Fig. 3/4-style rows as an aligned text table with
// the average speedup footer the paper quotes.
func FormatCompare(title string, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-6s %12s %12s %9s\n", "Query", "Unopt", "Optimized", "Speedup")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s %12s %12s %8.2fx\n", r.Query, fmtDur(r.Unopt), fmtDur(r.Opt), r.Speedup)
		sum += r.Speedup
	}
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "%-6s %12s %12s %8.2fx (average)\n", "", "", "", sum/float64(len(rows)))
	}
	return sb.String()
}

// FormatDataJoin renders Fig. 5-style rows.
func FormatDataJoin(title string, rows []DataJoinRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-10s %-6s %12s %12s %9s\n", "Dataset", "Query", "Py+OpenCV", "V2V", "Speedup")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-6s %12s %12s %8.2fx\n",
			r.Dataset, r.Query, fmtDur(r.Baseline), fmtDur(r.V2V), r.Speedup)
		sum += r.Speedup
	}
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "%-10s %-6s %12s %12s %8.2fx (average)\n", "", "", "", "", sum/float64(len(rows)))
	}
	return sb.String()
}

// FormatCache renders the cache comparison rows: wall time and decode
// counts with caches off, with a cold/warm GOP cache, and with a cold/warm
// GOP+result cache stack, plus the per-query decode reduction. Rows where
// the reduction is 1.00x are plans the GOP cache cannot help (pure copies
// and smart cuts decode almost nothing to begin with); RDec/REnc are the
// warm result-stack run's decode and encode counts — 0/0 means the repeat
// was served entirely by splicing memoized output.
func FormatCache(title string, rows []CacheRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-6s %10s %10s %10s %9s %9s %9s %9s %10s %10s %6s %6s\n",
		"Query", "Off", "Cold", "Warm", "DecOff", "DecCold", "DecWarm", "DecRed",
		"ResCold", "ResWarm", "RDec", "REnc")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-6s %10s %10s %10s %9d %9d %9d %8.2fx %10s %10s %6d %6d\n",
			r.Query, fmtDur(r.Off), fmtDur(r.Cold), fmtDur(r.Warm),
			r.OffDecodes, r.ColdDecodes, r.WarmDecodes, r.DecodeReduction,
			fmtDur(r.ResultCold), fmtDur(r.ResultWarm),
			r.ResultWarmDecodes, r.ResultWarmEncodes)
	}
	return sb.String()
}

// AverageSpeedup returns the arithmetic mean of row speedups — the number
// the paper's abstract quotes (3.44x on ToS, 5.07x on KABR).
func AverageSpeedup(rows []Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += r.Speedup
	}
	return sum / float64(len(rows))
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", seconds(d))
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d/time.Microsecond)
	}
}
