package benchkit

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"v2v/internal/container"
	"v2v/internal/core"
	"v2v/internal/faults"
	"v2v/internal/obs"
	"v2v/internal/vql"
)

// ChaosRow reports one synthesis attempt under fault injection.
type ChaosRow struct {
	Query string
	// Mode is "strict" or "conceal".
	Mode string
	// OK means the synthesis completed and produced a readable VMF file.
	OK bool
	// Err is the failure message for runs that stopped (expected under
	// chaos — the invariant is *clean* failure, not success).
	Err string
	// Concealed counts frames replaced by the concealment path.
	Concealed int64
	// Faults is what the injector actually delivered during the run.
	Faults faults.Stats
	Wall   time.Duration
}

// ChaosRun executes every benchmark query in both strict and concealment
// mode while a seeded fault injector corrupts reads (bit flips, short
// reads, retryable transients, latency). It verifies the robustness
// invariants the executor promises:
//
//   - a failed run leaves nothing at the output path — no file, no temp;
//   - a completed run's output opens as a valid VMF file.
//
// Violations return an error; fault-induced failures do not. Equal seeds
// replay the same fault stream (modulo shard scheduling).
func ChaosRun(ds *Dataset, cfg Config, seed int64) ([]ChaosRow, error) {
	defer faults.Deactivate()
	var rows []ChaosRow
	for qi, q := range Queries() {
		src := q.BuildSpecSource(ds, cfg.Scale)
		spec, err := vql.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("benchkit: chaos %s: %w", q.ID, err)
		}
		for mi, mode := range []string{"strict", "conceal"} {
			out := filepath.Join(cfg.OutDir, fmt.Sprintf("chaos-%s-%s.vmf", q.ID, mode))
			inj := faults.New(faults.Config{
				// Distinct stream per (query, mode), reproducible per seed.
				Seed:        seed + int64(qi)*2 + int64(mi),
				BitFlip:     0.02,
				Truncate:    0.005,
				Transient:   0.01,
				Latency:     200 * time.Microsecond,
				LatencyProb: 0.01,
			})
			row := ChaosRow{Query: q.ID, Mode: mode}
			// The flight record (nil-safe when cfg.Flight is unset) captures
			// what each attempt was doing, for post-mortem dumps of failing
			// chaos jobs.
			freq := cfg.Flight.Start(obs.NewTraceID(),
				fmt.Sprintf("chaos %s/%s seed=%d: %s", q.ID, mode, seed, src))
			o := core.Options{
				Optimize: true, DataRewrite: true,
				Parallelism: cfg.Parallelism,
				Conceal:     mode == "conceal",
				Trace:       cfg.Trace,
				Recorder:    freq.Recorder(),
			}
			start := time.Now()
			inj.Activate()
			res, err := core.Synthesize(spec, out, o)
			faults.Deactivate()
			row.Wall = time.Since(start)
			row.Faults = inj.Stats()
			if err != nil {
				freq.Finish("error", err)
				row.Err = err.Error()
				// Invariant: failure leaves no partial output behind.
				for _, p := range []string{out, out + ".tmp"} {
					if _, serr := os.Stat(p); !errors.Is(serr, os.ErrNotExist) {
						return nil, fmt.Errorf("benchkit: chaos %s/%s: failed run left %s behind", q.ID, mode, p)
					}
				}
			} else {
				freq.Finish("ok", nil)
				row.OK = true
				row.Concealed = res.Metrics.TotalConcealed()
				// Invariant: a completed run produced a readable container.
				r, oerr := container.Open(out)
				if oerr != nil {
					return nil, fmt.Errorf("benchkit: chaos %s/%s: completed run wrote unreadable output: %w", q.ID, mode, oerr)
				}
				r.Close()
				os.Remove(out)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatChaos renders chaos rows as a text table.
func FormatChaos(title string, rows []ChaosRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-6s %-8s %-9s %10s %7s %7s %7s %9s  %s\n",
		"query", "mode", "outcome", "concealed", "flips", "trunc", "trans", "wall", "error")
	for _, r := range rows {
		outcome := "ok"
		errMsg := ""
		if !r.OK {
			outcome = "failed"
			errMsg = r.Err
			if len(errMsg) > 60 {
				errMsg = errMsg[:57] + "..."
			}
		}
		fmt.Fprintf(&sb, "%-6s %-8s %-9s %10d %7d %7d %7d %9s  %s\n",
			r.Query, r.Mode, outcome, r.Concealed,
			r.Faults.BitFlips, r.Faults.Truncations, r.Faults.Transients,
			r.Wall.Round(time.Millisecond), errMsg)
	}
	return sb.String()
}
