package benchkit

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"v2v/internal/baseline"
	"v2v/internal/core"
	"v2v/internal/media"
	"v2v/internal/obs"
	"v2v/internal/vql"
)

// Config carries the measurement knobs shared by every benchmark runner.
type Config struct {
	// Scale selects quick or paper-shaped dataset durations.
	Scale Scale
	// OutDir receives (and has removed) the synthesized output files.
	OutDir string
	// Parallelism caps shard fan-out (0 = GOMAXPROCS).
	Parallelism int
	// Repeats is the number of measured runs per configuration (after one
	// discarded warm-up); values < 1 mean 1.
	Repeats int
	// GOPCache, when non-nil, routes source decodes through a shared
	// decoded-GOP cache (see media.GOPCache). CacheRun manages its own
	// caches; leave nil for the standard figures.
	GOPCache *media.GOPCache
	// Trace, when set, records one span per run (wrapping the pipeline's
	// own stage spans) for the whole sweep.
	Trace *obs.Trace
}

// Mode selects the engine configuration for one measurement.
type Mode string

const (
	// ModeUnopt runs the unoptimized V2V plan (Figs. 3 and 4 left bars).
	ModeUnopt Mode = "unopt"
	// ModeOpt runs the fully optimized V2V pipeline (right bars).
	ModeOpt Mode = "opt"
	// ModeBaseline runs the Python+OpenCV-equivalent engine (Fig. 5).
	ModeBaseline Mode = "baseline"
	// ModeCacheOff/Cold/Warm are the optimized pipeline without a GOP
	// cache, with a fresh cache, and with an already-populated cache — the
	// three configurations CacheRun compares.
	ModeCacheOff  Mode = "cache-off"
	ModeCacheCold Mode = "cache-cold"
	ModeCacheWarm Mode = "cache-warm"
)

// Measurement is one timed run.
type Measurement struct {
	Dataset string
	Query   string
	Mode    Mode
	Wall    time.Duration
	// Work counters (copies/encodes/decodes across the run).
	Encodes int64
	Decodes int64
	Copies  int64
	// OutFrames is the output frame count (sanity check between modes).
	OutFrames int64
	// CacheHits/CacheMisses are the run's GOP-cache lookup deltas (zero
	// when Config.GOPCache is nil).
	CacheHits   int64
	CacheMisses int64
	// OutputSHA256 fingerprints the output file so cache-on and cache-off
	// runs can be proven byte-identical.
	OutputSHA256 string
}

// RunOnce synthesizes the query once in the given mode and returns the
// measurement. The output file is written under cfg.OutDir and removed
// afterwards.
func RunOnce(ds *Dataset, q Query, mode Mode, cfg Config) (Measurement, error) {
	src := q.BuildSpecSource(ds, cfg.Scale)
	spec, err := vql.Parse(src)
	if err != nil {
		return Measurement{}, fmt.Errorf("benchkit: %s/%s: %w", ds.Name, q.ID, err)
	}
	out := filepath.Join(cfg.OutDir, fmt.Sprintf("%s-%s-%s.vmf", ds.Name, q.ID, mode))
	defer os.Remove(out)

	m := Measurement{Dataset: ds.Name, Query: q.ID, Mode: mode}
	sp := cfg.Trace.StartSpan(fmt.Sprintf("%s/%s/%s", ds.Name, q.ID, mode))
	defer sp.End()
	start := time.Now()
	switch mode {
	case ModeBaseline:
		bm, err := baseline.Run(spec, out, nil)
		if err != nil {
			return m, err
		}
		m.Wall = time.Since(start)
		m.Encodes = bm.Output.FramesEncoded
		m.Decodes = bm.Source.FramesDecoded
		m.OutFrames = bm.FramesRendered
	default:
		o := core.Options{Parallelism: cfg.Parallelism, GOPCache: cfg.GOPCache, Trace: cfg.Trace}
		if mode != ModeUnopt {
			o.Optimize = true
			o.DataRewrite = true
		}
		var cacheBefore media.GOPCacheStats
		if cfg.GOPCache != nil {
			cacheBefore = cfg.GOPCache.Stats()
		}
		res, err := core.Synthesize(spec, out, o)
		if err != nil {
			return m, err
		}
		m.Wall = time.Since(start)
		m.Encodes = res.Metrics.TotalEncodes()
		m.Decodes = res.Metrics.TotalDecodes()
		m.Copies = res.Metrics.Output.PacketsCopied
		m.OutFrames = m.Copies + res.Metrics.Output.FramesEncoded
		if cfg.GOPCache != nil {
			after := cfg.GOPCache.Stats()
			m.CacheHits = after.Hits - cacheBefore.Hits
			m.CacheMisses = after.Misses - cacheBefore.Misses
		}
	}
	if h, err := fileSHA256(out); err == nil {
		m.OutputSHA256 = h
	}
	sp.SetAttr("wall_us", m.Wall.Microseconds())
	sp.SetAttr("encodes", m.Encodes)
	sp.SetAttr("decodes", m.Decodes)
	sp.SetAttr("copies", m.Copies)
	return m, nil
}

// Repeat runs RunOnce cfg.Repeats times (after one discarded warm-up,
// like the paper's methodology) and returns the measurement with the
// average wall time.
func Repeat(ds *Dataset, q Query, mode Mode, cfg Config) (Measurement, error) {
	n := cfg.Repeats
	if n < 1 {
		n = 1
	}
	if _, err := RunOnce(ds, q, mode, cfg); err != nil {
		return Measurement{}, err // warm-up
	}
	var acc Measurement
	for i := 0; i < n; i++ {
		m, err := RunOnce(ds, q, mode, cfg)
		if err != nil {
			return Measurement{}, err
		}
		if i == 0 {
			acc = m
		}
		if i > 0 {
			acc.Wall += m.Wall
		}
	}
	acc.Wall /= time.Duration(n)
	return acc, nil
}

// Row is one line of a Fig. 3/4 table.
type Row struct {
	Query   string
	Unopt   time.Duration
	Opt     time.Duration
	Speedup float64
}

// CompareRun produces the unopt-vs-opt rows for every query on ds — the
// data behind Fig. 3 (ToS) and Fig. 4 (KABR).
func CompareRun(ds *Dataset, cfg Config) ([]Row, error) {
	var rows []Row
	for _, q := range Queries() {
		u, err := Repeat(ds, q, ModeUnopt, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s unopt: %w", ds.Name, q.ID, err)
		}
		o, err := Repeat(ds, q, ModeOpt, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s opt: %w", ds.Name, q.ID, err)
		}
		if u.OutFrames != o.OutFrames {
			return nil, fmt.Errorf("benchkit: %s %s output frame mismatch: %d vs %d",
				ds.Name, q.ID, u.OutFrames, o.OutFrames)
		}
		rows = append(rows, Row{
			Query: q.ID, Unopt: u.Wall, Opt: o.Wall,
			Speedup: seconds(u.Wall) / seconds(o.Wall),
		})
	}
	return rows, nil
}

// DataJoinRow is one line of the Fig. 5 table.
type DataJoinRow struct {
	Dataset  string
	Query    string
	Baseline time.Duration
	V2V      time.Duration
	Speedup  float64
}

// DataJoinRun measures the data-joining queries (Q5, Q10) against the
// baseline engine on ds — the data behind Fig. 5.
func DataJoinRun(ds *Dataset, cfg Config) ([]DataJoinRow, error) {
	var rows []DataJoinRow
	for _, q := range Queries() {
		if !q.JoinsData {
			continue
		}
		b, err := Repeat(ds, q, ModeBaseline, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s baseline: %w", ds.Name, q.ID, err)
		}
		o, err := Repeat(ds, q, ModeOpt, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s v2v: %w", ds.Name, q.ID, err)
		}
		rows = append(rows, DataJoinRow{
			Dataset: ds.Name, Query: q.ID, Baseline: b.Wall, V2V: o.Wall,
			Speedup: seconds(b.Wall) / seconds(o.Wall),
		})
	}
	return rows, nil
}

// CacheRow is one line of the GOP-cache benchmark table: the same
// optimized query with no cache, a cold cache, and a warm (pre-populated)
// cache. Identical outputs across the three runs are verified by SHA-256.
type CacheRow struct {
	Query string
	Off   time.Duration
	Cold  time.Duration
	Warm  time.Duration
	// Decode counts per configuration; DecodeReduction = OffDecodes /
	// ColdDecodes (how much decoding the cache removed within one run).
	OffDecodes      int64
	ColdDecodes     int64
	WarmDecodes     int64
	DecodeReduction float64
	// Hit/miss deltas for the cold and warm runs.
	ColdHits, ColdMisses int64
	WarmHits, WarmMisses int64
}

// CacheRun measures every query in the optimized pipeline under three
// GOP-cache configurations: off, cold (fresh cache), and warm (the same
// cache reused, so prior decodes are resident). It verifies the three runs
// produce byte-identical outputs. Uses single runs (not Repeat) because a
// warm-up run would pre-populate the cold cache.
func CacheRun(ds *Dataset, cfg Config) ([]CacheRow, error) {
	var rows []CacheRow
	for _, q := range Queries() {
		offCfg := cfg
		offCfg.GOPCache = nil
		off, err := RunOnce(ds, q, ModeCacheOff, offCfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s cache-off: %w", ds.Name, q.ID, err)
		}
		onCfg := cfg
		onCfg.GOPCache = media.NewGOPCache(0)
		cold, err := RunOnce(ds, q, ModeCacheCold, onCfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s cache-cold: %w", ds.Name, q.ID, err)
		}
		warm, err := RunOnce(ds, q, ModeCacheWarm, onCfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s cache-warm: %w", ds.Name, q.ID, err)
		}
		for _, m := range []Measurement{cold, warm} {
			if m.OutputSHA256 != off.OutputSHA256 {
				return nil, fmt.Errorf("benchkit: %s %s: %s output %s differs from cache-off %s",
					ds.Name, q.ID, m.Mode, m.OutputSHA256, off.OutputSHA256)
			}
		}
		row := CacheRow{
			Query: q.ID, Off: off.Wall, Cold: cold.Wall, Warm: warm.Wall,
			OffDecodes: off.Decodes, ColdDecodes: cold.Decodes, WarmDecodes: warm.Decodes,
			ColdHits: cold.CacheHits, ColdMisses: cold.CacheMisses,
			WarmHits: warm.CacheHits, WarmMisses: warm.CacheMisses,
		}
		if cold.Decodes > 0 {
			row.DecodeReduction = float64(off.Decodes) / float64(cold.Decodes)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// NewGOPCache builds a decoded-GOP cache for Config.GOPCache; budgetBytes
// <= 0 defers sizing to the executor.
func NewGOPCache(budgetBytes int64) *media.GOPCache { return media.NewGOPCache(budgetBytes) }

// fileSHA256 fingerprints a file's contents.
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }
