package benchkit

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"v2v/internal/baseline"
	"v2v/internal/core"
	"v2v/internal/obs"
	"v2v/internal/vql"
)

// Config carries the measurement knobs shared by every benchmark runner.
type Config struct {
	// Scale selects quick or paper-shaped dataset durations.
	Scale Scale
	// OutDir receives (and has removed) the synthesized output files.
	OutDir string
	// Parallelism caps shard fan-out (0 = GOMAXPROCS).
	Parallelism int
	// Repeats is the number of measured runs per configuration (after one
	// discarded warm-up); values < 1 mean 1.
	Repeats int
	// Trace, when set, records one span per run (wrapping the pipeline's
	// own stage spans) for the whole sweep.
	Trace *obs.Trace
}

// Mode selects the engine configuration for one measurement.
type Mode string

const (
	// ModeUnopt runs the unoptimized V2V plan (Figs. 3 and 4 left bars).
	ModeUnopt Mode = "unopt"
	// ModeOpt runs the fully optimized V2V pipeline (right bars).
	ModeOpt Mode = "opt"
	// ModeBaseline runs the Python+OpenCV-equivalent engine (Fig. 5).
	ModeBaseline Mode = "baseline"
)

// Measurement is one timed run.
type Measurement struct {
	Dataset string
	Query   string
	Mode    Mode
	Wall    time.Duration
	// Work counters (copies/encodes/decodes across the run).
	Encodes int64
	Decodes int64
	Copies  int64
	// OutFrames is the output frame count (sanity check between modes).
	OutFrames int64
}

// RunOnce synthesizes the query once in the given mode and returns the
// measurement. The output file is written under cfg.OutDir and removed
// afterwards.
func RunOnce(ds *Dataset, q Query, mode Mode, cfg Config) (Measurement, error) {
	src := q.BuildSpecSource(ds, cfg.Scale)
	spec, err := vql.Parse(src)
	if err != nil {
		return Measurement{}, fmt.Errorf("benchkit: %s/%s: %w", ds.Name, q.ID, err)
	}
	out := filepath.Join(cfg.OutDir, fmt.Sprintf("%s-%s-%s.vmf", ds.Name, q.ID, mode))
	defer os.Remove(out)

	m := Measurement{Dataset: ds.Name, Query: q.ID, Mode: mode}
	sp := cfg.Trace.StartSpan(fmt.Sprintf("%s/%s/%s", ds.Name, q.ID, mode))
	defer sp.End()
	start := time.Now()
	switch mode {
	case ModeBaseline:
		bm, err := baseline.Run(spec, out, nil)
		if err != nil {
			return m, err
		}
		m.Wall = time.Since(start)
		m.Encodes = bm.Output.FramesEncoded
		m.Decodes = bm.Source.FramesDecoded
		m.OutFrames = bm.FramesRendered
	default:
		o := core.Options{Parallelism: cfg.Parallelism, Trace: cfg.Trace}
		if mode == ModeOpt {
			o.Optimize = true
			o.DataRewrite = true
		}
		res, err := core.Synthesize(spec, out, o)
		if err != nil {
			return m, err
		}
		m.Wall = time.Since(start)
		m.Encodes = res.Metrics.TotalEncodes()
		m.Decodes = res.Metrics.TotalDecodes()
		m.Copies = res.Metrics.Output.PacketsCopied
		m.OutFrames = m.Copies + res.Metrics.Output.FramesEncoded
	}
	sp.SetAttr("wall_us", m.Wall.Microseconds())
	sp.SetAttr("encodes", m.Encodes)
	sp.SetAttr("decodes", m.Decodes)
	sp.SetAttr("copies", m.Copies)
	return m, nil
}

// Repeat runs RunOnce cfg.Repeats times (after one discarded warm-up,
// like the paper's methodology) and returns the measurement with the
// average wall time.
func Repeat(ds *Dataset, q Query, mode Mode, cfg Config) (Measurement, error) {
	n := cfg.Repeats
	if n < 1 {
		n = 1
	}
	if _, err := RunOnce(ds, q, mode, cfg); err != nil {
		return Measurement{}, err // warm-up
	}
	var acc Measurement
	for i := 0; i < n; i++ {
		m, err := RunOnce(ds, q, mode, cfg)
		if err != nil {
			return Measurement{}, err
		}
		if i == 0 {
			acc = m
		}
		if i > 0 {
			acc.Wall += m.Wall
		}
	}
	acc.Wall /= time.Duration(n)
	return acc, nil
}

// Row is one line of a Fig. 3/4 table.
type Row struct {
	Query   string
	Unopt   time.Duration
	Opt     time.Duration
	Speedup float64
}

// CompareRun produces the unopt-vs-opt rows for every query on ds — the
// data behind Fig. 3 (ToS) and Fig. 4 (KABR).
func CompareRun(ds *Dataset, cfg Config) ([]Row, error) {
	var rows []Row
	for _, q := range Queries() {
		u, err := Repeat(ds, q, ModeUnopt, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s unopt: %w", ds.Name, q.ID, err)
		}
		o, err := Repeat(ds, q, ModeOpt, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s opt: %w", ds.Name, q.ID, err)
		}
		if u.OutFrames != o.OutFrames {
			return nil, fmt.Errorf("benchkit: %s %s output frame mismatch: %d vs %d",
				ds.Name, q.ID, u.OutFrames, o.OutFrames)
		}
		rows = append(rows, Row{
			Query: q.ID, Unopt: u.Wall, Opt: o.Wall,
			Speedup: seconds(u.Wall) / seconds(o.Wall),
		})
	}
	return rows, nil
}

// DataJoinRow is one line of the Fig. 5 table.
type DataJoinRow struct {
	Dataset  string
	Query    string
	Baseline time.Duration
	V2V      time.Duration
	Speedup  float64
}

// DataJoinRun measures the data-joining queries (Q5, Q10) against the
// baseline engine on ds — the data behind Fig. 5.
func DataJoinRun(ds *Dataset, cfg Config) ([]DataJoinRow, error) {
	var rows []DataJoinRow
	for _, q := range Queries() {
		if !q.JoinsData {
			continue
		}
		b, err := Repeat(ds, q, ModeBaseline, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s baseline: %w", ds.Name, q.ID, err)
		}
		o, err := Repeat(ds, q, ModeOpt, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s v2v: %w", ds.Name, q.ID, err)
		}
		rows = append(rows, DataJoinRow{
			Dataset: ds.Name, Query: q.ID, Baseline: b.Wall, V2V: o.Wall,
			Speedup: seconds(b.Wall) / seconds(o.Wall),
		})
	}
	return rows, nil
}

func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }
