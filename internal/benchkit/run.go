package benchkit

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"v2v/internal/baseline"
	"v2v/internal/core"
	"v2v/internal/media"
	"v2v/internal/obs"
	"v2v/internal/vql"
)

// Config carries the measurement knobs shared by every benchmark runner.
type Config struct {
	// Scale selects quick or paper-shaped dataset durations.
	Scale Scale
	// OutDir receives (and has removed) the synthesized output files.
	OutDir string
	// Parallelism caps shard fan-out (0 = GOMAXPROCS).
	Parallelism int
	// Repeats is the number of measured runs per configuration (after one
	// discarded warm-up); values < 1 mean 1.
	Repeats int
	// GOPCache, when non-nil, routes source decodes through a shared
	// decoded-GOP cache (see media.GOPCache). CacheRun manages its own
	// caches; leave nil for the standard figures.
	GOPCache *media.GOPCache
	// ResultCache, when non-nil, memoizes rendered segments' encoded
	// output across runs (see media.ResultCache). CacheRun manages its
	// own caches; leave nil for the standard figures.
	ResultCache *media.ResultCache
	// Trace, when set, records one span per run (wrapping the pipeline's
	// own stage spans) for the whole sweep.
	Trace *obs.Trace
	// Flight, when set, records each chaos attempt as a flight-recorder
	// request (query, mode, outcome, error, stage totals) so a failing
	// chaos job can dump what it was doing — the same record shape
	// v2vserve serves at /debug/requests.
	Flight *obs.FlightRecorder
}

// Mode selects the engine configuration for one measurement.
type Mode string

const (
	// ModeUnopt runs the unoptimized V2V plan (Figs. 3 and 4 left bars).
	ModeUnopt Mode = "unopt"
	// ModeOpt runs the fully optimized V2V pipeline (right bars).
	ModeOpt Mode = "opt"
	// ModeBaseline runs the Python+OpenCV-equivalent engine (Fig. 5).
	ModeBaseline Mode = "baseline"
	// ModeCacheOff/Cold/Warm are the optimized pipeline without a GOP
	// cache, with a fresh cache, and with an already-populated cache.
	ModeCacheOff  Mode = "cache-off"
	ModeCacheCold Mode = "cache-cold"
	ModeCacheWarm Mode = "cache-warm"
	// ModeResultCold/Warm add the encoded-result cache on top of the GOP
	// cache (sharing one arbitrated byte budget): cold is a first run with
	// fresh caches, warm repeats the identical query — render segments are
	// spliced from the result cache with zero decodes and zero encodes.
	ModeResultCold Mode = "result-cold"
	ModeResultWarm Mode = "result-warm"
)

// Measurement is one timed run.
type Measurement struct {
	Dataset string
	Query   string
	Mode    Mode
	Wall    time.Duration
	// FirstOutput is the latency until the first output packet — the
	// paper's interactivity measure (zero for the baseline engine, which
	// has no streaming path).
	FirstOutput time.Duration
	// Work counters (copies/encodes/decodes across the run).
	Encodes int64
	Decodes int64
	Copies  int64
	// OutFrames is the output frame count (sanity check between modes).
	OutFrames int64
	// CacheHits/CacheMisses are the run's GOP-cache lookup deltas (zero
	// when Config.GOPCache is nil).
	CacheHits   int64
	CacheMisses int64
	// ResHits/ResMisses are the run's result-cache lookup deltas (zero
	// when Config.ResultCache is nil).
	ResHits   int64
	ResMisses int64
	// OutputSHA256 fingerprints the output file so cache-on and cache-off
	// runs can be proven byte-identical.
	OutputSHA256 string
}

// RunOnce synthesizes the query once in the given mode and returns the
// measurement. The output file is written under cfg.OutDir and removed
// afterwards.
func RunOnce(ds *Dataset, q Query, mode Mode, cfg Config) (Measurement, error) {
	src := q.BuildSpecSource(ds, cfg.Scale)
	spec, err := vql.Parse(src)
	if err != nil {
		return Measurement{}, fmt.Errorf("benchkit: %s/%s: %w", ds.Name, q.ID, err)
	}
	out := filepath.Join(cfg.OutDir, fmt.Sprintf("%s-%s-%s.vmf", ds.Name, q.ID, mode))
	defer os.Remove(out)

	m := Measurement{Dataset: ds.Name, Query: q.ID, Mode: mode}
	sp := cfg.Trace.StartSpan(fmt.Sprintf("%s/%s/%s", ds.Name, q.ID, mode))
	defer sp.End()
	start := time.Now()
	switch mode {
	case ModeBaseline:
		bm, err := baseline.Run(spec, out, nil)
		if err != nil {
			return m, err
		}
		m.Wall = time.Since(start)
		m.Encodes = bm.Output.FramesEncoded
		m.Decodes = bm.Source.FramesDecoded
		m.OutFrames = bm.FramesRendered
	default:
		o := core.Options{Parallelism: cfg.Parallelism, GOPCache: cfg.GOPCache,
			ResultCache: cfg.ResultCache, Trace: cfg.Trace}
		if mode != ModeUnopt {
			o.Optimize = true
			o.DataRewrite = true
		}
		var cacheBefore media.GOPCacheStats
		if cfg.GOPCache != nil {
			cacheBefore = cfg.GOPCache.Stats()
		}
		var resBefore media.ResultCacheStats
		if cfg.ResultCache != nil {
			resBefore = cfg.ResultCache.Stats()
		}
		res, err := core.Synthesize(spec, out, o)
		if err != nil {
			return m, err
		}
		m.Wall = time.Since(start)
		m.FirstOutput = res.Metrics.FirstOutput
		m.Encodes = res.Metrics.TotalEncodes()
		m.Decodes = res.Metrics.TotalDecodes()
		m.Copies = res.Metrics.Output.PacketsCopied
		m.OutFrames = m.Copies + res.Metrics.Output.FramesEncoded
		if cfg.GOPCache != nil {
			after := cfg.GOPCache.Stats()
			m.CacheHits = after.Hits - cacheBefore.Hits
			m.CacheMisses = after.Misses - cacheBefore.Misses
		}
		if cfg.ResultCache != nil {
			after := cfg.ResultCache.Stats()
			m.ResHits = after.Hits - resBefore.Hits
			m.ResMisses = after.Misses - resBefore.Misses
		}
	}
	if h, err := fileSHA256(out); err == nil {
		m.OutputSHA256 = h
	}
	sp.SetAttr("wall_us", m.Wall.Microseconds())
	sp.SetAttr("first_output_us", m.FirstOutput.Microseconds())
	sp.SetAttr("encodes", m.Encodes)
	sp.SetAttr("decodes", m.Decodes)
	sp.SetAttr("copies", m.Copies)
	return m, nil
}

// Repeat runs RunOnce cfg.Repeats times (after one discarded warm-up,
// like the paper's methodology) and returns the measurement with the
// average wall time.
func Repeat(ds *Dataset, q Query, mode Mode, cfg Config) (Measurement, error) {
	n := cfg.Repeats
	if n < 1 {
		n = 1
	}
	if _, err := RunOnce(ds, q, mode, cfg); err != nil {
		return Measurement{}, err // warm-up
	}
	var acc Measurement
	for i := 0; i < n; i++ {
		m, err := RunOnce(ds, q, mode, cfg)
		if err != nil {
			return Measurement{}, err
		}
		if i == 0 {
			acc = m
		}
		if i > 0 {
			acc.Wall += m.Wall
			acc.FirstOutput += m.FirstOutput
		}
	}
	acc.Wall /= time.Duration(n)
	acc.FirstOutput /= time.Duration(n)
	return acc, nil
}

// Row is one line of a Fig. 3/4 table.
type Row struct {
	Query   string
	Unopt   time.Duration
	Opt     time.Duration
	Speedup float64
	// OptFirstOutput is the optimized run's time to first output packet —
	// tracked as a first-class metric so interactivity regressions are
	// flagged alongside wall-time ones.
	OptFirstOutput time.Duration
}

// CompareRun produces the unopt-vs-opt rows for every query on ds — the
// data behind Fig. 3 (ToS) and Fig. 4 (KABR).
func CompareRun(ds *Dataset, cfg Config) ([]Row, error) {
	var rows []Row
	for _, q := range Queries() {
		u, err := Repeat(ds, q, ModeUnopt, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s unopt: %w", ds.Name, q.ID, err)
		}
		o, err := Repeat(ds, q, ModeOpt, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s opt: %w", ds.Name, q.ID, err)
		}
		if u.OutFrames != o.OutFrames {
			return nil, fmt.Errorf("benchkit: %s %s output frame mismatch: %d vs %d",
				ds.Name, q.ID, u.OutFrames, o.OutFrames)
		}
		rows = append(rows, Row{
			Query: q.ID, Unopt: u.Wall, Opt: o.Wall,
			Speedup:        seconds(u.Wall) / seconds(o.Wall),
			OptFirstOutput: o.FirstOutput,
		})
	}
	return rows, nil
}

// DataJoinRow is one line of the Fig. 5 table.
type DataJoinRow struct {
	Dataset  string
	Query    string
	Baseline time.Duration
	V2V      time.Duration
	Speedup  float64
}

// DataJoinRun measures the data-joining queries (Q5, Q10) against the
// baseline engine on ds — the data behind Fig. 5.
func DataJoinRun(ds *Dataset, cfg Config) ([]DataJoinRow, error) {
	var rows []DataJoinRow
	for _, q := range Queries() {
		if !q.JoinsData {
			continue
		}
		b, err := Repeat(ds, q, ModeBaseline, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s baseline: %w", ds.Name, q.ID, err)
		}
		o, err := Repeat(ds, q, ModeOpt, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s v2v: %w", ds.Name, q.ID, err)
		}
		rows = append(rows, DataJoinRow{
			Dataset: ds.Name, Query: q.ID, Baseline: b.Wall, V2V: o.Wall,
			Speedup: seconds(b.Wall) / seconds(o.Wall),
		})
	}
	return rows, nil
}

// CacheRow is one line of the cache benchmark table: the same optimized
// query with no cache, a cold/warm GOP cache, and a cold/warm GOP+result
// cache stack (sharing one arbitrated budget). Output identity is verified
// by SHA-256 within each encoder-compatible group: {off, gop-cold,
// gop-warm} are byte-identical, and {result-cold, result-warm} are
// byte-identical (cached segments are encoded by fresh per-segment
// encoders so they can splice anywhere, which legitimately changes the
// bitstream — not the frames — versus the uncached single-encoder path).
type CacheRow struct {
	Query string
	Off   time.Duration
	Cold  time.Duration
	Warm  time.Duration
	// Decode counts per configuration; DecodeReduction = OffDecodes /
	// ColdDecodes (how much decoding the cache removed within one run).
	OffDecodes      int64
	ColdDecodes     int64
	WarmDecodes     int64
	DecodeReduction float64
	// Hit/miss deltas for the cold and warm runs.
	ColdHits, ColdMisses int64
	WarmHits, WarmMisses int64
	// Result-cache stack measurements (GOP + result caches, shared budget).
	ResultCold time.Duration
	ResultWarm time.Duration
	// Work counters for the result modes: a warm repeat of a pure render
	// query does zero decodes and zero encodes.
	ResultColdDecodes, ResultColdEncodes int64
	ResultWarmDecodes, ResultWarmEncodes int64
	// Result-cache hit/miss deltas.
	ResultColdHits, ResultColdMisses int64
	ResultWarmHits, ResultWarmMisses int64
	// ResultWarmFirstOutput is the warm repeat's time to first output —
	// the interactivity win the result cache buys.
	ResultWarmFirstOutput time.Duration
}

// CacheRun measures every query in the optimized pipeline under five cache
// configurations: off, cold/warm GOP cache, and cold/warm GOP+result cache
// stack sharing one arbitrated byte budget. It verifies byte-identical
// outputs within each encoder-compatible group and equal output frame
// counts across all five, and that a warm result-cache repeat of a pure
// render query (no copied packets in its cold run) performs zero source
// decodes and zero frame encodes. Uses single runs (not Repeat) because a
// warm-up run would pre-populate the cold caches.
func CacheRun(ds *Dataset, cfg Config) ([]CacheRow, error) {
	var rows []CacheRow
	for _, q := range Queries() {
		offCfg := cfg
		offCfg.GOPCache = nil
		offCfg.ResultCache = nil
		off, err := RunOnce(ds, q, ModeCacheOff, offCfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s cache-off: %w", ds.Name, q.ID, err)
		}
		onCfg := offCfg
		onCfg.GOPCache = media.NewGOPCache(0)
		cold, err := RunOnce(ds, q, ModeCacheCold, onCfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s cache-cold: %w", ds.Name, q.ID, err)
		}
		warm, err := RunOnce(ds, q, ModeCacheWarm, onCfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s cache-warm: %w", ds.Name, q.ID, err)
		}
		resCfg := offCfg
		resCfg.GOPCache = media.NewGOPCache(0)
		resCfg.ResultCache = media.NewResultCache(0)
		arb := media.NewArbiter(0)
		resCfg.GOPCache.AttachArbiter(arb)
		resCfg.ResultCache.AttachArbiter(arb)
		resCold, err := RunOnce(ds, q, ModeResultCold, resCfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s result-cold: %w", ds.Name, q.ID, err)
		}
		resWarm, err := RunOnce(ds, q, ModeResultWarm, resCfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s result-warm: %w", ds.Name, q.ID, err)
		}
		for _, m := range []Measurement{cold, warm} {
			if m.OutputSHA256 != off.OutputSHA256 {
				return nil, fmt.Errorf("benchkit: %s %s: %s output %s differs from cache-off %s",
					ds.Name, q.ID, m.Mode, m.OutputSHA256, off.OutputSHA256)
			}
		}
		if resWarm.OutputSHA256 != resCold.OutputSHA256 {
			return nil, fmt.Errorf("benchkit: %s %s: result-warm output %s differs from result-cold %s",
				ds.Name, q.ID, resWarm.OutputSHA256, resCold.OutputSHA256)
		}
		for _, m := range []Measurement{cold, warm, resCold, resWarm} {
			if m.OutFrames != off.OutFrames {
				return nil, fmt.Errorf("benchkit: %s %s: %s output frame count %d differs from cache-off %d",
					ds.Name, q.ID, m.Mode, m.OutFrames, off.OutFrames)
			}
		}
		// A pure render plan (nothing stream-copied when cold) is fully
		// memoizable: its warm repeat must be all splice — zero decodes,
		// zero encodes.
		if resCold.Copies == 0 && (resWarm.Decodes != 0 || resWarm.Encodes != 0) {
			return nil, fmt.Errorf("benchkit: %s %s: warm result-cache repeat did work: %d decodes, %d encodes",
				ds.Name, q.ID, resWarm.Decodes, resWarm.Encodes)
		}
		row := CacheRow{
			Query: q.ID, Off: off.Wall, Cold: cold.Wall, Warm: warm.Wall,
			OffDecodes: off.Decodes, ColdDecodes: cold.Decodes, WarmDecodes: warm.Decodes,
			ColdHits: cold.CacheHits, ColdMisses: cold.CacheMisses,
			WarmHits: warm.CacheHits, WarmMisses: warm.CacheMisses,
			ResultCold: resCold.Wall, ResultWarm: resWarm.Wall,
			ResultColdDecodes: resCold.Decodes, ResultColdEncodes: resCold.Encodes,
			ResultWarmDecodes: resWarm.Decodes, ResultWarmEncodes: resWarm.Encodes,
			ResultColdHits: resCold.ResHits, ResultColdMisses: resCold.ResMisses,
			ResultWarmHits: resWarm.ResHits, ResultWarmMisses: resWarm.ResMisses,
			ResultWarmFirstOutput: resWarm.FirstOutput,
		}
		if cold.Decodes > 0 {
			row.DecodeReduction = float64(off.Decodes) / float64(cold.Decodes)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// NewGOPCache builds a decoded-GOP cache for Config.GOPCache; budgetBytes
// <= 0 defers sizing to the executor.
func NewGOPCache(budgetBytes int64) *media.GOPCache { return media.NewGOPCache(budgetBytes) }

// NewResultCache builds an encoded-result cache for Config.ResultCache;
// budgetBytes <= 0 uses the media package default.
func NewResultCache(budgetBytes int64) *media.ResultCache { return media.NewResultCache(budgetBytes) }

// fileSHA256 fingerprints a file's contents.
func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }
