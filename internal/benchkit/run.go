package benchkit

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"v2v/internal/baseline"
	"v2v/internal/core"
	"v2v/internal/vql"
)

// Mode selects the engine configuration for one measurement.
type Mode string

const (
	// ModeUnopt runs the unoptimized V2V plan (Figs. 3 and 4 left bars).
	ModeUnopt Mode = "unopt"
	// ModeOpt runs the fully optimized V2V pipeline (right bars).
	ModeOpt Mode = "opt"
	// ModeBaseline runs the Python+OpenCV-equivalent engine (Fig. 5).
	ModeBaseline Mode = "baseline"
)

// Measurement is one timed run.
type Measurement struct {
	Dataset string
	Query   string
	Mode    Mode
	Wall    time.Duration
	// Work counters (copies/encodes/decodes across the run).
	Encodes int64
	Decodes int64
	Copies  int64
	// OutFrames is the output frame count (sanity check between modes).
	OutFrames int64
}

// RunOnce synthesizes the query once in the given mode and returns the
// measurement. The output file is written under outDir and removed
// afterwards.
func RunOnce(ds *Dataset, q Query, sc Scale, mode Mode, outDir string, parallelism int) (Measurement, error) {
	src := q.BuildSpecSource(ds, sc)
	spec, err := vql.Parse(src)
	if err != nil {
		return Measurement{}, fmt.Errorf("benchkit: %s/%s: %w", ds.Name, q.ID, err)
	}
	out := filepath.Join(outDir, fmt.Sprintf("%s-%s-%s.vmf", ds.Name, q.ID, mode))
	defer os.Remove(out)

	m := Measurement{Dataset: ds.Name, Query: q.ID, Mode: mode}
	start := time.Now()
	switch mode {
	case ModeBaseline:
		bm, err := baseline.Run(spec, out, nil)
		if err != nil {
			return m, err
		}
		m.Wall = time.Since(start)
		m.Encodes = bm.Output.FramesEncoded
		m.Decodes = bm.Source.FramesDecoded
		m.OutFrames = bm.FramesRendered
	default:
		o := core.Options{Parallelism: parallelism}
		if mode == ModeOpt {
			o.Optimize = true
			o.DataRewrite = true
		}
		res, err := core.Synthesize(spec, out, o)
		if err != nil {
			return m, err
		}
		m.Wall = time.Since(start)
		m.Encodes = res.Metrics.TotalEncodes()
		m.Decodes = res.Metrics.TotalDecodes()
		m.Copies = res.Metrics.Output.PacketsCopied
		m.OutFrames = m.Copies + res.Metrics.Output.FramesEncoded
	}
	return m, nil
}

// Repeat runs RunOnce n times (after one discarded warm-up, like the
// paper's methodology) and returns the measurement with the average wall
// time.
func Repeat(ds *Dataset, q Query, sc Scale, mode Mode, outDir string, parallelism, n int) (Measurement, error) {
	if n < 1 {
		n = 1
	}
	if _, err := RunOnce(ds, q, sc, mode, outDir, parallelism); err != nil {
		return Measurement{}, err // warm-up
	}
	var acc Measurement
	for i := 0; i < n; i++ {
		m, err := RunOnce(ds, q, sc, mode, outDir, parallelism)
		if err != nil {
			return Measurement{}, err
		}
		if i == 0 {
			acc = m
		}
		if i > 0 {
			acc.Wall += m.Wall
		}
	}
	acc.Wall /= time.Duration(n)
	return acc, nil
}

// Row is one line of a Fig. 3/4 table.
type Row struct {
	Query   string
	Unopt   time.Duration
	Opt     time.Duration
	Speedup float64
}

// CompareRun produces the unopt-vs-opt rows for every query on ds — the
// data behind Fig. 3 (ToS) and Fig. 4 (KABR).
func CompareRun(ds *Dataset, sc Scale, outDir string, parallelism, repeats int) ([]Row, error) {
	var rows []Row
	for _, q := range Queries() {
		u, err := Repeat(ds, q, sc, ModeUnopt, outDir, parallelism, repeats)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s unopt: %w", ds.Name, q.ID, err)
		}
		o, err := Repeat(ds, q, sc, ModeOpt, outDir, parallelism, repeats)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s opt: %w", ds.Name, q.ID, err)
		}
		if u.OutFrames != o.OutFrames {
			return nil, fmt.Errorf("benchkit: %s %s output frame mismatch: %d vs %d",
				ds.Name, q.ID, u.OutFrames, o.OutFrames)
		}
		rows = append(rows, Row{
			Query: q.ID, Unopt: u.Wall, Opt: o.Wall,
			Speedup: seconds(u.Wall) / seconds(o.Wall),
		})
	}
	return rows, nil
}

// DataJoinRow is one line of the Fig. 5 table.
type DataJoinRow struct {
	Dataset  string
	Query    string
	Baseline time.Duration
	V2V      time.Duration
	Speedup  float64
}

// DataJoinRun measures the data-joining queries (Q5, Q10) against the
// baseline engine on ds — the data behind Fig. 5.
func DataJoinRun(ds *Dataset, sc Scale, outDir string, parallelism, repeats int) ([]DataJoinRow, error) {
	var rows []DataJoinRow
	for _, q := range Queries() {
		if !q.JoinsData {
			continue
		}
		b, err := Repeat(ds, q, sc, ModeBaseline, outDir, parallelism, repeats)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s baseline: %w", ds.Name, q.ID, err)
		}
		o, err := Repeat(ds, q, sc, ModeOpt, outDir, parallelism, repeats)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s %s v2v: %w", ds.Name, q.ID, err)
		}
		rows = append(rows, DataJoinRow{
			Dataset: ds.Name, Query: q.ID, Baseline: b.Wall, V2V: o.Wall,
			Speedup: seconds(b.Wall) / seconds(o.Wall),
		})
	}
	return rows, nil
}

func seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }
