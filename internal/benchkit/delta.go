package benchkit

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ReportFile mirrors the JSON report cmd/v2vbench writes (-json), keeping
// only the fields the delta reporter compares. Unknown fields — including
// metrics added by later benchmark revisions — are ignored, so any two
// BENCH_*.json generations can be diffed against each other.
type ReportFile struct {
	Scale   string `json:"scale"`
	Repeats int    `json:"repeats"`
	Compare []struct {
		Dataset               string  `json:"dataset"`
		Query                 string  `json:"query"`
		OptSeconds            float64 `json:"opt_seconds"`
		OptFirstOutputSeconds float64 `json:"opt_first_output_seconds"`
		Speedup               float64 `json:"speedup"`
	} `json:"compare"`
	DataJoin []struct {
		Dataset    string  `json:"dataset"`
		Query      string  `json:"query"`
		V2VSeconds float64 `json:"v2v_seconds"`
	} `json:"data_join"`
	Cache []struct {
		Dataset                      string  `json:"dataset"`
		Query                        string  `json:"query"`
		WarmSeconds                  float64 `json:"warm_seconds"`
		ResultWarmSeconds            float64 `json:"result_warm_seconds"`
		ResultWarmFirstOutputSeconds float64 `json:"result_warm_first_output_seconds"`
	} `json:"cache"`
	Overload []struct {
		Dataset    string  `json:"dataset"`
		Load       float64 `json:"load"`
		P99Seconds float64 `json:"p99_seconds"`
	} `json:"overload"`
	Streaming []struct {
		Dataset       string  `json:"dataset"`
		Query         string  `json:"query"`
		Streams       int     `json:"streams"`
		WallSeconds   float64 `json:"wall_seconds"`
		TTFFSeconds   float64 `json:"ttff_seconds"`
		MaxGapSeconds float64 `json:"max_gap_seconds"`
	} `json:"streaming"`
	Pixels []struct {
		Stage           string  `json:"stage"`
		SecondsPerMB    float64 `json:"seconds_per_mb"`
		SecondsPerFrame float64 `json:"seconds_per_frame"`
		AllocsPerFrame  float64 `json:"allocs_per_frame"`
	} `json:"pixels"`
}

// LoadReport reads a v2vbench -json report.
func LoadReport(path string) (*ReportFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchkit: %w", err)
	}
	var r ReportFile
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("benchkit: %s: %w", path, err)
	}
	return &r, nil
}

// DeltaRow is one compared metric between two benchmark reports.
type DeltaRow struct {
	Section string // compare, data_join, cache
	Dataset string
	Query   string
	Metric  string
	Old     float64 // seconds in the prior report
	New     float64 // seconds in the current report
	Ratio   float64 // New / Old; > 1 is slower
}

// deltaRegressionRatio is the slowdown beyond which a row is flagged as a
// regression. Wall times on shared CI hosts are noisy, so the bar is
// deliberately loose — the flag is a prompt to look, not a verdict.
const deltaRegressionRatio = 1.5

// Regressed reports whether the row slowed past the regression threshold.
func (d DeltaRow) Regressed() bool { return d.Ratio > deltaRegressionRatio }

// Delta joins two reports by (section, dataset, query) and returns one row
// per metric present in both. Queries or metrics present in only one
// report are skipped — the diff covers the intersection.
func Delta(old, cur *ReportFile) []DeltaRow {
	var rows []DeltaRow
	add := func(section, dataset, query, metric string, o, n float64) {
		if o <= 0 || n <= 0 {
			return
		}
		rows = append(rows, DeltaRow{
			Section: section, Dataset: dataset, Query: query, Metric: metric,
			Old: o, New: n, Ratio: n / o,
		})
	}
	type key struct{ dataset, query string }
	oldCompare := map[key]float64{}
	oldFirst := map[key]float64{}
	for _, e := range old.Compare {
		oldCompare[key{e.Dataset, e.Query}] = e.OptSeconds
		oldFirst[key{e.Dataset, e.Query}] = e.OptFirstOutputSeconds
	}
	for _, e := range cur.Compare {
		add("compare", e.Dataset, e.Query, "opt_seconds", oldCompare[key{e.Dataset, e.Query}], e.OptSeconds)
		// Time-to-first-frame regresses independently of total wall time
		// (e.g. a lost stream-copy head), so it gets its own row; reports
		// from before the metric existed yield 0 and are skipped by add.
		add("compare", e.Dataset, e.Query, "opt_first_output_seconds", oldFirst[key{e.Dataset, e.Query}], e.OptFirstOutputSeconds)
	}
	oldJoin := map[key]float64{}
	for _, e := range old.DataJoin {
		oldJoin[key{e.Dataset, e.Query}] = e.V2VSeconds
	}
	for _, e := range cur.DataJoin {
		add("data_join", e.Dataset, e.Query, "v2v_seconds", oldJoin[key{e.Dataset, e.Query}], e.V2VSeconds)
	}
	oldWarm := map[key]float64{}
	oldResWarm := map[key]float64{}
	oldResWarmFirst := map[key]float64{}
	for _, e := range old.Cache {
		oldWarm[key{e.Dataset, e.Query}] = e.WarmSeconds
		oldResWarm[key{e.Dataset, e.Query}] = e.ResultWarmSeconds
		oldResWarmFirst[key{e.Dataset, e.Query}] = e.ResultWarmFirstOutputSeconds
	}
	for _, e := range cur.Cache {
		add("cache", e.Dataset, e.Query, "warm_seconds", oldWarm[key{e.Dataset, e.Query}], e.WarmSeconds)
		add("cache", e.Dataset, e.Query, "result_warm_seconds", oldResWarm[key{e.Dataset, e.Query}], e.ResultWarmSeconds)
		add("cache", e.Dataset, e.Query, "result_warm_first_output_seconds", oldResWarmFirst[key{e.Dataset, e.Query}], e.ResultWarmFirstOutputSeconds)
	}
	// Overload points are keyed by their load multiple ("4x") in the query
	// column. Only p99 is compared: goodput and shed rate move together by
	// design under saturation, and p99 is the one with a latency contract.
	oldOverload := map[key]float64{}
	for _, e := range old.Overload {
		oldOverload[key{e.Dataset, loadLabel(e.Load)}] = e.P99Seconds
	}
	for _, e := range cur.Overload {
		add("overload", e.Dataset, loadLabel(e.Load), "p99_seconds", oldOverload[key{e.Dataset, loadLabel(e.Load)}], e.P99Seconds)
	}
	// Streaming points are keyed by query plus the concurrency ("Q7@4").
	// TTFF is the sweep's headline metric; wall and the worst
	// inter-segment gap regress independently (a scheduler that renders
	// everything before delivering keeps wall flat while both TTFF and
	// the gap explode), so each gets its own row.
	oldStreamTTFF := map[key]float64{}
	oldStreamWall := map[key]float64{}
	oldStreamGap := map[key]float64{}
	for _, e := range old.Streaming {
		k := key{e.Dataset, streamLabel(e.Query, e.Streams)}
		oldStreamTTFF[k] = e.TTFFSeconds
		oldStreamWall[k] = e.WallSeconds
		oldStreamGap[k] = e.MaxGapSeconds
	}
	for _, e := range cur.Streaming {
		k := key{e.Dataset, streamLabel(e.Query, e.Streams)}
		add("streaming", e.Dataset, k.query, "ttff_seconds", oldStreamTTFF[k], e.TTFFSeconds)
		add("streaming", e.Dataset, k.query, "wall_seconds", oldStreamWall[k], e.WallSeconds)
		add("streaming", e.Dataset, k.query, "max_gap_seconds", oldStreamGap[k], e.MaxGapSeconds)
	}
	// Pixel-pipeline stages are synthetic (no dataset); all three metrics
	// are higher-is-worse, so the shared >1.5x ratio flags slowdowns: raw
	// plane throughput, per-frame stage latency, and allocations per frame
	// (a pooled path regressing to per-frame allocation jumps from ~0 —
	// skipped by add when the prior is 0 — to whole numbers, caught by
	// seconds moving with it).
	oldPixMB := map[string]float64{}
	oldPixFrame := map[string]float64{}
	oldPixAllocs := map[string]float64{}
	for _, e := range old.Pixels {
		oldPixMB[e.Stage] = e.SecondsPerMB
		oldPixFrame[e.Stage] = e.SecondsPerFrame
		oldPixAllocs[e.Stage] = e.AllocsPerFrame
	}
	for _, e := range cur.Pixels {
		add("pixels", "synth", e.Stage, "seconds_per_mb", oldPixMB[e.Stage], e.SecondsPerMB)
		add("pixels", "synth", e.Stage, "seconds_per_frame", oldPixFrame[e.Stage], e.SecondsPerFrame)
		add("pixels", "synth", e.Stage, "allocs_per_frame", oldPixAllocs[e.Stage], e.AllocsPerFrame)
	}
	return rows
}

// streamLabel renders a streaming point key as the short "Q7@4" form used
// in tables and delta keys.
func streamLabel(query string, streams int) string {
	return fmt.Sprintf("%s@%d", query, streams)
}

// loadLabel renders an offered-load multiple as the short "4x" form used in
// tables and delta keys.
func loadLabel(load float64) string { return fmt.Sprintf("%gx", load) }

// FormatDelta renders delta rows as an aligned text table, flagging
// regressions past the threshold.
func FormatDelta(title string, rows []DeltaRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(rows) == 0 {
		sb.WriteString("(no overlapping measurements)\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-9s %-10s %-6s %-19s %10s %10s %7s\n",
		"Section", "Dataset", "Query", "Metric", "Prior", "Current", "Ratio")
	n := 0
	for _, d := range rows {
		flag := ""
		if d.Regressed() {
			flag = "  <-- regression"
			n++
		}
		fmt.Fprintf(&sb, "%-9s %-10s %-6s %-19s %9.3fs %9.3fs %6.2fx%s\n",
			d.Section, d.Dataset, d.Query, d.Metric, d.Old, d.New, d.Ratio, flag)
	}
	if n > 0 {
		fmt.Fprintf(&sb, "%d row(s) slowed more than %.2fx\n", n, deltaRegressionRatio)
	}
	return sb.String()
}

// FormatDeltaMarkdown renders delta rows as a GitHub-flavored markdown
// table, for CI job summaries.
func FormatDeltaMarkdown(title string, rows []DeltaRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s\n\n", title)
	if len(rows) == 0 {
		sb.WriteString("_No overlapping measurements._\n")
		return sb.String()
	}
	sb.WriteString("| Section | Dataset | Query | Metric | Prior | Current | Ratio |\n")
	sb.WriteString("|---|---|---|---|---:|---:|---:|\n")
	n := 0
	for _, d := range rows {
		ratio := fmt.Sprintf("%.2fx", d.Ratio)
		if d.Regressed() {
			ratio = "**" + ratio + "** ⚠️"
			n++
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %.3fs | %.3fs | %s |\n",
			d.Section, d.Dataset, d.Query, d.Metric, d.Old, d.New, ratio)
	}
	if n > 0 {
		fmt.Fprintf(&sb, "\n%d row(s) slowed more than %.2fx.\n", n, deltaRegressionRatio)
	} else {
		sb.WriteString("\nNo regressions past the threshold.\n")
	}
	return sb.String()
}
