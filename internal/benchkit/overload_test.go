package benchkit

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestOverloadRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep in -short mode")
	}
	sc := testScale()
	rows, err := OverloadRun(kabrDS, Config{Scale: sc, OutDir: t.TempDir(), Parallelism: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(overloadLoads) {
		t.Fatalf("rows = %d, want %d", len(rows), len(overloadLoads))
	}
	for _, r := range rows {
		if r.Offered != overloadRequests {
			t.Errorf("load %gx: offered %d, want %d", r.Load, r.Offered, overloadRequests)
		}
		if r.Failed != 0 {
			t.Errorf("load %gx: %d request(s) broke the shed contract", r.Load, r.Failed)
		}
		if r.Completed+r.Shed != r.Offered {
			t.Errorf("load %gx: completed %d + shed %d != offered %d", r.Load, r.Completed, r.Shed, r.Offered)
		}
		if r.Completed == 0 {
			t.Errorf("load %gx: nothing completed (goodput collapsed to zero)", r.Load)
		}
	}
	// The table renders without panicking and names each load point.
	table := FormatOverload("overload", rows)
	for _, want := range []string{"1x", "4x", "16x", "goodput"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestChaosOverloadRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos overload in -short mode")
	}
	sc := testScale()
	res, err := ChaosOverloadRun(kabrDS, Config{Scale: sc, OutDir: t.TempDir(), Parallelism: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Row.Failed != 0 {
		t.Errorf("%d request(s) broke the shed contract", res.Row.Failed)
	}
	if res.CriticalFactor != 0.25 || res.FinalFactor != 1 {
		t.Errorf("pressure factors critical=%v final=%v, want 0.25 and 1", res.CriticalFactor, res.FinalFactor)
	}
	if res.PostCacheBytes <= 0 {
		t.Errorf("cache bytes did not recover after the episode: post=%d", res.PostCacheBytes)
	}
	out := FormatChaosOverload("chaos overload", res)
	if !strings.Contains(out, "cache bytes") {
		t.Errorf("format missing cache-bytes line:\n%s", out)
	}
}

func TestDeltaOverloadSection(t *testing.T) {
	load := func(raw string) *ReportFile {
		var r ReportFile
		if err := json.Unmarshal([]byte(raw), &r); err != nil {
			t.Fatal(err)
		}
		return &r
	}
	old := load(`{"overload":[{"dataset":"kabr-sim","load":16,"p99_seconds":0.5}]}`)
	cur := load(`{"overload":[{"dataset":"kabr-sim","load":16,"p99_seconds":1.0},
	              {"dataset":"kabr-sim","load":4,"p99_seconds":0.2}]}`)
	rows := Delta(old, cur)
	if len(rows) != 1 {
		t.Fatalf("rows = %+v, want exactly the overlapping 16x point", rows)
	}
	r := rows[0]
	if r.Section != "overload" || r.Query != "16x" || r.Metric != "p99_seconds" {
		t.Errorf("row = %+v, want overload/16x/p99_seconds", r)
	}
	if r.Ratio != 2 {
		t.Errorf("ratio = %v, want 2", r.Ratio)
	}
	if !r.Regressed() {
		t.Error("a 2x p99 slowdown should be flagged as a regression")
	}
}

func TestFrontDoorRejectsBadRequests(t *testing.T) {
	fd := newFrontDoor(overloadAdmitConfig(), 1, 8<<20)
	ts := httptest.NewServer(fd)
	defer ts.Close()
	for _, tc := range []struct {
		name, body, deadline string
	}{
		{"parse error", "not a spec", ""},
		{"bad deadline", "timedomain range(0, 1, 1/24);", "abc"},
	} {
		req, _ := http.NewRequest("POST", ts.URL, strings.NewReader(tc.body))
		if tc.deadline != "" {
			req.Header.Set("X-Deadline-Ms", tc.deadline)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}
