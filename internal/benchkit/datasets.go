// Package benchkit is the evaluation harness: it provisions the synthetic
// ToS-sim and KABR-sim datasets, defines the paper's benchmark queries
// Q1–Q10 (§V), runs them through the unoptimized plan, the optimized plan,
// and the Python+OpenCV-equivalent baseline, and formats the results as
// the rows/series of Figs. 3, 4, and 5.
package benchkit

import (
	"fmt"
	"os"
	"path/filepath"

	"v2v/internal/dataset"
	"v2v/internal/rational"
)

// Dataset is a provisioned video collection plus its annotations.
type Dataset struct {
	Name    string
	Profile dataset.Profile
	// Videos and Anns are parallel: one annotation file per video.
	Videos []string
	Anns   []string
	// Seconds is each video's duration.
	Seconds int64
}

// Scale shrinks dataset durations and bench inputs for quick runs. 1 is
// the paper-shaped configuration (5 s and 60 s inputs).
type Scale struct {
	// ToSSeconds is the length of the simulated film (needs to cover four
	// spliced 1-minute segments; the paper's film is 734 s).
	ToSSeconds int64
	// KABRSeconds is the length of each of the four drone videos (291 s
	// in the paper; segments read at most 70 s).
	KABRSeconds int64
	// Short and Long are the Q1–Q5 / Q6–Q10 input segment lengths.
	Short int64
	Long  int64
}

// FullScale mirrors the paper's 5-second and 1-minute inputs.
func FullScale() Scale {
	return Scale{ToSSeconds: 290, KABRSeconds: 75, Short: 5, Long: 60}
}

// QuickScale is a reduced configuration for smoke runs and tests.
func QuickScale() Scale {
	return Scale{ToSSeconds: 50, KABRSeconds: 15, Short: 2, Long: 10}
}

// DefaultDir returns the dataset cache directory, honoring V2V_BENCH_DIR.
func DefaultDir() string {
	if d := os.Getenv("V2V_BENCH_DIR"); d != "" {
		return d
	}
	return filepath.Join(os.TempDir(), "v2v-benchdata")
}

// ProvisionToS generates (or reuses) the ToS-sim dataset: one long film
// with 10-second GOPs and objects on every frame.
func ProvisionToS(dir string, sc Scale) (*Dataset, error) {
	p := dataset.ToSProfile()
	return provision(dir, p, 1, sc.ToSSeconds)
}

// ProvisionKABR generates (or reuses) the KABR-sim dataset: four drone
// videos with 1-second GOPs and sparse objects.
func ProvisionKABR(dir string, sc Scale) (*Dataset, error) {
	p := dataset.KABRProfile()
	return provision(dir, p, 4, sc.KABRSeconds)
}

func provision(dir string, p dataset.Profile, count int, seconds int64) (*Dataset, error) {
	ds := &Dataset{Name: p.Name, Profile: p, Seconds: seconds}
	sub := filepath.Join(dir, fmt.Sprintf("%s-%ds-x%d", p.Name, seconds, count))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return nil, fmt.Errorf("benchkit: %w", err)
	}
	for i := 0; i < count; i++ {
		prof := p
		prof.Seed = p.Seed + int64(i)*991
		vid := filepath.Join(sub, fmt.Sprintf("%s-%d.vmf", p.Name, i))
		ann := filepath.Join(sub, fmt.Sprintf("%s-%d.boxes.json", p.Name, i))
		ok := filepath.Join(sub, fmt.Sprintf("%s-%d.ok", p.Name, i))
		if _, err := os.Stat(ok); err != nil {
			if _, err := dataset.Generate(vid, ann, prof, rational.FromInt(seconds)); err != nil {
				return nil, fmt.Errorf("benchkit: generate %s: %w", vid, err)
			}
			if err := os.WriteFile(ok, []byte("ok\n"), 0o644); err != nil {
				return nil, err
			}
		}
		ds.Videos = append(ds.Videos, vid)
		ds.Anns = append(ds.Anns, ann)
	}
	return ds, nil
}
