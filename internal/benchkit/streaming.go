package benchkit

// Streaming sweep: time-to-first-frame and inter-segment delivery gap for
// presentation-order streaming synthesis, at increasing numbers of
// concurrent streams. Each stream runs the splice query with
// exec's streaming scheduler (segments delivered in presentation order
// while later segments render) through a flushing sink — the same
// delivery stack cmd/v2vserve uses for ?stream=1 responses — and the
// sweep verifies the streamed bytes stay identical to a buffered
// reference run.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"v2v/internal/core"
	"v2v/internal/media"
	"v2v/internal/vql"
)

// StreamingRow reports one concurrency point of the streaming sweep.
type StreamingRow struct {
	Query string
	// Streams is the number of concurrent streaming syntheses.
	Streams int
	// Segments is the plan's segment count (the splice arms).
	Segments int
	// Wall is the mean end-to-end wall time per stream.
	Wall time.Duration
	// TTFF is the mean time until a stream's first bytes were flushed —
	// the honest time-to-first-frame a network client would observe.
	TTFF time.Duration
	// TTFFMax is the worst TTFF across all streams of the point.
	TTFFMax time.Duration
	// MaxSegGap is the worst gap between consecutive segment deliveries
	// across all streams — the longest a playing client would go without
	// new data after playback started.
	MaxSegGap time.Duration
	// ByteIdentical reports whether every stream's output matched the
	// buffered (non-streaming) reference run byte for byte.
	ByteIdentical bool
}

// streamingConcurrency is the sweep's concurrent-stream counts.
var streamingConcurrency = []int{1, 4, 16}

// streamMeasure is one stream's observed delivery timeline.
type streamMeasure struct {
	wall time.Duration
	ttff time.Duration
	gap  time.Duration
	sha  string
	err  error
}

// runStream executes one streaming synthesis of the prepared spec,
// recording TTFF from the flushing sink and the largest inter-segment
// delivery gap from the OnSegmentDone hook.
func runStream(spec *vql.Spec, o core.Options) streamMeasure {
	var buf bytes.Buffer
	fs := media.NewFlushingSink(&buf, media.FlushConfig{})
	var marks []time.Time
	o.Streaming = true
	o.OnSegmentDone = func(int) {
		// Called on the delivery goroutine: -1 after the header, then each
		// segment in presentation order.
		marks = append(marks, time.Now())
		fs.Barrier()
	}
	start := time.Now()
	_, err := core.SynthesizeStream(spec, fs, o)
	if cerr := fs.CloseFlush(); err == nil {
		err = cerr
	}
	m := streamMeasure{wall: time.Since(start), err: err}
	if err != nil {
		return m
	}
	if first, ok := fs.FirstFlush(); ok {
		m.ttff = first.Sub(start)
	}
	for i := 1; i < len(marks); i++ {
		if gap := marks[i].Sub(marks[i-1]); gap > m.gap {
			m.gap = gap
		}
	}
	sum := sha256.Sum256(buf.Bytes())
	m.sha = hex.EncodeToString(sum[:])
	return m
}

// StreamingRun measures the streaming sweep for the given query on ds:
// one row per concurrency point, after a buffered reference run that
// anchors the byte-identity check.
func StreamingRun(ds *Dataset, queryID string, cfg Config) ([]StreamingRow, error) {
	q, ok := QueryByID(queryID)
	if !ok {
		return nil, fmt.Errorf("benchkit: unknown query %s", queryID)
	}
	src := q.BuildSpecSource(ds, cfg.Scale)
	spec, err := vql.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("benchkit: %s/%s: %w", ds.Name, q.ID, err)
	}
	o := core.Options{
		Optimize: true, DataRewrite: true,
		Parallelism: cfg.Parallelism,
		GOPCache:    cfg.GOPCache, ResultCache: cfg.ResultCache,
	}

	// Buffered reference: the same plan, non-streaming, defines the
	// expected bytes and the segment count.
	var ref bytes.Buffer
	res, err := core.SynthesizeStream(spec, &ref, o)
	if err != nil {
		return nil, fmt.Errorf("benchkit: %s/%s reference: %w", ds.Name, q.ID, err)
	}
	refSum := sha256.Sum256(ref.Bytes())
	refSHA := hex.EncodeToString(refSum[:])
	segments := len(res.Plan.Segments)

	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var rows []StreamingRow
	for _, streams := range streamingConcurrency {
		row := StreamingRow{Query: q.ID, Streams: streams, Segments: segments, ByteIdentical: true}
		var wallSum, ttffSum time.Duration
		n := 0
		// One discarded warm-up round per point, then the measured rounds.
		for round := 0; round < repeats+1; round++ {
			ms := make([]streamMeasure, streams)
			var wg sync.WaitGroup
			for i := range ms {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ms[i] = runStream(spec, o)
				}(i)
			}
			wg.Wait()
			for _, m := range ms {
				if m.err != nil {
					return nil, fmt.Errorf("benchkit: %s/%s x%d: %w", ds.Name, q.ID, streams, m.err)
				}
			}
			if round == 0 {
				continue
			}
			for _, m := range ms {
				wallSum += m.wall
				ttffSum += m.ttff
				n++
				if m.ttff > row.TTFFMax {
					row.TTFFMax = m.ttff
				}
				if m.gap > row.MaxSegGap {
					row.MaxSegGap = m.gap
				}
				if m.sha != refSHA {
					row.ByteIdentical = false
				}
			}
		}
		row.Wall = wallSum / time.Duration(n)
		row.TTFF = ttffSum / time.Duration(n)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatStreaming renders the streaming sweep as an aligned text table.
func FormatStreaming(title string, rows []StreamingRow) string {
	var sb bytes.Buffer
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-6s %8s %6s %10s %10s %10s %10s %7s\n",
		"Query", "Streams", "Segs", "Wall", "TTFF", "TTFFmax", "MaxGap", "Bytes")
	for _, r := range rows {
		id := "ok"
		if !r.ByteIdentical {
			id = "DIFFER"
		}
		fmt.Fprintf(&sb, "%-6s %8d %6d %10s %10s %10s %10s %7s\n",
			r.Query, r.Streams, r.Segments, fmtDur(r.Wall), fmtDur(r.TTFF),
			fmtDur(r.TTFFMax), fmtDur(r.MaxSegGap), id)
	}
	return sb.String()
}
