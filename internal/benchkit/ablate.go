package benchkit

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"v2v/internal/core"
	"v2v/internal/opt"
	"v2v/internal/vql"
)

// AblationRow is one optimizer-pass configuration measurement.
type AblationRow struct {
	Config  string
	Wall    time.Duration
	Encodes int64
	Decodes int64
	Copies  int64
}

// AblationConfigs enumerates the pass configurations measured by the
// ablation table: each pass alone, everything, and nothing.
func AblationConfigs() []struct {
	Name   string
	On     bool
	Passes *opt.Options
} {
	return []struct {
		Name   string
		On     bool
		Passes *opt.Options
	}{
		{"none", false, nil},
		{"copy-only", true, &opt.Options{StreamCopy: true}},
		{"smartcut-only", true, &opt.Options{SmartCut: true}},
		{"merge-only", true, &opt.Options{MergeFilters: true, MergeSegments: true}},
		{"shard-only", true, &opt.Options{Shard: true}},
		{"all", true, nil},
	}
}

// AblationRun measures every pass configuration on one query. The data
// rewriter stays on for every configuration (it is a spec-level pass, not
// a plan pass).
func AblationRun(ds *Dataset, qid string, cfg Config) ([]AblationRow, error) {
	q, ok := QueryByID(qid)
	if !ok {
		return nil, fmt.Errorf("benchkit: unknown query %q", qid)
	}
	spec, err := vql.Parse(q.BuildSpecSource(ds, cfg.Scale))
	if err != nil {
		return nil, err
	}
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	var rows []AblationRow
	for _, ac := range AblationConfigs() {
		o := core.Options{
			Optimize:    ac.On,
			DataRewrite: true,
			OptPasses:   ac.Passes,
			Parallelism: cfg.Parallelism,
			Trace:       cfg.Trace,
		}
		var total time.Duration
		var last *core.Result
		for i := 0; i <= repeats; i++ { // one warm-up + repeats
			out := filepath.Join(cfg.OutDir, fmt.Sprintf("ablate-%s.vmf", ac.Name))
			sp := cfg.Trace.StartSpan(fmt.Sprintf("%s/%s/ablate-%s", ds.Name, q.ID, ac.Name))
			start := time.Now()
			res, err := core.Synthesize(spec, out, o)
			sp.End()
			if err != nil {
				return nil, fmt.Errorf("benchkit: ablation %s: %w", ac.Name, err)
			}
			os.Remove(out)
			if i > 0 {
				total += time.Since(start)
			}
			last = res
		}
		rows = append(rows, AblationRow{
			Config:  ac.Name,
			Wall:    total / time.Duration(repeats),
			Encodes: last.Metrics.TotalEncodes(),
			Decodes: last.Metrics.TotalDecodes(),
			Copies:  last.Metrics.Output.PacketsCopied,
		})
	}
	return rows, nil
}

// FormatAblation renders ablation rows with normalized speedups against
// the "none" configuration.
func FormatAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-14s %12s %9s %9s %9s %9s\n", "Config", "Wall", "Speedup", "Encodes", "Decodes", "Copies")
	var base float64
	for _, r := range rows {
		if r.Config == "none" {
			base = seconds(r.Wall)
		}
	}
	for _, r := range rows {
		sp := 0.0
		if s := seconds(r.Wall); s > 0 && base > 0 {
			sp = base / s
		}
		fmt.Fprintf(&sb, "%-14s %12s %8.2fx %9d %9d %9d\n",
			r.Config, fmtDur(r.Wall), sp, r.Encodes, r.Decodes, r.Copies)
	}
	return sb.String()
}
