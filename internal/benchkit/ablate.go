package benchkit

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"v2v/internal/core"
	"v2v/internal/opt"
	"v2v/internal/vql"
)

// AblationRow is one optimizer-pass configuration measurement.
type AblationRow struct {
	Config  string
	Wall    time.Duration
	Encodes int64
	Decodes int64
	Copies  int64
}

// AblationConfigs enumerates the pass configurations measured by the
// ablation table: each pass alone, everything, and nothing.
func AblationConfigs() []struct {
	Name   string
	On     bool
	Passes *opt.Options
} {
	return []struct {
		Name   string
		On     bool
		Passes *opt.Options
	}{
		{"none", false, nil},
		{"copy-only", true, &opt.Options{StreamCopy: true}},
		{"smartcut-only", true, &opt.Options{SmartCut: true}},
		{"merge-only", true, &opt.Options{MergeFilters: true, MergeSegments: true}},
		{"shard-only", true, &opt.Options{Shard: true}},
		{"all", true, nil},
	}
}

// AblationRun measures every pass configuration on one query. The data
// rewriter stays on for every configuration (it is a spec-level pass, not
// a plan pass).
func AblationRun(ds *Dataset, qid string, sc Scale, outDir string, parallelism, repeats int) ([]AblationRow, error) {
	q, ok := QueryByID(qid)
	if !ok {
		return nil, fmt.Errorf("benchkit: unknown query %q", qid)
	}
	spec, err := vql.Parse(q.BuildSpecSource(ds, sc))
	if err != nil {
		return nil, err
	}
	if repeats < 1 {
		repeats = 1
	}
	var rows []AblationRow
	for _, cfg := range AblationConfigs() {
		o := core.Options{
			Optimize:    cfg.On,
			DataRewrite: true,
			OptPasses:   cfg.Passes,
			Parallelism: parallelism,
		}
		var total time.Duration
		var last *core.Result
		for i := 0; i <= repeats; i++ { // one warm-up + repeats
			out := filepath.Join(outDir, fmt.Sprintf("ablate-%s.vmf", cfg.Name))
			start := time.Now()
			res, err := core.Synthesize(spec, out, o)
			if err != nil {
				return nil, fmt.Errorf("benchkit: ablation %s: %w", cfg.Name, err)
			}
			os.Remove(out)
			if i > 0 {
				total += time.Since(start)
			}
			last = res
		}
		rows = append(rows, AblationRow{
			Config:  cfg.Name,
			Wall:    total / time.Duration(repeats),
			Encodes: last.Metrics.TotalEncodes(),
			Decodes: last.Metrics.TotalDecodes(),
			Copies:  last.Metrics.Output.PacketsCopied,
		})
	}
	return rows, nil
}

// FormatAblation renders ablation rows with normalized speedups against
// the "none" configuration.
func FormatAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-14s %12s %9s %9s %9s %9s\n", "Config", "Wall", "Speedup", "Encodes", "Decodes", "Copies")
	var base float64
	for _, r := range rows {
		if r.Config == "none" {
			base = seconds(r.Wall)
		}
	}
	for _, r := range rows {
		sp := 0.0
		if s := seconds(r.Wall); s > 0 && base > 0 {
			sp = base / s
		}
		fmt.Fprintf(&sb, "%-14s %12s %8.2fx %9d %9d %9d\n",
			r.Config, fmtDur(r.Wall), sp, r.Encodes, r.Decodes, r.Copies)
	}
	return sb.String()
}
