package benchkit

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"v2v/internal/codec"
	"v2v/internal/frame"
	"v2v/internal/raster"
)

// The pixels figure is the per-stage proof behind the fused-kernel and
// frame-pool work: plane throughput (MB/s) for each fusable point op, a
// 3-op chain measured unfused (one full pass and one fresh frame per op)
// against fused (one pass into a pooled destination, byte-identical by
// SHA), and the codec's per-frame encode/decode cost. Allocations per
// frame are counted for every stage — the fused chain's ~0 is the
// zero-allocation render loop's steady state in isolation.

// PixelRow is one per-stage pixel-pipeline measurement.
type PixelRow struct {
	// Stage names the measured operation: "filter:grade",
	// "chain3:unfused", "chain3:fused", "codec:encode", "codec:decode".
	Stage  string
	Frames int
	Wall   time.Duration
	// MBPerSecond is plane throughput (frame bytes processed per second);
	// SecondsPerMB is its time-like inverse, the unit the delta reporter
	// compares (ratio > 1 is slower).
	MBPerSecond  float64
	SecondsPerMB float64
	// SecondsPerFrame is the per-frame latency of the stage.
	SecondsPerFrame float64
	// AllocsPerFrame is the heap allocation count per processed frame.
	AllocsPerFrame float64
	// Speedup (chain3:fused only) is unfused wall over fused wall on the
	// same 3-op chain; Identical confirms the two outputs' SHA-256 match.
	Speedup   float64
	Identical bool
}

// pixelDims picks the synthetic frame size: quick runs use a small frame,
// the paper-shaped scale a 720p one.
func pixelDims(sc Scale) (int, int) {
	if sc == FullScale() {
		return 1280, 720
	}
	return 640, 360
}

// synthPixelFrame builds a deterministic YUV420 frame; seed varies the
// content so codec P-frames carry real residuals.
func synthPixelFrame(w, h int, seed int) *frame.Frame {
	fr := frame.New(w, h, frame.FormatYUV420)
	for i := range fr.Pix {
		fr.Pix[i] = byte((i*7 + seed*31 + (i>>8)*seed) & 0xff)
	}
	return fr
}

// measurePixels runs op frames times after a short warm-up, returning the
// wall time and the exact heap-allocation count per iteration.
func measurePixels(frames int, op func(i int)) (time.Duration, float64) {
	for i := 0; i < frames/10+1; i++ {
		op(i)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < frames; i++ {
		op(i)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return wall, float64(m1.Mallocs-m0.Mallocs) / float64(frames)
}

func pixelRow(stage string, frames, frameBytes int, wall time.Duration, allocs float64) PixelRow {
	sec := seconds(wall)
	mb := float64(frameBytes) * float64(frames) / (1 << 20)
	return PixelRow{
		Stage:           stage,
		Frames:          frames,
		Wall:            wall,
		MBPerSecond:     mb / sec,
		SecondsPerMB:    sec / mb,
		SecondsPerFrame: sec / float64(frames),
		AllocsPerFrame:  allocs,
	}
}

// PixelsRun measures the per-stage pixel pipeline on synthetic frames: no
// dataset, no planner — just the raster kernels, the frame pool, and the
// codec, in isolation. It returns an error if the fused 3-op chain is not
// byte-identical to the unfused one.
func PixelsRun(cfg Config) ([]PixelRow, error) {
	w, h := pixelDims(cfg.Scale)
	repeats := cfg.Repeats
	if repeats < 1 {
		repeats = 1
	}
	n := 96 * repeats
	frameBytes := frame.FormatYUV420.Size(w, h)

	src := synthPixelFrame(w, h, 1)
	other := synthPixelFrame(w, h, 2)
	overlayImg := raster.Scale(synthPixelFrame(w, h, 3), (w/4)&^1, (h/4)&^1)

	var rows []PixelRow

	// Individual point ops, one full pass each (the unfused exec cost of
	// one Filter node).
	singles := []struct {
		stage string
		op    func()
	}{
		{"filter:grade", func() { raster.Grade(src, 10, 1.1, 0.9) }},
		{"filter:crossfade", func() { raster.Crossfade(src, other, 0.4) }},
		{"filter:wipe", func() { raster.WipeLR(src, other, 0.6) }},
		{"filter:overlay", func() { raster.Overlay(src, overlayImg, 8, 8, 160) }},
	}
	for _, s := range singles {
		wall, allocs := measurePixels(n, func(int) { s.op() })
		rows = append(rows, pixelRow(s.stage, n, frameBytes, wall, allocs))
	}

	// The 3-op point chain, unfused: three passes, three fresh frames —
	// exactly what exec pays per frame when kernel fusion is off. The
	// chain is the triple grade the fused-execution tests use
	// (grade(grade(grade(v[t], ...)))); each op does real work on every
	// byte, so the measurement isolates the cost of the extra passes.
	chainUnfused := func() *frame.Frame {
		return raster.Grade(raster.Grade(raster.Grade(src, 10, 1.1, 1), -5, 0.9, 1.2), 3, 1, 1.3)
	}
	uWall, uAllocs := measurePixels(n, func(int) { chainUnfused() })
	unfusedRow := pixelRow("chain3:unfused", n, frameBytes, uWall, uAllocs)
	rows = append(rows, unfusedRow)

	// The same chain fused: ops prepared once, one pass per frame into a
	// pooled destination the loop releases — the steady-state render path.
	ops := []raster.PointOp{
		raster.GradeOp(10, 1.1, 1),
		raster.GradeOp(-5, 0.9, 1.2),
		raster.GradeOp(3, 1, 1.3),
	}
	pool := frame.NewPool()
	chainFused := func() *frame.Frame {
		dst := pool.Get(w, h, frame.FormatYUV420)
		raster.ApplyFused(dst, src, ops)
		return dst
	}
	fWall, fAllocs := measurePixels(n, func(int) { chainFused().Release() })
	fusedRow := pixelRow("chain3:fused", n, frameBytes, fWall, fAllocs)
	fusedRow.Speedup = unfusedRow.SecondsPerFrame / fusedRow.SecondsPerFrame

	uOut, fOut := chainUnfused(), chainFused()
	fusedRow.Identical = bytes.Equal(uOut.Pix, fOut.Pix)
	fOut.Release()
	if !fusedRow.Identical {
		return nil, fmt.Errorf("benchkit: fused 3-op chain output differs from unfused (%dx%d)", w, h)
	}
	rows = append(rows, fusedRow)

	// Codec stages: encode distinct frames (real P-frame residuals), then
	// decode the recorded packets.
	ring := make([]*frame.Frame, 16)
	for i := range ring {
		ring[i] = synthPixelFrame(w, h, 11+i)
	}
	enc, err := codec.NewEncoder(codec.Config{Width: w, Height: h})
	if err != nil {
		return nil, fmt.Errorf("benchkit: pixels encoder: %w", err)
	}
	var pkts [][]byte
	eWall, eAllocs := measurePixels(n, func(i int) {
		pkt, err := enc.Encode(ring[i%len(ring)])
		if err != nil {
			panic(err)
		}
		if len(pkts) < n {
			pkts = append(pkts, pkt.Data)
		} else {
			enc.Recycle(pkt)
		}
	})
	rows = append(rows, pixelRow("codec:encode", n, frameBytes, eWall, eAllocs))

	dec, err := codec.NewDecoder(codec.Config{Width: w, Height: h})
	if err != nil {
		return nil, fmt.Errorf("benchkit: pixels decoder: %w", err)
	}
	dec.SetFramePool(pool)
	defer dec.Reset()
	dWall, dAllocs := measurePixels(len(pkts), func(i int) {
		fr, err := dec.Decode(pkts[i%len(pkts)])
		if err != nil {
			panic(err)
		}
		fr.Release()
	})
	rows = append(rows, pixelRow("codec:decode", len(pkts), frameBytes, dWall, dAllocs))

	return rows, nil
}

// FormatPixels renders the pixel-pipeline rows as an aligned text table.
func FormatPixels(title string, rows []PixelRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-16s %7s %10s %9s %10s %13s %8s\n",
		"Stage", "Frames", "Wall", "MB/s", "s/frame", "allocs/frame", "Speedup")
	for _, r := range rows {
		speedup := ""
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%6.2fx", r.Speedup)
			if r.Identical {
				speedup += " ="
			}
		}
		fmt.Fprintf(&sb, "%-16s %7d %10s %9.1f %10s %13.2f %8s\n",
			r.Stage, r.Frames, fmtDur(r.Wall), r.MBPerSecond,
			fmtDur(time.Duration(r.SecondsPerFrame*float64(time.Second))), r.AllocsPerFrame, speedup)
	}
	return sb.String()
}
