package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func decodeTrace(t *testing.T, tr *Trace) []map[string]any {
	t.Helper()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	return doc.TraceEvents
}

func TestTraceChromeEventShape(t *testing.T) {
	tr := NewTrace("v2v test")
	root := tr.StartSpan("execute")
	seg := root.Child("segment")
	seg.SetAttr("kind", "render")
	seg.SetAttr("frames", 48)
	seg.End()
	root.End()

	events := decodeTrace(t, tr)
	// process_name metadata + 2 complete events.
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0]["ph"] != "M" || events[0]["name"] != "process_name" {
		t.Errorf("missing process_name metadata: %v", events[0])
	}
	byName := map[string]map[string]any{}
	for _, e := range events[1:] {
		if e["ph"] != "X" {
			t.Errorf("phase = %v, want X", e["ph"])
		}
		for _, k := range []string{"ts", "dur", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Errorf("event %v missing %s", e["name"], k)
			}
		}
		byName[e["name"].(string)] = e
	}
	segEv := byName["segment"]
	if segEv == nil {
		t.Fatal("no segment event")
	}
	args := segEv["args"].(map[string]any)
	if args["kind"] != "render" || args["frames"] != float64(48) {
		t.Errorf("segment args = %v", args)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil trace must yield nil span")
	}
	// All nil-span operations are no-ops.
	sp.SetAttr("k", 1)
	child := sp.Child("y")
	child.ChildThread("z").End()
	child.End()
	sp.End()
	if tr.SpanCount() != 0 {
		t.Error("nil trace has spans")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Errorf("nil trace JSON = %q", sb.String())
	}
}

func TestTraceConcurrentShardSpans(t *testing.T) {
	tr := NewTrace("shards")
	root := tr.StartSpan("execute")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.ChildThread("shard")
			sp.SetAttr("worker", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	events := decodeTrace(t, tr)
	tids := map[float64]bool{}
	shardCount := 0
	for _, e := range events {
		if e["name"] == "shard" {
			shardCount++
			tids[e["tid"].(float64)] = true
		}
	}
	if shardCount != 8 {
		t.Errorf("shard spans = %d", shardCount)
	}
	if len(tids) != 8 {
		t.Errorf("shard tids = %d, want 8 distinct threads", len(tids))
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace("x")
	sp := tr.StartSpan("once")
	sp.End()
	sp.End()
	if got := tr.SpanCount(); got != 1 {
		t.Errorf("spans = %d, want 1", got)
	}
}
