package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderStageObserve(t *testing.T) {
	r := NewRecorder()
	r.StageObserve(StageDecode, 3, 300, 30*time.Millisecond)
	r.StageObserve(StageDecode, 2, 200, 20*time.Millisecond)
	r.StageObserve(StageEncode, 1, 100, 10*time.Millisecond)

	dec := r.Stage(StageDecode)
	if dec.Frames != 5 || dec.Bytes != 500 || dec.Wall != 50*time.Millisecond {
		t.Errorf("decode stats = %+v", dec)
	}
	st := r.Stages()
	if st["encode"].Frames != 1 || st["filter"].Frames != 0 {
		t.Errorf("stages = %+v", st)
	}

	// Nil recorders and out-of-range stages must not panic.
	var nilRec *Recorder
	nilRec.StageObserve(StageEncode, 1, 1, time.Millisecond)
	if got := nilRec.Stage(StageEncode); got.Frames != 0 {
		t.Errorf("nil recorder stage = %+v", got)
	}
	r.StageObserve(Stage(99), 1, 1, time.Millisecond)
	r.StageObserve(Stage(-1), 1, 1, time.Millisecond)
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace id lengths = %d, %d", len(a), len(b))
	}
	if a == b {
		t.Errorf("trace ids collide: %s", a)
	}
	for _, c := range a {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Errorf("non-hex trace id %q", a)
		}
	}
}

func TestFlightRecorderLifecycle(t *testing.T) {
	f := NewFlightRecorder(8)
	q := f.Start("trace1", "render(t) = cam[t]")
	if got := q.TraceID(); got != "trace1" {
		t.Errorf("TraceID = %q", got)
	}
	q.Recorder().StageObserve(StageEncode, 7, 700, time.Millisecond)
	q.SetPlan("concat (1 segments)")
	q.SetSegments([]SegmentRecord{{Kind: "render", FramesEncoded: 7}})
	q.SetCaches(4, 2, 1, 0)

	// While active the snapshot reports it live.
	recs := f.Snapshot(Filter{})
	if len(recs) != 1 || !recs[0].Active || recs[0].Outcome != "" {
		t.Fatalf("active snapshot = %+v", recs)
	}

	q.Finish("ok", nil)
	q.Finish("error", errors.New("ignored")) // idempotent: first outcome wins

	recs = f.Snapshot(Filter{})
	if len(recs) != 1 {
		t.Fatalf("snapshot = %d records", len(recs))
	}
	r := recs[0]
	if r.Active || r.Outcome != "ok" || r.Error != "" {
		t.Errorf("finished record = %+v", r)
	}
	if r.Plan != "concat (1 segments)" || len(r.Segments) != 1 || r.Segments[0].FramesEncoded != 7 {
		t.Errorf("plan/segments = %q %+v", r.Plan, r.Segments)
	}
	if r.GOPCacheHits != 4 || r.GOPCacheMisses != 2 || r.ResCacheHits != 1 {
		t.Errorf("cache counts = %+v", r)
	}
	if r.Stages["encode"].Frames != 7 || r.Stages["encode"].Bytes != 700 {
		t.Errorf("stages = %+v", r.Stages)
	}
	if r.Wall <= 0 {
		t.Errorf("wall = %v", r.Wall)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	q := f.Start("id", "query")
	if q != nil {
		t.Fatalf("nil recorder Start = %v", q)
	}
	// All handle methods tolerate the nil request.
	q.SetPlan("p")
	q.SetSegments(nil)
	q.SetCaches(0, 0, 0, 0)
	q.SetTrace(nil)
	q.Finish("ok", nil)
	if q.Recorder() != nil || q.TraceID() != "" {
		t.Error("nil request leaked state")
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 10; i++ {
		q := f.Start(fmt.Sprintf("t%d", i), fmt.Sprintf("q%d", i))
		q.Finish("ok", nil)
	}
	recs := f.Snapshot(Filter{})
	if len(recs) != 3 {
		t.Fatalf("ring kept %d records, want 3", len(recs))
	}
	// Newest first, oldest evicted.
	for i, want := range []string{"q9", "q8", "q7"} {
		if recs[i].Query != want {
			t.Errorf("recs[%d].Query = %q, want %q", i, recs[i].Query, want)
		}
	}
}

func TestFlightRecorderQueryTruncation(t *testing.T) {
	f := NewFlightRecorder(2)
	long := strings.Repeat("x", 3*maxRecordedText)
	q := f.Start("t", long)
	q.SetPlan(long)
	q.Finish("ok", nil)
	r := f.Snapshot(Filter{})[0]
	if len(r.Query) > maxRecordedText+8 || len(r.Plan) > maxRecordedText+8 {
		t.Errorf("texts not truncated: query=%d plan=%d", len(r.Query), len(r.Plan))
	}
}

func TestFlightRecorderFilters(t *testing.T) {
	f := NewFlightRecorder(16)
	ok := f.Start("t-ok", "ok query")
	ok.Finish("ok", nil)
	bad := f.Start("t-bad", "bad query")
	bad.Finish("error", errors.New("boom"))
	canceled := f.Start("t-can", "canceled query")
	canceled.Finish("canceled", errors.New("ctx"))
	live := f.Start("t-live", "live query")
	defer live.Finish("ok", nil)

	if got := len(f.Snapshot(Filter{})); got != 4 {
		t.Fatalf("unfiltered = %d", got)
	}
	// Active requests sort first, then completed newest-first.
	all := f.Snapshot(Filter{})
	if !all[0].Active || all[0].Query != "live query" {
		t.Errorf("snapshot head = %+v", all[0])
	}

	errored := f.Snapshot(Filter{Errored: true})
	if len(errored) != 2 {
		t.Fatalf("errored = %+v", errored)
	}
	for _, r := range errored {
		if r.Outcome == "ok" || r.Active {
			t.Errorf("errored filter let through %+v", r)
		}
	}
	if bad := f.Snapshot(Filter{Errored: true})[1]; bad.Error != "boom" {
		t.Errorf("error text = %q", bad.Error)
	}

	active := f.Snapshot(Filter{Active: true})
	if len(active) != 1 || active[0].Query != "live query" {
		t.Errorf("active = %+v", active)
	}

	// Slow matches nothing without a threshold, everything past one.
	if got := f.Snapshot(Filter{Slow: true}); len(got) != 0 {
		t.Errorf("slow without threshold = %d", len(got))
	}
	f.SetSlowThreshold(time.Nanosecond)
	if got := f.Snapshot(Filter{Slow: true}); len(got) == 0 {
		t.Error("slow with 1ns threshold matched nothing")
	}
	// Conjunctive: slow AND errored.
	se := f.Snapshot(Filter{Slow: true, Errored: true})
	if len(se) != 2 {
		t.Errorf("slow+errored = %+v", se)
	}
}

func TestFlightRecorderSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))

	f := NewFlightRecorder(4)
	f.SetSlowThreshold(time.Nanosecond)
	f.SetLogger(logger)

	q := f.Start("slow-trace", "slow query text")
	time.Sleep(time.Millisecond)
	q.Finish("ok", nil)

	fast := NewFlightRecorder(4) // no threshold: no log line
	fast.SetLogger(logger)
	fq := fast.Start("fast-trace", "fast query")
	fq.Finish("ok", nil)

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "slow-trace") {
		t.Errorf("slow query log missing:\n%s", out)
	}
	if strings.Contains(out, "fast-trace") {
		t.Errorf("unthresholded recorder logged:\n%s", out)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestFlightRecorderTraceLookup(t *testing.T) {
	f := NewFlightRecorder(4)
	tr := NewTrace("req")
	tr.SetID("trace-a")
	sp := tr.StartSpan("work")
	sp.End()

	q := f.Start("trace-a", "query")
	q.SetTrace(tr)
	q.Finish("ok", nil)

	got := f.Trace("trace-a")
	if got == nil {
		t.Fatal("recorded trace not found")
	}
	var buf bytes.Buffer
	if err := got.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace-a") || !strings.Contains(buf.String(), "work") {
		t.Errorf("trace export missing content:\n%s", buf.String())
	}
	if f.Trace("unknown") != nil {
		t.Error("unknown trace id returned a trace")
	}

	// A live request's trace is reachable too.
	live := f.Start("trace-b", "live")
	ltr := NewTrace("live")
	ltr.SetID("trace-b")
	live.SetTrace(ltr)
	if f.Trace("trace-b") == nil {
		t.Error("live trace not found")
	}
	live.Finish("ok", nil)
}

func TestFlightHandler(t *testing.T) {
	f := NewFlightRecorder(4)
	q := f.Start("handler-trace", "handler query <script>")
	tr := NewTrace("req")
	tr.SetID("handler-trace")
	q.SetTrace(tr)
	q.Finish("error", errors.New("synthetic"))

	get := func(target string) (*httptest.ResponseRecorder, string) {
		t.Helper()
		rr := httptest.NewRecorder()
		f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", target, nil))
		return rr, rr.Body.String()
	}

	rr, body := get("/debug/requests")
	if rr.Code != 200 || !strings.HasPrefix(rr.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("json view: %d %q", rr.Code, rr.Header().Get("Content-Type"))
	}
	var parsed struct {
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(parsed.Requests) != 1 || parsed.Requests[0].TraceID != "handler-trace" {
		t.Errorf("parsed = %+v", parsed)
	}

	if _, body := get("/debug/requests?errored=1"); !strings.Contains(body, "synthetic") {
		t.Errorf("errored filter missing record:\n%s", body)
	}
	if _, body := get("/debug/requests?active=1"); strings.Contains(body, "handler-trace") {
		t.Errorf("active filter returned completed record:\n%s", body)
	}

	rr, body = get("/debug/requests?format=html")
	if !strings.HasPrefix(rr.Header().Get("Content-Type"), "text/html") ||
		!strings.Contains(body, "&lt;script&gt;") {
		t.Errorf("html view unescaped or wrong type:\n%.300s", body)
	}

	rr, body = get("/debug/requests?trace=handler-trace")
	if rr.Code != 200 || !strings.Contains(body, "traceEvents") {
		t.Errorf("trace export: %d\n%.200s", rr.Code, body)
	}
	if rr, _ := get("/debug/requests?trace=missing"); rr.Code != 404 {
		t.Errorf("missing trace status = %d", rr.Code)
	}
}

// TestFlightRecorderConcurrent hammers one recorder from many goroutines
// (run under -race in CI): writers start/annotate/finish requests while
// readers snapshot and serve HTTP.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	f.SetSlowThreshold(time.Nanosecond)
	f.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := f.Start(fmt.Sprintf("t%d-%d", w, i), "concurrent query")
				q.Recorder().StageObserve(StageDecode, 1, 100, time.Microsecond)
				q.SetSegments([]SegmentRecord{{Kind: "render"}})
				q.SetCaches(1, 1, 0, 0)
				if i%3 == 0 {
					q.Finish("error", errors.New("x"))
				} else {
					q.Finish("ok", nil)
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f.Snapshot(Filter{Errored: i%2 == 0})
				rr := httptest.NewRecorder()
				f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
			}
		}()
	}
	wg.Wait()
	if got := len(f.Snapshot(Filter{})); got != 16 {
		t.Errorf("final ring = %d records, want 16", got)
	}
}

func TestFlightRecorderShedFilterAndAdmission(t *testing.T) {
	fr := NewFlightRecorder(8)

	ok := fr.Start("aaaaaaaaaaaaaaaa", "q ok")
	ok.SetAdmission("tenant-a", 42.5, 3*time.Millisecond, "")
	ok.Finish("ok", nil)

	shed := fr.Start("bbbbbbbbbbbbbbbb", "q shed")
	shed.SetAdmission("tenant-b", 900, 0, "queue_full")
	shed.Finish("shed", errors.New("admit: overloaded"))

	all := fr.Snapshot(Filter{})
	if len(all) != 2 {
		t.Fatalf("snapshot = %d records, want 2", len(all))
	}
	got := fr.Snapshot(Filter{Shed: true})
	if len(got) != 1 || got[0].TraceID != "bbbbbbbbbbbbbbbb" {
		t.Fatalf("shed filter = %+v, want only the shed record", got)
	}
	if got[0].Tenant != "tenant-b" || got[0].ShedReason != "queue_full" || got[0].CostUnits != 900 {
		t.Errorf("shed record admission fields = %+v", got[0])
	}

	// The errored filter also matches shed records (outcome != ok), while
	// the shed filter does not match plain errors.
	errRec := fr.Start("cccccccccccccccc", "q err")
	errRec.Finish("error", errors.New("boom"))
	if n := len(fr.Snapshot(Filter{Errored: true})); n != 2 {
		t.Errorf("errored filter = %d records, want 2 (shed + error)", n)
	}
	if n := len(fr.Snapshot(Filter{Shed: true})); n != 1 {
		t.Errorf("shed filter = %d records, want 1", n)
	}

	// Handler: ?shed=1 restricts the JSON body.
	srv := httptest.NewServer(fr.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?shed=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Requests) != 1 || body.Requests[0].ShedReason != "queue_full" {
		t.Errorf("?shed=1 body = %+v, want the one shed record", body.Requests)
	}
	if body.Requests[0].QueuedWall != 0 || body.Requests[0].Tenant != "tenant-b" {
		t.Errorf("admission fields did not round-trip: %+v", body.Requests[0])
	}
}
