package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage for per-stage accounting. The four
// stages mirror the cost model the optimizer exploits: decode and encode
// are the expensive transforms, filter is the pixel work between them, and
// copy is the near-memcpy packet path that stream copies and smart cuts
// ride.
type Stage int

const (
	// StageDecode covers codec packet→frame decompression; bytes are the
	// pixel bytes produced.
	StageDecode Stage = iota
	// StageFilter covers render-expression evaluation (filter operators,
	// composition, scaling); bytes are the pixel bytes produced.
	StageFilter
	// StageEncode covers codec frame→packet compression; bytes are the
	// encoded packet bytes produced.
	StageEncode
	// StageCopy covers stream-copied packets written without re-encoding;
	// bytes are the encoded packet bytes copied.
	StageCopy

	numStages = 4
)

// String returns the stage label used in metric labels and JSON keys.
func (s Stage) String() string {
	switch s {
	case StageDecode:
		return "decode"
	case StageFilter:
		return "filter"
	case StageEncode:
		return "encode"
	case StageCopy:
		return "copy"
	}
	return "unknown"
}

// StageStats is a point-in-time snapshot of one stage's accumulated work.
// Wall is the summed duration of the stage's operations (shard-parallel
// work sums, so Wall can exceed the request's elapsed time).
type StageStats struct {
	Frames int64         `json:"frames"`
	Bytes  int64         `json:"bytes"`
	Wall   time.Duration `json:"wall_ns"`
}

// StageBuckets returns histogram upper bounds (seconds) sized for
// per-frame stage operations, which are typically tens of microseconds to
// a few milliseconds — much finer than request-level LatencyBuckets.
func StageBuckets() []float64 {
	return []float64{.00001, .000025, .00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, 1}
}

// Process-wide per-stage instruments. Every StageObserve call updates
// these, recorder or not, so /metrics reflects all pipeline work in the
// process; per-second rates over the frame and byte counters give
// frames/s and MB/s per stage.
var (
	stageFramesDecode = Default().Counter(`v2v_stage_frames_total{stage="decode"}`, "Frames processed per pipeline stage.")
	stageFramesFilter = Default().Counter(`v2v_stage_frames_total{stage="filter"}`, "Frames processed per pipeline stage.")
	stageFramesEncode = Default().Counter(`v2v_stage_frames_total{stage="encode"}`, "Frames processed per pipeline stage.")
	stageFramesCopy   = Default().Counter(`v2v_stage_frames_total{stage="copy"}`, "Frames processed per pipeline stage.")

	stageBytesDecode = Default().Counter(`v2v_stage_bytes_total{stage="decode"}`, "Bytes produced per pipeline stage (pixel bytes for decode/filter, encoded bytes for encode/copy).")
	stageBytesFilter = Default().Counter(`v2v_stage_bytes_total{stage="filter"}`, "Bytes produced per pipeline stage (pixel bytes for decode/filter, encoded bytes for encode/copy).")
	stageBytesEncode = Default().Counter(`v2v_stage_bytes_total{stage="encode"}`, "Bytes produced per pipeline stage (pixel bytes for decode/filter, encoded bytes for encode/copy).")
	stageBytesCopy   = Default().Counter(`v2v_stage_bytes_total{stage="copy"}`, "Bytes produced per pipeline stage (pixel bytes for decode/filter, encoded bytes for encode/copy).")

	stageWallDecode = Default().Histogram(`v2v_stage_wall_seconds{stage="decode"}`, "Per-operation wall time by pipeline stage.", StageBuckets())
	stageWallFilter = Default().Histogram(`v2v_stage_wall_seconds{stage="filter"}`, "Per-operation wall time by pipeline stage.", StageBuckets())
	stageWallEncode = Default().Histogram(`v2v_stage_wall_seconds{stage="encode"}`, "Per-operation wall time by pipeline stage.", StageBuckets())
	stageWallCopy   = Default().Histogram(`v2v_stage_wall_seconds{stage="copy"}`, "Per-operation wall time by pipeline stage.", StageBuckets())
)

var (
	stageFrames = [numStages]*Counter{stageFramesDecode, stageFramesFilter, stageFramesEncode, stageFramesCopy}
	stageBytes  = [numStages]*Counter{stageBytesDecode, stageBytesFilter, stageBytesEncode, stageBytesCopy}
	stageWall   = [numStages]*Histogram{stageWallDecode, stageWallFilter, stageWallEncode, stageWallCopy}
)

// Recorder accumulates per-stage work for one request. All methods are
// lock-free atomics and nil-safe: instrumentation sites call StageObserve
// unconditionally, and a nil recorder still feeds the process-wide
// v2v_stage_* metrics while skipping per-request attribution. Safe for
// concurrent use by shard workers.
type Recorder struct {
	frames [numStages]atomic.Int64
	bytes  [numStages]atomic.Int64
	wallNS [numStages]atomic.Int64
}

// NewRecorder returns an empty per-request recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// StageObserve records one stage operation: frames and bytes processed and
// the wall time spent. The process-wide stage metrics are always updated;
// the recorder's own counters only when r is non-nil.
func (r *Recorder) StageObserve(s Stage, frames, bytes int64, wall time.Duration) {
	if s < 0 || s >= numStages {
		return
	}
	stageFrames[s].Add(frames)
	stageBytes[s].Add(bytes)
	stageWall[s].Observe(wall.Seconds())
	if r == nil {
		return
	}
	r.frames[s].Add(frames)
	r.bytes[s].Add(bytes)
	r.wallNS[s].Add(int64(wall))
}

// Stage returns a snapshot of one stage's accumulated work. Nil-safe
// (returns zeros).
func (r *Recorder) Stage(s Stage) StageStats {
	if r == nil || s < 0 || s >= numStages {
		return StageStats{}
	}
	return StageStats{
		Frames: r.frames[s].Load(),
		Bytes:  r.bytes[s].Load(),
		Wall:   time.Duration(r.wallNS[s].Load()),
	}
}

// Stages returns a snapshot of all stages keyed by stage label. Nil-safe
// (returns an empty map).
func (r *Recorder) Stages() map[string]StageStats {
	out := make(map[string]StageStats, numStages)
	if r == nil {
		return out
	}
	for s := Stage(0); s < numStages; s++ {
		out[s.String()] = r.Stage(s)
	}
	return out
}

// NewTraceID returns a fresh 16-hex-digit request/trace identifier, the
// join key shared by a request's log lines, flight-recorder entry, and
// span trace.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// recognizable constant rather than an empty ID.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
