package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentWriters hammers one counter, gauge, and histogram
// from many goroutines; run under -race this is the registry's
// thread-safety proof, and the final values check that no update is lost.
func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_inflight", "inflight")
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.5, 1, 2})

	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%4) * 0.75)
				// Concurrent re-lookup must return the same instruments.
				if r.Counter("test_ops_total", "ops") != c {
					t.Error("counter identity changed")
					return
				}
			}
		}(w)
	}
	// Concurrent scrapes while writers run.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			for i := 0; i < 50; i++ {
				sb.Reset()
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Per worker: 250 each of 0, 0.75, 1.5, 2.25.
	wantSum := float64(workers) * 250 * (0 + 0.75 + 1.5 + 2.25)
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestPrometheusExpositionGolden pins the full text format output.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("v2v_http_requests_total", "HTTP requests served.").Add(7)
	r.Counter(`v2v_http_errors_total{class="4xx"}`, "HTTP error responses by class.").Add(2)
	r.Counter(`v2v_http_errors_total{class="5xx"}`, "HTTP error responses by class.").Inc()
	r.Gauge("v2v_inflight_requests", "Requests currently being served.").Set(3)
	h := r.Histogram("v2v_synthesis_wall_seconds", "Synthesis wall time.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(4)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP v2v_http_errors_total HTTP error responses by class.
# TYPE v2v_http_errors_total counter
v2v_http_errors_total{class="4xx"} 2
v2v_http_errors_total{class="5xx"} 1
# HELP v2v_http_requests_total HTTP requests served.
# TYPE v2v_http_requests_total counter
v2v_http_requests_total 7
# HELP v2v_inflight_requests Requests currently being served.
# TYPE v2v_inflight_requests gauge
v2v_inflight_requests 3
# HELP v2v_synthesis_wall_seconds Synthesis wall time.
# TYPE v2v_synthesis_wall_seconds histogram
v2v_synthesis_wall_seconds_bucket{le="0.1"} 2
v2v_synthesis_wall_seconds_bucket{le="1"} 3
v2v_synthesis_wall_seconds_bucket{le="+Inf"} 4
v2v_synthesis_wall_seconds_sum 4.6
v2v_synthesis_wall_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "", []float64{1, 2})
	h.Observe(1) // le="1" (boundary lands in its bucket)
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=1 = %d", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("bucket le=2 = %d", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("bucket +Inf = %d", got)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("gauge under a counter family should panic")
		}
	}()
	r.Gauge(`x_total{a="b"}`, "")
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}
