// Package obs is V2V's zero-dependency observability layer: a lightweight
// span tracer exportable as Chrome trace_event JSON, and a concurrency-safe
// metrics registry exposed in Prometheus text format.
//
// Both halves are nil-tolerant by design: a nil *Trace produces nil *Spans
// whose methods are no-ops, so the pipeline threads tracing through every
// stage unconditionally and pays nothing when tracing is off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// mainThread is the tid of the pipeline's primary span track. Shard worker
// spans allocate fresh tids so a trace viewer lays them out as parallel
// rows.
const mainThread = 1

// Trace accumulates completed spans for one traced activity (a synthesis
// run, a benchmark sweep). Safe for concurrent use.
type Trace struct {
	name  string
	start time.Time

	mu      sync.Mutex
	id      string
	events  []traceEvent
	nextTID int64
}

type traceEvent struct {
	name string
	tid  int64
	ts   time.Duration // offset from trace start
	dur  time.Duration
	args map[string]any
}

// NewTrace starts an empty trace named name (shown as the process name in
// trace viewers).
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now(), nextTID: mainThread}
}

// SetID attaches the trace/request identifier shared with the flight
// recorder and log lines; it is emitted in the exported trace's process
// metadata so a Chrome trace joins back to its request. Nil-safe.
func (t *Trace) SetID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.id = id
}

// TraceID returns the identifier set with SetID ("" if unset). Nil-safe.
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// StartSpan opens a span on the trace's main track. Nil-safe: a nil trace
// returns a nil span.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, start: time.Now(), tid: mainThread}
}

func (t *Trace) newTID() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTID++
	return t.nextTID
}

func (t *Trace) record(e traceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, e)
}

// Span is one timed operation. Spans nest by time containment on the same
// thread track, which is how Chrome's trace viewer and Perfetto render
// call stacks — no explicit parent links are needed.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
	tid   int64

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Child opens a sub-span on the same thread track. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tr: s.tr, name: name, start: time.Now(), tid: s.tid}
}

// ChildThread opens a sub-span on a fresh thread track — used for shard
// workers so parallel execution renders as parallel rows. Nil-safe.
func (s *Span) ChildThread(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{tr: s.tr, name: name, start: time.Now(), tid: s.tr.newTID()}
}

// SetAttr attaches a key/value argument shown in the trace viewer's detail
// pane. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
}

// End completes the span and records it on the trace. Nil-safe and
// idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	s.tr.record(traceEvent{
		name: s.name,
		tid:  s.tid,
		ts:   s.start.Sub(s.tr.start),
		dur:  time.Since(s.start),
		args: attrs,
	})
}

// jsonEvent is one Chrome trace_event entry.
type jsonEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteJSON renders the trace in the Chrome trace_event format, loadable
// in chrome://tracing or https://ui.perfetto.dev. Nil-safe (writes an
// empty trace).
func (t *Trace) WriteJSON(w io.Writer) error {
	var events []jsonEvent
	if t != nil {
		t.mu.Lock()
		events = make([]jsonEvent, 0, len(t.events)+1)
		meta := map[string]any{"name": t.name}
		if t.id != "" {
			meta["trace_id"] = t.id
		}
		events = append(events, jsonEvent{
			Name: "process_name", Phase: "M", PID: 1, TID: mainThread,
			Args: meta,
		})
		for _, e := range t.events {
			events = append(events, jsonEvent{
				Name:  e.name,
				Phase: "X",
				Ts:    e.ts.Microseconds(),
				Dur:   max64(e.dur.Microseconds(), 1),
				PID:   1,
				TID:   e.tid,
				Args:  e.args,
			})
		}
		t.mu.Unlock()
	}
	doc := struct {
		DisplayTimeUnit string      `json:"displayTimeUnit"`
		TraceEvents     []jsonEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteJSONFile writes the trace to path.
func (t *Trace) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	return f.Close()
}

// SpanCount returns the number of completed spans (testing aid). Nil-safe.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
