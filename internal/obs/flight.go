package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultFlightRecorderSize is the completed-request ring capacity used
// when a FlightRecorder is built with size <= 0.
const DefaultFlightRecorderSize = 256

// maxRecordedText bounds the query and plan text stored per record so the
// ring's memory footprint stays proportional to its capacity.
const maxRecordedText = 2048

// SegmentRecord is one plan segment's execution record inside a flight
// record: the copy/smartcut/render decision and the measured costs. It
// mirrors plan.SegmentActuals without importing the plan package.
type SegmentRecord struct {
	Kind           string        `json:"kind"` // copy | smartcut | render
	Wall           time.Duration `json:"wall_ns"`
	FramesRendered int64         `json:"frames_rendered,omitempty"`
	FramesDecoded  int64         `json:"frames_decoded,omitempty"`
	FramesEncoded  int64         `json:"frames_encoded,omitempty"`
	PacketsCopied  int64         `json:"packets_copied,omitempty"`
	BytesCopied    int64         `json:"bytes_copied,omitempty"`
	Concealed      int64         `json:"concealed,omitempty"`
	GOPCacheHits   int64         `json:"gop_cache_hits,omitempty"`
	GOPCacheMisses int64         `json:"gop_cache_misses,omitempty"`
	ResCacheHits   int64         `json:"result_cache_hits,omitempty"`
	ResCacheMisses int64         `json:"result_cache_misses,omitempty"`
	Shards         int           `json:"shards,omitempty"`
	DecodeWall     time.Duration `json:"decode_wall_ns,omitempty"`
	FilterWall     time.Duration `json:"filter_wall_ns,omitempty"`
	EncodeWall     time.Duration `json:"encode_wall_ns,omitempty"`
	DecodeBytes    int64         `json:"decode_bytes,omitempty"`
	FilterFrames   int64         `json:"filter_frames,omitempty"`
	FilterBytes    int64         `json:"filter_bytes,omitempty"`
	EncodeBytes    int64         `json:"encode_bytes,omitempty"`
}

// RequestRecord is one request's flight-recorder entry: identity (trace
// ID, query text, plan summary), per-segment decisions, per-stage work,
// cache effectiveness, and the outcome. Snapshot returns copies, so a
// record is safe to hold after the ring evicts it.
type RequestRecord struct {
	ID      uint64    `json:"id"`
	TraceID string    `json:"trace_id"`
	Query   string    `json:"query"`
	Plan    string    `json:"plan,omitempty"`
	Start   time.Time `json:"start"`
	// Wall is the request's elapsed time; still running if Active.
	Wall    time.Duration `json:"wall_ns"`
	Active  bool          `json:"active"`
	Outcome string        `json:"outcome,omitempty"` // ok | error | canceled | shed
	Error   string        `json:"error,omitempty"`

	// Admission fields, set by SetAdmission: the tenant bucket, the
	// plan's estimated cost in plan.Cost units, the wall time spent queued
	// before admission, and — for shed requests — the typed reason.
	Tenant     string        `json:"tenant,omitempty"`
	CostUnits  float64       `json:"cost_units,omitempty"`
	QueuedWall time.Duration `json:"queued_wall_ns,omitempty"`
	ShedReason string        `json:"shed_reason,omitempty"`

	// Streaming fields, set by SetStreaming: whether the response was
	// delivered as an eagerly flushed stream, and the honest
	// time-to-first-frame — the wall time until the first bytes were
	// flushed to the client, not merely handed to the kernel buffers.
	Streaming bool          `json:"streaming,omitempty"`
	TTFF      time.Duration `json:"ttff_ns,omitempty"`

	Segments []SegmentRecord       `json:"segments,omitempty"`
	Stages   map[string]StageStats `json:"stages,omitempty"`

	GOPCacheHits   int64 `json:"gop_cache_hits"`
	GOPCacheMisses int64 `json:"gop_cache_misses"`
	ResCacheHits   int64 `json:"result_cache_hits"`
	ResCacheMisses int64 `json:"result_cache_misses"`
}

// Request is the mutable handle for an in-flight request record. All
// methods are nil-safe so callers thread it unconditionally.
type Request struct {
	fr    *FlightRecorder
	rec   *Recorder
	trace *Trace

	mu   sync.Mutex
	data RequestRecord
	done bool
}

// Recorder returns the request's per-stage recorder. Nil-safe (returns a
// nil recorder, which still feeds process-wide stage metrics).
func (q *Request) Recorder() *Recorder {
	if q == nil {
		return nil
	}
	return q.rec
}

// TraceID returns the request's trace identifier. Nil-safe.
func (q *Request) TraceID() string {
	if q == nil {
		return ""
	}
	return q.data.TraceID
}

// SetPlan records the plan summary (truncated to a bounded length).
func (q *Request) SetPlan(plan string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.data.Plan = truncate(plan, maxRecordedText)
}

// SetSegments records the per-segment execution decisions and costs.
func (q *Request) SetSegments(segs []SegmentRecord) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.data.Segments = append([]SegmentRecord(nil), segs...)
}

// SetCaches records the request's cache hit/miss totals.
func (q *Request) SetCaches(gopHits, gopMisses, resHits, resMisses int64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.data.GOPCacheHits, q.data.GOPCacheMisses = gopHits, gopMisses
	q.data.ResCacheHits, q.data.ResCacheMisses = resHits, resMisses
}

// SetAdmission records the request's admission outcome: its tenant
// bucket, estimated cost, and time spent queued. shedReason is empty for
// admitted requests and one of the admit package's Reason* values for
// shed ones (the record's Outcome is then "shed", set via Finish).
func (q *Request) SetAdmission(tenant string, costUnits float64, queuedWall time.Duration, shedReason string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.data.Tenant = tenant
	q.data.CostUnits = costUnits
	q.data.QueuedWall = queuedWall
	q.data.ShedReason = shedReason
}

// SetStreaming records that the response was streamed and its measured
// time-to-first-flush (the client-observable TTFF).
func (q *Request) SetStreaming(ttff time.Duration) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.data.Streaming = true
	q.data.TTFF = ttff
}

// SetTrace attaches the request's span trace, served by the flight
// recorder's handler at ?trace=<trace id>.
func (q *Request) SetTrace(tr *Trace) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.trace = tr
}

// Finish completes the record with an outcome ("ok", "error", or
// "canceled"), moves it from the active set into the ring, and emits the
// slow-query log line when the request exceeded the recorder's threshold.
// Idempotent and nil-safe.
func (q *Request) Finish(outcome string, err error) {
	if q == nil {
		return
	}
	q.mu.Lock()
	if q.done {
		q.mu.Unlock()
		return
	}
	q.done = true
	q.data.Wall = time.Since(q.data.Start)
	q.data.Active = false
	q.data.Outcome = outcome
	if err != nil {
		q.data.Error = err.Error()
	}
	q.data.Stages = q.rec.Stages()
	data, trace := q.data, q.trace
	q.mu.Unlock()
	q.fr.finish(q, data, trace)
}

// snapshot returns a deep copy of the record's current state, stamping
// live wall time and stage stats for in-flight requests.
func (q *Request) snapshot() RequestRecord {
	q.mu.Lock()
	defer q.mu.Unlock()
	data := q.data
	if data.Active {
		data.Wall = time.Since(data.Start)
		data.Stages = q.rec.Stages()
	}
	data.Segments = append([]SegmentRecord(nil), data.Segments...)
	return data
}

// flightEntry pairs a completed record with its (optional) span trace.
type flightEntry struct {
	data  RequestRecord
	trace *Trace
}

// FlightRecorder keeps a fixed-size ring of recently completed request
// records plus the set of in-flight ones — the always-on "what is this
// server doing right now / what did it just do" view. Per-request stage
// counters are lock-free atomics; only ring bookkeeping takes the mutex.
type FlightRecorder struct {
	mu     sync.Mutex
	size   int
	ring   []flightEntry // oldest first
	active map[uint64]*Request
	seq    uint64
	slow   time.Duration
	logger *slog.Logger
}

// NewFlightRecorder returns a recorder keeping the last size completed
// requests (DefaultFlightRecorderSize when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRecorderSize
	}
	return &FlightRecorder{size: size, active: map[uint64]*Request{}}
}

// SetSlowThreshold sets the slow-query log threshold; a completed request
// whose wall time reaches d is logged at Warn level. d <= 0 disables slow
// logging.
func (f *FlightRecorder) SetSlowThreshold(d time.Duration) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slow = d
}

// SlowThreshold returns the current slow-query threshold.
func (f *FlightRecorder) SlowThreshold() time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slow
}

// SetLogger sets the logger used for slow-query lines (slog.Default when
// unset).
func (f *FlightRecorder) SetLogger(l *slog.Logger) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.logger = l
}

// Start opens a new in-flight request record. Nil-safe: a nil recorder
// returns a nil *Request whose methods no-op.
func (f *FlightRecorder) Start(traceID, query string) *Request {
	if f == nil {
		return nil
	}
	q := &Request{fr: f, rec: NewRecorder()}
	f.mu.Lock()
	f.seq++
	q.data = RequestRecord{
		ID:      f.seq,
		TraceID: traceID,
		Query:   truncate(query, maxRecordedText),
		Start:   time.Now(),
		Active:  true,
	}
	f.active[q.data.ID] = q
	f.mu.Unlock()
	return q
}

func (f *FlightRecorder) finish(q *Request, data RequestRecord, trace *Trace) {
	if f == nil {
		return
	}
	f.mu.Lock()
	delete(f.active, data.ID)
	f.ring = append(f.ring, flightEntry{data: data, trace: trace})
	if over := len(f.ring) - f.size; over > 0 {
		f.ring = append(f.ring[:0:0], f.ring[over:]...)
	}
	slow, logger := f.slow, f.logger
	f.mu.Unlock()
	if slow > 0 && data.Wall >= slow {
		if logger == nil {
			logger = slog.Default()
		}
		logger.Warn("slow query",
			"trace_id", data.TraceID,
			"wall", data.Wall,
			"threshold", slow,
			"outcome", data.Outcome,
			"query", data.Query)
	}
}

// Filter restricts Snapshot output; set fields are conjunctive. Slow
// matches completed or in-flight requests at or past the slow threshold,
// Errored matches completed requests whose outcome is not "ok", Active
// matches in-flight requests, Shed matches requests the admission
// controller turned away (outcome "shed").
type Filter struct {
	Slow    bool
	Errored bool
	Active  bool
	Shed    bool
}

func (ft Filter) match(r RequestRecord, slow time.Duration) bool {
	if ft.Slow && (slow <= 0 || r.Wall < slow) {
		return false
	}
	if ft.Errored && (r.Active || r.Outcome == "ok") {
		return false
	}
	if ft.Active && !r.Active {
		return false
	}
	if ft.Shed && r.Outcome != "shed" {
		return false
	}
	return true
}

// Snapshot returns copies of matching records, newest first, in-flight
// requests ahead of completed ones.
func (f *FlightRecorder) Snapshot(ft Filter) []RequestRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	slow := f.slow
	live := make([]*Request, 0, len(f.active))
	for _, q := range f.active {
		live = append(live, q)
	}
	done := make([]RequestRecord, 0, len(f.ring))
	for i := len(f.ring) - 1; i >= 0; i-- {
		done = append(done, f.ring[i].data)
	}
	f.mu.Unlock()

	out := make([]RequestRecord, 0, len(live)+len(done))
	for _, q := range live {
		out = append(out, q.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	out = append(out, done...)

	kept := out[:0]
	for _, r := range out {
		if ft.match(r, slow) {
			kept = append(kept, r)
		}
	}
	return kept
}

// Trace returns the span trace recorded for traceID (in-flight or in the
// ring), or nil.
func (f *FlightRecorder) Trace(traceID string) *Trace {
	if f == nil || traceID == "" {
		return nil
	}
	f.mu.Lock()
	live := make([]*Request, 0, len(f.active))
	for _, q := range f.active {
		live = append(live, q)
	}
	var fromRing *Trace
	for i := len(f.ring) - 1; i >= 0; i-- {
		if f.ring[i].data.TraceID == traceID && f.ring[i].trace != nil {
			fromRing = f.ring[i].trace
			break
		}
	}
	f.mu.Unlock()
	for _, q := range live {
		q.mu.Lock()
		tr, id := q.trace, q.data.TraceID
		q.mu.Unlock()
		if id == traceID && tr != nil {
			return tr
		}
	}
	return fromRing
}

// Handler serves the flight recorder — mount it at /debug/requests.
//
//	GET /debug/requests                 JSON, newest first
//	GET /debug/requests?active=1        in-flight only
//	GET /debug/requests?errored=1       completed non-ok only
//	GET /debug/requests?slow=1          at/past the slow threshold only
//	GET /debug/requests?shed=1          shed by admission control only
//	GET /debug/requests?format=html     minimal HTML table (also via Accept)
//	GET /debug/requests?trace=<id>      one request's Chrome trace JSON
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		qp := r.URL.Query()
		if id := qp.Get("trace"); id != "" {
			tr := f.Trace(id)
			if tr == nil {
				http.Error(w, "no trace recorded for "+id, http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			tr.WriteJSON(w)
			return
		}
		ft := Filter{
			Slow:    isSet(qp.Get("slow")),
			Errored: isSet(qp.Get("errored")),
			Active:  isSet(qp.Get("active")),
			Shed:    isSet(qp.Get("shed")),
		}
		recs := f.Snapshot(ft)
		wantHTML := qp.Get("format") == "html" ||
			(qp.Get("format") == "" && strings.Contains(r.Header.Get("Accept"), "text/html"))
		if wantHTML {
			writeFlightHTML(w, recs, f.SlowThreshold())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(struct {
			SlowThresholdNS time.Duration   `json:"slow_threshold_ns"`
			Requests        []RequestRecord `json:"requests"`
		}{f.SlowThreshold(), recs})
	})
}

func isSet(v string) bool {
	return v != "" && v != "0" && v != "false"
}

func writeFlightHTML(w http.ResponseWriter, recs []RequestRecord, slow time.Duration) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var sb strings.Builder
	sb.WriteString("<!doctype html><title>v2v flight recorder</title>")
	sb.WriteString("<style>table{border-collapse:collapse;font:13px monospace}td,th{border:1px solid #999;padding:2px 6px;text-align:left}</style>")
	fmt.Fprintf(&sb, "<h1>flight recorder</h1><p>%d requests; slow threshold %s</p>", len(recs), slow)
	sb.WriteString("<table><tr><th>id</th><th>trace</th><th>tenant</th><th>start</th><th>wall</th><th>queued</th><th>cost</th><th>outcome</th><th>segments</th><th>decoded</th><th>encoded</th><th>copied</th><th>gop hit/miss</th><th>query</th></tr>")
	for _, r := range recs {
		outcome := r.Outcome
		if r.Active {
			outcome = "active"
		}
		if r.Outcome == "shed" && r.ShedReason != "" {
			outcome = "shed:" + r.ShedReason
		}
		dec := r.Stages["decode"]
		enc := r.Stages["encode"]
		cp := r.Stages["copy"]
		fmt.Fprintf(&sb, "<tr><td>%d</td><td><a href=\"?trace=%s\">%s</a></td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%.1f</td><td>%s</td><td>%d</td><td>%dfr</td><td>%dfr</td><td>%dpkt</td><td>%d/%d</td><td>%s</td></tr>",
			r.ID, html.EscapeString(r.TraceID), html.EscapeString(r.TraceID),
			html.EscapeString(r.Tenant),
			r.Start.Format(time.RFC3339), r.Wall.Round(time.Microsecond),
			r.QueuedWall.Round(time.Microsecond), r.CostUnits,
			html.EscapeString(outcome), len(r.Segments),
			dec.Frames, enc.Frames, cp.Frames,
			r.GOPCacheHits, r.GOPCacheMisses,
			html.EscapeString(truncate(r.Query, 120)))
	}
	sb.WriteString("</table>")
	fmt.Fprint(w, sb.String())
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
