package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric instruments and renders them in the
// Prometheus text exposition format. Instrument lookups lock the registry;
// updates on the returned instruments are lock-free atomics, so hot paths
// should hold on to their instruments.
//
// A metric name may carry constant labels in the usual syntax, e.g.
// `v2v_http_errors_total{class="4xx"}`. Metrics sharing the name before
// the brace form one family and share HELP/TYPE lines.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // family -> help text
	kind       map[string]string // family -> counter|gauge|histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
		kind:       map[string]string{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// family splits a metric name into its family (the part before any label
// braces) and its label content (without braces, "" if unlabelled).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

func (r *Registry) register(name, help, kind string) {
	fam, _ := family(name)
	if have, ok := r.kind[fam]; ok && have != kind {
		panic(fmt.Sprintf("obs: metric family %q registered as both %s and %s", fam, have, kind))
	}
	r.kind[fam] = kind
	if r.help[fam] == "" {
		r.help[fam] = help
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ n atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d (negative deltas are ignored; counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.n.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.register(name, help, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.register(name, help, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram is a fixed-bucket distribution metric. Buckets are upper
// bounds (exclusive of +Inf, which is implicit).
type Histogram struct {
	upper  []float64
	counts []atomic.Int64 // len(upper)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBuckets returns the default upper bounds (in seconds) used for
// wall-time and first-output-latency histograms.
func LatencyBuckets() []float64 {
	return []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}
}

// Histogram returns (registering on first use) the named histogram. The
// bucket bounds must be sorted ascending; they are ignored when the
// histogram already exists.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not sorted", name))
	}
	r.register(name, help, "histogram")
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
	}
	r.histograms[name] = h
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type entry struct {
		name, labels string
		c            *Counter
		g            *Gauge
		h            *Histogram
	}
	families := map[string][]entry{}
	add := func(name string, e entry) {
		fam, labels := family(name)
		e.name, e.labels = fam, labels
		families[fam] = append(families[fam], e)
	}
	for name, c := range r.counters {
		add(name, entry{c: c})
	}
	for name, g := range r.gauges {
		add(name, entry{g: g})
	}
	for name, h := range r.histograms {
		add(name, entry{h: h})
	}
	help := make(map[string]string, len(r.help))
	kind := make(map[string]string, len(r.kind))
	for k, v := range r.help {
		help[k] = v
	}
	for k, v := range r.kind {
		kind[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(families))
	for fam := range families {
		names = append(names, fam)
	}
	sort.Strings(names)

	var sb strings.Builder
	for _, fam := range names {
		entries := families[fam]
		sort.Slice(entries, func(i, j int) bool { return entries[i].labels < entries[j].labels })
		if h := help[fam]; h != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", fam, escapeHelp(h))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", fam, kind[fam])
		for _, e := range entries {
			switch {
			case e.c != nil:
				fmt.Fprintf(&sb, "%s %d\n", metricName(e.name, e.labels, ""), e.c.Value())
			case e.g != nil:
				fmt.Fprintf(&sb, "%s %s\n", metricName(e.name, e.labels, ""), formatFloat(e.g.Value()))
			case e.h != nil:
				var cum int64
				for i, ub := range e.h.upper {
					cum += e.h.counts[i].Load()
					fmt.Fprintf(&sb, "%s %d\n",
						metricName(e.name+"_bucket", e.labels, `le="`+formatFloat(ub)+`"`), cum)
				}
				cum += e.h.counts[len(e.h.upper)].Load()
				fmt.Fprintf(&sb, "%s %d\n", metricName(e.name+"_bucket", e.labels, `le="+Inf"`), cum)
				fmt.Fprintf(&sb, "%s %s\n", metricName(e.name+"_sum", e.labels, ""), formatFloat(e.h.Sum()))
				fmt.Fprintf(&sb, "%s %d\n", metricName(e.name+"_count", e.labels, ""), e.h.Count())
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// metricName joins a base name with existing constant labels and an extra
// label (for histogram le buckets).
func metricName(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
