package frame

import (
	"fmt"
	"sync"
	"sync/atomic"

	"v2v/internal/obs"
)

// Pool recycles frame buffers between pipeline stages so the steady-state
// render loop (decode -> filter -> encode) performs ~0 heap allocations per
// frame. Buffers are bucketed by exact byte size and backed by sync.Pool,
// so unused buffers are reclaimed under GC pressure rather than pinned.
//
// Ownership protocol:
//
//   - Get returns a frame with refcount 1 owned by the caller. The pixel
//     buffer contents are UNSPECIFIED (stale data from a previous user) —
//     the caller must overwrite every byte before the frame escapes.
//   - Retain adds a reference; each holder must eventually call Release.
//   - Release drops a reference; the final Release poisons Pix (nil) and
//     recycles the buffer. Releasing past zero panics (double release).
//   - Both Retain and Release are no-ops on frames that did not come from
//     a pool (frame.New, Clone, decoded cache entries without a pool), so
//     callers can apply the release discipline unconditionally.
//
// A frame must never be recycled while any holder can still read it: code
// that stores frames in shared caches Retains them on insert and Releases
// on evict, keeping refs >= 1 for the cache's lifetime.
type Pool struct {
	buckets sync.Map // byte size -> *sync.Pool of *Frame
}

// Pool instruments are process-wide (shared across Pool instances): the
// interesting signal is aggregate churn avoided, not per-pool breakdown.
var (
	poolGets = obs.Default().Counter("v2v_frame_pool_gets_total",
		"Frames handed out by frame pools.")
	poolRecycled = obs.Default().Counter("v2v_frame_pool_recycled_total",
		"Pool gets served from a recycled buffer (no allocation).")
	poolReleases = obs.Default().Counter("v2v_frame_pool_releases_total",
		"Final releases returning a frame buffer to its pool.")
	poolLive = obs.Default().Gauge("v2v_frame_pool_live_frames",
		"Pooled frames currently checked out (refs > 0).")
)

// NewPool returns an empty frame pool.
func NewPool() *Pool { return &Pool{} }

// defaultPool serves callers that have no per-pipeline pool wired through;
// sharing one pool maximizes buffer reuse across segments.
var defaultPool = NewPool()

// DefaultPool returns the process-wide shared frame pool.
func DefaultPool() *Pool { return defaultPool }

func (p *Pool) bucket(size int) *sync.Pool {
	if b, ok := p.buckets.Load(size); ok {
		return b.(*sync.Pool)
	}
	b, _ := p.buckets.LoadOrStore(size, &sync.Pool{})
	return b.(*sync.Pool)
}

// Get returns a w×h frame of format f with refcount 1. The pixel contents
// are unspecified — the caller must fully overwrite them. Dimension
// validation matches New.
//
//v2v:hotpath
func (p *Pool) Get(w, h int, f Format) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: invalid dimensions %dx%d", w, h)) //v2v:nolint(hotpath) cold panic path
	}
	if f == FormatYUV420 && (w%2 != 0 || h%2 != 0) {
		panic(fmt.Sprintf("frame: yuv420 dimensions must be even, got %dx%d", w, h)) //v2v:nolint(hotpath) cold panic path
	}
	size := f.Size(w, h)
	poolGets.Inc()
	poolLive.Add(1)
	if v := p.bucket(size).Get(); v != nil {
		fr := v.(*Frame)
		fr.W, fr.H, fr.Format = w, h, f
		fr.Pix = fr.buf[:size]
		atomic.StoreInt32(&fr.refs, 1)
		poolRecycled.Inc()
		return fr
	}
	fr := &Frame{W: w, H: h, Format: f, Pix: make([]byte, size)} //v2v:nolint(hotpath) cold miss path: first use of this size bucket; steady state recycles
	fr.buf = fr.Pix
	fr.pool = p
	fr.refs = 1
	return fr
}

// put recycles a frame whose refcount just hit zero. Pix is poisoned so a
// use-after-release fails fast (nil dereference) instead of silently
// reading recycled pixels.
//
//v2v:hotpath
func (p *Pool) put(fr *Frame) {
	poolReleases.Inc()
	poolLive.Add(-1)
	fr.Pix = nil
	p.bucket(len(fr.buf)).Put(fr)
}
