// Package frame defines the V2V frame data model: typed raster buffers at
// specific pixel formats, conversions between formats, similarity metrics,
// and a machine-readable frame-ID pattern used throughout the test suite to
// verify frame-exact editing.
//
// In the paper's data model a frame is "arbitrary data of a specific type";
// this package implements the standard planar video types the execution
// engine and codec operate on.
package frame

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Format identifies a pixel format.
type Format uint8

const (
	// FormatInvalid is the zero Format and never describes a real frame.
	FormatInvalid Format = iota
	// FormatYUV420 is planar YCbCr with 2x2 chroma subsampling (yuv420p).
	// This is the codec's native format. Width and height must be even.
	FormatYUV420
	// FormatRGB24 is packed 8-bit RGB, used by drawing and overlay ops.
	FormatRGB24
	// FormatGray8 is single-plane 8-bit luma.
	FormatGray8
)

// String returns the conventional short name of the format.
func (f Format) String() string {
	switch f {
	case FormatYUV420:
		return "yuv420p"
	case FormatRGB24:
		return "rgb24"
	case FormatGray8:
		return "gray8"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(f))
	}
}

// Size returns the number of bytes a w×h frame of this format occupies.
func (f Format) Size(w, h int) int {
	switch f {
	case FormatYUV420:
		return w*h + 2*((w/2)*(h/2))
	case FormatRGB24:
		return 3 * w * h
	case FormatGray8:
		return w * h
	default:
		return 0
	}
}

// Frame is a single raster image plus its presentation metadata. Pix holds
// the planes contiguously: for YUV420 the layout is Y (w*h), then Cb, then
// Cr (each (w/2)*(h/2)); for RGB24 it is interleaved RGBRGB...; for Gray8 a
// single plane.
type Frame struct {
	W, H   int
	Format Format
	Pix    []byte

	// Pooling state (see Pool). pool is nil for frames from New/Clone;
	// such frames are garbage-collected normally and Retain/Release are
	// no-ops on them. buf keeps the full-capacity buffer so Pix can be
	// poisoned on release and reattached on reuse. refs is manipulated
	// atomically.
	pool *Pool
	buf  []byte
	refs int32
}

// Pooled reports whether the frame came from a Pool (and therefore has
// live refcount semantics).
func (fr *Frame) Pooled() bool { return fr != nil && fr.pool != nil }

// Retain adds a reference to a pooled frame; each holder must eventually
// call Release. No-op on unpooled frames. Returns fr for chaining.
//
//v2v:hotpath
func (fr *Frame) Retain() *Frame {
	if fr != nil && fr.pool != nil {
		atomic.AddInt32(&fr.refs, 1)
	}
	return fr
}

// Release drops one reference; the final release returns the buffer to its
// pool and poisons Pix. Releasing more times than retained panics. No-op
// on nil or unpooled frames, so callers can release unconditionally.
//
//v2v:hotpath
func (fr *Frame) Release() {
	if fr == nil || fr.pool == nil {
		return
	}
	n := atomic.AddInt32(&fr.refs, -1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("frame: Release of already-released frame (double release)") //v2v:nolint(hotpath) cold panic path
	}
	fr.pool.put(fr)
}

// New allocates a zeroed frame. For YUV420 a zero buffer is green-ish;
// callers that want black should use Fill.
func New(w, h int, f Format) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: invalid dimensions %dx%d", w, h))
	}
	if f == FormatYUV420 && (w%2 != 0 || h%2 != 0) {
		panic(fmt.Sprintf("frame: yuv420 dimensions must be even, got %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Format: f, Pix: make([]byte, f.Size(w, h))}
}

// Clone returns a deep copy of the frame.
func (fr *Frame) Clone() *Frame {
	out := &Frame{W: fr.W, H: fr.H, Format: fr.Format, Pix: make([]byte, len(fr.Pix))}
	copy(out.Pix, fr.Pix)
	return out
}

// SameShape reports whether two frames have identical dimensions and format.
func (fr *Frame) SameShape(o *Frame) bool {
	return fr.W == o.W && fr.H == o.H && fr.Format == o.Format
}

// Planes returns the per-plane slices of the frame. YUV420 yields [Y,Cb,Cr];
// RGB24 and Gray8 yield a single plane.
func (fr *Frame) Planes() [][]byte {
	switch fr.Format {
	case FormatYUV420:
		ys := fr.W * fr.H
		cs := (fr.W / 2) * (fr.H / 2)
		return [][]byte{fr.Pix[:ys], fr.Pix[ys : ys+cs], fr.Pix[ys+cs : ys+2*cs]}
	default:
		return [][]byte{fr.Pix}
	}
}

// PlaneDims returns the dimensions of plane i.
func (fr *Frame) PlaneDims(i int) (w, h int) {
	if fr.Format == FormatYUV420 && i > 0 {
		return fr.W / 2, fr.H / 2
	}
	if fr.Format == FormatRGB24 {
		return fr.W * 3, fr.H // treat packed rows as 3w bytes wide
	}
	return fr.W, fr.H
}

// Fill sets every pixel to the given YUV (for YUV420/Gray8) or to the RGB
// conversion of that YUV triple (for RGB24).
func (fr *Frame) Fill(y, cb, cr byte) {
	switch fr.Format {
	case FormatYUV420:
		p := fr.Planes()
		for i := range p[0] {
			p[0][i] = y
		}
		for i := range p[1] {
			p[1][i] = cb
		}
		for i := range p[2] {
			p[2][i] = cr
		}
	case FormatGray8:
		for i := range fr.Pix {
			fr.Pix[i] = y
		}
	case FormatRGB24:
		r, g, b := YUVToRGB(y, cb, cr)
		for i := 0; i < len(fr.Pix); i += 3 {
			fr.Pix[i], fr.Pix[i+1], fr.Pix[i+2] = r, g, b
		}
	}
}

// Luma returns the luma byte at (x, y) for any format.
func (fr *Frame) Luma(x, y int) byte {
	switch fr.Format {
	case FormatYUV420, FormatGray8:
		return fr.Pix[y*fr.W+x]
	case FormatRGB24:
		i := (y*fr.W + x) * 3
		yy, _, _ := RGBToYUV(fr.Pix[i], fr.Pix[i+1], fr.Pix[i+2])
		return yy
	}
	return 0
}

// SetLuma writes the luma byte at (x, y). For RGB24 it writes a gray pixel.
func (fr *Frame) SetLuma(x, y int, v byte) {
	switch fr.Format {
	case FormatYUV420, FormatGray8:
		fr.Pix[y*fr.W+x] = v
	case FormatRGB24:
		i := (y*fr.W + x) * 3
		fr.Pix[i], fr.Pix[i+1], fr.Pix[i+2] = v, v, v
	}
}

// YUVToRGB converts one BT.601 full-range YCbCr triple to RGB.
func YUVToRGB(y, cb, cr byte) (r, g, b byte) {
	yf := float64(y)
	cbf := float64(cb) - 128
	crf := float64(cr) - 128
	return clamp8(yf + 1.402*crf), clamp8(yf - 0.344136*cbf - 0.714136*crf), clamp8(yf + 1.772*cbf)
}

// RGBToYUV converts one RGB triple to BT.601 full-range YCbCr.
func RGBToYUV(r, g, b byte) (y, cb, cr byte) {
	rf, gf, bf := float64(r), float64(g), float64(b)
	return clamp8(0.299*rf + 0.587*gf + 0.114*bf),
		clamp8(128 - 0.168736*rf - 0.331264*gf + 0.5*bf),
		clamp8(128 + 0.5*rf - 0.418688*gf - 0.081312*bf)
}

func clamp8(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return byte(v + 0.5)
}

// Convert returns the frame converted to the target format. Converting to
// the same format returns a clone. YUV420 conversions require even
// dimensions (guaranteed for frames produced by New).
func (fr *Frame) Convert(to Format) *Frame {
	if fr.Format == to {
		return fr.Clone()
	}
	out := New(fr.W, fr.H, to)
	switch {
	case fr.Format == FormatYUV420 && to == FormatRGB24:
		p := fr.Planes()
		cw := fr.W / 2
		for y := 0; y < fr.H; y++ {
			for x := 0; x < fr.W; x++ {
				ci := (y/2)*cw + x/2
				r, g, b := YUVToRGB(p[0][y*fr.W+x], p[1][ci], p[2][ci])
				i := (y*fr.W + x) * 3
				out.Pix[i], out.Pix[i+1], out.Pix[i+2] = r, g, b
			}
		}
	case fr.Format == FormatRGB24 && to == FormatYUV420:
		p := out.Planes()
		cw := fr.W / 2
		// Luma per pixel; chroma averaged over each 2x2 block.
		for y := 0; y < fr.H; y++ {
			for x := 0; x < fr.W; x++ {
				i := (y*fr.W + x) * 3
				yy, _, _ := RGBToYUV(fr.Pix[i], fr.Pix[i+1], fr.Pix[i+2])
				p[0][y*fr.W+x] = yy
			}
		}
		for by := 0; by < fr.H/2; by++ {
			for bx := 0; bx < cw; bx++ {
				var sumCb, sumCr int
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						i := ((by*2+dy)*fr.W + bx*2 + dx) * 3
						_, cb, cr := RGBToYUV(fr.Pix[i], fr.Pix[i+1], fr.Pix[i+2])
						sumCb += int(cb)
						sumCr += int(cr)
					}
				}
				p[1][by*cw+bx] = byte(sumCb / 4)
				p[2][by*cw+bx] = byte(sumCr / 4)
			}
		}
	case fr.Format == FormatYUV420 && to == FormatGray8:
		copy(out.Pix, fr.Planes()[0])
	case fr.Format == FormatGray8 && to == FormatYUV420:
		p := out.Planes()
		copy(p[0], fr.Pix)
		for i := range p[1] {
			p[1][i] = 128
			p[2][i] = 128
		}
	case fr.Format == FormatGray8 && to == FormatRGB24:
		for i, v := range fr.Pix {
			out.Pix[i*3], out.Pix[i*3+1], out.Pix[i*3+2] = v, v, v
		}
	case fr.Format == FormatRGB24 && to == FormatGray8:
		for i := 0; i < fr.W*fr.H; i++ {
			y, _, _ := RGBToYUV(fr.Pix[i*3], fr.Pix[i*3+1], fr.Pix[i*3+2])
			out.Pix[i] = y
		}
	default:
		panic(fmt.Sprintf("frame: unsupported conversion %v -> %v", fr.Format, to))
	}
	return out
}

// Equal reports whether two frames are byte-identical.
func (fr *Frame) Equal(o *Frame) bool {
	if !fr.SameShape(o) {
		return false
	}
	for i := range fr.Pix {
		if fr.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// PSNR returns the peak signal-to-noise ratio between two same-shape
// frames, in dB. Identical frames return +Inf.
func PSNR(a, b *Frame) float64 {
	if !a.SameShape(b) {
		return 0
	}
	var sum float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		sum += d * d
	}
	if sum == 0 {
		return math.Inf(1)
	}
	mse := sum / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse)
}
