package frame

import (
	"sync"
	"testing"
)

func TestPoolGetReleaseRecycles(t *testing.T) {
	p := NewPool()
	fr := p.Get(32, 16, FormatYUV420)
	if !fr.Pooled() {
		t.Fatal("Get returned unpooled frame")
	}
	if len(fr.Pix) != FormatYUV420.Size(32, 16) {
		t.Fatalf("Pix size = %d, want %d", len(fr.Pix), FormatYUV420.Size(32, 16))
	}
	fr.Pix[0] = 0xAB
	fr.Release()
	if fr.Pix != nil {
		t.Fatal("Pix not poisoned after final release")
	}
	// The next Get of the same size should hand back the recycled buffer
	// with stale contents reattached. (sync.Pool may drop it under GC, so
	// only the invariants — not the identity — are asserted.)
	fr2 := p.Get(32, 16, FormatYUV420)
	if fr2.Pix == nil || len(fr2.Pix) != FormatYUV420.Size(32, 16) {
		t.Fatalf("recycled frame has bad Pix (len %d)", len(fr2.Pix))
	}
	fr2.Release()
}

func TestPoolRetainDefersRecycle(t *testing.T) {
	p := NewPool()
	fr := p.Get(8, 8, FormatGray8)
	fr.Retain()
	fr.Release()
	if fr.Pix == nil {
		t.Fatal("frame recycled while a retained reference was live")
	}
	fr.Release()
	if fr.Pix != nil {
		t.Fatal("frame not recycled after final release")
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	fr := p.Get(8, 8, FormatGray8)
	fr.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	fr.Release()
}

func TestUnpooledRetainReleaseNoops(t *testing.T) {
	fr := New(8, 8, FormatGray8)
	if fr.Pooled() {
		t.Fatal("New frame reports pooled")
	}
	fr.Retain()
	fr.Release()
	fr.Release() // must not panic on unpooled frames
	if fr.Pix == nil {
		t.Fatal("unpooled frame was poisoned")
	}
	var nilFr *Frame
	nilFr.Release() // nil-safe
}

func TestCloneOfPooledFrameIsUnpooled(t *testing.T) {
	p := NewPool()
	fr := p.Get(8, 8, FormatGray8)
	cl := fr.Clone()
	if cl.Pooled() {
		t.Fatal("Clone of pooled frame reports pooled")
	}
	fr.Release()
	if cl.Pix == nil {
		t.Fatal("clone shares buffer with released frame")
	}
}

// TestPoolConcurrentHammer exercises Get/Retain/Release from many
// goroutines under -race: recycling must never hand one buffer to two
// concurrent holders.
func TestPoolConcurrentHammer(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fr := p.Get(16, 16, FormatYUV420)
				mark := byte(g)
				for j := range fr.Pix {
					fr.Pix[j] = mark
				}
				fr.Retain()
				for j := range fr.Pix {
					if fr.Pix[j] != mark {
						t.Errorf("buffer shared across holders: got %d want %d", fr.Pix[j], mark)
						break
					}
				}
				fr.Release()
				fr.Release()
			}
		}(g)
	}
	wg.Wait()
}

func TestPoolAllocsPerRunSteadyState(t *testing.T) {
	p := NewPool()
	// Warm the bucket.
	p.Get(64, 64, FormatYUV420).Release()
	allocs := testing.AllocsPerRun(200, func() {
		fr := p.Get(64, 64, FormatYUV420)
		fr.Release()
	})
	// GC can steal pool contents mid-run, so allow a stray allocation
	// rather than asserting exactly zero.
	if allocs >= 1 {
		t.Fatalf("pool Get/Release allocates %.1f allocs/op, want ~0", allocs)
	}
}
