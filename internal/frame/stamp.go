package frame

// Frame-ID stamping. Synthetic dataset frames carry a machine-readable
// 32-bit ID pattern in their top-left corner: 32 square cells, each drawn
// solid black (bit 0) or solid white (bit 1) in the luma plane, plus two
// guard cells (always white, then black) so a stamp can be detected. The
// pattern survives lossy quantization and lets integration tests assert
// that an edited output names exactly the expected source frames — the
// same trick the paper used by preprocessing ToS "to overlay frame
// information to verify each operation was frame-exact".

// StampCell is the side length in pixels of one stamp cell.
const StampCell = 4

// stampBits is the number of payload bits in a stamp.
const stampBits = 32

// StampWidth returns the pixel width consumed by a stamp (payload + 2 guard
// cells).
func StampWidth() int { return (stampBits + 2) * StampCell }

// StampHeight returns the pixel height consumed by a stamp.
func StampHeight() int { return StampCell }

// Stamp burns id into the frame's top-left corner. The frame must be at
// least StampWidth()×StampHeight() pixels; smaller frames are left
// untouched (detectable via ReadStamp's ok=false).
func Stamp(fr *Frame, id uint32) {
	if fr.W < StampWidth() || fr.H < StampHeight() {
		return
	}
	// Guard cells: white then black.
	fillCell(fr, 0, 255)
	fillCell(fr, 1, 0)
	for bit := 0; bit < stampBits; bit++ {
		v := byte(0)
		if id&(1<<uint(bit)) != 0 {
			v = 255
		}
		fillCell(fr, 2+bit, v)
	}
	// Neutralize chroma under the stamp so color ops don't disturb reads.
	if fr.Format == FormatYUV420 {
		p := fr.Planes()
		cw := fr.W / 2
		for y := 0; y < (StampCell+1)/2; y++ {
			for x := 0; x < (StampWidth()+1)/2; x++ {
				p[1][y*cw+x] = 128
				p[2][y*cw+x] = 128
			}
		}
	}
}

func fillCell(fr *Frame, cell int, v byte) {
	x0 := cell * StampCell
	for y := 0; y < StampCell; y++ {
		for x := x0; x < x0+StampCell; x++ {
			fr.SetLuma(x, y, v)
		}
	}
}

// ReadStamp recovers the frame ID from a stamped frame. It reads the center
// of each cell and thresholds at 128, validating the guard cells first. ok
// is false if the frame is too small or the guards don't match (e.g. the
// frame was rescaled or composited such that the stamp moved).
func ReadStamp(fr *Frame) (id uint32, ok bool) {
	if fr.W < StampWidth() || fr.H < StampHeight() {
		return 0, false
	}
	if !cellIs(fr, 0, true) || !cellIs(fr, 1, false) {
		return 0, false
	}
	for bit := 0; bit < stampBits; bit++ {
		if cellIs(fr, 2+bit, true) {
			id |= 1 << uint(bit)
		}
	}
	return id, true
}

func cellIs(fr *Frame, cell int, white bool) bool {
	v := cellLuma(fr, cell)
	if white {
		return v >= 128
	}
	return v < 128
}

func cellLuma(fr *Frame, cell int) int {
	// Average the 2x2 center of the cell for robustness.
	cx := cell*StampCell + StampCell/2
	cy := StampCell / 2
	sum := 0
	for dy := -1; dy <= 0; dy++ {
		for dx := -1; dx <= 0; dx++ {
			sum += int(fr.Luma(cx+dx, cy+dy))
		}
	}
	return sum / 4
}
