package frame

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFormatSize(t *testing.T) {
	cases := []struct {
		f    Format
		w, h int
		want int
	}{
		{FormatYUV420, 16, 8, 16*8 + 2*8*4},
		{FormatRGB24, 10, 10, 300},
		{FormatGray8, 10, 10, 100},
		{FormatInvalid, 10, 10, 0},
	}
	for _, c := range cases {
		if got := c.f.Size(c.w, c.h); got != c.want {
			t.Errorf("%v.Size(%d,%d) = %d, want %d", c.f, c.w, c.h, got, c.want)
		}
	}
}

func TestFormatString(t *testing.T) {
	if FormatYUV420.String() != "yuv420p" || FormatRGB24.String() != "rgb24" || FormatGray8.String() != "gray8" {
		t.Error("format names wrong")
	}
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 10, FormatGray8) },
		func() { New(10, -1, FormatGray8) },
		func() { New(15, 10, FormatYUV420) },
		func() { New(10, 15, FormatYUV420) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	fr := New(16, 8, FormatYUV420)
	if len(fr.Pix) != FormatYUV420.Size(16, 8) {
		t.Errorf("pix len = %d", len(fr.Pix))
	}
}

func TestPlanes(t *testing.T) {
	fr := New(8, 4, FormatYUV420)
	p := fr.Planes()
	if len(p) != 3 || len(p[0]) != 32 || len(p[1]) != 8 || len(p[2]) != 8 {
		t.Fatalf("planes = %d/%d/%d", len(p[0]), len(p[1]), len(p[2]))
	}
	p[1][0] = 99
	if fr.Pix[32] != 99 {
		t.Error("planes should alias Pix")
	}
	g := New(8, 4, FormatGray8)
	if len(g.Planes()) != 1 {
		t.Error("gray should have one plane")
	}
}

func TestFillAndLuma(t *testing.T) {
	fr := New(8, 4, FormatYUV420)
	fr.Fill(100, 110, 120)
	if fr.Luma(3, 2) != 100 {
		t.Errorf("luma = %d", fr.Luma(3, 2))
	}
	p := fr.Planes()
	if p[1][0] != 110 || p[2][0] != 120 {
		t.Error("chroma fill wrong")
	}
	fr.SetLuma(3, 2, 55)
	if fr.Luma(3, 2) != 55 {
		t.Error("SetLuma failed")
	}

	rgb := New(4, 4, FormatRGB24)
	rgb.Fill(255, 128, 128) // white
	if rgb.Pix[0] != 255 || rgb.Pix[1] != 255 || rgb.Pix[2] != 255 {
		t.Errorf("white fill = %v", rgb.Pix[:3])
	}
	rgb.SetLuma(0, 0, 7)
	if rgb.Pix[0] != 7 || rgb.Luma(0, 0) != 7 {
		t.Error("rgb SetLuma/Luma inconsistent")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(4, 4, FormatGray8)
	a.Fill(10, 0, 0)
	b := a.Clone()
	b.Pix[0] = 99
	if a.Pix[0] != 10 {
		t.Error("clone shares storage")
	}
	if !a.SameShape(b) {
		t.Error("clone shape differs")
	}
}

func TestColorConversionRoundTrip(t *testing.T) {
	// Primary colors should round-trip RGB->YUV->RGB within small error.
	colors := [][3]byte{{255, 0, 0}, {0, 255, 0}, {0, 0, 255}, {255, 255, 255}, {0, 0, 0}, {128, 64, 200}}
	for _, c := range colors {
		y, cb, cr := RGBToYUV(c[0], c[1], c[2])
		r, g, b := YUVToRGB(y, cb, cr)
		for i, got := range []byte{r, g, b} {
			if d := int(got) - int(c[i]); d < -3 || d > 3 {
				t.Errorf("roundtrip %v -> %v,%v,%v -> %d,%d,%d", c, y, cb, cr, r, g, b)
				break
			}
		}
	}
}

func TestConvertYUVRGBRoundTrip(t *testing.T) {
	src := New(16, 8, FormatYUV420)
	rnd := rand.New(rand.NewSource(1))
	// Smooth-ish content: chroma subsampling loses detail on noise, so use
	// flat 2x2 blocks which survive exactly-ish.
	p := src.Planes()
	for i := range p[0] {
		p[0][i] = byte(rnd.Intn(200) + 20)
	}
	for i := range p[1] {
		p[1][i] = byte(rnd.Intn(100) + 78)
		p[2][i] = byte(rnd.Intn(100) + 78)
	}
	back := src.Convert(FormatRGB24).Convert(FormatYUV420)
	if got := PSNR(src, back); got < 40 {
		t.Errorf("YUV->RGB->YUV PSNR = %.1f dB, want >= 40", got)
	}
}

func TestConvertGray(t *testing.T) {
	src := New(8, 8, FormatGray8)
	for i := range src.Pix {
		src.Pix[i] = byte(i * 3)
	}
	y := src.Convert(FormatYUV420)
	if !y.Convert(FormatGray8).Equal(src) {
		t.Error("gray->yuv->gray not exact")
	}
	r := src.Convert(FormatRGB24)
	if r.Pix[3] != src.Pix[1] || r.Pix[4] != src.Pix[1] {
		t.Error("gray->rgb wrong")
	}
	if got := r.Convert(FormatGray8); PSNR(got, src) < 50 {
		t.Error("rgb->gray lossy beyond rounding")
	}
}

func TestConvertSameFormatClones(t *testing.T) {
	a := New(4, 4, FormatGray8)
	b := a.Convert(FormatGray8)
	b.Pix[0] = 1
	if a.Pix[0] == 1 {
		t.Error("Convert(same) should clone")
	}
}

func TestPSNR(t *testing.T) {
	a := New(8, 8, FormatGray8)
	b := a.Clone()
	if !math.IsInf(PSNR(a, b), 1) {
		t.Error("identical frames should be +Inf")
	}
	b.Pix[0] = 255
	v := PSNR(a, b)
	if v <= 0 || math.IsInf(v, 1) {
		t.Errorf("PSNR = %f", v)
	}
	c := New(4, 4, FormatGray8)
	if PSNR(a, c) != 0 {
		t.Error("shape mismatch should be 0")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	a := New(8, 8, FormatGray8)
	b := New(8, 8, FormatYUV420)
	if a.Equal(b) {
		t.Error("different formats should not be equal")
	}
}

func TestStampRoundTrip(t *testing.T) {
	for _, format := range []Format{FormatYUV420, FormatGray8, FormatRGB24} {
		fr := New(160, 32, format)
		fr.Fill(60, 128, 128)
		for _, id := range []uint32{0, 1, 0xDEADBEEF, 0xFFFFFFFF, 12345} {
			Stamp(fr, id)
			got, ok := ReadStamp(fr)
			if !ok || got != id {
				t.Errorf("%v: ReadStamp = %d,%v, want %d", format, got, ok, id)
			}
		}
	}
}

func TestStampPropertyRoundTrip(t *testing.T) {
	fr := New(160, 16, FormatYUV420)
	if err := quick.Check(func(id uint32) bool {
		Stamp(fr, id)
		got, ok := ReadStamp(fr)
		return ok && got == id
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStampTooSmall(t *testing.T) {
	fr := New(16, 16, FormatGray8)
	Stamp(fr, 42) // no-op
	if _, ok := ReadStamp(fr); ok {
		t.Error("tiny frame should not carry a stamp")
	}
}

func TestStampGuardRejection(t *testing.T) {
	fr := New(160, 16, FormatGray8)
	fr.Fill(0, 0, 0) // all-black: guard cell 0 (expected white) fails
	if _, ok := ReadStamp(fr); ok {
		t.Error("unstamped frame read as stamped")
	}
}

func TestStampSurvivesMildNoise(t *testing.T) {
	fr := New(160, 16, FormatYUV420)
	fr.Fill(60, 128, 128)
	Stamp(fr, 0xCAFEBABE)
	rnd := rand.New(rand.NewSource(7))
	for i := range fr.Pix {
		d := rnd.Intn(31) - 15
		v := int(fr.Pix[i]) + d
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		fr.Pix[i] = byte(v)
	}
	got, ok := ReadStamp(fr)
	if !ok || got != 0xCAFEBABE {
		t.Errorf("noisy ReadStamp = %x,%v", got, ok)
	}
}
