package raster

import (
	"fmt"

	"v2v/internal/frame"
)

// Grid2x2 composes four frames into quadrants of a single output frame of
// the same size as the first input. Inputs may have different sizes; each
// is scaled to the quadrant size. This implements the paper's
// Grid(Frame, Frame, Frame, Frame) transform (benchmark Q3/Q8).
func Grid2x2(tl, tr, bl, br *frame.Frame) *frame.Frame {
	out := frame.New(tl.W, tl.H, frame.FormatYUV420)
	qw, qh := even(tl.W/2), even(tl.H/2)
	blit(out, Scale(tl, qw, qh), 0, 0)
	blit(out, Scale(tr, qw, qh), qw, 0)
	blit(out, Scale(bl, qw, qh), 0, qh)
	blit(out, Scale(br, qw, qh), qw, qh)
	return out
}

// GridN composes n frames into a near-square grid (rows×cols) sized like
// the first input. Empty cells are black.
func GridN(frames []*frame.Frame) *frame.Frame {
	if len(frames) == 0 {
		panic("raster: GridN needs at least one frame")
	}
	cols := 1
	for cols*cols < len(frames) {
		cols++
	}
	rows := (len(frames) + cols - 1) / cols
	base := frames[0]
	out := frame.New(base.W, base.H, frame.FormatYUV420)
	out.Fill(16, 128, 128)
	cw, ch := even(base.W/cols), even(base.H/rows)
	for i, fr := range frames {
		r, c := i/cols, i%cols
		blit(out, Scale(fr, cw, ch), c*cw, r*ch)
	}
	return out
}

// blit copies src into dst at (x, y); x and y must be even. The caller
// guarantees src fits.
func blit(dst, src *frame.Frame, x, y int) {
	if x%2 != 0 || y%2 != 0 {
		panic(fmt.Sprintf("raster: blit offset %d,%d must be even", x, y))
	}
	dp, sp := dst.Planes(), src.Planes()
	for row := 0; row < src.H; row++ {
		copy(dp[0][(y+row)*dst.W+x:], sp[0][row*src.W:(row+1)*src.W])
	}
	dcw, scw := dst.W/2, src.W/2
	for row := 0; row < src.H/2; row++ {
		copy(dp[1][(y/2+row)*dcw+x/2:], sp[1][row*scw:(row+1)*scw])
		copy(dp[2][(y/2+row)*dcw+x/2:], sp[2][row*scw:(row+1)*scw])
	}
}

// HStack places a and b side by side, each scaled to half the output
// width; the output has a's dimensions.
func HStack(a, b *frame.Frame) *frame.Frame {
	out := frame.New(a.W, a.H, frame.FormatYUV420)
	hw := even(a.W / 2)
	blit(out, Scale(a, hw, a.H), 0, 0)
	blit(out, Scale(b, hw, a.H), hw, 0)
	return out
}

// VStack places a above b, each scaled to half the output height; the
// output has a's dimensions.
func VStack(a, b *frame.Frame) *frame.Frame {
	out := frame.New(a.W, a.H, frame.FormatYUV420)
	hh := even(a.H / 2)
	blit(out, Scale(a, a.W, hh), 0, 0)
	blit(out, Scale(b, a.W, hh), 0, hh)
	return out
}

// PiP composes inset as a picture-in-picture over base: inset is scaled to
// 1/scaleDiv of base's dimensions and blended opaquely at (x, y) with a
// 2-pixel border.
func PiP(base, inset *frame.Frame, x, y, scaleDiv int) *frame.Frame {
	if scaleDiv < 2 {
		scaleDiv = 2
	}
	w := even(base.W / scaleDiv)
	h := even(base.H / scaleDiv)
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	small := Scale(inset, w, h)
	out := base.Clone()
	DrawRect(out, Rect{X: x - 2, Y: y - 2, W: w + 4, H: h + 4}, 2, White)
	return Overlay(out, small, x, y, 255)
}

// Overlay alpha-blends image over base with its top-left corner at (x, y).
// alpha is 0..255 applied uniformly (the overlay image itself is opaque).
// Out-of-bounds parts are clipped. Implements Overlay(frame, image).
func Overlay(base, image *frame.Frame, x, y int, alpha int) *frame.Frame {
	mustYUV(base, "Overlay")
	img := image
	if img.Format != frame.FormatYUV420 {
		img = image.Convert(frame.FormatYUV420)
	}
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 255 {
		alpha = 255
	}
	dst := base.Clone()
	dp, ip := dst.Planes(), img.Planes()
	a := alpha
	for row := 0; row < img.H; row++ {
		dy := y + row
		if dy < 0 || dy >= dst.H {
			continue
		}
		for col := 0; col < img.W; col++ {
			dx := x + col
			if dx < 0 || dx >= dst.W {
				continue
			}
			di := dy*dst.W + dx
			si := row*img.W + col
			dp[0][di] = byte((int(ip[0][si])*a + int(dp[0][di])*(255-a) + 127) / 255)
		}
	}
	dcw, icw := dst.W/2, img.W/2
	for row := 0; row < img.H/2; row++ {
		dy := y/2 + row
		if dy < 0 || dy >= dst.H/2 {
			continue
		}
		for col := 0; col < icw; col++ {
			dx := x/2 + col
			if dx < 0 || dx >= dcw {
				continue
			}
			di := dy*dcw + dx
			si := row*icw + col
			dp[1][di] = byte((int(ip[1][si])*a + int(dp[1][di])*(255-a) + 127) / 255)
			dp[2][di] = byte((int(ip[2][si])*a + int(dp[2][di])*(255-a) + 127) / 255)
		}
	}
	return dst
}

// Crossfade blends a into b with mix t in [0,1]; t=0 returns a, t=1
// returns b. Frames must be same-shape. Used for animated transitions.
func Crossfade(a, b *frame.Frame, t float64) *frame.Frame {
	if !a.SameShape(b) {
		panic("raster: Crossfade frames must be same shape")
	}
	if t <= 0 {
		return a.Clone()
	}
	if t >= 1 {
		return b.Clone()
	}
	alpha := int(t*255 + 0.5)
	out := a.Clone()
	for i := range out.Pix {
		out.Pix[i] = byte((int(b.Pix[i])*alpha + int(a.Pix[i])*(255-alpha) + 127) / 255)
	}
	return out
}

// WipeLR reveals b over a left-to-right: columns left of t*W come from b.
func WipeLR(a, b *frame.Frame, t float64) *frame.Frame {
	if !a.SameShape(b) {
		panic("raster: WipeLR frames must be same shape")
	}
	if t <= 0 {
		return a.Clone()
	}
	if t >= 1 {
		return b.Clone()
	}
	cut := even(int(t * float64(a.W)))
	out := a.Clone()
	if cut == 0 {
		return out
	}
	op, bp := out.Planes(), b.Planes()
	for row := 0; row < a.H; row++ {
		copy(op[0][row*a.W:row*a.W+cut], bp[0][row*a.W:row*a.W+cut])
	}
	cw := a.W / 2
	for row := 0; row < a.H/2; row++ {
		copy(op[1][row*cw:row*cw+cut/2], bp[1][row*cw:row*cw+cut/2])
		copy(op[2][row*cw:row*cw+cut/2], bp[2][row*cw:row*cw+cut/2])
	}
	return out
}
