package raster

import (
	"fmt"

	"v2v/internal/frame"
)

// This file implements the fused per-pixel kernel form of the point
// operations (Grade, Crossfade, WipeLR, Overlay, FillRect). A chain of
// point ops normally costs one full pass over the YUV planes — and one
// fresh frame allocation — per op. ApplyFused makes ONE pass: each row is
// loaded once, every op is applied while the row is L1-resident, and the
// destination buffer is caller-provided (poolable).
//
// Correctness: every fusable op writes each output pixel as a function of
// the same-position input pixel (plus constant secondary frames), so
// applying ops row-by-row in order is byte-identical to applying them
// frame-by-frame in order. The kernels below replicate the standalone
// functions' arithmetic exactly — same integer rounding, same clipping,
// same traversal — which the equivalence tests enforce.

type opKind uint8

const (
	opGrade opKind = iota
	opCrossfade
	opWipe
	opOverlay
	opFillRect
)

const (
	modeBlend    uint8 = iota // apply the op's arithmetic
	modeIdentity              // op is a no-op at these parameters (t<=0)
	modeCopy                  // op replaces dst with its other frame (t>=1)
)

// PointOp is one fusable per-pixel operation, prepared for repeated
// application. Construct with GradeOp, CrossfadeOp, WipeOp, OverlayOp, or
// FillRectOp; apply chains with ApplyFused. A PointOp is immutable after
// construction and safe for concurrent use as long as its secondary frame
// (crossfade/wipe other, overlay image) is not mutated or released.
type PointOp struct {
	kind opKind
	mode uint8

	// Grade: per-plane lookup tables.
	lumaLUT, chromaLUT *[256]byte

	// Crossfade/Wipe second frame or Overlay image (always YUV420), with
	// its planes pre-split so row application allocates nothing.
	other       *frame.Frame
	otherPlanes [3][]byte

	alpha int     // crossfade blend weight or overlay alpha, 0..255
	t     float64 // wipe fraction (cut depends on dst width)
	x, y  int     // overlay offset
	rect  Rect    // fillrect
	color Color
}

// GradeOp returns the kernel form of Grade(src, brightness, contrast,
// saturation).
func GradeOp(brightness int, contrast, saturation float64) PointOp {
	var lumaLUT, chromaLUT [256]byte
	for i := 0; i < 256; i++ {
		v := (float64(i)-128)*contrast + 128 + float64(brightness)
		lumaLUT[i] = clampF(v)
		c := (float64(i)-128)*saturation + 128
		chromaLUT[i] = clampF(c)
	}
	return PointOp{kind: opGrade, lumaLUT: &lumaLUT, chromaLUT: &chromaLUT}
}

// CrossfadeOp returns the kernel form of Crossfade(src, b, t).
func CrossfadeOp(b *frame.Frame, t float64) PointOp {
	op := PointOp{kind: opCrossfade, other: b, otherPlanes: planes3(b)}
	switch {
	case t <= 0:
		op.mode = modeIdentity
	case t >= 1:
		op.mode = modeCopy
	default:
		op.alpha = int(t*255 + 0.5)
	}
	return op
}

// WipeOp returns the kernel form of WipeLR(src, b, t).
func WipeOp(b *frame.Frame, t float64) PointOp {
	op := PointOp{kind: opWipe, other: b, otherPlanes: planes3(b), t: t}
	switch {
	case t <= 0:
		op.mode = modeIdentity
	case t >= 1:
		op.mode = modeCopy
	}
	return op
}

// OverlayOp returns the kernel form of Overlay(src, image, x, y, alpha).
// Non-YUV420 images are converted once here, not per frame.
func OverlayOp(image *frame.Frame, x, y, alpha int) PointOp {
	img := image
	if img.Format != frame.FormatYUV420 {
		img = image.Convert(frame.FormatYUV420)
	}
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 255 {
		alpha = 255
	}
	return PointOp{kind: opOverlay, other: img, otherPlanes: planes3(img), alpha: alpha, x: x, y: y}
}

// FillRectOp returns the kernel form of FillRect(dst, r, c).
func FillRectOp(r Rect, c Color) PointOp {
	return PointOp{kind: opFillRect, rect: r, color: c}
}

func planes3(fr *frame.Frame) [3][]byte {
	p := fr.Planes()
	return [3][]byte{p[0], p[1], p[2]}
}

// ApplyFused copies src into dst and applies ops in order in a single
// row-wise pass over the planes. dst and src must be same-shape YUV420;
// dst == src applies the chain in place. Every byte of dst is written, so
// a pooled dst with stale contents is safe. Shape mismatches against a
// crossfade/wipe secondary frame panic with the standalone ops' messages.
// ApplyFused performs no heap allocation.
//
//v2v:hotpath
func ApplyFused(dst, src *frame.Frame, ops []PointOp) {
	mustYUV(src, "ApplyFused") //v2v:nolint(hotpath) inlined shape-check panic path; never taken on the warm loop
	if dst != src {
		mustYUV(dst, "ApplyFused") //v2v:nolint(hotpath) inlined shape-check panic path; never taken on the warm loop
		if !dst.SameShape(src) {
			panic(fmt.Sprintf("raster: ApplyFused dst %dx%d does not match src %dx%d", dst.W, dst.H, src.W, src.H)) //v2v:nolint(hotpath) cold panic path; allocates only when the caller broke the shape contract
		}
	}
	for i := range ops {
		switch ops[i].kind {
		case opCrossfade:
			if !src.SameShape(ops[i].other) {
				panic("raster: Crossfade frames must be same shape") //v2v:nolint(hotpath) cold panic path
			}
		case opWipe:
			if !src.SameShape(ops[i].other) {
				panic("raster: WipeLR frames must be same shape") //v2v:nolint(hotpath) cold panic path
			}
		}
	}
	// Adjacent grades compose exactly — grade is a pure per-byte LUT, so a
	// run of them is one lookup through the composed table
	// (last∘…∘first), byte-identical to applying them in sequence. The
	// rewrite is inlined here, into stack scratch, so it allocates
	// nothing; chains longer than the scratch (rare — real queries stay
	// shallow) run op by op.
	var scratch [gradeComposeMax]PointOp
	var luts [gradeComposeMax][2][256]byte
	if n := len(ops); n <= gradeComposeMax {
		used := 0 // indexed stores, not append: append's realloc path would force luts to the heap
		for i := 0; i < n; {
			if ops[i].kind != opGrade || i+1 >= n || ops[i+1].kind != opGrade {
				scratch[used] = ops[i]
				used++
				i++
				continue
			}
			luma, chroma := &luts[used][0], &luts[used][1]
			*luma, *chroma = *ops[i].lumaLUT, *ops[i].chromaLUT
			for i++; i < n && ops[i].kind == opGrade; i++ {
				for j := 0; j < 256; j++ {
					luma[j] = ops[i].lumaLUT[luma[j]]
					chroma[j] = ops[i].chromaLUT[chroma[j]]
				}
			}
			scratch[used] = PointOp{kind: opGrade, lumaLUT: luma, chromaLUT: chroma}
			used++
		}
		ops = scratch[:used]
	}
	dp := planes3(dst)
	sp := dp
	if dst != src {
		sp = planes3(src)
	}
	for pi := 0; pi < 3; pi++ {
		w, h := dst.W, dst.H
		if pi > 0 {
			w, h = w/2, h/2
		}
		for row := 0; row < h; row++ {
			drow := dp[pi][row*w : (row+1)*w]
			if dst != src {
				copy(drow, sp[pi][row*w:(row+1)*w])
			}
			for i := range ops {
				ops[i].applyRow(dst, pi, row, w, drow)
			}
		}
	}
}

// gradeComposeMax bounds ApplyFused's grade-composition stack scratch.
const gradeComposeMax = 8

// applyRow applies the op to one plane row already resident in drow.
//
//v2v:hotpath
func (op *PointOp) applyRow(dst *frame.Frame, plane, row, w int, drow []byte) {
	switch op.kind {
	case opGrade:
		lut := op.lumaLUT
		if plane > 0 {
			lut = op.chromaLUT
		}
		for i, v := range drow {
			drow[i] = lut[v]
		}

	case opCrossfade:
		switch op.mode {
		case modeIdentity:
			return
		case modeCopy:
			copy(drow, op.otherPlanes[plane][row*w:(row+1)*w])
			return
		}
		orow := op.otherPlanes[plane][row*w : (row+1)*w]
		a := op.alpha
		for i, v := range drow {
			drow[i] = byte((int(orow[i])*a + int(v)*(255-a) + 127) / 255)
		}

	case opWipe:
		switch op.mode {
		case modeIdentity:
			return
		case modeCopy:
			copy(drow, op.otherPlanes[plane][row*w:(row+1)*w])
			return
		}
		cut := even(int(op.t * float64(dst.W)))
		if cut == 0 {
			return
		}
		if plane > 0 {
			cut /= 2
		}
		copy(drow[:cut], op.otherPlanes[plane][row*w:row*w+cut])

	case opOverlay:
		img, a := op.other, op.alpha
		if plane == 0 {
			irow := row - op.y
			if irow < 0 || irow >= img.H {
				return
			}
			ip := op.otherPlanes[0][irow*img.W : (irow+1)*img.W]
			for col := 0; col < img.W; col++ {
				dx := op.x + col
				if dx < 0 || dx >= w {
					continue
				}
				drow[dx] = byte((int(ip[col])*a + int(drow[dx])*(255-a) + 127) / 255)
			}
			return
		}
		irow := row - op.y/2
		icw := img.W / 2
		if irow < 0 || irow >= img.H/2 {
			return
		}
		ip := op.otherPlanes[plane][irow*icw : (irow+1)*icw]
		for col := 0; col < icw; col++ {
			dx := op.x/2 + col
			if dx < 0 || dx >= w {
				continue
			}
			drow[dx] = byte((int(ip[col])*a + int(drow[dx])*(255-a) + 127) / 255)
		}

	case opFillRect:
		cr, ok := op.rect.clip(dst.W, dst.H)
		if !ok {
			return
		}
		if plane == 0 {
			if row < cr.Y || row >= cr.Y+cr.H {
				return
			}
			fill := drow[cr.X : cr.X+cr.W]
			for i := range fill {
				fill[i] = op.color.Y
			}
			return
		}
		if row < cr.Y/2 || row >= (cr.Y+cr.H+1)/2 {
			return
		}
		v := op.color.Cb
		if plane == 2 {
			v = op.color.Cr
		}
		fill := drow[cr.X/2 : (cr.X+cr.W+1)/2]
		for i := range fill {
			fill[i] = v
		}
	}
}

// ScaleInto is Scale with a caller-provided destination, enabling pooled
// buffers on the output-scaling hot path. dst's dimensions select the
// target size; every byte of dst is written. dst must not alias src.
//
//v2v:hotpath
func ScaleInto(dst, src *frame.Frame) {
	if src.Format != frame.FormatYUV420 || dst.Format != frame.FormatYUV420 {
		panic(fmt.Sprintf("raster: ScaleInto wants yuv420, got %v -> %v", src.Format, dst.Format)) //v2v:nolint(hotpath) cold panic path; allocates only on a format contract violation
	}
	if dst.W == src.W && dst.H == src.H {
		copy(dst.Pix, src.Pix)
		return
	}
	sp, dp := src.Planes(), dst.Planes()
	scalePlane(sp[0], src.W, src.H, dp[0], dst.W, dst.H)
	scalePlane(sp[1], src.W/2, src.H/2, dp[1], dst.W/2, dst.H/2)
	scalePlane(sp[2], src.W/2, src.H/2, dp[2], dst.W/2, dst.H/2)
}
