package raster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"v2v/internal/frame"
)

func noisy(w, h int, seed int64) *frame.Frame {
	fr := frame.New(w, h, frame.FormatYUV420)
	rnd := rand.New(rand.NewSource(seed))
	for i := range fr.Pix {
		fr.Pix[i] = byte(rnd.Intn(256))
	}
	return fr
}

func flat(w, h int, c Color) *frame.Frame {
	fr := frame.New(w, h, frame.FormatYUV420)
	fr.Fill(c.Y, c.Cb, c.Cr)
	return fr
}

func mean(p []byte) float64 {
	var s float64
	for _, v := range p {
		s += float64(v)
	}
	return s / float64(len(p))
}

func TestScaleIdentity(t *testing.T) {
	src := noisy(32, 16, 1)
	dst := Scale(src, 32, 16)
	if !dst.Equal(src) {
		t.Error("same-size scale should be identity")
	}
	// The identity path returns src itself (no copy) — callers must clone
	// before mutating. See the Scale doc comment.
	if dst != src {
		t.Error("same-size scale should return src (zero-copy identity)")
	}
}

func TestScaleFlatStaysFlat(t *testing.T) {
	src := flat(32, 16, Color{77, 100, 200})
	dst := Scale(src, 64, 32)
	p := dst.Planes()
	for i, v := range p[0] {
		if v != 77 {
			t.Fatalf("luma[%d] = %d", i, v)
		}
	}
	for i := range p[1] {
		if p[1][i] != 100 || p[2][i] != 200 {
			t.Fatalf("chroma[%d] = %d/%d", i, p[1][i], p[2][i])
		}
	}
}

func TestScalePreservesMeanRoughly(t *testing.T) {
	src := noisy(64, 64, 2)
	dst := Scale(src, 32, 32)
	sm, dm := mean(src.Planes()[0]), mean(dst.Planes()[0])
	if math.Abs(sm-dm) > 3 {
		t.Errorf("mean shifted %f -> %f", sm, dm)
	}
	up := Scale(src, 128, 128)
	um := mean(up.Planes()[0])
	if math.Abs(sm-um) > 3 {
		t.Errorf("upscale mean shifted %f -> %f", sm, um)
	}
}

func TestScaleValidation(t *testing.T) {
	src := noisy(16, 16, 3)
	for _, dims := range [][2]int{{0, 16}, {16, 0}, {15, 16}, {16, 15}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scale to %v did not panic", dims)
				}
			}()
			Scale(src, dims[0], dims[1])
		}()
	}
}

func TestCrop(t *testing.T) {
	src := frame.New(16, 16, frame.FormatYUV420)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			src.SetLuma(x, y, byte(y*16+x))
		}
	}
	dst := Crop(src, 4, 6, 8, 4)
	if dst.W != 8 || dst.H != 4 {
		t.Fatalf("crop dims %dx%d", dst.W, dst.H)
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 8; x++ {
			want := byte((y+6)*16 + x + 4)
			if got := dst.Luma(x, y); got != want {
				t.Fatalf("crop luma (%d,%d) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestCropValidation(t *testing.T) {
	src := noisy(16, 16, 4)
	bad := [][4]int{{1, 0, 4, 4}, {0, 1, 4, 4}, {0, 0, 3, 4}, {0, 0, 4, 3}, {-2, 0, 4, 4}, {14, 0, 4, 4}, {0, 0, 0, 4}}
	for _, b := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Crop %v did not panic", b)
				}
			}()
			Crop(src, b[0], b[1], b[2], b[3])
		}()
	}
}

func TestZoom(t *testing.T) {
	src := flat(32, 32, Color{10, 128, 128})
	// Bright center region: after 2x zoom the whole frame should be bright.
	FillRect(src, Rect{8, 8, 16, 16}, Color{200, 128, 128})
	z := Zoom(src, 2.0)
	if z.W != 32 || z.H != 32 {
		t.Fatalf("zoom dims %dx%d", z.W, z.H)
	}
	if m := mean(z.Planes()[0]); m < 190 {
		t.Errorf("zoomed mean luma = %f, want bright", m)
	}
	if !Zoom(src, 1.0).Equal(src) {
		t.Error("zoom 1.0 should be identity")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zoom < 1 should panic")
			}
		}()
		Zoom(src, 0.5)
	}()
}

func TestGaussianBlurSmooths(t *testing.T) {
	src := flat(32, 32, Color{0, 128, 128})
	FillRect(src, Rect{16, 0, 2, 32}, White) // vertical line
	dst := GaussianBlur(src, 1.5)
	if dst.Luma(17, 16) >= src.Luma(17, 16) {
		t.Error("line should dim")
	}
	if dst.Luma(13, 16) <= 0 {
		t.Error("blur should spread energy")
	}
	// Mean energy is conserved within rounding.
	if d := math.Abs(mean(src.Planes()[0]) - mean(dst.Planes()[0])); d > 1 {
		t.Errorf("blur changed mean by %f", d)
	}
	if !GaussianBlur(src, 0).Equal(src) {
		t.Error("sigma 0 should be identity")
	}
}

func TestGaussianBlurFlatInvariant(t *testing.T) {
	src := flat(16, 16, Color{99, 70, 180})
	dst := GaussianBlur(src, 2.0)
	for i := range dst.Pix {
		if d := int(dst.Pix[i]) - int(src.Pix[i]); d < -1 || d > 1 {
			t.Fatalf("flat blur moved pixel %d by %d", i, d)
		}
	}
}

func TestGaussianBlurDeterministic(t *testing.T) {
	src := noisy(32, 32, 5)
	a, b := GaussianBlur(src, 1.2), GaussianBlur(src, 1.2)
	if !a.Equal(b) {
		t.Error("blur must be deterministic")
	}
}

func TestSharpenAndEdge(t *testing.T) {
	src := flat(16, 16, Color{50, 128, 128})
	FillRect(src, Rect{8, 0, 8, 16}, Color{200, 128, 128})
	sh := Sharpen(src)
	if sh.W != 16 || sh.H != 16 {
		t.Fatal("sharpen dims")
	}
	// Sharpen should overshoot at the edge.
	if sh.Luma(8, 8) <= src.Luma(8, 8) {
		t.Error("sharpen should overshoot bright side of edge")
	}
	ed := EdgeDetect(src)
	if ed.Luma(2, 8) != 0 {
		t.Error("flat region should be zero edge response")
	}
	if ed.Luma(8, 8) == 0 {
		t.Error("edge should respond")
	}
	p := ed.Planes()
	if p[1][0] != 128 || p[2][0] != 128 {
		t.Error("edge map should have neutral chroma")
	}
}

func TestGrade(t *testing.T) {
	src := flat(16, 16, Color{100, 100, 156})
	br := Grade(src, 20, 1.0, 1.0)
	if br.Luma(0, 0) != 120 {
		t.Errorf("brightness = %d", br.Luma(0, 0))
	}
	ct := Grade(src, 0, 2.0, 1.0)
	if ct.Luma(0, 0) != 72 { // (100-128)*2+128
		t.Errorf("contrast = %d", ct.Luma(0, 0))
	}
	st := Grade(src, 0, 1.0, 0.0)
	p := st.Planes()
	if p[1][0] != 128 || p[2][0] != 128 {
		t.Error("saturation 0 should neutralize chroma")
	}
	id := Grade(src, 0, 1.0, 1.0)
	if !id.Equal(src) {
		t.Error("identity grade changed pixels")
	}
}

func TestDenoiseFlatInvariant(t *testing.T) {
	src := flat(16, 16, Color{99, 70, 180})
	if !Denoise(src).Equal(src) {
		t.Error("flat denoise should be exact identity")
	}
	n := noisy(16, 16, 6)
	d := Denoise(n)
	// Variance should drop.
	varOf := func(p []byte) float64 {
		m := mean(p)
		var s float64
		for _, v := range p {
			s += (float64(v) - m) * (float64(v) - m)
		}
		return s / float64(len(p))
	}
	if varOf(d.Planes()[0]) >= varOf(n.Planes()[0]) {
		t.Error("denoise should reduce variance")
	}
}

func TestFillRectAndClip(t *testing.T) {
	fr := flat(16, 16, Black)
	FillRect(fr, Rect{-4, -4, 8, 8}, White)
	if fr.Luma(3, 3) != 255 || fr.Luma(4, 4) != 0 {
		t.Error("clipped fill wrong")
	}
	FillRect(fr, Rect{100, 100, 8, 8}, White) // fully outside: no panic
	FillRect(fr, Rect{0, 0, 0, 8}, White)     // degenerate: no-op
}

func TestDrawRect(t *testing.T) {
	fr := flat(32, 32, Black)
	DrawRect(fr, Rect{4, 4, 24, 24}, 2, White)
	if fr.Luma(4, 4) != 255 || fr.Luma(5, 5) != 255 {
		t.Error("border missing")
	}
	if fr.Luma(16, 16) != 0 {
		t.Error("interior should be untouched")
	}
	if fr.Luma(27, 16) != 255 {
		t.Error("right border missing")
	}
}

func TestDrawTextAndWidth(t *testing.T) {
	fr := flat(128, 32, Black)
	DrawText(fr, 2, 2, "AB 12", 1, White)
	// 'A' glyph row 0 = 0x0E -> pixels at x=3,4,5 (cols 1..3).
	if fr.Luma(3, 2) != 255 || fr.Luma(2, 2) != 0 {
		t.Error("glyph A top row wrong")
	}
	if got := TextWidth("AB 12", 1); got != 5*(GlyphWidth+1)-1 {
		t.Errorf("TextWidth = %d", got)
	}
	if TextWidth("", 3) != 0 {
		t.Error("empty TextWidth")
	}
	// Lowercase maps to uppercase; unknown maps to '?'. Both draw something.
	fr2 := flat(64, 16, Black)
	DrawText(fr2, 0, 0, "a", 1, White)
	fr3 := flat(64, 16, Black)
	DrawText(fr3, 0, 0, "A", 1, White)
	if !fr2.Equal(fr3) {
		t.Error("lowercase should render as uppercase")
	}
	fr4 := flat(64, 16, Black)
	DrawText(fr4, 0, 0, "~", 1, White)
	if mean(fr4.Planes()[0]) == 0 {
		t.Error("unknown rune should render fallback glyph")
	}
}

func TestLabelDrawsBackground(t *testing.T) {
	fr := flat(128, 32, Color{50, 128, 128})
	Label(fr, 4, 4, "OK", 1, Black, White)
	if fr.Luma(3, 3) != 255 {
		t.Error("label background missing")
	}
}

func TestBoundingBoxesEmptyIsIdentity(t *testing.T) {
	src := noisy(64, 64, 7)
	out := BoundingBoxes(src, nil)
	if !out.Equal(src) {
		t.Error("empty boxes should be identity (the f_dde invariant)")
	}
	out.Pix[0] ^= 1
	if src.Pix[0] == out.Pix[0] {
		t.Error("must not alias input")
	}
}

func TestBoundingBoxesDraw(t *testing.T) {
	src := flat(128, 128, Color{30, 128, 128})
	out := BoundingBoxes(src, []Box{{X: 20, Y: 40, W: 40, H: 30, Class: "ZEBRA", Track: 3}})
	if out.Equal(src) {
		t.Error("boxes should modify the frame")
	}
	if out.Luma(20, 40) == 30 {
		t.Error("box corner not drawn")
	}
	if out.Luma(40, 55) != 30 {
		t.Error("box interior should be untouched")
	}
}

func TestGrid2x2(t *testing.T) {
	a := flat(32, 32, Color{10, 128, 128})
	b := flat(32, 32, Color{60, 128, 128})
	c := flat(32, 32, Color{110, 128, 128})
	d := flat(32, 32, Color{160, 128, 128})
	g := Grid2x2(a, b, c, d)
	if g.W != 32 || g.H != 32 {
		t.Fatalf("grid dims %dx%d", g.W, g.H)
	}
	if g.Luma(8, 8) != 10 || g.Luma(24, 8) != 60 || g.Luma(8, 24) != 110 || g.Luma(24, 24) != 160 {
		t.Errorf("quadrants = %d %d %d %d", g.Luma(8, 8), g.Luma(24, 8), g.Luma(8, 24), g.Luma(24, 24))
	}
}

func TestGrid2x2MixedSizes(t *testing.T) {
	a := flat(32, 32, Color{10, 128, 128})
	b := flat(64, 16, Color{60, 128, 128})
	g := Grid2x2(a, b, b, a)
	if g.W != 32 || g.H != 32 {
		t.Fatalf("grid dims %dx%d", g.W, g.H)
	}
	if g.Luma(24, 8) != 60 {
		t.Error("scaled quadrant wrong")
	}
}

func TestGridN(t *testing.T) {
	fr := flat(36, 36, Color{50, 128, 128})
	g := GridN([]*frame.Frame{fr, fr, fr}) // 2x2 grid with one empty cell
	if g.W != 36 || g.H != 36 {
		t.Fatal("gridN dims")
	}
	if g.Luma(27, 27) != 16 {
		t.Error("empty cell should be black")
	}
	single := GridN([]*frame.Frame{fr})
	if single.Luma(5, 5) != 50 {
		t.Error("1-cell grid should show the frame")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty GridN should panic")
			}
		}()
		GridN(nil)
	}()
}

func TestOverlay(t *testing.T) {
	base := flat(32, 32, Color{0, 128, 128})
	img := flat(8, 8, Color{255, 128, 128})
	out := Overlay(base, img, 4, 4, 255)
	if out.Luma(5, 5) != 255 {
		t.Error("opaque overlay should replace")
	}
	if out.Luma(20, 20) != 0 {
		t.Error("outside overlay should be untouched")
	}
	half := Overlay(base, img, 4, 4, 128)
	if v := half.Luma(5, 5); v < 120 || v > 136 {
		t.Errorf("half overlay luma = %d", v)
	}
	// Clipped overlay must not panic and must blend the visible part.
	clip := Overlay(base, img, -4, -4, 255)
	if clip.Luma(1, 1) != 255 {
		t.Error("clipped overlay visible part wrong")
	}
	if clip.Luma(10, 10) != 0 {
		t.Error("clipped overlay overflowed")
	}
}

func TestOverlayConvertsFormat(t *testing.T) {
	base := flat(32, 32, Color{0, 128, 128})
	img := frame.New(8, 8, frame.FormatGray8)
	img.Fill(255, 0, 0)
	out := Overlay(base, img, 0, 0, 255)
	if out.Luma(2, 2) != 255 {
		t.Error("gray overlay should convert and blend")
	}
}

func TestCrossfade(t *testing.T) {
	a := flat(16, 16, Color{0, 128, 128})
	b := flat(16, 16, Color{200, 128, 128})
	if !Crossfade(a, b, 0).Equal(a) || !Crossfade(a, b, 1).Equal(b) {
		t.Error("crossfade endpoints wrong")
	}
	mid := Crossfade(a, b, 0.5)
	if v := mid.Luma(8, 8); v < 95 || v > 105 {
		t.Errorf("mid luma = %d", v)
	}
}

func TestWipeLR(t *testing.T) {
	a := flat(16, 16, Color{0, 128, 128})
	b := flat(16, 16, Color{200, 128, 128})
	if !WipeLR(a, b, 0).Equal(a) || !WipeLR(a, b, 1).Equal(b) {
		t.Error("wipe endpoints wrong")
	}
	mid := WipeLR(a, b, 0.5)
	if mid.Luma(2, 8) != 200 || mid.Luma(12, 8) != 0 {
		t.Error("wipe halves wrong")
	}
}

func TestPropertyZoomPreservesShape(t *testing.T) {
	src := noisy(48, 32, 8)
	if err := quick.Check(func(f uint8) bool {
		factor := 1 + float64(f%40)/10
		z := Zoom(src, factor)
		return z.W == src.W && z.H == src.H
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCropWithinScale(t *testing.T) {
	src := noisy(64, 48, 9)
	if err := quick.Check(func(xs, ys, ws, hs uint8) bool {
		x, y := int(xs%24)&^1, int(ys%16)&^1
		w, h := 2+int(ws%16)&^1, 2+int(hs%16)&^1
		if x+w > src.W || y+h > src.H {
			return true
		}
		c := Crop(src, x, y, w, h)
		// Every cropped luma pixel matches the source.
		for yy := 0; yy < h; yy++ {
			for xx := 0; xx < w; xx++ {
				if c.Luma(xx, yy) != src.Luma(x+xx, y+yy) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHStackVStack(t *testing.T) {
	a := flat(32, 32, Color{10, 128, 128})
	b := flat(32, 32, Color{200, 128, 128})
	h := HStack(a, b)
	if h.W != 32 || h.H != 32 {
		t.Fatalf("hstack dims %dx%d", h.W, h.H)
	}
	if h.Luma(8, 16) != 10 || h.Luma(24, 16) != 200 {
		t.Errorf("hstack halves = %d / %d", h.Luma(8, 16), h.Luma(24, 16))
	}
	v := VStack(a, b)
	if v.Luma(16, 8) != 10 || v.Luma(16, 24) != 200 {
		t.Errorf("vstack halves = %d / %d", v.Luma(16, 8), v.Luma(16, 24))
	}
	// Mixed sizes scale into place.
	c := flat(64, 16, Color{99, 128, 128})
	h2 := HStack(a, c)
	if h2.W != 32 || h2.Luma(24, 16) != 99 {
		t.Error("hstack mixed sizes wrong")
	}
}

func TestPiP(t *testing.T) {
	base := flat(64, 64, Color{30, 128, 128})
	inset := flat(64, 64, Color{220, 128, 128})
	out := PiP(base, inset, 40, 40, 4)
	if out.W != 64 || out.H != 64 {
		t.Fatal("pip dims")
	}
	if out.Luma(47, 47) != 220 {
		t.Errorf("pip interior = %d", out.Luma(47, 47))
	}
	if out.Luma(8, 8) != 30 {
		t.Errorf("pip base = %d", out.Luma(8, 8))
	}
	if out.Luma(39, 39) != 255 {
		t.Errorf("pip border = %d", out.Luma(39, 39))
	}
	// scaleDiv below 2 clamps.
	out2 := PiP(base, inset, 0, 0, 0)
	if out2.Luma(4, 4) != 220 {
		t.Error("pip clamp wrong")
	}
}
