package raster

import (
	"fmt"
	"math"

	"v2v/internal/frame"
)

// GaussianBlur applies a separable Gaussian blur with the given sigma to
// every plane. sigma <= 0 returns a clone. This is the pixel-wise filter
// used by benchmark queries Q4/Q9.
func GaussianBlur(src *frame.Frame, sigma float64) *frame.Frame {
	if src.Format != frame.FormatYUV420 {
		panic(fmt.Sprintf("raster: GaussianBlur wants yuv420, got %v", src.Format))
	}
	if sigma <= 0 {
		return src.Clone()
	}
	kernel := gaussianKernel(sigma)
	dst := frame.New(src.W, src.H, frame.FormatYUV420)
	sp, dp := src.Planes(), dst.Planes()
	blurPlane(sp[0], dp[0], src.W, src.H, kernel)
	blurPlane(sp[1], dp[1], src.W/2, src.H/2, kernel)
	blurPlane(sp[2], dp[2], src.W/2, src.H/2, kernel)
	return dst
}

// gaussianKernel builds a normalized integer kernel (scaled by 1<<kShift)
// with radius ceil(3*sigma), capped at 15.
const kShift = 12

func gaussianKernel(sigma float64) []int32 {
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	if radius > 15 {
		radius = 15
	}
	raw := make([]float64, 2*radius+1)
	var sum float64
	for i := range raw {
		d := float64(i - radius)
		raw[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += raw[i]
	}
	k := make([]int32, len(raw))
	var isum int32
	for i, v := range raw {
		k[i] = int32(v / sum * (1 << kShift))
		isum += k[i]
	}
	// Push rounding residue into the center tap so the kernel sums to 1.0.
	k[radius] += (1 << kShift) - isum
	return k
}

func blurPlane(src, dst []byte, w, h int, kernel []int32) {
	radius := len(kernel) / 2
	tmp := make([]int32, w*h)
	// Horizontal pass with edge clamping.
	for y := 0; y < h; y++ {
		row := src[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			var acc int32
			for k := -radius; k <= radius; k++ {
				sx := x + k
				if sx < 0 {
					sx = 0
				} else if sx >= w {
					sx = w - 1
				}
				acc += int32(row[sx]) * kernel[k+radius]
			}
			tmp[y*w+x] = acc >> kShift
		}
	}
	// Vertical pass.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc int32
			for k := -radius; k <= radius; k++ {
				sy := y + k
				if sy < 0 {
					sy = 0
				} else if sy >= h {
					sy = h - 1
				}
				acc += tmp[sy*w+x] * kernel[k+radius]
			}
			v := acc >> kShift
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			dst[y*w+x] = byte(v)
		}
	}
}

// Convolve3x3 applies a 3x3 kernel (with divisor and bias) to the luma
// plane, leaving chroma untouched. Used by sharpen/edge-detect transforms.
func Convolve3x3(src *frame.Frame, k [9]int, div, bias int) *frame.Frame {
	if src.Format != frame.FormatYUV420 {
		panic(fmt.Sprintf("raster: Convolve3x3 wants yuv420, got %v", src.Format))
	}
	if div == 0 {
		div = 1
	}
	dst := src.Clone()
	sp, dp := src.Planes(), dst.Planes()
	w, h := src.W, src.H
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc int
			idx := 0
			for dy := -1; dy <= 1; dy++ {
				sy := clampInt(y+dy, 0, h-1)
				for dx := -1; dx <= 1; dx++ {
					sx := clampInt(x+dx, 0, w-1)
					acc += int(sp[0][sy*w+sx]) * k[idx]
					idx++
				}
			}
			v := acc/div + bias
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			dp[0][y*w+x] = byte(v)
		}
	}
	return dst
}

// Sharpen applies a standard unsharp 3x3 kernel to luma.
func Sharpen(src *frame.Frame) *frame.Frame {
	return Convolve3x3(src, [9]int{0, -1, 0, -1, 5, -1, 0, -1, 0}, 1, 0)
}

// EdgeDetect applies a Laplacian kernel to luma and flattens chroma,
// producing a gray edge map in YUV420.
func EdgeDetect(src *frame.Frame) *frame.Frame {
	out := Convolve3x3(src, [9]int{-1, -1, -1, -1, 8, -1, -1, -1, -1}, 1, 0)
	p := out.Planes()
	for i := range p[1] {
		p[1][i] = 128
		p[2][i] = 128
	}
	return out
}

// Grade adjusts brightness (additive, -255..255) and contrast (multiplier
// about the mid-point, e.g. 1.2) on the luma plane and saturation
// (multiplier about 128) on chroma.
func Grade(src *frame.Frame, brightness int, contrast, saturation float64) *frame.Frame {
	if src.Format != frame.FormatYUV420 {
		panic(fmt.Sprintf("raster: Grade wants yuv420, got %v", src.Format))
	}
	dst := src.Clone()
	p := dst.Planes()
	// Precompute LUTs: deterministic and fast.
	var lumaLUT, chromaLUT [256]byte
	for i := 0; i < 256; i++ {
		v := (float64(i)-128)*contrast + 128 + float64(brightness)
		lumaLUT[i] = clampF(v)
		c := (float64(i)-128)*saturation + 128
		chromaLUT[i] = clampF(c)
	}
	for i, v := range p[0] {
		p[0][i] = lumaLUT[v]
	}
	for i, v := range p[1] {
		p[1][i] = chromaLUT[v]
	}
	for i, v := range p[2] {
		p[2][i] = chromaLUT[v]
	}
	return dst
}

// Denoise applies a 3x3 box filter to all planes — a cheap smoothing
// transform exposed by the Filter grammar.
func Denoise(src *frame.Frame) *frame.Frame {
	if src.Format != frame.FormatYUV420 {
		panic(fmt.Sprintf("raster: Denoise wants yuv420, got %v", src.Format))
	}
	dst := frame.New(src.W, src.H, frame.FormatYUV420)
	sp, dp := src.Planes(), dst.Planes()
	boxPlane(sp[0], dp[0], src.W, src.H)
	boxPlane(sp[1], dp[1], src.W/2, src.H/2)
	boxPlane(sp[2], dp[2], src.W/2, src.H/2)
	return dst
}

func boxPlane(src, dst []byte, w, h int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc, n int
			for dy := -1; dy <= 1; dy++ {
				sy := y + dy
				if sy < 0 || sy >= h {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					sx := x + dx
					if sx < 0 || sx >= w {
						continue
					}
					acc += int(src[sy*w+sx])
					n++
				}
			}
			dst[y*w+x] = byte(acc / n)
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return byte(v + 0.5)
}
