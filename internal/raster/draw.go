package raster

import (
	"fmt"

	"v2v/internal/frame"
)

// Color is a YUV color used by drawing operations.
type Color struct {
	Y, Cb, Cr byte
}

// Common drawing colors.
var (
	White  = Color{255, 128, 128}
	Black  = Color{0, 128, 128}
	Red    = Color{76, 85, 255}
	Green  = Color{150, 44, 21}
	Blue   = Color{29, 255, 107}
	Yellow = Color{226, 1, 149}
)

// Rect is an integer pixel rectangle.
type Rect struct {
	X, Y, W, H int
}

// clip returns r clipped to a w×h frame, and whether anything remains.
func (r Rect) clip(w, h int) (Rect, bool) {
	x0, y0 := clampInt(r.X, 0, w), clampInt(r.Y, 0, h)
	x1, y1 := clampInt(r.X+r.W, 0, w), clampInt(r.Y+r.H, 0, h)
	if x1 <= x0 || y1 <= y0 {
		return Rect{}, false
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}, true
}

// FillRect draws a solid rectangle. Out-of-bounds portions are clipped.
func FillRect(dst *frame.Frame, r Rect, c Color) {
	mustYUV(dst, "FillRect")
	cr, ok := r.clip(dst.W, dst.H)
	if !ok {
		return
	}
	p := dst.Planes()
	for y := cr.Y; y < cr.Y+cr.H; y++ {
		row := p[0][y*dst.W:]
		for x := cr.X; x < cr.X+cr.W; x++ {
			row[x] = c.Y
		}
	}
	cw := dst.W / 2
	for y := cr.Y / 2; y < (cr.Y+cr.H+1)/2; y++ {
		for x := cr.X / 2; x < (cr.X+cr.W+1)/2; x++ {
			p[1][y*cw+x] = c.Cb
			p[2][y*cw+x] = c.Cr
		}
	}
}

// DrawRect draws a rectangle outline of the given thickness. This is the
// primitive behind BoundingBox.
func DrawRect(dst *frame.Frame, r Rect, thickness int, c Color) {
	if thickness < 1 {
		thickness = 1
	}
	FillRect(dst, Rect{r.X, r.Y, r.W, thickness}, c)
	FillRect(dst, Rect{r.X, r.Y + r.H - thickness, r.W, thickness}, c)
	FillRect(dst, Rect{r.X, r.Y, thickness, r.H}, c)
	FillRect(dst, Rect{r.X + r.W - thickness, r.Y, thickness, r.H}, c)
}

// font5x7 is a compact bitmap font covering the characters annotation
// overlays need. Each glyph is 5 columns × 7 rows, one byte per row with
// the low 5 bits used (bit 4 = leftmost column).
var font5x7 = map[rune][7]byte{
	' ': {0, 0, 0, 0, 0, 0, 0},
	'0': {0x0E, 0x11, 0x13, 0x15, 0x19, 0x11, 0x0E},
	'1': {0x04, 0x0C, 0x04, 0x04, 0x04, 0x04, 0x0E},
	'2': {0x0E, 0x11, 0x01, 0x02, 0x04, 0x08, 0x1F},
	'3': {0x1F, 0x02, 0x04, 0x02, 0x01, 0x11, 0x0E},
	'4': {0x02, 0x06, 0x0A, 0x12, 0x1F, 0x02, 0x02},
	'5': {0x1F, 0x10, 0x1E, 0x01, 0x01, 0x11, 0x0E},
	'6': {0x06, 0x08, 0x10, 0x1E, 0x11, 0x11, 0x0E},
	'7': {0x1F, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08},
	'8': {0x0E, 0x11, 0x11, 0x0E, 0x11, 0x11, 0x0E},
	'9': {0x0E, 0x11, 0x11, 0x0F, 0x01, 0x02, 0x0C},
	'A': {0x0E, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11},
	'B': {0x1E, 0x11, 0x11, 0x1E, 0x11, 0x11, 0x1E},
	'C': {0x0E, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0E},
	'D': {0x1C, 0x12, 0x11, 0x11, 0x11, 0x12, 0x1C},
	'E': {0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x1F},
	'F': {0x1F, 0x10, 0x10, 0x1E, 0x10, 0x10, 0x10},
	'G': {0x0E, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0F},
	'H': {0x11, 0x11, 0x11, 0x1F, 0x11, 0x11, 0x11},
	'I': {0x0E, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0E},
	'J': {0x07, 0x02, 0x02, 0x02, 0x02, 0x12, 0x0C},
	'K': {0x11, 0x12, 0x14, 0x18, 0x14, 0x12, 0x11},
	'L': {0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1F},
	'M': {0x11, 0x1B, 0x15, 0x15, 0x11, 0x11, 0x11},
	'N': {0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11},
	'O': {0x0E, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E},
	'P': {0x1E, 0x11, 0x11, 0x1E, 0x10, 0x10, 0x10},
	'Q': {0x0E, 0x11, 0x11, 0x11, 0x15, 0x12, 0x0D},
	'R': {0x1E, 0x11, 0x11, 0x1E, 0x14, 0x12, 0x11},
	'S': {0x0F, 0x10, 0x10, 0x0E, 0x01, 0x01, 0x1E},
	'T': {0x1F, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04},
	'U': {0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0E},
	'V': {0x11, 0x11, 0x11, 0x11, 0x11, 0x0A, 0x04},
	'W': {0x11, 0x11, 0x11, 0x15, 0x15, 0x1B, 0x11},
	'X': {0x11, 0x11, 0x0A, 0x04, 0x0A, 0x11, 0x11},
	'Y': {0x11, 0x11, 0x0A, 0x04, 0x04, 0x04, 0x04},
	'Z': {0x1F, 0x01, 0x02, 0x04, 0x08, 0x10, 0x1F},
	'-': {0x00, 0x00, 0x00, 0x1F, 0x00, 0x00, 0x00},
	'_': {0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x1F},
	'.': {0x00, 0x00, 0x00, 0x00, 0x00, 0x0C, 0x0C},
	',': {0x00, 0x00, 0x00, 0x00, 0x0C, 0x04, 0x08},
	':': {0x00, 0x0C, 0x0C, 0x00, 0x0C, 0x0C, 0x00},
	'/': {0x01, 0x01, 0x02, 0x04, 0x08, 0x10, 0x10},
	'#': {0x0A, 0x0A, 0x1F, 0x0A, 0x1F, 0x0A, 0x0A},
	'%': {0x18, 0x19, 0x02, 0x04, 0x08, 0x13, 0x03},
	'(': {0x02, 0x04, 0x08, 0x08, 0x08, 0x04, 0x02},
	')': {0x08, 0x04, 0x02, 0x02, 0x02, 0x04, 0x08},
	'?': {0x0E, 0x11, 0x01, 0x02, 0x04, 0x00, 0x04},
	'!': {0x04, 0x04, 0x04, 0x04, 0x04, 0x00, 0x04},
	'+': {0x00, 0x04, 0x04, 0x1F, 0x04, 0x04, 0x00},
	'=': {0x00, 0x00, 0x1F, 0x00, 0x1F, 0x00, 0x00},
}

// GlyphWidth and GlyphHeight are the base glyph cell dimensions (one pixel
// of inter-character spacing is added by DrawText).
const (
	GlyphWidth  = 5
	GlyphHeight = 7
)

// TextWidth returns the pixel width of s drawn at the given scale.
func TextWidth(s string, scale int) int {
	if scale < 1 {
		scale = 1
	}
	n := 0
	for range s {
		n++
	}
	if n == 0 {
		return 0
	}
	return (n*(GlyphWidth+1) - 1) * scale
}

// DrawText renders s at (x, y) in the given color and integer scale.
// Lowercase letters are drawn with their uppercase glyphs; characters
// without a glyph render as '?'. Pixels outside the frame are clipped.
func DrawText(dst *frame.Frame, x, y int, s string, scale int, c Color) {
	mustYUV(dst, "DrawText")
	if scale < 1 {
		scale = 1
	}
	cx := x
	for _, r := range s {
		if r >= 'a' && r <= 'z' {
			r = r - 'a' + 'A'
		}
		glyph, ok := font5x7[r]
		if !ok {
			glyph = font5x7['?']
		}
		for gy := 0; gy < GlyphHeight; gy++ {
			bits := glyph[gy]
			for gx := 0; gx < GlyphWidth; gx++ {
				if bits&(1<<(GlyphWidth-1-gx)) == 0 {
					continue
				}
				FillRect(dst, Rect{cx + gx*scale, y + gy*scale, scale, scale}, c)
			}
		}
		cx += (GlyphWidth + 1) * scale
	}
}

// Label draws text on a contrasting filled background — the style used for
// bounding-box class annotations.
func Label(dst *frame.Frame, x, y int, s string, scale int, fg, bg Color) {
	pad := scale
	FillRect(dst, Rect{x - pad, y - pad, TextWidth(s, scale) + 2*pad, GlyphHeight*scale + 2*pad}, bg)
	DrawText(dst, x, y, s, scale, fg)
}

// Box is one object bounding box with its annotation metadata — the
// paper's BoxCoord. Coordinates are pixels in the source frame.
type Box struct {
	X, Y, W, H int
	Class      string
	Track      int
}

// BoundingBoxes draws each box outline plus a "CLASS #TRACK" label above
// it. An empty list returns an unmodified clone — the identity behaviour
// the data-dependent rewriter exploits (BoundingBox_dde).
func BoundingBoxes(src *frame.Frame, boxes []Box) *frame.Frame {
	dst := src.Clone()
	thickness := dst.H / 120
	if thickness < 1 {
		thickness = 1
	}
	scale := dst.H / 240
	if scale < 1 {
		scale = 1
	}
	for i, b := range boxes {
		c := boxPalette[i%len(boxPalette)]
		DrawRect(dst, Rect{b.X, b.Y, b.W, b.H}, thickness, c)
		label := b.Class
		if b.Track != 0 {
			label = fmt.Sprintf("%s #%d", b.Class, b.Track)
		}
		if label != "" {
			ty := b.Y - GlyphHeight*scale - 3*scale
			if ty < 0 {
				ty = b.Y + thickness + scale
			}
			Label(dst, b.X+thickness, ty+scale, label, scale, Black, c)
		}
	}
	return dst
}

var boxPalette = []Color{Yellow, Red, Green, Blue, White}

func mustYUV(fr *frame.Frame, op string) {
	if fr.Format != frame.FormatYUV420 {
		panic(fmt.Sprintf("raster: %s wants yuv420, got %v", op, fr.Format))
	}
}
