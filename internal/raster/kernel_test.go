package raster

import (
	"math/rand"
	"testing"

	"v2v/internal/frame"
)

// randomFrame returns a deterministic pseudo-random YUV420 frame.
func randomFrame(rng *rand.Rand, w, h int) *frame.Frame {
	fr := frame.New(w, h, frame.FormatYUV420)
	rng.Read(fr.Pix)
	return fr
}

// applyUnfused runs the standalone (frame-at-a-time) form of one op.
func applyUnfused(t *testing.T, src *frame.Frame, name string, mk func() (PointOp, func(*frame.Frame) *frame.Frame)) (*frame.Frame, *frame.Frame) {
	t.Helper()
	op, ref := mk()
	want := ref(src)
	got := frame.New(src.W, src.H, frame.FormatYUV420)
	got.Pix[0] = 0x55 // stale contents must not leak through
	ApplyFused(got, src, []PointOp{op})
	if !got.Equal(want) {
		t.Fatalf("%s: fused output differs from standalone op", name)
	}
	return got, want
}

func TestKernelsMatchStandaloneOps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := randomFrame(rng, 64, 36)
	b := randomFrame(rng, 64, 36)
	small := randomFrame(rng, 20, 12)

	cases := []struct {
		name string
		mk   func() (PointOp, func(*frame.Frame) *frame.Frame)
	}{
		{"grade", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return GradeOp(12, 1.25, 0.8), func(f *frame.Frame) *frame.Frame { return Grade(f, 12, 1.25, 0.8) }
		}},
		{"grade-extreme", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return GradeOp(-200, 3.5, 0), func(f *frame.Frame) *frame.Frame { return Grade(f, -200, 3.5, 0) }
		}},
		{"crossfade-mid", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return CrossfadeOp(b, 0.37), func(f *frame.Frame) *frame.Frame { return Crossfade(f, b, 0.37) }
		}},
		{"crossfade-zero", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return CrossfadeOp(b, 0), func(f *frame.Frame) *frame.Frame { return Crossfade(f, b, 0) }
		}},
		{"crossfade-one", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return CrossfadeOp(b, 1), func(f *frame.Frame) *frame.Frame { return Crossfade(f, b, 1) }
		}},
		{"crossfade-near-one", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return CrossfadeOp(b, 0.999), func(f *frame.Frame) *frame.Frame { return Crossfade(f, b, 0.999) }
		}},
		{"wipe-mid", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return WipeOp(b, 0.43), func(f *frame.Frame) *frame.Frame { return WipeLR(f, b, 0.43) }
		}},
		{"wipe-tiny", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			// t small enough that the even() cut collapses to 0.
			return WipeOp(b, 0.01), func(f *frame.Frame) *frame.Frame { return WipeLR(f, b, 0.01) }
		}},
		{"wipe-one", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return WipeOp(b, 1), func(f *frame.Frame) *frame.Frame { return WipeLR(f, b, 1) }
		}},
		{"overlay", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return OverlayOp(small, 10, 6, 180), func(f *frame.Frame) *frame.Frame { return Overlay(f, small, 10, 6, 180) }
		}},
		{"overlay-negative-offset", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return OverlayOp(small, -7, -3, 200), func(f *frame.Frame) *frame.Frame { return Overlay(f, small, -7, -3, 200) }
		}},
		{"overlay-clipped-right", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return OverlayOp(small, 58, 30, 255), func(f *frame.Frame) *frame.Frame { return Overlay(f, small, 58, 30, 255) }
		}},
		{"overlay-alpha-clamped", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			return OverlayOp(small, 4, 4, 999), func(f *frame.Frame) *frame.Frame { return Overlay(f, small, 4, 4, 999) }
		}},
		{"fillrect", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			r, c := Rect{X: 5, Y: 3, W: 21, H: 13}, Red
			return FillRectOp(r, c), func(f *frame.Frame) *frame.Frame {
				out := f.Clone()
				FillRect(out, r, c)
				return out
			}
		}},
		{"fillrect-clipped", func() (PointOp, func(*frame.Frame) *frame.Frame) {
			r, c := Rect{X: -4, Y: 30, W: 100, H: 100}, Blue
			return FillRectOp(r, c), func(f *frame.Frame) *frame.Frame {
				out := f.Clone()
				FillRect(out, r, c)
				return out
			}
		}},
	}
	for _, tc := range cases {
		applyUnfused(t, src, tc.name, tc.mk)
	}
}

func TestFusedChainMatchesSequentialOps(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := randomFrame(rng, 48, 32)
	b := randomFrame(rng, 48, 32)
	logo := randomFrame(rng, 16, 8)

	want := Grade(Overlay(Crossfade(src, b, 0.6), logo, 3, 5, 128), -10, 1.4, 1.2)

	ops := []PointOp{
		CrossfadeOp(b, 0.6),
		OverlayOp(logo, 3, 5, 128),
		GradeOp(-10, 1.4, 1.2),
	}
	got := frame.New(48, 32, frame.FormatYUV420)
	ApplyFused(got, src, ops)
	if !got.Equal(want) {
		t.Fatal("3-op fused chain differs from sequential standalone ops")
	}

	// In-place application (dst == src) on a copy must match too.
	inPlace := src.Clone()
	ApplyFused(inPlace, inPlace, ops)
	if !inPlace.Equal(want) {
		t.Fatal("in-place fused chain differs from sequential standalone ops")
	}
}

func TestApplyFusedShapePanics(t *testing.T) {
	src := frame.New(16, 16, frame.FormatYUV420)
	other := frame.New(32, 16, frame.FormatYUV420)
	defer func() {
		if r := recover(); r != "raster: Crossfade frames must be same shape" {
			t.Fatalf("panic = %v, want Crossfade shape message", r)
		}
	}()
	ApplyFused(frame.New(16, 16, frame.FormatYUV420), src, []PointOp{CrossfadeOp(other, 0.5)})
}

func TestApplyFusedZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randomFrame(rng, 64, 32)
	b := randomFrame(rng, 64, 32)
	dst := frame.New(64, 32, frame.FormatYUV420)
	ops := []PointOp{GradeOp(5, 1.1, 0.9), CrossfadeOp(b, 0.5), WipeOp(b, 0.25)}
	allocs := testing.AllocsPerRun(50, func() {
		ApplyFused(dst, src, ops)
	})
	if allocs != 0 {
		t.Fatalf("ApplyFused allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestScaleSameSizeReturnsSrc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randomFrame(rng, 32, 16)
	if got := Scale(src, 32, 16); got != src {
		t.Fatal("Scale to identical dimensions should return src itself")
	}
}

func TestScaleIntoMatchesScale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := randomFrame(rng, 62, 34)
	want := Scale(src, 32, 20)
	dst := frame.New(32, 20, frame.FormatYUV420)
	dst.Pix[0] = 0xEE
	ScaleInto(dst, src)
	if !dst.Equal(want) {
		t.Fatal("ScaleInto differs from Scale")
	}
	// Same-size path must be a pure copy.
	same := frame.New(62, 34, frame.FormatYUV420)
	ScaleInto(same, src)
	if !same.Equal(src) {
		t.Fatal("same-size ScaleInto differs from src")
	}
}
