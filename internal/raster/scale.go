// Package raster implements the from-scratch image operations that back
// V2V's Filter transforms: cropping, scaling, blurring and convolution,
// drawing (boxes, text), alpha overlays, grid composition, color grading,
// and animated transitions.
//
// All operations are deterministic pure functions of their inputs, so every
// engine (optimized, unoptimized, naive baseline) produces bit-identical
// pixels for the same logical edit — the property the equivalence tests
// rely on. Operations take and return YUV420 frames, the execution engine's
// native interchange format, unless documented otherwise.
package raster

import (
	"fmt"

	"v2v/internal/frame"
)

// Scale resizes src to w×h using bilinear interpolation in fixed-point
// arithmetic (16.16), per plane. w and h must be positive and even.
//
// When the target equals the source dimensions, Scale returns src itself
// (NOT a copy): callers must treat the result as aliasing src and clone
// before mutating. Every in-tree caller either only reads the result
// (blit, Zoom) or clones/blends into a fresh frame (PiP, Overlay).
func Scale(src *frame.Frame, w, h int) *frame.Frame {
	if src.Format != frame.FormatYUV420 {
		panic(fmt.Sprintf("raster: Scale wants yuv420, got %v", src.Format))
	}
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("raster: bad scale target %dx%d", w, h))
	}
	if w == src.W && h == src.H {
		return src
	}
	dst := frame.New(w, h, frame.FormatYUV420)
	sp, dp := src.Planes(), dst.Planes()
	scalePlane(sp[0], src.W, src.H, dp[0], w, h)
	scalePlane(sp[1], src.W/2, src.H/2, dp[1], w/2, h/2)
	scalePlane(sp[2], src.W/2, src.H/2, dp[2], w/2, h/2)
	return dst
}

//v2v:hotpath
func scalePlane(src []byte, sw, sh int, dst []byte, dw, dh int) {
	if sw == dw && sh == dh {
		copy(dst, src)
		return
	}
	const fpShift = 16
	const fpOne = 1 << fpShift
	// Edge-to-edge mapping with half-pixel centers.
	xRatio := (int64(sw) << fpShift) / int64(dw)
	yRatio := (int64(sh) << fpShift) / int64(dh)
	for dy := 0; dy < dh; dy++ {
		syf := (int64(dy)*yRatio + yRatio/2) - fpOne/2
		if syf < 0 {
			syf = 0
		}
		sy := int(syf >> fpShift)
		fy := int(syf & (fpOne - 1))
		sy1 := sy + 1
		if sy1 >= sh {
			sy1 = sh - 1
		}
		for dx := 0; dx < dw; dx++ {
			sxf := (int64(dx)*xRatio + xRatio/2) - fpOne/2
			if sxf < 0 {
				sxf = 0
			}
			sx := int(sxf >> fpShift)
			fx := int(sxf & (fpOne - 1))
			sx1 := sx + 1
			if sx1 >= sw {
				sx1 = sw - 1
			}
			p00 := int(src[sy*sw+sx])
			p01 := int(src[sy*sw+sx1])
			p10 := int(src[sy1*sw+sx])
			p11 := int(src[sy1*sw+sx1])
			top := p00*(fpOne-fx) + p01*fx
			bot := p10*(fpOne-fx) + p11*fx
			v := (top*(fpOne-fy) + bot*fy + (1 << (2*fpShift - 1))) >> (2 * fpShift)
			if v > 255 {
				v = 255
			}
			dst[dy*dw+dx] = byte(v)
		}
	}
}

// Crop extracts the rectangle (x, y, w, h) from src. All of x, y, w, h must
// be even (YUV420 chroma alignment) and the rectangle must lie inside src.
func Crop(src *frame.Frame, x, y, w, h int) *frame.Frame {
	if src.Format != frame.FormatYUV420 {
		panic(fmt.Sprintf("raster: Crop wants yuv420, got %v", src.Format))
	}
	if x%2 != 0 || y%2 != 0 || w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("raster: crop rect %d,%d %dx%d must be even-aligned", x, y, w, h))
	}
	if x < 0 || y < 0 || w <= 0 || h <= 0 || x+w > src.W || y+h > src.H {
		panic(fmt.Sprintf("raster: crop rect %d,%d %dx%d outside %dx%d", x, y, w, h, src.W, src.H))
	}
	dst := frame.New(w, h, frame.FormatYUV420)
	sp, dp := src.Planes(), dst.Planes()
	copyRect(sp[0], src.W, x, y, dp[0], w, h)
	copyRect(sp[1], src.W/2, x/2, y/2, dp[1], w/2, h/2)
	copyRect(sp[2], src.W/2, x/2, y/2, dp[2], w/2, h/2)
	return dst
}

func copyRect(src []byte, sw, x, y int, dst []byte, dw, dh int) {
	for row := 0; row < dh; row++ {
		copy(dst[row*dw:(row+1)*dw], src[(y+row)*sw+x:(y+row)*sw+x+dw])
	}
}

// Zoom crops the centered region covering 1/factor of each dimension and
// scales it back to the source size — the paper's Zoom(frame, percent)
// transform. factor must be >= 1; factor 1 is the identity (clone).
func Zoom(src *frame.Frame, factor float64) *frame.Frame {
	if factor < 1 {
		panic(fmt.Sprintf("raster: zoom factor %v < 1", factor))
	}
	if factor == 1 {
		return src.Clone()
	}
	cw := even(int(float64(src.W) / factor))
	ch := even(int(float64(src.H) / factor))
	if cw < 2 {
		cw = 2
	}
	if ch < 2 {
		ch = 2
	}
	x := even((src.W - cw) / 2)
	y := even((src.H - ch) / 2)
	return Scale(Crop(src, x, y, cw, ch), src.W, src.H)
}

func even(v int) int { return v &^ 1 }
