package media

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"v2v/internal/frame"
)

// fakeGOP builds n small frames totalling n*frameBytes(16x16) bytes.
func fakeGOP(n int) []*frame.Frame {
	out := make([]*frame.Frame, n)
	for i := range out {
		out[i] = frame.New(16, 16, frame.FormatGray8) // 256 bytes each
	}
	return out
}

const fakeFrameBytes = 16 * 16

func TestGOPCacheHitAfterFill(t *testing.T) {
	c := NewGOPCache(1 << 20)
	fills := 0
	get := func() ([]*frame.Frame, bool, error) {
		return c.GetOrFill("a.vmf", 0, func() ([]*frame.Frame, error) {
			fills++
			return fakeGOP(4), nil
		})
	}
	fr1, hit, err := get()
	if err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v, want miss", hit, err)
	}
	fr2, hit, err := get()
	if err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v, want hit", hit, err)
	}
	if fills != 1 {
		t.Errorf("fills = %d, want 1", fills)
	}
	if &fr1[0].Pix[0] != &fr2[0].Pix[0] {
		t.Error("hit did not return the cached frames")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 4*fakeFrameBytes {
		t.Errorf("stats = %+v", st)
	}
}

func TestGOPCacheLRUEvictionAtByteBudget(t *testing.T) {
	// Budget for exactly 3 four-frame GOPs.
	c := NewGOPCache(3 * 4 * fakeFrameBytes)
	fill := func(path string, start int) {
		t.Helper()
		if _, _, err := c.GetOrFill(path, start, func() ([]*frame.Frame, error) {
			return fakeGOP(4), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	fill("a.vmf", 0)
	fill("a.vmf", 4)
	fill("a.vmf", 8)
	// Touch GOP 0 so GOP 4 is the least recently used.
	if _, hit, _ := c.GetOrFill("a.vmf", 0, nil); !hit {
		t.Fatal("GOP 0 should be resident")
	}
	fill("a.vmf", 12) // over budget: evicts GOP 4
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 3*4*fakeFrameBytes {
		t.Errorf("stats after eviction = %+v", st)
	}
	if _, hit, _ := c.GetOrFill("a.vmf", 0, nil); !hit {
		t.Error("recently-touched GOP 0 was evicted")
	}
	refilled := false
	if _, hit, err := c.GetOrFill("a.vmf", 4, func() ([]*frame.Frame, error) {
		refilled = true
		return fakeGOP(4), nil
	}); hit || err != nil {
		t.Errorf("evicted GOP 4: hit=%v err=%v, want refill", hit, err)
	}
	if !refilled {
		t.Error("evicted GOP 4 was not refilled")
	}
}

func TestGOPCacheOversizedGOPServedNotCached(t *testing.T) {
	c := NewGOPCache(2 * fakeFrameBytes)
	fr, hit, err := c.GetOrFill("a.vmf", 0, func() ([]*frame.Frame, error) {
		return fakeGOP(4), nil // 4 frames > 2-frame budget
	})
	if err != nil || hit || len(fr) != 4 {
		t.Fatalf("oversized fill: frames=%d hit=%v err=%v", len(fr), hit, err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("oversized GOP was cached: %+v", st)
	}
}

func TestGOPCacheSingleflightDedup(t *testing.T) {
	c := NewGOPCache(1 << 20)
	var fills atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	const workers = 8
	var wg sync.WaitGroup
	hits := make([]bool, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, hit, err := c.GetOrFill("a.vmf", 0, func() ([]*frame.Frame, error) {
				fills.Add(1)
				once.Do(func() { close(started) })
				<-gate // hold the fill open so the others pile up
				return fakeGOP(4), nil
			})
			hits[i], errs[i] = hit, err
		}(i)
	}
	<-started
	close(gate)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Errorf("fill ran %d times, want 1", n)
	}
	nHits := 0
	for i := range hits {
		if errs[i] != nil {
			t.Errorf("worker %d: %v", i, errs[i])
		}
		if hits[i] {
			nHits++
		}
	}
	if nHits != workers-1 {
		t.Errorf("%d hits, want %d (everyone but the filler)", nHits, workers-1)
	}
}

func TestGOPCacheFillErrorSharedNotCached(t *testing.T) {
	c := NewGOPCache(1 << 20)
	boom := errors.New("decode failed")
	if _, _, err := c.GetOrFill("a.vmf", 0, func() ([]*frame.Frame, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("failed fill was cached: %+v", st)
	}
	// The key is released: a later fill can succeed.
	if _, hit, err := c.GetOrFill("a.vmf", 0, func() ([]*frame.Frame, error) {
		return fakeGOP(2), nil
	}); hit || err != nil {
		t.Errorf("retry after failed fill: hit=%v err=%v", hit, err)
	}
}

func TestGOPCachePanickingFillReleasesWaiters(t *testing.T) {
	c := NewGOPCache(1 << 20)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("fill panic did not propagate")
			}
		}()
		c.GetOrFill("a.vmf", 0, func() ([]*frame.Frame, error) {
			panic("fill exploded")
		})
	}()
	// The inflight entry must be gone and the key usable again.
	if _, hit, err := c.GetOrFill("a.vmf", 0, func() ([]*frame.Frame, error) {
		return fakeGOP(2), nil
	}); hit || err != nil {
		t.Errorf("after panicked fill: hit=%v err=%v", hit, err)
	}
}

func TestGOPCacheDistinctKeysDoNotCollide(t *testing.T) {
	c := NewGOPCache(1 << 20)
	for i, k := range []struct {
		path  string
		start int
	}{{"a.vmf", 0}, {"a.vmf", 24}, {"b.vmf", 0}} {
		n := i + 1
		fr, hit, err := c.GetOrFill(k.path, k.start, func() ([]*frame.Frame, error) {
			return fakeGOP(n), nil
		})
		if hit || err != nil || len(fr) != n {
			t.Fatalf("key %v: frames=%d hit=%v err=%v", k, len(fr), hit, err)
		}
	}
	if st := c.Stats(); st.Entries != 3 {
		t.Errorf("entries = %d, want 3", st.Entries)
	}
}

func TestGOPCacheSetBudgetIfUnset(t *testing.T) {
	c := NewGOPCache(0)
	if got := c.Budget(); got != FallbackGOPCacheBytes {
		t.Errorf("unset budget = %d, want fallback %d", got, FallbackGOPCacheBytes)
	}
	c.SetBudgetIfUnset(1 << 20)
	c.SetBudgetIfUnset(1 << 30) // later calls lose
	if got := c.Budget(); got != 1<<20 {
		t.Errorf("budget = %d, want first setter's %d", got, 1<<20)
	}
	c2 := NewGOPCache(512)
	c2.SetBudgetIfUnset(1 << 20) // no-op: set at construction
	if got := c2.Budget(); got != 512 {
		t.Errorf("constructed budget overridden: %d", got)
	}
}

func TestGOPCacheConcurrentMixedKeysRace(t *testing.T) {
	c := NewGOPCache(6 * 4 * fakeFrameBytes) // small: forces eviction churn
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := (g + i) % 10
				_, _, err := c.GetOrFill(fmt.Sprintf("v%d.vmf", key%2), key*4, func() ([]*frame.Frame, error) {
					return fakeGOP(4), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > c.Budget() {
		t.Errorf("resident bytes %d exceed budget %d", st.Bytes, c.Budget())
	}
}
