package media

import (
	"path/filepath"
	"testing"

	"v2v/internal/frame"
	"v2v/internal/rational"
)

func TestCursorsSequentialAndInterleaved(t *testing.T) {
	dir := t.TempDir()
	path := makeVideo(t, dir, "a.vmf", testInfo(6), 48) // keys every 6 frames
	c := NewCursors(map[string]string{"v": path}, 4)
	defer c.Close()

	// Two interleaved taps: t and t+1s.
	for i := 0; i < 24; i++ {
		at := rational.New(int64(i), 24)
		fr, err := c.FrameAt("v", at)
		if err != nil {
			t.Fatal(err)
		}
		if id, _ := frame.ReadStamp(fr); id != uint32(i) {
			t.Fatalf("tap1 frame %d stamp = %d", i, id)
		}
		fr, err = c.FrameAt("v", at.Add(rational.One))
		if err != nil {
			t.Fatal(err)
		}
		if id, _ := frame.ReadStamp(fr); id != uint32(24+i) {
			t.Fatalf("tap2 frame %d stamp = %d", i, id)
		}
	}
	stats := c.Close()
	// Each tap decodes its 24 frames once; allow slack for keyframe
	// alignment on the second tap (starts at a keyframe, so none needed).
	if stats.FramesDecoded > 48 {
		t.Errorf("decoded %d frames for 48 reads; cursors not reused", stats.FramesDecoded)
	}
}

func TestCursorsRepeatReadIsFree(t *testing.T) {
	dir := t.TempDir()
	path := makeVideo(t, dir, "a.vmf", testInfo(6), 12)
	c := NewCursors(map[string]string{"v": path}, 2)
	defer c.Close()
	at := rational.New(5, 24)
	if _, err := c.FrameAt("v", at); err != nil {
		t.Fatal(err)
	}
	before := countDecoded(c)
	for i := 0; i < 5; i++ {
		if _, err := c.FrameAt("v", at); err != nil {
			t.Fatal(err)
		}
	}
	if after := countDecoded(c); after != before {
		t.Errorf("repeat reads decoded %d extra frames", after-before)
	}
}

func countDecoded(c *Cursors) int64 {
	var n int64
	for _, rs := range c.open {
		for _, r := range rs {
			n += r.Stats().FramesDecoded
		}
	}
	return n
}

func TestCursorsPoolCapRecycles(t *testing.T) {
	dir := t.TempDir()
	path := makeVideo(t, dir, "a.vmf", testInfo(6), 48)
	c := NewCursors(map[string]string{"v": path}, 2)
	defer c.Close()
	// Three far-apart taps with a pool of two: still correct, just slower.
	offsets := []rational.Rat{rational.Zero, rational.New(16, 24), rational.New(32, 24)}
	for i := 0; i < 8; i++ {
		for k, off := range offsets {
			at := off.Add(rational.New(int64(i), 24))
			fr, err := c.FrameAt("v", at)
			if err != nil {
				t.Fatal(err)
			}
			want := uint32(16*k + i)
			if id, _ := frame.ReadStamp(fr); id != want {
				t.Fatalf("tap %d frame %d stamp = %d, want %d", k, i, id, want)
			}
		}
	}
	if got := len(c.open["v"]); got > 2 {
		t.Errorf("pool grew to %d cursors, cap 2", got)
	}
}

func TestCursorsErrors(t *testing.T) {
	dir := t.TempDir()
	path := makeVideo(t, dir, "a.vmf", testInfo(6), 12)
	c := NewCursors(map[string]string{"v": path}, 0) // default cap
	defer c.Close()
	if _, err := c.FrameAt("ghost", rational.Zero); err == nil {
		t.Error("unknown video should fail")
	}
	if _, err := c.FrameAt("v", rational.New(1, 100)); err == nil {
		t.Error("off-grid time should fail")
	}
	if _, err := c.FrameAt("v", rational.FromInt(99)); err == nil {
		t.Error("out-of-range time should fail")
	}
	c2 := NewCursors(map[string]string{"v": filepath.Join(dir, "missing.vmf")}, 1)
	defer c2.Close()
	if _, err := c2.FrameAt("v", rational.Zero); err == nil {
		t.Error("missing file should fail")
	}
}
