package media

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"v2v/internal/frame"
)

func TestStreamWriterReaderRoundTrip(t *testing.T) {
	info := testInfo(6)
	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf, info)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 14; i++ {
		fr := frame.New(info.Width, info.Height, frame.FormatYUV420)
		fr.Fill(byte(40+i), 128, 128)
		frame.Stamp(fr, uint32(i))
		if err := w.WriteFrame(fr); err != nil {
			t.Fatalf("WriteFrame(%d): %v", i, err)
		}
	}
	if w.FramesWritten() != 14 || w.Stats().FramesEncoded != 14 {
		t.Errorf("writer stats = %+v", w.Stats())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Error("double close should be nil")
	}

	r, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Info().Compatible(w.Info()) {
		t.Errorf("info = %+v", r.Info())
	}
	for i := 0; i < 14; i++ {
		fr, err := r.NextFrame()
		if err != nil {
			t.Fatalf("NextFrame(%d): %v", i, err)
		}
		if id, ok := frame.ReadStamp(fr); !ok || id != uint32(i) {
			t.Fatalf("frame %d stamp = %d,%v", i, id, ok)
		}
	}
	if _, err := r.NextFrame(); err != io.EOF {
		t.Fatalf("end of stream err = %v, want EOF", err)
	}
	if _, err := r.NextFrame(); err != io.EOF {
		t.Fatal("EOF should be sticky")
	}
}

func TestStreamSpliceAndForcedKeyframe(t *testing.T) {
	dir := t.TempDir()
	src := makeVideo(t, dir, "src.vmf", testInfo(6), 18)
	rd, _ := OpenReader(src)
	defer rd.Close()

	var buf bytes.Buffer
	w, err := NewStreamWriter(&buf, rd.Info())
	if err != nil {
		t.Fatal(err)
	}
	// Stream-copy a GOP then encode a frame: the encode must be a key.
	if err := CopyRange(w, rd, 0, 6); err != nil {
		t.Fatal(err)
	}
	fr := frame.New(160, 48, frame.FormatYUV420)
	frame.Stamp(fr, 77)
	if err := w.WriteFrame(fr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SmartCut(w, rd, 8, 18); err != nil {
		t.Fatal(err)
	}
	w.Close()

	r, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint32
	for {
		fr, err := r.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if id, ok := frame.ReadStamp(fr); ok {
			ids = append(ids, id)
		}
	}
	want := append(append(append([]uint32{}, seq(0, 6)...), 77), seq(8, 10)...)
	if !eqU32(ids, want) {
		t.Fatalf("stream stamps = %v, want %v", ids, want)
	}
}

func TestStreamReaderErrors(t *testing.T) {
	if _, err := NewStreamReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := NewStreamReader(bytes.NewReader([]byte("NOPE0000xxxx"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated mid-packet.
	info := testInfo(6)
	var buf bytes.Buffer
	w, _ := NewStreamWriter(&buf, info)
	fr := frame.New(info.Width, info.Height, frame.FormatYUV420)
	w.WriteFrame(fr)
	raw := buf.Bytes()[:buf.Len()-3] // cut into the packet body
	r, err := NewStreamReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.NextPacket(); err == nil {
		t.Error("truncated packet should fail")
	}
}

func TestStreamWriterRejectsBadInfo(t *testing.T) {
	var buf bytes.Buffer
	bad := testInfo(6)
	bad.Codec = "H264"
	if _, err := NewStreamWriter(&buf, bad); err == nil {
		t.Error("unknown codec should fail")
	}
	odd := testInfo(6)
	odd.Width = 33
	if _, err := NewStreamWriter(&buf, odd); err == nil {
		t.Error("odd width should fail")
	}
}

// TestStreamTrailerTyped asserts the end-of-stream contract: a Closed
// stream carries an "ok" trailer with the packet count, an AbortWithError
// stream carries an "error" trailer the reader surfaces as ErrStreamFailed,
// and a stream that just stops reads as ErrTruncatedStream.
func TestStreamTrailerTyped(t *testing.T) {
	info := testInfo(6)
	writeFrames := func(w *StreamWriter, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			fr := frame.New(info.Width, info.Height, frame.FormatYUV420)
			frame.Stamp(fr, uint32(i))
			if err := w.WriteFrame(fr); err != nil {
				t.Fatal(err)
			}
		}
	}
	drain := func(r *StreamReader) error {
		for {
			if _, _, err := r.NextPacket(); err != nil {
				return err
			}
		}
	}

	// Clean close: ok trailer, packet count echoed, sticky io.EOF.
	var ok bytes.Buffer
	w, _ := NewStreamWriter(&ok, info)
	writeFrames(w, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewStreamReader(&ok)
	if err != nil {
		t.Fatal(err)
	}
	if err := drain(r); !errors.Is(err, io.EOF) {
		t.Fatalf("clean stream end = %v, want io.EOF", err)
	}
	tr, has := r.Trailer()
	if !has || tr.Status != "ok" || tr.Packets != 3 {
		t.Fatalf("trailer = %+v,%v; want ok with 3 packets", tr, has)
	}
	if _, _, err := r.NextPacket(); !errors.Is(err, io.EOF) {
		t.Error("EOF should stay sticky after the trailer")
	}

	// Producer failure after the header: typed error trailer with message.
	var failed bytes.Buffer
	w, _ = NewStreamWriter(&failed, info)
	writeFrames(w, 2)
	if err := w.AbortWithError(errors.New("boom: disk on fire")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Error("close after abort should be nil")
	}
	r, err = NewStreamReader(&failed)
	if err != nil {
		t.Fatal(err)
	}
	err = drain(r)
	if !errors.Is(err, ErrStreamFailed) {
		t.Fatalf("failed stream end = %v, want ErrStreamFailed", err)
	}
	if !strings.Contains(err.Error(), "disk on fire") {
		t.Errorf("error trailer lost the producer message: %v", err)
	}
	if tr, has := r.Trailer(); !has || tr.Status != "error" || tr.Packets != 2 {
		t.Errorf("error trailer = %+v,%v", tr, has)
	}

	// Silent truncation (Abort, or a cut connection): typed truncation error.
	var cut bytes.Buffer
	w, _ = NewStreamWriter(&cut, info)
	writeFrames(w, 2)
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	r, err = NewStreamReader(&cut)
	if err != nil {
		t.Fatal(err)
	}
	if err := drain(r); !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("truncated stream end = %v, want ErrTruncatedStream", err)
	}
	if _, has := r.Trailer(); has {
		t.Error("truncated stream should have no trailer")
	}

	// Truncation inside a packet body is typed too.
	var mid bytes.Buffer
	w, _ = NewStreamWriter(&mid, info)
	writeFrames(w, 1)
	r, err = NewStreamReader(bytes.NewReader(mid.Bytes()[:mid.Len()-3]))
	if err != nil {
		t.Fatal(err)
	}
	if err := drain(r); !errors.Is(err, ErrTruncatedStream) {
		t.Fatalf("mid-packet truncation = %v, want ErrTruncatedStream", err)
	}
}

// TestStreamLegacyZeroTrailer keeps pre-trailer streams readable: a
// zero-length packet header is still a clean end of stream.
func TestStreamLegacyZeroTrailer(t *testing.T) {
	info := testInfo(6)
	var buf bytes.Buffer
	w, _ := NewStreamWriter(&buf, info)
	fr := frame.New(info.Width, info.Height, frame.FormatYUV420)
	if err := w.WriteFrame(fr); err != nil {
		t.Fatal(err)
	}
	w.Abort()                                 // no typed trailer
	buf.Write([]byte{0, 0, 0, 0, flagNonKey}) // legacy zero-length marker
	r, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.NextPacket(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.NextPacket(); !errors.Is(err, io.EOF) {
		t.Fatalf("legacy marker end = %v, want io.EOF", err)
	}
	if _, has := r.Trailer(); has {
		t.Error("legacy stream should report no trailer")
	}
}
