package media

import (
	"fmt"
	"sync"
	"testing"
)

// fakeStore is a minimal LRU-ish client store for arbiter tests: entries
// evict oldest-first via the evict callback.
type fakeStore struct {
	mu      sync.Mutex
	name    string
	budget  int64
	sizes   []int64
	client  *BudgetClient
	evicted int
}

func newFakeStore(a *Arbiter, name string, budget int64) *fakeStore {
	s := &fakeStore{name: name, budget: budget}
	s.client = a.Register(name, func() int64 { return budget }, s.evictBytes)
	return s
}

func (s *fakeStore) evictBytes(need int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var freed int64
	for freed < need && len(s.sizes) > 0 {
		freed += s.sizes[0]
		s.sizes = s.sizes[1:]
		s.evicted++
	}
	return freed
}

// insert reserves and, when granted, records the entry.
func (s *fakeStore) insert(key string, b int64) bool {
	if !s.client.Reserve(key, b) {
		return false
	}
	s.mu.Lock()
	s.sizes = append(s.sizes, b)
	s.mu.Unlock()
	return true
}

// insertRetry models a key requested again after a doorkeeper denial: one
// retry, which counts as the key's second sighting.
func (s *fakeStore) insertRetry(key string, b int64) bool {
	if s.insert(key, b) {
		return true
	}
	return s.insert(key, b)
}

func (s *fakeStore) bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, b := range s.sizes {
		t += b
	}
	return t
}

// The arbiter must never let the combined charged bytes exceed the total,
// whatever mix of admissions and evictions gets there.
func TestArbiterTotalNeverExceeded(t *testing.T) {
	a := NewArbiter(1000)
	s1 := newFakeStore(a, "one", 1000)
	s2 := newFakeStore(a, "two", 1000)
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%d", i)
		// Retried inserts pass the doorkeeper under pressure.
		s1.insertRetry("a"+k, 90)
		s2.insertRetry("b"+k, 70)
		if u, tot := a.Used(), a.Total(); u > tot {
			t.Fatalf("used %d exceeds total %d after round %d", u, tot, i)
		}
	}
	if got, want := s1.bytes()+s2.bytes(), a.Used(); got != want {
		t.Errorf("store bytes %d != arbiter ledger %d", got, want)
	}
	// An entry bigger than the whole budget is always refused.
	if s1.insert("huge", 2000) {
		t.Error("entry larger than the total budget admitted")
	}
}

// One-pass scans (every key seen for the first time) must not evict
// resident data: the first over-budget request for a novel key is denied,
// its second request is admitted.
func TestArbiterDoorkeeperScanResistance(t *testing.T) {
	a := NewArbiter(100)
	s := newFakeStore(a, "c", 100)
	if !s.insert("hot1", 40) || !s.insert("hot2", 40) {
		t.Fatal("under-budget inserts denied")
	}
	// 20 bytes of headroom remain; a 40-byte novel key needs eviction.
	if s.insert("scan", 40) {
		t.Error("novel key evicted resident data on first sight")
	}
	if s.evicted != 0 {
		t.Errorf("scan evicted %d resident entries", s.evicted)
	}
	if st := a.Stats(); st.Denied == 0 {
		t.Error("denied admission not counted")
	}
	// Second sighting: now it may evict its way in.
	if !s.insert("scan", 40) {
		t.Error("twice-requested key still denied")
	}
	if s.evicted == 0 {
		t.Error("admitted key evicted nothing, but the budget was full")
	}
	if u, tot := a.Used(), a.Total(); u > tot {
		t.Errorf("used %d exceeds total %d", u, tot)
	}
}

// Under contention, eviction stops at each client's protected floor (half
// its own budget): one aggressive client can squeeze the other down to its
// floor but never to zero.
func TestArbiterFairnessFloors(t *testing.T) {
	a := NewArbiter(100)
	victim := newFakeStore(a, "victim", 80) // floor 40
	bully := newFakeStore(a, "bully", 80)   // floor 40
	for i := 0; i < 8; i++ {
		victim.insertRetry(fmt.Sprintf("v%d", i), 10)
	}
	if got := victim.bytes(); got != 80 {
		t.Fatalf("victim resident bytes = %d, want 80", got)
	}
	// The bully hammers the shared budget; retried inserts pass the
	// doorkeeper.
	for i := 0; i < 20; i++ {
		bully.insertRetry(fmt.Sprintf("b%d", i), 10)
	}
	if u, tot := a.Used(), a.Total(); u > tot {
		t.Fatalf("used %d exceeds total %d", u, tot)
	}
	if got := victim.bytes(); got < 40 {
		t.Errorf("victim squeezed to %d bytes, below its 40-byte floor", got)
	}
	if got := bully.bytes(); got == 0 {
		t.Error("bully ended with nothing despite free floor headroom")
	}
	st := a.Stats()
	if st.Client["victim"] != victim.bytes() || st.Client["bully"] != bully.bytes() {
		t.Errorf("ledger %v disagrees with stores (victim %d, bully %d)",
			st.Client, victim.bytes(), bully.bytes())
	}
}

// An unset total defaults to the sum of the registered clients' budgets.
func TestArbiterUnsetTotalSumsClientBudgets(t *testing.T) {
	a := NewArbiter(0)
	newFakeStore(a, "x", 300)
	newFakeStore(a, "y", 200)
	if got := a.Total(); got != 500 {
		t.Errorf("Total = %d, want 500", got)
	}
	a.SetTotalIfUnset(400)
	if got := a.Total(); got != 400 {
		t.Errorf("Total after SetTotalIfUnset = %d, want 400", got)
	}
	a.SetTotalIfUnset(999) // first caller wins
	if got := a.Total(); got != 400 {
		t.Errorf("Total overwritten to %d", got)
	}
}

// Release returns bytes to the pool.
func TestArbiterRelease(t *testing.T) {
	a := NewArbiter(100)
	s := newFakeStore(a, "r", 100)
	if !s.insert("k", 60) {
		t.Fatal("insert denied")
	}
	s.client.Release(60)
	if got := a.Used(); got != 0 {
		t.Errorf("Used after release = %d, want 0", got)
	}
	s.client.Release(10) // over-release clamps at zero
	if got := a.Used(); got != 0 {
		t.Errorf("Used after over-release = %d, want 0", got)
	}
}

// Shrinking the budget under memory pressure must evict immediately, and
// restoring the factor must restore the full budget for new admissions —
// the PR 4 follow-on the pressure monitor drives.
func TestArbiterPressureShrinkAndRecover(t *testing.T) {
	a := NewArbiter(1000)
	s := newFakeStore(a, "gop", 1000)
	for i := 0; i < 10; i++ {
		if !s.insertRetry(fmt.Sprintf("k%d", i), 100) {
			t.Fatalf("insert %d refused under budget", i)
		}
	}
	if got := a.Used(); got != 1000 {
		t.Fatalf("used = %d, want 1000", got)
	}

	// Quarter the budget: usage must drop to the new effective total
	// immediately, not on the next insertion.
	a.SetPressureFactor(0.25)
	st := a.Stats()
	if st.Total != 250 {
		t.Errorf("pressured total = %d, want 250", st.Total)
	}
	if st.PressureFactor != 0.25 {
		t.Errorf("stats factor = %v, want 0.25", st.PressureFactor)
	}
	if st.Used > 250 {
		t.Errorf("used = %d after shrink, want <= 250", st.Used)
	}
	if s.evicted == 0 {
		t.Error("no entries evicted by the shrink")
	}

	// Recover: the full total returns and admissions regrow to it.
	a.SetPressureFactor(1)
	if got := a.Total(); got != 1000 {
		t.Fatalf("recovered total = %d, want 1000", got)
	}
	for i := 10; i < 18; i++ {
		s.insertRetry(fmt.Sprintf("k%d", i), 100)
	}
	if got := a.Used(); got <= 250 {
		t.Errorf("used = %d after recovery, want growth past the pressured cap", got)
	}
	if got := a.Used(); got > 1000 {
		t.Errorf("used = %d, exceeds recovered total", got)
	}
}

// The shrink must respect the pressure-scaled fairness floors: a client at
// its scaled floor is not evicted below it.
func TestArbiterPressureRespectsScaledFloors(t *testing.T) {
	a := NewArbiter(1000)
	s1 := newFakeStore(a, "gop", 500)
	s2 := newFakeStore(a, "result", 500)
	for i := 0; i < 5; i++ {
		s1.insertRetry(fmt.Sprintf("g%d", i), 100)
		s2.insertRetry(fmt.Sprintf("r%d", i), 100)
	}
	a.SetPressureFactor(0.5)
	// Scaled floors are 500/2 * 0.5 = 125 each; neither client may be
	// evicted below that even though total used (1000) exceeds the new
	// effective total (500).
	if got := s1.client.Used(); got < 100 {
		t.Errorf("gop client evicted to %d, below its scaled floor", got)
	}
	if got := s2.client.Used(); got < 100 {
		t.Errorf("result client evicted to %d, below its scaled floor", got)
	}
	if got := a.Used(); got > 1000 {
		t.Errorf("used = %d grew during shrink", got)
	}
	a.SetPressureFactor(1)
}
