package media

import (
	"hash/fnv"
	"sync"

	"v2v/internal/obs"
)

var arbiterDenied = obs.Default().Counter("v2v_cache_admission_denied_total",
	"Cache insertions refused by the shared budget arbiter's scan-resistant admission policy.")

// arbiterDoorkeeperKeys bounds one doorkeeper generation; two generations
// are kept, so the effective history window is up to twice this.
const arbiterDoorkeeperKeys = 1 << 16

// Arbiter coordinates one shared byte budget across several caches (the
// decoded-GOP cache and the encoded-result cache), replacing their
// independent hard LRU caps with a global limit that degrades gracefully
// under concurrent heavy queries. Two policies, both applied only when an
// insertion would force eviction (a cache under budget admits freely, so
// steady-state warm traffic pays nothing):
//
//   - Scan resistance. A TinyLFU-style doorkeeper — a two-generation
//     approximate set of recently requested keys — must have seen the key
//     before it is allowed to evict resident data. A one-pass scan
//     (every key new) therefore cannot flush the working set; a key
//     requested twice is admitted on its second miss.
//
//   - Fairness. Eviction victims are chosen by largest overage above a
//     protected floor (half the client cache's configured budget), and a
//     client at or below its floor is never evicted from. Two heavy
//     queries competing for the shared budget can squeeze each other down
//     to their floors but never to zero.
//
// Lock ordering: the arbiter's mutex is acquired before any client
// cache's mutex (budget and evict callbacks take the cache lock), so
// caches must never call into the arbiter while holding their own lock.
type Arbiter struct {
	mu      sync.Mutex
	total   int64
	clients []*BudgetClient

	// pressureFactor scales the effective total and the per-client
	// protected floors under memory pressure: 1 (or 0, the unset zero
	// value) is the full budget, smaller values shrink it. Set by the
	// admission subsystem's pressure monitor; shrinking evicts
	// immediately rather than waiting for the next insertion.
	pressureFactor float64

	// Doorkeeper generations: cur fills, prev is the previous window.
	cur, prev map[uint64]struct{}

	denied int64
}

// NewArbiter returns an arbiter enforcing totalBytes across its clients.
// totalBytes <= 0 leaves the total unset: it then defaults to the sum of
// the registered caches' own budgets (so attaching caches to an unset
// arbiter bounds them exactly as their individual caps would have,
// globally instead of independently).
func NewArbiter(totalBytes int64) *Arbiter {
	return &Arbiter{
		total: totalBytes,
		cur:   make(map[uint64]struct{}),
		prev:  make(map[uint64]struct{}),
	}
}

// SetTotalIfUnset installs totalBytes as the shared budget if none was
// configured at construction. The first caller wins.
func (a *Arbiter) SetTotalIfUnset(totalBytes int64) {
	if totalBytes <= 0 {
		return
	}
	a.mu.Lock()
	if a.total <= 0 {
		a.total = totalBytes
	}
	a.mu.Unlock()
}

// Total returns the effective shared byte budget.
func (a *Arbiter) Total() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.effectiveTotalLocked()
}

func (a *Arbiter) effectiveTotalLocked() int64 {
	t := a.total
	if t <= 0 {
		for _, c := range a.clients {
			t += c.budget()
		}
		if t <= 0 {
			t = FallbackGOPCacheBytes
		}
	}
	if f := a.factorLocked(); f < 1 {
		t = int64(float64(t) * f)
	}
	return t
}

// factorLocked returns the pressure factor with the unset zero value
// reading as 1 (no pressure).
func (a *Arbiter) factorLocked() float64 {
	if a.pressureFactor <= 0 || a.pressureFactor > 1 {
		return 1
	}
	return a.pressureFactor
}

// floorLocked is the client's protected eviction floor: half its own
// budget, pressure-scaled so shrunken totals stay reachable by eviction.
func (a *Arbiter) floorLocked(c *BudgetClient) int64 {
	return int64(float64(c.budget()/2) * a.factorLocked())
}

// Used returns the bytes currently charged across all clients.
func (a *Arbiter) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usedLocked()
}

func (a *Arbiter) usedLocked() int64 {
	var u int64
	for _, c := range a.clients {
		u += c.used
	}
	return u
}

// ArbiterStats snapshots the arbiter's state for stats output and tests.
type ArbiterStats struct {
	Total  int64            `json:"total"`
	Used   int64            `json:"used"`
	Denied int64            `json:"denied"` // admissions refused by the doorkeeper
	Client map[string]int64 `json:"client"` // per-client charged bytes
	// PressureFactor is the current memory-pressure budget multiplier
	// (1 = full budget); Total above is already scaled by it.
	PressureFactor float64 `json:"pressure_factor"`
}

// Stats snapshots the arbiter.
func (a *Arbiter) Stats() ArbiterStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := ArbiterStats{
		Total:          a.effectiveTotalLocked(),
		Used:           a.usedLocked(),
		Denied:         a.denied,
		Client:         make(map[string]int64, len(a.clients)),
		PressureFactor: a.factorLocked(),
	}
	for _, c := range a.clients {
		s.Client[c.name] = c.used
	}
	return s
}

// SetPressureFactor scales the shared budget by f (clamped to [0,1]; 1
// restores the full budget). Shrinking the budget evicts immediately:
// over-floor clients' LRU tails are trimmed until usage fits the new
// total, using the same unlock-evict-relock discipline as Reserve (lock
// order is always arbiter -> cache). Growth takes effect lazily — caches
// simply regain admission headroom.
func (a *Arbiter) SetPressureFactor(f float64) {
	if f != f { // NaN
		return
	}
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	a.mu.Lock()
	if f == 0 {
		// Full close would make the effective total 0 and every Reserve
		// fail; clamp to the smallest meaningful shrink instead.
		f = 0.05
	}
	a.pressureFactor = f
	for {
		need := a.usedLocked() - a.effectiveTotalLocked()
		if need <= 0 {
			break
		}
		v := a.victimLocked()
		if v == nil {
			break // every client at its (scaled) floor
		}
		// Ask only for the victim's over-floor share; the loop repicks if
		// more is needed, so one bulk shrink cannot strip a single client
		// below its protected floor.
		ask := need
		if over := v.used - a.floorLocked(v); ask > over {
			ask = over
		}
		a.mu.Unlock()
		freed := v.evict(ask)
		a.mu.Lock()
		v.used -= freed
		if v.used < 0 {
			v.used = 0
		}
		if freed <= 0 {
			break
		}
	}
	a.mu.Unlock()
}

// BudgetClient is one cache's account with a shared arbiter.
type BudgetClient struct {
	a    *Arbiter
	name string
	// budget returns the cache's own configured budget; half of it is the
	// client's protected floor, and unset arbiter totals sum it.
	budget func() int64
	// evict frees at least need bytes from the cache's LRU tail (as many
	// as it can), returning the bytes actually freed. It must not call
	// back into the arbiter; the arbiter adjusts the ledger itself.
	evict func(need int64) int64
	used  int64
}

// Register adds a cache to the arbiter. Call once per cache at setup,
// before the cache serves traffic.
func (a *Arbiter) Register(name string, budget func() int64, evict func(need int64) int64) *BudgetClient {
	c := &BudgetClient{a: a, name: name, budget: budget, evict: evict}
	a.mu.Lock()
	a.clients = append(a.clients, c)
	a.mu.Unlock()
	return c
}

func doorkeeperHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

func (a *Arbiter) seenLocked(kh uint64) bool {
	if _, ok := a.cur[kh]; ok {
		return true
	}
	_, ok := a.prev[kh]
	return ok
}

func (a *Arbiter) noteLocked(kh uint64) {
	if len(a.cur) >= arbiterDoorkeeperKeys {
		a.prev, a.cur = a.cur, make(map[uint64]struct{}, arbiterDoorkeeperKeys/4)
	}
	a.cur[kh] = struct{}{}
}

// victimLocked picks the client with the largest overage above its
// protected floor, or nil when every client is at or below its floor.
func (a *Arbiter) victimLocked() *BudgetClient {
	var best *BudgetClient
	var bestOver int64
	for _, c := range a.clients {
		if over := c.used - a.floorLocked(c); over > bestOver {
			best, bestOver = c, over
		}
	}
	return best
}

// Reserve asks to charge bytes for inserting key into the client's cache.
// Under budget it always grants. Over budget, the doorkeeper refuses keys
// never requested before (scan resistance), then LRU tails of over-floor
// clients are evicted until the reservation fits. A false return means
// the entry must not be cached (the filled value is still served to the
// caller — admission never fails the request, only the memoization).
func (c *BudgetClient) Reserve(key string, bytes int64) bool {
	a := c.a
	kh := doorkeeperHash(key)
	a.mu.Lock()
	total := a.effectiveTotalLocked()
	if bytes <= 0 || bytes > total {
		a.mu.Unlock()
		return false
	}
	seen := a.seenLocked(kh)
	a.noteLocked(kh)
	if a.usedLocked()+bytes <= total {
		c.used += bytes
		a.mu.Unlock()
		return true
	}
	if !seen {
		a.denied++
		a.mu.Unlock()
		arbiterDenied.Inc()
		return false
	}
	for {
		need := a.usedLocked() + bytes - total
		if need <= 0 {
			break
		}
		v := a.victimLocked()
		if v == nil {
			// Every client is at its floor: the floors don't leave room.
			a.denied++
			a.mu.Unlock()
			arbiterDenied.Inc()
			return false
		}
		// Evict outside the arbiter lock (the callback takes the cache
		// lock; lock order is always arbiter -> cache).
		a.mu.Unlock()
		freed := v.evict(need)
		a.mu.Lock()
		v.used -= freed
		if v.used < 0 {
			v.used = 0
		}
		if freed <= 0 {
			// No progress (cache emptied concurrently); give up rather
			// than spin.
			a.denied++
			a.mu.Unlock()
			arbiterDenied.Inc()
			return false
		}
	}
	c.used += bytes
	a.mu.Unlock()
	return true
}

// Release returns bytes to the shared budget (an entry removed outside
// arbiter-driven eviction).
func (c *BudgetClient) Release(bytes int64) {
	c.a.mu.Lock()
	c.used -= bytes
	if c.used < 0 {
		c.used = 0
	}
	c.a.mu.Unlock()
}

// Used returns the bytes currently charged to this client.
func (c *BudgetClient) Used() int64 {
	c.a.mu.Lock()
	defer c.a.mu.Unlock()
	return c.used
}
