// Package media ties the container and codec into a frame-level reader and
// writer, and implements the two domain-specific editing primitives from
// the paper's §III-D: stream copying (CopyRange) and smart cuts (SmartCut).
//
// A Reader decodes frames with random access by seeking to the keyframe at
// or before the target and rolling forward — the partial group-of-pictures
// decode the paper borrows from Scanner. A Writer encodes frames, and can
// also splice raw packets from a compatible stream without re-encoding;
// after a splice the next encoded frame is forced to be a keyframe so the
// output stream stays decodable.
package media

import (
	"errors"
	"fmt"
	"time"

	"v2v/internal/codec"
	"v2v/internal/container"
	"v2v/internal/frame"
	"v2v/internal/obs"
	"v2v/internal/rational"
)

// Stats counts the work a reader/writer performed. The benchmark harness
// reads these to report decoded/encoded/copied volumes per plan.
type Stats struct {
	FramesDecoded int64
	FramesEncoded int64
	PacketsCopied int64
	BytesCopied   int64
	// FramesConcealed counts corrupt or undecodable packets that were
	// replaced by holding the last good frame (concealment mode only).
	FramesConcealed int64
	// GOPCacheHits and GOPCacheMisses count shared decoded-GOP cache
	// lookups made on a cursor pool's behalf: a hit served the frame with
	// no decode at all, a miss paid one whole-GOP fill (whose decodes are
	// counted in FramesDecoded as usual). Zero unless a GOPCache is wired
	// in via Cursors.SetGOPCache.
	GOPCacheHits   int64
	GOPCacheMisses int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.FramesDecoded += o.FramesDecoded
	s.FramesEncoded += o.FramesEncoded
	s.PacketsCopied += o.PacketsCopied
	s.BytesCopied += o.BytesCopied
	s.FramesConcealed += o.FramesConcealed
	s.GOPCacheHits += o.GOPCacheHits
	s.GOPCacheMisses += o.GOPCacheMisses
}

// Reader provides random access to the frames of a VMF file.
// Not safe for concurrent use; open one Reader per goroutine.
type Reader struct {
	c       *container.Reader
	dec     *codec.Decoder
	next    int // packet index the decoder will consume next; -1 if unset
	last    *frame.Frame
	conceal bool
	stats   Stats
}

// OpenReader opens path for frame-level reading.
func OpenReader(path string) (*Reader, error) {
	c, err := container.Open(path)
	if err != nil {
		return nil, err
	}
	info := c.Info()
	if info.Codec != codec.FourCC {
		c.Close()
		return nil, fmt.Errorf("media: unsupported codec %q", info.Codec)
	}
	dec, err := codec.NewDecoder(codec.Config{
		Width: info.Width, Height: info.Height,
		Quality: info.Quality, GOP: info.GOP, Level: info.Level,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	return &Reader{c: c, dec: dec, next: -1}, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.c.Close() }

// Info returns the stream description.
func (r *Reader) Info() container.StreamInfo { return r.c.Info() }

// Container exposes the underlying packet-level reader (used by the copy
// and smart-cut paths, and by probing tools).
func (r *Reader) Container() *container.Reader { return r.c }

// NumFrames returns the number of frames in the stream.
func (r *Reader) NumFrames() int { return r.c.NumPackets() }

// Stats returns the cumulative decode statistics.
func (r *Reader) Stats() Stats { return r.stats }

// SetConceal switches the reader between fail-fast (default) and
// error-concealment mode. Concealing, a corrupt or undecodable packet is
// replaced by holding the last good frame (a mid-gray frame if the stream
// has produced none yet), counted in Stats.FramesConcealed — the behaviour
// of production decoders facing bitstream damage.
func (r *Reader) SetConceal(on bool) { r.conceal = on }

// SetRecorder attributes the reader's decode work to a per-request
// recorder (forwarded to the underlying codec decoder).
func (r *Reader) SetRecorder(rec *obs.Recorder) { r.dec.SetRecorder(rec) }

// Concealable reports whether err is in the class concealment absorbs:
// payload corruption detected by the container CRC, undecodable
// bitstreams, or a missing reference after a damaged keyframe. Structural
// damage (unreadable header/index) and real I/O failures stay fatal.
func Concealable(err error) bool {
	return errors.Is(err, container.ErrCorruptPacket) ||
		errors.Is(err, codec.ErrUndecodable) ||
		errors.Is(err, codec.ErrNeedKeyframe)
}

// concealedFrame returns the frame substituted for an unrecoverable
// packet: the last good frame, or mid-gray when none exists.
func (r *Reader) concealedFrame() *frame.Frame {
	if r.last != nil {
		return r.last
	}
	info := r.c.Info()
	fr := frame.New(info.Width, info.Height, frame.FormatYUV420)
	for i := range fr.Pix {
		fr.Pix[i] = 128
	}
	return fr
}

// FrameAtIndex returns the decoded frame for packet index i. Sequential
// access (i, i+1, ...) decodes each packet exactly once; random access
// restarts from the keyframe at or before i.
func (r *Reader) FrameAtIndex(i int) (*frame.Frame, error) {
	if i < 0 || i >= r.c.NumPackets() {
		return nil, fmt.Errorf("media: frame %d out of range [0,%d)", i, r.c.NumPackets())
	}
	if r.next >= 0 && i == r.next-1 && r.last != nil {
		return r.last, nil
	}
	// Seek policy: restart from the keyframe at or before the target when
	// the decoder has no state, sits past the target, or would roll
	// forward through a keyframe anyway (decoding the gap would be pure
	// waste).
	k, ok := r.c.KeyframeAtOrBefore(i)
	if !ok {
		return nil, errors.New("media: no keyframe at or before target")
	}
	if r.next < 0 || i < r.next || k > r.next {
		r.dec.Reset()
		r.next = k
	}
	for r.next <= i {
		data, err := r.c.ReadPacket(r.next)
		if err == nil {
			var fr *frame.Frame
			if fr, err = r.dec.Decode(data); err == nil {
				r.stats.FramesDecoded++
				r.last = fr
			} else {
				err = fmt.Errorf("media: decode packet %d: %w", r.next, err)
			}
		}
		if err != nil {
			if !r.conceal || !Concealable(err) {
				return nil, err
			}
			// Hold the last good frame in place of the damaged packet; the
			// decoder keeps its previous reference, so later P-frames decode
			// against a stale prediction (drift) until the next keyframe —
			// degraded output rather than a dead synthesis.
			r.last = r.concealedFrame()
			r.stats.FramesConcealed++
		}
		r.next++
	}
	return r.last, nil
}

// FrameAt returns the frame whose presentation time is exactly t.
func (r *Reader) FrameAt(t rational.Rat) (*frame.Frame, error) {
	i, err := r.IndexOfTime(t)
	if err != nil {
		return nil, err
	}
	return r.FrameAtIndex(i)
}

// IndexOfTime maps an exact frame time to its packet index.
func (r *Reader) IndexOfTime(t rational.Rat) (int, error) {
	pts, exact := r.c.Info().PTSOf(t)
	if !exact {
		return 0, fmt.Errorf("media: time %v is not on a frame boundary", t)
	}
	i, ok := r.c.IndexOfPTS(pts)
	if !ok {
		return 0, fmt.Errorf("media: no frame at time %v (pts %d)", t, pts)
	}
	return i, nil
}

// NextIndex returns the packet index a sequential read would decode next,
// or -1 before the first read. Cursor pools use this to match access
// patterns to decoder states.
func (r *Reader) NextIndex() int { return r.next }

// IndexRangeFor returns the packet index range [i0, i1) covering the
// half-open time interval iv, intersected with what the stream holds.
func (r *Reader) IndexRangeFor(iv rational.Interval) (i0, i1 int) {
	info := r.c.Info()
	n := r.c.NumPackets()
	lo, _ := info.PTSOf(iv.Lo)
	if exactLo := info.TimeOf(lo); exactLo.Less(iv.Lo) {
		lo++
	}
	hi, _ := info.PTSOf(iv.Hi)
	if exactHi := info.TimeOf(hi); exactHi.Less(iv.Hi) {
		hi++
	}
	first := int64(0)
	if n > 0 {
		first = r.c.Record(0).PTS
	}
	i0 = clamp(int(lo-first), 0, n)
	i1 = clamp(int(hi-first), 0, n)
	if i1 < i0 {
		i1 = i0
	}
	return i0, i1
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Writer encodes frames (or splices packets) into a VMF file. Not safe for
// concurrent use.
type Writer struct {
	c        *container.Writer
	enc      *codec.Encoder
	pts      int64
	spliced  bool // a raw packet was written since the last encode
	stats    Stats
	rec      *obs.Recorder
	closed   bool
	closeErr error
}

// CreateWriter opens path for writing a stream described by info. The
// encoder is configured from the info's codec parameters.
func CreateWriter(path string, info container.StreamInfo) (*Writer, error) {
	if info.Codec == "" {
		info.Codec = codec.FourCC
	}
	if info.Codec != codec.FourCC {
		return nil, fmt.Errorf("media: unsupported codec %q", info.Codec)
	}
	enc, err := codec.NewEncoder(codec.Config{
		Width: info.Width, Height: info.Height,
		Quality: info.Quality, GOP: info.GOP, Level: info.Level,
	})
	if err != nil {
		return nil, err
	}
	// Persist the defaulted parameters so readers build matching decoders.
	ec := enc.Config()
	info.Quality, info.GOP, info.Level = ec.Quality, ec.GOP, ec.Level
	c, err := container.Create(path, info)
	if err != nil {
		return nil, err
	}
	return &Writer{c: c, enc: enc}, nil
}

// Info returns the stream description being written.
func (w *Writer) Info() container.StreamInfo { return w.c.Info() }

// Stats returns the cumulative encode/copy statistics.
func (w *Writer) Stats() Stats { return w.stats }

// FramesWritten returns the number of frames (encoded or copied) so far.
func (w *Writer) FramesWritten() int64 { return w.pts }

// SetRecorder attributes the writer's encode and packet-copy work to a
// per-request recorder (encodes are forwarded to the codec encoder).
func (w *Writer) SetRecorder(rec *obs.Recorder) {
	w.rec = rec
	w.enc.SetRecorder(rec)
}

// WriteFrame encodes fr as the next frame of the stream.
func (w *Writer) WriteFrame(fr *frame.Frame) error {
	if w.closed {
		return errors.New("media: writer closed")
	}
	if w.spliced {
		// The encoder's prediction state does not match the copied
		// packets; restart the GOP.
		w.enc.ForceKeyframe()
		w.spliced = false
	}
	pkt, err := w.enc.Encode(fr)
	if err != nil {
		return err
	}
	err = w.c.WritePacket(w.pts, pkt.Key, pkt.Data)
	w.enc.Recycle(pkt) // the container wrote the bytes; reuse the buffer
	if err != nil {
		return err
	}
	w.stats.FramesEncoded++
	w.pts++
	return nil
}

// WriteRawPacket splices an already-encoded packet into the stream. The
// caller is responsible for packet ordering starting at a keyframe (the
// container enforces that the stream itself starts with one).
func (w *Writer) WriteRawPacket(key bool, data []byte) error {
	if w.closed {
		return errors.New("media: writer closed")
	}
	copyStart := time.Now()
	if err := w.c.WritePacket(w.pts, key, data); err != nil {
		return err
	}
	w.rec.StageObserve(obs.StageCopy, 1, int64(len(data)), time.Since(copyStart))
	w.spliced = true
	w.stats.PacketsCopied++
	w.stats.BytesCopied += int64(len(data))
	w.pts++
	return nil
}

// WriteEncodedFrame splices a packet that was encoded on the writer's
// behalf by an external encoder (parallel shards encode their chunks with
// their own encoder instances). It counts as an encode, not a copy.
func (w *Writer) WriteEncodedFrame(key bool, data []byte) error {
	if w.closed {
		return errors.New("media: writer closed")
	}
	if err := w.c.WritePacket(w.pts, key, data); err != nil {
		return err
	}
	w.spliced = true
	w.stats.FramesEncoded++
	w.pts++
	return nil
}

// Close finalizes the file (writing the index and renaming the temp file
// into place).
func (w *Writer) Close() error {
	if w.closed {
		return w.closeErr
	}
	w.closed = true
	w.closeErr = w.c.Close()
	return w.closeErr
}

// Abort discards the in-progress file without ever creating the target
// path. A no-op after a successful Close.
func (w *Writer) Abort() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.closeErr = errors.New("media: writer aborted")
	return w.c.Abort()
}

// CanSplice reports whether packets read from src can be written into dst
// without re-encoding.
func CanSplice(dst Sink, src *Reader) bool {
	return dst.Info().Compatible(src.Info())
}

// CopyRange stream-copies packets [i0, i1) from src into dst. The first
// copied packet must be a keyframe (or follow ones already giving the
// decoder a reference — the caller asserts this by construction; plans
// always start copies at keyframes).
//
// When src is in concealment mode, a corrupt packet does not abort the
// copy: the last good frame at that position is decoded and re-encoded
// into the output instead (an encode, not a copy, in the stats), so the
// result keeps its full length.
func CopyRange(dst Sink, src *Reader, i0, i1 int) error {
	if !CanSplice(dst, src) {
		return fmt.Errorf("media: streams incompatible for copy: %+v vs %+v", dst.Info(), src.Info())
	}
	for i := i0; i < i1; i++ {
		data, err := src.Container().ReadPacket(i)
		if err != nil {
			if !src.conceal || !Concealable(err) {
				return err
			}
			// FrameAtIndex is itself concealing: it rolls forward from the
			// preceding keyframe and substitutes the last good frame for the
			// damaged packet.
			fr, ferr := src.FrameAtIndex(i)
			if ferr != nil {
				return ferr
			}
			if werr := dst.WriteFrame(fr); werr != nil {
				return werr
			}
			continue
		}
		if err := dst.WriteRawPacket(src.Container().Record(i).Key, data); err != nil {
			return err
		}
	}
	return nil
}

// SmartCut writes the frames of src covering packet indexes [i0, i1) into
// dst, re-encoding only the prefix before the first keyframe in the range
// and stream-copying the rest — the paper's smart cut. If the source range
// contains no keyframe after i0 (sparse-keyframe content, like Q1 on ToS),
// the whole range is re-encoded and copied=0 is returned.
func SmartCut(dst Sink, src *Reader, i0, i1 int) (reencoded, copied int, err error) {
	if i0 < 0 || i1 > src.NumFrames() || i0 > i1 {
		return 0, 0, fmt.Errorf("media: smart cut range [%d,%d) out of bounds", i0, i1)
	}
	if !CanSplice(dst, src) {
		return 0, 0, fmt.Errorf("media: streams incompatible for smart cut")
	}
	k := i1
	if i0 < i1 {
		if idx, ok := src.Container().NextKeyframeAfter(i0); ok && idx < i1 {
			k = idx
		}
	}
	for i := i0; i < k; i++ {
		fr, err := src.FrameAtIndex(i)
		if err != nil {
			return reencoded, copied, err
		}
		if err := dst.WriteFrame(fr); err != nil {
			return reencoded, copied, err
		}
		reencoded++
	}
	if k < i1 {
		if err := CopyRange(dst, src, k, i1); err != nil {
			return reencoded, copied, err
		}
		copied = i1 - k
	}
	return reencoded, copied, nil
}
