package media

import (
	"fmt"

	"v2v/internal/frame"
	"v2v/internal/obs"
	"v2v/internal/rational"
)

// Cursors is a frame source that stays efficient under interleaved access
// patterns. A single Reader decodes sequentially; an expression like
// grid(v[t], v[t+60], v[t+120], v[t+180]) interleaves four positions in
// one file, and funnelling them through one decoder would restart from a
// keyframe on every read (catastrophic with long GOPs). Cursors keeps up
// to MaxPerVideo decoder states per file and routes each read to the
// cursor whose position matches, so each tap decodes its stream once —
// the same trick FFmpeg filter graphs get from per-input demuxers.
type Cursors struct {
	paths   map[string]string
	max     int
	open    map[string][]*Reader
	conceal bool
	cache   *GOPCache
	rec     *obs.Recorder
	stats   Stats
}

// DefaultCursorsPerVideo bounds decoder states per file; a 2x2 grid needs
// four.
const DefaultCursorsPerVideo = 6

// NewCursors builds a cursor pool over the given video-name -> path
// bindings. maxPerVideo <= 0 selects DefaultCursorsPerVideo. Not safe for
// concurrent use; open one pool per goroutine.
func NewCursors(paths map[string]string, maxPerVideo int) *Cursors {
	if maxPerVideo <= 0 {
		maxPerVideo = DefaultCursorsPerVideo
	}
	return &Cursors{paths: paths, max: maxPerVideo, open: map[string][]*Reader{}}
}

// SetConceal switches every cursor (open and future) between fail-fast
// and error-concealment mode; see Reader.SetConceal.
func (c *Cursors) SetConceal(on bool) {
	c.conceal = on
	for _, rs := range c.open {
		for _, r := range rs {
			r.SetConceal(on)
		}
	}
}

// SetRecorder attributes every cursor's (open and future) decode work to a
// per-request recorder.
func (c *Cursors) SetRecorder(rec *obs.Recorder) {
	c.rec = rec
	for _, rs := range c.open {
		for _, r := range rs {
			r.SetRecorder(rec)
		}
	}
}

// SetGOPCache routes this pool's reads through a shared decoded-GOP cache:
// FrameAt serves cache-resident GOPs without touching a decoder, and fills
// missing GOPs through this pool's own cursors (so decode work stays
// attributed to the goroutine that performed it). The cache is safe for
// concurrent use even though the pool itself is not — many per-goroutine
// pools share one cache.
func (c *Cursors) SetGOPCache(g *GOPCache) { c.cache = g }

// FrameAt returns the frame of the named video at exactly time t.
func (c *Cursors) FrameAt(video string, t rational.Rat) (*frame.Frame, error) {
	rs := c.open[video]
	if len(rs) == 0 {
		if _, err := c.openCursor(video); err != nil {
			return nil, err
		}
		rs = c.open[video]
	}
	target, err := rs[0].IndexOfTime(t)
	if err != nil {
		return nil, err
	}
	if c.cache != nil {
		if fr, ok := c.cachedFrame(video, target); ok {
			return fr, nil
		}
	}
	r, err := c.cursorFor(video, target)
	if err != nil {
		return nil, err
	}
	return r.FrameAtIndex(target)
}

// cachedFrame serves target from the shared GOP cache, filling the whole
// containing GOP on a miss. ok=false falls back to the direct cursor path
// (unmappable GOP bounds, or a fill error — which the direct path will
// then surface with its usual semantics).
func (c *Cursors) cachedFrame(video string, target int) (*frame.Frame, bool) {
	cr := c.open[video][0].Container()
	k, ok := cr.KeyframeAtOrBefore(target)
	if !ok {
		return nil, false
	}
	// NextKeyframeAfter is "at or after", so probe from k+1 to find the
	// GOP's end rather than k itself.
	end := cr.NumPackets()
	if nk, found := cr.NextKeyframeAfter(k + 1); found && nk < end {
		end = nk
	}
	frames, hit, err := c.cache.GetOrFill(c.paths[video], k, func() ([]*frame.Frame, error) {
		return c.decodeGOP(video, k, end)
	})
	if err != nil {
		return nil, false
	}
	if hit {
		c.stats.GOPCacheHits++
	} else {
		c.stats.GOPCacheMisses++
	}
	if idx := target - k; idx >= 0 && idx < len(frames) {
		return frames[idx], true
	}
	return nil, false
}

// decodeGOP decodes packets [k, end) through this pool's cursors — the
// fill path for cache misses. Frames come straight from the decoder (one
// fresh allocation per packet), so the returned slice is safe to share.
func (c *Cursors) decodeGOP(video string, k, end int) ([]*frame.Frame, error) {
	r, err := c.cursorFor(video, k)
	if err != nil {
		return nil, err
	}
	frames := make([]*frame.Frame, 0, end-k)
	for i := k; i < end; i++ {
		fr, err := r.FrameAtIndex(i)
		if err != nil {
			return nil, err
		}
		frames = append(frames, fr)
	}
	return frames, nil
}

// cursorFor picks (or opens) the cursor that reaches target cheapest.
func (c *Cursors) cursorFor(video string, target int) (*Reader, error) {
	rs := c.open[video]
	if len(rs) == 0 {
		return c.openCursor(video)
	}
	// 1. A cursor already positioned at (or one past) the target reads
	// for free or purely sequentially.
	for _, r := range rs {
		if n := r.NextIndex(); n == target || n-1 == target {
			return r, nil
		}
	}
	// 2. A cursor shortly behind the target rolls forward cheaply.
	gop := rs[0].Info().GOP
	if gop <= 0 {
		gop = 48
	}
	var best *Reader
	bestGap := gop + 1
	for _, r := range rs {
		if n := r.NextIndex(); n >= 0 && n <= target && target-n < bestGap {
			best, bestGap = r, target-n
		}
	}
	if best != nil {
		return best, nil
	}
	// 3. Open a fresh cursor for a new access pattern.
	if len(rs) < c.max {
		return c.openCursor(video)
	}
	// 4. Pool full: recycle the cursor with the smallest reposition cost.
	best = rs[0]
	bestDist := 1 << 30
	for _, r := range rs {
		d := target - r.NextIndex()
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = r, d
		}
	}
	return best, nil
}

func (c *Cursors) openCursor(video string) (*Reader, error) {
	path, ok := c.paths[video]
	if !ok {
		return nil, fmt.Errorf("media: unknown video %q", video)
	}
	r, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	r.SetConceal(c.conceal)
	r.SetRecorder(c.rec)
	c.open[video] = append(c.open[video], r)
	return r, nil
}

// Close releases all cursors and returns the accumulated decode stats.
func (c *Cursors) Close() Stats {
	for _, rs := range c.open {
		for _, r := range rs {
			c.stats.Add(r.Stats())
			r.Close()
		}
	}
	c.open = map[string][]*Reader{}
	return c.stats
}
