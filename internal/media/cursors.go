package media

import (
	"fmt"

	"v2v/internal/frame"
	"v2v/internal/rational"
)

// Cursors is a frame source that stays efficient under interleaved access
// patterns. A single Reader decodes sequentially; an expression like
// grid(v[t], v[t+60], v[t+120], v[t+180]) interleaves four positions in
// one file, and funnelling them through one decoder would restart from a
// keyframe on every read (catastrophic with long GOPs). Cursors keeps up
// to MaxPerVideo decoder states per file and routes each read to the
// cursor whose position matches, so each tap decodes its stream once —
// the same trick FFmpeg filter graphs get from per-input demuxers.
type Cursors struct {
	paths   map[string]string
	max     int
	open    map[string][]*Reader
	conceal bool
	stats   Stats
}

// DefaultCursorsPerVideo bounds decoder states per file; a 2x2 grid needs
// four.
const DefaultCursorsPerVideo = 6

// NewCursors builds a cursor pool over the given video-name -> path
// bindings. maxPerVideo <= 0 selects DefaultCursorsPerVideo. Not safe for
// concurrent use; open one pool per goroutine.
func NewCursors(paths map[string]string, maxPerVideo int) *Cursors {
	if maxPerVideo <= 0 {
		maxPerVideo = DefaultCursorsPerVideo
	}
	return &Cursors{paths: paths, max: maxPerVideo, open: map[string][]*Reader{}}
}

// SetConceal switches every cursor (open and future) between fail-fast
// and error-concealment mode; see Reader.SetConceal.
func (c *Cursors) SetConceal(on bool) {
	c.conceal = on
	for _, rs := range c.open {
		for _, r := range rs {
			r.SetConceal(on)
		}
	}
}

// FrameAt returns the frame of the named video at exactly time t.
func (c *Cursors) FrameAt(video string, t rational.Rat) (*frame.Frame, error) {
	rs := c.open[video]
	if len(rs) == 0 {
		r, err := c.openCursor(video)
		if err != nil {
			return nil, err
		}
		rs = c.open[video]
		_ = r
	}
	target, err := rs[0].IndexOfTime(t)
	if err != nil {
		return nil, err
	}

	// 1. A cursor already positioned at (or one past) the target reads
	// for free or purely sequentially.
	for _, r := range rs {
		if n := r.NextIndex(); n == target || n-1 == target {
			return r.FrameAtIndex(target)
		}
	}
	// 2. A cursor shortly behind the target rolls forward cheaply.
	gop := rs[0].Info().GOP
	if gop <= 0 {
		gop = 48
	}
	var best *Reader
	bestGap := gop + 1
	for _, r := range rs {
		if n := r.NextIndex(); n >= 0 && n <= target && target-n < bestGap {
			best, bestGap = r, target-n
		}
	}
	if best != nil {
		return best.FrameAtIndex(target)
	}
	// 3. Open a fresh cursor for a new access pattern.
	if len(rs) < c.max {
		r, err := c.openCursor(video)
		if err != nil {
			return nil, err
		}
		return r.FrameAtIndex(target)
	}
	// 4. Pool full: recycle the cursor with the smallest reposition cost.
	best = rs[0]
	bestDist := 1 << 30
	for _, r := range rs {
		d := target - r.NextIndex()
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = r, d
		}
	}
	return best.FrameAtIndex(target)
}

func (c *Cursors) openCursor(video string) (*Reader, error) {
	path, ok := c.paths[video]
	if !ok {
		return nil, fmt.Errorf("media: unknown video %q", video)
	}
	r, err := OpenReader(path)
	if err != nil {
		return nil, err
	}
	r.SetConceal(c.conceal)
	c.open[video] = append(c.open[video], r)
	return r, nil
}

// Close releases all cursors and returns the accumulated decode stats.
func (c *Cursors) Close() Stats {
	for _, rs := range c.open {
		for _, r := range rs {
			c.stats.Add(r.Stats())
			r.Close()
		}
	}
	c.open = map[string][]*Reader{}
	return c.stats
}
