package media

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testSegment(n, size int) *ResultSegment {
	pkts := make([]EncodedPacket, n)
	for i := range pkts {
		pkts[i] = EncodedPacket{Key: i == 0, Data: make([]byte, size)}
	}
	return NewResultSegment(pkts)
}

// Concurrent misses on one key must run the fill exactly once; everyone
// else blocks and shares the result as a hit. Run under -race.
func TestResultCacheSingleflightDedup(t *testing.T) {
	c := NewResultCache(1 << 20)
	const workers = 16
	var fills atomic.Int64
	var hits atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			seg, hit, filled, err := c.GetOrFill(context.Background(), "k", func() (*ResultSegment, error) {
				fills.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return testSegment(3, 100), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if seg == nil || len(seg.Packets) != 3 {
				t.Error("bad segment")
			}
			if hit {
				hits.Add(1)
			}
			if filled && hit {
				t.Error("a filler reported a hit")
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := fills.Load(); got != 1 {
		t.Errorf("fill ran %d times, want 1", got)
	}
	if got := hits.Load(); got != workers-1 {
		t.Errorf("hits = %d, want %d", got, workers-1)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != workers-1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// A fill error must release the key (nothing cached, no wedged inflight
// entry) so a later call retries the fill.
func TestResultCacheFillErrorReleasesKey(t *testing.T) {
	c := NewResultCache(1 << 20)
	boom := errors.New("render failed")
	_, _, filled, err := c.GetOrFill(context.Background(), "k", func() (*ResultSegment, error) {
		return nil, boom
	})
	if !filled || !errors.Is(err, boom) {
		t.Fatalf("filled=%t err=%v, want filled with the fill error", filled, err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error was cached: %+v", st)
	}
	seg, hit, filled, err := c.GetOrFill(context.Background(), "k", func() (*ResultSegment, error) {
		return testSegment(1, 10), nil
	})
	if err != nil || hit || !filled || seg == nil {
		t.Fatalf("retry after error: seg=%v hit=%t filled=%t err=%v", seg, hit, filled, err)
	}
}

// A panicking fill must release the key too: the panic propagates to the
// caller, concurrent waiters observe an incomplete-fill error, and a later
// call retries.
func TestResultCacheFillPanicReleasesKey(t *testing.T) {
	c := NewResultCache(1 << 20)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		c.GetOrFill(context.Background(), "k", func() (*ResultSegment, error) {
			panic("render exploded")
		})
	}()
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("panic left an entry: %+v", st)
	}
	seg, _, filled, err := c.GetOrFill(context.Background(), "k", func() (*ResultSegment, error) {
		return testSegment(1, 10), nil
	})
	if err != nil || !filled || seg == nil {
		t.Fatalf("retry after panic: filled=%t err=%v", filled, err)
	}
}

// Waiters observing a panicked fill get errFillIncomplete, not a hang.
func TestResultCacheWaiterSeesPanickedFill(t *testing.T) {
	c := NewResultCache(1 << 20)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.GetOrFill(context.Background(), "k", func() (*ResultSegment, error) {
			close(entered)
			<-release
			panic("mid-fill")
		})
	}()
	<-entered
	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.GetOrFill(context.Background(), "k", func() (*ResultSegment, error) {
			t.Error("waiter ran its own fill while one was inflight")
			return testSegment(1, 10), nil
		})
		done <- err
	}()
	// Give the waiter time to park on the inflight fill, then blow it up.
	time.Sleep(10 * time.Millisecond)
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, errFillIncomplete) {
			t.Errorf("waiter err = %v, want errFillIncomplete", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung on a panicked fill")
	}
}

// A waiter whose context is canceled stops waiting promptly and reports
// the context error; the fill itself is unaffected.
func TestResultCacheWaiterContextCancel(t *testing.T) {
	c := NewResultCache(1 << 20)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.GetOrFill(context.Background(), "k", func() (*ResultSegment, error) {
			close(entered)
			<-release
			return testSegment(1, 10), nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := c.GetOrFill(ctx, "k", func() (*ResultSegment, error) {
		return testSegment(1, 10), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled waiter err = %v, want context.Canceled", err)
	}
	close(release)
	// The fill still lands: a fresh caller hits.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, hit, _, _ := c.GetOrFill(context.Background(), "k", func() (*ResultSegment, error) {
			return testSegment(1, 10), nil
		}); hit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fill never became resident")
		}
		time.Sleep(time.Millisecond)
	}
}

// Standalone (no arbiter) eviction is LRU under the cache's own budget.
func TestResultCacheStandaloneLRUEviction(t *testing.T) {
	seg := testSegment(1, 1000) // ~1032 charged bytes
	budget := 3 * seg.Bytes()
	c := NewResultCache(budget)
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		_, _, _, err := c.GetOrFill(context.Background(), k, func() (*ResultSegment, error) {
			return testSegment(1, 1000), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > budget {
		t.Errorf("resident %d bytes exceeds budget %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite overflow")
	}
	// Oldest keys evicted first: k0 misses again, the newest hits.
	if _, hit, _, _ := c.GetOrFill(context.Background(), "k4", func() (*ResultSegment, error) {
		return testSegment(1, 1000), nil
	}); !hit {
		t.Error("most recent entry was evicted")
	}
}

// Eviction fairness end-to-end at the cache layer: two caches attached to
// one arbiter under a budget that cannot hold both working sets — both
// keep at least their protected floors, the total stays bounded, and
// neither is thrashed to zero.
func TestResultCachesShareArbiterWithoutThrashing(t *testing.T) {
	seg := testSegment(1, 1000)
	per := 8 * seg.Bytes()
	a := NewArbiter(per) // half of what the two caches would like combined
	c1 := NewResultCache(per)
	c2 := NewResultCache(per)
	c1.AttachArbiter(a)
	c2.AttachArbiter(a)

	var wg sync.WaitGroup
	for w, c := range map[string]*ResultCache{"one": c1, "two": c2} {
		wg.Add(1)
		go func(prefix string, c *ResultCache) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := 0; i < 8; i++ {
					k := fmt.Sprintf("%s-%d", prefix, i)
					if _, _, _, err := c.GetOrFill(context.Background(), k, func() (*ResultSegment, error) {
						return testSegment(1, 1000), nil
					}); err != nil {
						t.Error(err)
					}
				}
			}
		}(w, c)
	}
	wg.Wait()

	if u, tot := a.Used(), a.Total(); u > tot {
		t.Errorf("arbiter used %d exceeds total %d", u, tot)
	}
	s1, s2 := c1.Stats(), c2.Stats()
	if s1.Bytes+s2.Bytes != a.Used() {
		t.Errorf("cache bytes %d+%d disagree with arbiter ledger %d", s1.Bytes, s2.Bytes, a.Used())
	}
	if s1.Bytes == 0 || s2.Bytes == 0 {
		t.Errorf("a cache was thrashed to zero: %d / %d bytes", s1.Bytes, s2.Bytes)
	}
}
