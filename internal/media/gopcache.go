package media

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"v2v/internal/frame"
	"v2v/internal/obs"
)

// GOP-cache metrics, exported via the default obs registry (scraped at
// v2vserve's /metrics; see docs/OBSERVABILITY.md). Every GOPCache in the
// process feeds the same instruments; in practice the cmds create exactly
// one shared cache.
var (
	gopHits = obs.Default().Counter("v2v_gopcache_hits_total",
		"Decoded-GOP cache hits, including singleflight waiters served by a concurrent fill.")
	gopMisses = obs.Default().Counter("v2v_gopcache_misses_total",
		"Decoded-GOP cache misses (fills performed).")
	gopEvictions = obs.Default().Counter("v2v_gopcache_evictions_total",
		"Decoded GOPs evicted to stay under the byte budget.")
	gopBytes = obs.Default().Gauge("v2v_gopcache_bytes",
		"Decoded frame bytes currently resident in GOP caches.")
	cacheBytesGOP = obs.Default().Gauge(`v2v_cache_bytes{cache="gop"}`,
		"Bytes currently resident, per cache (gop = decoded GOPs, result = encoded segments).")
	cacheBudgetGOP = obs.Default().Gauge(`v2v_cache_budget_bytes{cache="gop"}`,
		"Configured byte budget, per cache (gop = decoded GOPs, result = encoded segments).")
)

// FallbackGOPCacheBytes bounds a cache whose budget was never set — neither
// at construction nor via SetBudgetIfUnset (the executor sizes unset
// budgets from the plan's source formats before first use).
const FallbackGOPCacheBytes = 256 << 20

// GOPCache is a concurrency-safe LRU of decoded groups-of-pictures, keyed
// by (file path, keyframe packet index). It is V2V's decode-once layer:
// every shard worker and every grid tap that needs a frame from the same
// source GOP shares one decode of it, instead of each segmentRunner paying
// the keyframe-to-target roll-forward on its private cursors.
//
// Fills are deduplicated singleflight-style: when several goroutines miss
// on the same GOP concurrently, one runs its fill callback and the rest
// block and share the result (counted as hits — they did no decode work).
// Eviction is least-recently-used at whole-GOP granularity under a byte
// budget; a single GOP larger than the whole budget is served but never
// cached.
//
// Cached frames are shared between goroutines and must be treated as
// immutable — the same contract Reader.FrameAtIndex already imposes by
// returning its internal last-frame reference.
type GOPCache struct {
	mu       sync.Mutex
	budget   int64
	bytes    int64
	entries  map[gopKey]*list.Element
	lru      *list.List // front = most recently used, values *gopEntry
	inflight map[gopKey]*gopFill
	client   *BudgetClient

	hits, misses, evictions int64
}

type gopKey struct {
	path  string
	start int // packet index of the GOP's keyframe
}

type gopEntry struct {
	key    gopKey
	frames []*frame.Frame
	bytes  int64
}

type gopFill struct {
	done   chan struct{}
	frames []*frame.Frame
	err    error
}

// errFillIncomplete is what waiters observe when a fill panicked out of
// GetOrFill before producing a result; callers fall back to direct decode.
var errFillIncomplete = errors.New("media: gop cache fill did not complete")

// NewGOPCache returns a cache bounded by budgetBytes of decoded frame data.
// budgetBytes <= 0 leaves the budget unset: the first SetBudgetIfUnset call
// (the executor sizes it from the plan's source formats) decides, with
// FallbackGOPCacheBytes as the backstop.
func NewGOPCache(budgetBytes int64) *GOPCache {
	if budgetBytes > 0 {
		cacheBudgetGOP.Set(float64(budgetBytes))
	}
	return &GOPCache{
		budget:   budgetBytes,
		entries:  map[gopKey]*list.Element{},
		lru:      list.New(),
		inflight: map[gopKey]*gopFill{},
	}
}

// SetBudgetIfUnset installs budgetBytes as the byte budget if none was
// configured at construction. Safe for concurrent use; the first caller
// wins, later calls are no-ops.
func (c *GOPCache) SetBudgetIfUnset(budgetBytes int64) {
	if budgetBytes <= 0 {
		return
	}
	c.mu.Lock()
	if c.budget <= 0 {
		c.budget = budgetBytes
	}
	set := c.budget
	c.mu.Unlock()
	cacheBudgetGOP.Set(float64(set))
}

// AttachArbiter hands eviction decisions to a shared budget arbiter: the
// cache stops enforcing its own cap (its budget becomes the basis of its
// protected floor and of an unset arbiter total) and inserts reserve from
// the arbiter instead. Call once at setup, before the cache serves
// traffic.
func (c *GOPCache) AttachArbiter(a *Arbiter) {
	cl := a.Register("gop", c.Budget, c.evictBytes)
	c.mu.Lock()
	c.client = cl
	c.mu.Unlock()
}

// Budget returns the effective byte budget.
func (c *GOPCache) Budget() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.effectiveBudgetLocked()
}

func (c *GOPCache) effectiveBudgetLocked() int64 {
	if c.budget <= 0 {
		return FallbackGOPCacheBytes
	}
	return c.budget
}

// GetOrFill returns the decoded frames of the GOP starting at packet index
// start of path, consulting the cache first. On a miss the fill callback
// decodes the GOP (packets [start, nextKeyframe)); concurrent misses on the
// same key run fill exactly once and share its result. hit reports whether
// this caller avoided the decode (resident entry or singleflight wait). A
// fill error is returned to every waiter and nothing is cached.
func (c *GOPCache) GetOrFill(path string, start int, fill func() ([]*frame.Frame, error)) (frames []*frame.Frame, hit bool, err error) {
	key := gopKey{path: path, start: start}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		gopHits.Inc()
		return el.Value.(*gopEntry).frames, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		gopHits.Inc()
		return f.frames, true, nil
	}
	f := &gopFill{done: make(chan struct{}), err: errFillIncomplete}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()
	gopMisses.Inc()

	// Run the fill outside the lock so distinct GOPs decode in parallel.
	// The deferred cleanup runs even if fill panics (the panic propagates
	// to the caller's recover backstop): waiters then see errFillIncomplete
	// and fall back to direct decoding.
	func() {
		defer func() {
			// Admission (which may take the arbiter lock) happens before
			// the cache lock — never the reverse order. The inflight entry
			// stays registered until the same critical section that
			// inserts, so no second fill of this key can have started.
			var b int64
			admitted := false
			if f.err == nil {
				for _, fr := range f.frames {
					if fr != nil {
						b += int64(len(fr.Pix))
					}
				}
				admitted = c.admit(key, b)
			}
			c.mu.Lock()
			delete(c.inflight, key)
			if admitted {
				// The cache holds a reference to each resident frame until
				// eviction (no-ops for the unpooled frames source decoders
				// produce today; the protocol keeps pooled frames safe).
				for _, fr := range f.frames {
					//v2v:nolint(poolcheck) the cache holds this reference until eviction; removeLocked releases it
					fr.Retain()
				}
				el := c.lru.PushFront(&gopEntry{key: key, frames: f.frames, bytes: b})
				c.entries[key] = el
				c.bytes += b
				gopBytes.Add(float64(b))
				cacheBytesGOP.Add(float64(b))
				if c.client == nil {
					c.evictOverBudgetLocked(el)
				}
			}
			c.mu.Unlock()
			close(f.done)
		}()
		f.frames, f.err = fill()
	}()
	return f.frames, false, f.err
}

// admit decides whether a filled GOP of b bytes may be cached, reserving
// shared budget when an arbiter is attached. Standalone caches admit
// anything that fits their own budget (insertion then evicts from the
// tail). Must be called without holding c.mu.
func (c *GOPCache) admit(key gopKey, b int64) bool {
	c.mu.Lock()
	cl := c.client
	budget := c.effectiveBudgetLocked()
	c.mu.Unlock()
	if b <= 0 {
		return false
	}
	if cl != nil {
		return cl.Reserve(fmt.Sprintf("gop\x00%s\x00%d", key.path, key.start), b)
	}
	return b <= budget
}

// evictOverBudgetLocked evicts from the LRU tail until the standalone
// budget holds, never evicting keep.
func (c *GOPCache) evictOverBudgetLocked(keep *list.Element) {
	budget := c.effectiveBudgetLocked()
	for c.bytes > budget {
		back := c.lru.Back()
		if back == nil || back == keep {
			break
		}
		c.removeLocked(back)
	}
}

func (c *GOPCache) removeLocked(el *list.Element) int64 {
	e := el.Value.(*gopEntry)
	for _, fr := range e.frames {
		fr.Release() // drop the cache's reference taken at insertion
	}
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	c.evictions++
	gopEvictions.Inc()
	gopBytes.Add(-float64(e.bytes))
	cacheBytesGOP.Add(-float64(e.bytes))
	return e.bytes
}

// evictBytes frees at least need bytes from the LRU tail (or empties the
// cache), returning the bytes freed — the arbiter's eviction callback.
func (c *GOPCache) evictBytes(need int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for freed < need {
		back := c.lru.Back()
		if back == nil {
			break
		}
		freed += c.removeLocked(back)
	}
	return freed
}

// GOPCacheStats is a point-in-time snapshot of one cache's counters.
type GOPCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
}

// Stats snapshots the cache counters.
func (c *GOPCache) Stats() GOPCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return GOPCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Budget:    c.effectiveBudgetLocked(),
	}
}

// GOPCacheEntry describes one resident decoded GOP, for cache
// introspection (v2vserve's /debug/caches).
type GOPCacheEntry struct {
	Path   string `json:"path"`
	Start  int    `json:"start"`
	Frames int    `json:"frames"`
	Bytes  int64  `json:"bytes"`
}

// Entries snapshots the resident entries, most recently used first.
func (c *GOPCache) Entries() []GOPCacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]GOPCacheEntry, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*gopEntry)
		out = append(out, GOPCacheEntry{
			Path:   e.key.path,
			Start:  e.key.start,
			Frames: len(e.frames),
			Bytes:  e.bytes,
		})
	}
	return out
}
