package media

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"v2v/internal/container"
	"v2v/internal/frame"
	"v2v/internal/rational"
)

func testInfo(gop int) container.StreamInfo {
	return container.StreamInfo{
		Codec: "GV10", Width: 160, Height: 48,
		FPS: rational.FromInt(24), Quality: 1, GOP: gop, Level: 2,
	}
}

// makeVideo writes n stamped frames and returns the path.
func makeVideo(t *testing.T, dir string, name string, info container.StreamInfo, n int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	w, err := CreateWriter(path, info)
	if err != nil {
		t.Fatalf("CreateWriter: %v", err)
	}
	for i := 0; i < n; i++ {
		fr := frame.New(info.Width, info.Height, frame.FormatYUV420)
		fr.Fill(byte(40+i%60), 128, 128)
		frame.Stamp(fr, uint32(i))
		if err := w.WriteFrame(fr); err != nil {
			t.Fatalf("WriteFrame(%d): %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// stampsOf decodes every frame of path and returns the stamp IDs.
func stampsOf(t *testing.T, path string) []uint32 {
	t.Helper()
	r, err := OpenReader(path)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	defer r.Close()
	out := make([]uint32, r.NumFrames())
	for i := range out {
		fr, err := r.FrameAtIndex(i)
		if err != nil {
			t.Fatalf("FrameAtIndex(%d): %v", i, err)
		}
		id, ok := frame.ReadStamp(fr)
		if !ok {
			t.Fatalf("frame %d has no stamp", i)
		}
		out[i] = id
	}
	return out
}

func seq(lo, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(lo + i)
	}
	return out
}

func eqU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := makeVideo(t, dir, "a.vmf", testInfo(6), 20)
	if got := stampsOf(t, path); !eqU32(got, seq(0, 20)) {
		t.Errorf("stamps = %v", got)
	}
	r, _ := OpenReader(path)
	defer r.Close()
	if r.NumFrames() != 20 {
		t.Errorf("NumFrames = %d", r.NumFrames())
	}
	if r.Stats().FramesDecoded != 0 {
		t.Error("fresh reader should have zero stats")
	}
}

func TestRandomAccess(t *testing.T) {
	dir := t.TempDir()
	path := makeVideo(t, dir, "a.vmf", testInfo(5), 23)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Jump around; each access must return the right frame.
	for _, i := range []int{7, 7, 22, 0, 11, 10, 12, 4} {
		fr, err := r.FrameAtIndex(i)
		if err != nil {
			t.Fatalf("FrameAtIndex(%d): %v", i, err)
		}
		if id, ok := frame.ReadStamp(fr); !ok || id != uint32(i) {
			t.Fatalf("frame %d stamp = %d,%v", i, id, ok)
		}
	}
	if _, err := r.FrameAtIndex(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := r.FrameAtIndex(23); err == nil {
		t.Error("past-end index should error")
	}
}

func TestSequentialAccessDecodesOnce(t *testing.T) {
	dir := t.TempDir()
	path := makeVideo(t, dir, "a.vmf", testInfo(5), 20)
	r, _ := OpenReader(path)
	defer r.Close()
	for i := 0; i < 20; i++ {
		if _, err := r.FrameAtIndex(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Stats().FramesDecoded; got != 20 {
		t.Errorf("sequential scan decoded %d frames, want 20", got)
	}
	// Re-reading the current frame is free.
	r2, _ := OpenReader(path)
	defer r2.Close()
	r2.FrameAtIndex(5)
	before := r2.Stats().FramesDecoded
	r2.FrameAtIndex(5)
	if r2.Stats().FramesDecoded != before {
		t.Error("repeat access should not re-decode")
	}
}

func TestFrameAtTime(t *testing.T) {
	dir := t.TempDir()
	path := makeVideo(t, dir, "a.vmf", testInfo(6), 24) // 1 second at 24fps
	r, _ := OpenReader(path)
	defer r.Close()
	fr, err := r.FrameAt(rational.New(1, 2)) // frame 12
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := frame.ReadStamp(fr); id != 12 {
		t.Errorf("t=1/2 stamp = %d", id)
	}
	if _, err := r.FrameAt(rational.New(1, 100)); err == nil {
		t.Error("off-grid time should error")
	}
	if _, err := r.FrameAt(rational.FromInt(5)); err == nil {
		t.Error("out-of-stream time should error")
	}
}

func TestIndexRangeFor(t *testing.T) {
	dir := t.TempDir()
	path := makeVideo(t, dir, "a.vmf", testInfo(6), 48) // 2 s at 24 fps
	r, _ := OpenReader(path)
	defer r.Close()
	cases := []struct {
		lo, hi rational.Rat
		w0, w1 int
	}{
		{rational.Zero, rational.FromInt(1), 0, 24},
		{rational.New(1, 2), rational.FromInt(1), 12, 24},
		{rational.New(1, 48), rational.New(1, 2), 1, 12}, // lo between frames -> round up
		{rational.FromInt(-1), rational.FromInt(9), 0, 48},
		{rational.FromInt(3), rational.FromInt(4), 48, 48},
	}
	for _, c := range cases {
		i0, i1 := r.IndexRangeFor(rational.Interval{Lo: c.lo, Hi: c.hi})
		if i0 != c.w0 || i1 != c.w1 {
			t.Errorf("IndexRangeFor([%v,%v)) = [%d,%d), want [%d,%d)", c.lo, c.hi, i0, i1, c.w0, c.w1)
		}
	}
}

func TestCopyRangeIsExact(t *testing.T) {
	dir := t.TempDir()
	src := makeVideo(t, dir, "src.vmf", testInfo(6), 24)
	r, _ := OpenReader(src)
	defer r.Close()

	out := filepath.Join(dir, "out.vmf")
	w, err := CreateWriter(out, r.Info())
	if err != nil {
		t.Fatal(err)
	}
	// Copy GOP-aligned range [6, 18).
	if err := CopyRange(w, r, 6, 18); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := stampsOf(t, out); !eqU32(got, seq(6, 12)) {
		t.Errorf("copied stamps = %v", got)
	}
	if w.Stats().PacketsCopied != 12 || w.Stats().FramesEncoded != 0 {
		t.Errorf("stats = %+v", w.Stats())
	}
}

func TestCopyThenEncodeForcesKeyframe(t *testing.T) {
	dir := t.TempDir()
	src := makeVideo(t, dir, "src.vmf", testInfo(6), 12)
	r, _ := OpenReader(src)
	defer r.Close()

	out := filepath.Join(dir, "out.vmf")
	w, _ := CreateWriter(out, r.Info())
	if err := CopyRange(w, r, 0, 6); err != nil {
		t.Fatal(err)
	}
	fr := frame.New(160, 48, frame.FormatYUV420)
	frame.Stamp(fr, 99)
	if err := w.WriteFrame(fr); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := container.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Record(6).Key {
		t.Error("first encoded frame after a splice must be a keyframe")
	}
	want := append(seq(0, 6), 99)
	if got := stampsOf(t, out); !eqU32(got, want) {
		t.Errorf("stamps = %v, want %v", got, want)
	}
}

func TestSmartCutMidGOP(t *testing.T) {
	dir := t.TempDir()
	src := makeVideo(t, dir, "src.vmf", testInfo(6), 36) // keys at 0,6,12,18,24,30
	r, _ := OpenReader(src)
	defer r.Close()

	out := filepath.Join(dir, "out.vmf")
	w, _ := CreateWriter(out, r.Info())
	reenc, copied, err := SmartCut(w, r, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if reenc != 2 || copied != 14 {
		t.Errorf("reencoded=%d copied=%d, want 2, 14", reenc, copied)
	}
	if got := stampsOf(t, out); !eqU32(got, seq(4, 16)) {
		t.Errorf("stamps = %v", got)
	}
}

func TestSmartCutKeyAligned(t *testing.T) {
	dir := t.TempDir()
	src := makeVideo(t, dir, "src.vmf", testInfo(6), 24)
	r, _ := OpenReader(src)
	defer r.Close()
	out := filepath.Join(dir, "out.vmf")
	w, _ := CreateWriter(out, r.Info())
	reenc, copied, err := SmartCut(w, r, 6, 18)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if reenc != 0 || copied != 12 {
		t.Errorf("key-aligned cut reencoded=%d copied=%d, want 0, 12", reenc, copied)
	}
	if got := stampsOf(t, out); !eqU32(got, seq(6, 12)) {
		t.Errorf("stamps = %v", got)
	}
}

func TestSmartCutNoKeyframeInRange(t *testing.T) {
	// GOP 100 with a 30-frame file: only frame 0 is a key. A cut starting
	// at frame 3 finds no keyframe to copy from — the Q1-on-ToS case.
	dir := t.TempDir()
	src := makeVideo(t, dir, "src.vmf", testInfo(100), 30)
	r, _ := OpenReader(src)
	defer r.Close()
	out := filepath.Join(dir, "out.vmf")
	w, _ := CreateWriter(out, r.Info())
	reenc, copied, err := SmartCut(w, r, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if copied != 0 || reenc != 17 {
		t.Errorf("no-key cut reencoded=%d copied=%d, want 17, 0", reenc, copied)
	}
	if got := stampsOf(t, out); !eqU32(got, seq(3, 17)) {
		t.Errorf("stamps = %v", got)
	}
}

func TestSmartCutEquivalentToFullReencode(t *testing.T) {
	// At Q=1 the codec is lossless, so a smart cut must yield pixel-exact
	// identical frames to a full decode/re-encode of the same range.
	dir := t.TempDir()
	src := makeVideo(t, dir, "src.vmf", testInfo(5), 30)
	r, _ := OpenReader(src)
	defer r.Close()

	smart := filepath.Join(dir, "smart.vmf")
	w1, _ := CreateWriter(smart, r.Info())
	if _, _, err := SmartCut(w1, r, 3, 27); err != nil {
		t.Fatal(err)
	}
	w1.Close()

	full := filepath.Join(dir, "full.vmf")
	w2, _ := CreateWriter(full, r.Info())
	for i := 3; i < 27; i++ {
		fr, err := r.FrameAtIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.WriteFrame(fr); err != nil {
			t.Fatal(err)
		}
	}
	w2.Close()

	ra, _ := OpenReader(smart)
	rb, _ := OpenReader(full)
	defer ra.Close()
	defer rb.Close()
	if ra.NumFrames() != rb.NumFrames() {
		t.Fatalf("frame counts %d vs %d", ra.NumFrames(), rb.NumFrames())
	}
	for i := 0; i < ra.NumFrames(); i++ {
		fa, err := ra.FrameAtIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := rb.FrameAtIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		if !fa.Equal(fb) {
			t.Fatalf("frame %d differs between smart cut and full re-encode", i)
		}
	}
}

func TestSmartCutValidation(t *testing.T) {
	dir := t.TempDir()
	src := makeVideo(t, dir, "src.vmf", testInfo(6), 12)
	r, _ := OpenReader(src)
	defer r.Close()
	w, _ := CreateWriter(filepath.Join(dir, "out.vmf"), r.Info())
	defer w.Close()
	if _, _, err := SmartCut(w, r, -1, 5); err == nil {
		t.Error("negative start should error")
	}
	if _, _, err := SmartCut(w, r, 0, 99); err == nil {
		t.Error("past-end should error")
	}
	if _, _, err := SmartCut(w, r, 8, 4); err == nil {
		t.Error("inverted range should error")
	}
}

func TestIncompatibleSplice(t *testing.T) {
	dir := t.TempDir()
	src := makeVideo(t, dir, "src.vmf", testInfo(6), 12)
	r, _ := OpenReader(src)
	defer r.Close()
	other := testInfo(6)
	other.Width, other.Height = 64, 32
	w, _ := CreateWriter(filepath.Join(dir, "out.vmf"), other)
	defer w.Close()
	if CanSplice(w, r) {
		t.Error("different dimensions should not splice")
	}
	if err := CopyRange(w, r, 0, 6); err == nil {
		t.Error("CopyRange should reject incompatible streams")
	}
	if _, _, err := SmartCut(w, r, 0, 6); err == nil {
		t.Error("SmartCut should reject incompatible streams")
	}
}

func TestWriterRejectsAfterClose(t *testing.T) {
	dir := t.TempDir()
	w, _ := CreateWriter(filepath.Join(dir, "x.vmf"), testInfo(6))
	w.Close()
	fr := frame.New(160, 48, frame.FormatYUV420)
	if err := w.WriteFrame(fr); err == nil {
		t.Error("WriteFrame after close should error")
	}
	if err := w.WriteRawPacket(true, []byte{1}); err == nil {
		t.Error("WriteRawPacket after close should error")
	}
	if err := w.Close(); err != nil {
		t.Error("idempotent close should return stored error (nil)")
	}
}

func TestCreateWriterValidation(t *testing.T) {
	dir := t.TempDir()
	bad := testInfo(6)
	bad.Codec = "H264"
	if _, err := CreateWriter(filepath.Join(dir, "x.vmf"), bad); err == nil {
		t.Error("unknown codec should error")
	}
	odd := testInfo(6)
	odd.Width = 31
	if _, err := CreateWriter(filepath.Join(dir, "x.vmf"), odd); err == nil {
		t.Error("odd width should error")
	}
}

func TestStatsAccumulate(t *testing.T) {
	var s Stats
	s.Add(Stats{FramesDecoded: 1, FramesEncoded: 2, PacketsCopied: 3, BytesCopied: 4})
	s.Add(Stats{FramesDecoded: 10, FramesEncoded: 20, PacketsCopied: 30, BytesCopied: 40})
	if s.FramesDecoded != 11 || s.FramesEncoded != 22 || s.PacketsCopied != 33 || s.BytesCopied != 44 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPropertySmartCutEquivalentAtRandomRanges(t *testing.T) {
	// For any cut range, SmartCut output frames are pixel-identical to a
	// full decode/re-encode of the same range (Q=1 lossless).
	dir := t.TempDir()
	src := makeVideo(t, dir, "src.vmf", testInfo(7), 60) // keys every 7
	r, _ := OpenReader(src)
	defer r.Close()
	rnd := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		i0 := rnd.Intn(50)
		i1 := i0 + 1 + rnd.Intn(60-i0-1)

		smart := filepath.Join(dir, "s.vmf")
		w1, _ := CreateWriter(smart, r.Info())
		reenc, copied, err := SmartCut(w1, r, i0, i1)
		if err != nil {
			t.Fatalf("trial %d [%d,%d): %v", trial, i0, i1, err)
		}
		w1.Close()
		if reenc+copied != i1-i0 {
			t.Fatalf("trial %d: %d+%d != %d", trial, reenc, copied, i1-i0)
		}

		full := filepath.Join(dir, "f.vmf")
		w2, _ := CreateWriter(full, r.Info())
		for i := i0; i < i1; i++ {
			fr, err := r.FrameAtIndex(i)
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.WriteFrame(fr); err != nil {
				t.Fatal(err)
			}
		}
		w2.Close()

		ra, _ := OpenReader(smart)
		rb, _ := OpenReader(full)
		if ra.NumFrames() != rb.NumFrames() {
			t.Fatalf("trial %d: counts differ", trial)
		}
		for i := 0; i < ra.NumFrames(); i++ {
			fa, _ := ra.FrameAtIndex(i)
			fb, _ := rb.FrameAtIndex(i)
			if fa == nil || fb == nil || !fa.Equal(fb) {
				t.Fatalf("trial %d [%d,%d): frame %d differs", trial, i0, i1, i)
			}
		}
		ra.Close()
		rb.Close()
		os.Remove(smart)
		os.Remove(full)
	}
}
