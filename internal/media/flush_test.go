package media

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// flushCountingWriter records bytes and Flush calls, optionally gating
// every Write on a channel so tests can simulate a slow client.
type flushCountingWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	flushes int
	gate    chan struct{} // if non-nil, each Write receives once first
	err     error
}

func (w *flushCountingWriter) Write(p []byte) (int, error) {
	if w.gate != nil {
		<-w.gate
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	return w.buf.Write(p)
}

func (w *flushCountingWriter) Flush() {
	w.mu.Lock()
	w.flushes++
	w.mu.Unlock()
}

func (w *flushCountingWriter) snapshot() (int, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Len(), w.flushes
}

func TestFlushingSinkDeliversAllBytes(t *testing.T) {
	dst := &flushCountingWriter{}
	fs := NewFlushingSink(dst, FlushConfig{BufferBytes: 64})
	var want bytes.Buffer
	for i := 0; i < 200; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 7)
		want.Write(chunk)
		if _, err := fs.Write(chunk); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			fs.Barrier()
		}
	}
	if err := fs.CloseFlush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.buf.Bytes(), want.Bytes()) {
		t.Fatalf("delivered %d bytes, want %d (content mismatch)", dst.buf.Len(), want.Len())
	}
	if fs.BytesOut() != int64(want.Len()) {
		t.Errorf("BytesOut = %d, want %d", fs.BytesOut(), want.Len())
	}
	if _, got := dst.snapshot(); got == 0 {
		t.Error("no downstream flushes issued")
	}
	if _, ok := fs.FirstFlush(); !ok {
		t.Error("first flush never stamped")
	}
	if _, err := fs.Write([]byte("x")); err == nil {
		t.Error("write after close should fail")
	}
}

// TestFlushingSinkBackpressure fills the queue against a gated writer and
// asserts the producer blocks in Write until the consumer drains — and
// only then, proving the cap is the backpressure point.
func TestFlushingSinkBackpressure(t *testing.T) {
	dst := &flushCountingWriter{gate: make(chan struct{})}
	fs := NewFlushingSink(dst, FlushConfig{BufferBytes: 32})

	// The drain goroutine takes the first batch and blocks in the gated
	// Write; the queue then fills to its cap.
	if _, err := fs.Write(bytes.Repeat([]byte{1}, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(bytes.Repeat([]byte{2}, 32)); err != nil {
		t.Fatal(err)
	}

	blocked := make(chan error, 1)
	go func() {
		_, err := fs.Write(bytes.Repeat([]byte{3}, 16))
		blocked <- err
	}()
	select {
	case err := <-blocked:
		t.Fatalf("over-cap write returned early (err=%v); backpressure missing", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Let the slow client drain; the blocked write completes.
	go func() {
		for i := 0; i < 8; i++ {
			dst.gate <- struct{}{}
		}
	}()
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write stayed blocked after the consumer drained")
	}
	go func() {
		for {
			select {
			case dst.gate <- struct{}{}:
			case <-time.After(time.Second):
				return
			}
		}
	}()
	if err := fs.CloseFlush(); err != nil {
		t.Fatal(err)
	}
	if got := dst.buf.Len(); got != 64 {
		t.Errorf("delivered %d bytes, want 64", got)
	}
}

// TestFlushingSinkIntervalCoalescing asserts a long flush interval
// collapses rapid barriers into the header flush plus the final close
// flush, while interval 0 flushes at every barrier.
func TestFlushingSinkIntervalCoalescing(t *testing.T) {
	dst := &flushCountingWriter{}
	fs := NewFlushingSink(dst, FlushConfig{FlushInterval: time.Hour})
	for i := 0; i < 10; i++ {
		if _, err := fs.Write([]byte("data")); err != nil {
			t.Fatal(err)
		}
		fs.Barrier()
		// Give the drain goroutine a chance to see each barrier alone.
		time.Sleep(time.Millisecond)
	}
	if err := fs.CloseFlush(); err != nil {
		t.Fatal(err)
	}
	_, flushes := dst.snapshot()
	if flushes > 3 {
		t.Errorf("hour-long interval still flushed %d times; barriers not coalesced", flushes)
	}
	if flushes < 2 {
		t.Errorf("flushes = %d; want at least header + final", flushes)
	}

	eager := &flushCountingWriter{}
	fe := NewFlushingSink(eager, FlushConfig{})
	for i := 0; i < 5; i++ {
		if _, err := fe.Write([]byte("data")); err != nil {
			t.Fatal(err)
		}
		fe.Barrier()
		time.Sleep(time.Millisecond)
	}
	if err := fe.CloseFlush(); err != nil {
		t.Fatal(err)
	}
	if _, flushes := eager.snapshot(); flushes < 5 {
		t.Errorf("interval 0 flushed %d times for 5 barriers", flushes)
	}
}

func TestFlushingSinkStickyError(t *testing.T) {
	dst := &flushCountingWriter{err: errors.New("peer reset")}
	fs := NewFlushingSink(dst, FlushConfig{BufferBytes: 8})
	deadline := time.Now().Add(2 * time.Second)
	var err error
	for {
		_, err = fs.Write([]byte("abcdefgh"))
		if err != nil || time.Now().After(deadline) {
			break
		}
	}
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("peer reset")) {
		t.Fatalf("producer write error = %v, want sticky peer reset", err)
	}
	if cerr := fs.CloseFlush(); cerr == nil || !bytes.Contains([]byte(cerr.Error()), []byte("peer reset")) {
		t.Fatalf("CloseFlush = %v, want the sticky error", cerr)
	}
}
