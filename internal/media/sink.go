package media

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"v2v/internal/codec"
	"v2v/internal/container"
	"v2v/internal/frame"
	"v2v/internal/obs"
)

// Sink abstracts the destination of a synthesis run: a seekable VMF file
// (Writer) or a progressive stream (StreamWriter). The execution engine
// writes only through this interface, which is what lets V2V begin
// delivering output "within seconds" — packets flow as segments complete,
// before the whole result exists.
type Sink interface {
	// Info describes the output stream format.
	Info() container.StreamInfo
	// WriteFrame encodes fr as the next output frame.
	WriteFrame(fr *frame.Frame) error
	// WriteRawPacket splices an already-encoded packet (stream copy).
	WriteRawPacket(key bool, data []byte) error
	// WriteEncodedFrame splices a packet encoded on the sink's behalf by
	// an external encoder (parallel shards); counts as an encode.
	WriteEncodedFrame(key bool, data []byte) error
	// FramesWritten returns the number of packets written so far.
	FramesWritten() int64
	// Stats returns cumulative write statistics.
	Stats() Stats
	// Close finalizes the output.
	Close() error
	// Abort discards the output without finalizing it: a file sink removes
	// its temp file and never creates the target path; a stream sink stops
	// without the end-of-stream marker, so consumers see truncation rather
	// than a spuriously clean end.
	Abort() error
}

var (
	_ Sink = (*Writer)(nil)
	_ Sink = (*StreamWriter)(nil)
)

// vmsMagic introduces the progressive stream format: like VMF but with
// per-packet length framing instead of a trailing index, so a consumer
// can decode while the producer is still synthesizing.
const vmsMagic = "VMS1"

// StreamWriter writes the VMS progressive format to any io.Writer. Not
// safe for concurrent use.
type StreamWriter struct {
	w       io.Writer
	enc     *codec.Encoder
	info    container.StreamInfo
	pts     int64
	spliced bool
	stats   Stats
	rec     *obs.Recorder
	closed  bool
}

// NewStreamWriter emits the stream header and returns a progressive sink.
func NewStreamWriter(w io.Writer, info container.StreamInfo) (*StreamWriter, error) {
	if info.Codec == "" {
		info.Codec = codec.FourCC
	}
	if info.Codec != codec.FourCC {
		return nil, fmt.Errorf("media: unsupported codec %q", info.Codec)
	}
	enc, err := codec.NewEncoder(codec.Config{
		Width: info.Width, Height: info.Height,
		Quality: info.Quality, GOP: info.GOP, Level: info.Level,
	})
	if err != nil {
		return nil, err
	}
	ec := enc.Config()
	info.Quality, info.GOP, info.Level = ec.Quality, ec.GOP, ec.Level
	hdr, err := json.Marshal(info)
	if err != nil {
		return nil, err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
	for _, b := range [][]byte{[]byte(vmsMagic), lenBuf[:], hdr} {
		if _, err := w.Write(b); err != nil {
			return nil, fmt.Errorf("media: stream header: %w", err)
		}
	}
	return &StreamWriter{w: w, enc: enc, info: info}, nil
}

// Info returns the stream description.
func (s *StreamWriter) Info() container.StreamInfo { return s.info }

// FramesWritten returns the number of packets emitted.
func (s *StreamWriter) FramesWritten() int64 { return s.pts }

// Stats returns cumulative write statistics.
func (s *StreamWriter) Stats() Stats { return s.stats }

// SetRecorder attributes the stream writer's encode and packet-copy work
// to a per-request recorder (encodes are forwarded to the codec encoder).
func (s *StreamWriter) SetRecorder(rec *obs.Recorder) {
	s.rec = rec
	s.enc.SetRecorder(rec)
}

func (s *StreamWriter) writePacket(key bool, data []byte) error {
	if s.closed {
		return errors.New("media: stream writer closed")
	}
	var head [5]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(data)))
	if key {
		head[4] = 1
	}
	if _, err := s.w.Write(head[:]); err != nil {
		return fmt.Errorf("media: stream packet: %w", err)
	}
	if _, err := s.w.Write(data); err != nil {
		return fmt.Errorf("media: stream packet: %w", err)
	}
	s.pts++
	return nil
}

// WriteFrame encodes fr and streams its packet.
func (s *StreamWriter) WriteFrame(fr *frame.Frame) error {
	if s.spliced {
		s.enc.ForceKeyframe()
		s.spliced = false
	}
	pkt, err := s.enc.Encode(fr)
	if err != nil {
		return err
	}
	if err := s.writePacket(pkt.Key, pkt.Data); err != nil {
		return err
	}
	s.stats.FramesEncoded++
	return nil
}

// WriteRawPacket streams a stream-copied packet.
func (s *StreamWriter) WriteRawPacket(key bool, data []byte) error {
	copyStart := time.Now()
	if err := s.writePacket(key, data); err != nil {
		return err
	}
	s.rec.StageObserve(obs.StageCopy, 1, int64(len(data)), time.Since(copyStart))
	s.spliced = true
	s.stats.PacketsCopied++
	s.stats.BytesCopied += int64(len(data))
	return nil
}

// WriteEncodedFrame streams a shard-encoded packet.
func (s *StreamWriter) WriteEncodedFrame(key bool, data []byte) error {
	if err := s.writePacket(key, data); err != nil {
		return err
	}
	s.spliced = true
	s.stats.FramesEncoded++
	return nil
}

// Abort stops the stream without the end-of-stream marker: the consumer's
// read fails or blocks at the truncation point instead of seeing a clean
// end, which is the correct signal for an abandoned synthesis.
func (s *StreamWriter) Abort() error {
	s.closed = true
	return nil
}

// Close writes the end-of-stream marker (a zero-length packet header).
func (s *StreamWriter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var head [5]byte
	if _, err := s.w.Write(head[:]); err != nil {
		return fmt.Errorf("media: stream trailer: %w", err)
	}
	return nil
}

// StreamReader consumes the VMS progressive format, decoding frames as
// packets arrive.
type StreamReader struct {
	r    io.Reader
	dec  *codec.Decoder
	info container.StreamInfo
	done bool
}

// NewStreamReader parses the stream header.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("media: stream magic: %w", err)
	}
	if string(head[:4]) != vmsMagic {
		return nil, fmt.Errorf("media: bad stream magic %q", head[:4])
	}
	hdrLen := binary.LittleEndian.Uint32(head[4:])
	if hdrLen == 0 || hdrLen > 1<<20 {
		return nil, fmt.Errorf("media: implausible stream header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("media: stream header: %w", err)
	}
	var info container.StreamInfo
	if err := json.Unmarshal(hdr, &info); err != nil {
		return nil, fmt.Errorf("media: stream header: %w", err)
	}
	if err := info.Validate(); err != nil {
		return nil, err
	}
	dec, err := codec.NewDecoder(codec.Config{
		Width: info.Width, Height: info.Height,
		Quality: info.Quality, GOP: info.GOP, Level: info.Level,
	})
	if err != nil {
		return nil, err
	}
	return &StreamReader{r: r, dec: dec, info: info}, nil
}

// Info returns the stream description.
func (s *StreamReader) Info() container.StreamInfo { return s.info }

// NextPacket reads one packet; io.EOF signals a clean end of stream.
func (s *StreamReader) NextPacket() (key bool, data []byte, err error) {
	if s.done {
		return false, nil, io.EOF
	}
	var head [5]byte
	if _, err := io.ReadFull(s.r, head[:]); err != nil {
		return false, nil, fmt.Errorf("media: stream packet header: %w", err)
	}
	size := binary.LittleEndian.Uint32(head[:4])
	if size == 0 {
		s.done = true
		return false, nil, io.EOF
	}
	if size > 1<<30 {
		return false, nil, fmt.Errorf("media: implausible packet size %d", size)
	}
	data = make([]byte, size)
	if _, err := io.ReadFull(s.r, data); err != nil {
		return false, nil, fmt.Errorf("media: stream packet body: %w", err)
	}
	return head[4] == 1, data, nil
}

// NextFrame reads and decodes the next frame; io.EOF at end of stream.
func (s *StreamReader) NextFrame() (*frame.Frame, error) {
	_, data, err := s.NextPacket()
	if err != nil {
		return nil, err
	}
	return s.dec.Decode(data)
}
