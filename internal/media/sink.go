package media

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"v2v/internal/codec"
	"v2v/internal/container"
	"v2v/internal/frame"
	"v2v/internal/obs"
)

// Sink abstracts the destination of a synthesis run: a seekable VMF file
// (Writer) or a progressive stream (StreamWriter). The execution engine
// writes only through this interface, which is what lets V2V begin
// delivering output "within seconds" — packets flow as segments complete,
// before the whole result exists.
type Sink interface {
	// Info describes the output stream format.
	Info() container.StreamInfo
	// WriteFrame encodes fr as the next output frame.
	WriteFrame(fr *frame.Frame) error
	// WriteRawPacket splices an already-encoded packet (stream copy).
	WriteRawPacket(key bool, data []byte) error
	// WriteEncodedFrame splices a packet encoded on the sink's behalf by
	// an external encoder (parallel shards); counts as an encode.
	WriteEncodedFrame(key bool, data []byte) error
	// FramesWritten returns the number of packets written so far.
	FramesWritten() int64
	// Stats returns cumulative write statistics.
	Stats() Stats
	// Close finalizes the output.
	Close() error
	// Abort discards the output without finalizing it: a file sink removes
	// its temp file and never creates the target path; a stream sink stops
	// without the end-of-stream marker, so consumers see truncation rather
	// than a spuriously clean end.
	Abort() error
}

var (
	_ Sink = (*Writer)(nil)
	_ Sink = (*StreamWriter)(nil)
)

// vmsMagic introduces the progressive stream format: like VMF but with
// per-packet length framing instead of a trailing index, so a consumer
// can decode while the producer is still synthesizing.
const vmsMagic = "VMS1"

// Packet flag bytes. 0 and 1 mark non-key and key data packets; 2 marks
// the typed end-of-stream trailer whose body is a JSON StreamTrailer.
const (
	flagNonKey  = 0
	flagKey     = 1
	flagTrailer = 2
)

// maxTrailerLen bounds the trailer body a reader will accept. Trailers
// carry a short JSON status, never media data.
const maxTrailerLen = 1 << 16

// Typed end-of-stream errors. A consumer that reads a VMS stream to the
// end sees exactly one of three outcomes: clean io.EOF (trailer status
// "ok" or the legacy zero-length header), an error wrapping
// ErrStreamFailed (the producer finished the header but the synthesis
// failed — the trailer carries the remote error text), or an error
// wrapping ErrTruncatedStream (the bytes stopped without any trailer:
// a crashed producer or a cut connection).
var (
	ErrTruncatedStream = errors.New("media: stream truncated before end-of-stream trailer")
	ErrStreamFailed    = errors.New("media: stream producer reported failure")
)

// StreamTrailer is the typed end-of-stream marker. Status is "ok" for a
// complete stream or "error" when the producer failed after the header
// was already out; Packets echoes the packet count so readers can
// cross-check; Error carries the producer's message on failure.
type StreamTrailer struct {
	Status  string `json:"status"`
	Packets int64  `json:"packets"`
	Error   string `json:"error,omitempty"`
}

// StreamWriter writes the VMS progressive format to any io.Writer. Not
// safe for concurrent use.
type StreamWriter struct {
	w       io.Writer
	enc     *codec.Encoder
	info    container.StreamInfo
	pts     int64
	spliced bool
	stats   Stats
	rec     *obs.Recorder
	closed  bool
}

// NewStreamWriter emits the stream header and returns a progressive sink.
func NewStreamWriter(w io.Writer, info container.StreamInfo) (*StreamWriter, error) {
	if info.Codec == "" {
		info.Codec = codec.FourCC
	}
	if info.Codec != codec.FourCC {
		return nil, fmt.Errorf("media: unsupported codec %q", info.Codec)
	}
	enc, err := codec.NewEncoder(codec.Config{
		Width: info.Width, Height: info.Height,
		Quality: info.Quality, GOP: info.GOP, Level: info.Level,
	})
	if err != nil {
		return nil, err
	}
	ec := enc.Config()
	info.Quality, info.GOP, info.Level = ec.Quality, ec.GOP, ec.Level
	hdr, err := json.Marshal(info)
	if err != nil {
		return nil, err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
	for _, b := range [][]byte{[]byte(vmsMagic), lenBuf[:], hdr} {
		if _, err := w.Write(b); err != nil {
			return nil, fmt.Errorf("media: stream header: %w", err)
		}
	}
	return &StreamWriter{w: w, enc: enc, info: info}, nil
}

// Info returns the stream description.
func (s *StreamWriter) Info() container.StreamInfo { return s.info }

// FramesWritten returns the number of packets emitted.
func (s *StreamWriter) FramesWritten() int64 { return s.pts }

// Stats returns cumulative write statistics.
func (s *StreamWriter) Stats() Stats { return s.stats }

// SetRecorder attributes the stream writer's encode and packet-copy work
// to a per-request recorder (encodes are forwarded to the codec encoder).
func (s *StreamWriter) SetRecorder(rec *obs.Recorder) {
	s.rec = rec
	s.enc.SetRecorder(rec)
}

func (s *StreamWriter) writePacket(key bool, data []byte) error {
	if s.closed {
		return errors.New("media: stream writer closed")
	}
	var head [5]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(data)))
	if key {
		head[4] = flagKey
	}
	if _, err := s.w.Write(head[:]); err != nil {
		return fmt.Errorf("media: stream packet: %w", err)
	}
	if _, err := s.w.Write(data); err != nil {
		return fmt.Errorf("media: stream packet: %w", err)
	}
	s.pts++
	return nil
}

// WriteFrame encodes fr and streams its packet.
func (s *StreamWriter) WriteFrame(fr *frame.Frame) error {
	if s.spliced {
		s.enc.ForceKeyframe()
		s.spliced = false
	}
	pkt, err := s.enc.Encode(fr)
	if err != nil {
		return err
	}
	err = s.writePacket(pkt.Key, pkt.Data)
	s.enc.Recycle(pkt) // the stream wrote the bytes; reuse the buffer
	if err != nil {
		return err
	}
	s.stats.FramesEncoded++
	return nil
}

// WriteRawPacket streams a stream-copied packet.
func (s *StreamWriter) WriteRawPacket(key bool, data []byte) error {
	copyStart := time.Now()
	if err := s.writePacket(key, data); err != nil {
		return err
	}
	s.rec.StageObserve(obs.StageCopy, 1, int64(len(data)), time.Since(copyStart))
	s.spliced = true
	s.stats.PacketsCopied++
	s.stats.BytesCopied += int64(len(data))
	return nil
}

// WriteEncodedFrame streams a shard-encoded packet.
func (s *StreamWriter) WriteEncodedFrame(key bool, data []byte) error {
	if err := s.writePacket(key, data); err != nil {
		return err
	}
	s.spliced = true
	s.stats.FramesEncoded++
	return nil
}

// Abort stops the stream without the end-of-stream marker: the consumer's
// read fails or blocks at the truncation point instead of seeing a clean
// end, which is the correct signal for an abandoned synthesis.
func (s *StreamWriter) Abort() error {
	s.closed = true
	return nil
}

// AbortWithError stops the stream but first writes a typed error trailer,
// so a consumer that already received the header can distinguish "the
// producer failed" (with its message) from a cut connection. The write is
// best-effort: if the transport is the thing that failed, the consumer
// sees truncation instead, which is still accurate.
func (s *StreamWriter) AbortWithError(cause error) error {
	if s.closed {
		return nil
	}
	s.closed = true
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	return s.writeTrailer(StreamTrailer{Status: "error", Packets: s.pts, Error: msg})
}

// Close writes the typed end-of-stream trailer marking a complete stream.
func (s *StreamWriter) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.writeTrailer(StreamTrailer{Status: "ok", Packets: s.pts})
}

func (s *StreamWriter) writeTrailer(tr StreamTrailer) error {
	body, err := json.Marshal(tr)
	if err != nil {
		return fmt.Errorf("media: stream trailer: %w", err)
	}
	var head [5]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(body)))
	head[4] = flagTrailer
	if _, err := s.w.Write(head[:]); err != nil {
		return fmt.Errorf("media: stream trailer: %w", err)
	}
	if _, err := s.w.Write(body); err != nil {
		return fmt.Errorf("media: stream trailer: %w", err)
	}
	return nil
}

// StreamReader consumes the VMS progressive format, decoding frames as
// packets arrive.
type StreamReader struct {
	r          io.Reader
	dec        *codec.Decoder
	info       container.StreamInfo
	done       bool
	trailer    StreamTrailer
	hasTrailer bool
}

// NewStreamReader parses the stream header.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("media: stream magic: %w", err)
	}
	if string(head[:4]) != vmsMagic {
		return nil, fmt.Errorf("media: bad stream magic %q", head[:4])
	}
	hdrLen := binary.LittleEndian.Uint32(head[4:])
	if hdrLen == 0 || hdrLen > 1<<20 {
		return nil, fmt.Errorf("media: implausible stream header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("media: stream header: %w", err)
	}
	var info container.StreamInfo
	if err := json.Unmarshal(hdr, &info); err != nil {
		return nil, fmt.Errorf("media: stream header: %w", err)
	}
	if err := info.Validate(); err != nil {
		return nil, err
	}
	dec, err := codec.NewDecoder(codec.Config{
		Width: info.Width, Height: info.Height,
		Quality: info.Quality, GOP: info.GOP, Level: info.Level,
	})
	if err != nil {
		return nil, err
	}
	return &StreamReader{r: r, dec: dec, info: info}, nil
}

// Info returns the stream description.
func (s *StreamReader) Info() container.StreamInfo { return s.info }

// NextPacket reads one packet; io.EOF signals a clean end of stream
// (typed "ok" trailer, or the legacy zero-length header older producers
// wrote). A stream that stops mid-flight returns an error wrapping
// ErrTruncatedStream; a typed error trailer returns an error wrapping
// ErrStreamFailed carrying the producer's message.
func (s *StreamReader) NextPacket() (key bool, data []byte, err error) {
	if s.done {
		return false, nil, io.EOF
	}
	var head [5]byte
	if _, err := io.ReadFull(s.r, head[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return false, nil, fmt.Errorf("media: stream packet header: %w", ErrTruncatedStream)
		}
		return false, nil, fmt.Errorf("media: stream packet header: %w", err)
	}
	size := binary.LittleEndian.Uint32(head[:4])
	if head[4] == flagTrailer {
		return false, nil, s.readTrailer(size)
	}
	if size == 0 {
		// Legacy clean end-of-stream marker (pre-trailer producers).
		s.done = true
		return false, nil, io.EOF
	}
	if size > 1<<30 {
		return false, nil, fmt.Errorf("media: implausible packet size %d", size)
	}
	data = make([]byte, size)
	if _, err := io.ReadFull(s.r, data); err != nil {
		return false, nil, fmt.Errorf("media: stream packet body: %w: %w", ErrTruncatedStream, err)
	}
	return head[4] == flagKey, data, nil
}

// readTrailer consumes and interprets a typed end-of-stream trailer.
func (s *StreamReader) readTrailer(size uint32) error {
	if size == 0 || size > maxTrailerLen {
		return fmt.Errorf("media: implausible stream trailer length %d", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(s.r, body); err != nil {
		return fmt.Errorf("media: stream trailer body: %w: %w", ErrTruncatedStream, err)
	}
	var tr StreamTrailer
	if err := json.Unmarshal(body, &tr); err != nil {
		return fmt.Errorf("media: stream trailer: %w", err)
	}
	s.trailer, s.hasTrailer = tr, true
	s.done = true
	if tr.Status != "ok" {
		if tr.Error != "" {
			return fmt.Errorf("%w: %s", ErrStreamFailed, tr.Error)
		}
		return ErrStreamFailed
	}
	return io.EOF
}

// Trailer returns the typed end-of-stream trailer, if one was read.
// Legacy streams ending in the zero-length marker have none.
func (s *StreamReader) Trailer() (StreamTrailer, bool) { return s.trailer, s.hasTrailer }

// NextFrame reads and decodes the next frame; io.EOF at end of stream.
func (s *StreamReader) NextFrame() (*frame.Frame, error) {
	_, data, err := s.NextPacket()
	if err != nil {
		return nil, err
	}
	return s.dec.Decode(data)
}
