package media

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// FlushConfig tunes a FlushingSink.
type FlushConfig struct {
	// BufferBytes caps the bytes queued but not yet written downstream.
	// A producer whose consumer falls behind blocks in Write once the
	// queue is full — per-request backpressure that stalls only the
	// delivery goroutine, never shard workers. <= 0 selects
	// DefaultStreamBufferBytes.
	BufferBytes int
	// FlushInterval is the minimum spacing between barrier-triggered
	// downstream flushes, bounding flush syscalls under plans with many
	// small segments. <= 0 flushes at every barrier. The first flush
	// (container header) and the final flush at close are never delayed.
	FlushInterval time.Duration
}

// DefaultStreamBufferBytes is the queue cap used when FlushConfig leaves
// BufferBytes unset: enough for a few GOPs of tiny-profile output without
// letting one slow client hold megabytes of rendered packets.
const DefaultStreamBufferBytes = 256 << 10

// FlushingSink decouples synthesis from a (possibly slow) streaming
// consumer. The producer writes into a bounded in-memory queue; a single
// drain goroutine copies queued bytes to the destination writer and calls
// its Flush method (if it has one — http.ResponseWriter does) at barrier
// points, so network syscalls and a stalled client never sit between
// shard workers and the sink.
//
// Write, Barrier, and CloseFlush are safe to call from one producer
// goroutine; accessors are safe from any goroutine.
type FlushingSink struct {
	dst      io.Writer
	cap      int
	interval time.Duration

	mu         sync.Mutex
	cond       *sync.Cond
	pending    []byte
	barrier    bool
	closed     bool
	err        error
	firstFlush time.Time
	bytesOut   int64
	flushes    int64

	drainDone chan struct{}
}

// NewFlushingSink starts the drain goroutine and returns the sink. The
// caller must call CloseFlush to stop it and observe any write error.
func NewFlushingSink(dst io.Writer, cfg FlushConfig) *FlushingSink {
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = DefaultStreamBufferBytes
	}
	f := &FlushingSink{
		dst:       dst,
		cap:       cfg.BufferBytes,
		interval:  cfg.FlushInterval,
		drainDone: make(chan struct{}),
	}
	f.cond = sync.NewCond(&f.mu)
	go f.drain()
	return f
}

// Write queues p for delivery, blocking while the queue is over its byte
// cap (the backpressure point). The data is copied, so callers may reuse
// p. A downstream write failure is sticky: every later Write returns it,
// which is what aborts the synthesis feeding this sink.
func (f *FlushingSink) Write(p []byte) (int, error) {
	f.mu.Lock()
	for f.err == nil && !f.closed && len(f.pending) > 0 && len(f.pending)+len(p) > f.cap {
		f.cond.Wait()
	}
	if f.err != nil {
		err := f.err
		f.mu.Unlock()
		return 0, err
	}
	if f.closed {
		f.mu.Unlock()
		return 0, errors.New("media: flushing sink closed")
	}
	f.pending = append(f.pending, p...)
	f.cond.Broadcast()
	f.mu.Unlock()
	return len(p), nil
}

// Barrier marks a flush point: the drain goroutine flushes the
// destination once everything queued so far is written, coalesced by
// FlushInterval. Segment boundaries (and the container header) are the
// intended barrier points.
func (f *FlushingSink) Barrier() {
	f.mu.Lock()
	f.barrier = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// CloseFlush drains the queue, performs a final flush, stops the drain
// goroutine, and returns the sticky downstream error, if any.
func (f *FlushingSink) CloseFlush() error {
	f.mu.Lock()
	alreadyClosed := f.closed
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	if !alreadyClosed {
		<-f.drainDone
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// FirstFlush reports when the first bytes reached the destination and
// were flushed — the honest time-to-first-output for a network consumer.
func (f *FlushingSink) FirstFlush() (time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstFlush, !f.firstFlush.IsZero()
}

// BytesOut returns the bytes written downstream so far.
func (f *FlushingSink) BytesOut() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytesOut
}

// Flushes returns how many downstream flushes have been issued.
func (f *FlushingSink) Flushes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushes
}

// drain is the single consumer of the queue. It takes whole batches under
// the lock but performs downstream writes and flushes unlocked, so a slow
// destination blocks only this goroutine (and, via the byte cap, the
// producer's Write).
func (f *FlushingSink) drain() {
	defer close(f.drainDone)
	var lastFlush time.Time
	flushed := false
	barrierPending := false
	for {
		f.mu.Lock()
		for len(f.pending) == 0 && !f.barrier && !f.closed {
			f.cond.Wait()
		}
		batch := f.pending
		f.pending = nil
		if f.barrier {
			barrierPending = true
			f.barrier = false
		}
		closed := f.closed
		failed := f.err != nil
		f.cond.Broadcast()
		f.mu.Unlock()

		if !failed && len(batch) > 0 {
			if _, werr := f.dst.Write(batch); werr != nil {
				f.mu.Lock()
				f.err = fmt.Errorf("media: flushing sink: %w", werr)
				f.cond.Broadcast()
				f.mu.Unlock()
				failed = true
			} else {
				f.mu.Lock()
				f.bytesOut += int64(len(batch))
				f.mu.Unlock()
			}
		}
		if !failed && (closed || barrierPending) {
			// The first flush (header) and the final flush are immediate;
			// intermediate barriers are coalesced by the flush interval.
			if closed || !flushed || f.interval <= 0 || time.Since(lastFlush) >= f.interval {
				if fl, ok := f.dst.(interface{ Flush() }); ok {
					fl.Flush()
				}
				now := time.Now()
				lastFlush = now
				barrierPending = false
				f.mu.Lock()
				f.flushes++
				if !flushed {
					f.firstFlush = now
				}
				f.mu.Unlock()
				flushed = true
			}
		}
		if closed {
			return
		}
	}
}
