package media

import (
	"container/list"
	"context"
	"sync"

	"v2v/internal/obs"
)

// Result-cache metrics, exported via the default obs registry (scraped at
// v2vserve's /metrics). Every ResultCache in the process feeds the same
// instruments; the cmds create exactly one shared cache.
var (
	resHits = obs.Default().Counter("v2v_rescache_hits_total",
		"Encoded-result cache hits (segments spliced without rendering), including singleflight waiters.")
	resMisses = obs.Default().Counter("v2v_rescache_misses_total",
		"Encoded-result cache misses (segments rendered and filled).")
	resEvictions = obs.Default().Counter("v2v_rescache_evictions_total",
		"Cached result segments evicted to stay under the byte budget.")
	resBytes = obs.Default().Gauge("v2v_rescache_bytes",
		"Encoded packet bytes currently resident in result caches.")
	cacheBytesRes = obs.Default().Gauge(`v2v_cache_bytes{cache="result"}`,
		"Bytes currently resident, per cache (gop = decoded GOPs, result = encoded segments).")
	cacheBudgetRes = obs.Default().Gauge(`v2v_cache_budget_bytes{cache="result"}`,
		"Configured byte budget, per cache (gop = decoded GOPs, result = encoded segments).")
)

// DefaultResultCacheBytes is the budget used when a result cache is
// created with no explicit size.
const DefaultResultCacheBytes = 256 << 20

// EncodedPacket is one encoded output packet held by the result cache.
// Data is immutable once cached.
type EncodedPacket struct {
	Key  bool
	Data []byte
}

// ResultSegment is an immutable cached render result: the complete,
// in-order encoded packets of one output segment. The first packet is
// always a keyframe (segments are encoded by a fresh encoder), so a
// cached segment splices into any output position.
type ResultSegment struct {
	Packets []EncodedPacket
	bytes   int64
}

// NewResultSegment wraps packets, charging their payload bytes plus a
// small per-packet overhead.
func NewResultSegment(pkts []EncodedPacket) *ResultSegment {
	s := &ResultSegment{Packets: pkts}
	for _, p := range pkts {
		s.bytes += int64(len(p.Data)) + 32
	}
	return s
}

// Bytes returns the charged size of the segment.
func (s *ResultSegment) Bytes() int64 { return s.bytes }

// ResultCache memoizes the synthesized output of rendered segments across
// queries, keyed by canonical plan fingerprint + source content identity
// (plan.Fingerprinter). Where the GOP cache removes redundant source
// *decodes*, this removes the filter + encode cost entirely: a repeated
// or overlapping query splices the cached packets as a stream copy.
//
// Concurrency mirrors GOPCache: resident entries are shared (immutable),
// concurrent misses on one key collapse singleflight-style, and a failed
// or panicked fill releases the key without caching the error. Eviction
// is LRU under the cache's own byte budget, or delegated to a shared
// Arbiter when attached (AttachArbiter).
type ResultCache struct {
	mu       sync.Mutex
	budget   int64
	bytes    int64
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used, values *resEntry
	inflight map[string]*resFill
	client   *BudgetClient

	hits, misses, evictions int64
}

type resEntry struct {
	key string
	seg *ResultSegment
}

type resFill struct {
	done chan struct{}
	seg  *ResultSegment
	err  error
}

// NewResultCache returns a cache bounded by budgetBytes of encoded packet
// data; budgetBytes <= 0 uses DefaultResultCacheBytes.
func NewResultCache(budgetBytes int64) *ResultCache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultResultCacheBytes
	}
	cacheBudgetRes.Set(float64(budgetBytes))
	return &ResultCache{
		budget:   budgetBytes,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*resFill{},
	}
}

// Budget returns the cache's configured byte budget.
func (c *ResultCache) Budget() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget
}

// AttachArbiter hands eviction decisions to a shared budget arbiter: the
// cache stops enforcing its own cap (its budget becomes the basis of its
// protected floor) and inserts reserve from the arbiter instead. Call
// once at setup, before the cache serves traffic.
func (c *ResultCache) AttachArbiter(a *Arbiter) {
	cl := a.Register("result", c.Budget, c.evictBytes)
	c.mu.Lock()
	c.client = cl
	c.mu.Unlock()
}

// GetOrFill returns the cached result for key, or runs fill to produce
// it. Concurrent misses on one key run fill exactly once; waiters block
// until the fill completes or ctx is done. hit reports whether this
// caller avoided rendering; filled reports whether this caller ran fill
// (so an error with filled=false came from a concurrent fill or ctx, and
// the caller may fall back to rendering directly). A fill error is
// returned to every waiter and nothing is cached.
func (c *ResultCache) GetOrFill(ctx context.Context, key string, fill func() (*ResultSegment, error)) (seg *ResultSegment, hit, filled bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		resHits.Inc()
		return el.Value.(*resEntry).seg, true, false, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, false, false, ctx.Err()
		}
		if f.err != nil {
			return nil, false, false, f.err
		}
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		resHits.Inc()
		return f.seg, true, false, nil
	}
	f := &resFill{done: make(chan struct{}), err: errFillIncomplete}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()
	resMisses.Inc()

	// Run the fill outside the lock. The deferred cleanup runs even if
	// fill panics (the panic propagates to the caller): waiters then see
	// errFillIncomplete and the key is released for a later retry.
	func() {
		defer func() {
			// Admission (which may take the arbiter lock) happens before
			// the cache lock — never the reverse order.
			admitted := false
			if f.err == nil && f.seg != nil {
				admitted = c.admit(key, f.seg.bytes)
			}
			c.mu.Lock()
			delete(c.inflight, key)
			if admitted {
				el := c.lru.PushFront(&resEntry{key: key, seg: f.seg})
				c.entries[key] = el
				c.bytes += f.seg.bytes
				resBytes.Add(float64(f.seg.bytes))
				cacheBytesRes.Add(float64(f.seg.bytes))
				if c.client == nil {
					c.evictOverBudgetLocked(el)
				}
			}
			c.mu.Unlock()
			close(f.done)
		}()
		f.seg, f.err = fill()
	}()
	return f.seg, false, true, f.err
}

// admit decides whether a filled entry of b bytes may be cached,
// reserving shared budget when an arbiter is attached. Standalone caches
// admit anything that fits their own budget (insertion then evicts from
// the tail). Must be called without holding c.mu.
func (c *ResultCache) admit(key string, b int64) bool {
	c.mu.Lock()
	cl := c.client
	budget := c.budget
	c.mu.Unlock()
	if b <= 0 {
		return false
	}
	if cl != nil {
		return cl.Reserve(key, b)
	}
	return b <= budget
}

// evictOverBudgetLocked evicts from the LRU tail until the standalone
// budget holds, never evicting keep.
func (c *ResultCache) evictOverBudgetLocked(keep *list.Element) {
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil || back == keep {
			break
		}
		c.removeLocked(back)
	}
}

func (c *ResultCache) removeLocked(el *list.Element) int64 {
	e := el.Value.(*resEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.seg.bytes
	c.evictions++
	resEvictions.Inc()
	resBytes.Add(-float64(e.seg.bytes))
	cacheBytesRes.Add(-float64(e.seg.bytes))
	return e.seg.bytes
}

// evictBytes frees at least need bytes from the LRU tail (or empties the
// cache), returning the bytes freed — the arbiter's eviction callback.
func (c *ResultCache) evictBytes(need int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for freed < need {
		back := c.lru.Back()
		if back == nil {
			break
		}
		freed += c.removeLocked(back)
	}
	return freed
}

// ResultCacheStats is a point-in-time snapshot of one cache's counters.
type ResultCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
}

// Stats snapshots the cache counters.
func (c *ResultCache) Stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Budget:    c.budget,
	}
}

// ResultCacheEntry describes one resident encoded-result segment, for
// cache introspection (v2vserve's /debug/caches).
type ResultCacheEntry struct {
	Key     string `json:"key"`
	Packets int    `json:"packets"`
	Bytes   int64  `json:"bytes"`
}

// Entries snapshots the resident entries, most recently used first.
func (c *ResultCache) Entries() []ResultCacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ResultCacheEntry, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*resEntry)
		out = append(out, ResultCacheEntry{
			Key:     e.key,
			Packets: len(e.seg.Packets),
			Bytes:   e.seg.Bytes(),
		})
	}
	return out
}
