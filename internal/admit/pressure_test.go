package admit

import (
	"os"
	"path/filepath"
	"testing"
)

func TestNextLevelHysteresis(t *testing.T) {
	cases := []struct {
		cur  PressureLevel
		util float64
		want PressureLevel
	}{
		{PressureNone, 0.50, PressureNone},
		{PressureNone, 0.76, PressureElevated},
		{PressureNone, 0.95, PressureCritical},
		// Elevated holds until utilization falls below the exit band.
		{PressureElevated, 0.70, PressureElevated},
		{PressureElevated, 0.60, PressureNone},
		{PressureElevated, 0.91, PressureCritical},
		// Critical holds above its exit band, steps down, then clears.
		{PressureCritical, 0.85, PressureCritical},
		{PressureCritical, 0.70, PressureElevated},
		{PressureCritical, 0.50, PressureNone},
	}
	for _, tc := range cases {
		if got := nextLevel(tc.cur, tc.util); got != tc.want {
			t.Errorf("nextLevel(%v, %.2f) = %v, want %v", tc.cur, tc.util, got, tc.want)
		}
	}
}

func TestMonitorSyntheticEpisode(t *testing.T) {
	m := NewMonitor(0)
	util := 0.2
	m.SetSampler(func() MemSample {
		return MemSample{Used: uint64(util * 1000), Limit: 1000}
	})

	var levels []PressureLevel
	m.OnChange(func(l PressureLevel) { levels = append(levels, l) })
	if len(levels) != 1 || levels[0] != PressureNone {
		t.Fatalf("initial OnChange = %v, want [none]", levels)
	}

	steps := []struct {
		util float64
		want PressureLevel
	}{
		{0.5, PressureNone},
		{0.8, PressureElevated},
		{0.95, PressureCritical},
		{0.85, PressureCritical}, // hysteresis: still critical
		{0.7, PressureElevated},
		{0.3, PressureNone},
	}
	for _, s := range steps {
		util = s.util
		if got := m.Poll(); got != s.want {
			t.Fatalf("Poll at util %.2f = %v, want %v", s.util, got, s.want)
		}
	}
	// OnChange fired only on transitions: none(init) → elevated →
	// critical → elevated → none.
	want := []PressureLevel{PressureNone, PressureElevated, PressureCritical, PressureElevated, PressureNone}
	if len(levels) != len(want) {
		t.Fatalf("transitions = %v, want %v", levels, want)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", levels, want)
		}
	}
	if s := m.LastSample(); s.Limit != 1000 {
		t.Errorf("LastSample.Limit = %d, want 1000", s.Limit)
	}
}

func TestPressureLevelFactors(t *testing.T) {
	if PressureNone.Factor() != 1 || PressureElevated.Factor() != 0.5 || PressureCritical.Factor() != 0.25 {
		t.Errorf("factors = %v/%v/%v, want 1/0.5/0.25",
			PressureNone.Factor(), PressureElevated.Factor(), PressureCritical.Factor())
	}
}

func TestReadCgroupLimit(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if got := readCgroupLimit(write("v2", "1073741824\n")); got != 1<<30 {
		t.Errorf("v2 limit = %d, want 1GiB", got)
	}
	if got := readCgroupLimit(write("max", "max\n")); got != 0 {
		t.Errorf("'max' = %d, want 0 (unlimited)", got)
	}
	if got := readCgroupLimit(write("v1nolimit", "9223372036854771712\n")); got != 0 {
		t.Errorf("v1 no-limit sentinel = %d, want 0", got)
	}
	if got := readCgroupLimit(filepath.Join(dir, "missing")); got != 0 {
		t.Errorf("missing file = %d, want 0", got)
	}
}

func TestReadMeminfoTotal(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "meminfo")
	content := "MemTotal:       16384256 kB\nMemFree:         1234 kB\n"
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readMeminfoTotal(p); got != 16384256*1024 {
		t.Errorf("MemTotal = %d, want %d", got, 16384256*1024)
	}
	if got := readMeminfoTotal(filepath.Join(dir, "missing")); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
}

func TestSystemSampleUsedNonZero(t *testing.T) {
	s := SystemSample()
	if s.Used == 0 {
		t.Error("SystemSample().Used = 0, want > 0 (runtime always holds memory)")
	}
}

func TestUtilizationNoLimit(t *testing.T) {
	if u := (MemSample{Used: 100}).Utilization(); u != 0 {
		t.Errorf("utilization without limit = %v, want 0", u)
	}
}
