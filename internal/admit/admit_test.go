package admit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"v2v/internal/obs"
)

func mustAcquire(t *testing.T, c *Controller, req Request) *Ticket {
	t.Helper()
	tk, err := c.Acquire(context.Background(), req)
	if err != nil {
		t.Fatalf("Acquire(%+v) = %v", req, err)
	}
	return tk
}

func waitQueued(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Queued == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queued = %d, want %d", c.Stats().Queued, n)
}

// TestWeightedFairShare verifies that a 3:1-weighted pair of tenants
// bursting together is admitted in a 3:1 ratio (within ±15%), the
// acceptance bound for the overload scenario.
func TestWeightedFairShare(t *testing.T) {
	c := NewController(Config{
		SlotCap:  1,
		MaxQueue: 200,
		MaxWait:  30 * time.Second,
		Weights:  map[string]float64{"a": 3, "b": 1},
	})

	holder := mustAcquire(t, c, Request{Tenant: "a", Cost: 1})

	const perTenant = 40
	order := make(chan string, 2*perTenant)
	var wg sync.WaitGroup
	for _, tenant := range []string{"a", "b"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tn string) {
				defer wg.Done()
				tk := mustAcquire(t, c, Request{Tenant: tn, Cost: 1})
				order <- tn
				tk.Release(nil)
			}(tenant)
		}
	}
	waitQueued(t, c, 2*perTenant)
	holder.Release(nil) // start the deterministic drain
	wg.Wait()
	close(order)

	// The fair share shows in the drain prefix: while both tenants are
	// backlogged, admissions should split 3:1. Once a queue empties the
	// remainder belongs to the other tenant, so only the first perTenant*4/3
	// admissions (b's backlog lifetime) are meaningful; use the first 40.
	counts := map[string]int{}
	seen := 0
	for tn := range order {
		if seen < 40 {
			counts[tn]++
		}
		seen++
	}
	total := counts["a"] + counts["b"]
	shareA := float64(counts["a"]) / float64(total)
	if math.Abs(shareA-0.75) > 0.15 {
		t.Errorf("tenant a share = %.2f (a=%d b=%d), want 0.75 ±0.15", shareA, counts["a"], counts["b"])
	}
}

// TestDeadlineOrderedDispatch verifies earlier deadlines dispatch first
// within a tenant, with no-deadline requests last.
func TestDeadlineOrderedDispatch(t *testing.T) {
	c := NewController(Config{SlotCap: 1, MaxQueue: 10, MaxWait: 30 * time.Second})
	holder := mustAcquire(t, c, Request{Cost: 1})

	now := time.Now()
	deadlines := []time.Duration{10 * time.Minute, 5 * time.Minute, 20 * time.Minute, 0}
	labels := []string{"d10", "d5", "d20", "none"}
	order := make(chan string, len(deadlines))
	var wg sync.WaitGroup
	for i := range deadlines {
		var dl time.Time
		if deadlines[i] > 0 {
			dl = now.Add(deadlines[i])
		}
		wg.Add(1)
		go func(label string, dl time.Time) {
			defer wg.Done()
			tk := mustAcquire(t, c, Request{Cost: 1, Deadline: dl})
			order <- label
			tk.Release(nil)
		}(labels[i], dl)
		// Enqueue one at a time so arrival order is fixed and only the
		// deadline governs dispatch order.
		waitQueued(t, c, i+1)
	}
	holder.Release(nil)
	wg.Wait()
	close(order)

	var got []string
	for l := range order {
		got = append(got, l)
	}
	want := []string{"d5", "d10", "d20", "none"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
}

func TestQueueFullSheds429(t *testing.T) {
	c := NewController(Config{SlotCap: 1, MaxQueue: 2, MaxWait: 30 * time.Second})
	holder := mustAcquire(t, c, Request{Cost: 1})
	defer holder.Release(nil)

	ctx, cancel := context.WithCancel(context.Background())
	fillerErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Acquire(ctx, Request{Cost: 1})
			fillerErrs <- err
		}()
	}
	waitQueued(t, c, 2)

	_, err := c.Acquire(context.Background(), Request{Cost: 1})
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ShedError", err)
	}
	if se.Reason != ReasonQueueFull {
		t.Errorf("reason = %q, want %q", se.Reason, ReasonQueueFull)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Error("shed error does not unwrap to ErrOverloaded")
	}
	if got := HTTPStatus(err); got != http.StatusTooManyRequests {
		t.Errorf("HTTPStatus = %d, want 429", got)
	}
	if se.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", se.RetryAfter)
	}
	cancel()
	<-fillerErrs
	<-fillerErrs
}

func TestInfeasibleDeadlineSheds503(t *testing.T) {
	c := NewController(Config{SlotCap: 4, MaxQueue: 10, MaxWait: 30 * time.Second})
	// Teach the controller its throughput: 1 cost unit per second.
	c.mu.Lock()
	c.rate = 1
	c.mu.Unlock()

	holder := mustAcquire(t, c, Request{Cost: 50})
	defer holder.Release(nil)

	// 100 more units behind 50 in flight at 1 unit/s cannot finish in 1s.
	_, err := c.Acquire(context.Background(), Request{Cost: 100, Deadline: time.Now().Add(time.Second)})
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonDeadline {
		t.Fatalf("err = %v, want deadline shed", err)
	}
	if got := HTTPStatus(err); got != http.StatusServiceUnavailable {
		t.Errorf("HTTPStatus = %d, want 503", got)
	}
	if se.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", se.RetryAfter)
	}
}

func TestAdmitTimeout(t *testing.T) {
	c := NewController(Config{SlotCap: 1, MaxQueue: 10, MaxWait: 20 * time.Millisecond})
	holder := mustAcquire(t, c, Request{Cost: 1})
	defer holder.Release(nil)

	start := time.Now()
	_, err := c.Acquire(context.Background(), Request{Cost: 1})
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonTimeout {
		t.Fatalf("err = %v, want timeout shed", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timed out after %v, want ~20ms", elapsed)
	}
	if c.Stats().Queued != 0 {
		t.Errorf("queued = %d after timeout, want 0", c.Stats().Queued)
	}
}

func TestCancelWhileQueuedNoLeak(t *testing.T) {
	c := NewController(Config{SlotCap: 1, MaxQueue: 100, MaxWait: 30 * time.Second})
	holder := mustAcquire(t, c, Request{Cost: 1})

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	const n = 20
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.Acquire(ctx, Request{Cost: 1})
			errs <- err
		}()
	}
	waitQueued(t, c, n)
	cancel()
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	}
	st := c.Stats()
	if st.Queued != 0 {
		t.Errorf("queued = %d after cancel, want 0", st.Queued)
	}
	if st.Inflight != 1 {
		t.Errorf("inflight = %d, want 1 (the holder)", st.Inflight)
	}
	holder.Release(nil)

	// All Acquire goroutines must have exited (no leaked dispatch or
	// timer goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines = %d, want <= %d", g, before)
	}
}

func TestReleaseMeasuresThroughput(t *testing.T) {
	c := NewController(Config{SlotCap: 4, MaxQueue: 10, MaxWait: time.Second})
	tk := mustAcquire(t, c, Request{Cost: 10})
	rec := obs.NewRecorder()
	rec.StageObserve(obs.StageEncode, 10, 1000, 500*time.Millisecond)
	rec.StageObserve(obs.StageDecode, 10, 1000, 500*time.Millisecond)
	tk.Release(rec)

	st := c.Stats()
	if st.RateUnits <= 0 {
		t.Fatalf("rate = %v, want > 0 after measured release", st.RateUnits)
	}
	// 10 units over 1s of stage wall = 10 units/s.
	if math.Abs(st.RateUnits-10) > 0.01 {
		t.Errorf("rate = %v, want ~10", st.RateUnits)
	}
	if st.CapacityUnits <= 0 {
		t.Errorf("capacity = %v, want > 0 once measured", st.CapacityUnits)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d, want 0", st.Inflight)
	}
}

func TestTicketDoubleReleaseHarmless(t *testing.T) {
	c := NewController(Config{SlotCap: 2, MaxQueue: 4, MaxWait: time.Second})
	tk := mustAcquire(t, c, Request{Cost: 1})
	tk.Release(nil)
	tk.Release(nil)
	if st := c.Stats(); st.Inflight != 0 {
		t.Errorf("inflight = %d after double release, want 0", st.Inflight)
	}
}

func TestPressureClosesAndTightensAdmission(t *testing.T) {
	c := NewController(Config{SlotCap: 4, MaxQueue: 10, MaxWait: 50 * time.Millisecond})

	c.SetPressureFactor(0)
	_, err := c.Acquire(context.Background(), Request{Cost: 1})
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ReasonPressure {
		t.Fatalf("err = %v, want pressure shed", err)
	}
	if got := HTTPStatus(err); got != http.StatusServiceUnavailable {
		t.Errorf("HTTPStatus = %d, want 503", got)
	}

	c.SetPressureFactor(0.5)
	if st := c.Stats(); st.EffectiveSlots != 2 {
		t.Errorf("effective slots at 0.5 pressure = %d, want 2", st.EffectiveSlots)
	}
	t1 := mustAcquire(t, c, Request{Cost: 1})
	t2 := mustAcquire(t, c, Request{Cost: 1})
	if _, err := c.Acquire(context.Background(), Request{Cost: 1}); !errors.Is(err, ErrOverloaded) {
		t.Errorf("third acquire under 0.5 pressure = %v, want overloaded", err)
	}

	c.SetPressureFactor(1)
	t3 := mustAcquire(t, c, Request{Cost: 1})
	t1.Release(nil)
	t2.Release(nil)
	t3.Release(nil)
}

func TestCloseShedsQueuedWaiters(t *testing.T) {
	c := NewController(Config{SlotCap: 1, MaxQueue: 10, MaxWait: 30 * time.Second})
	holder := mustAcquire(t, c, Request{Cost: 1})

	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := c.Acquire(context.Background(), Request{Cost: 1})
			errs <- err
		}()
	}
	waitQueued(t, c, 3)
	c.Close()
	for i := 0; i < 3; i++ {
		err := <-errs
		var se *ShedError
		if !errors.As(err, &se) || se.Reason != ReasonShutdown {
			t.Fatalf("err = %v, want shutdown shed", err)
		}
	}
	if _, err := c.Acquire(context.Background(), Request{Cost: 1}); !errors.Is(err, ErrOverloaded) {
		t.Errorf("acquire after close = %v, want overloaded", err)
	}
	holder.Release(nil)
}

// TestConcurrentBurstUnderRace hammers the controller from many tenants
// with mixed costs, cancels, and releases — correctness is "no deadlock,
// no negative accounting, everything returns" (run with -race).
func TestConcurrentBurstUnderRace(t *testing.T) {
	c := NewController(Config{
		SlotCap: 4, MaxQueue: 64, MaxWait: 200 * time.Millisecond,
		Weights: map[string]float64{"t0": 3, "t1": 1},
	})
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc = func() {}
			if i%7 == 0 {
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%13)*time.Millisecond)
			}
			defer cancel()
			tenant := fmt.Sprintf("t%d", i%3)
			var dl time.Time
			if i%5 == 0 {
				dl = time.Now().Add(time.Duration(50+i%100) * time.Millisecond)
			}
			tk, err := c.Acquire(ctx, Request{Tenant: tenant, Cost: float64(1 + i%17), Deadline: dl})
			if err != nil {
				return
			}
			if i%2 == 0 {
				rec := obs.NewRecorder()
				rec.StageObserve(obs.StageEncode, 1, 100, 100*time.Microsecond)
				tk.Release(rec)
			} else {
				tk.Release(nil)
			}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("after burst: inflight=%d queued=%d, want 0/0", st.Inflight, st.Queued)
	}
	if st.InflightCost != 0 || st.QueuedCost < 0 {
		t.Errorf("after burst: inflightCost=%v queuedCost=%v", st.InflightCost, st.QueuedCost)
	}
}
