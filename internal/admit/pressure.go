package admit

import (
	"context"
	"os"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"time"

	"v2v/internal/obs"
)

// PressureLevel classifies current memory pressure.
type PressureLevel int

const (
	// PressureNone: plenty of headroom; full budgets and capacity.
	PressureNone PressureLevel = iota
	// PressureElevated: above the soft watermark; cache budgets and
	// admission capacity halve.
	PressureElevated
	// PressureCritical: near the limit; budgets and capacity quarter.
	PressureCritical
)

func (l PressureLevel) String() string {
	switch l {
	case PressureElevated:
		return "elevated"
	case PressureCritical:
		return "critical"
	default:
		return "none"
	}
}

// Factor is the budget/capacity multiplier applied at each level.
func (l PressureLevel) Factor() float64 {
	switch l {
	case PressureElevated:
		return 0.5
	case PressureCritical:
		return 0.25
	default:
		return 1
	}
}

// MemSample is one memory-pressure observation: bytes the process holds
// against the limit it must stay under.
type MemSample struct {
	Used  uint64
	Limit uint64
}

// Utilization returns Used/Limit, 0 when no limit is known.
func (s MemSample) Utilization() float64 {
	if s.Limit == 0 {
		return 0
	}
	return float64(s.Used) / float64(s.Limit)
}

// Pressure watermarks, with hysteresis: a level is entered crossing its
// enter threshold and only left falling below its exit threshold, so a
// utilization hovering at a boundary does not flap budgets.
const (
	elevatedEnter = 0.75
	elevatedExit  = 0.65
	criticalEnter = 0.90
	criticalExit  = 0.80
)

var (
	pressureLevelGauge = obs.Default().Gauge("v2v_mem_pressure_level", "Memory pressure level: 0 none, 1 elevated, 2 critical.")
	pressureUtilGauge  = obs.Default().Gauge("v2v_mem_utilization_ratio", "Process heap bytes over the detected memory limit (0 when no limit).")
	pressureEpisodes   = obs.Default().Counter("v2v_mem_pressure_episodes_total", "Transitions from no pressure into elevated or critical pressure.")
)

// Monitor periodically samples memory pressure and drives the registered
// reactions (cache-budget arbiter, admission controller). The sampler and
// clock are injectable so tests inject synthetic pressure episodes.
type Monitor struct {
	sampler  func() MemSample
	interval time.Duration

	mu    sync.Mutex
	level PressureLevel
	last  MemSample
	onChg []func(PressureLevel)

	wg sync.WaitGroup
}

// NewMonitor returns a monitor reading the process's memory use against
// the detected limit (cgroup v2, cgroup v1, /proc/meminfo, in that
// order). interval <= 0 defaults to 2s. The monitor is idle until Run.
func NewMonitor(interval time.Duration) *Monitor {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Monitor{sampler: SystemSample, interval: interval}
}

// SetSampler replaces the memory sampler (synthetic pressure in tests and
// chaos scenarios). Call before Run.
func (m *Monitor) SetSampler(s func() MemSample) { m.sampler = s }

// OnChange registers a reaction invoked (without the monitor lock held)
// whenever the pressure level changes, and immediately with the current
// level. Reactions must be safe to call from the monitor goroutine.
func (m *Monitor) OnChange(fn func(PressureLevel)) {
	m.mu.Lock()
	m.onChg = append(m.onChg, fn)
	level := m.level
	m.mu.Unlock()
	fn(level)
}

// Level returns the current pressure level.
func (m *Monitor) Level() PressureLevel {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.level
}

// LastSample returns the most recent memory sample.
func (m *Monitor) LastSample() MemSample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// Poll takes one sample and applies level transitions, returning the
// (possibly new) level. Exposed for tests and for chaos scenarios that
// step the monitor deterministically instead of running the loop.
func (m *Monitor) Poll() PressureLevel {
	sample := m.sampler()
	util := sample.Utilization()

	m.mu.Lock()
	old := m.level
	next := nextLevel(old, util)
	m.level = next
	m.last = sample
	var fns []func(PressureLevel)
	if next != old {
		fns = append(fns, m.onChg...)
	}
	m.mu.Unlock()

	pressureUtilGauge.Set(util)
	pressureLevelGauge.Set(float64(next))
	if next != old && old == PressureNone {
		pressureEpisodes.Inc()
	}
	for _, fn := range fns {
		fn(next)
	}
	return next
}

// nextLevel applies the hysteresis bands to the current utilization.
func nextLevel(cur PressureLevel, util float64) PressureLevel {
	switch cur {
	case PressureCritical:
		switch {
		case util >= criticalExit:
			return PressureCritical
		case util >= elevatedExit:
			return PressureElevated
		default:
			return PressureNone
		}
	case PressureElevated:
		switch {
		case util >= criticalEnter:
			return PressureCritical
		case util >= elevatedExit:
			return PressureElevated
		default:
			return PressureNone
		}
	default:
		switch {
		case util >= criticalEnter:
			return PressureCritical
		case util >= elevatedEnter:
			return PressureElevated
		default:
			return PressureNone
		}
	}
}

// Run polls until ctx ends. Call in its own goroutine; Wait() joins it.
func (m *Monitor) Run(ctx context.Context) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		ticker := time.NewTicker(m.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				m.Poll()
			}
		}
	}()
}

// Wait joins the polling goroutine after its context ended.
func (m *Monitor) Wait() { m.wg.Wait() }

// SystemSample reads the process's heap footprint from runtime/metrics
// against the detected memory limit. With no detectable limit (Limit 0)
// utilization reads as zero and pressure never engages — the conservative
// default for unconstrained dev machines.
func SystemSample() MemSample {
	samples := []metrics.Sample{{Name: "/memory/classes/total:bytes"}}
	metrics.Read(samples)
	var used uint64
	if samples[0].Value.Kind() == metrics.KindUint64 {
		used = samples[0].Value.Uint64()
	}
	return MemSample{Used: used, Limit: detectMemLimit()}
}

// detectMemLimit finds the tightest applicable memory limit: cgroup v2,
// then cgroup v1, then total system memory from /proc/meminfo. Returns 0
// when nothing is readable (non-Linux, sandboxes).
func detectMemLimit() uint64 {
	if v := readCgroupLimit("/sys/fs/cgroup/memory.max"); v > 0 {
		return v
	}
	if v := readCgroupLimit("/sys/fs/cgroup/memory/memory.limit_in_bytes"); v > 0 {
		return v
	}
	return readMeminfoTotal("/proc/meminfo")
}

// readCgroupLimit parses a cgroup memory-limit file. "max" (v2) and the
// v1 no-limit sentinel (huge values >= 2^62) read as unlimited (0).
func readCgroupLimit(path string) uint64 {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	s := strings.TrimSpace(string(b))
	if s == "max" {
		return 0
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil || v >= 1<<62 {
		return 0
	}
	return v
}

// readMeminfoTotal parses MemTotal from a /proc/meminfo-format file.
func readMeminfoTotal(path string) uint64 {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "MemTotal:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
