// Package admit is v2vserve's overload-safe front door: cost-based
// admission control with weighted-fair queueing across tenants,
// deadline-aware dispatch, and load shedding.
//
// Every request arrives with a static cost estimate (plan.Cost.Units(),
// computed by the planner before admission) and is charged against a
// capacity measured from what the pipeline actually sustains: each
// completed request reports its obs.Recorder stage wall totals, and an
// EWMA over cost-units-per-busy-second turns that into a concurrency
// limit expressed in cost units rather than a flat slot count — a burst
// of cheap stream-copy requests admits far more concurrency than a burst
// of full re-renders.
//
// Queued requests are ordered by deadline within each tenant and tenants
// are served weighted-fair (virtual-time scheduling: admitting a request
// advances its tenant's virtual time by cost/weight; the tenant with the
// smallest virtual time dispatches next). When the bounded queue fills,
// the admission timeout lapses, or a request's deadline cannot plausibly
// be met given the queued cost ahead of it, the request is shed with a
// typed, retryable error carrying a Retry-After estimate — callers map it
// to HTTP 429/503 via HTTPStatus.
package admit

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"time"

	"v2v/internal/obs"
)

// ErrOverloaded is the sentinel all shed errors unwrap to: the server
// declined the request because it cannot serve it in time, and the client
// should retry after the ShedError's RetryAfter.
var ErrOverloaded = errors.New("admit: overloaded")

// Shed reasons, also used as metric label values.
const (
	// ReasonQueueFull: the bounded queue is at capacity (HTTP 429).
	ReasonQueueFull = "queue_full"
	// ReasonDeadline: the request's deadline cannot plausibly be met given
	// the cost queued ahead of it (HTTP 503).
	ReasonDeadline = "deadline"
	// ReasonTimeout: the admission timeout lapsed while queued (HTTP 503).
	ReasonTimeout = "timeout"
	// ReasonPressure: admission is closed under critical memory pressure
	// (HTTP 503).
	ReasonPressure = "pressure"
	// ReasonShutdown: the controller is draining (HTTP 503).
	ReasonShutdown = "shutdown"
)

// ShedError is the typed load-shedding error. It unwraps to ErrOverloaded
// so callers test errors.Is(err, admit.ErrOverloaded) and read RetryAfter
// for the Retry-After header.
type ShedError struct {
	// Reason is one of the Reason* constants.
	Reason string
	// Tenant is the shed request's tenant bucket.
	Tenant string
	// RetryAfter estimates when the backlog ahead of this request drains.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admit: shed tenant=%s reason=%s retry-after=%s", e.Tenant, e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) true for every shed.
func (e *ShedError) Unwrap() error { return ErrOverloaded }

// HTTPStatus maps an admission error to its HTTP status: 429 Too Many
// Requests for queue overflow (the client sent too much at once; retrying
// after backoff will succeed), 503 Service Unavailable for deadline,
// timeout, pressure, and shutdown sheds (the server cannot serve this
// request in time regardless of client behavior). Returns 0 for non-shed
// errors.
func HTTPStatus(err error) int {
	var se *ShedError
	if !errors.As(err, &se) {
		return 0
	}
	if se.Reason == ReasonQueueFull {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}

// Request describes one admission request.
type Request struct {
	// Tenant is the fairness bucket ("" maps to DefaultTenant).
	Tenant string
	// Cost is the plan's estimated cost in plan.Cost units (>= 0; zero is
	// charged as a minimal unit so accounting stays live).
	Cost float64
	// Deadline, when non-zero, is the wall-clock time by which the caller
	// needs the response; admission sheds early when it is infeasible and
	// dispatches earlier deadlines first within a tenant.
	Deadline time.Time
}

// DefaultTenant is the bucket for requests without tenant identification.
const DefaultTenant = "default"

// Config parameterizes a Controller. The zero value is usable: defaults
// are filled in by NewController.
type Config struct {
	// MaxQueue bounds the total number of queued (not yet admitted)
	// requests across all tenants. Default 64.
	MaxQueue int
	// MaxWait bounds how long a request may sit queued before it is shed
	// with ReasonTimeout. Default 10s.
	MaxWait time.Duration
	// Weights maps tenant names to fairness weights (> 0). Tenants not
	// listed get weight 1.
	Weights map[string]float64
	// SlotCap is the hard ceiling on concurrently admitted requests,
	// protecting against cost underestimates. Default 2×GOMAXPROCS.
	SlotCap int
	// Window is the pipeline depth the cost capacity targets: capacity =
	// measured throughput × Window. Default 1s.
	Window time.Duration
}

// Package-scope instruments (metricsname: library metrics register at
// package scope on the default registry).
var (
	admitQueuedGauge   = obs.Default().Gauge("v2v_admit_queued", "Requests currently queued for admission.")
	admitInflightGauge = obs.Default().Gauge("v2v_admit_inflight", "Requests currently admitted and executing.")
	admitCapacityGauge = obs.Default().Gauge("v2v_admit_capacity_units", "Current admission capacity in plan cost units (0 until throughput is measured).")
	admittedTotal      = obs.Default().Counter("v2v_admit_admitted_total", "Requests admitted.")
	admitWaitSeconds   = obs.Default().Histogram("v2v_admit_wait_seconds", "Wall time requests spent queued before admission.", obs.LatencyBuckets())

	shedQueueFull = obs.Default().Counter(`v2v_admit_shed_total{reason="queue_full"}`, "Requests shed by the admission controller, by reason.")
	shedDeadline  = obs.Default().Counter(`v2v_admit_shed_total{reason="deadline"}`, "Requests shed by the admission controller, by reason.")
	shedTimeout   = obs.Default().Counter(`v2v_admit_shed_total{reason="timeout"}`, "Requests shed by the admission controller, by reason.")
	shedPressure  = obs.Default().Counter(`v2v_admit_shed_total{reason="pressure"}`, "Requests shed by the admission controller, by reason.")
	shedShutdown  = obs.Default().Counter(`v2v_admit_shed_total{reason="shutdown"}`, "Requests shed by the admission controller, by reason.")
)

func shedCounter(reason string) *obs.Counter {
	switch reason {
	case ReasonQueueFull:
		return shedQueueFull
	case ReasonDeadline:
		return shedDeadline
	case ReasonTimeout:
		return shedTimeout
	case ReasonPressure:
		return shedPressure
	default:
		return shedShutdown
	}
}

// waiter is one queued request.
type waiter struct {
	req   Request
	enq   time.Time
	seq   uint64
	ready chan struct{} // closed exactly once, after admitted or shedErr is set
	// admitted / shedErr are written under the controller lock before
	// ready closes and read by the waiter after ready fires.
	admitted bool
	shedErr  *ShedError
	index    int // heap index, -1 when dequeued
}

// waiterHeap orders waiters by deadline (earliest first; no deadline
// sorts last), breaking ties by arrival order.
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	di, dj := h[i].req.Deadline, h[j].req.Deadline
	switch {
	case di.IsZero() && dj.IsZero():
		return h[i].seq < h[j].seq
	case di.IsZero():
		return false
	case dj.IsZero():
		return true
	case di.Equal(dj):
		return h[i].seq < h[j].seq
	default:
		return di.Before(dj)
	}
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

// tenant is one fairness bucket.
type tenant struct {
	name   string
	weight float64
	// vt is the tenant's virtual finish time: admitting a request advances
	// it by cost/weight, so heavier tenants accumulate virtual time slower
	// and are picked more often.
	vt           float64
	queue        waiterHeap
	queuedCost   float64
	inflight     int
	inflightCost float64
	admitted     int64
	shed         int64
	doneCost     float64 // cost units of completed (released) requests
}

// Controller is the admission controller. Safe for concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	tenants  map[string]*tenant
	queued   int
	inflight int

	queuedCost   float64
	inflightCost float64

	seq uint64

	// rate is the EWMA of cost units cleared per busy second (stage wall),
	// 0 until the first release reports a sample.
	rate float64
	// pressureFactor scales capacity and slots: 1 normal, < 1 under
	// memory pressure, 0 closes admission entirely.
	pressureFactor float64

	closed bool

	now func() time.Time // test hook
}

// NewController returns a controller with cfg's zero fields defaulted.
func NewController(cfg Config) *Controller {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 10 * time.Second
	}
	if cfg.SlotCap <= 0 {
		cfg.SlotCap = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	return &Controller{
		cfg:            cfg,
		tenants:        map[string]*tenant{},
		pressureFactor: 1,
		now:            time.Now,
	}
}

func (c *Controller) tenantLocked(name string) *tenant {
	if name == "" {
		name = DefaultTenant
	}
	t, ok := c.tenants[name]
	if !ok {
		w := c.cfg.Weights[name]
		if w <= 0 {
			w = 1
		}
		t = &tenant{name: name, weight: w}
		// A tenant (re)entering the system starts at the minimum active
		// virtual time, so idle periods do not bank an unbounded credit
		// that would later starve everyone else.
		t.vt = c.minActiveVTLocked()
		c.tenants[name] = t
	}
	return t
}

func (c *Controller) minActiveVTLocked() float64 {
	min := math.Inf(1)
	for _, t := range c.tenants {
		if t.inflight > 0 || t.queue.Len() > 0 {
			if t.vt < min {
				min = t.vt
			}
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// effectiveSlotsLocked is the concurrent-request ceiling after pressure
// scaling (always >= 1 unless admission is closed).
func (c *Controller) effectiveSlotsLocked() int {
	if c.pressureFactor <= 0 {
		return 0
	}
	s := int(math.Floor(float64(c.cfg.SlotCap) * c.pressureFactor))
	if s < 1 {
		s = 1
	}
	return s
}

// capacityUnitsLocked is the cost-unit concurrency limit: the measured
// clearing rate times the target pipeline depth, pressure-scaled. +Inf
// until throughput has been measured (the slot cap still binds).
func (c *Controller) capacityUnitsLocked() float64 {
	if c.rate <= 0 {
		return math.Inf(1)
	}
	return c.rate * c.cfg.Window.Seconds() * c.pressureFactor
}

// admissibleLocked reports whether one more request of the given cost fits
// right now.
func (c *Controller) admissibleLocked(cost float64) bool {
	slots := c.effectiveSlotsLocked()
	if slots == 0 {
		return false
	}
	if c.inflight == 0 {
		// Progress guarantee: an idle server always admits one request,
		// however expensive — otherwise a cost estimate above capacity
		// could never be served at all.
		return true
	}
	if c.inflight >= slots {
		return false
	}
	return c.inflightCost+cost <= c.capacityUnitsLocked()
}

// retryAfterLocked estimates when the current backlog clears: total
// outstanding cost over the measured clearing rate, clamped to [1s, 60s].
func (c *Controller) retryAfterLocked() time.Duration {
	if c.rate <= 0 {
		return time.Second
	}
	sec := (c.inflightCost + c.queuedCost) / c.rate
	d := time.Duration(sec * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// feasibleLocked reports whether req's deadline can plausibly be met given
// the cost ahead of it. Requires a measured rate; with no measurement the
// check is skipped (optimistic).
func (c *Controller) feasibleLocked(req Request, now time.Time) bool {
	if req.Deadline.IsZero() || c.rate <= 0 {
		return true
	}
	ahead := c.inflightCost + c.queuedCost + req.Cost
	estDone := now.Add(time.Duration(ahead / c.rate * float64(time.Second)))
	return !estDone.After(req.Deadline)
}

func normCost(cost float64) float64 {
	if cost <= 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return 1 // zero-cost requests still occupy a slot; keep vt moving
	}
	return cost
}

// Acquire admits the request, blocking (deadline-fairly) while the server
// is at capacity. It returns a Ticket the caller must Release exactly
// once, or an error: a *ShedError (unwrapping to ErrOverloaded) when the
// request is shed, or ctx.Err() when the caller's context ends first.
func (c *Controller) Acquire(ctx context.Context, req Request) (*Ticket, error) {
	req.Cost = normCost(req.Cost)
	if req.Tenant == "" {
		req.Tenant = DefaultTenant
	}

	c.mu.Lock()
	now := c.now()
	if c.closed {
		c.mu.Unlock()
		return nil, c.shed(req.Tenant, ReasonShutdown, time.Second)
	}
	if c.pressureFactor <= 0 {
		ra := c.retryAfterLocked()
		c.mu.Unlock()
		return nil, c.shed(req.Tenant, ReasonPressure, ra)
	}
	t := c.tenantLocked(req.Tenant)

	// Immediate admission only when no one is queued — queued waiters have
	// priority over new arrivals (FIFO across the fair queue).
	if c.queued == 0 && c.admissibleLocked(req.Cost) && c.feasibleLocked(req, now) {
		c.admitLocked(t, req)
		c.mu.Unlock()
		admitWaitSeconds.Observe(0)
		return &Ticket{c: c, tenant: req.Tenant, cost: req.Cost, admitted: now}, nil
	}

	if c.queued >= c.cfg.MaxQueue {
		ra := c.retryAfterLocked()
		t.shed++
		c.mu.Unlock()
		return nil, c.shed(req.Tenant, ReasonQueueFull, ra)
	}
	if !c.feasibleLocked(req, now) {
		ra := c.retryAfterLocked()
		t.shed++
		c.mu.Unlock()
		return nil, c.shed(req.Tenant, ReasonDeadline, ra)
	}

	c.seq++
	w := &waiter{req: req, enq: now, seq: c.seq, ready: make(chan struct{})}
	if t.inflight == 0 && t.queue.Len() == 0 {
		// The tenant is re-entering after an idle stretch: forfeit banked
		// virtual-time credit so it cannot starve the active tenants.
		if min := c.minActiveVTLocked(); t.vt < min {
			t.vt = min
		}
	}
	heap.Push(&t.queue, w)
	t.queuedCost += req.Cost
	c.queued++
	c.queuedCost += req.Cost
	admitQueuedGauge.Set(float64(c.queued))
	c.mu.Unlock()

	maxWait := c.cfg.MaxWait
	if !req.Deadline.IsZero() {
		if until := req.Deadline.Sub(now); until < maxWait {
			maxWait = until
		}
	}
	timer := time.NewTimer(maxWait)
	defer timer.Stop()

	select {
	case <-w.ready:
		c.mu.Lock()
		shedErr := w.shedErr
		c.mu.Unlock()
		if shedErr != nil {
			return nil, shedErr
		}
		admitWaitSeconds.Observe(c.now().Sub(now).Seconds())
		return &Ticket{c: c, tenant: req.Tenant, cost: req.Cost, admitted: c.now()}, nil
	case <-ctx.Done():
		c.abandon(w, t)
		return nil, ctx.Err()
	case <-timer.C:
		reason := ReasonTimeout
		if !req.Deadline.IsZero() && !c.now().Add(time.Millisecond).Before(req.Deadline) {
			reason = ReasonDeadline
		}
		if c.abandon(w, t) {
			// The dispatcher admitted us in the same instant the timer
			// fired; the slot has already been handed back. Report the
			// timeout — the caller was not going to run anyway.
			c.mu.Lock()
			ra := c.retryAfterLocked()
			tn := c.tenantLocked(req.Tenant)
			tn.shed++
			c.mu.Unlock()
			return nil, c.shed(req.Tenant, reason, ra)
		}
		c.mu.Lock()
		ra := c.retryAfterLocked()
		t.shed++
		c.mu.Unlock()
		return nil, c.shed(req.Tenant, reason, ra)
	}
}

// abandon removes a waiter that stopped waiting (cancel or timeout).
// Returns true when the dispatcher resolved the waiter concurrently with
// an admission — in that case the granted slot has been handed straight
// back to the controller (the abandoning caller will not run).
func (c *Controller) abandon(w *waiter, t *tenant) (admittedConcurrently bool) {
	c.mu.Lock()
	if w.index < 0 {
		// Already resolved: the dispatcher popped the waiter (admitted or
		// shed) before we could withdraw. Resolution state is final here —
		// admitted/shedErr were written under this lock before w left the
		// heap.
		admitted := w.admitted
		c.mu.Unlock()
		if admitted {
			tk := &Ticket{c: c, tenant: w.req.Tenant, cost: w.req.Cost, admitted: c.now()}
			tk.Release(nil)
		}
		return admitted
	}
	heap.Remove(&t.queue, w.index)
	t.queuedCost -= w.req.Cost
	c.queued--
	c.queuedCost -= w.req.Cost
	admitQueuedGauge.Set(float64(c.queued))
	c.mu.Unlock()
	return false
}

// admitLocked books an admission for req under the lock.
func (c *Controller) admitLocked(t *tenant, req Request) {
	t.vt += req.Cost / t.weight
	t.inflight++
	t.inflightCost += req.Cost
	t.admitted++
	c.inflight++
	c.inflightCost += req.Cost
	admittedTotal.Inc()
	admitInflightGauge.Set(float64(c.inflight))
}

// dispatchLocked admits queued waiters while capacity allows, returning
// the ready channels to close once the lock is released (lockcheck: no
// channel operations under a mutex).
func (c *Controller) dispatchLocked() []chan struct{} {
	var ready []chan struct{}
	for c.queued > 0 {
		// Weighted-fair pick: the backlogged tenant with the least virtual
		// time goes next.
		var pick *tenant
		for _, t := range c.tenants {
			if t.queue.Len() == 0 {
				continue
			}
			if pick == nil || t.vt < pick.vt || (t.vt == pick.vt && t.name < pick.name) {
				pick = t
			}
		}
		if pick == nil {
			break
		}
		head := pick.queue[0]
		if !c.admissibleLocked(head.req.Cost) {
			break
		}
		heap.Pop(&pick.queue)
		pick.queuedCost -= head.req.Cost
		c.queued--
		c.queuedCost -= head.req.Cost
		head.admitted = true
		c.admitLocked(pick, head.req)
		ready = append(ready, head.ready)
	}
	admitQueuedGauge.Set(float64(c.queued))
	admitCapacityGauge.Set(capacityForGauge(c.capacityUnitsLocked()))
	return ready
}

func capacityForGauge(v float64) float64 {
	if math.IsInf(v, 1) {
		return 0 // unmeasured; 0 is the documented "not yet known" value
	}
	return v
}

// shed records a shed and builds its error.
func (c *Controller) shed(tenant, reason string, retryAfter time.Duration) *ShedError {
	shedCounter(reason).Inc()
	return &ShedError{Reason: reason, Tenant: tenant, RetryAfter: retryAfter}
}

// ewmaAlpha weights new throughput samples: high enough to track phase
// changes (copy-heavy vs render-heavy traffic), low enough to ride out
// one odd request.
const ewmaAlpha = 0.3

// Ticket is an admitted request's slot. Release it exactly once.
type Ticket struct {
	c        *Controller
	tenant   string
	cost     float64
	admitted time.Time
	released bool
	mu       sync.Mutex
}

// Cost returns the admitted cost units.
func (t *Ticket) Cost() float64 { return t.cost }

// Release returns the slot and reports the request's measured work so the
// controller can update its throughput estimate. rec may be nil (e.g. the
// request failed before executing); the estimate then falls back to
// elapsed wall time. Safe to call more than once; only the first call has
// effect.
func (t *Ticket) Release(rec *obs.Recorder) {
	t.mu.Lock()
	if t.released {
		t.mu.Unlock()
		return
	}
	t.released = true
	t.mu.Unlock()

	c := t.c
	busy := stageWallTotal(rec)
	elapsed := c.now().Sub(t.admitted)
	if busy <= 0 {
		busy = elapsed
	}
	var sample float64
	if busy > 0 {
		sample = t.cost / busy.Seconds()
	}

	c.mu.Lock()
	tn := c.tenantLocked(t.tenant)
	tn.inflight--
	tn.inflightCost -= t.cost
	tn.doneCost += t.cost
	c.inflight--
	c.inflightCost -= t.cost
	if sample > 0 {
		if c.rate <= 0 {
			c.rate = sample
		} else {
			c.rate = ewmaAlpha*sample + (1-ewmaAlpha)*c.rate
		}
	}
	admitInflightGauge.Set(float64(c.inflight))
	ready := c.dispatchLocked()
	c.mu.Unlock()
	for _, ch := range ready {
		close(ch)
	}
}

// stageWallTotal sums the recorder's per-stage wall time — the request's
// busy time across decode/filter/encode/copy (shard-parallel work sums).
func stageWallTotal(rec *obs.Recorder) time.Duration {
	if rec == nil {
		return 0
	}
	var total time.Duration
	for s := obs.StageDecode; s <= obs.StageCopy; s++ {
		total += rec.Stage(s).Wall
	}
	return total
}

// SetPressureFactor scales admission capacity: 1 is normal, values in
// (0,1) shrink both the slot cap and the cost capacity, and <= 0 closes
// admission (every Acquire sheds with ReasonPressure). Queued waiters are
// re-dispatched under the new factor; already-admitted requests finish.
func (c *Controller) SetPressureFactor(f float64) {
	if math.IsNaN(f) {
		return
	}
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	c.mu.Lock()
	c.pressureFactor = f
	ready := c.dispatchLocked()
	c.mu.Unlock()
	for _, ch := range ready {
		close(ch)
	}
}

// Close drains the controller: every queued waiter is shed with
// ReasonShutdown and subsequent Acquires shed immediately. In-flight
// tickets remain valid and release normally.
func (c *Controller) Close() {
	c.mu.Lock()
	c.closed = true
	var ready []chan struct{}
	for _, t := range c.tenants {
		for t.queue.Len() > 0 {
			w := heap.Pop(&t.queue).(*waiter)
			t.queuedCost -= w.req.Cost
			c.queued--
			c.queuedCost -= w.req.Cost
			w.shedErr = c.shed(w.req.Tenant, ReasonShutdown, time.Second)
			t.shed++
			ready = append(ready, w.ready)
		}
	}
	admitQueuedGauge.Set(float64(c.queued))
	c.mu.Unlock()
	for _, ch := range ready {
		close(ch)
	}
}

// TenantStats is one tenant's /debug/admit entry.
type TenantStats struct {
	Weight       float64 `json:"weight"`
	Queued       int     `json:"queued"`
	QueuedCost   float64 `json:"queued_cost_units"`
	Inflight     int     `json:"inflight"`
	InflightCost float64 `json:"inflight_cost_units"`
	VirtualTime  float64 `json:"virtual_time"`
	Admitted     int64   `json:"admitted"`
	Shed         int64   `json:"shed"`
	DoneCost     float64 `json:"done_cost_units"`
}

// Stats is a point-in-time controller snapshot for GET /debug/admit.
type Stats struct {
	Queued         int                    `json:"queued"`
	Inflight       int                    `json:"inflight"`
	QueuedCost     float64                `json:"queued_cost_units"`
	InflightCost   float64                `json:"inflight_cost_units"`
	CapacityUnits  float64                `json:"capacity_units"` // 0 until measured
	RateUnits      float64                `json:"rate_units_per_second"`
	PressureFactor float64                `json:"pressure_factor"`
	MaxQueue       int                    `json:"max_queue"`
	SlotCap        int                    `json:"slot_cap"`
	EffectiveSlots int                    `json:"effective_slots"`
	Tenants        map[string]TenantStats `json:"tenants"`
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Queued:         c.queued,
		Inflight:       c.inflight,
		QueuedCost:     c.queuedCost,
		InflightCost:   c.inflightCost,
		CapacityUnits:  capacityForGauge(c.capacityUnitsLocked()),
		RateUnits:      c.rate,
		PressureFactor: c.pressureFactor,
		MaxQueue:       c.cfg.MaxQueue,
		SlotCap:        c.cfg.SlotCap,
		EffectiveSlots: c.effectiveSlotsLocked(),
		Tenants:        make(map[string]TenantStats, len(c.tenants)),
	}
	for name, t := range c.tenants {
		st.Tenants[name] = TenantStats{
			Weight:       t.weight,
			Queued:       t.queue.Len(),
			QueuedCost:   t.queuedCost,
			Inflight:     t.inflight,
			InflightCost: t.inflightCost,
			VirtualTime:  t.vt,
			Admitted:     t.admitted,
			Shed:         t.shed,
			DoneCost:     t.doneCost,
		}
	}
	return st
}
