package faults

import (
	"testing"
	"time"
)

func TestPressureEpisodeDeterministic(t *testing.T) {
	a := NewPressureEpisode(7, 0.3, 0.95, 5, 3)
	b := NewPressureEpisode(7, 0.3, 0.95, 5, 3)
	av, bv := a.Values(), b.Values()
	if len(av) != len(bv) {
		t.Fatalf("lengths differ: %d vs %d", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, av[i], bv[i])
		}
	}
	c := NewPressureEpisode(8, 0.3, 0.95, 5, 3)
	same := true
	for i, v := range c.Values() {
		if v != av[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical walks")
	}
}

func TestPressureEpisodeShape(t *testing.T) {
	e := NewPressureEpisode(1, 0.3, 0.95, 8, 4)
	vals := e.Values()
	if len(vals) != 8+4+7+1 {
		t.Fatalf("len = %d, want %d", len(vals), 8+4+7+1)
	}
	peak := 0.0
	for _, v := range vals {
		if v < 0 || v > 1 {
			t.Fatalf("sample %v out of [0,1]", v)
		}
		if v > peak {
			peak = v
		}
	}
	if peak != 0.95 {
		t.Errorf("peak = %v, want the configured 0.95 held exactly", peak)
	}
	if last := vals[len(vals)-1]; last != 0.3 {
		t.Errorf("final sample = %v, want the 0.3 baseline", last)
	}
}

func TestPressureEpisodeNextSticksAtEnd(t *testing.T) {
	e := NewPressureEpisode(1, 0.2, 0.9, 2, 1)
	for i := 0; i < e.Len(); i++ {
		e.Next()
	}
	if !e.Done() {
		t.Error("episode not done after consuming every sample")
	}
	if v := e.Next(); v != 0.2 {
		t.Errorf("post-end sample = %v, want sticky baseline 0.2", v)
	}
}

func TestPressureEpisodeSampler(t *testing.T) {
	e := NewPressureEpisode(3, 0.5, 1, 1, 0)
	sample := e.Sampler(1000)
	used, lim := sample()
	if lim != 1000 {
		t.Fatalf("limit = %d, want 1000", lim)
	}
	if used != 1000 {
		t.Errorf("used = %d at peak 1.0, want 1000", used)
	}
}

func TestOverloadBurstDeterministic(t *testing.T) {
	a := OverloadBurst(42, 50, 10*time.Millisecond, 16)
	b := OverloadBurst(42, 50, 10*time.Millisecond, 16)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := OverloadBurst(43, 50, 10*time.Millisecond, 16)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical bursts")
	}
}

func TestOverloadBurstShape(t *testing.T) {
	base := 10 * time.Millisecond
	offs := OverloadBurst(1, 200, base, 4)
	prev := time.Duration(0)
	for i, o := range offs {
		if o < prev {
			t.Fatalf("offset %d not monotone: %v after %v", i, o, prev)
		}
		prev = o
	}
	// 200 arrivals at 4x the service rate should span roughly 200 × 2.5ms;
	// the cap on individual gaps keeps the tail bounded.
	mean := offs[len(offs)-1] / 200
	want := base / 4
	if mean < want/3 || mean > want*3 {
		t.Errorf("mean inter-arrival %v, want within 3x of %v", mean, want)
	}
	if OverloadBurst(1, 0, base, 4) != nil {
		t.Error("n=0 should return nil")
	}
}
