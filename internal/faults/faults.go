// Package faults is a deterministic, seedable fault-injection layer for
// V2V's I/O paths. It wraps container files (reads) and media sinks
// (writes) with probabilistic faults drawn from a seeded PRNG, so the
// robustness test suite and `v2vbench -chaos` can reproduce a failure by
// replaying its seed.
//
// Fault classes on the read path:
//
//   - bit flip: one random bit of the returned buffer is inverted,
//     modeling silent media corruption. VMF v2's per-packet CRC detects
//     these; concealment mode survives them.
//   - truncation: the read returns fewer bytes than requested with
//     io.ErrUnexpectedEOF, modeling a torn file.
//   - transient: the read fails with an EAGAIN-class error implementing
//     Transient() bool, which the container retries with bounded backoff.
//   - latency: the read sleeps, modeling slow storage (and making
//     cancellation races reproducible in tests).
//
// On the write path a single class (write error) exercises the
// executor's abort-and-clean-up paths.
package faults

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"v2v/internal/container"
	"v2v/internal/frame"
	"v2v/internal/media"
)

// Config sets per-operation fault probabilities (each in [0,1]) and the
// seed that makes a run reproducible.
type Config struct {
	// Seed initializes the PRNG; runs with equal seeds and equal,
	// same-order operations inject identical faults.
	Seed int64
	// BitFlip is the probability a read returns data with one bit flipped.
	BitFlip float64
	// Truncate is the probability a read returns short with
	// io.ErrUnexpectedEOF.
	Truncate float64
	// Transient is the probability a read fails with a retryable
	// EAGAIN-class error.
	Transient float64
	// WriteErr is the probability a sink write fails.
	WriteErr float64
	// Latency sleeps this long on a read with probability LatencyProb.
	Latency     time.Duration
	LatencyProb float64
}

// Stats counts the faults an Injector actually delivered.
type Stats struct {
	Reads       int64
	BitFlips    int64
	Truncations int64
	Transients  int64
	Latencies   int64
	WriteErrs   int64
}

// Injector draws faults from one seeded stream. Safe for concurrent use;
// under concurrency the assignment of faults to operations depends on
// scheduling, but the aggregate fault rate stays seed-determined.
type Injector struct {
	cfg   Config
	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the faults delivered so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Activate installs the injector process-wide: every container file
// opened afterwards reads through it. Pair with a deferred Deactivate.
func (in *Injector) Activate() { container.SetFileWrapper(in.WrapFile) }

// Deactivate removes any installed file wrapper.
func Deactivate() { container.SetFileWrapper(nil) }

// TransientErr is the injected retryable error class; the container's
// read path retries it with bounded backoff.
type TransientErr struct{ Op string }

func (e *TransientErr) Error() string {
	return fmt.Sprintf("faults: transient %s error (injected)", e.Op)
}
func (e *TransientErr) Transient() bool { return true }

// decision is one draw from the fault stream.
type decision struct {
	latency  bool
	trans    bool
	truncate bool
	bitflip  bool
	bitIndex int64 // which bit of the buffer to flip
}

func (in *Injector) draw(bufBits int64) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Reads++
	var d decision
	if in.cfg.LatencyProb > 0 && in.rng.Float64() < in.cfg.LatencyProb {
		d.latency = true
		in.stats.Latencies++
	}
	// At most one data-affecting fault per operation, checked in severity
	// order: a transient error preempts corruption.
	switch {
	case in.cfg.Transient > 0 && in.rng.Float64() < in.cfg.Transient:
		d.trans = true
		in.stats.Transients++
	case in.cfg.Truncate > 0 && in.rng.Float64() < in.cfg.Truncate:
		d.truncate = true
		in.stats.Truncations++
	case in.cfg.BitFlip > 0 && in.rng.Float64() < in.cfg.BitFlip:
		d.bitflip = true
		if bufBits > 0 {
			d.bitIndex = in.rng.Int63n(bufBits)
		}
		in.stats.BitFlips++
	}
	return d
}

// WrapFile wraps f so reads pass through the injector. Matches the
// container.SetFileWrapper signature.
func (in *Injector) WrapFile(path string, f container.File) container.File {
	return &faultFile{in: in, f: f}
}

type faultFile struct {
	in *Injector
	f  container.File
}

func (ff *faultFile) apply(p []byte, n int, err error) (int, error) {
	d := ff.in.draw(int64(n) * 8)
	if d.latency {
		time.Sleep(ff.in.cfg.Latency)
	}
	switch {
	case d.trans:
		return 0, &TransientErr{Op: "read"}
	case d.truncate && n > 0:
		return n / 2, io.ErrUnexpectedEOF
	case d.bitflip && n > 0:
		p[d.bitIndex/8] ^= 1 << (d.bitIndex % 8)
	}
	return n, err
}

func (ff *faultFile) Read(p []byte) (int, error) {
	n, err := ff.f.Read(p)
	return ff.apply(p, n, err)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := ff.f.ReadAt(p, off)
	return ff.apply(p, n, err)
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// WrapSink wraps s so every write may fail with probability
// Config.WriteErr, exercising executor abort paths.
func (in *Injector) WrapSink(s media.Sink) media.Sink {
	return &faultSink{in: in, s: s}
}

type faultSink struct {
	in *Injector
	s  media.Sink
}

func (fs *faultSink) writeErr() error {
	fs.in.mu.Lock()
	defer fs.in.mu.Unlock()
	if fs.in.cfg.WriteErr > 0 && fs.in.rng.Float64() < fs.in.cfg.WriteErr {
		fs.in.stats.WriteErrs++
		return fmt.Errorf("faults: write error (injected)")
	}
	return nil
}

func (fs *faultSink) Info() container.StreamInfo { return fs.s.Info() }
func (fs *faultSink) FramesWritten() int64       { return fs.s.FramesWritten() }
func (fs *faultSink) Stats() media.Stats         { return fs.s.Stats() }
func (fs *faultSink) Close() error               { return fs.s.Close() }
func (fs *faultSink) Abort() error               { return fs.s.Abort() }

func (fs *faultSink) WriteFrame(fr *frame.Frame) error {
	if err := fs.writeErr(); err != nil {
		return err
	}
	return fs.s.WriteFrame(fr)
}

func (fs *faultSink) WriteRawPacket(key bool, data []byte) error {
	if err := fs.writeErr(); err != nil {
		return err
	}
	return fs.s.WriteRawPacket(key, data)
}

func (fs *faultSink) WriteEncodedFrame(key bool, data []byte) error {
	if err := fs.writeErr(); err != nil {
		return err
	}
	return fs.s.WriteEncodedFrame(key, data)
}

// CorruptRange XORs every byte of path in [off, off+length) with a
// nonzero byte drawn from seed — guaranteed damage, reproducible across
// runs. Tests use it to hit specific VMF regions (header, index, packet
// payload).
func CorruptRange(path string, off, length, seed int64) error {
	if length <= 0 {
		return fmt.Errorf("faults: corrupt range length %d", length)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("faults: read range: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range buf {
		buf[i] ^= byte(1 + rng.Intn(255))
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("faults: write range: %w", err)
	}
	return f.Close()
}
