package faults

// Overload-class faults: deterministic generators for the two overload
// scenarios `v2vbench -chaos` replays — a memory-pressure episode (a
// utilization walk that ramps past the critical threshold, holds, and
// decays) and a request burst (arrival offsets at a multiple of the
// service rate). Both draw from seeded PRNGs so a failing run reproduces
// by replaying its seed, matching the read/write fault classes in
// faults.go.

import (
	"math/rand"
	"sync"
	"time"
)

// PressureEpisode is a deterministic memory-utilization walk: baseline →
// ramp → hold at peak → decay → baseline, with seed-jittered steps. Feed
// its samples to a memory-pressure monitor (admit.Monitor.SetSampler) to
// replay an out-of-memory near-miss without allocating anything.
type PressureEpisode struct {
	mu   sync.Mutex
	vals []float64
	i    int
}

// NewPressureEpisode builds an episode rising from baseline to peak over
// rampSteps samples, holding the peak for holdSteps, and decaying back
// over rampSteps. Utilizations are fractions of the memory limit (0.95 =
// 95%); peak is clamped to [baseline, 1]. Equal seeds produce equal
// walks.
func NewPressureEpisode(seed int64, baseline, peak float64, rampSteps, holdSteps int) *PressureEpisode {
	if baseline < 0 {
		baseline = 0
	}
	if peak < baseline {
		peak = baseline
	}
	if peak > 1 {
		peak = 1
	}
	if rampSteps < 1 {
		rampSteps = 1
	}
	if holdSteps < 0 {
		holdSteps = 0
	}
	rng := rand.New(rand.NewSource(seed))
	// Jitter stays well under one ramp step so the walk never un-crosses
	// a threshold it already passed.
	jitter := (peak - baseline) / float64(rampSteps) / 4
	sample := func(target float64) float64 {
		v := target + (rng.Float64()*2-1)*jitter
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return v
	}
	var vals []float64
	for s := 1; s <= rampSteps; s++ {
		vals = append(vals, sample(baseline+(peak-baseline)*float64(s)/float64(rampSteps)))
	}
	// Hold and the extreme points are exact: the episode is guaranteed to
	// touch its peak and to end back at the baseline.
	for s := 0; s < holdSteps; s++ {
		vals = append(vals, peak)
	}
	for s := rampSteps - 1; s >= 1; s-- {
		vals = append(vals, sample(baseline+(peak-baseline)*float64(s)/float64(rampSteps)))
	}
	vals = append(vals, baseline)
	return &PressureEpisode{vals: vals}
}

// Next returns the episode's next utilization sample, sticking at the
// final baseline once the walk completes. Safe for concurrent use.
func (e *PressureEpisode) Next() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	v := e.vals[e.i]
	if e.i < len(e.vals)-1 {
		e.i++
	}
	return v
}

// Done reports whether the walk has reached its final sample.
func (e *PressureEpisode) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.i >= len(e.vals)-1
}

// Len returns the number of samples in the walk.
func (e *PressureEpisode) Len() int { return len(e.vals) }

// Values returns a copy of the full walk, for tests and plots.
func (e *PressureEpisode) Values() []float64 {
	out := make([]float64, len(e.vals))
	copy(out, e.vals)
	return out
}

// Sampler adapts the episode to a (used, limit) byte sampler against a
// synthetic limit, the shape memory-pressure monitors consume.
func (e *PressureEpisode) Sampler(limit uint64) func() (used, lim uint64) {
	return func() (uint64, uint64) {
		return uint64(e.Next() * float64(limit)), limit
	}
}

// OverloadBurst returns n request arrival offsets (from t=0, sorted
// ascending) modeling an offered load of factor× a service capacity of
// one request per base: exponential inter-arrivals with mean base/factor,
// capped at 4× the mean so one long gap cannot hide the overload. Equal
// seeds produce equal bursts.
func OverloadBurst(seed int64, n int, base time.Duration, factor float64) []time.Duration {
	if n <= 0 {
		return nil
	}
	if factor <= 0 {
		factor = 1
	}
	mean := float64(base) / factor
	rng := rand.New(rand.NewSource(seed))
	offs := make([]time.Duration, n)
	var t float64
	for i := range offs {
		gap := rng.ExpFloat64() * mean
		if lim := 4 * mean; gap > lim {
			gap = lim
		}
		t += gap
		offs[i] = time.Duration(t)
	}
	return offs
}
