package faults

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// memFile is an in-memory container.File for driving the injector
// without disk I/O.
type memFile struct {
	data []byte
	pos  int64
}

func (m *memFile) Read(p []byte) (int, error) {
	if m.pos >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[m.pos:])
	m.pos += int64(n)
	return n, nil
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}

func (m *memFile) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		m.pos = offset
	case io.SeekCurrent:
		m.pos += offset
	case io.SeekEnd:
		m.pos = int64(len(m.data)) + offset
	}
	return m.pos, nil
}

func (m *memFile) Close() error { return nil }

// replay drives n fixed-size reads through a fresh injector with the
// given seed and returns the delivered stats plus every buffer read.
func replay(seed int64, n int) (Stats, [][]byte) {
	in := New(Config{Seed: seed, BitFlip: 0.3, Truncate: 0.2, Transient: 0.2})
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	f := in.WrapFile("mem", &memFile{data: src})
	var bufs [][]byte
	for i := 0; i < n; i++ {
		buf := make([]byte, 32)
		f.ReadAt(buf, 0)
		bufs = append(bufs, buf)
	}
	return in.Stats(), bufs
}

// TestInjectorDeterministic checks the core reproducibility promise:
// equal seeds and equal operation sequences deliver identical faults.
func TestInjectorDeterministic(t *testing.T) {
	s1, b1 := replay(42, 50)
	s2, b2 := replay(42, 50)
	if s1 != s2 {
		t.Errorf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	for i := range b1 {
		if !bytes.Equal(b1[i], b2[i]) {
			t.Errorf("read %d differs between identical-seed runs", i)
		}
	}
	if s1.Reads != 50 {
		t.Errorf("Reads = %d, want 50", s1.Reads)
	}
	if s1.BitFlips+s1.Truncations+s1.Transients == 0 {
		t.Error("high-probability config delivered no faults at all")
	}

	s3, _ := replay(43, 50)
	if s1 == s3 {
		t.Error("different seeds delivered identical stats (suspicious)")
	}
}

// TestAtMostOneDataFaultPerRead verifies the severity ordering: the
// fault counts never exceed the number of reads (one data fault max per
// operation).
func TestAtMostOneDataFaultPerRead(t *testing.T) {
	s, _ := replay(7, 200)
	if total := s.BitFlips + s.Truncations + s.Transients; total > s.Reads {
		t.Errorf("%d data faults across %d reads — more than one per op", total, s.Reads)
	}
}

// TestTransientErrShape checks the injected error satisfies the
// Transient() contract the container retry loop sniffs for.
func TestTransientErrShape(t *testing.T) {
	in := New(Config{Seed: 1, Transient: 1})
	f := in.WrapFile("mem", &memFile{data: make([]byte, 8)})
	_, err := f.ReadAt(make([]byte, 4), 0)
	var te *TransientErr
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransientErr", err)
	}
	if !te.Transient() {
		t.Error("TransientErr.Transient() = false")
	}
}

// TestCorruptRangeDeterministic checks CorruptRange damages exactly the
// requested window, never leaves a byte unchanged, and replays
// identically for equal seeds.
func TestCorruptRangeDeterministic(t *testing.T) {
	dir := t.TempDir()
	orig := make([]byte, 100)
	for i := range orig {
		orig[i] = byte(i * 3)
	}
	write := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	p1, p2 := write("a"), write("b")
	for _, p := range []string{p1, p2} {
		if err := CorruptRange(p, 10, 20, 99); err != nil {
			t.Fatal(err)
		}
	}
	got1, _ := os.ReadFile(p1)
	got2, _ := os.ReadFile(p2)
	if !bytes.Equal(got1, got2) {
		t.Error("equal seeds produced different corruption")
	}
	if !bytes.Equal(got1[:10], orig[:10]) || !bytes.Equal(got1[30:], orig[30:]) {
		t.Error("corruption leaked outside [10,30)")
	}
	for i := 10; i < 30; i++ {
		if got1[i] == orig[i] {
			t.Errorf("byte %d unchanged — XOR mask must be nonzero", i)
		}
	}

	p3 := write("c")
	if err := CorruptRange(p3, 10, 20, 100); err != nil {
		t.Fatal(err)
	}
	got3, _ := os.ReadFile(p3)
	if bytes.Equal(got1, got3) {
		t.Error("different seeds produced identical corruption")
	}

	if err := CorruptRange(p3, 0, 0, 1); err == nil {
		t.Error("zero-length range should error")
	}
}
