package container

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestAtomicWriteLifecycle checks the atomic-output contract: nothing
// appears at the target path until Close, and Abort removes the temp
// without ever creating the target.
func TestAtomicWriteLifecycle(t *testing.T) {
	dir := t.TempDir()

	p := filepath.Join(dir, "a.vmf")
	w, err := Create(p, testInfo())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(0, true, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Error("target path exists before Close")
	}
	if _, err := os.Stat(p + ".tmp"); err != nil {
		t.Errorf("temp file missing during write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Errorf("target path missing after Close: %v", err)
	}
	if _, err := os.Stat(p + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file left behind after Close")
	}

	p2 := filepath.Join(dir, "b.vmf")
	w2, err := Create(p2, testInfo())
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WritePacket(0, true, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	for _, q := range []string{p2, p2 + ".tmp"} {
		if _, err := os.Stat(q); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("Abort left %s behind", q)
		}
	}
	// Abort after Abort, and Abort after Close, are no-ops.
	if err := w2.Abort(); err != nil {
		t.Errorf("double Abort: %v", err)
	}
	if err := w.Abort(); err != nil {
		t.Errorf("Abort after Close: %v", err)
	}
	if _, err := os.Stat(p); err != nil {
		t.Error("Abort after Close removed the finished file")
	}
}

// TestCRCDetectsPayloadFlip flips one payload byte of a closed v2 file
// and checks that Open still succeeds (the index is intact) but reading
// the damaged packet reports ErrCorruptPacket, while its neighbors read
// cleanly.
func TestCRCDetectsPayloadFlip(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.vmf")
	payloads := writeFile(t, p, testInfo(), 10, 5)

	r, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	rec := r.Record(3)
	r.Close()

	f, err := os.OpenFile(p, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{payloads[3][1] ^ 0x40}, rec.Offset+1); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err = Open(p)
	if err != nil {
		t.Fatalf("Open after payload flip (index intact): %v", err)
	}
	defer r.Close()
	if r.Version() != 2 {
		t.Fatalf("Version = %d, want 2", r.Version())
	}
	if _, err := r.ReadPacket(3); !errors.Is(err, ErrCorruptPacket) {
		t.Errorf("ReadPacket(3) = %v, want ErrCorruptPacket", err)
	}
	for _, i := range []int{0, 2, 4, 9} {
		got, err := r.ReadPacket(i)
		if err != nil {
			t.Errorf("ReadPacket(%d): %v", i, err)
		} else if string(got) != string(payloads[i]) {
			t.Errorf("ReadPacket(%d) payload mismatch", i)
		}
	}
}

// writeV1File hand-crafts a version-1 VMF file (21-byte index records, no
// CRCs) as the pre-CRC writer produced it.
func writeV1File(t *testing.T, path string, info StreamInfo, payloads [][]byte) {
	t.Helper()
	hdr, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = append(buf, magicHeadV1...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	offs := make([]int64, len(payloads))
	for i, pl := range payloads {
		offs[i] = int64(len(buf))
		buf = append(buf, pl...)
	}
	idxOff := int64(len(buf))
	for i, pl := range payloads {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(i)) // PTS
		buf = binary.LittleEndian.AppendUint64(buf, uint64(offs[i]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pl)))
		key := byte(0)
		if i == 0 {
			key = 1
		}
		buf = append(buf, key)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(idxOff))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payloads)))
	buf = append(buf, magicFoot...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV1BackCompat reads a hand-crafted version-1 file: it must open,
// report Version 1, and — lacking checksums — return payloads unverified
// even after a byte flip.
func TestV1BackCompat(t *testing.T) {
	p := filepath.Join(t.TempDir(), "v1.vmf")
	payloads := [][]byte{[]byte("first-key-packet"), []byte("second"), []byte("third-packet")}
	writeV1File(t, p, testInfo(), payloads)

	r, err := Open(p)
	if err != nil {
		t.Fatalf("Open v1: %v", err)
	}
	if r.Version() != 1 {
		t.Fatalf("Version = %d, want 1", r.Version())
	}
	if r.NumPackets() != len(payloads) {
		t.Fatalf("NumPackets = %d, want %d", r.NumPackets(), len(payloads))
	}
	for i, want := range payloads {
		got, err := r.ReadPacket(i)
		if err != nil {
			t.Fatalf("ReadPacket(%d): %v", i, err)
		}
		if string(got) != string(want) {
			t.Errorf("ReadPacket(%d) = %q, want %q", i, got, want)
		}
	}
	rec := r.Record(1)
	r.Close()

	// Flip a payload byte: a v1 reader has no CRC to notice.
	f, err := os.OpenFile(p, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{payloads[1][0] ^ 0xFF}, rec.Offset); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r, err = Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.ReadPacket(1); err != nil {
		t.Errorf("v1 ReadPacket after flip should pass unverified, got %v", err)
	}
}

// flakyFile fails every ReadAt with a retryable error until failures are
// exhausted, then delegates.
type flakyFile struct {
	File
	mu        sync.Mutex
	remaining int
}

type errFlaky struct{}

func (errFlaky) Error() string   { return "test: transient (injected)" }
func (errFlaky) Transient() bool { return true }

func (f *flakyFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	fail := f.remaining > 0
	if fail {
		f.remaining--
	}
	f.mu.Unlock()
	if fail {
		return 0, errFlaky{}
	}
	return f.File.ReadAt(p, off)
}

// TestReadPacketRetriesTransient exercises the bounded retry loop
// directly: two consecutive transient faults on the packet-read path are
// absorbed (Retries()==2), while more than maxReadRetries consecutive
// faults surface the error.
func TestReadPacketRetriesTransient(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.vmf")
	payloads := writeFile(t, p, testInfo(), 4, 2)

	f, err := os.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	ff := &flakyFile{File: f}
	r, err := NewReader(ff)
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	defer r.Close()

	ff.mu.Lock()
	ff.remaining = 2
	ff.mu.Unlock()
	got, err := r.ReadPacket(0)
	if err != nil {
		t.Fatalf("ReadPacket under 2 transients: %v", err)
	}
	if string(got) != string(payloads[0]) {
		t.Error("payload mismatch after retries")
	}
	if n := r.Retries(); n != 2 {
		t.Errorf("Retries = %d, want 2", n)
	}

	// maxReadRetries+1 consecutive faults exhaust the budget.
	ff.mu.Lock()
	ff.remaining = maxReadRetries + 1
	ff.mu.Unlock()
	if _, err := r.ReadPacket(1); err == nil {
		t.Error("ReadPacket should fail once the retry budget is exhausted")
	}
}
