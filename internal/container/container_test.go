package container

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"v2v/internal/rational"
)

func testInfo() StreamInfo {
	return StreamInfo{Codec: "GV10", Width: 64, Height: 48, FPS: rational.FromInt(24), Quality: 1, GOP: 12, Level: 4}
}

// writeFile writes n packets of deterministic junk, keyframes every gop.
func writeFile(t *testing.T, path string, info StreamInfo, n, gop int) [][]byte {
	t.Helper()
	w, err := Create(path, info)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	payloads := make([][]byte, n)
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		data := make([]byte, 10+rnd.Intn(50))
		for j := range data {
			data[j] = byte(i + j)
		}
		payloads[i] = data
		if err := w.WritePacket(int64(i), i%gop == 0, data); err != nil {
			t.Fatalf("WritePacket(%d): %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return payloads
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.vmf")
	info := testInfo()
	payloads := writeFile(t, path, info, 30, 6)

	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if !r.Info().Compatible(info) || !r.Info().FPS.Equal(info.FPS) {
		t.Errorf("info = %+v", r.Info())
	}
	if r.NumPackets() != 30 {
		t.Fatalf("NumPackets = %d", r.NumPackets())
	}
	for i := range payloads {
		got, err := r.ReadPacket(i)
		if err != nil {
			t.Fatalf("ReadPacket(%d): %v", i, err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("packet %d mismatch", i)
		}
		rec := r.Record(i)
		if rec.PTS != int64(i) || rec.Key != (i%6 == 0) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
}

func TestReadPacketOutOfRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.vmf")
	writeFile(t, path, testInfo(), 3, 3)
	r, _ := Open(path)
	defer r.Close()
	if _, err := r.ReadPacket(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := r.ReadPacket(3); err == nil {
		t.Error("past-end index should error")
	}
}

func TestWriterValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(filepath.Join(dir, "x.vmf"), StreamInfo{}); err == nil {
		t.Error("empty info should fail")
	}
	if _, err := Create(filepath.Join(dir, "x.vmf"), StreamInfo{Codec: "GV10", Width: 2, Height: 2}); err == nil {
		t.Error("zero fps should fail")
	}
	w, err := Create(filepath.Join(dir, "y.vmf"), testInfo())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(0, false, []byte{1}); err == nil {
		t.Error("first packet must be keyframe")
	}
	if err := w.WritePacket(0, true, nil); err == nil {
		t.Error("empty packet should fail")
	}
	if err := w.WritePacket(0, true, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(0, false, []byte{2}); err == nil {
		t.Error("non-increasing PTS should fail")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(1, false, []byte{2}); err == nil {
		t.Error("write after close should fail")
	}
	if err := w.Close(); err != nil {
		t.Error("double close should be nil")
	}
}

func TestOpenRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"empty":     {},
		"badmagic":  []byte("NOPE0000more bytes here to pass length"),
		"truncated": []byte("VMF1"),
	}
	for name, data := range cases {
		p := filepath.Join(dir, name)
		os.WriteFile(p, data, 0o644)
		if _, err := Open(p); err == nil {
			t.Errorf("%s: Open succeeded", name)
		}
	}
	// Unclosed writer: header + packets but no footer. With atomic
	// writes the half-written bytes live at <path>.tmp; the target path
	// must not exist at all, and the temp file must fail footer checks.
	p := filepath.Join(dir, "unclosed.vmf")
	w, err := Create(p, testInfo())
	if err != nil {
		t.Fatal(err)
	}
	w.WritePacket(0, true, make([]byte, 100))
	w.f.Close() // bypass Close to simulate crash
	if _, err := os.Stat(p); err == nil {
		t.Error("crashed writer left a file at the target path")
	}
	if _, err := Open(p + ".tmp"); err == nil {
		t.Error("unclosed temp file should fail to open")
	}
}

func TestKeyframeNavigation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.vmf")
	writeFile(t, path, testInfo(), 20, 6) // keys at 0, 6, 12, 18
	r, _ := Open(path)
	defer r.Close()

	cases := []struct {
		at         int
		wantBefore int
		wantAfter  int
	}{
		{0, 0, 0}, {5, 0, 6}, {6, 6, 6}, {7, 6, 12}, {19, 18, -1}, {25, 18, -1},
	}
	for _, c := range cases {
		got, ok := r.KeyframeAtOrBefore(c.at)
		if !ok || got != c.wantBefore {
			t.Errorf("KeyframeAtOrBefore(%d) = %d,%v, want %d", c.at, got, ok, c.wantBefore)
		}
		got, ok = r.NextKeyframeAfter(c.at)
		if c.wantAfter == -1 {
			if ok {
				t.Errorf("NextKeyframeAfter(%d) = %d, want none", c.at, got)
			}
		} else if !ok || got != c.wantAfter {
			t.Errorf("NextKeyframeAfter(%d) = %d,%v, want %d", c.at, got, ok, c.wantAfter)
		}
	}
	if _, ok := r.NextKeyframeAfter(-5); !ok {
		t.Error("NextKeyframeAfter(-5) should clamp and find 0")
	}
}

func TestIndexOfPTS(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.vmf")
	writeFile(t, path, testInfo(), 10, 5)
	r, _ := Open(path)
	defer r.Close()
	if i, ok := r.IndexOfPTS(7); !ok || i != 7 {
		t.Errorf("IndexOfPTS(7) = %d,%v", i, ok)
	}
	if _, ok := r.IndexOfPTS(100); ok {
		t.Error("missing PTS should not be found")
	}
}

func TestTimeMath(t *testing.T) {
	info := testInfo() // 24 fps, start 0
	if got := info.TimeOf(24); !got.Equal(rational.One) {
		t.Errorf("TimeOf(24) = %v", got)
	}
	if got := info.FrameDur(); !got.Equal(rational.New(1, 24)) {
		t.Errorf("FrameDur = %v", got)
	}
	pts, exact := info.PTSOf(rational.New(1, 2))
	if pts != 12 || !exact {
		t.Errorf("PTSOf(1/2) = %d,%v", pts, exact)
	}
	pts, exact = info.PTSOf(rational.New(1, 100))
	if pts != 0 || exact {
		t.Errorf("PTSOf(1/100) = %d,%v", pts, exact)
	}

	info.Start = rational.FromInt(10)
	if got := info.TimeOf(0); !got.Equal(rational.FromInt(10)) {
		t.Errorf("TimeOf with start = %v", got)
	}
	pts, exact = info.PTSOf(rational.FromInt(11))
	if pts != 24 || !exact {
		t.Errorf("PTSOf(11) with start 10 = %d,%v", pts, exact)
	}
}

func TestDurationAndTimeRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.vmf")
	writeFile(t, path, testInfo(), 48, 12)
	r, _ := Open(path)
	defer r.Close()
	if !r.Duration().Equal(rational.FromInt(2)) {
		t.Errorf("Duration = %v", r.Duration())
	}
	tr := r.TimeRange()
	if !tr.Lo.Equal(rational.Zero) || !tr.Hi.Equal(rational.FromInt(2)) {
		t.Errorf("TimeRange = %v", tr)
	}
}

func TestCompatible(t *testing.T) {
	a := testInfo()
	b := a
	if !a.Compatible(b) {
		t.Error("identical infos should be compatible")
	}
	b.Width = 128
	if a.Compatible(b) {
		t.Error("different width should be incompatible")
	}
	c := a
	c.Quality = 9
	if a.Compatible(c) {
		t.Error("different quality should be incompatible")
	}
	d := a
	d.GOP = 99 // GOP is a hint, not a bitstream property
	if !a.Compatible(d) {
		t.Error("GOP difference should stay compatible")
	}
}

func TestPropertyWriteReadAnyPacketSizes(t *testing.T) {
	dir := t.TempDir()
	n := 0
	if err := quick.Check(func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		n++
		path := filepath.Join(dir, "q.vmf")
		w, err := Create(path, testInfo())
		if err != nil {
			return false
		}
		var want [][]byte
		for i, s := range sizes {
			data := make([]byte, int(s%500)+1)
			for j := range data {
				data[j] = byte(i * j)
			}
			if err := w.WritePacket(int64(i), i == 0 || s%3 == 0, data); err != nil {
				return false
			}
			want = append(want, data)
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		if r.NumPackets() != len(want) {
			return false
		}
		for i := range want {
			got, err := r.ReadPacket(i)
			if err != nil || !bytes.Equal(got, want[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.vmf")
	w, err := Create(path, testInfo())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open empty: %v", err)
	}
	defer r.Close()
	if r.NumPackets() != 0 {
		t.Errorf("NumPackets = %d", r.NumPackets())
	}
	if !r.Duration().Equal(rational.Zero) {
		t.Errorf("Duration = %v", r.Duration())
	}
	if !r.TimeRange().Empty() {
		t.Error("TimeRange should be empty")
	}
	if _, ok := r.KeyframeAtOrBefore(0); ok {
		t.Error("no keyframes in empty file")
	}
}

func TestOpenSurvivesRandomCorruption(t *testing.T) {
	// Flipping bytes anywhere in a valid file must never panic: Open either
	// succeeds (payload corruption is only detected at decode time) or
	// returns an error.
	dir := t.TempDir()
	path := filepath.Join(dir, "a.vmf")
	writeFile(t, path, testInfo(), 12, 4)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), orig...)
		for k := 0; k < 1+rnd.Intn(4); k++ {
			mut[rnd.Intn(len(mut))] ^= byte(1 + rnd.Intn(255))
		}
		p := filepath.Join(dir, "mut.vmf")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(p)
		if err != nil {
			continue
		}
		// Index parsed: reads must stay in-bounds (no panics).
		for i := 0; i < r.NumPackets(); i++ {
			r.ReadPacket(i)
		}
		r.Close()
	}
}

func TestOpenSurvivesTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.vmf")
	writeFile(t, path, testInfo(), 12, 4)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(orig); cut += 7 {
		p := filepath.Join(dir, "trunc.vmf")
		if err := os.WriteFile(p, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(p); err == nil {
			// A truncated file that still opens must have a consistent
			// index (possible only if truncation hit past the footer,
			// which cannot happen here — so opening is itself a failure).
			r.Close()
			t.Fatalf("truncated at %d bytes opened successfully", cut)
		}
	}
}
