// Package container implements VMF ("V2V Media Format"), the seekable
// single-stream packet container the execution engine reads and writes.
//
// VMF stands in for MP4/MKV. Its on-disk layout mirrors what matters for
// query execution: packets are stored contiguously, and a compact index at
// the end of the file records every packet's presentation timestamp, byte
// extent, and keyframe flag. The index is what makes time-seeks and
// smart-cut planning cheap (find keyframes in a clipped range without
// touching packet data), the same role keyframe indexes play in Scanner
// and LosslessCut.
//
// Layout (version 2):
//
//	magic "VMF2" | u32 header length | JSON StreamInfo
//	packet bytes ...
//	index: per packet { i64 pts, u64 offset, u32 size, u8 key, u32 crc32 }
//	footer: u64 index offset | u32 packet count | magic "XFMV"
//
// Version 1 files ("VMF1" magic, 21-byte index records without the CRC)
// remain readable; writers always emit version 2. The per-packet CRC32
// (IEEE) lets ReadPacket detect payload corruption at read time instead of
// handing garbage to the decoder — see docs/ROBUSTNESS.md for the fault
// model built on top of it.
//
// Timestamps are frame counts: packet PTS n has presentation time
// Start + n/FPS, kept exact with rationals.
//
// VMF is a seekable-only format: because the index lives at the end of
// the file, a VMF file is not consumable until it is complete, and a
// truncated file is structurally detectable (missing footer). Progressive
// consumption — header and packets valid the moment they are written,
// with a typed end-of-stream trailer distinguishing a complete stream
// from a cut connection — is the VMS stream format's job
// (internal/media's StreamWriter/StreamReader; docs/STREAMING.md).
//
// Robustness properties:
//
//   - Writers are atomic: Create writes to <path>.tmp and Close renames it
//     into place, so a crashed or aborted synthesis never leaves a
//     truncated file at the target path. Abort discards the temp file.
//   - ReadPacket verifies the index CRC (version 2) and returns errors
//     wrapping ErrCorruptPacket for payload damage, which the executor's
//     concealment mode matches on.
//   - Transient read errors (anything implementing Transient() bool, as
//     injected by internal/faults) are retried up to maxReadRetries times
//     with doubling backoff before being reported.
package container

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"v2v/internal/rational"
)

const (
	magicHeadV1   = "VMF1"
	magicHeadV2   = "VMF2"
	magicFoot     = "XFMV"
	recSizeV1     = 8 + 8 + 4 + 1
	recSizeV2     = 8 + 8 + 4 + 1 + 4
	footerSize    = 8 + 4 + 4
	maxHeaderSize = 1 << 20

	// maxReadRetries bounds the retry loop for transient read errors;
	// the k-th retry waits retryBackoff << k.
	maxReadRetries = 3
	retryBackoff   = time.Millisecond
)

// ErrCorruptPacket reports packet payload damage: a CRC mismatch against
// the index, or a short read inside a packet's recorded extent. The
// executor's error-concealment mode matches this error (and undecodable
// packets) to substitute the last good frame instead of failing the run.
var ErrCorruptPacket = errors.New("container: corrupt packet")

// OnTransientRetry, when non-nil, is called once per retried transient
// read (it feeds the v2v_transient_retries_total counter). It must be set
// during init, before readers are in use.
var OnTransientRetry func()

// File is the abstract random-access file a Reader operates on. *os.File
// implements it; internal/faults wraps it to inject read faults.
type File interface {
	io.Reader
	io.ReaderAt
	io.Seeker
	io.Closer
}

var (
	wrapMu   sync.Mutex
	fileWrap func(path string, f File) File
)

// SetFileWrapper installs a hook applied to every file opened by Open —
// the seam chaos testing (v2vbench -chaos, internal/faults tests) uses to
// inject faults into real synthesis runs. Pass nil to remove it. Intended
// for tests and benchmarks only.
func SetFileWrapper(w func(path string, f File) File) {
	wrapMu.Lock()
	fileWrap = w
	wrapMu.Unlock()
}

func wrapOpenedFile(path string, f File) File {
	wrapMu.Lock()
	w := fileWrap
	wrapMu.Unlock()
	if w == nil {
		return f
	}
	return w(path, f)
}

// StreamInfo describes the single video stream in a VMF file. Codec
// parameters are carried in the container so a reader can construct a
// decoder without out-of-band data.
type StreamInfo struct {
	Codec   string       `json:"codec"` // codec fourcc, e.g. "GV10"
	Width   int          `json:"width"`
	Height  int          `json:"height"`
	FPS     rational.Rat `json:"fps"`
	Start   rational.Rat `json:"start"`             // presentation time of PTS 0
	Quality int          `json:"quality,omitempty"` // codec quantizer
	GOP     int          `json:"gop,omitempty"`     // keyframe interval hint
	Level   int          `json:"level,omitempty"`   // codec effort
}

// Validate reports whether the stream info is usable.
func (si StreamInfo) Validate() error {
	if si.Codec == "" {
		return errors.New("container: empty codec")
	}
	if si.Width <= 0 || si.Height <= 0 {
		return fmt.Errorf("container: invalid dimensions %dx%d", si.Width, si.Height)
	}
	if si.FPS.Sign() <= 0 {
		return fmt.Errorf("container: non-positive fps %v", si.FPS)
	}
	return nil
}

// Compatible reports whether packets from a stream with info o can be
// spliced into a stream with this info without re-encoding — the FFmpeg
// "concatenating compatible streams" condition.
func (si StreamInfo) Compatible(o StreamInfo) bool {
	return si.Codec == o.Codec && si.Width == o.Width && si.Height == o.Height &&
		si.FPS.Equal(o.FPS) && si.Quality == o.Quality && si.Level == o.Level
}

// TimeOf returns the presentation time of the packet with the given PTS.
func (si StreamInfo) TimeOf(pts int64) rational.Rat {
	return si.Start.Add(rational.FromInt(pts).Div(si.FPS))
}

// PTSOf returns the PTS whose presentation time is t and whether t lands
// exactly on a frame boundary.
func (si StreamInfo) PTSOf(t rational.Rat) (int64, bool) {
	k := t.Sub(si.Start).Mul(si.FPS)
	return k.Floor(), k.IsInt()
}

// FrameDur returns the duration of one frame (1/FPS).
func (si StreamInfo) FrameDur() rational.Rat {
	return rational.One.Div(si.FPS)
}

// PacketRecord is one index entry. CRC is the IEEE CRC32 of the packet
// payload (0 in version-1 files, which carry no checksums).
type PacketRecord struct {
	PTS    int64
	Offset int64
	Size   int
	Key    bool
	CRC    uint32
}

// Writer writes a VMF (version 2) file. Packets must be appended in
// strictly increasing PTS order and the first packet must be a keyframe.
//
// Output is atomic: bytes go to <path>.tmp and Close renames the finished
// file into place, so a crash, error, or Abort never leaves a truncated
// file at the target path.
type Writer struct {
	f      *os.File
	path   string // final path, created by Close's rename
	tmp    string // temp path holding the in-progress file
	info   StreamInfo
	recs   []PacketRecord
	off    int64
	closed bool
}

// Create opens path for writing and emits the header. The data lands at
// <path>.tmp until Close succeeds.
func Create(path string, info StreamInfo) (*Writer, error) {
	if err := info.Validate(); err != nil {
		return nil, err
	}
	hdr, err := json.Marshal(info)
	if err != nil {
		return nil, fmt.Errorf("container: marshal header: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("container: %w", err)
	}
	w := &Writer{f: f, path: path, tmp: tmp, info: info}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
	for _, b := range [][]byte{[]byte(magicHeadV2), lenBuf[:], hdr} {
		n, err := f.Write(b)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, fmt.Errorf("container: write header: %w", err)
		}
		w.off += int64(n)
	}
	return w, nil
}

// Info returns the stream info the writer was created with.
func (w *Writer) Info() StreamInfo { return w.info }

// WritePacket appends one packet, recording its CRC32 in the index.
func (w *Writer) WritePacket(pts int64, key bool, data []byte) error {
	if w.closed {
		return errors.New("container: writer closed")
	}
	if len(w.recs) == 0 && !key {
		return errors.New("container: first packet must be a keyframe")
	}
	if n := len(w.recs); n > 0 && pts <= w.recs[n-1].PTS {
		return fmt.Errorf("container: PTS %d not increasing (last %d)", pts, w.recs[n-1].PTS)
	}
	if len(data) == 0 {
		return errors.New("container: empty packet")
	}
	if _, err := w.f.Write(data); err != nil {
		return fmt.Errorf("container: write packet: %w", err)
	}
	w.recs = append(w.recs, PacketRecord{
		PTS: pts, Offset: w.off, Size: len(data), Key: key,
		CRC: crc32.ChecksumIEEE(data),
	})
	w.off += int64(len(data))
	return nil
}

// Close writes the index and footer, closes the temp file, and renames it
// to the target path. On any error the temp file is removed and nothing
// appears at the target path.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	idxOff := w.off
	buf := make([]byte, 0, len(w.recs)*recSizeV2+footerSize)
	var rec [recSizeV2]byte
	for _, r := range w.recs {
		binary.LittleEndian.PutUint64(rec[0:], uint64(r.PTS))
		binary.LittleEndian.PutUint64(rec[8:], uint64(r.Offset))
		binary.LittleEndian.PutUint32(rec[16:], uint32(r.Size))
		rec[20] = 0
		if r.Key {
			rec[20] = 1
		}
		binary.LittleEndian.PutUint32(rec[21:], r.CRC)
		buf = append(buf, rec[:]...)
	}
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(idxOff))
	binary.LittleEndian.PutUint32(foot[8:], uint32(len(w.recs)))
	copy(foot[12:], magicFoot)
	buf = append(buf, foot[:]...)
	w.recs = nil // release the index buffer either way
	if _, err := w.f.Write(buf); err != nil {
		w.f.Close()
		os.Remove(w.tmp)
		return fmt.Errorf("container: write index: %w", err)
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("container: close: %w", err)
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("container: finalize: %w", err)
	}
	return nil
}

// Abort discards the in-progress file: it closes and removes the temp
// file without ever touching the target path. Calling Abort after a
// successful Close (or calling it twice) is a no-op.
func (w *Writer) Abort() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.recs = nil
	err := w.f.Close()
	if rerr := os.Remove(w.tmp); rerr != nil && err == nil {
		err = rerr
	}
	if err != nil {
		return fmt.Errorf("container: abort: %w", err)
	}
	return nil
}

// Reader reads a VMF file (version 1 or 2). Safe for concurrent
// ReadPacket calls (it uses positioned reads).
type Reader struct {
	f         File
	info      StreamInfo
	recs      []PacketRecord
	version   int
	contentID string
	retries   atomic.Int64 // transient read retries performed
}

// Retries returns how many transient read retries this reader performed.
func (r *Reader) Retries() int64 { return r.retries.Load() }

// Open opens and indexes a VMF file.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("container: %w", err)
	}
	file := wrapOpenedFile(path, f)
	r, err := NewReader(file)
	if err != nil {
		file.Close()
		return nil, err
	}
	return r, nil
}

// NewReader indexes an already-open file. The reader takes ownership of f
// on success (Close closes it); on error the caller keeps ownership.
func NewReader(f File) (*Reader, error) {
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, fmt.Errorf("container: read magic: %w", err)
	}
	version := 0
	switch string(head[:4]) {
	case magicHeadV1:
		version = 1
	case magicHeadV2:
		version = 2
	default:
		return nil, fmt.Errorf("container: bad magic %q", head[:4])
	}
	recSize := recSizeV2
	if version == 1 {
		recSize = recSizeV1
	}
	hdrLen := binary.LittleEndian.Uint32(head[4:])
	if hdrLen == 0 || hdrLen > maxHeaderSize {
		return nil, fmt.Errorf("container: implausible header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("container: read header: %w", err)
	}
	var info StreamInfo
	if err := json.Unmarshal(hdr, &info); err != nil {
		return nil, fmt.Errorf("container: parse header: %w", err)
	}
	if err := info.Validate(); err != nil {
		return nil, err
	}

	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("container: %w", err)
	}
	if end < footerSize {
		return nil, errors.New("container: truncated file (no footer)")
	}
	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], end-footerSize); err != nil {
		return nil, fmt.Errorf("container: read footer: %w", err)
	}
	if string(foot[12:]) != magicFoot {
		return nil, errors.New("container: bad footer magic (unclosed writer?)")
	}
	idxOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	count := int(binary.LittleEndian.Uint32(foot[8:]))
	if idxOff < 0 || idxOff > end-footerSize || int64(count)*int64(recSize) != end-footerSize-idxOff {
		return nil, errors.New("container: corrupt index geometry")
	}
	idx := make([]byte, count*recSize)
	if _, err := f.ReadAt(idx, idxOff); err != nil {
		return nil, fmt.Errorf("container: read index: %w", err)
	}
	headerEnd := int64(8 + hdrLen)
	recs := make([]PacketRecord, count)
	for i := range recs {
		rec := idx[i*recSize:]
		recs[i] = PacketRecord{
			PTS:    int64(binary.LittleEndian.Uint64(rec[0:])),
			Offset: int64(binary.LittleEndian.Uint64(rec[8:])),
			Size:   int(binary.LittleEndian.Uint32(rec[16:])),
			Key:    rec[20] == 1,
		}
		if version >= 2 {
			recs[i].CRC = binary.LittleEndian.Uint32(rec[21:])
		}
		// Validate each record against the file geometry so that a
		// corrupted index cannot demand absurd allocations or reads.
		r := recs[i]
		if r.Size <= 0 || r.Offset < headerEnd || r.Offset+int64(r.Size) > idxOff {
			return nil, fmt.Errorf("container: corrupt index record %d (offset %d size %d)", i, r.Offset, r.Size)
		}
		if rec[20] > 1 {
			return nil, fmt.Errorf("container: corrupt key flag in record %d", i)
		}
		if i > 0 && r.PTS <= recs[i-1].PTS {
			return nil, fmt.Errorf("container: non-increasing PTS in record %d", i)
		}
	}
	if count > 0 && !recs[0].Key {
		return nil, errors.New("container: stream does not start at a keyframe")
	}
	// Content identity: hash the magic+header, the file size, and the raw
	// index. The index carries every packet's PTS, extent, keyframe flag,
	// and (version 2) payload CRC32, so any change to packet content or
	// stream structure changes the ID without reading packet data.
	ch := sha256.New()
	ch.Write(head[:])
	ch.Write(hdr)
	var szBuf [8]byte
	binary.LittleEndian.PutUint64(szBuf[:], uint64(end))
	ch.Write(szBuf[:])
	ch.Write(idx)
	return &Reader{
		f: f, info: info, recs: recs, version: version,
		contentID: hex.EncodeToString(ch.Sum(nil)),
	}, nil
}

// ContentID returns a collision-resistant identifier of the file's
// content, derived from the header and packet index (including per-packet
// CRCs) rather than the path or mtime. Rewriting a file in place with
// different content yields a different ID, which is what makes it safe to
// key cross-request result caches on. Version-1 files (no packet CRCs)
// still get an ID, but it only witnesses stream structure, not payload
// bytes.
func (r *Reader) ContentID() string { return r.contentID }

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// Info returns the stream description.
func (r *Reader) Info() StreamInfo { return r.info }

// Version returns the container format version (1 or 2). Version-1 files
// carry no packet CRCs, so payload corruption surfaces only at decode.
func (r *Reader) Version() int { return r.version }

// NumPackets returns the number of packets in the file.
func (r *Reader) NumPackets() int { return len(r.recs) }

// Record returns the index entry for packet i.
func (r *Reader) Record(i int) PacketRecord { return r.recs[i] }

// Records returns the full packet index (do not mutate).
func (r *Reader) Records() []PacketRecord { return r.recs }

// transienter marks retryable errors (EAGAIN-class); internal/faults
// produces them, and real backends could too.
type transienter interface{ Transient() bool }

func isTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// ReadPacket reads the payload of packet i, verifying the index CRC
// (version 2). Payload damage — CRC mismatch or a short read inside the
// recorded extent — is reported wrapping ErrCorruptPacket; transient read
// errors are retried with bounded backoff first.
func (r *Reader) ReadPacket(i int) ([]byte, error) {
	if i < 0 || i >= len(r.recs) {
		return nil, fmt.Errorf("container: packet %d out of range [0,%d)", i, len(r.recs))
	}
	rec := r.recs[i]
	buf := make([]byte, rec.Size)
	if err := r.readAt(buf, rec.Offset); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: packet %d short read: %w", ErrCorruptPacket, i, err)
		}
		return nil, fmt.Errorf("container: read packet %d: %w", i, err)
	}
	if r.version >= 2 {
		if got := crc32.ChecksumIEEE(buf); got != rec.CRC {
			return nil, fmt.Errorf("%w: packet %d CRC mismatch (index %08x, payload %08x)",
				ErrCorruptPacket, i, rec.CRC, got)
		}
	}
	return buf, nil
}

// readAt is ReadAt with bounded retry/backoff on the transient error
// class (the policy documented in docs/ROBUSTNESS.md).
func (r *Reader) readAt(buf []byte, off int64) error {
	backoff := retryBackoff
	for attempt := 0; ; attempt++ {
		_, err := r.f.ReadAt(buf, off)
		if err == nil || !isTransient(err) || attempt >= maxReadRetries {
			return err
		}
		r.retries.Add(1)
		if OnTransientRetry != nil {
			OnTransientRetry()
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// IndexOfPTS returns the packet index with the given PTS, or (-1, false).
func (r *Reader) IndexOfPTS(pts int64) (int, bool) {
	i := sort.Search(len(r.recs), func(i int) bool { return r.recs[i].PTS >= pts })
	if i < len(r.recs) && r.recs[i].PTS == pts {
		return i, true
	}
	return -1, false
}

// KeyframeAtOrBefore returns the index of the last keyframe packet at or
// before packet i, or (-1, false) if none exists (corrupt file).
func (r *Reader) KeyframeAtOrBefore(i int) (int, bool) {
	if i >= len(r.recs) {
		i = len(r.recs) - 1
	}
	for ; i >= 0; i-- {
		if r.recs[i].Key {
			return i, true
		}
	}
	return -1, false
}

// NextKeyframeAfter returns the index of the first keyframe packet at or
// after packet i, or (-1, false).
func (r *Reader) NextKeyframeAfter(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	for ; i < len(r.recs); i++ {
		if r.recs[i].Key {
			return i, true
		}
	}
	return -1, false
}

// Duration returns the presentation duration of the stream (packet count
// over FPS for a complete stream).
func (r *Reader) Duration() rational.Rat {
	if len(r.recs) == 0 {
		return rational.Zero
	}
	last := r.recs[len(r.recs)-1].PTS
	first := r.recs[0].PTS
	return rational.FromInt(last - first + 1).Div(r.info.FPS)
}

// TimeRange returns the half-open presentation interval covered by the
// stream.
func (r *Reader) TimeRange() rational.Interval {
	if len(r.recs) == 0 {
		return rational.Interval{}
	}
	return rational.Interval{
		Lo: r.info.TimeOf(r.recs[0].PTS),
		Hi: r.info.TimeOf(r.recs[len(r.recs)-1].PTS).Add(r.info.FrameDur()),
	}
}
